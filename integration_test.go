package repro

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/dp"
	"repro/internal/eddpc"
	"repro/internal/evalmetrics"
	"repro/internal/kmeansmr"
	"repro/internal/knnjoin"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/rpcmr"
)

// TestExactAlgorithmsAgreeBitForBit cross-checks all three exact paths —
// sequential DP, Basic-DDP, EDDPC — on the same data.
func TestExactAlgorithmsAgreeBitForBit(t *testing.T) {
	ds := dataset.KDD(1500, 7)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	eng := &mapreduce.LocalEngine{Parallelism: 4}

	seq, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	basic, err := core.RunBasicDDP(context.Background(), ds, core.BasicConfig{
		Config: core.Config{Engine: eng, Dc: dc},
	})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := eddpc.Run(context.Background(), ds, eddpc.Config{
		Config: core.Config{Engine: eng, Dc: dc, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Rho {
		if basic.Rho[i] != seq.Rho[i] || ed.Rho[i] != seq.Rho[i] {
			t.Fatalf("rho[%d]: seq %v basic %v eddpc %v", i, seq.Rho[i], basic.Rho[i], ed.Rho[i])
		}
		if math.Abs(basic.Delta[i]-seq.Delta[i]) > 1e-9 || math.Abs(ed.Delta[i]-seq.Delta[i]) > 1e-9 {
			t.Fatalf("delta[%d]: seq %v basic %v eddpc %v", i, seq.Delta[i], basic.Delta[i], ed.Delta[i])
		}
	}
}

// TestFullDistributedPipeline is the end-to-end story: stage a data set in
// the replicated DFS, run LSH-DDP on a TCP MapReduce cluster, cluster the
// result, and validate quality against ground truth.
func TestFullDistributedPipeline(t *testing.T) {
	// DFS: namenode + 2 datanodes.
	nn, err := dfs.NewNameNode("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	for i := 0; i < 2; i++ {
		dn, err := dfs.StartDataNode(nn.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer dn.Close()
	}
	fsc, err := dfs.NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fsc.Close()
	fsc.BlockSize = 32 << 10

	// Stage the input.
	ds := dataset.Blobs("integration", 1200, 4, 5, 300, 3, 9)
	if err := dfsio.SaveDataset(fsc, "in/blobs", ds, 4); err != nil {
		t.Fatal(err)
	}
	staged, err := dfsio.LoadDataset(fsc, "in/blobs", "integration")
	if err != nil {
		t.Fatal(err)
	}

	// MapReduce cluster: master + 3 workers.
	rpcmr.RegisterJobs(core.JobFactories())
	rpcmr.RegisterJobs(core.HaloJobFactories())
	rpcmr.RegisterJobs(eddpc.JobFactories())
	rpcmr.RegisterJobs(kmeansmr.JobFactories())
	rpcmr.RegisterJobs(knnjoin.JobFactories())
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var workers []*rpcmr.Worker
	for i := 0; i < 3; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	res, err := core.RunLSHDDP(context.Background(), staged, core.LSHConfig{
		Config:   core.Config{Engine: master, Seed: 3},
		Accuracy: 0.99, M: 8, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	peaks, labels, err := res.Cluster(staged, core.SelectTopK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 5 {
		t.Fatalf("selected %d peaks", len(peaks))
	}
	ari, err := evalmetrics.ARI(staged.Labels, evalmetrics.IntLabels(labels))
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("distributed pipeline ARI = %v", ari)
	}

	// Halo detection on the same cluster engine.
	halo, err := core.RunLSHHalo(context.Background(), staged, res.Rho, labels, res.Stats.Dc, core.LSHConfig{
		Config:   core.Config{Engine: master, Seed: 3},
		Accuracy: 0.99, M: 8, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(halo.Halo) != staged.N() {
		t.Fatalf("halo flags = %d", len(halo.Halo))
	}

	// Store the labels back into the DFS and read them out.
	out := make([]mapreduce.Pair, len(labels))
	for i, l := range labels {
		out[i] = mapreduce.Pair{Key: "label", Value: []byte{byte(l)}}
	}
	if err := dfsio.SavePairs(fsc, "out/labels", out, 2); err != nil {
		t.Fatal(err)
	}
	back, err := dfsio.LoadPairs(fsc, "out/labels")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(labels) {
		t.Fatalf("round-tripped %d labels", len(back))
	}
}

// TestLSHDDPApproximatesExactOnAllRegistrySets sweeps every Table II data
// set (shrunk) and checks τ₂ stays high at A=0.99.
func TestLSHDDPApproximatesExactOnAllRegistrySets(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep in -short mode")
	}
	eng := &mapreduce.LocalEngine{Parallelism: 4}
	for _, spec := range dataset.Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ds := spec.Gen(11)
			if ds.N() > 2500 {
				ds.Points = ds.Points[:2500]
				if ds.Labels != nil {
					ds.Labels = ds.Labels[:2500]
				}
			}
			dc := dp.CutoffByPercentile(ds, 0.02, 1)
			exact, err := dp.Compute(ds, dc, dp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
				Config:   core.Config{Engine: eng, Dc: dc, Seed: 5},
				Accuracy: 0.99, M: 10, Pi: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			tau2, err := evalmetrics.Tau2(exact.Rho, res.Rho)
			if err != nil {
				t.Fatal(err)
			}
			if tau2 < 0.95 {
				t.Fatalf("tau2 = %v on %s", tau2, spec.Name)
			}
		})
	}
}

// TestDistributedKMeansOnCluster runs kmeansmr on the rpcmr engine.
func TestDistributedKMeansOnCluster(t *testing.T) {
	rpcmr.RegisterJobs(kmeansmr.JobFactories())
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var workers []*rpcmr.Worker
	for i := 0; i < 2; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	ds := dataset.Blobs("kmr-rpc", 500, 3, 3, 400, 2, 13)
	res, err := kmeansmr.Run(context.Background(), ds, kmeansmr.Config{
		Engine: master, K: 3, MaxIter: 15, Tol: 1e-9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := evalmetrics.ARI(ds.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.99 {
		t.Fatalf("distributed k-means ARI = %v", ari)
	}
}
