package repro

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
)

// TestDagCacheReuseAcrossPipelineRuns shares one cached DAG session
// across two identical LSH-DDP runs: the second run must be served
// entirely from the node-result cache — zero new MapReduce jobs, every
// node a cache hit — and still return bit-identical results.
func TestDagCacheReuseAcrossPipelineRuns(t *testing.T) {
	ds := dataset.Blobs("dag-reuse", 800, 4, 4, 200, 2, 21)
	drv := mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 4})
	sess := dag.NewSession(drv, dag.Options{CacheBytes: 64 << 20})
	cfg := core.LSHConfig{
		Config:   core.Config{Session: sess, Seed: 5},
		Accuracy: 0.99, M: 8, Pi: 3,
	}

	first, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobsAfterFirst := len(drv.Jobs())
	if jobsAfterFirst == 0 {
		t.Fatal("first run executed no jobs")
	}
	if hits := first.Stats.Dag[dag.CtrCacheHits]; hits != 0 {
		t.Fatalf("first run already had %d cache hits", hits)
	}

	second, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(drv.Jobs()); n != jobsAfterFirst {
		t.Fatalf("second run launched %d new MapReduce jobs, want 0", n-jobsAfterFirst)
	}
	if hits := second.Stats.Dag[dag.CtrCacheHits]; hits == 0 {
		t.Fatalf("second run had no cache hits: %v", second.Stats.Dag)
	}
	if n := second.Stats.Dag[dag.CtrNodes]; n != 0 {
		t.Fatalf("second run executed %d job nodes, want all cached", n)
	}
	if n := second.Stats.Dag[dag.CtrTransforms]; n != 0 {
		t.Fatalf("second run executed %d transforms, want all cached", n)
	}
	for i := range first.Rho {
		if first.Rho[i] != second.Rho[i] || first.Delta[i] != second.Delta[i] || first.Upslope[i] != second.Upslope[i] {
			t.Fatalf("cached rerun diverged at point %d", i)
		}
	}
}

// TestDagSessionSharesWorkAcrossPipelines reuses one session for LSH-DDP
// and then the halo pass: the halo pipeline stages its own labeled input
// but runs on the same session, so session counters accumulate and the
// runner's job history carves cleanly per pipeline (the d_c sample job is
// not re-run by halo, which takes dc as an argument).
func TestDagSessionSharesWorkAcrossPipelines(t *testing.T) {
	ds := dataset.Blobs("dag-share", 700, 3, 3, 180, 2, 22)
	drv := mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 4})
	sess := dag.NewSession(drv, dag.Options{CacheBytes: 64 << 20})
	cfg := core.LSHConfig{
		Config:   core.Config{Session: sess, Seed: 6},
		Accuracy: 0.99, M: 8, Pi: 3,
	}
	res, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, labels, err := res.Cluster(ds, core.SelectTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	lshJobs := len(res.Stats.Jobs)

	halo, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(halo.Halo) != ds.N() {
		t.Fatalf("halo flags = %d", len(halo.Halo))
	}
	// Per-pipeline stats must cover only each pipeline's own jobs even
	// though both ran on one shared runner.
	if got := len(halo.Stats.Jobs); got != 2 {
		t.Fatalf("halo pipeline recorded %d jobs, want its own 2", got)
	}
	if total := len(drv.Jobs()); total != lshJobs+2 {
		t.Fatalf("runner has %d jobs, want %d lsh + 2 halo", total, lshJobs)
	}
}
