// Halo detection and automatic k: the extension features on top of the
// paper's pipeline. Two overlapping Gaussian clusters are clustered with
// LSH-DDP; the number of clusters is suggested automatically from the
// decision graph's γ spectrum; and the distributed halo jobs flag the
// low-density boundary points between the clusters (the original DP
// paper's cluster-core/halo split, computed with two extra LSH-partitioned
// MapReduce jobs).
//
// Run with:
//
//	go run ./examples/halo
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/points"
)

func main() {
	// Two clusters whose tails overlap — the regime where halo detection
	// earns its keep: boundary membership is genuinely ambiguous.
	rng := points.NewRand(7)
	var vs []points.Vector
	for i := 0; i < 700; i++ {
		vs = append(vs, points.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
	}
	for i := 0; i < 700; i++ {
		vs = append(vs, points.Vector{13 + rng.NormFloat64()*3, rng.NormFloat64() * 3})
	}
	ds := points.FromVectors("overlap", vs)

	cfg := core.LSHConfig{
		Config:   core.Config{Seed: 1},
		Accuracy: 0.99, M: 10, Pi: 3,
	}
	res, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Let the γ-gap heuristic pick k.
	g, err := res.Graph()
	if err != nil {
		log.Fatal(err)
	}
	g.Rectify()
	k := g.SuggestK(20)
	fmt.Printf("suggested k = %d\n", k)
	peaks := g.SelectTopK(k)
	labels, err := g.Assign(ds, peaks)
	if err != nil {
		log.Fatal(err)
	}

	// Distributed halo detection: two more MapReduce jobs.
	hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	halo := 0
	for _, h := range hr.Halo {
		if h {
			halo++
		}
	}
	fmt.Printf("halo points: %d of %d (border densities: %v)\n", halo, ds.N(), trim(hr.Border))

	// Halo points are the low-density periphery of each cluster — the
	// points whose membership is least reliable. Quantify both views:
	// mean density, and mean distance from the own cluster's center.
	centers := []points.Vector{{0, 0}, {13, 0}}
	var haloRho, coreRho, haloDist, coreDist float64
	for i, h := range hr.Halo {
		c := centers[labels[i]%2]
		d := points.Dist(ds.Points[i].Pos, c)
		if h {
			haloRho += res.Rho[i]
			haloDist += d
		} else {
			coreRho += res.Rho[i]
			coreDist += d
		}
	}
	nh, nc := float64(halo), float64(ds.N()-halo)
	fmt.Printf("mean density:              halo %6.2f vs core %6.2f\n", haloRho/nh, coreRho/nc)
	fmt.Printf("mean distance from center: halo %6.2f vs core %6.2f\n", haloDist/nh, coreDist/nc)
	fmt.Println("(halo = each cluster's sparse rim, where membership is least reliable)")
}

func trim(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.1f", x)
	}
	return out
}
