// Algorithm comparison on shaped data: the Figure 8 / Table III story.
// DP against agglomerative hierarchical, K-means, EM, and DBSCAN on three
// sets where cluster shape matters: Aggregation (touching blobs of very
// different sizes), TwoMoons (interleaved half-circles), and Rings
// (concentric circles). Quality is ARI against the generator's labels.
//
// Run with:
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/decision"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
	"repro/internal/points"
)

func main() {
	sets := []*points.Dataset{
		dataset.Aggregation(42),
		dataset.TwoMoons(600, 0.07, 42),
		dataset.Rings(900, 3, 0.12, 42),
	}
	fmt.Printf("%-12s %-6s %-14s %-8s\n", "dataset", "k", "algorithm", "ARI")
	for _, ds := range sets {
		k := numClusters(ds.Labels)
		dc := dp.CutoffByPercentile(ds, 0.02, 1)

		// DP.
		res, err := dp.Compute(ds, dc, dp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		g, err := decision.NewGraph(res.Rho, res.Delta, res.Upslope)
		if err != nil {
			log.Fatal(err)
		}
		g.Rectify()
		labels32, err := g.Assign(ds, g.SelectTopK(k))
		if err != nil {
			log.Fatal(err)
		}
		report(ds, k, "DP", evalmetrics.IntLabels(labels32))

		// Hierarchical (single link).
		hier, err := baselines.Hierarchical(ds, k, baselines.SingleLink)
		if err != nil {
			log.Fatal(err)
		}
		report(ds, k, "hierarchical", hier)

		// K-means.
		km, err := baselines.KMeans(ds, k, 100, 1)
		if err != nil {
			log.Fatal(err)
		}
		report(ds, k, "k-means", km.Labels)

		// EM.
		em, err := baselines.EM(ds, k, 100, 1e-6, 1)
		if err != nil {
			log.Fatal(err)
		}
		report(ds, k, "EM", em.Labels)

		// DBSCAN with eps = dc, minPts = 1 (the paper's configuration).
		db, err := baselines.DBSCAN(ds, dc, 1)
		if err != nil {
			log.Fatal(err)
		}
		report(ds, k, "DBSCAN", db.Labels)
		fmt.Println()
	}
	fmt.Println("expected: DP handles all three shapes; centroid methods (k-means, EM)")
	fmt.Println("fail on moons/rings; single-link hierarchical and DBSCAN depend")
	fmt.Println("critically on the density gap between clusters.")
}

func report(ds *points.Dataset, k int, algo string, labels []int) {
	ari, err := evalmetrics.ARI(ds.Labels, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-6d %-14s %-8.4f\n", ds.Name, k, algo, ari)
}

func numClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
