// Quickstart: cluster a synthetic data set with LSH-DDP in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	// A 2-D data set of 2000 points in 5 Gaussian clusters.
	ds := dataset.Blobs("quickstart", 2000, 2, 5, 200, 4, 42)

	// Run LSH-DDP with the paper's recommended parameters: expected
	// accuracy A=0.99, M=10 hash layouts, π=3 functions per layout. The
	// cutoff distance d_c and the hash width w are derived automatically.
	res, err := core.RunLSHDDP(ds, core.LSHConfig{
		Config:   core.Config{Seed: 1},
		Accuracy: 0.99,
		M:        10,
		Pi:       3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Centralized step: pick the 5 most peak-like points on the decision
	// graph and assign every point to its density peak.
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d points into %d clusters\n", ds.N(), len(peaks))
	fmt.Printf("parameters: dc=%.4g w=%.4g (A=0.99, M=%d, pi=%d)\n",
		res.Stats.Dc, res.Stats.W, res.Stats.M, res.Stats.Pi)
	fmt.Printf("cost: %.3fs wall, %.2f MB shuffled, %d distance computations\n",
		res.Stats.Wall.Seconds(), float64(res.Stats.ShuffleBytes)/(1<<20), res.Stats.DistanceComputations)

	sizes := make(map[int32]int)
	for _, l := range labels {
		sizes[l]++
	}
	for c, p := range peaks {
		fmt.Printf("cluster %d: peak point %4d at %v, %d members\n",
			c, p, ds.Points[p].Pos, sizes[int32(c)])
	}

	// How well did we do against the generator's ground truth?
	agree := 0
	for c := range peaks {
		counts := map[int]int{}
		for i, l := range labels {
			if int(l) == c {
				counts[ds.Labels[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		agree += best
	}
	fmt.Printf("purity vs ground truth: %.4f\n", float64(agree)/float64(ds.N()))
}
