// Quickstart: cluster a synthetic data set with LSH-DDP in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -trace trace.jsonl      # + job trace
//	go run ./examples/quickstart -distributed            # 3-worker cluster
//
// The -distributed flag runs the exact same pipeline on an in-process
// rpcmr cluster (master + 3 workers over real RPC) through the same
// mapreduce.Runner interface — nothing in the algorithm changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/obs"
)

func main() {
	traceOut := flag.String("trace", "", "write a JSONL job trace to this file (and print the phase tree)")
	distributed := flag.Bool("distributed", false, "run on an in-process 3-worker rpcmr cluster instead of the local engine")
	flag.Parse()

	// A 2-D data set of 2000 points in 5 Gaussian clusters.
	ds := dataset.Blobs("quickstart", 2000, 2, 5, 200, 4, 42)

	cfg := core.Config{Seed: 1}

	// Pick the engine: in-process by default, or a real master + 3 workers
	// speaking net/rpc when -distributed is set.
	if *distributed {
		master, shutdown, err := startCluster(3)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		cfg.Engine = master
		fmt.Printf("engine: rpcmr cluster with %d workers\n", master.WorkerCount())
	} else {
		fmt.Println("engine: local (in-process)")
	}

	trace := &obs.Trace{}
	cfg.Trace = trace

	// Run LSH-DDP with the paper's recommended parameters: expected
	// accuracy A=0.99, M=10 hash layouts, π=3 functions per layout. The
	// cutoff distance d_c and the hash width w are derived automatically.
	res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
		Config:   cfg,
		Accuracy: 0.99,
		M:        10,
		Pi:       3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Centralized step: pick the 5 most peak-like points on the decision
	// graph and assign every point to its density peak.
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d points into %d clusters\n", ds.N(), len(peaks))
	fmt.Printf("parameters: dc=%.4g w=%.4g (A=0.99, M=%d, pi=%d)\n",
		res.Stats.Dc, res.Stats.W, res.Stats.M, res.Stats.Pi)
	fmt.Printf("cost: %.3fs wall, %.2f MB shuffled, %d distance computations\n",
		res.Stats.Wall.Seconds(), float64(res.Stats.ShuffleBytes)/(1<<20), res.Stats.DistanceComputations)

	// The trace's shuffle spans account exactly the bytes the shuffle
	// counter measures — the invariant that makes per-phase attribution
	// trustworthy on either engine.
	shuffleSpanBytes := obs.Totals(trace.Jobs())[obs.PhaseShuffle].Bytes
	fmt.Printf("trace check: shuffle span bytes = %d, shuffle.bytes counter = %d\n",
		shuffleSpanBytes, res.Stats.ShuffleBytes)
	if shuffleSpanBytes != res.Stats.ShuffleBytes {
		log.Fatal("trace invariant violated: shuffle span bytes != counter")
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s; phase tree:\n", *traceOut)
		trace.WriteTree(os.Stdout)
	}

	sizes := make(map[int32]int)
	for _, l := range labels {
		sizes[l]++
	}
	for c, p := range peaks {
		fmt.Printf("cluster %d: peak point %4d at %v, %d members\n",
			c, p, ds.Points[p].Pos, sizes[int32(c)])
	}

	// How well did we do against the generator's ground truth?
	agree := 0
	for c := range peaks {
		counts := map[int]int{}
		for i, l := range labels {
			if int(l) == c {
				counts[ds.Labels[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		agree += best
	}
	fmt.Printf("purity vs ground truth: %.4f\n", float64(agree)/float64(ds.N()))
}

// startCluster boots an in-process master plus n workers and waits for
// them to register. The workers execute jobs rebuilt from the shared
// factory registry, exactly as separate `mrd worker` processes would.
func startCluster(n int) (*rpcmr.Master, func(), error) {
	rpcmr.RegisterJobs(core.JobFactories())
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	var workers []*rpcmr.Worker
	shutdown := func() {
		for _, w := range workers {
			w.Close()
		}
		master.Close()
	}
	for i := 0; i < n; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		workers = append(workers, w)
	}
	if err := master.WaitWorkers(n, 10*time.Second); err != nil {
		shutdown()
		return nil, nil, err
	}
	return master, shutdown, nil
}
