// Distributed end-to-end: boots a REAL MapReduce cluster — a master and
// four workers talking over TCP on loopback — plus a mini-DFS (namenode +
// three datanodes), stores the input there, and runs the full LSH-DDP
// pipeline on the cluster engine. The science is verified against the
// in-process engine: results must match bit-for-bit.
//
// The same binaries work across machines: see cmd/mrd for standalone
// master/worker/namenode/datanode daemons.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dfs"
	"repro/internal/eddpc"
	"repro/internal/kmeansmr"
	"repro/internal/knnjoin"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/rpcmr"
)

func main() {
	// ---- Mini-DFS: namenode + 3 datanodes, replication 2 ----
	// Fault-tolerance timings are tightened from the daemon defaults so the
	// re-replication demo at the end converges in under a second.
	nn, err := dfs.NewNameNodeOpts("127.0.0.1:0", dfs.NameNodeOptions{
		Replication:       2,
		HeartbeatTimeout:  300 * time.Millisecond,
		ReplicateInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer nn.Close()
	var dataNodes []*dfs.DataNode
	for i := 0; i < 3; i++ {
		dn, err := dfs.StartDataNodeOpts(nn.Addr(), "127.0.0.1:0", dfs.DataNodeOptions{
			HeartbeatInterval: 60 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		dataNodes = append(dataNodes, dn)
		defer dn.Close()
	}
	fsClient, err := dfs.NewClient(nn.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer fsClient.Close()
	fsClient.BlockSize = 64 << 10
	fmt.Printf("dfs: namenode %s with 3 datanodes (replication 2)\n", nn.Addr())

	// Generate the input and store it in the DFS as CSV, the way a real
	// deployment would stage data in HDFS.
	ds := dataset.S2(42)
	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, ds); err != nil {
		log.Fatal(err)
	}
	if err := fsClient.Put("input/s2.csv", csvBuf.Bytes()); err != nil {
		log.Fatal(err)
	}
	info, err := fsClient.Stat("input/s2.csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dfs: stored input/s2.csv — %d bytes in %d replicated blocks\n", info.Size, info.Blocks)

	// ---- MapReduce cluster: master + 4 workers over TCP ----
	rpcmr.RegisterJobs(core.JobFactories())
	rpcmr.RegisterJobs(eddpc.JobFactories())
	rpcmr.RegisterJobs(kmeansmr.JobFactories())
	rpcmr.RegisterJobs(knnjoin.JobFactories())

	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	for i := 0; i < 4; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	fmt.Printf("mapreduce: master %s with %d workers\n\n", master.Addr(), master.WorkerCount())

	// Read the input back from the DFS and run LSH-DDP on the cluster.
	raw, err := fsClient.Get("input/s2.csv")
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := dataset.ReadCSV(bytes.NewReader(raw), "s2-from-dfs", true)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.LSHConfig{
		Config: core.Config{
			Engine: master,
			Seed:   1,
			Log: func(format string, args ...interface{}) {
				fmt.Printf("  "+format+"\n", args...)
			},
		},
		Accuracy: 0.99, M: 10, Pi: 3,
	}
	fmt.Println("running LSH-DDP on the TCP cluster:")
	distRes, err := core.RunLSHDDP(context.Background(), loaded, cfg)
	if err != nil {
		log.Fatal(err)
	}
	peaks, _, err := distRes.Cluster(loaded, core.SelectTopK(15))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster run: %d clusters in %.2fs, %.2f MB shuffled over TCP, %d distances\n",
		len(peaks), distRes.Stats.Wall.Seconds(),
		float64(distRes.Stats.ShuffleBytes)/(1<<20), distRes.Stats.DistanceComputations)

	// The logical shuffle volume above is the paper's metric; the wire
	// counters report what the streaming transport actually moved between
	// workers (reducer-local partitions never touch the network, so the
	// wire volume is smaller).
	fmt.Printf("wire traffic: %.2f MB framed, %.2f MB sent (worker-to-worker streams)\n",
		float64(master.TotalCounter(mapreduce.CtrShuffleWireBytes))/(1<<20),
		float64(master.TotalCounter(mapreduce.CtrShuffleWireBytesCompressed))/(1<<20))

	// Verify against the in-process engine: identical science.
	localCfg := cfg
	localCfg.Engine = &mapreduce.LocalEngine{}
	localCfg.Log = nil
	localRes, err := core.RunLSHDDP(context.Background(), loaded, localCfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := range localRes.Rho {
		if distRes.Rho[i] != localRes.Rho[i] || distRes.Delta[i] != localRes.Delta[i] {
			log.Fatalf("distributed result diverged at point %d: rho %v vs %v, delta %v (up %d) vs %v (up %d)",
				i, distRes.Rho[i], localRes.Rho[i],
				distRes.Delta[i], distRes.Upslope[i], localRes.Delta[i], localRes.Upslope[i])
		}
	}
	fmt.Println("verified: distributed results are bit-identical to the local engine")

	// ---- Storage fault tolerance demo: kill a datanode and watch the
	// namenode heal the input file back to full replication. ----
	fmt.Println("\nkilling one datanode; waiting for re-replication…")
	dataNodes[0].Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ctrs := nn.Counters()
		if ctrs["dfs.rereplications"] > 0 && ctrs["dfs.blocks.underreplicated"] == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if raw2, err := fsClient.Get("input/s2.csv"); err != nil || !bytes.Equal(raw2, raw) {
		log.Fatalf("input no longer intact after datanode death: %v", err)
	}
	fmt.Println("input re-read bit-identical from the surviving replicas")
	fmt.Println("dfs counters:")
	for _, name := range []string{"dfs.heartbeats", "dfs.nodes.dead", "dfs.rereplications", "dfs.blocks.underreplicated", "dfs.blocks.corrupt"} {
		fmt.Printf("  %-28s %d\n", name, nn.Counters()[name])
	}
}
