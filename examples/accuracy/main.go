// Accuracy/efficiency trade-off: Section V in action. The example sweeps
// the expected accuracy A, letting the solver pick the minimal hash width
// each time, and reports realized accuracy (τ₁, τ₂ against exact DP) next
// to cost (runtime, distance computations). It then asks the Section V
// cost model to recommend an (M, π, w) configuration for A=0.99.
//
// Run with:
//
//	go run ./examples/accuracy
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
	"repro/internal/tuning"
)

func main() {
	ds := dataset.BigCross(6000, 42)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	fmt.Printf("BigCross sample: %d points, dim %d, dc=%.4g\n", ds.N(), ds.Dim(), dc)

	fmt.Println("computing exact DP reference...")
	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %-10s %-8s %-8s %-9s %-12s\n", "A", "w", "tau1", "tau2", "runtime", "dist")
	for _, accuracy := range []float64{0.5, 0.7, 0.9, 0.95, 0.99} {
		res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
			Config:   core.Config{Seed: 1, Dc: dc},
			Accuracy: accuracy, M: 10, Pi: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		tau1, err := evalmetrics.Tau1(exact.Rho, res.Rho)
		if err != nil {
			log.Fatal(err)
		}
		tau2, err := evalmetrics.Tau2(exact.Rho, res.Rho)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f %-10.4g %-8.4f %-8.4f %-9s %-12d\n",
			accuracy, res.Stats.W, tau1, tau2,
			fmt.Sprintf("%.3fs", res.Stats.Wall.Seconds()), res.Stats.DistanceComputations)
	}

	// Parameter recommendation from the Section V cost model, with the
	// shuffle/compute time ratio mu calibrated on this machine.
	mu := tuning.CalibrateMu(ds.Dim(), 1)
	fmt.Printf("\ncalibrated mu (shuffle-byte time / distance time) = %.4f\n", mu)
	fmt.Println("cost-model recommendation for A=0.99 (cheapest first):")
	model := &tuning.Model{N: ds.N(), Dim: ds.Dim(), Dc: dc, Seed: 1, Mu: mu}
	costs, err := model.Recommend(ds, 0.99, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %-4s %-10s %-12s %-14s %-10s\n", "M", "pi", "w", "E[shuffle]", "E[distances]", "accuracy")
	for i, c := range costs {
		if i >= 8 {
			break
		}
		fmt.Printf("%-4d %-4d %-10.4g %-12s %-14s %-10.4f\n",
			c.M, c.Pi, c.W,
			fmt.Sprintf("%.1fMB", c.ShuffleBytes/(1<<20)),
			fmt.Sprintf("%.2gM", c.Distances/1e6),
			c.Accuracy)
	}
	best := costs[0]
	fmt.Printf("\nrecommended: M=%d pi=%d w=%.4g\n", best.M, best.Pi, best.W)
}
