// Decision-graph exploration: the user-facing feature that distinguishes
// DP from other clustering algorithms. This example reproduces the Figure 7
// story on the S2 data set: it renders the exact (Basic-DDP) decision graph
// and the approximate (LSH-DDP) one side by side, shows where LSH-DDP's
// infinite-δ local peaks land after rectification, and demonstrates how the
// clustering responds to different selection boxes.
//
// Run with:
//
//	go run ./examples/decisiongraph
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	ds := dataset.S2(42)
	fmt.Printf("S2: %d points, 15 generated clusters\n\n", ds.N())

	basic, err := core.RunBasicDDP(context.Background(), ds, core.BasicConfig{
		Config: core.Config{Seed: 1, DcPercentile: 0.02},
	})
	if err != nil {
		log.Fatal(err)
	}
	lshRes, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
		Config:   core.Config{Seed: 1, Dc: basic.Stats.Dc},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	infs := 0
	for _, d := range lshRes.Delta {
		if math.IsInf(d, 1) {
			infs++
		}
	}

	bg, err := basic.Graph()
	if err != nil {
		log.Fatal(err)
	}
	bg.Rectify()
	lg, err := lshRes.Graph()
	if err != nil {
		log.Fatal(err)
	}
	lg.Rectify()

	bPeaks := bg.SelectTopK(15)
	lPeaks := lg.SelectTopK(15)

	fmt.Printf("Basic-DDP (exact) decision graph, top-15 peaks marked P:\n")
	fmt.Print(bg.Render(90, 22, bPeaks))
	fmt.Printf("\nLSH-DDP (approximate) decision graph — %d points had infinite delta\n", infs)
	fmt.Printf("(local absolute peaks), rectified to the max finite delta:\n")
	fmt.Print(lg.Render(90, 22, lPeaks))

	// Peak sensitivity: how the cluster count responds to the selection
	// box, on both graphs. The flat plateau around the true k=15 is what
	// makes peak selection easy for a human.
	fmt.Printf("\nselection-box sensitivity (delta threshold sweep, rho > 5):\n")
	fmt.Printf("%-12s %-10s %-10s\n", "delta-min", "basic", "lsh")
	maxDelta := 0.0
	for _, d := range bg.Delta {
		if d > maxDelta {
			maxDelta = d
		}
	}
	for _, frac := range []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60} {
		dmin := maxDelta * frac
		fmt.Printf("%-12.4g %-10d %-10d\n", dmin, len(bg.SelectBox(5, dmin)), len(lg.SelectBox(5, dmin)))
	}

	// Agreement of the two clusterings at k=15.
	bl, err := bg.Assign(ds, bPeaks)
	if err != nil {
		log.Fatal(err)
	}
	ll, err := lg.Assign(ds, lPeaks)
	if err != nil {
		log.Fatal(err)
	}
	agree, total := 0, 0
	for i := 0; i < ds.N(); i += 2 {
		for j := i + 1; j < ds.N(); j += 5 {
			total++
			if (bl[i] == bl[j]) == (ll[i] == ll[j]) {
				agree++
			}
		}
	}
	fmt.Printf("\npairwise agreement between Basic-DDP and LSH-DDP clusterings: %.4f\n",
		float64(agree)/float64(total))
	fmt.Printf("runtimes: basic %.2fs (dist %d), lsh %.2fs (dist %d)\n",
		basic.Stats.Wall.Seconds(), basic.Stats.DistanceComputations,
		lshRes.Stats.Wall.Seconds(), lshRes.Stats.DistanceComputations)
}
