// Command dagbench measures what the job-DAG scheduler buys over the
// hand-sequenced pipeline style it replaced. Both arms run the same
// LSH-DDP + halo pipeline pair the same number of times:
//
//   - "fresh" replays the pre-scheduler behavior: every repetition gets
//     a fresh session with no node cache, so every job re-executes and
//     the input is re-staged each round — exactly the work the old
//     hand-sequenced drivers did per invocation;
//   - "cached" shares one session with a node-result cache across the
//     repetitions, so repeated (input, conf) sub-graphs are served from
//     cache without touching the MapReduce engine.
//
// Usage:
//
//	dagbench -n 20000 -dim 8 -runs 3 -json BENCH_PR6.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

func main() {
	var (
		n        = flag.Int("n", 20000, "points in the generated blob dataset")
		dim      = flag.Int("dim", 8, "dimensions")
		clusters = flag.Int("clusters", 8, "blob clusters")
		runs     = flag.Int("runs", 3, "pipeline repetitions per arm")
		seed     = flag.Int64("seed", 1, "seed for data generation and algorithms")
		cacheMB  = flag.Int("cache-mb", 256, "node-result cache size for the cached arm")
		jsonOut  = flag.String("json", "", "write the result snapshot to this JSON file")
	)
	flag.Parse()

	ds := dataset.Blobs("dagbench", *n, *dim, *clusters, 300, 3, *seed)
	fresh := runArm(ds, *runs, *seed, 0)
	cached := runArm(ds, *runs, *seed, *cacheMB)

	fmt.Printf("%d points, dim %d, %d runs of LSH-DDP + halo per arm\n\n", *n, *dim, *runs)
	fmt.Printf("%-28s %10s %8s %14s %12s\n", "arm", "wall", "jobs", "staged-bytes", "cache-hits")
	for _, a := range []arm{fresh, cached} {
		fmt.Printf("%-28s %9.2fs %8d %14d %12d\n", a.Arm, a.WallSeconds, a.Jobs, a.StagedBytes, a.CacheHits)
	}
	fmt.Printf("\ncached arm: %.1fx wall, %.1f%% of jobs, %.1f%% of staged bytes\n",
		fresh.WallSeconds/cached.WallSeconds,
		100*float64(cached.Jobs)/float64(fresh.Jobs),
		100*float64(cached.StagedBytes)/float64(fresh.StagedBytes))

	if *jsonOut != "" {
		snap := snapshot{
			PR:      6,
			Title:   "Job-DAG scheduler: cached session vs hand-sequenced-equivalent fresh runs",
			Machine: fmt.Sprintf("%s/%s, %s", runtime.GOOS, runtime.GOARCH, runtime.Version()),
			Command: fmt.Sprintf("dagbench -n %d -dim %d -clusters %d -runs %d -cache-mb %d", *n, *dim, *clusters, *runs, *cacheMB),
			Setup: fmt.Sprintf("%d-point dim-%d blob dataset; each arm runs the LSH-DDP pipeline (d_c sample + 4 jobs + transform) "+
				"then the 2-job halo pipeline, %d times; 'fresh' uses a new uncached session per repetition (the old hand-sequenced cost), "+
				"'cached' shares one session with a %dMB node-result cache so repeated sub-graphs are cache-served", *n, *dim, *runs, *cacheMB),
			Arms: []arm{fresh, cached},
		}
		f, err := os.Create(*jsonOut)
		fatal(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(snap))
		fatal(f.Close())
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// arm is one execution strategy's totals across the repetitions.
type arm struct {
	Arm         string  `json:"arm"`
	Runs        int     `json:"runs"`
	WallSeconds float64 `json:"wall_seconds"`
	Jobs        int     `json:"mapreduce_jobs"`
	StagedBytes int64   `json:"staged_bytes"`
	CacheHits   int64   `json:"cache_hits"`
	GCBytes     int64   `json:"gc_bytes"`
}

// snapshot is the BENCH_PR6.json document.
type snapshot struct {
	PR      int    `json:"pr"`
	Title   string `json:"title"`
	Machine string `json:"machine"`
	Command string `json:"command"`
	Setup   string `json:"setup"`
	Arms    []arm  `json:"arms"`
}

// runArm executes `runs` repetitions of LSH-DDP + halo. cacheMB == 0
// gives every repetition its own uncached session (the hand-sequenced
// equivalent); cacheMB > 0 shares one cached session across them.
func runArm(ds *points.Dataset, runs int, seed int64, cacheMB int) arm {
	name := "fresh (hand-sequenced)"
	var shared *dag.Session
	var drv *mapreduce.Driver
	if cacheMB > 0 {
		name = "cached session"
		drv = mapreduce.NewDriver(&mapreduce.LocalEngine{})
		shared = dag.NewSession(drv, dag.Options{CacheBytes: int64(cacheMB) << 20})
	}
	a := arm{Arm: name, Runs: runs}
	start := time.Now()
	for r := 0; r < runs; r++ {
		cfg := core.LSHConfig{
			Config:   core.Config{Seed: seed, Session: shared},
			Accuracy: 0.99, M: 10, Pi: 3,
		}
		res, err := core.RunLSHDDP(context.Background(), ds, cfg)
		fatal(err)
		_, labels, err := res.Cluster(ds, core.SelectTopK(8))
		fatal(err)
		halo, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, cfg)
		fatal(err)
		for _, st := range []core.Stats{res.Stats, halo.Stats} {
			a.Jobs += len(st.Jobs)
			a.StagedBytes += st.Dag[dag.CtrStageBytes]
			a.CacheHits += st.Dag[dag.CtrCacheHits]
			a.GCBytes += st.Dag[dag.CtrGCBytes]
		}
	}
	a.WallSeconds = time.Since(start).Seconds()
	return a
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dagbench: %v\n", err)
		os.Exit(1)
	}
}
