// Command datagen emits the synthetic evaluation data sets as CSV.
//
// Usage:
//
//	datagen -list
//	datagen -dataset S2 -o s2.csv
//	datagen -dataset BigCross500K -n 10000 -seed 7 -o big.csv
//	datagen -dataset BigCross500K -split 1000:9000 -seed 7 -o big.csv
//
// -split R:S draws R+S points and shuffles them into two disjoint files
// (a query set and a base set for the kNN-join tools), written next to -o
// with -R / -S inserted before the extension.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
)

func main() {
	var (
		name  = flag.String("dataset", "", "data set name (see -list)")
		n     = flag.Int("n", 0, "override the generated size (0 = registry size)")
		seed  = flag.Int64("seed", 42, "generation seed")
		out   = flag.String("o", "-", "output file ('-' = stdout)")
		list  = flag.Bool("list", false, "list available data sets")
		split = flag.String("split", "", "emit a disjoint R:S pair (e.g. 1000:9000); needs -o")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %10s %5s %12s\n", "name", "genN", "dim", "paperN")
		for _, spec := range dataset.Registry() {
			fmt.Printf("%-14s %10d %5d %12d\n", spec.Name, spec.N, spec.Dim, spec.PaperN)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: -dataset is required (or -list)")
		os.Exit(2)
	}
	spec, err := dataset.Get(*name)
	fatal(err)
	ds := spec.Gen(*seed)
	if *split != "" {
		var nR, nS int
		if _, err := fmt.Sscanf(*split, "%d:%d", &nR, &nS); err != nil || nR < 1 || nS < 1 {
			fatal(fmt.Errorf("bad -split %q, want R:S with positive counts", *split))
		}
		if *out == "-" || *out == "" {
			fatal(fmt.Errorf("-split needs -o (two files are written)"))
		}
		if nR+nS > ds.N() {
			fatal(fmt.Errorf("split %d+%d exceeds the %d points %s generates", nR, nS, ds.N(), *name))
		}
		ds.Points = ds.Points[:nR+nS]
		if ds.Labels != nil {
			ds.Labels = ds.Labels[:nR+nS]
		}
		R, S, err := dataset.Split(ds, nR, *seed)
		fatal(err)
		for _, half := range []*dataset.DS{R, S} {
			path := splitPath(*out, half.Name[strings.LastIndexByte(half.Name, '-')+1:])
			fatal(dataset.WriteCSVFile(path, half))
			fmt.Fprintf(os.Stderr, "datagen: wrote %d points (dim %d) to %s\n", half.N(), half.Dim(), path)
		}
		return
	}
	if *n > 0 {
		if *n > ds.N() {
			fatal(fmt.Errorf("requested %d points but %s generates %d; raise the registry size instead", *n, *name, ds.N()))
		}
		ds.Points = ds.Points[:*n]
		if ds.Labels != nil {
			ds.Labels = ds.Labels[:*n]
		}
	}
	if *out == "-" || *out == "" {
		fatal(dataset.WriteCSV(os.Stdout, ds))
		return
	}
	fatal(dataset.WriteCSVFile(*out, ds))
	fmt.Fprintf(os.Stderr, "datagen: wrote %d points (dim %d) to %s\n", ds.N(), ds.Dim(), *out)
}

// splitPath inserts -R / -S before the extension: big.csv → big-R.csv.
func splitPath(out, side string) string {
	if i := strings.LastIndexByte(out, '.'); i > strings.LastIndexByte(out, '/') {
		return out[:i] + "-" + side + out[i:]
	}
	return out + "-" + side
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}
