// Command datagen emits the synthetic evaluation data sets as CSV.
//
// Usage:
//
//	datagen -list
//	datagen -dataset S2 -o s2.csv
//	datagen -dataset BigCross500K -n 10000 -seed 7 -o big.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		name = flag.String("dataset", "", "data set name (see -list)")
		n    = flag.Int("n", 0, "override the generated size (0 = registry size)")
		seed = flag.Int64("seed", 42, "generation seed")
		out  = flag.String("o", "-", "output file ('-' = stdout)")
		list = flag.Bool("list", false, "list available data sets")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %10s %5s %12s\n", "name", "genN", "dim", "paperN")
		for _, spec := range dataset.Registry() {
			fmt.Printf("%-14s %10d %5d %12d\n", spec.Name, spec.N, spec.Dim, spec.PaperN)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: -dataset is required (or -list)")
		os.Exit(2)
	}
	spec, err := dataset.Get(*name)
	fatal(err)
	ds := spec.Gen(*seed)
	if *n > 0 {
		if *n > ds.N() {
			fatal(fmt.Errorf("requested %d points but %s generates %d; raise the registry size instead", *n, *name, ds.N()))
		}
		ds.Points = ds.Points[:*n]
		if ds.Labels != nil {
			ds.Labels = ds.Labels[:*n]
		}
	}
	if *out == "-" || *out == "" {
		fatal(dataset.WriteCSV(os.Stdout, ds))
		return
	}
	fatal(dataset.WriteCSVFile(*out, ds))
	fmt.Fprintf(os.Stderr, "datagen: wrote %d points (dim %d) to %s\n", ds.N(), ds.Dim(), *out)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}
