// Command clusterd is the online cluster-serving daemon: it loads a cluster
// model artifact (exported by `ddp -export-model`) and answers point→cluster
// assignment queries over HTTP/JSON, using the model's LSH parameters as an
// approximate-nearest-neighbor index so a query scans a few buckets instead
// of the whole labeled dataset.
//
// Usage:
//
//	clusterd -model model.ddpm -listen :8080
//	clusterd -model /models/m.ddpm -namenode host:9000   # artifact in the DFS
//
// Endpoints:
//
//	POST /assign  {"points": [[x1,x2,...], ...]}
//	              → {"results": [{"cluster":..,"halo":..,"nearest":..,
//	                 "dist":..,"peak_dist":..,"exact":..}, ...]}
//	GET  /healthz liveness/readiness probe (503 while draining or modelless)
//	GET  /statsz  serve.* counters, latency quantiles, queue occupancy
//	POST /reload  re-read the model artifact and swap it in atomically
//
// SIGHUP also triggers a reload; SIGINT/SIGTERM drain in-flight requests and
// exit. Concurrent requests are micro-batched into single kernel passes, and
// a bounded admission queue sheds excess load with 429 instead of queueing
// without bound — see OPERATIONS.md for the runbook.
//
// As a fleet member, clusterd loads a fleetctl sub-model and runs with
// -shard N: /statsz then reports the shard id (routerd verifies it at
// startup) and the shard-internal POST /fleet/assign endpoint answers the
// router's masked scans. See OPERATIONS.md "Running a fleet".
//
// With -ingest-dir the daemon becomes an ingest node: POST /ingest appends
// points into a WAL-backed delta segment (immediately assignable, no
// restart), a background compactor merges them into versioned artifacts
// (POST /compact forces one), and /reload is disabled — the compactor owns
// the model lineage. SIGHUP triggers a compaction instead of a reload. See
// OPERATIONS.md "Streaming ingest".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "cluster model artifact: local path, or DFS path with -namenode (required)")
		namenode  = flag.String("namenode", "", "load the model from the mini-DFS at this namenode address")
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		batchMax  = flag.Int("batch-max", 64, "flush a batch at this many query points (serve.batch.max)")
		linger    = flag.Duration("batch-linger", 0, "wait this long for more requests before flushing a non-full batch (serve.batch.linger)")
		queue     = flag.Int("queue", 128, "admission queue bound; excess requests get 429 (serve.queue.depth)")
		workers   = flag.Int("workers", 1, "concurrent requests processed per batch (serve.workers)")
		maxPts    = flag.Int("max-points", 1024, "maximum points per request (serve.max.request.points)")
		exact     = flag.Bool("exact", false, "disable LSH pruning; answer every query by full scan (serve.exact)")
		shard     = flag.Int("shard", -1, "fleet shard id this daemon serves (reported in /statsz for routerd's startup check; -1 = not in a fleet)")
		hdrTO     = flag.Duration("read-header-timeout", 0, "bound on reading a request's headers (0 = 5s default, negative disables) (serve.read.header.timeout)")
		idleTO    = flag.Duration("idle-timeout", 0, "keep-alive idle connection bound (0 = 2m default, negative disables) (serve.idle.timeout)")
		precision = flag.String("precision", "f64", "scan precision: f64, f32, or q8 — compact scans re-rank exactly, results are identical (serve.scan.precision)")
		traceOut  = flag.String("trace", "", "write a JSONL trace with one span per request to this file on exit (debugging; unbounded)")
		verbose   = flag.Bool("v", false, "log server events")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address")

		ingestDir  = flag.String("ingest-dir", "", "enable streaming ingest: WAL + compacted artifacts live here (ingest.dir)")
		compactInt = flag.Duration("compact-interval", 30*time.Second, "background compaction period; 0 = manual /compact only (ingest.compact.interval)")
		compactMin = flag.Int("compact-min-points", 1024, "periodic compactions wait for this many delta points (ingest.compact.min.points)")
		ingFsync   = flag.Bool("ingest-fsync", false, "fsync the WAL on every ingest batch (ingest.wal.fsync)")
		ingMax     = flag.Int("ingest-max-delta", 1<<20, "delta segment bound; full delta sheds ingests with 429 (ingest.delta.max)")
		ingIDBase  = flag.Int64("ingest-id-base", 0, "first global ID for ingested points; 0 = base model max + 1 (ingest.id.base)")
		ingIDStr   = flag.Int64("ingest-id-stride", 1, "global-ID increment between ingested points; fleet shards use the shard count (ingest.id.stride)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "clusterd: -model is required")
		flag.Usage()
		os.Exit(2)
	}

	loader := func() (*model.Model, error) { return model.ReadFile(*modelPath) }
	if *namenode != "" {
		loader = func() (*model.Model, error) {
			client, err := dfs.NewClient(*namenode)
			if err != nil {
				return nil, err
			}
			defer client.Close()
			return dfsio.LoadModel(client, *modelPath)
		}
	}

	cfg := serve.Config{
		BatchMax:          *batchMax,
		BatchLinger:       *linger,
		QueueDepth:        *queue,
		Workers:           *workers,
		MaxRequestPoints:  *maxPts,
		ReadHeaderTimeout: *hdrTO,
		IdleTimeout:       *idleTO,
		ExactOnly:         *exact,
		Precision:         *precision,
		Loader:            loader,
	}
	if *shard >= 0 {
		cfg.ShardID = shard
	}
	if _, err := serve.ParsePrecision(*precision); err != nil {
		fatal(err)
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var trace *obs.Trace
	if *traceOut != "" {
		trace = &obs.Trace{}
		cfg.Trace = trace
	}
	if *pprofAddr != "" {
		p, err := obs.StartPprof(*pprofAddr)
		fatal(err)
		fmt.Fprintf(os.Stderr, "clusterd: pprof on http://%s/debug/pprof/\n", p.Addr())
	}

	srv := serve.New(cfg)
	var store *ingest.Store
	if *ingestDir != "" {
		var err error
		store, err = ingest.Open(ingest.Config{
			Dir:       *ingestDir,
			Precision: *precision,
			Interval:  *compactInt,
			MinPoints: *compactMin,
			MaxDelta:  *ingMax,
			Fsync:     *ingFsync,
			IDBase:    *ingIDBase,
			IDStride:  *ingIDStr,
			OnSwap:    srv.UseEngine,
			Log:       cfg.Log,
		}, loader)
		fatal(err)
		srv.SetIngest(store)
		srv.UseEngine(store.Engine())
	} else {
		fatal(srv.Reload()) // initial model load, through the same path SIGHUP uses
	}
	fatal(srv.Start(*listen))
	fmt.Fprintf(os.Stderr, "clusterd: serving on %s (model %s)\n", srv.Addr(), *modelPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP {
			if store != nil {
				if info, err := store.Compact(); err != nil {
					fmt.Fprintf(os.Stderr, "clusterd: compaction failed, keeping old base: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "clusterd: compacted to version %d (%d rows)\n", info.Version, info.BaseN)
				}
				continue
			}
			if err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "clusterd: reload failed, keeping old model: %v\n", err)
			} else {
				fmt.Fprintln(os.Stderr, "clusterd: model reloaded")
			}
			continue
		}
		break
	}

	fmt.Fprintln(os.Stderr, "clusterd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fatal(srv.Shutdown(ctx))
	if store != nil {
		fatal(store.Close()) // unflushed delta replays from the WAL next start
	}
	fmt.Fprint(os.Stderr, srv.Counters().String())
	if trace != nil {
		f, err := os.Create(*traceOut)
		fatal(err)
		fatal(trace.WriteJSONL(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "clusterd: trace written to %s\n", *traceOut)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterd: %v\n", err)
		os.Exit(1)
	}
}
