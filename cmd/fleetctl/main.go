// Command fleetctl prepares serving fleets: it partitions a full cluster
// model artifact into per-shard sub-models routed by consistent hashing
// over LSH bucket keys, plus the fleet.json manifest routerd routes by.
//
// Usage:
//
//	fleetctl partition -model model.ddpm -shards 4 -out fleetdir
//
// writes fleetdir/shard-000.ddpm … shard-003.ddpm and fleetdir/fleet.json.
// Each sub-model holds only the rows of the buckets its shard owns (plus
// every cluster peak, replicated so halo fields and the exact fallback work
// anywhere) and a RowIDs section mapping local rows back to global point
// IDs. Start one clusterd per artifact with the matching -shard id, then
// point routerd at the manifest — see OPERATIONS.md "Running a fleet".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fleet"
	"repro/internal/model"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "partition" {
		fmt.Fprintln(os.Stderr, "usage: fleetctl partition -model model.ddpm -shards N [-vnodes V] -out dir")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "", "full cluster model artifact to partition (required)")
		shards    = fs.Int("shards", 0, "shard count (required, >= 1)")
		vnodes    = fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		out       = fs.String("out", "", "output directory for shard artifacts and fleet.json (required)")
	)
	fs.Parse(os.Args[2:]) //nolint:errcheck // ExitOnError
	if *modelPath == "" || *out == "" || *shards < 1 {
		fs.Usage()
		os.Exit(2)
	}

	m, err := model.ReadFile(*modelPath)
	fatal(err)
	fmt.Fprintf(os.Stderr, "fleetctl: partitioning %q (%d points, dim %d, M=%d) into %d shards\n",
		m.Name, m.N(), m.Dim, m.LSH.M, *shards)
	subs, mf, err := fleet.Partition(m, *shards, *vnodes)
	fatal(err)
	if len(mf.Overrides) > 0 {
		fmt.Fprintf(os.Stderr, "fleetctl: %d heavy buckets re-placed for balance (recorded in the manifest)\n",
			len(mf.Overrides))
	}

	fatal(os.MkdirAll(*out, 0o755))
	total := 0
	for s, sub := range subs {
		path := filepath.Join(*out, fmt.Sprintf("shard-%03d.ddpm", s))
		fatal(sub.WriteFile(path))
		total += sub.N()
		fmt.Fprintf(os.Stderr, "fleetctl: %s: %d rows (%.1f%% of source)\n",
			path, sub.N(), 100*float64(sub.N())/float64(m.N()))
	}
	fatal(mf.Save(filepath.Join(*out, "fleet.json")))
	fmt.Fprintf(os.Stderr, "fleetctl: wrote %s (replication factor %.2f)\n",
		filepath.Join(*out, "fleet.json"), float64(total)/float64(m.N()))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetctl: %v\n", err)
		os.Exit(1)
	}
}
