// Command fleetctl prepares and operates serving fleets: it partitions a
// full cluster model artifact into per-shard sub-models routed by
// consistent hashing over LSH bucket keys (plus the fleet.json manifest
// routerd routes by), and rolls an ingesting fleet's compactions forward
// shard by shard.
//
// Usage:
//
//	fleetctl partition -model model.ddpm -shards 4 -out fleetdir
//	fleetctl rollover -shards "h0:8080|h0b:8080,h1:8080"
//
// partition writes fleetdir/shard-000.ddpm … shard-003.ddpm and
// fleetdir/fleet.json. Each sub-model holds only the rows of the buckets
// its shard owns (plus every cluster peak, replicated so halo fields and
// the exact fallback work anywhere) and a RowIDs section mapping local
// rows back to global point IDs. Start one clusterd per artifact with the
// matching -shard id, then point routerd at the manifest — see
// OPERATIONS.md "Running a fleet".
//
// rollover POSTs /compact to every replica of every shard, one shard at a
// time, waiting for each replica's /healthz between shards, so at most one
// shard is busy compacting and queries keep their availability — see
// OPERATIONS.md "Streaming ingest".
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/model"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "partition":
		partition(os.Args[2:])
	case "rollover":
		rollover(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fleetctl partition -model model.ddpm -shards N [-vnodes V] -out dir")
	fmt.Fprintln(os.Stderr, "       fleetctl rollover -shards \"h0|h0b,h1\" [-timeout 5m]")
	os.Exit(2)
}

func partition(args []string) {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "", "full cluster model artifact to partition (required)")
		shards    = fs.Int("shards", 0, "shard count (required, >= 1)")
		vnodes    = fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		out       = fs.String("out", "", "output directory for shard artifacts and fleet.json (required)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *modelPath == "" || *out == "" || *shards < 1 {
		fs.Usage()
		os.Exit(2)
	}

	m, err := model.ReadFile(*modelPath)
	fatal(err)
	fmt.Fprintf(os.Stderr, "fleetctl: partitioning %q (%d points, dim %d, M=%d) into %d shards\n",
		m.Name, m.N(), m.Dim, m.LSH.M, *shards)
	subs, mf, err := fleet.Partition(m, *shards, *vnodes)
	fatal(err)
	if len(mf.Overrides) > 0 {
		fmt.Fprintf(os.Stderr, "fleetctl: %d heavy buckets re-placed for balance (recorded in the manifest)\n",
			len(mf.Overrides))
	}

	fatal(os.MkdirAll(*out, 0o755))
	total := 0
	for s, sub := range subs {
		path := filepath.Join(*out, fmt.Sprintf("shard-%03d.ddpm", s))
		fatal(sub.WriteFile(path))
		total += sub.N()
		fmt.Fprintf(os.Stderr, "fleetctl: %s: %d rows (%.1f%% of source)\n",
			path, sub.N(), 100*float64(sub.N())/float64(m.N()))
	}
	fatal(mf.Save(filepath.Join(*out, "fleet.json")))
	fmt.Fprintf(os.Stderr, "fleetctl: wrote %s (replication factor %.2f)\n",
		filepath.Join(*out, "fleet.json"), float64(total)/float64(m.N()))
}

// rollover compacts an ingesting fleet one shard at a time: every replica
// of a shard gets POST /compact (each replica owns its own ingest
// directory and delta), then every replica must answer /healthz before the
// next shard starts.
func rollover(args []string) {
	fs := flag.NewFlagSet("rollover", flag.ExitOnError)
	var (
		shards  = fs.String("shards", "", `replica addresses per shard: comma between shards, "|" between replicas (required; same syntax as routerd)`)
		timeout = fs.Duration("timeout", 5*time.Minute, "per-replica bound on compaction + health recovery")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *shards == "" {
		fs.Usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	for s, group := range strings.Split(*shards, ",") {
		for _, addr := range strings.Split(group, "|") {
			addr = strings.TrimSpace(addr)
			fmt.Fprintf(os.Stderr, "fleetctl: shard %d %s: compacting...\n", s, addr)
			resp, err := client.Post("http://"+addr+"/compact", "application/json", nil)
			fatal(err)
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fatal(fmt.Errorf("shard %d %s: /compact: HTTP %d: %s", s, addr, resp.StatusCode, strings.TrimSpace(string(body))))
			}
			fmt.Fprintf(os.Stderr, "fleetctl: shard %d %s: %s\n", s, addr, strings.TrimSpace(string(body)))
			fatal(waitHealthy(client, addr, *timeout))
		}
	}
	fmt.Fprintln(os.Stderr, "fleetctl: rollover complete")
}

func waitHealthy(client *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: not healthy after %v", addr, timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetctl: %v\n", err)
		os.Exit(1)
	}
}
