// Command routerd fronts a sharded clusterd fleet: it loads the fleet.json
// manifest fleetctl wrote, hashes each incoming query's LSH bucket keys on
// the same consistent-hash ring the partitioner used, and scatter-gathers
// the shard-internal /fleet/assign calls to only the shards owning those
// buckets. Merged answers are bit-identical to a single clusterd serving
// the full model; the public /assign contract (request shape, validation
// errors, 429/500 semantics, response bytes) is exactly clusterd's.
//
// Usage:
//
//	routerd -manifest fleetdir/fleet.json \
//	        -shards "host1:8080|host1b:8080,host2:8080" -listen :8090
//
// -shards lists replicas per shard: shards are comma-separated in ring
// order, replicas of one shard pipe-separated. Requests round-robin over a
// shard's alive replicas, hedge to a second replica after a p99-based delay
// (-hedge), and fail over on transport errors. A background prober marks a
// replica dead after -dead-after without a successful /healthz and revives
// it when probes succeed again.
//
// Endpoints:
//
//	POST /assign  exactly clusterd's contract, served fleet-wide
//	GET  /healthz router liveness
//	GET  /statsz  fleet.* counters, per-replica liveness, and a rollup
//	              summing serve.* counters across every reachable replica
//
// SIGINT/SIGTERM drain and exit. See OPERATIONS.md "Running a fleet".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		manifest  = flag.String("manifest", "", "fleet.json written by fleetctl partition (required)")
		shards    = flag.String("shards", "", "replica addresses: shards comma-separated in ring order, replicas of a shard pipe-separated (required)")
		listen    = flag.String("listen", ":8090", "HTTP listen address")
		hedge     = flag.Duration("hedge", 0, "hedged-request delay: 0 = the shard's observed p99, negative disables (fleet.hedge.delay)")
		heartbeat = flag.Duration("heartbeat", time.Second, "replica liveness probe interval (fleet.heartbeat)")
		deadAfter = flag.Duration("dead-after", 5*time.Second, "declare a replica dead after this long without a successful probe (fleet.dead.after)")
		maxPts    = flag.Int("max-points", 1024, "maximum points per request; keep equal to the shards' -max-points (serve.max.request.points)")
		timeout   = flag.Duration("shard-timeout", 30*time.Second, "one shard round-trip bound (fleet.shard.timeout)")
		skipCheck = flag.Bool("skip-check", false, "skip the startup /statsz shard-id verification (replicas may still be starting)")
		verbose   = flag.Bool("v", false, "log router events")
	)
	flag.Parse()
	if *manifest == "" || *shards == "" {
		fmt.Fprintln(os.Stderr, "routerd: -manifest and -shards are required")
		flag.Usage()
		os.Exit(2)
	}

	mf, err := fleet.LoadManifest(*manifest)
	fatal(err)
	var replicaSets [][]string
	for _, shard := range strings.Split(*shards, ",") {
		var reps []string
		for _, addr := range strings.Split(shard, "|") {
			if a := strings.TrimSpace(addr); a != "" {
				reps = append(reps, a)
			}
		}
		replicaSets = append(replicaSets, reps)
	}

	cfg := fleet.RouterConfig{
		Manifest:         mf,
		Shards:           replicaSets,
		HedgeDelay:       *hedge,
		Heartbeat:        *heartbeat,
		DeadAfter:        *deadAfter,
		MaxRequestPoints: *maxPts,
		ShardTimeout:     *timeout,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	router, err := fleet.NewRouter(cfg)
	fatal(err)

	if !*skipCheck {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		fatal(router.CheckShards(ctx))
		cancel()
	}
	fatal(router.Start(*listen))
	fmt.Fprintf(os.Stderr, "routerd: routing %d shards on %s (manifest %s: %q, %d points, M=%d)\n",
		mf.Shards, router.Addr(), *manifest, mf.Name, mf.N, mf.M)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "routerd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fatal(router.Shutdown(ctx))
	fmt.Fprint(os.Stderr, router.Counters().String())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "routerd: %v\n", err)
		os.Exit(1)
	}
}
