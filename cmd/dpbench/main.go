// Command dpbench regenerates the paper's evaluation: every table and
// figure of Section VI plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	dpbench -exp all                 # everything (several minutes)
//	dpbench -exp fig10,table4       # a subset
//	dpbench -exp fig9 -scale 4      # quarter-size data sets
//
// Experiments: table2, fig7, fig8, fig9, fig10, table4, fig11, fig12,
// ec2, ablation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/obs"
)

var exps = []struct {
	name string
	run  func(experiments.Options) (*experiments.Report, error)
}{
	{"table2", experiments.ExpTable2},
	{"fig7", experiments.ExpFig7},
	{"fig8", experiments.ExpFig8},
	{"fig9", experiments.ExpFig9},
	{"fig10", experiments.ExpFig10},
	{"table4", experiments.ExpTable4},
	{"fig11", experiments.ExpFig11},
	{"fig12", experiments.ExpFig12},
	{"ec2", experiments.ExpEC2},
	{"ablation", experiments.ExpAblation},
	{"ext", experiments.ExpExtensions},
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiments to run, or 'all'")
		scale    = flag.Int("scale", 1, "extra divisor on data set sizes (1 = DESIGN.md scale)")
		seed     = flag.Int64("seed", 42, "seed for data generation and algorithms")
		parallel = flag.Int("parallel", 0, "engine parallelism (0 = all cores)")
		verbose  = flag.Bool("v", false, "log per-job progress")
		csvDir   = flag.String("csv", "", "also write each report as CSV into this directory")
		htmlOut  = flag.String("html", "", "also write all reports as one HTML page to this file")
		traceOut = flag.String("trace", "", "write a JSONL job trace (task phase spans) to this file")
		jsonOut  = flag.String("json", "", "write a per-experiment perf summary (wall, distance computations, shuffle bytes) to this JSON file")
	)
	flag.Parse()

	opt := experiments.Options{Scale: *scale, Seed: *seed, Parallelism: *parallel}
	if *verbose {
		opt.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var trace *obs.Trace
	if *traceOut != "" || *jsonOut != "" {
		trace = &obs.Trace{}
		opt.Trace = trace
	}

	want := map[string]bool{}
	runAll := *expFlag == "all"
	for _, name := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	known := map[string]bool{}
	for _, e := range exps {
		known[e.name] = true
	}
	for name := range want {
		if name != "all" && !known[name] {
			fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	ranAny := false
	var collected []*experiments.Report
	var perf []perfEntry
	for _, e := range exps {
		if !runAll && !want[e.name] {
			continue
		}
		ranAny = true
		jobsBefore := 0
		if trace != nil {
			jobsBefore = len(trace.Jobs())
		}
		start := time.Now()
		report, err := e.run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		report.WriteTo(os.Stdout)
		collected = append(collected, report)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, report); err != nil {
				fmt.Fprintf(os.Stderr, "dpbench: csv for %s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		if *jsonOut != "" {
			perf = append(perf, summarize(e.name, wall, trace.Jobs()[jobsBefore:]))
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
	if !ranAny {
		fmt.Fprintln(os.Stderr, "dpbench: nothing to run")
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writePerf(*jsonOut, perf); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonOut, len(perf))
	}
	if trace != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteJSONL(f); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (%d job traces)\n", *traceOut, len(trace.Jobs()))
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.HTMLReport(f, "LSH-DDP evaluation", collected); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: html: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *htmlOut)
	}
}

// perfEntry is one experiment's row in the -json perf summary. Counters are
// summed across every MapReduce job the experiment launched.
type perfEntry struct {
	Experiment    string  `json:"experiment"`
	WallSeconds   float64 `json:"wall_seconds"`
	Jobs          int     `json:"jobs"`
	DistanceComps int64   `json:"distance_computations"`
	ShuffleBytes  int64   `json:"shuffle_bytes"`
	ParallelGroup int64   `json:"parallel_groups"`
	// The wire counters stay zero on the local engine: they count actual
	// transport bytes of the distributed engine's streaming shuffle,
	// whereas shuffle_bytes is the paper's logical volume.
	ShuffleWireBytes     int64 `json:"shuffle_wire_bytes,omitempty"`
	ShuffleWireBytesComp int64 `json:"shuffle_wire_bytes_compressed,omitempty"`
	// DAG scheduler totals, folded from the "dag:*" scheduler traces (one
	// per graph run). DagRuns counts graph executions; the dag_* counters
	// mirror the mr.dag.* counter namespace documented in OPERATIONS.md.
	DagRuns           int   `json:"dag_runs,omitempty"`
	DagNodes          int64 `json:"dag_nodes,omitempty"`
	DagCacheHits      int64 `json:"dag_cache_hits,omitempty"`
	DagCacheMisses    int64 `json:"dag_cache_misses,omitempty"`
	DagCacheEvictions int64 `json:"dag_cache_evictions,omitempty"`
	DagStageBytes     int64 `json:"dag_stage_bytes,omitempty"`
	DagGCBytes        int64 `json:"dag_gc_bytes,omitempty"`
}

// summarize folds the job traces an experiment produced into one perf row.
// Scheduler ("dag:*") traces carry dag.* counters and are tallied apart
// from the MapReduce jobs they scheduled.
func summarize(name string, wall time.Duration, jobs []obs.JobTrace) perfEntry {
	e := perfEntry{Experiment: name, WallSeconds: wall.Seconds()}
	for _, j := range jobs {
		if strings.HasPrefix(j.Job, "dag:") {
			e.DagRuns++
			e.DagNodes += j.Counters[dag.CtrNodes]
			e.DagCacheHits += j.Counters[dag.CtrCacheHits]
			e.DagCacheMisses += j.Counters[dag.CtrCacheMisses]
			e.DagCacheEvictions += j.Counters[dag.CtrCacheEvictions]
			e.DagStageBytes += j.Counters[dag.CtrStageBytes]
			e.DagGCBytes += j.Counters[dag.CtrGCBytes]
			continue
		}
		e.Jobs++
		e.DistanceComps += j.Counters[mapreduce.CtrDistanceComputations]
		e.ShuffleBytes += j.Counters[mapreduce.CtrShuffleBytes]
		e.ParallelGroup += j.Counters[mapreduce.CtrParallelGroups]
		e.ShuffleWireBytes += j.Counters[mapreduce.CtrShuffleWireBytes]
		e.ShuffleWireBytesComp += j.Counters[mapreduce.CtrShuffleWireBytesCompressed]
	}
	return e
}

// writePerf stores the perf summary as an indented JSON array.
func writePerf(path string, perf []perfEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(perf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSV stores one report as <dir>/<name>.csv.
func writeCSV(dir, name string, report *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := report.WriteCSVTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
