// Command ddp clusters a CSV of points with one of the distributed
// Density Peaks algorithms (or the exact sequential reference) and writes
// per-point cluster labels.
//
// Local (multicore) usage:
//
//	ddp -input points.csv -algo lsh -k 7 -out labels.csv
//	ddp -input points.csv -algo basic -graph        # print decision graph
//	ddp -input points.csv -algo eddpc -rho-min 14 -delta-min 40
//	ddp -input points.csv -algo lsh -kernel gaussian -halo
//	ddp -input points.csv -algo lsh -k 7 -export-model model.ddpm
//
// Distributed usage — ddp becomes the MapReduce master and waits for
// workers (started with `mrd worker -master <this host>:7070`):
//
//	ddp -input points.csv -algo lsh -k 7 -master-listen :7070 -min-workers 2
//
// The input is one point per row, comma-separated float coordinates
// (use -labeled if the last column is a ground-truth label to ignore).
// When no selection flags are given, the number of clusters is suggested
// automatically from the decision graph's γ spectrum.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/eddpc"
	"repro/internal/kmeansmr"
	"repro/internal/knnjoin"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/obs"
)

func main() {
	var (
		input    = flag.String("input", "", "input CSV file (required)")
		labeled  = flag.Bool("labeled", false, "treat the last CSV column as a label to ignore")
		algo     = flag.String("algo", "lsh", "algorithm: lsh | basic | eddpc | exact")
		kernel   = flag.String("kernel", "cutoff", "density kernel: cutoff | gaussian")
		k        = flag.Int("k", 0, "select the k top-gamma peaks (0 = box flags or auto-suggest)")
		rhoMin   = flag.Float64("rho-min", 0, "decision-graph box: minimum rho")
		deltaMin = flag.Float64("delta-min", 0, "decision-graph box: minimum delta")
		accuracy = flag.Float64("accuracy", 0.99, "LSH-DDP expected accuracy A")
		mFlag    = flag.Int("m", 10, "LSH-DDP hash groups M")
		piFlag   = flag.Int("pi", 3, "LSH-DDP hash functions per group")
		dc       = flag.Float64("dc", 0, "cutoff distance (0 = 2% percentile rule)")
		block    = flag.Int("block", 500, "Basic-DDP block size")
		seed     = flag.Int64("seed", 1, "random seed")
		graph    = flag.Bool("graph", false, "print an ASCII decision graph")
		svg      = flag.String("svg", "", "write the decision graph as SVG to this file")
		halo     = flag.Bool("halo", false, "also flag halo (border/noise) points in the output")
		export   = flag.String("export-model", "", "write a cluster model artifact (servable by clusterd) to this file")
		out      = flag.String("out", "", "write labels CSV here ('-' or empty = stdout)")
		verbose  = flag.Bool("v", false, "log per-job progress")
		traceOut = flag.String("trace", "", "write a JSONL job trace (task phase spans) to this file")

		masterListen = flag.String("master-listen", "", "run distributed: listen for mrd workers on this address")
		minWorkers   = flag.Int("min-workers", 1, "distributed: wait for at least this many workers")
		workerWait   = flag.Duration("worker-wait", time.Minute, "distributed: how long to wait for workers")
		monitor      = flag.Duration("monitor", 0, "distributed: emit live counter snapshots at this interval (0 = off)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "ddp: -input is required")
		flag.Usage()
		os.Exit(2)
	}

	ds, err := dataset.ReadCSVFile(*input, "input", *labeled)
	fatal(err)

	var kern dp.Kernel
	switch *kernel {
	case "cutoff":
		kern = dp.KernelCutoff
	case "gaussian":
		kern = dp.KernelGaussian
	default:
		fmt.Fprintf(os.Stderr, "ddp: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	engine, cleanup, err := buildEngine(*masterListen, *minWorkers, *workerWait, *monitor, *verbose)
	fatal(err)
	defer cleanup()

	cfg := core.Config{
		Engine: engine,
		Dc:     *dc,
		Seed:   *seed,
		Kernel: kern,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var trace *obs.Trace
	if *traceOut != "" {
		trace = &obs.Trace{}
		cfg.Trace = trace
	}

	// SIGINT cancels the pipeline between (and inside) jobs: the DAG
	// scheduler stops dispatching nodes, drains in-flight work, and the
	// run returns context.Canceled instead of dying mid-shuffle.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := runAlgorithm(ctx, ds, *algo, cfg, *accuracy, *mFlag, *piFlag, *block)
	if err != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ddp: interrupted")
		os.Exit(130)
	}
	fatal(err)

	if trace != nil {
		f, err := os.Create(*traceOut)
		fatal(err)
		fatal(trace.WriteJSONL(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "ddp: trace written to %s (%d jobs)\n", *traceOut, len(trace.Jobs()))
	}

	g, err := res.Graph()
	fatal(err)
	g.Rectify()
	var peaks []int32
	switch {
	case *k > 0:
		peaks = g.SelectTopK(*k)
	case *rhoMin > 0 || *deltaMin > 0:
		peaks = g.SelectBox(*rhoMin, *deltaMin)
	default:
		suggested := g.SuggestK(64)
		fmt.Fprintf(os.Stderr, "ddp: auto-suggested k = %d (override with -k or -rho-min/-delta-min)\n", suggested)
		peaks = g.SelectTopK(suggested)
	}
	labels, err := g.Assign(ds, peaks)
	fatal(err)

	var haloFlags []bool
	var border []float64
	if *halo || *export != "" {
		// The model artifact carries border densities so clusterd can flag
		// halo points, so -export-model implies the halo job.
		hr, err := core.RunLSHHalo(ctx, ds, res.Rho, labels, res.Stats.Dc, core.LSHConfig{
			Config: cfg, Accuracy: *accuracy, M: *mFlag, Pi: *piFlag,
		})
		fatal(err)
		border = hr.Border
		if *halo {
			haloFlags = hr.Halo
		}
	}

	if *export != "" {
		mdl, err := core.ExportModel(ds, res, peaks, labels, border, *seed)
		fatal(err)
		fatal(mdl.WriteFile(*export))
		fmt.Fprintf(os.Stderr, "ddp: model artifact written to %s (%d points, %d clusters)\n",
			*export, mdl.N(), mdl.NumClusters())
	}

	fmt.Fprintf(os.Stderr, "ddp: %s on %d points (dim %d): %d clusters, dc=%.4g, %.2fs, shuffle=%.2fMB, dist=%d\n",
		*algo, ds.N(), ds.Dim(), len(peaks), res.Stats.Dc, time.Since(start).Seconds(),
		float64(res.Stats.ShuffleBytes)/(1<<20), res.Stats.DistanceComputations)

	if *graph {
		fmt.Fprint(os.Stderr, g.Render(100, 28, peaks))
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		fatal(err)
		fatal(g.RenderSVG(f, 640, 480, peaks))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "ddp: decision graph written to %s\n", *svg)
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for i, l := range labels {
		if haloFlags != nil {
			h := 0
			if haloFlags[i] {
				h = 1
			}
			fmt.Fprintf(bw, "%d,%d,%d\n", i, l, h)
		} else {
			fmt.Fprintf(bw, "%d,%d\n", i, l)
		}
	}
	fatal(bw.Flush())
}

// buildEngine returns the local engine, or boots a master and waits for
// workers when -master-listen is set.
func buildEngine(listen string, minWorkers int, wait, monitor time.Duration, verbose bool) (mapreduce.Engine, func(), error) {
	if listen == "" {
		return &mapreduce.LocalEngine{}, func() {}, nil
	}
	m, err := rpcmr.NewMaster(listen)
	if err != nil {
		return nil, nil, err
	}
	m.MonitorInterval = monitor
	if verbose || monitor > 0 {
		m.Events = obs.NewWriterSink(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "ddp: master listening on %s; waiting for %d worker(s)...\n", m.Addr(), minWorkers)
	if err := m.WaitWorkers(minWorkers, wait); err != nil {
		m.Close()
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "ddp: %d worker(s) connected\n", m.WorkerCount())
	return m, func() { m.Close() }, nil
}

func runAlgorithm(ctx context.Context, ds *dataset.DS, algo string, cfg core.Config, accuracy float64, m, pi, block int) (*core.Result, error) {
	switch algo {
	case "lsh":
		return core.RunLSHDDP(ctx, ds, core.LSHConfig{Config: cfg, Accuracy: accuracy, M: m, Pi: pi})
	case "basic":
		return core.RunBasicDDP(ctx, ds, core.BasicConfig{Config: cfg, BlockSize: block})
	case "eddpc":
		return eddpc.Run(ctx, ds, eddpc.Config{Config: cfg})
	case "exact":
		dcv := cfg.Dc
		if dcv <= 0 {
			dcv = dp.CutoffByPercentile(ds, 0.02, cfg.Seed)
		}
		ref, err := dp.Compute(ds, dcv, dp.Options{Kernel: cfg.Kernel, GridIndex: true})
		if err != nil {
			return nil, err
		}
		res := &core.Result{Rho: ref.Rho, Delta: ref.Delta, Upslope: ref.Upslope}
		res.Stats.Dc = dcv
		return res, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

// registerAll makes every job available when this process acts as master
// for remote workers started from the same binary family.
func init() {
	rpcmr.RegisterJobs(core.JobFactories())
	rpcmr.RegisterJobs(core.HaloJobFactories())
	rpcmr.RegisterJobs(eddpc.JobFactories())
	rpcmr.RegisterJobs(kmeansmr.JobFactories())
	rpcmr.RegisterJobs(knnjoin.JobFactories())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddp: %v\n", err)
		os.Exit(1)
	}
}
