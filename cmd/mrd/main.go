// Command mrd runs the distributed daemons: the MapReduce master, a
// MapReduce worker (with every job of this repository registered), and the
// mini-DFS namenode/datanode.
//
// A three-terminal session:
//
//	mrd master -addr :7070
//	mrd worker -master localhost:7070 -addr :0       # repeat per worker
//	ddp ... (with a master-backed engine; see examples/distributed)
//
// And for the DFS:
//
//	mrd namenode -addr :7080 -replication 2
//	mrd datanode -namenode localhost:7080 -addr :0
//
// Operator tooling (see OPERATIONS.md for the full runbook):
//
//	mrd dfsadmin -namenode localhost:7080 report           # node liveness, replication health, counters
//	mrd dfsadmin -namenode localhost:7080 verify jobs/in   # decode-verify every part under a prefix
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/eddpc"
	"repro/internal/kmeansmr"
	"repro/internal/knnjoin"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "master":
		runMaster(os.Args[2:])
	case "worker":
		runWorker(os.Args[2:])
	case "namenode":
		runNameNode(os.Args[2:])
	case "datanode":
		runDataNode(os.Args[2:])
	case "dfsadmin":
		runDFSAdmin(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mrd master|worker|namenode|datanode|dfsadmin [flags]")
	os.Exit(2)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}

func runMaster(args []string) {
	fs := flag.NewFlagSet("master", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	verbose := fs.Bool("v", false, "log scheduler and progress events to stderr")
	monitor := fs.Duration("monitor", 0, "emit live counter snapshots at this interval while a job runs (0 = off)")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on this address (e.g. :6060; empty = off)")
	fs.Parse(args)
	startPprof(*pprofAddr)
	m, err := rpcmr.NewMaster(*addr)
	fatal(err)
	if *verbose {
		m.Events = obs.NewWriterSink(os.Stderr)
	}
	m.MonitorInterval = *monitor
	fmt.Printf("mrd: master listening on %s\n", m.Addr())
	waitForSignal()
	// Abort whatever job is in flight so workers drain cleanly and the
	// client gets a failure instead of a hung RPC, then print history.
	m.Abort(fmt.Errorf("rpcmr: master interrupted by signal"))
	for _, rec := range m.History() {
		status := "ok"
		if rec.Failed {
			status = "FAILED"
		}
		fmt.Printf("mrd: job %3d %-24s %-6s %8.2fs  maps=%d reduces=%d workers=%d shuffleB=%d map-med=%s map-max=%s stragglers=%d\n",
			rec.ID, rec.Name, status, rec.Wall.Seconds(), rec.Maps, rec.Reduces, rec.Workers,
			rec.Counters["shuffle.bytes"],
			rec.MapDist.Median.Round(time.Millisecond), rec.MapDist.Max.Round(time.Millisecond),
			rec.MapDist.Stragglers+rec.ReduceDist.Stragglers)
	}
	m.Close()
}

func runWorker(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	master := fs.String("master", "localhost:7070", "master address")
	addr := fs.String("addr", ":0", "listen address for shuffle fetches")
	poll := fs.Duration("poll", 20*time.Millisecond, "base task-poll interval")
	pollMax := fs.Duration("poll-max", 250*time.Millisecond, "idle poll backoff cap (the interval doubles while no task is handed out and snaps back on work)")
	verbose := fs.Bool("v", false, "log task events to stderr")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on this address (e.g. :6061; empty = off)")
	fs.Parse(args)
	startPprof(*pprofAddr)
	registerAllJobs()
	w, err := rpcmr.StartWorker(*master, *addr)
	fatal(err)
	w.PollInterval = *poll
	w.PollMax = *pollMax
	if *verbose {
		sink := obs.NewWriterSink(os.Stderr)
		w.Log = func(format string, args ...any) { sink.Event("worker", format, args...) }
	}
	fmt.Printf("mrd: worker %d serving on %s (master %s)\n", w.ID(), w.Addr(), *master)
	waitForSignal()
	w.Close()
}

// startPprof optionally exposes the profiling endpoints for this daemon.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	p, err := obs.StartPprof(addr)
	fatal(err)
	fmt.Printf("mrd: pprof on http://%s/debug/pprof/\n", p.Addr())
}

// registerAllJobs installs every job factory in the repository so a worker
// can execute any pipeline.
func registerAllJobs() {
	rpcmr.RegisterJobs(core.JobFactories())
	rpcmr.RegisterJobs(core.HaloJobFactories())
	rpcmr.RegisterJobs(eddpc.JobFactories())
	rpcmr.RegisterJobs(kmeansmr.JobFactories())
	rpcmr.RegisterJobs(knnjoin.JobFactories())
}

func runNameNode(args []string) {
	fs := flag.NewFlagSet("namenode", flag.ExitOnError)
	addr := fs.String("addr", ":7080", "listen address")
	repl := fs.Int("replication", 2, "block replication factor")
	hbTimeout := fs.Duration("heartbeat-timeout", 3*time.Second, "declare a datanode dead after this long without a heartbeat")
	sweep := fs.Duration("rereplicate", 500*time.Millisecond, "re-replication sweep interval")
	verbose := fs.Bool("v", false, "log liveness and re-replication events to stderr")
	fs.Parse(args)
	opts := dfs.NameNodeOptions{
		Replication:       *repl,
		HeartbeatTimeout:  *hbTimeout,
		ReplicateInterval: *sweep,
	}
	if *verbose {
		opts.Events = obs.NewWriterSink(os.Stderr)
	}
	nn, err := dfs.NewNameNodeOpts(*addr, opts)
	fatal(err)
	fmt.Printf("mrd: namenode listening on %s (replication %d, heartbeat timeout %v)\n", nn.Addr(), *repl, *hbTimeout)
	waitForSignal()
	for name, v := range nn.Counters() {
		fmt.Printf("mrd: %-28s %d\n", name, v)
	}
	nn.Close()
}

func runDataNode(args []string) {
	fs := flag.NewFlagSet("datanode", flag.ExitOnError)
	nameAddr := fs.String("namenode", "localhost:7080", "namenode address")
	addr := fs.String("addr", ":0", "listen address")
	dir := fs.String("dir", "", "store blocks as files under this directory (empty = in memory)")
	heartbeat := fs.Duration("heartbeat", 500*time.Millisecond, "heartbeat + block report interval")
	fs.Parse(args)
	dn, err := dfs.StartDataNodeOpts(*nameAddr, *addr, dfs.DataNodeOptions{
		Dir:               *dir,
		HeartbeatInterval: *heartbeat,
	})
	fatal(err)
	fmt.Printf("mrd: datanode serving on %s (namenode %s)\n", dn.Addr(), *nameAddr)
	waitForSignal()
	dn.Close()
}

func runDFSAdmin(args []string) {
	fs := flag.NewFlagSet("dfsadmin", flag.ExitOnError)
	nameAddr := fs.String("namenode", "localhost:7080", "namenode address")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mrd dfsadmin [-namenode addr] report | verify <prefix>")
		os.Exit(2)
	}
	c, err := dfs.NewClient(*nameAddr)
	fatal(err)
	defer c.Close()
	switch rest[0] {
	case "report":
		rep, err := c.Report()
		fatal(err)
		fmt.Printf("namenode %s: %d files, %d blocks, %d under-replicated\n",
			*nameAddr, rep.Files, rep.Blocks, rep.UnderReplicated)
		for _, node := range rep.Nodes {
			state := "LIVE"
			if !node.Alive {
				state = "DEAD"
			}
			fmt.Printf("  %-22s %-4s blocks=%-6d last heartbeat %dms ago\n",
				node.Addr, state, node.Blocks, node.AgeMS)
		}
		for name, v := range rep.Counters {
			fmt.Printf("  %-28s %d\n", name, v)
		}
		if rep.UnderReplicated > 0 {
			os.Exit(1)
		}
	case "verify":
		if len(rest) != 2 {
			fmt.Fprintln(os.Stderr, "usage: mrd dfsadmin verify <prefix>")
			os.Exit(2)
		}
		parts, records, err := dfsio.VerifyPrefix(c, rest[1])
		fatal(err)
		fmt.Printf("%s: %d parts, %d records, all blocks checksum-clean\n", rest[1], parts, records)
	default:
		fmt.Fprintf(os.Stderr, "mrd dfsadmin: unknown command %q\n", rest[0])
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrd: %v\n", err)
		os.Exit(1)
	}
}
