// Command serveload is a closed-loop load generator for the clusterd query
// server: N client goroutines each keep exactly one /assign request in
// flight, so offered load rises with concurrency and the server's batching
// and load-shedding behavior can be measured at each level.
//
// Two modes:
//
//	serveload -addr host:8080 -input points.csv       # drive a running clusterd
//	serveload -self -n 20000 -clients 1,8,64 -json    # end-to-end benchmark
//
// -self trains LSH-DDP on a seeded blob dataset in-process, exports the
// model, starts a serve.Server on a loopback port, and sweeps the client
// levels twice — once LSH-pruned, once exact-scan — printing per-level
// QPS, p50/p99 latency, shed rate, and average candidate rows scanned.
// This is what `make bench-serve` runs (results in BENCH_PR5.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/points"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target server address (host:port); empty requires -self")
		input    = flag.String("input", "", "CSV of query points (required with -addr)")
		selfHost = flag.Bool("self", false, "train a model and host the server in-process")
		n        = flag.Int("n", 20000, "self: training points")
		dim      = flag.Int("dim", 2, "self: dimensionality")
		k        = flag.Int("k", 8, "self: clusters")
		seed     = flag.Int64("seed", 1, "seed for data, training, and query jitter")
		clients  = flag.String("clients", "1,8,64", "comma-separated closed-loop client counts")
		duration = flag.Duration("duration", 3*time.Second, "measurement window per level")
		queue    = flag.Int("queue", 32, "self: server admission queue bound")
		batchMax = flag.Int("batch-max", 64, "self: server batch size")
		workers  = flag.Int("workers", 1, "self: server batch workers")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON summary")
	)
	flag.Parse()

	levels, err := parseLevels(*clients)
	fatal(err)

	var results []levelResult
	switch {
	case *selfHost:
		results, err = runSelf(*n, *dim, *k, *seed, levels, *duration, *queue, *batchMax, *workers)
	case *addr != "":
		if *input == "" {
			fatal(fmt.Errorf("-addr mode needs -input (query points CSV)"))
		}
		ds, derr := dataset.ReadCSVFile(*input, "queries", false)
		fatal(derr)
		results, err = sweep(*addr, "remote", queriesOf(ds), levels, *duration)
	default:
		fatal(fmt.Errorf("need -addr or -self"))
	}
	fatal(err)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(map[string]any{"levels": results}))
		return
	}
	for _, r := range results {
		fmt.Printf("%-6s clients=%-3d qps=%-8.0f p50=%-10s p99=%-10s shed=%.1f%% avg_cand=%.0f\n",
			r.Mode, r.Clients, r.QPS, time.Duration(r.P50us)*time.Microsecond,
			time.Duration(r.P99us)*time.Microsecond, 100*r.ShedRate, r.AvgCandidates)
	}
}

// levelResult is one (mode, client-count) measurement.
type levelResult struct {
	Mode          string  `json:"mode"` // "lsh" | "exact" | "remote"
	Clients       int     `json:"clients"`
	DurationS     float64 `json:"duration_s"`
	Requests      int64   `json:"requests"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	QPS           float64 `json:"qps"`
	P50us         int64   `json:"p50_us"`
	P99us         int64   `json:"p99_us"`
	ShedRate      float64 `json:"shed_rate"`
	AvgCandidates float64 `json:"avg_candidates"`
}

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		levels = append(levels, v)
	}
	return levels, nil
}

// runSelf trains, exports, and benchmarks both serving paths in-process.
func runSelf(n, dim, k int, seed int64, levels []int, dur time.Duration, queue, batchMax, workers int) ([]levelResult, error) {
	ds := dataset.Blobs("bench-serve", n, dim, k, 100, 2.5, seed)
	fmt.Fprintf(os.Stderr, "serveload: training LSH-DDP on %d points (dim %d)...\n", n, dim)
	res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{Config: core.Config{Seed: seed}})
	if err != nil {
		return nil, err
	}
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(k))
	if err != nil {
		return nil, err
	}
	hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, core.LSHConfig{Config: core.Config{Seed: seed}})
	if err != nil {
		return nil, err
	}
	mdl, err := core.ExportModel(ds, res, peaks, labels, hr.Border, seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "serveload: model ready: %d clusters, dc=%.4g, M=%d pi=%d w=%.4g\n",
		len(peaks), res.Stats.Dc, mdl.LSH.M, mdl.LSH.Pi, mdl.LSH.W)

	// Queries: training points jittered by a d_c/2-scale Gaussian, so the
	// candidate sets look like real nearby traffic rather than replays.
	rng := points.NewRand(seed + 99)
	queries := make([][]float64, n)
	for i, p := range ds.Points {
		q := make([]float64, dim)
		for j, x := range p.Pos {
			q[j] = x + rng.NormFloat64()*res.Stats.Dc/2
		}
		queries[i] = q
	}

	var all []levelResult
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"lsh", false}, {"exact", true}} {
		srv := serve.New(serve.Config{
			BatchMax:   batchMax,
			QueueDepth: queue,
			Workers:    workers,
			ExactOnly:  mode.exact,
		})
		if err := srv.SetModel(mdl); err != nil {
			return nil, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		rs, err := sweep(srv.Addr(), mode.name, queries, levels, dur)
		if err != nil {
			return nil, err
		}
		// Attribute candidate scan volume from the server's own counters.
		pts := srv.Counters().Get(serve.CtrPoints)
		if pts > 0 {
			avg := float64(srv.Counters().Get(serve.CtrCandidates)) / float64(pts)
			for i := range rs {
				rs[i].AvgCandidates = avg
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			cancel()
			return nil, err
		}
		cancel()
		all = append(all, rs...)
	}
	return all, nil
}

func queriesOf(ds *points.Dataset) [][]float64 {
	qs := make([][]float64, ds.N())
	for i, p := range ds.Points {
		qs[i] = p.Pos
	}
	return qs
}

// sweep runs the closed loop at every client level against one server.
func sweep(addr, mode string, queries [][]float64, levels []int, dur time.Duration) ([]levelResult, error) {
	var out []levelResult
	for _, c := range levels {
		r, err := runLevel(addr, queries, c, dur)
		if err != nil {
			return nil, err
		}
		r.Mode = mode
		fmt.Fprintf(os.Stderr, "serveload: %s clients=%d: %d req (%0.f qps), p50=%s p99=%s, shed=%d, errors=%d\n",
			mode, c, r.Requests, r.QPS, time.Duration(r.P50us)*time.Microsecond,
			time.Duration(r.P99us)*time.Microsecond, r.Shed, r.Errors)
		out = append(out, *r)
	}
	return out, nil
}

// runLevel drives `clients` closed-loop clients for dur.
func runLevel(addr string, queries [][]float64, clients int, dur time.Duration) (*levelResult, error) {
	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	defer transport.CloseIdleConnections()
	url := "http://" + addr + "/assign"

	type clientStats struct {
		lat          []time.Duration
		shed, errors int64
	}
	stats := make([]clientStats, clients)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			for i := c; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				body, _ := json.Marshal(map[string][][]float64{"points": {q}})
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					st.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					st.lat = append(st.lat, time.Since(start))
				case http.StatusTooManyRequests:
					st.shed++
				default:
					st.errors++
				}
			}
		}(c)
	}
	wg.Wait()

	r := &levelResult{Clients: clients, DurationS: dur.Seconds()}
	var all []time.Duration
	for i := range stats {
		all = append(all, stats[i].lat...)
		r.Shed += stats[i].shed
		r.Errors += stats[i].errors
	}
	r.Requests = int64(len(all))
	r.QPS = float64(len(all)) / dur.Seconds()
	if attempts := r.Requests + r.Shed; attempts > 0 {
		r.ShedRate = float64(r.Shed) / float64(attempts)
	}
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		r.P50us = all[len(all)/2].Microseconds()
		r.P99us = all[(len(all)*99)/100].Microseconds()
	}
	return r, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "serveload: %v\n", err)
		os.Exit(1)
	}
}
