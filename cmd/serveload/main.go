// Command serveload is a closed-loop load generator for the clusterd query
// server: N client goroutines each keep exactly one /assign request in
// flight, so offered load rises with concurrency and the server's batching
// and load-shedding behavior can be measured at each level.
//
// Modes:
//
//	serveload -addr host:8080 -input points.csv       # drive a running clusterd
//	serveload -addr r1:8090,r2:8090 -input q.csv      # spread clients over targets
//	serveload -self -n 20000 -clients 1,8,64 -json    # end-to-end benchmark
//	serveload -self -fleet-shards 1,2,4 -json         # sharded-fleet benchmark
//	serveload -self -ingest-frac 0.1 -json            # mixed read/write benchmark
//
// -addr accepts a comma-separated target list; clients are assigned to
// targets round-robin and the -json output carries a per-target
// request/shed/error breakdown so skewed routing is visible.
//
// -fleet-shards partitions the model with fleet.Partition at each listed
// shard count, hosts one serve.Server per shard plus a fleet.Router
// in-process, and sweeps the client levels against the router. Per level it
// reports the mean fan-out (owning shards per query), a per-shard
// request/busy/shed breakdown from counter deltas, and node_qps — requests
// divided by the busiest shard's busy-time delta (serve.busy.us), i.e. the
// throughput the fleet sustains when each shard owns a machine. On a
// single-CPU host the wall-clock qps of co-located shards measures CPU
// contention, not scaling; node_qps is the honest per-node capacity figure
// (this is what `make bench-fleet` snapshots into BENCH_PR8.json).
//
// -ingest-frac f (with -self) makes every round(1/f)-th request of each
// client a POST /ingest of its query point instead of a read: the server is
// wired to an ingest.Store over a temp directory, so the benchmark
// exercises the full streaming-ingest path — WAL appends, delta-merged
// queries, and background compactions (-ingest-compact-interval) — under
// mixed load. Reported per level: read and ingest QPS/latency separately,
// plus the compaction count that landed inside the window (this is what
// `make bench-ingest` snapshots into BENCH_PR9.json).
//
// -self trains LSH-DDP on a seeded blob dataset in-process (above ~100k
// points it builds an equivalent model directly from the blob geometry, so
// a 1M-point serving benchmark does not pay for a 1M-point training run),
// exports the model, starts a serve.Server on a loopback port, and sweeps
// the client levels per scan precision (-precisions) twice — once
// LSH-pruned, once exact-scan — printing per-level QPS, p50/p99 latency,
// shed rate, and average candidate/re-rank rows scanned. Candidate and
// re-rank averages come from per-level counter deltas, so each level
// reports its own scan volume rather than a cumulative running mean.
// This is what `make bench-serve` runs (results in BENCH_PR7.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/lsh"
	"repro/internal/model"
	"repro/internal/points"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "comma-separated target server addresses (host:port,...); empty requires -self")
		input    = flag.String("input", "", "CSV of query points (required with -addr)")
		selfHost = flag.Bool("self", false, "train a model and host the server in-process")
		fleetSh  = flag.String("fleet-shards", "", "self: comma-separated shard counts to sweep through an in-process fleet (e.g. 1,2,4)")
		n        = flag.Int("n", 20000, "self: training points")
		dim      = flag.Int("dim", 2, "self: dimensionality")
		k        = flag.Int("k", 8, "self: clusters")
		seed     = flag.Int64("seed", 1, "seed for data, training, and query jitter")
		clients  = flag.String("clients", "1,8,64", "comma-separated closed-loop client counts")
		duration = flag.Duration("duration", 3*time.Second, "measurement window per level")
		queue    = flag.Int("queue", 32, "self: server admission queue bound")
		batchMax = flag.Int("batch-max", 64, "self: server batch size")
		workers  = flag.Int("workers", 1, "self: server batch workers")
		precs    = flag.String("precisions", "f64", "self: comma-separated scan precisions to sweep (f64,f32,q8)")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON summary")

		ingFrac = flag.Float64("ingest-frac", 0, "self: fraction of requests that are ingests (0 = read-only; 0.1 = 90/10 mixed)")
		ingComp = flag.Duration("ingest-compact-interval", 10*time.Second, "self mixed mode: background compaction period of the in-process store")
	)
	flag.Parse()

	levels, err := parseLevels(*clients)
	fatal(err)

	var results []levelResult
	switch {
	case *selfHost && *fleetSh != "":
		shardCounts, serr := parseLevels(*fleetSh)
		fatal(serr)
		results, err = runFleetSelf(*n, *dim, *k, *seed, shardCounts, levels, *duration, *queue, *batchMax, *workers)
	case *selfHost && *ingFrac > 0:
		if *ingFrac >= 1 {
			fatal(fmt.Errorf("-ingest-frac must be in (0,1)"))
		}
		precisions, perr := parsePrecisions(*precs)
		fatal(perr)
		results, err = runMixedSelf(*n, *dim, *k, *seed, levels, precisions, *duration, *queue, *batchMax, *workers, *ingFrac, *ingComp)
	case *selfHost:
		precisions, perr := parsePrecisions(*precs)
		fatal(perr)
		results, err = runSelf(*n, *dim, *k, *seed, levels, precisions, *duration, *queue, *batchMax, *workers)
	case *addr != "":
		if *input == "" {
			fatal(fmt.Errorf("-addr mode needs -input (query points CSV)"))
		}
		ds, derr := dataset.ReadCSVFile(*input, "queries", false)
		fatal(derr)
		results, err = sweep(strings.Split(*addr, ","), "remote", "", queriesOf(ds), levels, *duration, nil)
	default:
		fatal(fmt.Errorf("need -addr or -self"))
	}
	fatal(err)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(map[string]any{"n": *n, "dim": *dim, "cpus": runtime.NumCPU(), "levels": results}))
		return
	}
	for _, r := range results {
		fmt.Printf("%-6s %-4s shards=%-2d clients=%-3d qps=%-8.0f node_qps=%-8.0f fanout=%-5.2f p50=%-10s p99=%-10s shed=%.1f%% avg_cand=%.0f avg_rerank=%.0f",
			r.Mode, r.Precision, r.Shards, r.Clients, r.QPS, r.NodeQPS, r.FanoutMean,
			time.Duration(r.P50us)*time.Microsecond,
			time.Duration(r.P99us)*time.Microsecond, 100*r.ShedRate, r.AvgCandidates, r.AvgRerank)
		if r.IngestRequests > 0 {
			fmt.Printf(" ingest_qps=%-6.0f ingest_p99=%-10s compactions=%d",
				r.IngestQPS, time.Duration(r.IngestP99us)*time.Microsecond, r.Compactions)
		}
		fmt.Println()
	}
}

// levelResult is one (mode, precision, client-count) measurement.
type levelResult struct {
	Mode          string  `json:"mode"` // "lsh" | "exact" | "remote" | "fleet"
	Precision     string  `json:"precision,omitempty"`
	Clients       int     `json:"clients"`
	DurationS     float64 `json:"duration_s"`
	Requests      int64   `json:"requests"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	QPS           float64 `json:"qps"`
	P50us         int64   `json:"p50_us"`
	P99us         int64   `json:"p99_us"`
	ShedRate      float64 `json:"shed_rate"`
	AvgCandidates float64 `json:"avg_candidates"`
	AvgRerank     float64 `json:"avg_rerank"`

	// Fleet sweep only (-fleet-shards).
	Shards int `json:"shards,omitempty"`
	// FanoutMean is the mean owning-shard count per query
	// (fleet.shards.per.query / fleet.points) — strictly below Shards
	// when routing is bounded rather than broadcast.
	FanoutMean float64 `json:"fanout_mean,omitempty"`
	// NodeQPS projects per-node-deployment throughput: successful
	// requests divided by the busiest shard's serve.busy.us delta. On one
	// host the shards contend for the same CPUs and wall-clock QPS
	// measures that contention; NodeQPS is what the same fleet sustains
	// with a machine per shard.
	NodeQPS  float64     `json:"node_qps,omitempty"`
	PerShard []shardStat `json:"per_shard,omitempty"`

	// Multi-target -addr mode only: client-side per-target breakdown.
	PerTarget []targetStat `json:"per_target,omitempty"`

	// Mixed mode only (-ingest-frac): the write side of the level. Read
	// figures above exclude ingest requests.
	IngestFrac     float64 `json:"ingest_frac,omitempty"`
	IngestRequests int64   `json:"ingest_requests,omitempty"`
	IngestQPS      float64 `json:"ingest_qps,omitempty"`
	IngestP50us    int64   `json:"ingest_p50_us,omitempty"`
	IngestP99us    int64   `json:"ingest_p99_us,omitempty"`
	IngestShed     int64   `json:"ingest_shed,omitempty"`
	// Compactions that completed inside this level's window.
	Compactions int64 `json:"compactions,omitempty"`
}

// shardStat is one shard's counter deltas over a fleet sweep level.
type shardStat struct {
	Shard         int   `json:"shard"`
	Requests      int64 `json:"requests"`       // admitted batches (serve.requests)
	FleetRequests int64 `json:"fleet_requests"` // router-issued masked/exact calls
	BusyUS        int64 `json:"busy_us"`        // batcher service demand
	Candidates    int64 `json:"candidates"`     // stored rows scored (serve.candidates)
	Shed          int64 `json:"shed"`
}

// targetStat is the client-side view of one -addr target over a level.
type targetStat struct {
	Addr     string `json:"addr"`
	Requests int64  `json:"requests"`
	Shed     int64  `json:"shed"`
	Errors   int64  `json:"errors"`
}

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		levels = append(levels, v)
	}
	return levels, nil
}

func parsePrecisions(s string) ([]serve.Precision, error) {
	var out []serve.Precision
	for _, part := range strings.Split(s, ",") {
		p, err := serve.ParsePrecision(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// buildModel produces the serving artifact for -self. Small runs go through
// the real training pipeline; at ≥100k points that would dominate the
// benchmark wall clock, so the model is assembled directly from the blob
// geometry instead: k well-separated peaks, nearest-peak labels, densities
// decaying with peak distance, and the same d_c estimator and LSH width
// solver the pipeline uses. The serving path cannot tell the difference —
// it sees a valid model with the same row count, geometry, and layouts.
func buildModel(ds *points.Dataset, k int, seed int64) (*builtModel, error) {
	n := ds.N()
	if n < 100000 {
		res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{Config: core.Config{Seed: seed}})
		if err != nil {
			return nil, err
		}
		peaks, labels, err := res.Cluster(ds, core.SelectTopK(k))
		if err != nil {
			return nil, err
		}
		hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, core.LSHConfig{Config: core.Config{Seed: seed}})
		if err != nil {
			return nil, err
		}
		mdl, err := core.ExportModel(ds, res, peaks, labels, hr.Border, seed)
		if err != nil {
			return nil, err
		}
		return &builtModel{mdl: mdl, dc: res.Stats.Dc}, nil
	}

	fmt.Fprintf(os.Stderr, "serveload: %d points ≥ 100k — building model from blob geometry\n", n)
	dc := points.PercentileDistance(ds, 0.02, 100000, seed)
	// Greedy farthest-point peaks over a sample, then nearest-peak labels.
	rng := points.NewRand(seed + 7)
	sample := rng.Perm(n)[:min(n, 64*k)]
	peaks := []int32{int32(sample[0])}
	for len(peaks) < k {
		bestIdx, bestD := sample[0], -1.0
		for _, i := range sample {
			d := peakDist2(ds, peaks, i)
			if d > bestD {
				bestIdx, bestD = i, d
			}
		}
		peaks = append(peaks, int32(bestIdx))
	}
	labels := make([]int32, n)
	rho := make([]float64, n)
	for i := range labels {
		best, bestD2 := 0, points.SqDist(ds.Points[i].Pos, ds.Points[peaks[0]].Pos)
		for c := 1; c < len(peaks); c++ {
			if d2 := points.SqDist(ds.Points[i].Pos, ds.Points[peaks[c]].Pos); d2 < bestD2 {
				best, bestD2 = c, d2
			}
		}
		labels[i] = int32(best)
		rho[i] = 1 / (1 + bestD2/(dc*dc))
	}
	const m, pi, accuracy = 10, 3, 0.99
	w, err := lsh.SolveWidth(accuracy, dc, pi, m)
	if err != nil {
		return nil, err
	}
	res := &core.Result{Rho: rho}
	res.Stats.Dc = dc
	res.Stats.M, res.Stats.Pi, res.Stats.W = m, pi, w
	mdl, err := core.ExportModel(ds, res, peaks, labels, nil, seed)
	if err != nil {
		return nil, err
	}
	return &builtModel{mdl: mdl, dc: dc}, nil
}

type builtModel struct {
	mdl *model.Model
	dc  float64
}

func peakDist2(ds *points.Dataset, peaks []int32, i int) float64 {
	best := points.SqDist(ds.Points[i].Pos, ds.Points[peaks[0]].Pos)
	for _, p := range peaks[1:] {
		if d := points.SqDist(ds.Points[i].Pos, ds.Points[p].Pos); d < best {
			best = d
		}
	}
	return best
}

// prepareSelf builds the -self model and its query stream: training points
// jittered by a d_c/2-scale Gaussian, so the candidate sets look like real
// nearby traffic rather than replays.
func prepareSelf(n, dim, k int, seed int64) (*model.Model, [][]float64, error) {
	ds := dataset.Blobs("bench-serve", n, dim, k, 100, 2.5, seed)
	fmt.Fprintf(os.Stderr, "serveload: preparing model for %d points (dim %d)...\n", n, dim)
	bm, err := buildModel(ds, k, seed)
	if err != nil {
		return nil, nil, err
	}
	mdl, dc := bm.mdl, bm.dc
	fmt.Fprintf(os.Stderr, "serveload: model ready: %d clusters, dc=%.4g, M=%d pi=%d w=%.4g\n",
		mdl.NumClusters(), dc, mdl.LSH.M, mdl.LSH.Pi, mdl.LSH.W)
	rng := points.NewRand(seed + 99)
	queries := make([][]float64, n)
	for i, p := range ds.Points {
		q := make([]float64, dim)
		for j, x := range p.Pos {
			q[j] = x + rng.NormFloat64()*dc/2
		}
		queries[i] = q
	}
	// Shuffle (seeded, deterministic): the dataset is laid out cluster by
	// cluster, and closed-loop clients walk the pool from the front — a
	// short window would otherwise measure one cluster's neighborhood
	// instead of a query mix that mirrors the data.
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		queries[i], queries[j] = queries[j], queries[i]
	}
	return mdl, queries, nil
}

// runSelf trains (or fabricates) a model and benchmarks both serving paths
// at every requested scan precision in-process. Engines are built once per
// precision and shared across the pruned and exact servers, so the f32/q8
// mirrors are derived once.
func runSelf(n, dim, k int, seed int64, levels []int, precisions []serve.Precision, dur time.Duration, queue, batchMax, workers int) ([]levelResult, error) {
	mdl, queries, err := prepareSelf(n, dim, k, seed)
	if err != nil {
		return nil, err
	}

	var all []levelResult
	for _, prec := range precisions {
		eng, err := serve.NewEngine(mdl, prec)
		if err != nil {
			return nil, err
		}
		if eng.Precision() != prec {
			fmt.Fprintf(os.Stderr, "serveload: precision %s downgraded to %s by the model\n", prec, eng.Precision())
		}
		for _, mode := range []struct {
			name  string
			exact bool
		}{{"lsh", false}, {"exact", true}} {
			srv := serve.New(serve.Config{
				BatchMax:   batchMax,
				QueueDepth: queue,
				Workers:    workers,
				ExactOnly:  mode.exact,
			})
			srv.UseEngine(eng)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				return nil, err
			}
			snap := func() (pts, cand, rerank int64) {
				c := srv.Counters()
				return c.Get(serve.CtrPoints), c.Get(serve.CtrCandidates), c.Get(serve.CtrRerankRows)
			}
			rs, err := sweep([]string{srv.Addr()}, mode.name, eng.Precision().String(), queries, levels, dur, snap)
			if err != nil {
				return nil, err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				cancel()
				return nil, err
			}
			cancel()
			all = append(all, rs...)
		}
	}
	return all, nil
}

// runMixedSelf benchmarks the streaming-ingest path under mixed load: the
// in-process server fronts an ingest.Store (temp directory, background
// compactor), and every round(1/frac)-th request of each client ingests its
// query point instead of reading. Ingested points persist across levels, so
// later levels run against a larger, partly-compacted base — like a real
// ingesting node.
func runMixedSelf(n, dim, k int, seed int64, levels []int, precisions []serve.Precision, dur time.Duration, queue, batchMax, workers int, frac float64, compactInt time.Duration) ([]levelResult, error) {
	mdl, queries, err := prepareSelf(n, dim, k, seed)
	if err != nil {
		return nil, err
	}
	every := int(1/frac + 0.5)
	var all []levelResult
	for _, prec := range precisions {
		dir, err := os.MkdirTemp("", "serveload-ingest-")
		if err != nil {
			return nil, err
		}
		srv := serve.New(serve.Config{
			BatchMax:   batchMax,
			QueueDepth: queue,
			Workers:    workers,
		})
		st, err := ingest.Open(ingest.Config{
			Dir:       dir,
			Precision: prec.String(),
			Interval:  compactInt,
			MinPoints: 1024,
			OnSwap:    srv.UseEngine,
		}, func() (*model.Model, error) { return mdl, nil })
		if err != nil {
			os.RemoveAll(dir) //nolint:errcheck
			return nil, err
		}
		srv.SetIngest(st)
		srv.UseEngine(st.Engine())
		if err := srv.Start("127.0.0.1:0"); err != nil {
			st.Close()        //nolint:errcheck
			os.RemoveAll(dir) //nolint:errcheck
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "serveload: mixed %s: 1 ingest per %d requests, compacting every %s\n",
			prec, every, compactInt)
		for _, c := range levels {
			info0 := st.Info()
			r, err := runLevel([]string{srv.Addr()}, queries, c, dur, every)
			if err != nil {
				return nil, err
			}
			info1 := st.Info()
			r.Mode, r.Precision = "mixed", prec.String()
			r.IngestFrac = frac
			r.Compactions = info1.Compactions - info0.Compactions
			fmt.Fprintf(os.Stderr, "serveload: mixed/%s clients=%d: %d reads (%.0f qps, p99=%s), %d ingests (%.0f qps, p99=%s), %d compactions, base %d→%d rows\n",
				prec, c, r.Requests, r.QPS, time.Duration(r.P99us)*time.Microsecond,
				r.IngestRequests, r.IngestQPS, time.Duration(r.IngestP99us)*time.Microsecond,
				r.Compactions, info0.BaseN, info1.BaseN)
			all = append(all, *r)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		serr := srv.Shutdown(ctx)
		cancel()
		if cerr := st.Close(); serr == nil {
			serr = cerr
		}
		os.RemoveAll(dir) //nolint:errcheck
		if serr != nil {
			return nil, serr
		}
	}
	return all, nil
}

func queriesOf(ds *points.Dataset) [][]float64 {
	qs := make([][]float64, ds.N())
	for i, p := range ds.Points {
		qs[i] = p.Pos
	}
	return qs
}

// runFleetSelf benchmarks the sharded serving fleet: at each shard count it
// partitions the model, hosts one serve.Server per shard plus a
// fleet.Router in-process, and sweeps the client levels against the
// router's public /assign. Per-level fan-out, node_qps, and the per-shard
// breakdown come from counter deltas (see the command doc for the
// node_qps / wall-qps distinction on shared hosts).
func runFleetSelf(n, dim, k int, seed int64, shardCounts, levels []int, dur time.Duration, queue, batchMax, workers int) ([]levelResult, error) {
	mdl, queries, err := prepareSelf(n, dim, k, seed)
	if err != nil {
		return nil, err
	}
	var all []levelResult
	for _, shards := range shardCounts {
		subs, mf, err := fleet.Partition(mdl, shards, 0)
		if err != nil {
			return nil, err
		}
		srvs := make([]*serve.Server, shards)
		addrs := make([][]string, shards)
		rows := 0
		// All shards share one CPU here, so their batchers preempt each
		// other mid-batch; a shared batch lock keeps each shard's
		// serve.busy.us equal to its own compute (service demand), which
		// is what node_qps divides by.
		var batchLock sync.Mutex
		for s := range subs {
			eng, err := serve.NewEngine(subs[s], serve.PrecF64)
			if err != nil {
				return nil, err
			}
			id := s
			srv := serve.New(serve.Config{
				BatchMax:   batchMax,
				QueueDepth: queue,
				Workers:    workers,
				ShardID:    &id,
				BatchLock:  &batchLock,
			})
			srv.UseEngine(eng)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				return nil, err
			}
			srvs[s] = srv
			addrs[s] = []string{srv.Addr()}
			rows += subs[s].N()
		}
		router, err := fleet.NewRouter(fleet.RouterConfig{Manifest: mf, Shards: addrs})
		if err != nil {
			return nil, err
		}
		if err := router.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "serveload: fleet of %d shards up (replication factor %.2f)\n",
			shards, float64(rows)/float64(mdl.N()))

		type shardSnap struct{ req, fleetReq, busy, cand, shed int64 }
		snapShards := func() []shardSnap {
			out := make([]shardSnap, len(srvs))
			for s, srv := range srvs {
				c := srv.Counters()
				out[s] = shardSnap{
					req:      c.Get(serve.CtrRequests),
					fleetReq: c.Get(serve.CtrFleetRequests),
					busy:     c.Get(serve.CtrBusyUS),
					cand:     c.Get(serve.CtrCandidates),
					shed:     c.Get(serve.CtrShed),
				}
			}
			return out
		}
		for _, c := range levels {
			s0 := snapShards()
			pts0 := router.Counters().Get(fleet.CtrPoints)
			spq0 := router.Counters().Get(fleet.CtrShardsPerQuery)
			r, err := runLevel([]string{router.Addr()}, queries, c, dur, 0)
			if err != nil {
				return nil, err
			}
			r.Mode, r.Precision, r.Shards = "fleet", "f64", shards
			if d := router.Counters().Get(fleet.CtrPoints) - pts0; d > 0 {
				r.FanoutMean = float64(router.Counters().Get(fleet.CtrShardsPerQuery)-spq0) / float64(d)
			}
			s1 := snapShards()
			var maxBusy int64
			for s := range srvs {
				d := shardStat{
					Shard:         s,
					Requests:      s1[s].req - s0[s].req,
					FleetRequests: s1[s].fleetReq - s0[s].fleetReq,
					BusyUS:        s1[s].busy - s0[s].busy,
					Candidates:    s1[s].cand - s0[s].cand,
					Shed:          s1[s].shed - s0[s].shed,
				}
				r.PerShard = append(r.PerShard, d)
				if d.BusyUS > maxBusy {
					maxBusy = d.BusyUS
				}
			}
			if maxBusy > 0 {
				r.NodeQPS = float64(r.Requests) / (float64(maxBusy) / 1e6)
			}
			fmt.Fprintf(os.Stderr, "serveload: fleet/%d clients=%d: %d req (%.0f qps, %.0f node_qps), fanout=%.2f, p50=%s p99=%s, shed=%d, errors=%d\n",
				shards, c, r.Requests, r.QPS, r.NodeQPS, r.FanoutMean,
				time.Duration(r.P50us)*time.Microsecond, time.Duration(r.P99us)*time.Microsecond, r.Shed, r.Errors)
			all = append(all, *r)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		rerr := router.Shutdown(ctx)
		cancel()
		if rerr != nil {
			return nil, rerr
		}
		for _, srv := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			serr := srv.Shutdown(ctx)
			cancel()
			if serr != nil {
				return nil, serr
			}
		}
	}
	return all, nil
}

// sweep runs the closed loop at every client level against one server (or a
// list of equivalent targets; clients round-robin over them). When snap is
// non-nil, candidate and re-rank volume are attributed from per-level
// counter deltas (not cumulative totals, which would smear every level
// toward the running mean).
func sweep(addrs []string, mode, prec string, queries [][]float64, levels []int, dur time.Duration, snap func() (pts, cand, rerank int64)) ([]levelResult, error) {
	var out []levelResult
	for _, c := range levels {
		var pts0, cand0, rer0 int64
		if snap != nil {
			pts0, cand0, rer0 = snap()
		}
		r, err := runLevel(addrs, queries, c, dur, 0)
		if err != nil {
			return nil, err
		}
		r.Mode, r.Precision = mode, prec
		if snap != nil {
			pts1, cand1, rer1 := snap()
			if d := pts1 - pts0; d > 0 {
				r.AvgCandidates = float64(cand1-cand0) / float64(d)
				r.AvgRerank = float64(rer1-rer0) / float64(d)
			}
		}
		fmt.Fprintf(os.Stderr, "serveload: %s/%s clients=%d: %d req (%0.f qps), p50=%s p99=%s, shed=%d, errors=%d\n",
			mode, prec, c, r.Requests, r.QPS, time.Duration(r.P50us)*time.Microsecond,
			time.Duration(r.P99us)*time.Microsecond, r.Shed, r.Errors)
		out = append(out, *r)
	}
	return out, nil
}

// runLevel drives `clients` closed-loop clients for dur, assigned to the
// targets round-robin. With ingestEvery > 0 every ingestEvery-th request of
// each client POSTs its query point to /ingest instead of /assign; ingest
// latency and sheds are accounted separately from reads.
func runLevel(addrs []string, queries [][]float64, clients int, dur time.Duration, ingestEvery int) (*levelResult, error) {
	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	defer transport.CloseIdleConnections()

	type clientStats struct {
		lat, ingLat           []time.Duration
		shed, ingShed, errors int64
	}
	stats := make([]clientStats, clients)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			base := "http://" + addrs[c%len(addrs)]
			for i := c; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				ingesting := ingestEvery > 0 && i%ingestEvery == 0
				url := base + "/assign"
				if ingesting {
					url = base + "/ingest"
				}
				body, _ := json.Marshal(map[string][][]float64{"points": {q}})
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					st.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK && ingesting:
					st.ingLat = append(st.ingLat, time.Since(start))
				case resp.StatusCode == http.StatusOK:
					st.lat = append(st.lat, time.Since(start))
				case resp.StatusCode == http.StatusTooManyRequests && ingesting:
					st.ingShed++
				case resp.StatusCode == http.StatusTooManyRequests:
					st.shed++
				default:
					st.errors++
				}
			}
		}(c)
	}
	wg.Wait()

	r := &levelResult{Clients: clients, DurationS: dur.Seconds()}
	var all, allIng []time.Duration
	perTarget := make([]targetStat, len(addrs))
	for i := range stats {
		all = append(all, stats[i].lat...)
		allIng = append(allIng, stats[i].ingLat...)
		r.Shed += stats[i].shed
		r.IngestShed += stats[i].ingShed
		r.Errors += stats[i].errors
		t := &perTarget[i%len(addrs)]
		t.Requests += int64(len(stats[i].lat))
		t.Shed += stats[i].shed
		t.Errors += stats[i].errors
	}
	if len(addrs) > 1 {
		for i := range perTarget {
			perTarget[i].Addr = addrs[i]
		}
		r.PerTarget = perTarget
	}
	r.Requests = int64(len(all))
	r.QPS = float64(len(all)) / dur.Seconds()
	if attempts := r.Requests + r.Shed; attempts > 0 {
		r.ShedRate = float64(r.Shed) / float64(attempts)
	}
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		r.P50us = all[len(all)/2].Microseconds()
		r.P99us = all[(len(all)*99)/100].Microseconds()
	}
	if len(allIng) > 0 {
		sort.Slice(allIng, func(a, b int) bool { return allIng[a] < allIng[b] })
		r.IngestRequests = int64(len(allIng))
		r.IngestQPS = float64(len(allIng)) / dur.Seconds()
		r.IngestP50us = allIng[len(allIng)/2].Microseconds()
		r.IngestP99us = allIng[(len(allIng)*99)/100].Microseconds()
	}
	return r, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "serveload: %v\n", err)
		os.Exit(1)
	}
}
