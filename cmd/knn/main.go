// Command knn runs the distributed kNN-join and the workloads built on it.
//
// Usage:
//
//	knn join -r queries.csv -s base.csv -k 10 -out neighbors.csv
//	knn join -r queries.csv -s base.csv -k 10 -exact      # broadcast oracle
//	knn outliers -input points.csv -k 5 -top 20
//	knn kdist -input points.csv -k 4 -out curve.csv       # DBSCAN eps curve
//	knn score -input points.csv -centroids centers.csv -out assign.csv
//
// Every subcommand runs on the local multicore engine by default; with
// -master-listen it becomes a MapReduce master and waits for mrd workers,
// exactly like ddp:
//
//	knn join -r q.csv -s b.csv -k 10 -master-listen :7070 -min-workers 2
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/knnjoin"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "join":
		runJoin(os.Args[2:])
	case "outliers":
		runOutliers(os.Args[2:])
	case "kdist":
		runKDist(os.Args[2:])
	case "score":
		runScore(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: knn <join|outliers|kdist|score> [flags]")
	os.Exit(2)
}

// joinFlags carries the flags every subcommand shares.
type joinFlags struct {
	fs       *flag.FlagSet
	k        *int
	m        *int
	pi       *int
	w        *float64
	accuracy *float64
	seed     *int64
	reduces  *int
	scan     *string
	verbose  *bool
	out      *string

	masterListen *string
	minWorkers   *int
	workerWait   *time.Duration
}

func newJoinFlags(name string) *joinFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &joinFlags{
		fs:           fs,
		k:            fs.Int("k", 10, "neighbors per query"),
		m:            fs.Int("m", 8, "LSH layouts M"),
		pi:           fs.Int("pi", 4, "hash functions per layout"),
		w:            fs.Float64("w", 0, "LSH slot width (0 = solve from -accuracy)"),
		accuracy:     fs.Float64("accuracy", 0.9, "target bucket accuracy when solving the width"),
		seed:         fs.Int64("seed", 1, "layout / sampling seed"),
		reduces:      fs.Int("reduces", 0, "reduce partitions (0 = one per worker)"),
		scan:         fs.String("scan", "", "bucket scan precision: f64 (default) or f32"),
		verbose:      fs.Bool("v", false, "log per-pass progress"),
		out:          fs.String("out", "", "output CSV ('' or '-' = stdout)"),
		masterListen: fs.String("master-listen", "", "run distributed: listen for mrd workers here"),
		minWorkers:   fs.Int("min-workers", 1, "distributed: wait for at least this many workers"),
		workerWait:   fs.Duration("worker-wait", time.Minute, "distributed: how long to wait for workers"),
	}
}

func (jf *joinFlags) config() knnjoin.Config {
	cfg := knnjoin.Config{
		M:             *jf.m,
		Pi:            *jf.pi,
		W:             *jf.w,
		Accuracy:      *jf.accuracy,
		Seed:          *jf.seed,
		NumReduces:    *jf.reduces,
		ScanPrecision: *jf.scan,
	}
	if *jf.verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return cfg
}

// session builds the DAG session for the selected engine. The cleanup
// closes the master when distributed.
func (jf *joinFlags) session() (*dag.Session, func()) {
	if *jf.masterListen == "" {
		drv := mapreduce.NewDriver(&mapreduce.LocalEngine{})
		return dag.NewSession(drv, dag.Options{}), func() {}
	}
	m, err := rpcmr.NewMaster(*jf.masterListen)
	fatal(err)
	if *jf.verbose {
		m.Events = obs.NewWriterSink(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "knn: master on %s; waiting for %d worker(s)...\n", m.Addr(), *jf.minWorkers)
	if err := m.WaitWorkers(*jf.minWorkers, *jf.workerWait); err != nil {
		m.Close()
		fatal(err)
	}
	drv := mapreduce.NewDriver(m)
	return dag.NewSession(drv, dag.Options{}), func() { m.Close() }
}

func (jf *joinFlags) output() (io.Writer, func()) {
	if *jf.out == "" || *jf.out == "-" {
		return os.Stdout, func() {}
	}
	f, err := os.Create(*jf.out)
	fatal(err)
	return f, func() { fatal(f.Close()) }
}

func runJoin(args []string) {
	jf := newJoinFlags("join")
	rFile := jf.fs.String("r", "", "query-side CSV (required)")
	sFile := jf.fs.String("s", "", "base-side CSV (required)")
	labeled := jf.fs.Bool("labeled", false, "treat the last CSV column as a label to ignore")
	exact := jf.fs.Bool("exact", false, "run the broadcast-naive exact join instead of the bucketed one")
	jf.fs.Parse(args)
	if *rFile == "" || *sFile == "" {
		fatal(fmt.Errorf("join needs -r and -s"))
	}
	R, err := dataset.ReadCSVFile(*rFile, "R", *labeled)
	fatal(err)
	S, err := dataset.ReadCSVFile(*sFile, "S", *labeled)
	fatal(err)

	sess, cleanup := jf.session()
	defer cleanup()
	var res *knnjoin.Result
	if *exact {
		res, err = knnjoin.RunExact(context.Background(), sess, R, S, *jf.k, jf.config())
	} else {
		res, err = knnjoin.Run(context.Background(), sess, R, S, *jf.k, jf.config())
	}
	fatal(err)

	w, done := jf.output()
	bw := bufio.NewWriter(w)
	for qid, ns := range res.Neighbors {
		for rank, n := range ns {
			fmt.Fprintf(bw, "%d,%d,%d,%g\n", qid, rank, n.ID, n.D2)
		}
	}
	fatal(bw.Flush())
	done()
	fmt.Fprintf(os.Stderr, "knn: joined %d queries against %d base points (k=%d, %d fallbacks, %d distance computations)\n",
		R.N(), S.N(), *jf.k, res.Fallbacks, res.Stats.DistanceComputations)
}

func runOutliers(args []string) {
	jf := newJoinFlags("outliers")
	input := jf.fs.String("input", "", "input CSV (required)")
	labeled := jf.fs.Bool("labeled", false, "treat the last CSV column as a label to ignore")
	top := jf.fs.Int("top", 10, "how many outliers to report")
	jf.fs.Parse(args)
	if *input == "" {
		fatal(fmt.Errorf("outliers needs -input"))
	}
	ds, err := dataset.ReadCSVFile(*input, "input", *labeled)
	fatal(err)

	sess, cleanup := jf.session()
	defer cleanup()
	outs, res, err := knnjoin.Outliers(context.Background(), sess, ds, *jf.k, *top, jf.config())
	fatal(err)

	w, done := jf.output()
	bw := bufio.NewWriter(w)
	for _, o := range outs {
		fmt.Fprintf(bw, "%d,%g\n", o.ID, o.KDist)
	}
	fatal(bw.Flush())
	done()
	fmt.Fprintf(os.Stderr, "knn: ranked %d points by %d-distance (%d fallbacks)\n", ds.N(), *jf.k, res.Fallbacks)
}

func runKDist(args []string) {
	jf := newJoinFlags("kdist")
	input := jf.fs.String("input", "", "input CSV (required)")
	labeled := jf.fs.Bool("labeled", false, "treat the last CSV column as a label to ignore")
	jf.fs.Parse(args)
	if *input == "" {
		fatal(fmt.Errorf("kdist needs -input"))
	}
	ds, err := dataset.ReadCSVFile(*input, "input", *labeled)
	fatal(err)

	sess, cleanup := jf.session()
	defer cleanup()
	prof, res, err := knnjoin.KDistanceProfile(context.Background(), sess, ds, *jf.k, jf.config())
	fatal(err)

	w, done := jf.output()
	bw := bufio.NewWriter(w)
	for i, d := range prof.Sorted {
		fmt.Fprintf(bw, "%d,%g\n", i, d)
	}
	fatal(bw.Flush())
	done()
	fmt.Fprintf(os.Stderr, "knn: %d-distance curve over %d points, suggested eps %g (%d fallbacks)\n",
		*jf.k, ds.N(), prof.SuggestEps(), res.Fallbacks)
}

func runScore(args []string) {
	jf := newJoinFlags("score")
	input := jf.fs.String("input", "", "input CSV (required)")
	centFile := jf.fs.String("centroids", "", "centroid CSV (required)")
	labeled := jf.fs.Bool("labeled", false, "treat the last CSV column as a label to ignore")
	jf.fs.Parse(args)
	if *input == "" || *centFile == "" {
		fatal(fmt.Errorf("score needs -input and -centroids"))
	}
	ds, err := dataset.ReadCSVFile(*input, "input", *labeled)
	fatal(err)
	cents, err := dataset.ReadCSVFile(*centFile, "centroids", *labeled)
	fatal(err)

	sess, cleanup := jf.session()
	defer cleanup()
	assign, dist, _, err := knnjoin.ScoreNearestCentroid(context.Background(), sess, ds, cents, jf.config())
	fatal(err)

	w, done := jf.output()
	bw := bufio.NewWriter(w)
	for i := range assign {
		fmt.Fprintf(bw, "%d,%d,%g\n", i, assign[i], dist[i])
	}
	fatal(bw.Flush())
	done()
	fmt.Fprintf(os.Stderr, "knn: scored %d points against %d centroids\n", ds.N(), cents.N())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "knn: %v\n", err)
		os.Exit(1)
	}
}

// registerAll makes the join jobs available when this process acts as
// master for mrd workers.
func init() {
	rpcmr.RegisterJobs(knnjoin.JobFactories())
}
