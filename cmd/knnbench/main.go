// Command knnbench compares the LSH-bucketed kNN join against the
// broadcast-naive exact join on one generated R/S pair, verifies the two
// arms agree bit for bit, and reports wall time plus the cost counters
// (distance computations, candidate pairs, exact fallbacks) per arm.
//
// Usage:
//
//	knnbench -n 100000 -nq 10000 -dim 8 -k 10
//	knnbench -n 100000 -nq 10000 -scan f32 -json
//
// Numbers are recorded in BENCH_PR10.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/knnjoin"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
)

type armResult struct {
	Name                 string  `json:"name"`
	WallSeconds          float64 `json:"wall_s"`
	DistanceComputations int64   `json:"distance_computations"`
	Candidates           int64   `json:"candidates"`
	Fallbacks            int     `json:"fallbacks"`
	ShuffleBytes         int64   `json:"shuffle_bytes"`
	CompactEvals         int64   `json:"compact_evals,omitempty"`
	CompactRechecks      int64   `json:"compact_rechecks,omitempty"`
}

type report struct {
	Bench   string      `json:"bench"`
	N       int         `json:"n"`
	NQ      int         `json:"nq"`
	Dim     int         `json:"dim"`
	K       int         `json:"k"`
	M       int         `json:"m"`
	Pi      int         `json:"pi"`
	Scan    string      `json:"scan"`
	Workers int         `json:"workers"`
	Arms    []armResult `json:"arms"`
	Speedup float64     `json:"speedup_lsh_vs_naive"`
}

func main() {
	var (
		n        = flag.Int("n", 100000, "base (S) size")
		nq       = flag.Int("nq", 10000, "query (R) size")
		dim      = flag.Int("dim", 8, "dimensionality")
		k        = flag.Int("k", 10, "neighbors per query")
		m        = flag.Int("m", 8, "LSH layouts M")
		pi       = flag.Int("pi", 4, "hash functions per layout")
		accuracy = flag.Float64("accuracy", 0.95, "width-solver target accuracy")
		wFlag    = flag.Float64("w", 0, "pin the LSH slot width (0 = solve)")
		scan     = flag.String("scan", "", "bucket scan precision: f64 (default) or f32")
		seed     = flag.Int64("seed", 1, "generation / layout seed")
		reduces  = flag.Int("reduces", 0, "reduce partitions (0 = one per core)")
		centers  = flag.Int("centers", 64, "blob centers of the generated set")
		jsonOut  = flag.Bool("json", false, "emit one JSON report on stdout")
	)
	flag.Parse()

	ds := dataset.Blobs("knnbench", *n+*nq, *dim, *centers, 400, 5, *seed)
	R, S, err := dataset.Split(ds, *nq, *seed+1)
	fatal(err)

	cfg := knnjoin.Config{
		M: *m, Pi: *pi, W: *wFlag, Accuracy: *accuracy, Seed: *seed,
		NumReduces: *reduces, ScanPrecision: *scan,
	}
	rep := report{
		Bench: "knnjoin", N: *n, NQ: *nq, Dim: *dim, K: *k,
		M: *m, Pi: *pi, Scan: *scan, Workers: runtime.NumCPU(),
	}

	run := func(name string, f func(*dag.Session) (*knnjoin.Result, error)) *knnjoin.Result {
		sess := dag.NewSession(mapreduce.NewDriver(&mapreduce.LocalEngine{}), dag.Options{})
		start := time.Now()
		res, err := f(sess)
		fatal(err)
		wall := time.Since(start)
		arm := armResult{
			Name:                 name,
			WallSeconds:          wall.Seconds(),
			DistanceComputations: res.Stats.DistanceComputations,
			Candidates:           sumCounter(res, knnjoin.CtrCandidates),
			Fallbacks:            res.Fallbacks,
			ShuffleBytes:         res.Stats.ShuffleBytes,
			CompactEvals:         sumCounter(res, mapreduce.CtrCompactEvals),
			CompactRechecks:      sumCounter(res, mapreduce.CtrCompactRechecks),
		}
		rep.Arms = append(rep.Arms, arm)
		if !*jsonOut {
			fmt.Printf("%-6s %8.3fs  dist=%d cand=%d fallbacks=%d shuffleMB=%.1f\n",
				name, arm.WallSeconds, arm.DistanceComputations, arm.Candidates,
				arm.Fallbacks, float64(arm.ShuffleBytes)/(1<<20))
		}
		return res
	}

	ctx := context.Background()
	lsh := run("lsh", func(s *dag.Session) (*knnjoin.Result, error) {
		return knnjoin.Run(ctx, s, R, S, *k, cfg)
	})
	naive := run("naive", func(s *dag.Session) (*knnjoin.Result, error) {
		return knnjoin.RunExact(ctx, s, R, S, *k, cfg)
	})

	for qid := range naive.Neighbors {
		if len(lsh.Neighbors[qid]) != len(naive.Neighbors[qid]) {
			fatal(fmt.Errorf("arms disagree on query %d: %d vs %d neighbors",
				qid, len(lsh.Neighbors[qid]), len(naive.Neighbors[qid])))
		}
		for i := range naive.Neighbors[qid] {
			if lsh.Neighbors[qid][i] != naive.Neighbors[qid][i] {
				fatal(fmt.Errorf("arms disagree on query %d entry %d: %+v vs %+v",
					qid, i, lsh.Neighbors[qid][i], naive.Neighbors[qid][i]))
			}
		}
	}

	rep.Speedup = rep.Arms[1].WallSeconds / rep.Arms[0].WallSeconds
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(rep))
	} else {
		fmt.Printf("speedup %.2fx (lsh vs naive), results bit-identical\n", rep.Speedup)
	}
}

func sumCounter(res *knnjoin.Result, name string) int64 {
	var s int64
	for _, j := range res.Stats.Jobs {
		s += j.Counters[name]
	}
	return s
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "knnbench: %v\n", err)
		os.Exit(1)
	}
}
