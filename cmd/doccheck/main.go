// Command doccheck fails the build when any package in the repository
// lacks a package-level doc comment. It is wired into `make check` so
// every package keeps the one-paragraph statement of what it is for —
// the documentation gate added alongside the operator-docs pass.
//
// A package passes if at least one of its non-test .go files carries a
// doc comment on the package clause. Run from the module root:
//
//	go run ./cmd/doccheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	undocumented, err := scan(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	if len(undocumented) > 0 {
		fmt.Fprintln(os.Stderr, "doccheck: packages without a package doc comment:")
		for _, dir := range undocumented {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: all packages documented")
}

// scan walks the tree under root and returns the directories containing a
// Go package whose files all lack a package doc comment.
func scan(root string) ([]string, error) {
	// dir -> has at least one non-test file with a package doc
	hasDoc := make(map[string]bool)
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		seen[dir] = true
		if hasDoc[dir] {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasDoc[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for dir := range seen {
		if !hasDoc[dir] {
			out = append(out, dir)
		}
	}
	sort.Strings(out)
	return out, nil
}
