// Command doccheck is the documentation gate wired into `make check`. It
// fails the build when:
//
//   - any package in the repository lacks a package-level doc comment
//     (a package passes if at least one non-test .go file carries a doc
//     comment on the package clause), or
//   - any configuration knob registered in code — an exported `Conf*`
//     string constant with a dotted value, e.g. `ConfDeltaMax =
//     "ingest.delta.max"` — has no row in README.md's configuration
//     reference (the knob's name must appear backticked in README.md).
//
// The second check keeps the README's configuration reference in step with
// the code: adding a knob without documenting it breaks `make check` and CI.
// Run from the module root:
//
//	go run ./cmd/doccheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	undocumented, knobs, err := scan(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	failed := false
	if len(undocumented) > 0 {
		failed = true
		fmt.Fprintln(os.Stderr, "doccheck: packages without a package doc comment:")
		for _, dir := range undocumented {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
	}
	missing, err := undocumentedKnobs("README.md", knobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		failed = true
		fmt.Fprintln(os.Stderr, "doccheck: knobs registered in code but missing from README.md's configuration reference:")
		for _, k := range missing {
			fmt.Fprintf(os.Stderr, "  %-28s (%s in %s)\n", k.value, k.name, k.file)
		}
		fmt.Fprintln(os.Stderr, "doccheck: add a `| `knob` | default | meaning |` row under \"Configuration reference\"")
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("doccheck: all packages documented, all %d registered knobs in the README\n", len(knobs))
}

// knob is one exported Conf* string constant found in the tree.
type knob struct {
	name  string // Go identifier, e.g. ConfDeltaMax
	value string // knob name, e.g. ingest.delta.max
	file  string
}

// undocumentedKnobs returns the knobs whose value never appears backticked
// in the named markdown file.
func undocumentedKnobs(readme string, knobs []knob) ([]knob, error) {
	data, err := os.ReadFile(readme)
	if err != nil {
		return nil, err
	}
	text := string(data)
	var missing []knob
	for _, k := range knobs {
		if !strings.Contains(text, "`"+k.value+"`") {
			missing = append(missing, k)
		}
	}
	return missing, nil
}

// collectKnobs pulls exported Conf* string constants with dotted values out
// of one parsed file. The dot requirement skips unrelated Conf* constants
// that are not knob names.
func collectKnobs(path string, f *ast.File) []knob {
	var out []knob
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Conf") || !name.IsExported() || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.Contains(val, ".") {
					continue
				}
				out = append(out, knob{name: name.Name, value: val, file: path})
			}
		}
	}
	return out
}

// scan walks the tree under root and returns the directories containing a
// Go package whose files all lack a package doc comment, plus every
// registered Conf* knob, sorted by knob name.
func scan(root string) ([]string, []knob, error) {
	// dir -> has at least one non-test file with a package doc
	hasDoc := make(map[string]bool)
	seen := make(map[string]bool)
	var knobs []knob
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		seen[dir] = true
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasDoc[dir] = true
		}
		knobs = append(knobs, collectKnobs(path, f)...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var out []string
	for dir := range seen {
		if !hasDoc[dir] {
			out = append(out, dir)
		}
	}
	sort.Strings(out)
	sort.Slice(knobs, func(i, j int) bool { return knobs[i].value < knobs[j].value })
	return out, knobs, nil
}
