package baselines

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/points"
)

// Linkage selects the inter-cluster distance for agglomerative clustering.
type Linkage int

const (
	// SingleLink merges by minimum pairwise distance (chaining behaviour).
	SingleLink Linkage = iota
	// CompleteLink merges by maximum pairwise distance (compact clusters).
	CompleteLink
	// AverageLink merges by mean pairwise distance (UPGMA).
	AverageLink
)

// Hierarchical runs bottom-up agglomerative clustering until k clusters
// remain, using the Lance–Williams update so each merge is O(n), for an
// O(n²) total after the O(n²) distance matrix. Suitable for the small
// shaped sets of the Figure 8 comparison (n ≲ a few thousand).
func Hierarchical(ds *points.Dataset, k int, link Linkage) ([]int, error) {
	n := ds.N()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("baselines: k=%d out of range for %d points", k, n)
	}
	// dist[a][b] is the current inter-cluster distance; active tracks live
	// cluster representatives; size for average linkage.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := points.Dist(ds.Points[i].Pos, ds.Points[j].Pos)
			dist[i][j], dist[j][i] = d, d
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	parent := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
		parent[i] = i
	}
	// Priority queue of candidate merges; stale entries are skipped by
	// re-checking the current distance on pop.
	pq := &mergeQueue{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			heap.Push(pq, merge{d: dist[i][j], a: i, b: j})
		}
	}
	remaining := n
	for remaining > k && pq.Len() > 0 {
		m := heap.Pop(pq).(merge)
		if !active[m.a] || !active[m.b] || dist[m.a][m.b] != m.d {
			continue
		}
		// Merge b into a.
		active[m.b] = false
		parent[m.b] = m.a
		for c := 0; c < n; c++ {
			if !active[c] || c == m.a {
				continue
			}
			var nd float64
			switch link {
			case CompleteLink:
				nd = math.Max(dist[m.a][c], dist[m.b][c])
			case AverageLink:
				nd = (float64(size[m.a])*dist[m.a][c] + float64(size[m.b])*dist[m.b][c]) /
					float64(size[m.a]+size[m.b])
			default: // SingleLink
				nd = math.Min(dist[m.a][c], dist[m.b][c])
			}
			dist[m.a][c], dist[c][m.a] = nd, nd
			heap.Push(pq, merge{d: nd, a: minInt(m.a, c), b: maxInt(m.a, c)})
		}
		size[m.a] += size[m.b]
		remaining--
	}
	// Path-compress to roots and densify labels.
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	labelOf := make(map[int]int)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := labelOf[r]
		if !ok {
			l = len(labelOf)
			labelOf[r] = l
		}
		labels[i] = l
	}
	return labels, nil
}

type merge struct {
	d    float64
	a, b int
}

type mergeQueue []merge

func (q mergeQueue) Len() int { return len(q) }
func (q mergeQueue) Less(i, j int) bool {
	if q[i].d != q[j].d {
		return q[i].d < q[j].d
	}
	if q[i].a != q[j].a {
		return q[i].a < q[j].a
	}
	return q[i].b < q[j].b
}
func (q mergeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *mergeQueue) Push(x interface{}) { *q = append(*q, x.(merge)) }
func (q *mergeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
