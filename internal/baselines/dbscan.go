package baselines

import (
	"fmt"

	"repro/internal/points"
)

// DBSCANResult labels points with cluster ids; noise points get -1.
type DBSCANResult struct {
	Labels   []int
	Clusters int
	Noise    int
}

// DBSCAN runs the classic density-based clustering (Ester et al.) with
// radius eps and core threshold minPts (a point is core when it has at
// least minPts neighbours within eps, itself excluded). Neighbour queries
// use a uniform grid index with cell side eps, so the expected cost is
// near-linear on low-dimensional data; the worst case remains O(n²).
func DBSCAN(ds *points.Dataset, eps float64, minPts int) (*DBSCANResult, error) {
	n := ds.N()
	if eps <= 0 {
		return nil, fmt.Errorf("baselines: non-positive eps %v", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("baselines: minPts %d < 1", minPts)
	}
	idx := newGridIndex(ds, eps)
	labels := make([]int, n)
	const (
		unvisited = -2
		noise     = -1
	)
	for i := range labels {
		labels[i] = unvisited
	}
	eps2 := eps * eps
	cluster := 0
	var queue []int32
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		neigh := idx.neighbors(int32(i), eps2)
		if len(neigh) < minPts {
			labels[i] = noise
			continue
		}
		labels[i] = cluster
		queue = append(queue[:0], neigh...)
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[j] == noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			jn := idx.neighbors(j, eps2)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
		cluster++
	}
	res := &DBSCANResult{Labels: labels, Clusters: cluster}
	for _, l := range labels {
		if l == noise {
			res.Noise++
		}
	}
	return res, nil
}

// gridIndex buckets points into cells of side eps; a radius-eps query only
// inspects the 3^dim neighbouring cells. For dim > 6 the cell fan-out
// outweighs the pruning, so the index degrades to a flat scan.
type gridIndex struct {
	ds   *points.Dataset
	eps  float64
	dim  int
	cell map[string][]int32
	flat bool
}

func newGridIndex(ds *points.Dataset, eps float64) *gridIndex {
	g := &gridIndex{ds: ds, eps: eps, dim: ds.Dim()}
	if g.dim > 6 {
		g.flat = true
		return g
	}
	g.cell = make(map[string][]int32)
	for i, p := range ds.Points {
		key := g.key(p.Pos, nil)
		g.cell[key] = append(g.cell[key], int32(i))
	}
	return g
}

// key encodes the cell coordinates of pos, offset by off (nil = zero).
func (g *gridIndex) key(pos points.Vector, off []int) string {
	buf := make([]byte, 0, g.dim*6)
	for j := 0; j < g.dim; j++ {
		c := int(pos[j] / g.eps)
		if pos[j] < 0 {
			c--
		}
		if off != nil {
			c += off[j]
		}
		buf = appendInt(buf, c)
		buf = append(buf, ':')
	}
	return string(buf)
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// neighbors returns the ids within sqrt(eps2) of point i, excluding i.
func (g *gridIndex) neighbors(i int32, eps2 float64) []int32 {
	p := g.ds.Points[i].Pos
	var out []int32
	if g.flat {
		for j := range g.ds.Points {
			if int32(j) != i && points.SqDist(p, g.ds.Points[j].Pos) <= eps2 {
				out = append(out, int32(j))
			}
		}
		return out
	}
	off := make([]int, g.dim)
	var walk func(d int)
	walk = func(d int) {
		if d == g.dim {
			for _, j := range g.cell[g.key(p, off)] {
				if j != i && points.SqDist(p, g.ds.Points[j].Pos) <= eps2 {
					out = append(out, j)
				}
			}
			return
		}
		for _, o := range [3]int{-1, 0, 1} {
			off[d] = o
			walk(d + 1)
		}
	}
	walk(0)
	return out
}
