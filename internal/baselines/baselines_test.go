package baselines

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/evalmetrics"
	"repro/internal/points"
)

func separatedBlobs(seed int64) *points.Dataset {
	// Three very well separated clusters: every sane algorithm must
	// recover them perfectly.
	rng := points.NewRand(seed)
	var vs []points.Vector
	var labels []int
	centers := []points.Vector{{0, 0}, {100, 0}, {0, 100}}
	for c, ctr := range centers {
		for i := 0; i < 60; i++ {
			vs = append(vs, points.Vector{
				ctr[0] + rng.NormFloat64(),
				ctr[1] + rng.NormFloat64(),
			})
			labels = append(labels, c)
		}
	}
	ds := points.FromVectors("separated", vs)
	ds.Labels = labels
	return ds
}

func ari(t *testing.T, truth, pred []int) float64 {
	t.Helper()
	v, err := evalmetrics.ARI(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	ds := separatedBlobs(1)
	res, err := KMeans(ds, 3, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ari(t, ds.Labels, res.Labels); got != 1 {
		t.Fatalf("ARI = %v, want 1", got)
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
	if res.Iterations <= 0 || res.Iterations > 50 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	ds := separatedBlobs(2)
	a, err := KMeans(ds, 3, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(ds, 3, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed, different labels")
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	ds := separatedBlobs(1)
	if _, err := KMeans(ds, 0, 10, 1); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := KMeans(ds, ds.N()+1, 10, 1); err == nil {
		t.Fatal("want error for k>N")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	ds := points.FromVectors("tiny", []points.Vector{{0}, {10}, {20}})
	res, err := KMeans(ds, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=N should give singletons, labels %v", res.Labels)
	}
	if res.Inertia != 0 {
		t.Fatalf("k=N inertia = %v", res.Inertia)
	}
}

func TestEMRecoversSeparatedClusters(t *testing.T) {
	ds := separatedBlobs(3)
	res, err := EM(ds, 3, 100, 1e-8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ari(t, ds.Labels, res.Labels); got != 1 {
		t.Fatalf("ARI = %v, want 1", got)
	}
	// Weights form a distribution.
	var sum float64
	for _, w := range res.Weights {
		if w < 0 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestEMLogLikelihoodMonotone(t *testing.T) {
	// Run twice with different iteration caps: more EM iterations can
	// never end with a lower log-likelihood.
	ds := dataset.Blobs("em-ll", 300, 2, 3, 60, 3, 5)
	short, err := EM(ds, 3, 2, 1e-12, 2)
	if err != nil {
		t.Fatal(err)
	}
	long, err := EM(ds, 3, 40, 1e-12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if long.LogLik < short.LogLik-1e-6 {
		t.Fatalf("log-likelihood decreased: %v -> %v", short.LogLik, long.LogLik)
	}
}

func TestDBSCANSeparatedClusters(t *testing.T) {
	ds := separatedBlobs(4)
	res, err := DBSCAN(ds, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 3 {
		t.Fatalf("clusters = %d, want 3", res.Clusters)
	}
	if got := ari(t, ds.Labels, res.Labels); got != 1 {
		t.Fatalf("ARI = %v, want 1", got)
	}
}

func TestDBSCANNoise(t *testing.T) {
	vs := []points.Vector{{0}, {0.1}, {0.2}, {50}}
	ds := points.FromVectors("noise", vs)
	res, err := DBSCAN(ds, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[3] != -1 || res.Noise != 1 {
		t.Fatalf("isolated point not noise: %+v", res)
	}
	if res.Clusters != 1 {
		t.Fatalf("clusters = %d", res.Clusters)
	}
}

func TestDBSCANHighDimFallsBackToFlatScan(t *testing.T) {
	// dim > 6 exercises the flat-scan path; verify against the grid path
	// by embedding the same 2-D data in 8 dimensions.
	ds2 := separatedBlobs(5)
	vs8 := make([]points.Vector, ds2.N())
	for i, p := range ds2.Points {
		v := make(points.Vector, 8)
		v[0], v[1] = p.Pos[0], p.Pos[1]
		vs8[i] = v
	}
	ds8 := points.FromVectors("embedded", vs8)
	r2, err := DBSCAN(ds2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := DBSCAN(ds8, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := ari(t, r2.Labels, r8.Labels); got != 1 {
		t.Fatalf("grid and flat paths disagree: ARI %v", got)
	}
}

func TestDBSCANValidation(t *testing.T) {
	ds := separatedBlobs(1)
	if _, err := DBSCAN(ds, 0, 2); err == nil {
		t.Fatal("want error for eps=0")
	}
	if _, err := DBSCAN(ds, 1, 0); err == nil {
		t.Fatal("want error for minPts=0")
	}
}

func TestHierarchicalSeparatedClusters(t *testing.T) {
	ds := separatedBlobs(6)
	for _, link := range []Linkage{SingleLink, CompleteLink, AverageLink} {
		labels, err := Hierarchical(ds, 3, link)
		if err != nil {
			t.Fatal(err)
		}
		if got := ari(t, ds.Labels, labels); got != 1 {
			t.Fatalf("linkage %d: ARI = %v, want 1", link, got)
		}
	}
}

func TestHierarchicalChaining(t *testing.T) {
	// A dense chain bridging two blobs: single link merges across the
	// bridge (chaining), complete link resists. This is the classic
	// behavioural difference.
	var vs []points.Vector
	var labels []int
	for i := 0; i < 20; i++ {
		vs = append(vs, points.Vector{float64(i) * 0.5, 0})
		labels = append(labels, 0)
	}
	for i := 0; i < 20; i++ {
		vs = append(vs, points.Vector{float64(i)*0.5 + 30, 0})
		labels = append(labels, 1)
	}
	// Bridge points at full intra-cluster density: the two blobs become
	// one unbroken 0.5-spaced chain, so single link has no gap to cut and
	// splits arbitrarily, while complete link still prefers compact halves.
	for i := 0; i < 41; i++ {
		vs = append(vs, points.Vector{9.5 + float64(i)*0.5, 0})
		labels = append(labels, 0)
	}
	ds := points.FromVectors("bridge", vs)
	ds.Labels = labels
	single, err := Hierarchical(ds, 2, SingleLink)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := Hierarchical(ds, 2, CompleteLink)
	if err != nil {
		t.Fatal(err)
	}
	if ariS, ariC := ari(t, labels, single), ari(t, labels, complete); ariC <= ariS {
		t.Fatalf("complete link (%v) should beat single link (%v) on bridged data", ariC, ariS)
	}
}

func TestHierarchicalValidation(t *testing.T) {
	ds := separatedBlobs(1)
	if _, err := Hierarchical(ds, 0, SingleLink); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := Hierarchical(ds, ds.N()+1, SingleLink); err == nil {
		t.Fatal("want error for k>N")
	}
	labels, err := Hierarchical(ds, ds.N(), SingleLink)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != ds.N() {
		t.Fatalf("k=N gave %d clusters", len(seen))
	}
}
