// Package baselines implements the four sequential clustering algorithms
// the paper compares DP against in Figure 8 and Table III: K-means
// (centroid-based), EM for Gaussian mixtures (distribution-based), DBSCAN
// (density-based), and agglomerative hierarchical clustering
// (connectivity-based). They are reference implementations tuned for
// clarity and determinism, not raw speed — the experiment harness runs
// them on the small shaped data sets.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/points"
)

// KMeansResult is the outcome of Lloyd's algorithm.
type KMeansResult struct {
	Labels     []int
	Centers    []points.Vector
	Iterations int
	// Inertia is the summed squared distance of points to their centers.
	Inertia float64
}

// KMeans runs Lloyd's algorithm with k-means++ seeding until assignment
// convergence or maxIter. The seed fixes both the seeding and tie-breaks,
// so runs are reproducible.
func KMeans(ds *points.Dataset, k, maxIter int, seed int64) (*KMeansResult, error) {
	n := ds.N()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("baselines: k=%d out of range for %d points", k, n)
	}
	rng := points.NewRand(seed)
	centers := seedPlusPlus(ds, k, rng)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	res := &KMeansResult{}
	for it := 0; it < maxIter; it++ {
		changed := false
		res.Inertia = 0
		for i, p := range ds.Points {
			c, d2 := nearestCenter(p.Pos, centers)
			if c != labels[i] {
				labels[i] = c
				changed = true
			}
			res.Inertia += d2
		}
		res.Iterations = it + 1
		if !changed && it > 0 {
			break
		}
		centers = recenter(ds, labels, centers, rng)
	}
	res.Labels = labels
	res.Centers = centers
	return res, nil
}

// seedPlusPlus is k-means++ initialization (Arthur & Vassilvitskii).
func seedPlusPlus(ds *points.Dataset, k int, rng *points.Rand) []points.Vector {
	n := ds.N()
	centers := make([]points.Vector, 0, k)
	centers = append(centers, ds.Points[rng.Intn(n)].Pos.Clone())
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = points.SqDist(ds.Points[i].Pos, centers[0])
	}
	for len(centers) < k {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var next int
		if sum == 0 {
			next = rng.Intn(n)
		} else {
			target := rng.Float64() * sum
			acc := 0.0
			next = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		centers = append(centers, ds.Points[next].Pos.Clone())
		for i := range d2 {
			if d := points.SqDist(ds.Points[i].Pos, centers[len(centers)-1]); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func nearestCenter(p points.Vector, centers []points.Vector) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range centers {
		if d := points.SqDist(p, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// recenter computes cluster means; an emptied cluster is re-seeded at a
// random point to keep k stable.
func recenter(ds *points.Dataset, labels []int, centers []points.Vector, rng *points.Rand) []points.Vector {
	k := len(centers)
	dim := ds.Dim()
	sums := make([]points.Vector, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make(points.Vector, dim)
	}
	for i, p := range ds.Points {
		sums[labels[i]].Add(p.Pos)
		counts[labels[i]]++
	}
	out := make([]points.Vector, k)
	for c := range out {
		if counts[c] == 0 {
			out[c] = ds.Points[rng.Intn(ds.N())].Pos.Clone()
			continue
		}
		sums[c].Scale(1 / float64(counts[c]))
		out[c] = sums[c]
	}
	return out
}
