package baselines

import (
	"fmt"
	"math"

	"repro/internal/points"
)

// EMResult is the outcome of expectation-maximization for a diagonal-
// covariance Gaussian mixture.
type EMResult struct {
	Labels     []int
	Means      []points.Vector
	Variances  []points.Vector
	Weights    []float64
	LogLik     float64
	Iterations int
}

// EM fits a k-component Gaussian mixture with diagonal covariances and
// labels each point by its most probable component. Initialization comes
// from a short K-means run, the standard practice. Iteration stops when
// the log-likelihood improves by less than tol or after maxIter rounds.
func EM(ds *points.Dataset, k, maxIter int, tol float64, seed int64) (*EMResult, error) {
	n, dim := ds.N(), ds.Dim()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("baselines: k=%d out of range for %d points", k, n)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	km, err := KMeans(ds, k, 10, seed)
	if err != nil {
		return nil, err
	}
	res := &EMResult{
		Means:     km.Centers,
		Variances: make([]points.Vector, k),
		Weights:   make([]float64, k),
	}
	// Initialize variances from the K-means partition.
	counts := make([]int, k)
	for c := range res.Variances {
		res.Variances[c] = make(points.Vector, dim)
	}
	for i, p := range ds.Points {
		c := km.Labels[i]
		counts[c]++
		for j := range p.Pos {
			d := p.Pos[j] - res.Means[c][j]
			res.Variances[c][j] += d * d
		}
	}
	const varFloor = 1e-6
	for c := 0; c < k; c++ {
		res.Weights[c] = float64(max(counts[c], 1)) / float64(n)
		for j := 0; j < dim; j++ {
			res.Variances[c][j] = res.Variances[c][j]/float64(max(counts[c], 1)) + varFloor
		}
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	prevLL := math.Inf(-1)
	for it := 0; it < maxIter; it++ {
		// E step: responsibilities via log-sum-exp for stability.
		var ll float64
		for i, p := range ds.Points {
			maxLog := math.Inf(-1)
			for c := 0; c < k; c++ {
				resp[i][c] = math.Log(res.Weights[c]) + logGaussDiag(p.Pos, res.Means[c], res.Variances[c])
				if resp[i][c] > maxLog {
					maxLog = resp[i][c]
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				resp[i][c] = math.Exp(resp[i][c] - maxLog)
				sum += resp[i][c]
			}
			for c := 0; c < k; c++ {
				resp[i][c] /= sum
			}
			ll += maxLog + math.Log(sum)
		}
		res.LogLik = ll
		res.Iterations = it + 1
		if ll-prevLL < tol && it > 0 {
			break
		}
		prevLL = ll
		// M step.
		for c := 0; c < k; c++ {
			var nc float64
			mean := make(points.Vector, dim)
			for i, p := range ds.Points {
				r := resp[i][c]
				nc += r
				for j := range p.Pos {
					mean[j] += r * p.Pos[j]
				}
			}
			if nc < 1e-12 {
				continue // dead component; keep previous parameters
			}
			mean.Scale(1 / nc)
			vr := make(points.Vector, dim)
			for i, p := range ds.Points {
				r := resp[i][c]
				for j := range p.Pos {
					d := p.Pos[j] - mean[j]
					vr[j] += r * d * d
				}
			}
			for j := range vr {
				vr[j] = vr[j]/nc + varFloor
			}
			res.Means[c] = mean
			res.Variances[c] = vr
			res.Weights[c] = nc / float64(n)
		}
	}
	res.Labels = make([]int, n)
	for i := range resp {
		best, bestR := 0, -1.0
		for c := 0; c < k; c++ {
			if resp[i][c] > bestR {
				best, bestR = c, resp[i][c]
			}
		}
		res.Labels[i] = best
	}
	return res, nil
}

// logGaussDiag is the log density of a diagonal-covariance Gaussian.
func logGaussDiag(x, mean, vr points.Vector) float64 {
	var s float64
	for j := range x {
		d := x[j] - mean[j]
		s += d*d/vr[j] + math.Log(2*math.Pi*vr[j])
	}
	return -0.5 * s
}
