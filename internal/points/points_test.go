package points

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	o := Vector{4, 5, 6}
	if got := v.Dot(o); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	c := v.Clone()
	c.Add(o)
	if c[0] != 5 || c[1] != 7 || c[2] != 9 {
		t.Fatalf("Add = %v", c)
	}
	if v[0] != 1 {
		t.Fatal("Clone did not copy")
	}
	c.Scale(2)
	if c[0] != 10 || c[2] != 18 {
		t.Fatalf("Scale = %v", c)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestVectorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dimension mismatch")
		}
	}()
	(Vector{1, 2}).Dot(Vector{1, 2, 3})
}

func TestDistances(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}
	if got := Dist(a, b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := SqDist(a, b); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
	if got := Dist(a, a); got != 0 {
		t.Fatalf("Dist(a,a) = %v", got)
	}
}

// Property: Dist is a metric on random vectors — symmetric, non-negative,
// triangle inequality.
func TestDistMetricProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound magnitudes to avoid overflow-driven false failures.
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 1e6)
		}
		a := Vector{clamp(ax), clamp(ay)}
		b := Vector{clamp(bx), clamp(by)}
		c := Vector{clamp(cx), clamp(cy)}
		dab, dba := Dist(a, b), Dist(b, a)
		dac, dcb := Dist(a, c), Dist(c, b)
		return dab == dba && dab >= 0 && dab <= dac+dcb+1e-9*(1+dab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetValidate(t *testing.T) {
	ds := FromVectors("ok", []Vector{{1, 2}, {3, 4}})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Dim() != 2 {
		t.Fatalf("N=%d Dim=%d", ds.N(), ds.Dim())
	}

	bad := FromVectors("bad-id", []Vector{{1}, {2}})
	bad.Points[1].ID = 7
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for non-dense IDs")
	}

	mixed := FromVectors("bad-dim", []Vector{{1, 2}, {3}})
	if err := mixed.Validate(); err == nil {
		t.Fatal("want error for mixed dims")
	}

	lbl := FromVectors("bad-labels", []Vector{{1}, {2}})
	lbl.Labels = []int{0}
	if err := lbl.Validate(); err == nil {
		t.Fatal("want error for label count mismatch")
	}
}

func TestBounds(t *testing.T) {
	ds := FromVectors("b", []Vector{{1, 10}, {-2, 5}, {3, 7}})
	lo, hi := ds.Bounds()
	if lo[0] != -2 || lo[1] != 5 || hi[0] != 3 || hi[1] != 10 {
		t.Fatalf("Bounds = %v %v", lo, hi)
	}
	empty := &Dataset{}
	if lo, hi := empty.Bounds(); lo != nil || hi != nil {
		t.Fatal("empty Bounds should be nil")
	}
}

func TestPercentileDistanceExhaustive(t *testing.T) {
	// 4 collinear points at 0,1,2,3: pairwise distances 1,1,1,2,2,3.
	ds := FromVectors("line", []Vector{{0}, {1}, {2}, {3}})
	if got := PercentileDistance(ds, 0.5, 1000, 1); got != 1 {
		t.Fatalf("median = %v, want 1", got)
	}
	if got := PercentileDistance(ds, 1.0, 1000, 1); got != 3 {
		t.Fatalf("max = %v, want 3", got)
	}
	if got := PercentileDistance(ds, 0.01, 1000, 1); got != 1 {
		t.Fatalf("1%% = %v, want 1", got)
	}
}

func TestPercentileDistanceSampled(t *testing.T) {
	// Sampling path: many points, cap pairs below total.
	rng := NewRand(3)
	vs := make([]Vector, 500)
	for i := range vs {
		vs[i] = Vector{rng.Float64() * 100, rng.Float64() * 100}
	}
	ds := FromVectors("big", vs)
	exact := PercentileDistance(ds, 0.5, 1<<30, 1)
	sampled := PercentileDistance(ds, 0.5, 5000, 1)
	if math.Abs(exact-sampled)/exact > 0.15 {
		t.Fatalf("sampled median %v too far from exact %v", sampled, exact)
	}
	// Deterministic for a fixed seed.
	if again := PercentileDistance(ds, 0.5, 5000, 1); again != sampled {
		t.Fatalf("sampling not deterministic: %v vs %v", again, sampled)
	}
}

func TestPercentileDistanceEdge(t *testing.T) {
	if got := PercentileDistance(FromVectors("one", []Vector{{1}}), 0.5, 10, 1); got != 0 {
		t.Fatalf("single point percentile = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for q out of range")
		}
	}()
	PercentileDistance(FromVectors("two", []Vector{{1}, {2}}), 0, 10, 1)
}

func TestVectorString(t *testing.T) {
	if got := (Vector{1.5, -2}).String(); got != "(1.5,-2)" {
		t.Fatalf("String = %q", got)
	}
}
