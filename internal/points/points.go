// Package points provides the fundamental data types shared by every other
// package in this repository: points with identities, vectors, Euclidean
// metrics, compact binary codecs used as MapReduce values, and a small
// dataset container.
//
// All algorithms in the repository (exact DP, Basic-DDP, LSH-DDP, EDDPC,
// K-means, the sequential baselines) operate on these types, so keeping them
// allocation-light matters: vectors are plain []float64, codecs write into
// reusable buffers, and distance functions avoid math.Sqrt where the squared
// distance suffices.
package points

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a point position in d-dimensional Euclidean space.
type Vector []float64

// Point is an input point: a stable integer identity plus its position.
// IDs are dense in [0, N) for a Dataset produced by this repository, which
// lets result sets (ρ, δ, upslope, label arrays) be indexed by ID directly.
type Point struct {
	ID  int32
	Pos Vector
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Add accumulates o into v in place. Panics if dimensions differ.
func (v Vector) Add(o Vector) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("points: dimension mismatch %d != %d", len(v), len(o)))
	}
	for i := range v {
		v[i] += o[i]
	}
}

// Scale multiplies v by s in place.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and o.
func (v Vector) Dot(o Vector) float64 {
	if len(v) != len(o) {
		panic(fmt.Sprintf("points: dimension mismatch %d != %d", len(v), len(o)))
	}
	var s float64
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// String renders the vector with limited precision, for logs and tests.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%.4g", x)
	}
	b.WriteByte(')')
	return b.String()
}

// SqDist returns the squared Euclidean distance between a and b.
// It is the inner loop of every algorithm here; keep it branch-free.
func SqDist(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b Vector) float64 { return math.Sqrt(SqDist(a, b)) }

// Dataset is an in-memory point collection with optional ground-truth labels
// (label[i] is the true cluster of Points[i]; nil when unknown). Points are
// stored in ID order: Points[i].ID == int32(i).
type Dataset struct {
	Name   string
	Points []Point
	Labels []int // ground truth; nil if none
}

// N returns the number of points.
func (ds *Dataset) N() int { return len(ds.Points) }

// Dim returns the dimensionality (0 for an empty set).
func (ds *Dataset) Dim() int {
	if len(ds.Points) == 0 {
		return 0
	}
	return len(ds.Points[0].Pos)
}

// Validate checks the dense-ID invariant and uniform dimensionality.
func (ds *Dataset) Validate() error {
	d := ds.Dim()
	for i, p := range ds.Points {
		if p.ID != int32(i) {
			return fmt.Errorf("points: %s: point %d has ID %d, want dense IDs", ds.Name, i, p.ID)
		}
		if len(p.Pos) != d {
			return fmt.Errorf("points: %s: point %d has dim %d, want %d", ds.Name, i, len(p.Pos), d)
		}
	}
	if ds.Labels != nil && len(ds.Labels) != len(ds.Points) {
		return fmt.Errorf("points: %s: %d labels for %d points", ds.Name, len(ds.Labels), len(ds.Points))
	}
	return nil
}

// FromVectors builds a Dataset with dense IDs from raw vectors.
func FromVectors(name string, vs []Vector) *Dataset {
	ds := &Dataset{Name: name, Points: make([]Point, len(vs))}
	for i, v := range vs {
		ds.Points[i] = Point{ID: int32(i), Pos: v}
	}
	return ds
}

// Bounds returns per-dimension [min, max] over the dataset.
// Returns nils for an empty dataset.
func (ds *Dataset) Bounds() (lo, hi Vector) {
	if ds.N() == 0 {
		return nil, nil
	}
	lo = ds.Points[0].Pos.Clone()
	hi = ds.Points[0].Pos.Clone()
	for _, p := range ds.Points[1:] {
		for j, x := range p.Pos {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	return lo, hi
}

// PercentileDistance estimates the q-quantile (q in (0,1]) of the pairwise
// distance distribution by sampling up to maxPairs random pairs with the
// given deterministic seed. This is the d_c rule of thumb from the DP paper
// (1%–2% of the ascending ordered distance set); the sampled variant is what
// Basic-DDP's preprocessing MapReduce job computes.
func PercentileDistance(ds *Dataset, q float64, maxPairs int, seed int64) float64 {
	n := ds.N()
	if n < 2 {
		return 0
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("points: quantile %v out of (0,1]", q))
	}
	total := n * (n - 1) / 2
	dists := make([]float64, 0, min(total, maxPairs))
	if total <= maxPairs {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dists = append(dists, Dist(ds.Points[i].Pos, ds.Points[j].Pos))
			}
		}
	} else {
		rng := NewRand(seed)
		for len(dists) < maxPairs {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			dists = append(dists, Dist(ds.Points[i].Pos, ds.Points[j].Pos))
		}
	}
	sort.Float64s(dists)
	idx := int(q*float64(len(dists))) - 1
	if idx < 0 {
		idx = 0
	}
	return dists[idx]
}
