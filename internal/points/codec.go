package points

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codecs for the record types that flow through MapReduce jobs.
// Records use a fixed little-endian layout rather than encoding/gob: job
// values are encoded once per emit and the shuffle-byte counters should
// reflect honest data sizes, not gob's per-stream type dictionaries.

// AppendFloat64 appends the 8-byte little-endian IEEE-754 form of v to buf.
// It is the shared primitive every record codec in the repository builds
// float fields from, so round-trips are bit-exact by construction.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// EncodeFloat64 returns the 8-byte wire form of v.
func EncodeFloat64(v float64) []byte { return AppendFloat64(nil, v) }

// DecodeFloat64 reads the float64 at the front of buf (which must hold at
// least 8 bytes).
func DecodeFloat64(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}

// AppendPoint appends the wire form of p (id, dim, coordinates) to buf.
func AppendPoint(buf []byte, p Point) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Pos)))
	for _, x := range p.Pos {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// EncodePoint returns the wire form of p.
func EncodePoint(p Point) []byte { return AppendPoint(nil, p) }

// DecodePoint parses a point from the front of buf and returns the rest.
func DecodePoint(buf []byte) (Point, []byte, error) {
	if len(buf) < 8 {
		return Point{}, nil, fmt.Errorf("points: short point header: %d bytes", len(buf))
	}
	id := int32(binary.LittleEndian.Uint32(buf))
	dim := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if len(buf) < 8*dim {
		return Point{}, nil, fmt.Errorf("points: short point body: want %d floats, have %d bytes", dim, len(buf))
	}
	pos := make(Vector, dim)
	for i := 0; i < dim; i++ {
		pos[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return Point{ID: id, Pos: pos}, buf[8*dim:], nil
}

// MustDecodePoint is DecodePoint for trusted intra-job data.
func MustDecodePoint(buf []byte) Point {
	p, rest, err := DecodePoint(buf)
	if err != nil {
		panic(err)
	}
	if len(rest) != 0 {
		panic(fmt.Sprintf("points: %d trailing bytes after point", len(rest)))
	}
	return p
}

// RhoPoint is a point annotated with its (approximate) local density —
// the record shuffled into the δ jobs of every distributed algorithm here.
type RhoPoint struct {
	Point
	Rho float64
}

// AppendRhoPoint appends the wire form of rp to buf.
func AppendRhoPoint(buf []byte, rp RhoPoint) []byte {
	buf = AppendPoint(buf, rp.Point)
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(rp.Rho))
}

// EncodeRhoPoint returns the wire form of rp.
func EncodeRhoPoint(rp RhoPoint) []byte { return AppendRhoPoint(nil, rp) }

// DecodeRhoPoint parses a RhoPoint from the front of buf and returns the rest.
func DecodeRhoPoint(buf []byte) (RhoPoint, []byte, error) {
	p, rest, err := DecodePoint(buf)
	if err != nil {
		return RhoPoint{}, nil, err
	}
	if len(rest) < 8 {
		return RhoPoint{}, nil, fmt.Errorf("points: short rho tail: %d bytes", len(rest))
	}
	rho := math.Float64frombits(binary.LittleEndian.Uint64(rest))
	return RhoPoint{Point: p, Rho: rho}, rest[8:], nil
}

// MustDecodeRhoPoint is DecodeRhoPoint for trusted intra-job data.
func MustDecodeRhoPoint(buf []byte) RhoPoint {
	rp, rest, err := DecodeRhoPoint(buf)
	if err != nil {
		panic(err)
	}
	if len(rest) != 0 {
		panic(fmt.Sprintf("points: %d trailing bytes after rho point", len(rest)))
	}
	return rp
}

// RhoValue is a partial or final density result keyed by point ID.
type RhoValue struct {
	ID  int32
	Rho float64
}

// EncodeRhoValue returns the wire form of rv.
func EncodeRhoValue(rv RhoValue) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(rv.ID))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(rv.Rho))
}

// DecodeRhoValue parses a RhoValue.
func DecodeRhoValue(buf []byte) (RhoValue, error) {
	if len(buf) != 12 {
		return RhoValue{}, fmt.Errorf("points: rho value is %d bytes, want 12", len(buf))
	}
	return RhoValue{
		ID:  int32(binary.LittleEndian.Uint32(buf)),
		Rho: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
	}, nil
}

// DeltaValue is a partial or final δ result: the candidate minimum distance
// to a denser point and the identity of that upslope point (-1 when the
// point looked like the absolute density peak in its partition, in which
// case Delta is +Inf until rectified).
type DeltaValue struct {
	ID      int32
	Delta   float64
	Upslope int32
}

// EncodeDeltaValue returns the wire form of dv.
func EncodeDeltaValue(dv DeltaValue) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(dv.ID))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(dv.Delta))
	return binary.LittleEndian.AppendUint32(buf, uint32(dv.Upslope))
}

// DecodeDeltaValue parses a DeltaValue.
func DecodeDeltaValue(buf []byte) (DeltaValue, error) {
	if len(buf) != 16 {
		return DeltaValue{}, fmt.Errorf("points: delta value is %d bytes, want 16", len(buf))
	}
	return DeltaValue{
		ID:      int32(binary.LittleEndian.Uint32(buf)),
		Delta:   math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		Upslope: int32(binary.LittleEndian.Uint32(buf[12:])),
	}, nil
}
