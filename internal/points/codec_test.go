package points

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointCodecRoundTrip(t *testing.T) {
	p := Point{ID: 42, Pos: Vector{1.5, -2.25, 1e300, 0}}
	got := MustDecodePoint(EncodePoint(p))
	if got.ID != p.ID || len(got.Pos) != len(p.Pos) {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range p.Pos {
		if got.Pos[i] != p.Pos[i] {
			t.Fatalf("coordinate %d = %v, want %v", i, got.Pos[i], p.Pos[i])
		}
	}
}

// Property: every generated point round-trips exactly, including special
// float values, and leaves no residue.
func TestPointCodecRoundTripProperty(t *testing.T) {
	f := func(id int32, coords []float64) bool {
		p := Point{ID: id, Pos: Vector(coords)}
		dec, rest, err := DecodePoint(EncodePoint(p))
		if err != nil || len(rest) != 0 || dec.ID != id || len(dec.Pos) != len(coords) {
			return false
		}
		for i := range coords {
			// NaN != NaN; compare bit patterns.
			if math.Float64bits(dec.Pos[i]) != math.Float64bits(coords[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPointCodecConcatenation(t *testing.T) {
	// Multiple points appended to one buffer decode sequentially.
	var buf []byte
	want := []Point{
		{ID: 1, Pos: Vector{1}},
		{ID: 2, Pos: Vector{2, 3}},
		{ID: 3, Pos: Vector{}},
	}
	for _, p := range want {
		buf = AppendPoint(buf, p)
	}
	for _, w := range want {
		var p Point
		var err error
		p, buf, err = DecodePoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		if p.ID != w.ID || len(p.Pos) != len(w.Pos) {
			t.Fatalf("got %+v, want %+v", p, w)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d residual bytes", len(buf))
	}
}

func TestPointCodecErrors(t *testing.T) {
	if _, _, err := DecodePoint([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error on short header")
	}
	// Header claims 5 floats but body is empty.
	buf := EncodePoint(Point{ID: 1, Pos: Vector{1, 2, 3, 4, 5}})[:8]
	if _, _, err := DecodePoint(buf); err == nil {
		t.Fatal("want error on short body")
	}
}

func TestMustDecodePanicsOnTrailing(t *testing.T) {
	buf := append(EncodePoint(Point{ID: 1, Pos: Vector{1}}), 0xFF)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on trailing bytes")
		}
	}()
	MustDecodePoint(buf)
}

func TestRhoPointCodec(t *testing.T) {
	rp := RhoPoint{Point: Point{ID: 9, Pos: Vector{7, 8}}, Rho: 123.5}
	got := MustDecodeRhoPoint(EncodeRhoPoint(rp))
	if got.ID != 9 || got.Rho != 123.5 || got.Pos[1] != 8 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, _, err := DecodeRhoPoint(EncodePoint(rp.Point)); err == nil {
		t.Fatal("want error when rho tail missing")
	}
}

func TestRhoValueCodec(t *testing.T) {
	rv := RhoValue{ID: -1, Rho: math.Inf(1)}
	got, err := DecodeRhoValue(EncodeRhoValue(rv))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != -1 || !math.IsInf(got.Rho, 1) {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeRhoValue([]byte{1}); err == nil {
		t.Fatal("want error on wrong size")
	}
}

func TestDeltaValueCodec(t *testing.T) {
	cases := []DeltaValue{
		{ID: 0, Delta: 1.5, Upslope: 7},
		{ID: 1 << 20, Delta: math.Inf(1), Upslope: -1},
		{ID: 3, Delta: 0, Upslope: 0},
	}
	for _, dv := range cases {
		got, err := DecodeDeltaValue(EncodeDeltaValue(dv))
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != dv.ID || got.Upslope != dv.Upslope ||
			math.Float64bits(got.Delta) != math.Float64bits(dv.Delta) {
			t.Fatalf("round trip %+v = %+v", dv, got)
		}
	}
	if _, err := DecodeDeltaValue(make([]byte, 15)); err == nil {
		t.Fatal("want error on wrong size")
	}
}

// Property: DeltaValue codec round-trips arbitrary content.
func TestDeltaValueCodecProperty(t *testing.T) {
	f := func(id, up int32, delta float64) bool {
		dv := DeltaValue{ID: id, Delta: delta, Upslope: up}
		got, err := DecodeDeltaValue(EncodeDeltaValue(dv))
		return err == nil && got.ID == id && got.Upslope == up &&
			math.Float64bits(got.Delta) == math.Float64bits(delta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
