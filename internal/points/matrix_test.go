package points

import (
	"math"
	"testing"
)

func testPoints(n, dim int, seed int64) []Point {
	rng := NewRand(seed)
	pts := make([]Point, n)
	for i := range pts {
		pos := make(Vector, dim)
		for j := range pos {
			pos[j] = rng.NormFloat64() * 10
		}
		pts[i] = Point{ID: int32(i * 3), Pos: pos}
	}
	return pts
}

func TestDecodePointsInto(t *testing.T) {
	for _, dim := range []int{1, 2, 5, 8} {
		pts := testPoints(17, dim, int64(dim))
		values := make([][]byte, len(pts))
		for i, p := range pts {
			values[i] = EncodePoint(p)
		}
		m := GetMatrix()
		if err := DecodePointsInto(m, values); err != nil {
			t.Fatal(err)
		}
		if m.N() != len(pts) || m.Dim() != dim {
			t.Fatalf("decoded %dx%d, want %dx%d", m.N(), m.Dim(), len(pts), dim)
		}
		for i, p := range pts {
			if m.ID(i) != p.ID {
				t.Fatalf("row %d id %d, want %d", i, m.ID(i), p.ID)
			}
			for j, x := range p.Pos {
				if m.Row(i)[j] != x {
					t.Fatalf("row %d[%d] = %v, want %v", i, j, m.Row(i)[j], x)
				}
			}
		}
		if len(m.Rhos()) != 0 {
			t.Fatalf("point batch grew a rho column")
		}
		PutMatrix(m)
	}
}

func TestDecodeRhoPointsInto(t *testing.T) {
	pts := testPoints(23, 3, 7)
	values := make([][]byte, len(pts))
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = float64(i) * 1.25
		values[i] = EncodeRhoPoint(RhoPoint{Point: p, Rho: want[i]})
	}
	var m Matrix
	if err := DecodeRhoPointsInto(&m, values); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if m.Rho(i) != want[i] {
			t.Fatalf("rho[%d] = %v, want %v", i, m.Rho(i), want[i])
		}
	}
	// Reuse: decoding a second, smaller batch must not leak the first.
	if err := DecodeRhoPointsInto(&m, values[:5]); err != nil {
		t.Fatal(err)
	}
	if m.N() != 5 || len(m.Rhos()) != 5 || len(m.IDs()) != 5 {
		t.Fatalf("reused matrix kept stale rows: n=%d rho=%d ids=%d", m.N(), len(m.Rhos()), len(m.IDs()))
	}
}

func TestMatrixRejectsMixedDims(t *testing.T) {
	var m Matrix
	values := [][]byte{
		EncodePoint(Point{ID: 0, Pos: Vector{1, 2}}),
		EncodePoint(Point{ID: 1, Pos: Vector{1, 2, 3}}),
	}
	if err := DecodePointsInto(&m, values); err == nil {
		t.Fatal("mixed dimensionality accepted")
	}
}

func TestMatrixRejectsTruncated(t *testing.T) {
	var m Matrix
	enc := EncodePoint(Point{ID: 0, Pos: Vector{1, 2, 3}})
	for _, cut := range []int{1, 7, 9, len(enc) - 1} {
		if err := DecodePointsInto(&m, [][]byte{enc[:cut]}); err == nil {
			t.Fatalf("truncated record (%d bytes) accepted", cut)
		}
	}
	if err := DecodeRhoPointsInto(&m, [][]byte{enc}); err == nil {
		t.Fatal("point record accepted as rho point")
	}
}

func TestMatrixDecodeMatchesScalarDecode(t *testing.T) {
	// The batch decoder must agree bit-for-bit with the scalar codec,
	// including non-finite values.
	p := Point{ID: 42, Pos: Vector{math.Inf(1), math.NaN(), -0.0}}
	rp := RhoPoint{Point: p, Rho: math.Inf(1)}
	var m Matrix
	if err := DecodeRhoPointsInto(&m, [][]byte{EncodeRhoPoint(rp)}); err != nil {
		t.Fatal(err)
	}
	ref := MustDecodeRhoPoint(EncodeRhoPoint(rp))
	for j := range ref.Pos {
		if math.Float64bits(m.Row(0)[j]) != math.Float64bits(ref.Pos[j]) {
			t.Fatalf("coord %d: %x vs %x", j, math.Float64bits(m.Row(0)[j]), math.Float64bits(ref.Pos[j]))
		}
	}
	if math.Float64bits(m.Rho(0)) != math.Float64bits(ref.Rho) {
		t.Fatal("rho bits differ")
	}
}

func BenchmarkDecodeGroup(b *testing.B) {
	// Reducer-group decode: per-record scalar decode (one Vector allocation
	// per value) vs. batch decode into a reused Matrix.
	pts := testPoints(512, 2, 1)
	values := make([][]byte, len(pts))
	for i, p := range pts {
		values[i] = EncodeRhoPoint(RhoPoint{Point: p, Rho: float64(i)})
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pts := make([]RhoPoint, 0, len(values))
			for _, v := range values {
				rp, _, err := DecodeRhoPoint(v)
				if err != nil {
					b.Fatal(err)
				}
				pts = append(pts, rp)
			}
			_ = pts
		}
	})
	b.Run("matrix", func(b *testing.B) {
		b.ReportAllocs()
		var m Matrix
		for i := 0; i < b.N; i++ {
			if err := DecodeRhoPointsInto(&m, values); err != nil {
				b.Fatal(err)
			}
		}
	})
}
