package points

import (
	"math"
	"math/rand"
	"testing"
)

func TestToFloat32(t *testing.T) {
	src := []float64{1.5, -3.25, 1e300, -1e308, 0, 1e-300}
	dst, maxAbs := ToFloat32(src)
	if maxAbs != 1e308 {
		t.Fatalf("maxAbs = %v, want 1e308", maxAbs)
	}
	if dst[0] != 1.5 || dst[1] != -3.25 {
		t.Fatalf("exact values changed: %v", dst[:2])
	}
	if !math.IsInf(float64(dst[2]), 1) || !math.IsInf(float64(dst[3]), -1) {
		t.Fatalf("overflow should convert to ±Inf, got %v %v", dst[2], dst[3])
	}
	if dst[5] != 0 {
		t.Fatalf("underflow should convert to 0, got %v", dst[5])
	}
}

func TestMatrix32Mirror(t *testing.T) {
	var m Matrix
	buf := encodePointRecord(t, 7, []float64{1, 2, 3})
	if _, err := m.AppendPoint(buf); err != nil {
		t.Fatal(err)
	}
	buf = encodePointRecord(t, 8, []float64{-4, 5, -6})
	if _, err := m.AppendPoint(buf); err != nil {
		t.Fatal(err)
	}
	c := GetMatrix32(&m)
	defer PutMatrix32(c)
	if c.N() != 2 || c.Dim() != 3 {
		t.Fatalf("mirror shape %dx%d, want 2x3", c.N(), c.Dim())
	}
	if c.MaxAbs() != 6 {
		t.Fatalf("MaxAbs = %v, want 6", c.MaxAbs())
	}
	want := []float32{1, 2, 3, -4, 5, -6}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("Data()[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func encodePointRecord(t *testing.T, id int32, pos []float64) []byte {
	t.Helper()
	var buf []byte
	buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	dim := uint32(len(pos))
	buf = append(buf, byte(dim), byte(dim>>8), byte(dim>>16), byte(dim>>24))
	for _, v := range pos {
		buf = AppendFloat64(buf, v)
	}
	return buf
}

func TestQuantizeQ8Residual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 2, 5, 8} {
		n := 200
		data := make([]float64, n*dim)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		codes, p, ok := QuantizeQ8(data, dim)
		if !ok {
			t.Fatalf("dim %d: quantize failed", dim)
		}
		if !p.Valid(dim) {
			t.Fatalf("dim %d: params invalid", dim)
		}
		for i := 0; i < len(data); i += dim {
			for d := 0; d < dim; d++ {
				got := p.Dequant(d, codes[i+d])
				// Half-step residual bound, with a little float64 slack.
				lim := p.Scale[d]/2*(1+1e-9) + 1e-300
				if diff := math.Abs(got - data[i+d]); diff > lim {
					t.Fatalf("dim %d row %d coord %d: residual %g > %g", dim, i/dim, d, diff, lim)
				}
			}
		}
		// ErrBound is 2x the worst-case Euclidean displacement.
		var worst float64
		for i := 0; i < len(data); i += dim {
			var s float64
			for d := 0; d < dim; d++ {
				r := p.Dequant(d, codes[i+d]) - data[i+d]
				s += r * r
			}
			if s > worst {
				worst = s
			}
		}
		if math.Sqrt(worst) > p.ErrBound()/2*(1+1e-9) {
			t.Fatalf("dim %d: displacement %g exceeds ErrBound/2 = %g", dim, math.Sqrt(worst), p.ErrBound()/2)
		}
	}
}

func TestQuantizeQ8ZeroSpread(t *testing.T) {
	data := []float64{3, -1, 3, -1, 3, -1} // every row identical
	codes, p, ok := QuantizeQ8(data, 2)
	if !ok {
		t.Fatal("quantize failed on constant data")
	}
	for i, c := range codes {
		if c != 0 {
			t.Fatalf("code[%d] = %d, want 0 for zero-spread dims", i, c)
		}
	}
	if p.Scale[0] != 0 || p.Scale[1] != 0 {
		t.Fatalf("scales %v, want zeros", p.Scale)
	}
	if p.Dequant(0, 0) != 3 || p.Dequant(1, 0) != -1 {
		t.Fatalf("dequant of constant data wrong: %v %v", p.Dequant(0, 0), p.Dequant(1, 0))
	}
	if p.ErrBound() != 0 {
		t.Fatalf("ErrBound = %v, want 0", p.ErrBound())
	}
}

func TestQuantizeQ8Rejects(t *testing.T) {
	if _, _, ok := QuantizeQ8([]float64{1, math.NaN()}, 2); ok {
		t.Fatal("accepted NaN")
	}
	if _, _, ok := QuantizeQ8([]float64{1, math.Inf(1)}, 2); ok {
		t.Fatal("accepted +Inf")
	}
	// Spread too large for a finite scale.
	if _, _, ok := QuantizeQ8([]float64{-math.MaxFloat64, math.MaxFloat64}, 1); ok {
		t.Fatal("accepted overflowing spread")
	}
	if _, _, ok := QuantizeQ8([]float64{1, 2, 3}, 2); ok {
		t.Fatal("accepted ragged block")
	}
	// Empty block quantizes fine (serving an empty model is rejected
	// elsewhere).
	if _, p, ok := QuantizeQ8(nil, 3); !ok || !p.Valid(3) {
		t.Fatal("rejected empty block")
	}
}

func TestQ8ParamsValid(t *testing.T) {
	good := Q8Params{Min: []float64{0, 0}, Scale: []float64{1, 0}}
	if !good.Valid(2) {
		t.Fatal("good params rejected")
	}
	if good.Valid(3) {
		t.Fatal("dim mismatch accepted")
	}
	bad := Q8Params{Min: []float64{0, math.NaN()}, Scale: []float64{1, 1}}
	if bad.Valid(2) {
		t.Fatal("NaN min accepted")
	}
	neg := Q8Params{Min: []float64{0, 0}, Scale: []float64{1, -1}}
	if neg.Valid(2) {
		t.Fatal("negative scale accepted")
	}
}
