package points

import (
	"math"
	"sync"
)

// Compact coordinate representations for the bandwidth-lean scan path.
//
// A Matrix32 mirrors a float64 SoA block in float32, and QuantizeQ8 reduces
// it further to one byte per coordinate with a per-dimension affine code.
// Both are derived representations: the float64 block stays the source of
// truth, and every kernel that scans a compact block re-ranks its shortlist
// against the float64 data (see internal/kernels), so the compression here
// only has to be cheap and bounded, never exact. Alongside the converted
// coordinates each conversion reports the largest absolute source
// coordinate, which the kernels need to build sound error bounds.

// Matrix32 is a float32 mirror of a coordinate block: n rows of dim floats,
// row-major, plus the largest absolute float64 source coordinate (MaxAbs)
// seen during conversion. Coordinates outside float32 range convert to ±Inf;
// the compact kernels route any non-finite arithmetic to the exact float64
// path, so an overflowing mirror is slow but never wrong.
type Matrix32 struct {
	dim    int
	n      int
	data   []float32
	maxAbs float64
}

// N returns the number of rows.
func (c *Matrix32) N() int { return c.n }

// Dim returns the row dimensionality.
func (c *Matrix32) Dim() int { return c.dim }

// Data exposes the flat float32 storage (len N()*Dim()).
func (c *Matrix32) Data() []float32 { return c.data[:c.n*c.dim] }

// MaxAbs returns the largest |coordinate| of the float64 source block.
func (c *Matrix32) MaxAbs() float64 { return c.maxAbs }

// SetFlat fills the mirror from a flat float64 block of n rows of dim.
func (c *Matrix32) SetFlat(data []float64, dim int) {
	n := 0
	if dim > 0 {
		n = len(data) / dim
	}
	c.dim, c.n = dim, n
	if cap(c.data) < len(data) {
		c.data = make([]float32, len(data))
	}
	c.data = c.data[:len(data)]
	c.maxAbs = downTo32(c.data, data)
}

// Set fills the mirror from m's coordinate block.
func (c *Matrix32) Set(m *Matrix) { c.SetFlat(m.Data(), m.Dim()) }

// downTo32 converts src into dst (same length) and returns the largest
// absolute source value. NaNs contribute nothing to the maximum.
func downTo32(dst []float32, src []float64) float64 {
	var maxAbs float64
	for i, v := range src {
		dst[i] = float32(v)
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs
}

// ToFloat32 converts a flat float64 block, returning the float32 copy and
// the largest absolute source value.
func ToFloat32(src []float64) ([]float32, float64) {
	dst := make([]float32, len(src))
	maxAbs := downTo32(dst, src)
	return dst, maxAbs
}

// matrix32Pool recycles Matrix32 backing arrays across reducer groups, like
// matrixPool does for the float64 decode path.
var matrix32Pool = sync.Pool{New: func() any { return new(Matrix32) }}

// GetMatrix32 returns a pooled Matrix32 filled from m.
func GetMatrix32(m *Matrix) *Matrix32 {
	c := matrix32Pool.Get().(*Matrix32)
	c.Set(m)
	return c
}

// PutMatrix32 returns c to the pool. The caller must not retain c or any
// slice obtained from it.
func PutMatrix32(c *Matrix32) { matrix32Pool.Put(c) }

// Q8Params is the per-dimension affine code of an 8-bit quantized block:
// coordinate x of dimension d encodes as round((x − Min[d]) / Scale[d]),
// clamped to [0, 255], and decodes as Min[d] + Scale[d]·code. A dimension
// with zero spread has Scale 0 and every code 0.
type Q8Params struct {
	Min   []float64
	Scale []float64
}

// Dim returns the dimensionality of the code.
func (p Q8Params) Dim() int { return len(p.Min) }

// Valid reports whether the parameters describe a usable dim-dimensional
// code: matching lengths and finite values with non-negative scales.
func (p Q8Params) Valid(dim int) bool {
	if len(p.Min) != dim || len(p.Scale) != dim {
		return false
	}
	for d := 0; d < dim; d++ {
		if !isFinite(p.Min[d]) || !isFinite(p.Scale[d]) || p.Scale[d] < 0 {
			return false
		}
	}
	return true
}

// Dequant decodes one coordinate.
func (p Q8Params) Dequant(d int, code uint8) float64 {
	return p.Min[d] + p.Scale[d]*float64(code)
}

// ErrBound returns a Euclidean-distance error bound for the code: the
// rounding residual per dimension is at most Scale[d]/2, so the distance
// between a point and its dequantized form is at most
// sqrt(Σ (Scale[d]/2)²) = ErrBound()/2. Returning the doubled value gives
// the kernels' threshold math a built-in 2x safety margin.
func (p Q8Params) ErrBound() float64 {
	var s float64
	for _, sc := range p.Scale {
		s += sc * sc
	}
	return math.Sqrt(s)
}

// QuantizeQ8 builds the 8-bit code of a flat float64 block (rows of dim).
// ok is false when the block cannot be quantized — any non-finite
// coordinate, or a per-dimension spread too large for a finite scale.
func QuantizeQ8(data []float64, dim int) (codes []uint8, p Q8Params, ok bool) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, Q8Params{}, false
	}
	mins := make([]float64, dim)
	maxs := make([]float64, dim)
	for d := 0; d < dim; d++ {
		mins[d], maxs[d] = math.Inf(1), math.Inf(-1)
	}
	for i := 0; i < len(data); i += dim {
		for d := 0; d < dim; d++ {
			v := data[i+d]
			if !isFinite(v) {
				return nil, Q8Params{}, false
			}
			if v < mins[d] {
				mins[d] = v
			}
			if v > maxs[d] {
				maxs[d] = v
			}
		}
	}
	scales := make([]float64, dim)
	if len(data) > 0 {
		for d := 0; d < dim; d++ {
			sc := (maxs[d] - mins[d]) / 255
			if !isFinite(sc) {
				return nil, Q8Params{}, false
			}
			scales[d] = sc
		}
	} else {
		for d := 0; d < dim; d++ {
			mins[d] = 0
		}
	}
	codes = make([]uint8, len(data))
	for i := 0; i < len(data); i += dim {
		for d := 0; d < dim; d++ {
			if scales[d] == 0 {
				continue // codes[i+d] stays 0, dequantizes to Min[d]
			}
			c := math.Round((data[i+d] - mins[d]) / scales[d])
			if c < 0 {
				c = 0
			} else if c > 255 {
				c = 255
			}
			codes[i+d] = uint8(c)
		}
	}
	return codes, Q8Params{Min: mins, Scale: scales}, true
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
