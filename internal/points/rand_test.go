package points

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(1)
	counts := make([]int, 10)
	for i := 0; i < 100_000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(10) bucket %d has %d/100000 draws", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(2)
	var sum float64
	for i := 0; i < 100_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / 100_000; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(3)
	n := 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := NewRand(4)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
	// A fresh generator with the same seed reproduces it.
	q := NewRand(4).Perm(100)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("Perm not deterministic")
		}
	}
}

func TestShuffle(t *testing.T) {
	r := NewRand(5)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
	same := true
	for i := range xs {
		if xs[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Fatal("shuffle left slice untouched (vanishingly unlikely)")
	}
}
