package points

import "math"

// Rand is a small deterministic pseudo-random generator (splitmix64 core)
// used everywhere the repository needs reproducible randomness: dataset
// generation, LSH function draws, sampling jobs, K-means initialization.
//
// math/rand would work, but its stream is not guaranteed stable across Go
// releases for all helpers; tests here assert exact values, so we own the
// generator. It is NOT for cryptographic use.
type Rand struct {
	state uint64
	// cached second value from the Box–Muller pair
	gauss    float64
	hasGauss bool
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed int64) *Rand {
	r := &Rand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
	// Warm up so nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("points: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via Box–Muller.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
