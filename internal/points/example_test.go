package points_test

import (
	"fmt"

	"repro/internal/points"
)

// The binary codec is what MapReduce jobs shuffle.
func ExampleEncodePoint() {
	p := points.Point{ID: 7, Pos: points.Vector{1.5, -2.0}}
	buf := points.EncodePoint(p)
	back := points.MustDecodePoint(buf)
	fmt.Printf("%d bytes on the wire; id=%d pos=%v\n", len(buf), back.ID, back.Pos)
	// Output:
	// 24 bytes on the wire; id=7 pos=(1.5,-2)
}

// d_c via the DP paper's percentile rule of thumb.
func ExamplePercentileDistance() {
	ds := points.FromVectors("line", []points.Vector{{0}, {1}, {2}, {3}})
	fmt.Println("median pair distance:", points.PercentileDistance(ds, 0.5, 1000, 1))
	// Output:
	// median pair distance: 1
}
