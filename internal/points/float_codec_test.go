package points

import (
	"math"
	"testing"
	"testing/quick"
)

// The float64 primitives are shared by every fixed-width record codec in
// the tree (core, eddpc, kmeansmr, experiments, model); they must preserve
// bit patterns exactly, NaN and infinities included.
func TestFloat64CodecRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		return math.Float64bits(DecodeFloat64(EncodeFloat64(v))) == math.Float64bits(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64} {
		if math.Float64bits(DecodeFloat64(EncodeFloat64(v))) != math.Float64bits(v) {
			t.Fatalf("%v did not round-trip", v)
		}
	}
}

func TestAppendFloat64(t *testing.T) {
	buf := AppendFloat64([]byte{0xAA}, 1.5)
	if len(buf) != 9 || buf[0] != 0xAA {
		t.Fatalf("AppendFloat64 produced % x", buf)
	}
	if got := DecodeFloat64(buf[1:]); got != 1.5 {
		t.Fatalf("decoded %v, want 1.5", got)
	}
}
