package points

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Matrix is a structure-of-arrays point batch: all coordinates live in one
// contiguous []float64 (row-major, n rows of Dim), with parallel ID and —
// for RhoPoint batches — density arrays. Reducers decode a whole group into
// one Matrix instead of materializing one Vector per record, which turns
// len(values) small heap allocations into at most three slice grows (zero
// in steady state when the Matrix is pooled), and gives the pairwise
// kernels in internal/kernels a cache-friendly flat layout to tile over.
type Matrix struct {
	dim  int
	n    int
	data []float64 // len n*dim, row-major
	ids  []int32   // len n
	rho  []float64 // len n when decoded from RhoPoints, else len 0
}

// N returns the number of rows.
func (m *Matrix) N() int { return m.n }

// Dim returns the row dimensionality (0 while empty).
func (m *Matrix) Dim() int { return m.dim }

// Data exposes the flat coordinate storage (len N()*Dim()).
func (m *Matrix) Data() []float64 { return m.data[:m.n*m.dim] }

// Row returns row i as a Vector aliasing the flat storage. The slice is
// invalidated by the next Append*.
func (m *Matrix) Row(i int) Vector { return m.data[i*m.dim : (i+1)*m.dim] }

// ID returns the point ID of row i.
func (m *Matrix) ID(i int) int32 { return m.ids[i] }

// IDs exposes the ID column (len N()).
func (m *Matrix) IDs() []int32 { return m.ids[:m.n] }

// Rho returns the density of row i. Only valid for RhoPoint batches.
func (m *Matrix) Rho(i int) float64 { return m.rho[i] }

// Rhos exposes the density column (len N() for RhoPoint batches, else 0).
func (m *Matrix) Rhos() []float64 { return m.rho }

// Reset empties the matrix, keeping the backing arrays for reuse.
func (m *Matrix) Reset() {
	m.dim, m.n = 0, 0
	m.data = m.data[:0]
	m.ids = m.ids[:0]
	m.rho = m.rho[:0]
}

// grow makes room for one more row of dim floats, establishing dim on the
// first append and rejecting mixed dimensionality afterwards.
func (m *Matrix) grow(dim int) error {
	if m.n == 0 {
		m.dim = dim
	} else if dim != m.dim {
		return fmt.Errorf("points: matrix row dim %d, want %d", dim, m.dim)
	}
	return nil
}

// AppendPoint decodes one point record from the front of buf into a new
// row and returns the unconsumed rest.
func (m *Matrix) AppendPoint(buf []byte) ([]byte, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("points: short point header: %d bytes", len(buf))
	}
	id := int32(binary.LittleEndian.Uint32(buf))
	dim := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if len(buf) < 8*dim {
		return nil, fmt.Errorf("points: short point body: want %d floats, have %d bytes", dim, len(buf))
	}
	if err := m.grow(dim); err != nil {
		return nil, err
	}
	off := len(m.data)
	m.data = append(m.data, make([]float64, dim)...)
	row := m.data[off:]
	for i := 0; i < dim; i++ {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	m.ids = append(m.ids, id)
	m.n++
	return buf[8*dim:], nil
}

// AppendRhoPoint decodes one RhoPoint record from the front of buf into a
// new row (position, ID, and density) and returns the unconsumed rest.
func (m *Matrix) AppendRhoPoint(buf []byte) ([]byte, error) {
	rest, err := m.AppendPoint(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, fmt.Errorf("points: short rho tail: %d bytes", len(rest))
	}
	m.rho = append(m.rho, math.Float64frombits(binary.LittleEndian.Uint64(rest)))
	return rest[8:], nil
}

// DecodePointsInto batch-decodes one point record per value into m,
// replacing its contents. Each value must hold exactly one point.
func DecodePointsInto(m *Matrix, values [][]byte) error {
	m.Reset()
	for _, v := range values {
		rest, err := m.AppendPoint(v)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("points: %d trailing bytes after point", len(rest))
		}
	}
	return nil
}

// DecodeRhoPointsInto batch-decodes one RhoPoint record per value into m,
// replacing its contents. Each value must hold exactly one RhoPoint.
func DecodeRhoPointsInto(m *Matrix, values [][]byte) error {
	m.Reset()
	for _, v := range values {
		rest, err := m.AppendRhoPoint(v)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("points: %d trailing bytes after rho point", len(rest))
		}
	}
	return nil
}

// matrixPool recycles Matrix backing arrays across reducer groups; the
// pairwise jobs decode thousands of groups per run and would otherwise
// re-grow the flat arrays for every one.
var matrixPool = sync.Pool{New: func() any { return new(Matrix) }}

// GetMatrix returns an empty Matrix from the pool.
func GetMatrix() *Matrix {
	m := matrixPool.Get().(*Matrix)
	m.Reset()
	return m
}

// PutMatrix returns m to the pool. The caller must not retain m or any
// slice obtained from it.
func PutMatrix(m *Matrix) { matrixPool.Put(m) }
