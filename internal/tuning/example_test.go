package tuning_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/tuning"
)

// Asking the Section V cost model for an (M, π, w) recommendation.
func ExampleModel_Recommend() {
	ds := dataset.BigCross(2000, 7)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	model := &tuning.Model{N: ds.N(), Dim: ds.Dim(), Dc: dc, Seed: 1}
	costs, err := model.Recommend(ds, 0.99, []int{5, 10, 20}, []int{3, 6})
	if err != nil {
		panic(err)
	}
	best := costs[0]
	fmt.Printf("recommended M=%d pi=%d (accuracy %.2f, %d candidates ranked)\n",
		best.M, best.Pi, best.Accuracy, len(costs))
	// Output:
	// recommended M=5 pi=3 (accuracy 0.99, 6 candidates ranked)
}
