// Package tuning implements the parameter-selection machinery of Section V:
// the shuffle-cost and computation-cost models (Eq. 6–8), the unified
// time-cost objective (Eq. 9), and a recommender that, given a required
// expected accuracy A, searches candidate (M, π) pairs, solves the minimal
// width w for each (Eq. 5), estimates the partition-size term Σ N_k² from
// a sample, and returns the cheapest feasible configuration.
//
// The paper's recommended operating ranges — M ∈ [10, 20], π ∈ [3, 10] —
// fall out of this model empirically (Figure 12); the recommender defaults
// to searching a superset of that grid.
package tuning

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

// Cost is the modeled cost of one LSH-DDP configuration.
type Cost struct {
	M, Pi int
	W     float64
	// SumSq is the estimated Σ_k N_k² over the partitions of one layout.
	SumSq float64
	// ShuffleBytes is E[C_s] of Eq. 7: M·(|S| + Σ N_k²·e).
	ShuffleBytes float64
	// Distances is E[C_c] of Eq. 8: M·Σ N_k².
	Distances float64
	// Time is the unified objective of Eq. 9: μ·ShuffleBytes + Distances.
	Time float64
	// Accuracy is the modeled expected accuracy at (w, π, M).
	Accuracy float64
}

// Model evaluates the Section V cost model for a configuration.
type Model struct {
	// N is the data set size; Dim its dimensionality.
	N, Dim int
	// Dc is the cutoff distance (fixes the accuracy term).
	Dc float64
	// EntryBytes is e of Eq. 6, the bytes per shuffled distance-matrix
	// entry (default 8).
	EntryBytes float64
	// Mu is μ of Eq. 9, the time ratio of shuffling one byte to computing
	// one distance (default 0.3, from calibrating the local engine).
	Mu float64
	// SampleSize bounds the sample used to estimate Σ N_k² (default 2000).
	SampleSize int
	// Seed drives sampling and the probe layout draw.
	Seed int64
}

func (m *Model) entryBytes() float64 {
	if m.EntryBytes > 0 {
		return m.EntryBytes
	}
	return 8
}

func (m *Model) mu() float64 {
	if m.Mu > 0 {
		return m.Mu
	}
	return 0.3
}

func (m *Model) sampleSize() int {
	if m.SampleSize > 0 {
		return m.SampleSize
	}
	return 2000
}

// pointBytes is the wire size of one point record.
func (m *Model) pointBytes() float64 { return float64(8 + 8*m.Dim) }

// Evaluate models a configuration against a sample of the data set.
// The Σ N_k² term is measured on a sample hashed by one probe layout and
// scaled quadratically per partition (each partition's share of the sample
// scales linearly with N, so its square scales quadratically).
func (m *Model) Evaluate(ds *points.Dataset, mLayouts, pi int, w float64) (Cost, error) {
	if ds.N() == 0 {
		return Cost{}, fmt.Errorf("tuning: empty data set")
	}
	if mLayouts <= 0 || pi <= 0 || w <= 0 {
		return Cost{}, fmt.Errorf("tuning: bad configuration m=%d pi=%d w=%v", mLayouts, pi, w)
	}
	sample := samplePoints(ds, m.sampleSize(), m.Seed)
	group := lsh.NewGroup(ds.Dim(), pi, w, points.NewRand(m.Seed+424243))
	counts := make(map[string]int)
	for _, p := range sample {
		counts[group.Key(p.Pos)]++
	}
	scale := float64(m.N) / float64(len(sample))
	var sumSq float64
	for _, c := range counts {
		nk := float64(c) * scale
		sumSq += nk * nk
	}
	cost := Cost{
		M: mLayouts, Pi: pi, W: w,
		SumSq:    sumSq,
		Accuracy: lsh.ExpectedAccuracy(w, m.Dc, pi, mLayouts),
	}
	cost.ShuffleBytes = float64(mLayouts) * (float64(m.N)*m.pointBytes() + sumSq*m.entryBytes())
	cost.Distances = float64(mLayouts) * sumSq
	cost.Time = m.mu()*cost.ShuffleBytes + cost.Distances
	return cost, nil
}

// Recommend searches the candidate grid (defaults to M ∈ {2,5,10,20,30},
// π ∈ {1..12}) for the configuration with the smallest modeled time cost
// whose solved width meets accuracy A. Results are returned sorted by
// modeled time, cheapest first; the first entry is the recommendation.
func (m *Model) Recommend(ds *points.Dataset, accuracy float64, ms, pis []int) ([]Cost, error) {
	if len(ms) == 0 {
		ms = []int{2, 5, 10, 20, 30}
	}
	if len(pis) == 0 {
		pis = []int{1, 2, 3, 4, 5, 6, 8, 10, 12}
	}
	var out []Cost
	for _, M := range ms {
		for _, pi := range pis {
			w, err := lsh.SolveWidth(accuracy, m.Dc, pi, M)
			if err != nil {
				continue // infeasible combination
			}
			c, err := m.Evaluate(ds, M, pi, w)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tuning: no feasible configuration for accuracy %v", accuracy)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].M != out[j].M {
			return out[i].M < out[j].M
		}
		return out[i].Pi < out[j].Pi
	})
	return out, nil
}

// samplePoints draws up to k points without replacement.
func samplePoints(ds *points.Dataset, k int, seed int64) []points.Point {
	if ds.N() <= k {
		return ds.Points
	}
	rng := points.NewRand(seed + 99991)
	perm := rng.Perm(ds.N())
	out := make([]points.Point, k)
	for i := 0; i < k; i++ {
		out[i] = ds.Points[perm[i]]
	}
	return out
}

// BalanceStats summarizes partition-size skew for one (π, w) probe — used
// by the Figure 12 discussion (small M with large π skews the workload).
type BalanceStats struct {
	Partitions int
	MaxShare   float64 // largest partition's fraction of points
	CV         float64 // coefficient of variation of partition sizes
}

// Balance measures partition balance of one probe layout on a sample.
func (m *Model) Balance(ds *points.Dataset, pi int, w float64) (BalanceStats, error) {
	if pi <= 0 || w <= 0 {
		return BalanceStats{}, fmt.Errorf("tuning: bad probe pi=%d w=%v", pi, w)
	}
	sample := samplePoints(ds, m.sampleSize(), m.Seed)
	group := lsh.NewGroup(ds.Dim(), pi, w, points.NewRand(m.Seed+848485))
	counts := make(map[string]int)
	for _, p := range sample {
		counts[group.Key(p.Pos)]++
	}
	st := BalanceStats{Partitions: len(counts)}
	n := float64(len(sample))
	mean := n / float64(len(counts))
	var varsum float64
	for _, c := range counts {
		share := float64(c) / n
		if share > st.MaxShare {
			st.MaxShare = share
		}
		d := float64(c) - mean
		varsum += d * d
	}
	st.CV = math.Sqrt(varsum/float64(len(counts))) / mean
	return st, nil
}

// CalibrateMu measures μ — Eq. 9's ratio of per-byte shuffle time to
// per-distance computation time — on this machine, instead of relying on
// the default constant. It times a pure distance loop and a pure
// shuffle-only MapReduce job of known volume and returns their unit-cost
// ratio, clamped to a sane range.
func CalibrateMu(dim int, seed int64) float64 {
	if dim <= 0 {
		dim = 57
	}
	rng := points.NewRand(seed + 1234577)
	a := make(points.Vector, dim)
	b := make(points.Vector, dim)
	for i := 0; i < dim; i++ {
		a[i], b[i] = rng.Float64(), rng.Float64()
	}

	// Distance unit cost.
	const distIters = 2_000_000
	start := nowNanos()
	var sink float64
	for i := 0; i < distIters; i++ {
		sink += points.SqDist(a, b)
	}
	distNs := float64(nowNanos()-start) / distIters
	_ = sink

	// Shuffle unit cost: a pass-through job moving a known byte volume.
	payload := make([]byte, 1024)
	input := make([]mapreduce.Pair, 2048)
	for i := range input {
		input[i] = mapreduce.Pair{Key: "k", Value: payload}
	}
	job := &mapreduce.Job{
		Name: "calibrate-shuffle",
		Map: func(_ *mapreduce.TaskContext, key string, value []byte, out mapreduce.Emitter) error {
			out.Emit(key, value)
			return nil
		},
		Reduce: func(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			out.Emit(key, []byte{byte(len(values))})
			return nil
		},
	}
	eng := &mapreduce.LocalEngine{Parallelism: 1}
	start = nowNanos()
	res, err := eng.Run(context.Background(), job, input)
	if err != nil {
		return 0.3 // fall back to the default on any failure
	}
	bytes := res.Counters.Get(mapreduce.CtrShuffleBytes)
	if bytes == 0 || distNs == 0 {
		return 0.3
	}
	shuffleNsPerByte := float64(nowNanos()-start) / float64(bytes)

	mu := shuffleNsPerByte / distNs
	if mu < 0.001 {
		mu = 0.001
	}
	if mu > 100 {
		mu = 100
	}
	return mu
}

// nowNanos isolates the clock for testability.
func nowNanos() int64 { return time.Now().UnixNano() }
