package tuning

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
)

func testModel(t *testing.T) (*Model, *dataset.DS) {
	t.Helper()
	ds := dataset.BigCross(3000, 7)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	return &Model{N: ds.N(), Dim: ds.Dim(), Dc: dc, Seed: 1, SampleSize: 1500}, ds
}

func TestEvaluateBasics(t *testing.T) {
	m, ds := testModel(t)
	w, err := lsh.SolveWidth(0.99, m.Dc, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Evaluate(ds, 10, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	if c.SumSq <= 0 || c.ShuffleBytes <= 0 || c.Distances <= 0 || c.Time <= 0 {
		t.Fatalf("degenerate cost: %+v", c)
	}
	if c.Accuracy < 0.99-1e-9 {
		t.Fatalf("accuracy %v below target", c.Accuracy)
	}
	// Σ N_k² is bounded by N² (single partition) and at least N (all
	// singletons).
	n := float64(m.N)
	if c.SumSq < n || c.SumSq > n*n {
		t.Fatalf("SumSq %v outside [N, N^2]", c.SumSq)
	}
}

func TestCostMonotoneInM(t *testing.T) {
	m, ds := testModel(t)
	w, err := lsh.SolveWidth(0.9, m.Dc, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	c5, err := m.Evaluate(ds, 5, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	c10, err := m.Evaluate(ds, 10, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 7/8: both costs scale linearly in M at fixed (π, w).
	if c10.Distances <= c5.Distances || c10.ShuffleBytes <= c5.ShuffleBytes {
		t.Fatalf("cost not increasing in M: %+v vs %+v", c5, c10)
	}
	if got := c10.Distances / c5.Distances; got < 1.9 || got > 2.1 {
		t.Fatalf("distance cost ratio %v, want ~2", got)
	}
}

func TestWiderHashCostsMore(t *testing.T) {
	// Larger w ⇒ coarser partitions ⇒ bigger Σ N_k² ⇒ more distance work.
	m, ds := testModel(t)
	narrow, err := m.Evaluate(ds, 10, 3, m.Dc*2)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := m.Evaluate(ds, 10, 3, m.Dc*50)
	if err != nil {
		t.Fatal(err)
	}
	if wide.SumSq <= narrow.SumSq {
		t.Fatalf("wider hash did not coarsen partitions: %v vs %v", wide.SumSq, narrow.SumSq)
	}
}

func TestRecommendReturnsFeasibleSorted(t *testing.T) {
	m, ds := testModel(t)
	costs, err := m.Recommend(ds, 0.99, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) == 0 {
		t.Fatal("no recommendations")
	}
	for i, c := range costs {
		if c.Accuracy < 0.99-1e-9 {
			t.Fatalf("candidate %d infeasible: %+v", i, c)
		}
		if i > 0 && costs[i].Time < costs[i-1].Time {
			t.Fatalf("not sorted by time at %d", i)
		}
	}
	// The paper's recommended ranges should be competitive: the winner's M
	// should not be an extreme value.
	best := costs[0]
	if best.M < 2 || best.Pi < 1 {
		t.Fatalf("nonsense winner: %+v", best)
	}
}

func TestRecommendErrors(t *testing.T) {
	m, ds := testModel(t)
	if _, err := m.Evaluate(ds, 0, 3, 1); err == nil {
		t.Fatal("want error for m=0")
	}
	if _, err := m.Evaluate(&dataset.DS{}, 1, 1, 1); err == nil {
		t.Fatal("want error for empty data set")
	}
}

func TestBalance(t *testing.T) {
	m, ds := testModel(t)
	fine, err := m.Balance(ds, 10, m.Dc)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := m.Balance(ds, 1, m.Dc*100)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Partitions <= coarse.Partitions {
		t.Fatalf("fine probe has %d partitions, coarse %d", fine.Partitions, coarse.Partitions)
	}
	if coarse.MaxShare <= fine.MaxShare {
		t.Fatalf("coarse probe should concentrate points: %v vs %v", coarse.MaxShare, fine.MaxShare)
	}
	if _, err := m.Balance(ds, 0, 1); err == nil {
		t.Fatal("want error for pi=0")
	}
}

func TestCalibrateMu(t *testing.T) {
	mu := CalibrateMu(57, 1)
	if mu < 0.001 || mu > 100 {
		t.Fatalf("calibrated mu = %v out of sane range", mu)
	}
	// Lower-dimensional distances are cheaper per evaluation, so the
	// shuffle/distance ratio should not shrink when dim shrinks.
	mu2 := CalibrateMu(2, 1)
	if mu2 < mu/4 {
		t.Fatalf("mu(2d)=%v implausibly below mu(57d)=%v", mu2, mu)
	}
}

// Model validation: the Section V cost model's predicted distance counts
// must track the distance counts LSH-DDP actually performs, configuration
// by configuration. (Predictions are per-layout Σ N_k² scaled by M; the
// real pipeline runs two partitioned jobs, so we compare against half the
// measured ρ+δ count and accept generous tolerance — the model's job is
// ranking configurations, not forecasting exact counts.)
func TestCostModelTracksMeasuredDistances(t *testing.T) {
	if testing.Short() {
		t.Skip("model validation in -short mode")
	}
	ds := dataset.BigCross(3000, 7)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	m := &Model{N: ds.N(), Dim: ds.Dim(), Dc: dc, Seed: 1, SampleSize: 3000}

	type cfg struct{ M, Pi int }
	var predicted, measured []float64
	for _, c := range []cfg{{5, 3}, {10, 3}, {10, 6}} {
		w, err := lsh.SolveWidth(0.99, dc, c.Pi, c.M)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := m.Evaluate(ds, c.M, c.Pi, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
			Config: core.Config{Engine: &mapreduce.LocalEngine{Parallelism: 2}, Dc: dc, Seed: 1},
			M:      c.M, Pi: c.Pi, W: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		predicted = append(predicted, cost.Distances)
		measured = append(measured, float64(res.Stats.DistanceComputations)/2)
	}
	for i := range predicted {
		ratio := predicted[i] / measured[i]
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("config %d: predicted %.3g vs measured %.3g (ratio %.2f)",
				i, predicted[i], measured[i], ratio)
		}
	}
	// Ranking property: if the model says config A costs more than B by
	// >2x, the measurement must agree on the direction.
	for i := range predicted {
		for j := range predicted {
			if predicted[i] > 2*predicted[j] && measured[i] < measured[j] {
				t.Fatalf("model ranking inverted between configs %d and %d", i, j)
			}
		}
	}
}
