package ingest

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/mapreduce"
	"repro/internal/model"
	"repro/internal/points"
	"repro/internal/serve"
)

// Knob names of the ingest layer (clusterd flags; see README
// "Configuration reference", ingest.* rows — cmd/doccheck enforces that
// every constant here has a matching row).
const (
	// ConfDir is the ingest directory holding WAL segments, compacted
	// artifacts, and the CURRENT pointer (clusterd -ingest-dir; setting it
	// turns the daemon into an ingest node).
	ConfDir = "ingest.dir"
	// ConfWALFsync fsyncs the WAL after every ingest batch (clusterd
	// -ingest-fsync). Off by default: acked points then survive a killed
	// process (the bytes are in the OS page cache) but not a host crash.
	ConfWALFsync = "ingest.wal.fsync"
	// ConfDeltaMax bounds the in-memory delta segment (clusterd
	// -ingest-max-delta); ingests arriving at a full delta are shed with
	// 429 until compaction catches up.
	ConfDeltaMax = "ingest.delta.max"
	// ConfIDBase overrides the first global point ID assigned to ingested
	// points (clusterd -ingest-id-base; default: the base model's highest
	// ID + 1). Fleet shards need disjoint ID ranges — see OPERATIONS.md.
	ConfIDBase = "ingest.id.base"
	// ConfIDStride is the global-ID increment between consecutive ingested
	// points (clusterd -ingest-id-stride; default 1). A fleet of S shards
	// uses stride S with per-shard bases so IDs never collide.
	ConfIDStride = "ingest.id.stride"
	// ConfCompactInterval is the background compaction period (clusterd
	// -compact-interval; 0 disables the loop, leaving POST /compact and
	// fleetctl rollover as the only triggers).
	ConfCompactInterval = "ingest.compact.interval"
	// ConfCompactMin skips a periodic compaction while the delta holds
	// fewer points than this (clusterd -compact-min-points); POST /compact
	// ignores it and compacts whatever is there.
	ConfCompactMin = "ingest.compact.min.points"
)

// Counter names the store reports (merged into the server's /statsz).
const (
	// CtrRequests counts acked ingest batches.
	CtrRequests = "ingest.requests"
	// CtrPoints counts acked ingested points.
	CtrPoints = "ingest.points"
	// CtrShed counts ingest batches rejected because the delta was full.
	CtrShed = "ingest.shed"
	// CtrWALBytes counts bytes appended to the WAL.
	CtrWALBytes = "ingest.wal.bytes"
	// CtrWALSyncs counts WAL fsyncs (0 unless ingest.wal.fsync).
	CtrWALSyncs = "ingest.wal.syncs"
	// CtrReplayed counts points replayed from the WAL at startup.
	CtrReplayed = "ingest.replayed"
	// CtrDeltaScanned counts delta rows scanned by query merges; divide by
	// serve.points for the average delta scan cost per query.
	CtrDeltaScanned = "ingest.delta.scanned"
	// CtrCompactRuns counts completed compactions.
	CtrCompactRuns = "compact.runs"
	// CtrCompactPoints counts delta points promoted into base artifacts.
	CtrCompactPoints = "compact.points"
	// CtrCompactFail counts failed compaction attempts (the store keeps
	// serving and retries on the next trigger).
	CtrCompactFail = "compact.fail"
	// CtrCompactUS accumulates microseconds spent compacting (mostly
	// off-lock: queries keep flowing while the merged index builds).
	CtrCompactUS = "compact.us"
)

// Config carries the ingest knobs (see the Conf* constants above).
type Config struct {
	// Dir is the ingest directory (required).
	Dir string
	// Precision is the scan precision compacted engines are built at
	// (same meaning as serve.Config.Precision).
	Precision string
	// Interval runs the background compactor this often (0 = manual only).
	Interval time.Duration
	// MinPoints makes periodic compactions wait for at least this many
	// delta points (default 1; explicit /compact ignores it).
	MinPoints int
	// MaxDelta bounds the delta segment (default 1<<20 points).
	MaxDelta int
	// Fsync syncs the WAL on every append.
	Fsync bool
	// IDBase / IDStride lay out the global IDs of ingested points
	// (defaults: highest base ID + 1, stride 1). Only consulted on a
	// fresh directory; restarts resume from the persisted CURRENT state.
	IDBase   int64
	IDStride int64
	// OnSwap, when set, receives each post-compaction engine (wire it to
	// serve.Server.UseEngine so admission checks track the new base).
	OnSwap func(*serve.Engine)
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (c *Config) maxDelta() int {
	if c.MaxDelta > 0 {
		return c.MaxDelta
	}
	return 1 << 20
}

func (c *Config) minPoints() int {
	if c.MinPoints > 0 {
		return c.MinPoints
	}
	return 1
}

func (c *Config) stride() int64 {
	if c.IDStride > 0 {
		return c.IDStride
	}
	return 1
}

// current is the CURRENT pointer file: which artifact is the serving base,
// which WAL segment starts the live tail, and the global ID the first
// record of that tail will carry. It is replaced atomically after each
// compaction; a crash between artifact write and CURRENT update just
// replays into the previous base.
type current struct {
	Version  int64  `json:"version"`
	Artifact string `json:"artifact"` // "" = the externally supplied base model
	WALSeq   int64  `json:"wal_seq"`
	NextID   int64  `json:"next_id"`
}

func currentPath(dir string) string { return filepath.Join(dir, "CURRENT") }

func readCurrent(dir string) (*current, error) {
	data, err := os.ReadFile(currentPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var c current
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("ingest: corrupt CURRENT file: %v", err)
	}
	return &c, nil
}

func writeCurrent(dir string, c current) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	tmp := currentPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, currentPath(dir))
}

// Store is the streaming-ingest state behind a serving daemon: an
// immutable base engine plus a mutable delta segment, both consulted by
// every query, with a WAL making acked points durable and a compactor
// periodically promoting the delta into a new base. It implements
// serve.IngestBackend.
//
// Locking: ingestMu serializes writers (and the compactor's snapshot
// boundary); mu guards the shared read state — queries hold RLock for a
// whole batch, writers and the compaction swap take Lock briefly. A
// writer holds ingestMu across WAL append + placement + apply, so replay
// reprocesses records in exactly the order live traffic committed them.
type Store struct {
	cfg      Config
	prec     serve.Precision
	counters *mapreduce.Counters
	walBytes atomic.Int64

	ingestMu sync.Mutex
	wal      *wal

	compactMu sync.Mutex // one compaction at a time

	mu      sync.RWMutex
	eng     *serve.Engine
	version int64
	walSeq  int64 // first live WAL segment
	nextID  int64
	// The delta segment, SoA: point j is dCoords[j*dim:(j+1)*dim] with
	// global ID dIDs[j], cluster dLabels[j], and density dRho[j] (its
	// dc-neighbor count at ingest, grown as later points land nearby).
	dCoords []float64
	dIDs    []int32
	dLabels []int32
	dRho    []float64
	// rhoAdd[i] is the delta density mass folded onto base row i: the
	// number of ingested points within dc of it since the last compaction.
	// Served halo flags read Rho[i]+rhoAdd[i]; compaction bakes it in.
	rhoAdd []float64
	// Swap bookkeeping: the one compaction that can interleave with an
	// in-flight writer's placement promotes the first lastPromoted delta
	// entries to base rows lastBaseN... — apply() remaps with these.
	lastBaseN    int
	lastPromoted int
	compactions  int64

	stopC     chan struct{}
	doneC     chan struct{}
	closeOnce sync.Once

	// hookAfterWAL, when set by a test, runs between the WAL append and
	// the in-memory apply — the window a crash leaves acked-but-invisible
	// records for replay to recover.
	hookAfterWAL func()
}

// Open loads (or creates) the ingest directory: the base model comes from
// CURRENT's artifact when one exists, otherwise from load; live WAL
// segments are replayed on top. The background compactor starts when
// cfg.Interval > 0. Close releases the WAL and stops the compactor.
func Open(cfg Config, load func() (*model.Model, error)) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ingest: Dir is required")
	}
	prec, err := serve.ParsePrecision(cfg.Precision)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg, prec: prec, counters: mapreduce.NewCounters()}
	cur, err := readCurrent(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var m *model.Model
	if cur != nil && cur.Artifact != "" {
		if m, err = model.ReadFile(filepath.Join(cfg.Dir, cur.Artifact)); err != nil {
			return nil, fmt.Errorf("ingest: loading compacted base: %v", err)
		}
	} else {
		if m, err = load(); err != nil {
			return nil, err
		}
	}
	if st.eng, err = serve.NewEngine(m, prec); err != nil {
		return nil, err
	}
	if cur != nil {
		st.version, st.walSeq, st.nextID = cur.Version, cur.WALSeq, cur.NextID
	} else {
		st.walSeq = 1
		st.nextID = int64(maxGlobalID(m)) + 1
		if cfg.IDBase > 0 {
			st.nextID = cfg.IDBase
		}
	}
	st.rhoAdd = make([]float64, m.N())

	last, liveBytes, err := replayWAL(cfg.Dir, st.walSeq, st.replayRecord)
	if err != nil {
		return nil, err
	}
	if st.wal, err = openWAL(cfg.Dir, last, cfg.Fsync); err != nil {
		return nil, err
	}
	st.walBytes.Store(liveBytes)
	st.gc()

	if cfg.Interval > 0 {
		st.stopC = make(chan struct{})
		st.doneC = make(chan struct{})
		go st.run()
	}
	return st, nil
}

// Close stops the compactor and closes the WAL. Pending delta points stay
// in the WAL and are replayed by the next Open.
func (st *Store) Close() error {
	var err error
	st.closeOnce.Do(func() {
		if st.stopC != nil {
			close(st.stopC)
			<-st.doneC
		}
		st.ingestMu.Lock()
		err = st.wal.close()
		st.ingestMu.Unlock()
	})
	return err
}

// Engine returns the current base engine (for initial server wiring; the
// OnSwap hook tracks it across compactions).
func (st *Store) Engine() *serve.Engine {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.eng
}

// maxGlobalID returns the highest global point ID of m.
func maxGlobalID(m *model.Model) int32 {
	if n := len(m.RowIDs); n > 0 {
		return m.RowIDs[n-1] // strictly ascending
	}
	return int32(m.N() - 1)
}

// replayRecord reprocesses one WAL batch through the live placement path
// (minus the WAL write it already survived).
func (st *Store) replayRecord(rec walRecord) error {
	dim := st.eng.Model().Dim
	if rec.dim != dim {
		return fmt.Errorf("ingest: WAL record dim %d, model dim %d", rec.dim, dim)
	}
	if rec.firstID != st.nextID {
		return fmt.Errorf("ingest: WAL record IDs start at %d, expected %d (segments replayed out of order?)", rec.firstID, st.nextID)
	}
	for i := 0; i < rec.count(); i++ {
		p := points.Vector(rec.coords[i*dim : (i+1)*dim])
		pl, err := st.place(p)
		if err != nil {
			return fmt.Errorf("ingest: replaying point %d: %v", rec.firstID+int64(i)*st.cfg.stride(), err)
		}
		st.apply(p, pl)
	}
	st.counters.Add(CtrReplayed, int64(rec.count()))
	return nil
}

// IngestPoints appends a validated batch: WAL first (the ack barrier),
// then per-point placement + apply, so each point sees every earlier one.
// Implements serve.IngestBackend.
func (st *Store) IngestPoints(pts [][]float64) ([]serve.IngestResult, error) {
	dim := st.Engine().Model().Dim
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("ingest: point %d has dim %d, model has dim %d", i, len(p), dim)
		}
	}
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()

	st.mu.RLock()
	nd := len(st.dIDs)
	firstID := st.nextID
	st.mu.RUnlock()
	if nd+len(pts) > st.cfg.maxDelta() {
		st.counters.Add(CtrShed, 1)
		return nil, serve.ErrDeltaFull
	}
	if firstID+int64(len(pts))*st.cfg.stride() > math.MaxInt32 {
		return nil, fmt.Errorf("ingest: global point ID space exhausted (next would be %d)", firstID)
	}

	n, err := st.wal.append(firstID, dim, pts)
	if err != nil {
		return nil, fmt.Errorf("ingest: WAL append: %v", err)
	}
	st.walBytes.Add(int64(n))
	st.counters.Add(CtrWALBytes, int64(n))
	if st.cfg.Fsync {
		st.counters.Add(CtrWALSyncs, 1)
	}
	if st.hookAfterWAL != nil {
		st.hookAfterWAL()
	}

	results := make([]serve.IngestResult, len(pts))
	for i, p := range pts {
		pl, err := st.place(p)
		if err != nil {
			// The WAL already holds the batch; fail the whole request so
			// the client's view matches what replay will reconstruct.
			return nil, err
		}
		results[i] = st.apply(p, pl)
	}
	st.counters.Add(CtrRequests, 1)
	st.counters.Add(CtrPoints, int64(len(pts)))
	return results, nil
}

// placement is the computed-but-not-yet-applied state of one new point.
type placement struct {
	version   int64
	asg       serve.Assignment
	label     int32
	rho       float64
	baseFold  []int32 // base rows within dc (each gains +1 mass)
	deltaFold []int32 // delta indices within dc (each gains +1 mass)
}

// place computes a new point's assignment (nearest stored point across
// base + delta, the serving tie rule) and the density mass it adds. Reads
// under RLock; the caller applies under Lock.
func (st *Store) place(p points.Vector) (placement, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	eng := st.eng
	m := eng.Model()
	dim, dc2 := m.Dim, m.Dc*m.Dc
	pl := placement{version: st.version}

	asg, _, err := eng.Assign(p, false)

	// Density mass to base rows: the LSH candidate union stands in for the
	// dc-neighborhood (the same approximation LSH-DDP's local rho uses); an
	// unpruned engine scans every row.
	rows, pruned := eng.CandidateRows(p, nil)
	if pruned {
		for _, r := range rows {
			if points.SqDist(p, m.Row(int(r))) < dc2 {
				pl.baseFold = append(pl.baseFold, r)
			}
		}
	} else {
		for r := 0; r < m.N(); r++ {
			if points.SqDist(p, m.Row(r)) < dc2 {
				pl.baseFold = append(pl.baseFold, int32(r))
			}
		}
	}

	// Delta: exact NN and dc-neighborhood in one pass.
	nd := len(st.dIDs)
	best, best2 := -1, math.Inf(1)
	for j := 0; j < nd; j++ {
		d2 := points.SqDist(p, st.dCoords[j*dim:(j+1)*dim])
		if d2 < dc2 {
			pl.deltaFold = append(pl.deltaFold, int32(j))
		}
		if d2 < best2 {
			best, best2 = j, d2
		}
	}
	pl.rho = float64(len(pl.baseFold) + len(pl.deltaFold))

	deltaWins := best >= 0 && !math.IsInf(best2, 1) && (err != nil || best2 < asg.Dist2)
	switch {
	case deltaWins:
		lbl := st.dLabels[best]
		pl.label = lbl
		pl.asg = serve.Assignment{
			Cluster: lbl, Halo: st.dRho[best] < m.Border[lbl],
			Nearest: st.dIDs[best], Dist: math.Sqrt(best2), Dist2: best2,
			PeakDist: points.Dist(p, m.Row(int(m.Peaks[lbl]))), Exact: true,
		}
	case err == nil:
		pl.label = asg.Cluster
		pl.asg = asg
		if asg.Halo {
			// Fold delta mass into the halo decision (mass only grows, so
			// the flag can only clear).
			if row := localRow(m, asg.Nearest); st.rhoAdd[row] > 0 {
				pl.asg.Halo = m.Rho[row]+st.rhoAdd[row] < m.Border[asg.Cluster]
			}
		}
	default:
		return placement{}, err
	}
	return pl, nil
}

// apply commits a placed point to the delta segment and folds its density
// mass, remapping fold indices if a compaction swapped the base while the
// placement was being computed (at most one can: its snapshot boundary
// holds ingestMu, which the calling writer owns).
func (st *Store) apply(p points.Vector, pl placement) serve.IngestResult {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.version != pl.version {
		b0, promoted := st.lastBaseN, st.lastPromoted
		kept := pl.deltaFold[:0]
		for _, j := range pl.deltaFold {
			if int(j) < promoted {
				st.rhoAdd[b0+int(j)]++ // now a base row of the new engine
			} else {
				kept = append(kept, j-int32(promoted))
			}
		}
		pl.deltaFold = kept
	}
	for _, r := range pl.baseFold {
		st.rhoAdd[r]++
	}
	for _, j := range pl.deltaFold {
		st.dRho[j]++
	}
	id := st.nextID
	st.nextID += st.cfg.stride()
	st.dCoords = append(st.dCoords, p...)
	st.dIDs = append(st.dIDs, int32(id))
	st.dLabels = append(st.dLabels, pl.label)
	st.dRho = append(st.dRho, pl.rho)
	return serve.IngestResult{ID: int32(id), Assignment: pl.asg}
}

// localRow translates a base global point ID to its local row.
func localRow(m *model.Model, globalID int32) int {
	if len(m.RowIDs) == 0 {
		return int(globalID)
	}
	return sort.Search(len(m.RowIDs), func(i int) bool { return m.RowIDs[i] >= globalID })
}

// AssignBatch answers queries against base + delta under one RLock, so a
// compaction swap can never interleave inside a batch: the engine scan,
// the delta merge, and the halo adjustment all see one consistent state.
// Base-segment answers are bit-identical to the plain engine's (the delta
// only replaces an answer on a strictly smaller squared distance, and
// delta IDs sort after every base ID, so ties keep the base winner).
// Implements serve.IngestBackend.
func (st *Store) AssignBatch(qs []points.Vector, opts serve.BatchOpts) ([]serve.Assignment, []error, serve.ScanStats) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out, errs, stats := st.eng.AssignBatchOpts(qs, opts)
	m := st.eng.Model()
	dim := m.Dim
	nd := len(st.dIDs)
	masked := !opts.ExactOnly && opts.Masks != nil
	var deltaScanned int64
	for i, q := range qs {
		if errs[i] == nil && out[i].Halo {
			// The engine judged halo against the artifact's rho; folded
			// delta mass may since have lifted the point over the border.
			if row := localRow(m, out[i].Nearest); st.rhoAdd[row] > 0 {
				out[i].Halo = m.Rho[row]+st.rhoAdd[row] < m.Border[out[i].Cluster]
			}
		}
		if nd == 0 {
			continue
		}
		if masked && errs[i] == serve.ErrNoCandidates {
			// The router owns the fleet-wide fallback decision; this
			// shard's delta is merged again on the broadcast exact pass.
			continue
		}
		b, b2 := kernels.NNRange(st.dCoords, dim, q, 0, nd)
		deltaScanned += int64(nd)
		if b < 0 || math.IsInf(b2, 1) {
			continue
		}
		if errs[i] == nil && !(b2 < out[i].Dist2) {
			continue
		}
		lbl := st.dLabels[b]
		out[i] = serve.Assignment{
			Cluster: lbl, Halo: st.dRho[b] < m.Border[lbl],
			Nearest: st.dIDs[b], Dist: math.Sqrt(b2), Dist2: b2,
			PeakDist: points.Dist(q, m.Row(int(m.Peaks[lbl]))), Exact: out[i].Exact,
		}
		errs[i] = nil
	}
	stats.Scanned += deltaScanned
	st.counters.Add(CtrDeltaScanned, deltaScanned)
	return out, errs, stats
}

// Info snapshots the store state. Implements serve.IngestBackend.
func (st *Store) Info() serve.IngestInfo {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.infoLocked()
}

func (st *Store) infoLocked() serve.IngestInfo {
	return serve.IngestInfo{
		Version:     st.version,
		BaseN:       st.eng.Model().N(),
		DeltaPoints: len(st.dIDs),
		NextID:      st.nextID,
		WALBytes:    st.walBytes.Load(),
		Compactions: st.compactions,
	}
}

// Counters snapshots the ingest.* / compact.* counters. Implements
// serve.IngestBackend.
func (st *Store) Counters() map[string]int64 { return st.counters.Snapshot() }

// run is the background compaction loop.
func (st *Store) run() {
	defer close(st.doneC)
	t := time.NewTicker(st.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-st.stopC:
			return
		case <-t.C:
			st.mu.RLock()
			nd := len(st.dIDs)
			st.mu.RUnlock()
			if nd < st.cfg.minPoints() {
				continue
			}
			if _, err := st.Compact(); err != nil {
				st.logf("ingest: compaction failed (will retry): %v", err)
			}
		}
	}
}

func (st *Store) logf(format string, args ...any) {
	if st.cfg.Log != nil {
		st.cfg.Log(format, args...)
	}
}
