package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/serve"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestHTTPIngest wires a Store into a serve.Server exactly as clusterd
// -ingest-dir does and exercises the ingest endpoints end to end.
func TestHTTPIngest(t *testing.T) {
	m := trainModel(t, 500, 3)
	srv := serve.New(serve.Config{Loader: loaderFor(m)})
	st, err := Open(Config{
		Dir:       t.TempDir(),
		Precision: "f64",
		OnSwap:    srv.UseEngine,
	}, loaderFor(m))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() }) //nolint:errcheck
	srv.SetIngest(st)
	srv.UseEngine(st.Engine())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(t.Context()) }) //nolint:errcheck
	base := "http://" + srv.Addr()

	pts := jitterPts(m, 0, 8)
	resp := postJSON(t, base+"/ingest", map[string]any{"points": pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ingest: HTTP %d", resp.StatusCode)
	}
	acks := decodeJSON[serve.IngestResponse](t, resp).Results
	if len(acks) != len(pts) {
		t.Fatalf("/ingest acked %d points, sent %d", len(acks), len(pts))
	}

	// The ingested points are immediately visible to /assign, no restart.
	resp = postJSON(t, base+"/assign", map[string]any{"points": pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/assign: HTTP %d", resp.StatusCode)
	}
	got := decodeJSON[struct {
		Results []serve.Assignment `json:"results"`
	}](t, resp).Results
	for i := range pts {
		if got[i].Nearest != acks[i].ID || got[i].Dist2 != 0 {
			t.Fatalf("/assign at ingested point %d: %+v, acked ID %d", i, got[i], acks[i].ID)
		}
	}

	// /statsz reports the backend state and merges its counters.
	resp, err = http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeJSON[struct {
		Ingest   *serve.IngestInfo `json:"ingest"`
		Counters map[string]int64  `json:"counters"`
	}](t, resp)
	if stats.Ingest == nil || stats.Ingest.DeltaPoints != len(pts) {
		t.Fatalf("/statsz ingest section: %+v", stats.Ingest)
	}
	if stats.Counters[CtrPoints] != int64(len(pts)) {
		t.Fatalf("/statsz counters[%s] = %d, want %d", CtrPoints, stats.Counters[CtrPoints], len(pts))
	}

	// The compactor owns the model lineage: /reload is refused.
	resp = postJSON(t, base+"/reload", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("/reload on an ingest node: HTTP %d, want 409", resp.StatusCode)
	}

	resp = postJSON(t, base+"/compact", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/compact: HTTP %d", resp.StatusCode)
	}
	info := decodeJSON[serve.IngestInfo](t, resp)
	if info.Version != 1 || info.DeltaPoints != 0 || info.BaseN != m.N()+len(pts) {
		t.Fatalf("/compact reply: %+v", info)
	}
	// Post-compaction the server's engine tracked the swap (OnSwap) and the
	// promoted points still answer.
	if srv.Engine().Model().N() != m.N()+len(pts) {
		t.Fatalf("server engine not swapped after /compact: %d rows", srv.Engine().Model().N())
	}
	resp = postJSON(t, base+"/assign", map[string]any{"points": pts[:1]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/assign after compaction: HTTP %d", resp.StatusCode)
	}
	got = decodeJSON[struct {
		Results []serve.Assignment `json:"results"`
	}](t, resp).Results
	if got[0].Nearest != acks[0].ID {
		t.Fatalf("/assign after compaction: %+v, want nearest %d", got[0], acks[0].ID)
	}
}

// TestHTTPIngestShed maps a full delta to 429 + Retry-After.
func TestHTTPIngestShed(t *testing.T) {
	m := trainModel(t, 400, 3)
	srv := serve.New(serve.Config{Loader: loaderFor(m)})
	st, err := Open(Config{Dir: t.TempDir(), Precision: "f64", MaxDelta: 2}, loaderFor(m))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() }) //nolint:errcheck
	srv.SetIngest(st)
	srv.UseEngine(st.Engine())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(t.Context()) }) //nolint:errcheck

	resp := postJSON(t, fmt.Sprintf("http://%s/ingest", srv.Addr()), map[string]any{"points": jitterPts(m, 0, 3)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound /ingest: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 /ingest reply lacks Retry-After")
	}
}
