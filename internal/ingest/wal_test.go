package ingest

import (
	"os"
	"testing"

	"repro/internal/chaos"
)

func appendRecords(t *testing.T, dir string, seq int64, firstID int64, batches [][][]float64) {
	t.Helper()
	w, err := openWAL(dir, seq, false)
	if err != nil {
		t.Fatal(err)
	}
	id := firstID
	for _, pts := range batches {
		if _, err := w.append(id, len(pts[0]), pts); err != nil {
			t.Fatal(err)
		}
		id += int64(len(pts))
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func collectRecords(t *testing.T, dir string, from int64) []walRecord {
	t.Helper()
	var recs []walRecord
	if _, _, err := replayWAL(dir, from, func(r walRecord) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	batches := [][][]float64{
		{{1, 2}, {3, 4}},
		{{5, 6}},
		{{7, 8}, {9, 10}, {11, 12}},
	}
	appendRecords(t, dir, 1, 100, batches)
	recs := collectRecords(t, dir, 1)
	if len(recs) != len(batches) {
		t.Fatalf("replayed %d records, wrote %d", len(recs), len(batches))
	}
	wantID := int64(100)
	for i, rec := range recs {
		if rec.firstID != wantID {
			t.Errorf("record %d: firstID %d, want %d", i, rec.firstID, wantID)
		}
		if rec.count() != len(batches[i]) || rec.dim != 2 {
			t.Errorf("record %d: %d×%d, want %d×2", i, rec.count(), rec.dim, len(batches[i]))
		}
		for j, p := range batches[i] {
			for d, x := range p {
				if rec.coords[j*2+d] != x {
					t.Errorf("record %d point %d dim %d: %v != %v", i, j, d, rec.coords[j*2+d], x)
				}
			}
		}
		wantID += int64(rec.count())
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir, 1, 0, [][][]float64{{{1, 2}}, {{3, 4}}})
	// Simulate a torn write: half a record at the tail of the segment.
	f, err := os.OpenFile(walPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x30, 0, 0, 0, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs := collectRecords(t, dir, 1)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(recs))
	}
	// The tear must be gone from disk so appends continue cleanly.
	recs = collectRecords(t, dir, 1)
	if len(recs) != 2 {
		t.Fatalf("second replay saw %d records, want 2", len(recs))
	}
	appendRecords(t, dir, 1, 2, [][][]float64{{{5, 6}}})
	if recs = collectRecords(t, dir, 1); len(recs) != 3 {
		t.Fatalf("after post-tear append: %d records, want 3", len(recs))
	}
}

func TestWALCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir, 1, 0, [][][]float64{{{1, 2}}, {{3, 4}}, {{5, 6}}})
	// Flip one bit inside the first record's payload: that is storage
	// corruption (valid records follow), not a torn tail, and replay must
	// refuse rather than silently drop acked points.
	buf, err := os.ReadFile(walPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	c := chaos.New(42)
	c.FlipBit(buf[walHeaderLen+16 : walHeaderLen+17]) // first coord of record 0
	if err := os.WriteFile(walPath(dir, 1), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayWAL(dir, 1, func(walRecord) error { return nil }); err == nil {
		t.Fatal("replay of a mid-file corrupted WAL succeeded; want an error")
	}
}

func TestWALMissingSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir, 1, 0, [][][]float64{{{1, 2}}})
	appendRecords(t, dir, 3, 5, [][][]float64{{{3, 4}}})
	if _, _, err := replayWAL(dir, 1, func(walRecord) error { return nil }); err == nil {
		t.Fatal("replay across a missing WAL segment succeeded; want an error")
	}
}
