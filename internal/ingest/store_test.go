package ingest

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/points"
	"repro/internal/serve"
)

// trainModel runs the full offline pipeline on a seeded blob dataset and
// exports the artifact the store serves as its initial base.
func trainModel(t *testing.T, n, k int) *model.Model {
	t.Helper()
	ds := dataset.Blobs("ingest-test", n, 2, k, 100, 2.5, 7)
	res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(k))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := core.ExportModel(ds, res, peaks, labels, hr.Border, 7)
	if err != nil {
		t.Fatal(err)
	}
	return mdl
}

func loaderFor(m *model.Model) func() (*model.Model, error) {
	return func() (*model.Model, error) { return m, nil }
}

func openStore(t *testing.T, dir string, m *model.Model, mut func(*Config)) *Store {
	t.Helper()
	cfg := Config{Dir: dir, Precision: "f64"}
	if mut != nil {
		mut(&cfg)
	}
	st, err := Open(cfg, loaderFor(m))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() }) //nolint:errcheck // idempotent
	return st
}

// jitterPts builds count distinct points near base-model rows: close enough
// to land in populated LSH buckets, offset enough never to collide with a
// stored point.
func jitterPts(m *model.Model, start, count int) [][]float64 {
	pts := make([][]float64, count)
	for i := range pts {
		row := m.Row((start + i) % m.N())
		pts[i] = []float64{row[0] + 0.001 + float64(start+i)*1e-5, row[1] - 0.002}
	}
	return pts
}

func assignAt(t *testing.T, st *Store, p []float64, exact bool) serve.Assignment {
	t.Helper()
	out, errs, _ := st.AssignBatch([]points.Vector{p}, serve.BatchOpts{ExactOnly: exact})
	if errs[0] != nil {
		t.Fatalf("assign at %v: %v", p, errs[0])
	}
	return out[0]
}

// checkVisible requires every acked point to answer a query at its own
// coordinates with itself as the nearest stored point.
func checkVisible(t *testing.T, st *Store, pts [][]float64, acks []serve.IngestResult, exact bool) {
	t.Helper()
	for i, p := range pts {
		got := assignAt(t, st, p, exact)
		if got.Nearest != acks[i].ID {
			t.Fatalf("query at ingested point %d: nearest %d, want acked ID %d", i, got.Nearest, acks[i].ID)
		}
		if got.Dist2 != 0 {
			t.Fatalf("query at ingested point %d: dist2 %v, want 0", i, got.Dist2)
		}
		if got.Cluster != acks[i].Cluster {
			t.Fatalf("query at ingested point %d: cluster %d, ack said %d", i, got.Cluster, acks[i].Cluster)
		}
	}
}

func TestIngestImmediateVisibility(t *testing.T) {
	m := trainModel(t, 600, 3)
	st := openStore(t, t.TempDir(), m, nil)

	pts := jitterPts(m, 0, 25)
	acks, err := st.IngestPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != len(pts) {
		t.Fatalf("%d acks for %d points", len(acks), len(pts))
	}
	wantID := int64(maxGlobalID(m)) + 1
	for i, a := range acks {
		if int64(a.ID) != wantID+int64(i) {
			t.Fatalf("ack %d: ID %d, want %d", i, a.ID, wantID+int64(i))
		}
	}
	checkVisible(t, st, pts, acks, false)
	checkVisible(t, st, pts, acks, true)

	info := st.Info()
	if info.Version != 0 || info.DeltaPoints != len(pts) || info.BaseN != m.N() {
		t.Fatalf("info after ingest: %+v", info)
	}
	if info.NextID != wantID+int64(len(pts)) {
		t.Fatalf("next ID %d, want %d", info.NextID, wantID+int64(len(pts)))
	}
	if got := st.Counters()[CtrPoints]; got != int64(len(pts)) {
		t.Fatalf("%s = %d, want %d", CtrPoints, got, len(pts))
	}
}

// TestReplayAfterKill simulates a clusterd killed mid-ingest: several acked
// batches plus one batch that reached the WAL but died before the in-memory
// apply (the hookAfterWAL window). A reopened store must recover every
// acked point with its original ID and assignment, and replay the
// WAL-but-unacked batch too (at-least-once).
func TestReplayAfterKill(t *testing.T) {
	m := trainModel(t, 600, 3)
	dir := t.TempDir()
	st := openStore(t, dir, m, nil)

	var pts [][]float64
	var acks []serve.IngestResult
	for b := 0; b < 3; b++ {
		batch := jitterPts(m, b*7, 7)
		res, err := st.IngestPoints(batch)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, batch...)
		acks = append(acks, res...)
	}

	// The killed batch: durable in the WAL, never applied, never acked.
	killed := jitterPts(m, 100, 5)
	st.hookAfterWAL = func() { panic("chaos: killed after WAL append") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hookAfterWAL did not fire")
			}
		}()
		st.IngestPoints(killed) //nolint:errcheck // dies by panic
	}()
	// Abandon st without Close, like a killed process. Reopen the directory.
	re := openStore(t, dir, m, nil)

	if got := re.Counters()[CtrReplayed]; got != int64(len(pts)+len(killed)) {
		t.Fatalf("replayed %d points, want %d", got, len(pts)+len(killed))
	}
	checkVisible(t, re, pts, acks, false)
	// Replay reprocesses records through the same placement path in commit
	// order, so the reconstructed delta state must match the crashed
	// store's exactly (for the points the crashed store applied).
	st.mu.RLock()
	re.mu.RLock()
	for i := range acks {
		// The killed batch replays after these, so their rho may have
		// grown past the crashed store's — never shrunk.
		if re.dIDs[i] != st.dIDs[i] || re.dLabels[i] != st.dLabels[i] || re.dRho[i] < st.dRho[i] {
			t.Errorf("delta entry %d diverged on replay: id %d/%d label %d/%d rho %v/%v",
				i, re.dIDs[i], st.dIDs[i], re.dLabels[i], st.dLabels[i], re.dRho[i], st.dRho[i])
		}
	}
	re.mu.RUnlock()
	st.mu.RUnlock()
	if t.Failed() {
		t.FailNow()
	}
	// The killed batch was replayed with the IDs it would have been acked
	// under, and new ingests continue after it.
	info := re.Info()
	if want := int64(maxGlobalID(m)) + 1 + int64(len(pts)+len(killed)); info.NextID != want {
		t.Fatalf("next ID after replay: %d, want %d", info.NextID, want)
	}
	if got := assignAt(t, re, killed[0], false); got.Dist2 != 0 {
		t.Fatalf("killed-batch point not replayed: %+v", got)
	}
}

// TestReplayTruncatesTornTail reopens a directory whose live WAL segment
// ends in a half-written record: the tear is discarded, every acked point
// survives.
func TestReplayTruncatesTornTail(t *testing.T) {
	m := trainModel(t, 600, 3)
	dir := t.TempDir()
	st := openStore(t, dir, m, nil)
	pts := jitterPts(m, 0, 9)
	acks, err := st.IngestPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openStore(t, dir, m, nil)
	checkVisible(t, re, pts, acks, false)
	if got := re.Info().DeltaPoints; got != len(pts) {
		t.Fatalf("delta holds %d points after torn-tail replay, want %d", got, len(pts))
	}
}

func TestCompactionPromotesDelta(t *testing.T) {
	m := trainModel(t, 500, 3)
	dir := t.TempDir()
	st := openStore(t, dir, m, nil)

	pts := jitterPts(m, 0, 30)
	pts = append(pts, []float64{m.Row(0)[0] + 1e-9, m.Row(0)[1]}) // within dc of row 0
	acks, err := st.IngestPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	st.mu.RLock()
	if st.rhoAdd[0] < 1 {
		st.mu.RUnlock()
		t.Fatalf("rhoAdd[0] = %v after ingesting a copy of row 0, want >= 1", st.rhoAdd[0])
	}
	addBefore := append([]float64(nil), st.rhoAdd...)
	st.mu.RUnlock()

	// Base-coordinate queries must be bit-identical across the compaction.
	queries := make([]points.Vector, 60)
	for i := range queries {
		queries[i] = m.Row(i * 7 % m.N())
	}
	pre, preErrs, _ := st.AssignBatch(queries, serve.BatchOpts{})

	info, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.DeltaPoints != 0 || info.BaseN != m.N()+len(pts) || info.Compactions != 1 {
		t.Fatalf("post-compaction info: %+v", info)
	}
	if _, err := os.Stat(currentPath(dir)); err != nil {
		t.Fatalf("CURRENT not written: %v", err)
	}
	if _, err := os.Stat(walPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("pre-compaction WAL segment not collected (err=%v)", err)
	}

	post, postErrs, _ := st.AssignBatch(queries, serve.BatchOpts{})
	for i := range queries {
		if preErrs[i] != nil || postErrs[i] != nil {
			t.Fatalf("query %d errored: pre=%v post=%v", i, preErrs[i], postErrs[i])
		}
		if pre[i] != post[i] {
			t.Fatalf("base query %d changed across compaction:\npre  %+v\npost %+v", i, pre[i], post[i])
		}
	}
	checkVisible(t, st, pts, acks, true)

	// The merged base baked the folded density mass in.
	m2 := st.Engine().Model()
	for i := 0; i < m.N(); i++ {
		if want := m.Rho[i] + addBefore[i]; m2.Rho[i] != want {
			t.Fatalf("merged rho[%d] = %v, want base %v + folded %v", i, m2.Rho[i], m.Rho[i], addBefore[i])
		}
	}

	// A restart must come back from the compacted artifact, not the loader.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{Dir: dir, Precision: "f64"}, func() (*model.Model, error) {
		return nil, fmt.Errorf("loader must not be consulted once CURRENT names an artifact")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	ri := re.Info()
	if ri.Version != 1 || ri.BaseN != m.N()+len(pts) || ri.DeltaPoints != 0 {
		t.Fatalf("reopened info: %+v", ri)
	}
	if ri.NextID != info.NextID {
		t.Fatalf("reopened next ID %d, want %d", ri.NextID, info.NextID)
	}
	checkVisible(t, re, pts, acks, true)
}

func TestIngestShedsWhenDeltaFull(t *testing.T) {
	m := trainModel(t, 400, 3)
	st := openStore(t, t.TempDir(), m, func(c *Config) { c.MaxDelta = 4 })

	if _, err := st.IngestPoints(jitterPts(m, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestPoints(jitterPts(m, 3, 2)); err != serve.ErrDeltaFull {
		t.Fatalf("over-bound ingest returned %v, want ErrDeltaFull", err)
	}
	if got := st.Counters()[CtrShed]; got != 1 {
		t.Fatalf("%s = %d, want 1", CtrShed, got)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestPoints(jitterPts(m, 3, 2)); err != nil {
		t.Fatalf("ingest after compaction still shed: %v", err)
	}
}

// TestCompactionRacesTraffic runs concurrent ingests, query batches, and
// compactions (the -race target of this package): when the dust settles,
// every acked point must be present exactly once in the final base.
func TestCompactionRacesTraffic(t *testing.T) {
	m := trainModel(t, 400, 3)
	st := openStore(t, t.TempDir(), m, nil)

	const writers, batches, perBatch = 4, 25, 3
	type acked struct {
		pt []float64
		id int32
	}
	var (
		mu  sync.Mutex
		log []acked
	)
	done := make(chan struct{})
	var writerWG, auxWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for b := 0; b < batches; b++ {
				pts := make([][]float64, perBatch)
				for i := range pts {
					// Distinct coordinates away from the training box so
					// each point is its own unique nearest neighbor.
					off := float64(w*batches*perBatch+b*perBatch+i) * 1e-3
					pts[i] = []float64{150 + off, 150 - off}
				}
				res, err := st.IngestPoints(pts)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				mu.Lock()
				for i, a := range res {
					log = append(log, acked{pts[i], a.ID})
				}
				mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		auxWG.Add(1)
		go func(r int) {
			defer auxWG.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				var probe *acked
				if len(log) > 0 {
					probe = &log[rng.Intn(len(log))]
				}
				mu.Unlock()
				qs := []points.Vector{m.Row(rng.Intn(m.N()))}
				if probe != nil {
					qs = append(qs, probe.pt)
				}
				out, errs, _ := st.AssignBatch(qs, serve.BatchOpts{})
				for i := range errs {
					if errs[i] != nil {
						t.Errorf("reader %d: %v", r, errs[i])
						return
					}
				}
				if probe != nil && out[1].Nearest != probe.id {
					t.Errorf("reader %d: acked point %d answered %d", r, probe.id, out[1].Nearest)
					return
				}
			}
		}(r)
	}
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := st.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	writerWG.Wait()
	close(done)
	auxWG.Wait()
	if t.Failed() {
		return
	}

	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	final := st.Engine().Model()
	want := m.N() + writers*batches*perBatch
	if final.N() != want {
		t.Fatalf("final base holds %d rows, want %d (lost or duplicated deltas)", final.N(), want)
	}
	seen := make(map[int32]bool)
	for _, id := range final.RowIDs {
		if seen[id] {
			t.Fatalf("global ID %d appears twice in the final base", id)
		}
		seen[id] = true
	}
	mu.Lock()
	defer mu.Unlock()
	if len(log) != writers*batches*perBatch {
		t.Fatalf("acked %d points, want %d", len(log), writers*batches*perBatch)
	}
	for _, a := range log {
		if len(final.RowIDs) > 0 && !seen[a.id] {
			t.Fatalf("acked ID %d missing from the final base", a.id)
		}
		got := assignAt(t, st, a.pt, true)
		if got.Nearest != a.id || got.Dist2 != 0 {
			t.Fatalf("acked point %d: final answer %+v", a.id, got)
		}
	}
}
