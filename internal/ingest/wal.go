// Package ingest grows a served model online: points stream into a
// WAL-backed in-memory delta segment, get assigned immediately against the
// base engine plus the delta, and fold their density mass into served rho
// estimates. A background compactor periodically merges base + delta into
// a new versioned model artifact and swaps it in without stopping queries.
//
// On disk an ingest directory holds three kinds of files:
//
//	CURRENT            which artifact + WAL segments are live (JSON, atomic)
//	model-%06d.ddpm    compacted base artifacts (the standard model format)
//	wal-%06d.log       write-ahead log segments of the delta
//
// See DESIGN.md "Streaming ingest & compaction" for the protocol.
package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WAL record layout, little-endian:
//
//	u32 payload length | u32 CRC32-C(payload) | payload
//
// payload:
//
//	u32 count | u32 dim | u64 first global ID | count*dim float64 bits
//
// One record per acked ingest batch. The CRC (same Castagnoli polynomial
// as the model artifact sections) detects torn tails and bit rot; a record
// that fails its CRC but extends to end-of-file of the final segment is a
// torn write and is truncated away, anywhere else it is corruption and
// replay fails loudly rather than silently dropping acked points.

const walHeaderLen = 8

// maxWALRecord bounds one record so a corrupted length field cannot make
// replay allocate absurdly (1024 points × 1024 dims × 8 bytes is far above
// any admissible batch).
const maxWALRecord = 64 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

func walPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", seq))
}

// wal is one open (active) WAL segment. Not safe for concurrent use; the
// store serializes writers.
type wal struct {
	dir   string
	seq   int64
	f     *os.File
	fsync bool
	buf   []byte
}

// openWAL opens segment seq of dir for appending, creating it if needed.
func openWAL(dir string, seq int64, fsync bool) (*wal, error) {
	f, err := os.OpenFile(walPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{dir: dir, seq: seq, f: f, fsync: fsync}, nil
}

// append writes one batch record and (optionally) syncs it. The record is
// durable in the OS page cache on return — it survives a killed process;
// surviving a host crash needs fsync (the ingest.wal.fsync knob).
func (w *wal) append(firstID int64, dim int, pts [][]float64) (int, error) {
	payload := 8 + 8 + len(pts)*dim*8
	if payload > maxWALRecord {
		return 0, fmt.Errorf("ingest: batch of %d×%d points exceeds the WAL record bound", len(pts), dim)
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(payload))
	w.buf = append(w.buf, 0, 0, 0, 0) // CRC backfilled below
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(pts)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(dim))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(firstID))
	for _, p := range pts {
		for _, x := range p {
			w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(x))
		}
	}
	binary.LittleEndian.PutUint32(w.buf[4:], crc32.Checksum(w.buf[walHeaderLen:], walCRC))
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
	}
	return len(w.buf), nil
}

// roll closes the active segment and starts seq+1. Called by the
// compactor at the snapshot boundary: everything at or before the rolled
// segment is covered by the artifact the compaction is about to write.
func (w *wal) roll() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(walPath(w.dir, w.seq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f, w.seq = f, w.seq+1
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// walRecord is one decoded WAL record.
type walRecord struct {
	firstID int64
	dim     int
	coords  []float64 // count×dim, row-major; aliases the segment read buffer
}

func (r walRecord) count() int { return len(r.coords) / r.dim }

// walSegments lists the WAL segment sequence numbers present in dir, in
// ascending order.
func walSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replayWAL decodes every record of segments from..max in order and hands
// each to fn. A torn tail on the final segment is truncated in place (a
// crashed writer's half-record was never acked); corruption anywhere else
// aborts the replay so acked data is never silently dropped. Returns the
// highest segment seen (== from when none exist yet) and the total live
// bytes replayed.
func replayWAL(dir string, from int64, fn func(walRecord) error) (last int64, liveBytes int64, err error) {
	seqs, err := walSegments(dir)
	if err != nil {
		return 0, 0, err
	}
	last = from
	var live []int64
	for _, seq := range seqs {
		if seq < from {
			continue // pre-compaction segment awaiting GC
		}
		live = append(live, seq)
		if seq > last {
			last = seq
		}
	}
	for i, seq := range live {
		if want := from + int64(i); seq != want {
			return 0, 0, fmt.Errorf("ingest: WAL segment %06d missing (found %06d)", want, seq)
		}
	}
	for i, seq := range live {
		n, err := replaySegment(walPath(dir, seq), i == len(live)-1, fn)
		if err != nil {
			return 0, 0, err
		}
		liveBytes += n
	}
	return last, liveBytes, nil
}

// replaySegment decodes one segment file. final marks the last live
// segment — the only place a torn tail is legal.
func replaySegment(path string, final bool, fn func(walRecord) error) (int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	off := 0
	for off < len(buf) {
		rest := len(buf) - off
		tornAt := -1
		if rest < walHeaderLen {
			tornAt = off
		} else {
			n := int(binary.LittleEndian.Uint32(buf[off:]))
			crc := binary.LittleEndian.Uint32(buf[off+4:])
			switch {
			case n > maxWALRecord || walHeaderLen+n > rest:
				// The claimed payload runs past EOF: a torn write.
				tornAt = off
			case crc32.Checksum(buf[off+walHeaderLen:off+walHeaderLen+n], walCRC) != crc:
				if walHeaderLen+n == rest && final {
					tornAt = off // CRC of the very last record: torn write
				} else {
					return 0, fmt.Errorf("ingest: %s: record at offset %d fails CRC (corruption, not a torn tail) — refusing to replay", path, off)
				}
			}
			if tornAt < 0 {
				rec, err := decodeWALRecord(buf[off+walHeaderLen : off+walHeaderLen+n])
				if err != nil {
					return 0, fmt.Errorf("ingest: %s: record at offset %d: %v", path, off, err)
				}
				if err := fn(rec); err != nil {
					return 0, err
				}
				off += walHeaderLen + n
				continue
			}
		}
		if !final {
			return 0, fmt.Errorf("ingest: %s: truncated record at offset %d in a non-final WAL segment", path, tornAt)
		}
		if err := os.Truncate(path, int64(tornAt)); err != nil {
			return 0, fmt.Errorf("ingest: truncating torn WAL tail: %v", err)
		}
		return int64(tornAt), nil
	}
	return int64(len(buf)), nil
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	if len(payload) < 16 {
		return walRecord{}, fmt.Errorf("payload too short (%d bytes)", len(payload))
	}
	count := int(binary.LittleEndian.Uint32(payload[0:]))
	dim := int(binary.LittleEndian.Uint32(payload[4:]))
	firstID := int64(binary.LittleEndian.Uint64(payload[8:]))
	if dim <= 0 || count <= 0 || len(payload) != 16+count*dim*8 {
		return walRecord{}, fmt.Errorf("inconsistent record shape (count=%d dim=%d bytes=%d)", count, dim, len(payload))
	}
	coords := make([]float64, count*dim)
	for i := range coords {
		coords[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[16+i*8:]))
	}
	return walRecord{firstID: firstID, dim: dim, coords: coords}, nil
}
