package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
)

// Compact promotes the delta segment into a new versioned base artifact
// and swaps it in. The protocol keeps queries available and base answers
// bit-identical throughout:
//
//  1. Snapshot boundary (under ingestMu, briefly): roll the WAL and copy
//     the delta prefix plus the folded rho mass. Every copied point's WAL
//     record now lives in a segment older than the active one.
//  2. Build (lock-free, the expensive part): merge base + snapshot into a
//     new model — base rows keep their indices and coordinates, rho gains
//     the folded mass, delta points append as new rows with their ingest
//     IDs — and index it at the configured precision. Queries keep
//     flowing against the old state.
//  3. Persist: write model-%06d.ddpm atomically, then flip CURRENT to it.
//     A crash before the CURRENT flip replays everything into the old
//     base; after it, only the rolled-forward tail replays on the new.
//  4. Swap (under mu, briefly): install the engine, drop the promoted
//     delta prefix, and re-base rhoAdd — mass that arrived after the
//     snapshot survives as residuals on the new rows.
//  5. GC: delete WAL segments and artifacts CURRENT no longer references.
//
// Implements serve.IngestBackend.
func (st *Store) Compact() (serve.IngestInfo, error) {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	start := time.Now()

	// 1. Snapshot boundary.
	st.ingestMu.Lock()
	st.mu.RLock()
	promoted := len(st.dIDs)
	if promoted == 0 {
		info := st.infoLocked()
		st.mu.RUnlock()
		st.ingestMu.Unlock()
		return info, nil
	}
	base := st.eng.Model()
	dim := base.Dim
	coords := append([]float64(nil), st.dCoords[:promoted*dim]...)
	ids := append([]int32(nil), st.dIDs[:promoted]...)
	labels := append([]int32(nil), st.dLabels[:promoted]...)
	rho := append([]float64(nil), st.dRho[:promoted]...)
	add := append([]float64(nil), st.rhoAdd...)
	version := st.version
	// No writer is mid-flight (we hold ingestMu), so the snapshot covers
	// the whole delta and nextID is exactly the boundary the rolled-to
	// segment starts at.
	boundNextID := st.nextID
	st.mu.RUnlock()
	if err := st.wal.roll(); err != nil {
		st.ingestMu.Unlock()
		st.counters.Add(CtrCompactFail, 1)
		return serve.IngestInfo{}, fmt.Errorf("ingest: rolling WAL: %v", err)
	}
	newSeq := st.wal.seq
	st.ingestMu.Unlock()

	// 2. Build, off-lock.
	merged := mergeModel(base, coords, ids, labels, rho, add)
	eng, err := serve.NewEngine(merged, st.prec)
	if err != nil {
		st.counters.Add(CtrCompactFail, 1)
		return serve.IngestInfo{}, fmt.Errorf("ingest: indexing merged model: %v", err)
	}

	// 3. Persist artifact, then flip CURRENT.
	artifact := fmt.Sprintf("model-%06d.ddpm", version+1)
	if err := merged.WriteFile(filepath.Join(st.cfg.Dir, artifact)); err != nil {
		st.counters.Add(CtrCompactFail, 1)
		return serve.IngestInfo{}, fmt.Errorf("ingest: writing artifact: %v", err)
	}
	cur := current{Version: version + 1, Artifact: artifact, WALSeq: newSeq, NextID: boundNextID}
	if err := writeCurrent(st.cfg.Dir, cur); err != nil {
		st.counters.Add(CtrCompactFail, 1)
		return serve.IngestInfo{}, fmt.Errorf("ingest: flipping CURRENT: %v", err)
	}

	// 4. Swap.
	st.mu.Lock()
	st.eng = eng
	st.version = version + 1
	st.walSeq = newSeq
	st.lastBaseN = base.N()
	st.lastPromoted = promoted
	newAdd := make([]float64, merged.N())
	for i := 0; i < base.N(); i++ {
		newAdd[i] = st.rhoAdd[i] - add[i] // mass folded after the snapshot
	}
	for j := 0; j < promoted; j++ {
		newAdd[base.N()+j] = st.dRho[j] - rho[j]
	}
	st.rhoAdd = newAdd
	st.dCoords = append([]float64(nil), st.dCoords[promoted*dim:]...)
	st.dIDs = append([]int32(nil), st.dIDs[promoted:]...)
	st.dLabels = append([]int32(nil), st.dLabels[promoted:]...)
	st.dRho = append([]float64(nil), st.dRho[promoted:]...)
	st.compactions++
	info := st.infoLocked()
	st.mu.Unlock()
	if st.cfg.OnSwap != nil {
		st.cfg.OnSwap(eng)
	}

	// 5. GC.
	st.gc()

	st.counters.Add(CtrCompactRuns, 1)
	st.counters.Add(CtrCompactPoints, int64(promoted))
	st.counters.Add(CtrCompactUS, time.Since(start).Microseconds())
	st.logf("ingest: compacted %d points into %s (base %d rows, version %d, %v)",
		promoted, artifact, merged.N(), version+1, time.Since(start).Round(time.Millisecond))
	return info, nil
}

// mergeModel builds the compacted model: base rows first (indices, data,
// labels, peaks, borders unchanged; rho gains the folded delta mass), the
// promoted delta appended after them. Delta IDs were assigned monotonically
// above every base ID, so the RowIDs invariant (strictly ascending) holds
// and NN ties keep resolving to the base winner.
func mergeModel(base *model.Model, coords []float64, ids, labels []int32, rho, add []float64) *model.Model {
	n, p := base.N(), len(ids)
	m := &model.Model{
		Name: base.Name, Dim: base.Dim, Dc: base.Dc, LSH: base.LSH,
		Data:   append(append(make([]float64, 0, len(base.Data)+len(coords)), base.Data...), coords...),
		Rho:    make([]float64, 0, n+p),
		Labels: append(append(make([]int32, 0, n+p), base.Labels...), labels...),
		Peaks:  append([]int32(nil), base.Peaks...),
		Border: append([]float64(nil), base.Border...),
	}
	for i, r := range base.Rho {
		m.Rho = append(m.Rho, r+add[i])
	}
	m.Rho = append(m.Rho, rho...)
	identity := len(base.RowIDs) == 0
	if identity {
		for j, id := range ids {
			if int64(id) != int64(n+j) {
				identity = false
				break
			}
		}
	}
	if !identity {
		rid := make([]int32, 0, n+p)
		if len(base.RowIDs) > 0 {
			rid = append(rid, base.RowIDs...)
		} else {
			for i := 0; i < n; i++ {
				rid = append(rid, int32(i))
			}
		}
		m.RowIDs = append(rid, ids...)
	}
	if len(base.Data32) > 0 || len(base.Q8Codes) > 0 {
		m.BuildCompact()
	}
	return m
}

// gc removes WAL segments below the live boundary and artifacts CURRENT
// no longer points at, then refreshes the live-byte gauge. Failures are
// logged, not fatal — stale files are re-collected on the next pass.
func (st *Store) gc() {
	st.mu.RLock()
	walSeq, version := st.walSeq, st.version
	st.mu.RUnlock()
	seqs, err := walSegments(st.cfg.Dir)
	if err != nil {
		st.logf("ingest: gc: %v", err)
		return
	}
	var live int64
	for _, seq := range seqs {
		path := walPath(st.cfg.Dir, seq)
		if seq < walSeq {
			if err := os.Remove(path); err != nil {
				st.logf("ingest: gc: %v", err)
			}
			continue
		}
		if fi, err := os.Stat(path); err == nil {
			live += fi.Size()
		}
	}
	st.walBytes.Store(live)
	keep := fmt.Sprintf("model-%06d.ddpm", version)
	ents, err := os.ReadDir(st.cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "model-") && strings.HasSuffix(name, ".ddpm") && name != keep {
			if err := os.Remove(filepath.Join(st.cfg.Dir, name)); err != nil {
				st.logf("ingest: gc: %v", err)
			}
		}
	}
}
