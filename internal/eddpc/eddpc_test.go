package eddpc

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

func testEngine() mapreduce.Engine { return &mapreduce.LocalEngine{Parallelism: 4} }

func TestEDDPCMatchesSequentialDP(t *testing.T) {
	for _, tc := range []struct {
		name   string
		ds     *points.Dataset
		pivots int
	}{
		{"blobs-few-pivots", dataset.Blobs("eddpc-a", 500, 3, 4, 100, 4, 7), 8},
		{"blobs-many-pivots", dataset.Blobs("eddpc-b", 500, 3, 4, 100, 4, 7), 40},
		{"highdim", dataset.BigCross(400, 11), 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dc := dp.CutoffByPercentile(tc.ds, 0.02, 1)
			ref, err := dp.Compute(tc.ds, dc, dp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), tc.ds, Config{
				Config: core.Config{Engine: testEngine(), Dc: dc, Seed: 3},
				Pivots: tc.pivots,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Rho {
				if res.Rho[i] != ref.Rho[i] {
					t.Fatalf("rho[%d] = %v, want %v", i, res.Rho[i], ref.Rho[i])
				}
				if math.Abs(res.Delta[i]-ref.Delta[i]) > 1e-9 {
					t.Fatalf("delta[%d] = %v, want %v (upslope %d vs %d)",
						i, res.Delta[i], ref.Delta[i], res.Upslope[i], ref.Upslope[i])
				}
			}
		})
	}
}

func TestEDDPCFewerDistancesThanBasic(t *testing.T) {
	ds := dataset.Blobs("eddpc-cost", 3000, 4, 6, 200, 3, 19)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	basic, err := core.RunBasicDDP(context.Background(), ds, core.BasicConfig{
		Config:    core.Config{Engine: testEngine(), Dc: dc},
		BlockSize: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := Run(context.Background(), ds, Config{
		Config: core.Config{Engine: testEngine(), Dc: dc, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ed.Stats.DistanceComputations >= basic.Stats.DistanceComputations {
		t.Fatalf("EDDPC distances %d not below Basic-DDP %d",
			ed.Stats.DistanceComputations, basic.Stats.DistanceComputations)
	}
	if ed.Stats.ShuffleBytes >= basic.Stats.ShuffleBytes {
		t.Fatalf("EDDPC shuffle %d not below Basic-DDP %d",
			ed.Stats.ShuffleBytes, basic.Stats.ShuffleBytes)
	}
}

func TestEDDPCDeterministic(t *testing.T) {
	ds := dataset.Blobs("eddpc-det", 400, 3, 3, 80, 3, 29)
	cfg := Config{Config: core.Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 5}}
	a, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rho {
		if a.Rho[i] != b.Rho[i] || a.Delta[i] != b.Delta[i] || a.Upslope[i] != b.Upslope[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestPivotCodecRoundTrip(t *testing.T) {
	pv := []points.Vector{{1, 2, 3}, {-4.5, 0, 9.25}, {0, 0, 0}}
	got, err := decodePivots(encodePivots(pv))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pv) {
		t.Fatalf("decoded %d pivots, want %d", len(got), len(pv))
	}
	for i := range pv {
		for j := range pv[i] {
			if got[i][j] != pv[i][j] {
				t.Fatalf("pivot[%d][%d] = %v, want %v", i, j, got[i][j], pv[i][j])
			}
		}
	}
}

func TestBisectorBoundIsLowerBound(t *testing.T) {
	// For random points and pivots, bound(p, c) must never exceed the true
	// distance from p to any point whose home cell is c.
	ds := dataset.Blobs("eddpc-bound", 300, 3, 3, 50, 5, 41)
	pivots := samplePivots(ds, 10, 7)
	conf := mapreduce.Conf{confPivots: encodePivots(pivots)}
	a, err := newAssigner(conf)
	if err != nil {
		t.Fatal(err)
	}
	var nd int64
	asg := make([]cellAssignment, ds.N())
	for i, p := range ds.Points {
		asg[i] = a.assign(p.Pos, &nd)
	}
	for i := 0; i < ds.N(); i += 7 {
		for j := 0; j < ds.N(); j += 5 {
			if i == j {
				continue
			}
			cj := asg[j].home
			if cj == asg[i].home {
				continue
			}
			bound := asg[i].bounds[cj]
			d := points.Dist(ds.Points[i].Pos, ds.Points[j].Pos)
			if bound > d+1e-9 {
				t.Fatalf("bound(%d, cell %d) = %v exceeds distance %v to member %d", i, cj, bound, d, j)
			}
		}
	}
}

// TestEDDPCScanPrecision: the compact f32 reducer path must reproduce the
// exact pipeline bit-for-bit (EDDPC is exact, so any drift is a bug), and
// the serving-only q8 knob must be rejected.
func TestEDDPCScanPrecision(t *testing.T) {
	ds := dataset.Blobs("eddpc-scan", 600, 3, 4, 100, 3.5, 23)
	base, err := Run(context.Background(), ds, Config{
		Config: core.Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	f32, err := Run(context.Background(), ds, Config{
		Config: core.Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 5, ScanPrecision: "f32"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Rho {
		if f32.Rho[i] != base.Rho[i] || f32.Delta[i] != base.Delta[i] || f32.Upslope[i] != base.Upslope[i] {
			t.Fatalf("f32 scan diverged at %d: rho %v/%v delta %v/%v up %d/%d", i,
				f32.Rho[i], base.Rho[i], f32.Delta[i], base.Delta[i], f32.Upslope[i], base.Upslope[i])
		}
	}
	if _, err := Run(context.Background(), ds, Config{
		Config: core.Config{Engine: testEngine(), ScanPrecision: "q8"},
	}); err == nil {
		t.Error("eddpc accepted serving-only precision q8")
	}
}
