// Package eddpc implements an exact Voronoi-partitioned distributed
// Density Peaks algorithm in the style of EDDPC (Gong & Zhang, the
// "state-of-the-art" comparator of the paper's Table IV). The reproduced
// paper treats EDDPC as a closed-source competitor; this package is our
// own implementation of its algorithmic idea so the Table IV comparison
// runs against a real exact baseline:
//
//   - the space is partitioned by a set of pivots (Voronoi cells);
//   - ρ is computed exactly in ONE job by replicating every point into
//     each cell whose bisector-plane lower bound lies within d_c — the
//     "replication/filtering" that lets EDDPC avoid Basic-DDP's all-pairs
//     shuffle;
//   - δ is computed exactly in two jobs: a local pass inside the home cell
//     produces an upper bound δ_ub per point, then each point is sent only
//     to the cells whose lower bound is below its δ_ub, pruning almost all
//     distance work for points whose upslope neighbour is nearby.
//
// Unlike LSH-DDP the results are exact (they match internal/dp
// bit-for-bit); the price is pivot-distance computations and replication
// shuffle, which is the trade-off Table IV reports.
package eddpc

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

// Config tunes the EDDPC run.
type Config struct {
	core.Config
	// Pivots is the number of Voronoi cells; <=0 chooses max(8, N/500),
	// matching Basic-DDP's default block granularity.
	Pivots int
}

func (c *Config) pivots(n int) int {
	if c.Pivots > 0 {
		return c.Pivots
	}
	p := n / 500
	if p < 8 {
		p = 8
	}
	if p > n {
		p = n
	}
	return p
}

// Job names for the rpcmr registry.
const (
	JobRho      = "eddpc-rho"
	JobDeltaLoc = "eddpc-delta-local"
	JobDeltaRef = "eddpc-delta-refine"
	JobDeltaAgg = "eddpc-delta-agg"
)

const (
	confDc           = "eddpc.dc"
	confPivots       = "eddpc.pivots"
	confParThreshold = "eddpc.parallel.threshold"
	confParWorkers   = "eddpc.parallel.workers"
)

// scanF32FromConf reports whether reducers should run the compact f32 scan
// path (mr.scan.precision, validated at Run entry).
func scanF32FromConf(conf mapreduce.Conf) bool {
	return conf[kernels.ConfScanPrecision] == kernels.ScanF32
}

// parallelFromConf rebuilds the intra-partition parallelism knobs carried
// in cfg.Config (core.Config) — the zero value keeps the serial kernels.
func parallelFromConf(conf mapreduce.Conf) kernels.Parallel {
	return kernels.Parallel{
		Threshold: conf.GetInt(confParThreshold, 0),
		Workers:   conf.GetInt(confParWorkers, 0),
	}
}

// Run executes the EDDPC pipeline as one job DAG and returns exact DP
// results. The δ-local and refinement branches feed the final aggregation
// as two inputs of one node (concatenated in declaration order), exactly
// like the hand-sequenced pipeline appended their outputs.
func Run(ctx context.Context, ds *points.Dataset, cfg Config) (*core.Result, error) {
	start := time.Now()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.N() < 2 {
		return nil, fmt.Errorf("eddpc: need at least 2 points, have %d", ds.N())
	}
	if !kernels.ValidScanPrecision(cfg.ScanPrecision) {
		return nil, fmt.Errorf("eddpc: unknown ScanPrecision %q (reducers support \"\", %q, %q)",
			cfg.ScanPrecision, kernels.ScanF64, kernels.ScanF32)
	}
	sess := cfg.DagSession()
	mark := core.MarkRunner(sess.Runner())
	traceMark := len(sess.Traces())
	dagBefore := sess.Counters()
	input := sess.Stage("points", core.InputPairs(ds))

	dc, err := core.ChooseDc(ctx, sess, ds, &cfg.Config, input)
	if err != nil {
		return nil, err
	}

	pivots := samplePivots(ds, cfg.pivots(ds.N()), cfg.Seed)
	conf := mapreduce.Conf{}
	conf.SetFloat(confDc, dc)
	conf[confPivots] = encodePivots(pivots)
	conf.SetInt(confParThreshold, cfg.ParallelThreshold)
	conf.SetInt(confParWorkers, cfg.ParallelWorkers)
	if cfg.ScanPrecision != "" {
		conf[kernels.ConfScanPrecision] = cfg.ScanPrecision
	}

	g := dag.NewGraph("eddpc")
	// Node 1: exact ρ via boundary replication. No aggregation needed:
	// each point's home cell sees every d_c-neighbour.
	rhoOut := g.Job(RhoJob(conf).WithReduces(cfg.NumReduces), input)
	rhoPts := g.Transform("eddpc-rho-points", func(in ...[]mapreduce.Pair) ([]mapreduce.Pair, error) {
		rho, err := core.DecodeRhoArray(in[0], ds.N())
		if err != nil {
			return nil, err
		}
		return core.RhoPointPairs(ds, rho), nil
	}, rhoOut)
	// Node 2: local δ upper bounds inside home cells.
	locOut := g.Job(DeltaLocalJob(conf).WithReduces(cfg.NumReduces), rhoPts)
	// Node 3: refinement — each point visits only cells that could hold a
	// closer denser point, bounded by its local δ_ub.
	refQueries := g.Transform("eddpc-refine-queries", func(in ...[]mapreduce.Pair) ([]mapreduce.Pair, error) {
		rho, err := core.DecodeRhoArray(in[0], ds.N())
		if err != nil {
			return nil, err
		}
		ub, ubUp, err := core.DecodeDeltaArrays(in[1], ds.N())
		if err != nil {
			return nil, err
		}
		refIn := make([]mapreduce.Pair, ds.N())
		for i, p := range ds.Points {
			refIn[i] = mapreduce.Pair{Value: encodeQuery(points.RhoPoint{Point: p, Rho: rho[i]}, ub[i], ubUp[i])}
		}
		return refIn, nil
	}, rhoOut, locOut)
	refOut := g.Job(DeltaRefineJob(conf).WithReduces(cfg.NumReduces), refQueries)
	// Node 4: aggregate local bounds and refinement candidates.
	aggOut := g.Job(core.DeltaAggJob(JobDeltaAgg, mapreduce.Conf{}).WithReduces(cfg.NumReduces), locOut, refOut)

	outs, err := sess.Run(ctx, g, rhoOut, aggOut)
	if err != nil {
		return nil, err
	}
	rho, err := core.DecodeRhoArray(outs[0], ds.N())
	if err != nil {
		return nil, err
	}
	delta, upslope, err := core.DecodeDeltaArrays(outs[1], ds.N())
	if err != nil {
		return nil, err
	}

	// The absolute density peak has no denser point anywhere; its exact
	// δ = max_j d_ij is resolved centrally (O(N) distances, counted below).
	peakDists, err := resolveAbsolutePeak(ds, rho, delta, upslope)
	if err != nil {
		return nil, err
	}

	res := &core.Result{Rho: rho, Delta: delta, Upslope: upslope}
	res.Stats.Dc = dc
	core.CollectStats(&res.Stats, sess.Runner(), mark, start)
	core.CollectDagStats(&res.Stats, sess, traceMark, dagBefore)
	res.Stats.DistanceComputations += peakDists
	return res, nil
}

// samplePivots draws p distinct points as Voronoi pivots.
func samplePivots(ds *points.Dataset, p int, seed int64) []points.Vector {
	rng := points.NewRand(seed + 1000003)
	perm := rng.Perm(ds.N())
	pivots := make([]points.Vector, p)
	for i := 0; i < p; i++ {
		pivots[i] = ds.Points[perm[i]].Pos
	}
	return pivots
}

// encodePivots serializes pivots for Conf transport (base64 over the
// binary point codec) so distributed workers receive identical cells.
func encodePivots(pv []points.Vector) string {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pv)))
	for i, v := range pv {
		buf = points.AppendPoint(buf, points.Point{ID: int32(i), Pos: v})
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func decodePivots(s string) ([]points.Vector, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("eddpc: bad pivot encoding: %w", err)
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("eddpc: short pivot blob")
	}
	n := int(binary.LittleEndian.Uint32(raw))
	raw = raw[4:]
	pv := make([]points.Vector, n)
	for i := 0; i < n; i++ {
		p, rest, err := points.DecodePoint(raw)
		if err != nil {
			return nil, err
		}
		pv[i] = p.Pos
		raw = rest
	}
	return pv, nil
}

// cellAssignment computes, for one point, its home cell, the distances to
// all pivots, and the bisector lower bound to every other cell:
//
//	bound(p, j) = (d(p, pv_j)² − d(p, pv_home)²) / (2 · d(pv_home, pv_j))
//
// which lower-bounds the distance from p to any point of cell j.
type cellAssignment struct {
	home   int
	bounds []float64 // lower bound to each cell; 0 for home
}

// assigner caches pivot geometry (pairwise pivot distances) per task.
type assigner struct {
	pivots []points.Vector
	pdist  [][]float64
}

func newAssigner(conf mapreduce.Conf) (*assigner, error) {
	pv, err := decodePivots(conf[confPivots])
	if err != nil {
		return nil, err
	}
	a := &assigner{pivots: pv, pdist: make([][]float64, len(pv))}
	for i := range pv {
		a.pdist[i] = make([]float64, len(pv))
	}
	for i := range pv {
		for j := i + 1; j < len(pv); j++ {
			d := points.Dist(pv[i], pv[j])
			a.pdist[i][j], a.pdist[j][i] = d, d
		}
	}
	return a, nil
}

// assign computes the assignment for pos, adding len(pivots) to the
// distance counter.
func (a *assigner) assign(pos points.Vector, nd *int64) cellAssignment {
	k := len(a.pivots)
	d2 := make([]float64, k)
	home := 0
	for c := 0; c < k; c++ {
		d2[c] = points.SqDist(pos, a.pivots[c])
		if d2[c] < d2[home] {
			home = c
		}
	}
	*nd += int64(k)
	bounds := make([]float64, k)
	for c := 0; c < k; c++ {
		if c == home {
			continue
		}
		sep := a.pdist[home][c]
		if sep == 0 {
			bounds[c] = 0
			continue
		}
		b := (d2[c] - d2[home]) / (2 * sep)
		if b < 0 {
			b = 0
		}
		bounds[c] = b
	}
	return cellAssignment{home: home, bounds: bounds}
}
