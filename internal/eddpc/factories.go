package eddpc

import (
	"repro/internal/core"
	"repro/internal/mapreduce"
)

// JobFactories returns registry entries for the EDDPC jobs, for use with
// rpcmr.RegisterJobs on distributed workers.
func JobFactories() map[string]func(mapreduce.Conf) *mapreduce.Job {
	return map[string]func(mapreduce.Conf) *mapreduce.Job{
		JobRho:      RhoJob,
		JobDeltaLoc: DeltaLocalJob,
		JobDeltaRef: DeltaRefineJob,
		JobDeltaAgg: func(conf mapreduce.Conf) *mapreduce.Job {
			return core.DeltaAggJob(JobDeltaAgg, conf)
		},
	}
}
