package eddpc_test

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/eddpc"
	"repro/internal/mapreduce"
)

// EDDPC is exact: its results match sequential DP bit-for-bit while
// pruning most distance work with Voronoi filtering.
func ExampleRun() {
	ds := dataset.Blobs("eddpc-demo", 400, 3, 3, 200, 3, 11)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)

	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		panic(err)
	}
	res, err := eddpc.Run(context.Background(), ds, eddpc.Config{
		Config: core.Config{Engine: &mapreduce.LocalEngine{Parallelism: 2}, Dc: dc, Seed: 2},
		Pivots: 10,
	})
	if err != nil {
		panic(err)
	}
	same := true
	for i := range exact.Rho {
		if res.Rho[i] != exact.Rho[i] || math.Abs(res.Delta[i]-exact.Delta[i]) > 1e-9 {
			same = false
		}
	}
	naive := int64(ds.N()) * int64(ds.N()-1) // two exact all-pairs jobs
	fmt.Println("matches sequential DP:", same)
	fmt.Println("saved distance work vs Basic-DDP:", res.Stats.DistanceComputations < naive)
	// Output:
	// matches sequential DP: true
	// saved distance work vs Basic-DDP: true
}
