package eddpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"sync"

	"repro/internal/dp"
	"repro/internal/kernels"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

// assignerCache avoids recomputing pivot geometry per task; keyed by the
// encoded pivot string (tasks of one job share it).
var assignerCache sync.Map // string -> *assigner

func assignerFromConf(conf mapreduce.Conf) (*assigner, error) {
	key := conf[confPivots]
	if v, ok := assignerCache.Load(key); ok {
		return v.(*assigner), nil
	}
	a, err := newAssigner(conf)
	if err != nil {
		return nil, err
	}
	assignerCache.Store(key, a)
	return a, nil
}

const (
	tagHome    byte = 1
	tagVisitor byte = 0
	tagData    byte = 2
	tagQuery   byte = 3
)

func tagged(tag byte, payload []byte) []byte {
	return append([]byte{tag}, payload...)
}

func untag(v []byte) (byte, []byte, error) {
	if len(v) < 1 {
		return 0, nil, fmt.Errorf("eddpc: empty tagged value")
	}
	return v[0], v[1:], nil
}

// decodeTaggedGroup batch-decodes a tag-dispatched reducer group of point
// records into m, rows carrying firstTag first and the rest after, so the
// pairwise kernels see the home range [0, nFirst) and the visitor range
// [nFirst, N()). Returns the number of first-tag rows.
func decodeTaggedGroup(m *points.Matrix, values [][]byte, firstTag byte) (nFirst int, err error) {
	for pass := 0; pass < 2; pass++ {
		for _, v := range values {
			tag, payload, err := untag(v)
			if err != nil {
				return 0, err
			}
			if (tag == firstTag) != (pass == 0) {
				continue
			}
			rest, err := m.AppendPoint(payload)
			if err != nil {
				return 0, err
			}
			if len(rest) != 0 {
				return 0, fmt.Errorf("eddpc: %d trailing bytes after point", len(rest))
			}
		}
		if pass == 0 {
			nFirst = m.N()
		}
	}
	return nFirst, nil
}

// RhoJob computes exact ρ in a single job. Map assigns each point to its
// home Voronoi cell and replicates it into every cell whose bisector lower
// bound is within d_c; the reducer counts, for each home point, its
// d_c-neighbours among home points and visitors. Every d_c-neighbour of a
// home point is guaranteed present (the bound never exceeds the true
// point-to-cell distance), so no aggregation job is needed.
func RhoJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobRho,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			a, err := assignerFromConf(ctx.Conf)
			if err != nil {
				return err
			}
			dc := ctx.Conf.GetFloat(confDc, 0)
			p, _, err := points.DecodePoint(value)
			if err != nil {
				return err
			}
			var nd int64
			asg := a.assign(p.Pos, &nd)
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			out.Emit(strconv.Itoa(asg.home), tagged(tagHome, value))
			for c, b := range asg.bounds {
				if c != asg.home && b < dc {
					out.Emit(strconv.Itoa(c), tagged(tagVisitor, value))
				}
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
			dc := ctx.Conf.GetFloat(confDc, 0)
			kern := kernels.Kernel{Dc2: dc * dc}
			par := parallelFromConf(ctx.Conf)
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			nHome, err := decodeTaggedGroup(m, values, tagHome)
			if err != nil {
				return err
			}
			n := m.N()
			if par.Enabled(n) {
				ctx.Counters.Cell(mapreduce.CtrParallelGroups).Add(1)
			}
			// Home-home pairs count both sides; home-visitor pairs count the
			// home side only (the visitor's own cell owns its count). The
			// cutoff counts are integer sums, so splitting the interleaved
			// scalar loop into the two kernel passes is exact.
			rho := make([]float64, n)
			var nd int64
			if scanF32FromConf(ctx.Conf) && !par.Enabled(n) {
				c := points.GetMatrix32(m)
				defer points.PutMatrix32(c)
				p1, r1 := kernels.RhoAccumulate32(m, c, 0, nHome, kern, rho)
				p2, r2 := kernels.RhoCross32(m, c, 0, nHome, nHome, n, kern, rho, false)
				nd = p1 + p2
				ctx.Counters.Cell(mapreduce.CtrCompactEvals).Add(nd)
				ctx.Counters.Cell(mapreduce.CtrCompactRechecks).Add(r1 + r2)
			} else {
				nd = kernels.RhoAccumulateAuto(m, 0, nHome, kern, rho, par)
				nd += kernels.RhoCross(m, 0, nHome, nHome, n, kern, rho, false)
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for i := 0; i < nHome; i++ {
				id := m.ID(i)
				out.Emit(idKey(id), points.EncodeRhoValue(points.RhoValue{ID: id, Rho: rho[i]}))
			}
			return nil
		},
	}
}

// DeltaLocalJob computes, inside each home cell, the upper bound
// δ_ub = min distance to a denser home point; a locally densest point gets
// δ_ub = +∞ (its refinement pass will visit every cell).
func DeltaLocalJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobDeltaLoc,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			a, err := assignerFromConf(ctx.Conf)
			if err != nil {
				return err
			}
			rp, _, err := points.DecodeRhoPoint(value)
			if err != nil {
				return err
			}
			var nd int64
			asg := a.assign(rp.Pos, &nd)
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			out.Emit(strconv.Itoa(asg.home), value)
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
			par := parallelFromConf(ctx.Conf)
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			if err := points.DecodeRhoPointsInto(m, values); err != nil {
				return err
			}
			if par.Enabled(m.N()) {
				ctx.Counters.Cell(mapreduce.CtrParallelGroups).Add(1)
			}
			acc := kernels.NewDeltaAcc(m.N(), false)
			var nd int64
			if scanF32FromConf(ctx.Conf) && !par.Enabled(m.N()) {
				c := points.GetMatrix32(m)
				defer points.PutMatrix32(c)
				var band kernels.DeltaBand
				band.Reset(acc, kernels.F32Bounds(m.Dim(), c.MaxAbs()))
				var rechecks int64
				nd, rechecks = kernels.DeltaArgmin32(m, c, 0, m.N(), acc, &band)
				ctx.Counters.Cell(mapreduce.CtrCompactEvals).Add(nd)
				ctx.Counters.Cell(mapreduce.CtrCompactRechecks).Add(rechecks)
			} else {
				nd = kernels.DeltaArgminAuto(m, 0, m.N(), acc, par)
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for i := 0; i < m.N(); i++ {
				id := m.ID(i)
				dv := points.DeltaValue{ID: id, Delta: math.Inf(1), Upslope: -1}
				if acc.Up[i] >= 0 {
					dv.Delta = math.Sqrt(acc.Best2[i])
					dv.Upslope = m.ID(int(acc.Up[i]))
				}
				out.Emit(idKey(id), points.EncodeDeltaValue(dv))
			}
			return nil
		},
	}
}

// query record: RhoPoint | float64 ub | int32 ubUpslope.
func encodeQuery(rp points.RhoPoint, ub float64, ubUp int32) []byte {
	buf := points.AppendRhoPoint(nil, rp)
	buf = points.AppendFloat64(buf, ub)
	return binary.LittleEndian.AppendUint32(buf, uint32(ubUp))
}

func decodeQuery(v []byte) (points.RhoPoint, float64, int32, error) {
	rp, rest, err := points.DecodeRhoPoint(v)
	if err != nil {
		return points.RhoPoint{}, 0, 0, err
	}
	if len(rest) != 12 {
		return points.RhoPoint{}, 0, 0, fmt.Errorf("eddpc: query tail is %d bytes, want 12", len(rest))
	}
	ub := points.DecodeFloat64(rest)
	up := int32(binary.LittleEndian.Uint32(rest[8:]))
	return rp, ub, up, nil
}

// DeltaRefineJob finalizes δ. Map sends every point as "data" to its home
// cell, and as a "query" (carrying its δ_ub) to every OTHER cell whose
// bisector lower bound is under δ_ub — the EDDPC-style filter that skips
// cells which provably cannot improve the bound. The reducer answers each
// query with the nearest denser home point closer than the query's bound,
// if any.
func DeltaRefineJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobDeltaRef,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			a, err := assignerFromConf(ctx.Conf)
			if err != nil {
				return err
			}
			rp, ub, _, err := decodeQuery(value)
			if err != nil {
				return err
			}
			var nd int64
			asg := a.assign(rp.Pos, &nd)
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			out.Emit(strconv.Itoa(asg.home), tagged(tagData, points.EncodeRhoPoint(rp)))
			for c, b := range asg.bounds {
				if c != asg.home && b < ub {
					out.Emit(strconv.Itoa(c), tagged(tagQuery, value))
				}
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
			// Home points land in one SoA matrix; queries keep their scalar
			// decode (they carry the δ_ub tail and are scanned once each).
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			type query struct {
				rp points.RhoPoint
				ub float64
			}
			var queries []query
			for _, v := range values {
				tag, payload, err := untag(v)
				if err != nil {
					return err
				}
				switch tag {
				case tagData:
					rest, err := m.AppendRhoPoint(payload)
					if err != nil {
						return err
					}
					if len(rest) != 0 {
						return fmt.Errorf("eddpc: %d trailing bytes after data point", len(rest))
					}
				case tagQuery:
					rp, ub, _, err := decodeQuery(payload)
					if err != nil {
						return err
					}
					queries = append(queries, query{rp: rp, ub: ub})
				default:
					return fmt.Errorf("eddpc: unknown tag %d", tag)
				}
			}
			rhos, ids := m.Rhos(), m.IDs()
			var nd int64
			for _, q := range queries {
				best2 := q.ub * q.ub
				if math.IsInf(q.ub, 1) {
					best2 = math.Inf(1)
				}
				var bestUp int32 = -1
				for di := 0; di < m.N(); di++ {
					if !dp.DenserVals(rhos[di], q.rp.Rho, ids[di], q.rp.ID) {
						continue
					}
					d2 := points.SqDist(q.rp.Pos, m.Row(di))
					nd++
					if d2 < best2 {
						best2 = d2
						bestUp = ids[di]
					}
				}
				if bestUp >= 0 {
					out.Emit(idKey(q.rp.ID), points.EncodeDeltaValue(points.DeltaValue{
						ID: q.rp.ID, Delta: math.Sqrt(best2), Upslope: bestUp,
					}))
				}
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			return nil
		},
	}
}

// resolveAbsolutePeak fixes the single remaining +∞ δ — the global density
// peak, for which no denser point exists anywhere — by computing its exact
// max distance centrally. Returns the number of distances evaluated.
func resolveAbsolutePeak(ds *points.Dataset, rho, delta []float64, upslope []int32) (int64, error) {
	peak := -1
	for i, d := range delta {
		if math.IsInf(d, 1) {
			if peak != -1 {
				return 0, fmt.Errorf("eddpc: multiple unresolved peaks (%d and %d); refinement bug", peak, i)
			}
			peak = i
		}
	}
	if peak == -1 {
		return 0, nil // resolved by refinement min already? cannot happen, but harmless
	}
	for i := range rho {
		if i != peak && dp.Denser(rho, int32(i), int32(peak)) {
			return 0, fmt.Errorf("eddpc: unresolved point %d is not the global density peak", peak)
		}
	}
	var max2 float64
	var nd int64
	for j := range ds.Points {
		if j == peak {
			continue
		}
		d2 := points.SqDist(ds.Points[peak].Pos, ds.Points[j].Pos)
		nd++
		if d2 > max2 {
			max2 = d2
		}
	}
	delta[peak] = math.Sqrt(max2)
	upslope[peak] = -1
	return nd, nil
}

func idKey(id int32) string { return fmt.Sprintf("%09d", id) }
