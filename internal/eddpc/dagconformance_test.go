package eddpc

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/points"
)

// Conformance: the DAG-scheduled EDDPC pipeline must match the
// hand-sequenced execution bit for bit on the local engine and on a
// 3-worker rpcmr cluster. The reference replays the pre-scheduler
// sequence — four drv.Run calls with identical confs, the refinement
// input built driver-side between them, and the two aggregation inputs
// concatenated local-then-refined exactly as the old code appended them.

func handSequencedEDDPC(t *testing.T, eng mapreduce.Engine, ds *points.Dataset, cfg Config) (*core.Result, []mapreduce.JobStats) {
	t.Helper()
	ctx := context.Background()
	drv := mapreduce.NewDriver(eng)
	dc := cfg.Dc
	if dc <= 0 {
		t.Fatal("hand-sequenced reference needs a pinned Dc")
	}

	pivots := samplePivots(ds, cfg.pivots(ds.N()), cfg.Seed)
	conf := mapreduce.Conf{}
	conf.SetFloat(confDc, dc)
	conf[confPivots] = encodePivots(pivots)
	conf.SetInt(confParThreshold, cfg.ParallelThreshold)
	conf.SetInt(confParWorkers, cfg.ParallelWorkers)

	rhoRes, err := drv.Run(ctx, RhoJob(conf.Clone()).WithReduces(cfg.NumReduces), core.InputPairs(ds))
	if err != nil {
		t.Fatal(err)
	}
	rho, err := core.DecodeRhoArray(rhoRes.Output, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	locRes, err := drv.Run(ctx, DeltaLocalJob(conf.Clone()).WithReduces(cfg.NumReduces), core.RhoPointPairs(ds, rho))
	if err != nil {
		t.Fatal(err)
	}
	ub, ubUp, err := core.DecodeDeltaArrays(locRes.Output, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	refIn := make([]mapreduce.Pair, ds.N())
	for i, p := range ds.Points {
		refIn[i] = mapreduce.Pair{Value: encodeQuery(points.RhoPoint{Point: p, Rho: rho[i]}, ub[i], ubUp[i])}
	}
	refRes, err := drv.Run(ctx, DeltaRefineJob(conf.Clone()).WithReduces(cfg.NumReduces), refIn)
	if err != nil {
		t.Fatal(err)
	}
	aggRes, err := drv.Run(ctx, core.DeltaAggJob(JobDeltaAgg, mapreduce.Conf{}).WithReduces(cfg.NumReduces),
		append(append([]mapreduce.Pair(nil), locRes.Output...), refRes.Output...))
	if err != nil {
		t.Fatal(err)
	}
	delta, upslope, err := core.DecodeDeltaArrays(aggRes.Output, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resolveAbsolutePeak(ds, rho, delta, upslope); err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Rho: rho, Delta: delta, Upslope: upslope}
	res.Stats.Dc = dc
	return res, drv.Jobs()
}

func requireSameEDDPC(t *testing.T, ds *points.Dataset, got, want *core.Result, gotJobs, wantJobs []mapreduce.JobStats) {
	t.Helper()
	for i := range want.Rho {
		if got.Rho[i] != want.Rho[i] {
			t.Fatalf("rho[%d]: dag %v hand-sequenced %v", i, got.Rho[i], want.Rho[i])
		}
		if got.Delta[i] != want.Delta[i] {
			t.Fatalf("delta[%d]: dag %v hand-sequenced %v", i, got.Delta[i], want.Delta[i])
		}
		if got.Upslope[i] != want.Upslope[i] {
			t.Fatalf("upslope[%d]: dag %v hand-sequenced %v", i, got.Upslope[i], want.Upslope[i])
		}
	}
	_, gotLabels, err := got.Cluster(ds, core.SelectTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	_, wantLabels, err := want.Cluster(ds, core.SelectTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantLabels {
		if gotLabels[i] != wantLabels[i] {
			t.Fatalf("label[%d]: dag %d hand-sequenced %d", i, gotLabels[i], wantLabels[i])
		}
	}
	if len(gotJobs) != len(wantJobs) {
		t.Fatalf("job count: dag %d hand-sequenced %d", len(gotJobs), len(wantJobs))
	}
	for i := range wantJobs {
		if gotJobs[i].Name != wantJobs[i].Name {
			t.Fatalf("job %d: dag %q hand-sequenced %q", i, gotJobs[i].Name, wantJobs[i].Name)
		}
		for _, ctr := range []string{mapreduce.CtrDistanceComputations, mapreduce.CtrShuffleBytes} {
			if g, w := gotJobs[i].Counters[ctr], wantJobs[i].Counters[ctr]; g != w {
				t.Fatalf("job %d (%s) %s: dag %d hand-sequenced %d", i, wantJobs[i].Name, ctr, g, w)
			}
		}
	}
}

func eddpcConformanceConfig(eng mapreduce.Engine, dc float64) Config {
	return Config{Config: core.Config{Engine: eng, Dc: dc, Seed: 9}}
}

func TestDAGConformanceEDDPCLocal(t *testing.T) {
	ds := dataset.Blobs("dag-conf-eddpc", 800, 4, 3, 200, 2, 17)
	eng := &mapreduce.LocalEngine{Parallelism: 4}
	const dc = 45.0

	res, err := Run(context.Background(), ds, eddpcConformanceConfig(eng, dc))
	if err != nil {
		t.Fatal(err)
	}
	want, wantJobs := handSequencedEDDPC(t, eng, ds, eddpcConformanceConfig(eng, dc))
	requireSameEDDPC(t, ds, res, want, res.Stats.Jobs, wantJobs)
}

func TestDAGConformanceEDDPCCluster(t *testing.T) {
	rpcmr.RegisterJobs(JobFactories())
	rpcmr.RegisterJobs(core.JobFactories())
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var workers []*rpcmr.Worker
	for i := 0; i < 3; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	ds := dataset.Blobs("dag-conf-eddpc-rpc", 600, 3, 3, 160, 2, 18)
	const dc = 45.0
	res, err := Run(context.Background(), ds, eddpcConformanceConfig(master, dc))
	if err != nil {
		t.Fatal(err)
	}
	want, wantJobs := handSequencedEDDPC(t, master, ds, eddpcConformanceConfig(master, dc))
	requireSameEDDPC(t, ds, res, want, res.Stats.Jobs, wantJobs)
}
