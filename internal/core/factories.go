package core

import "repro/internal/mapreduce"

// JobFactories returns the registry entries for every job this package
// defines, keyed by job name. Distributed workers install these (via
// rpcmr.RegisterJobs) so the master can ship jobs as (name, conf) pairs.
func JobFactories() map[string]func(mapreduce.Conf) *mapreduce.Job {
	return map[string]func(mapreduce.Conf) *mapreduce.Job{
		JobDcSample: DcSampleJob,
		JobBasicRho: BasicRhoJob,
		JobBasicAgg: func(conf mapreduce.Conf) *mapreduce.Job {
			return RhoAggJob(JobBasicAgg, conf)
		},
		JobBasicDel: BasicDeltaJob,
		JobBasicDAgg: func(conf mapreduce.Conf) *mapreduce.Job {
			return DeltaAggJob(JobBasicDAgg, conf)
		},
		JobLSHRho:    LSHRhoJob,
		JobLSHRhoAgg: LSHRhoAggJob,
		JobLSHDel:    LSHDeltaJob,
		JobLSHDelAgg: func(conf mapreduce.Conf) *mapreduce.Job {
			return DeltaAggJob(JobLSHDelAgg, conf)
		},
	}
}
