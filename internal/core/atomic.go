package core

import "sync/atomic"

// AtomicAdd is a tiny indirection so hot reducer loops (here and in
// sibling algorithm packages) read clearly.
func AtomicAdd(p *int64, delta int64) { atomic.AddInt64(p, delta) }
