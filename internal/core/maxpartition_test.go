package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
)

func TestChunks(t *testing.T) {
	cases := []struct {
		n, cap int
		want   []chunkRange
	}{
		{10, 0, []chunkRange{{0, 10}}},
		{10, 20, []chunkRange{{0, 10}}},
		{10, 4, []chunkRange{{0, 4}, {4, 8}, {8, 10}}},
		{8, 4, []chunkRange{{0, 4}, {4, 8}}},
		{0, 4, []chunkRange{{0, 0}}},
	}
	for _, c := range cases {
		got := chunks(c.n, c.cap)
		if len(got) != len(c.want) {
			t.Fatalf("chunks(%d,%d) = %v, want %v", c.n, c.cap, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("chunks(%d,%d) = %v, want %v", c.n, c.cap, got, c.want)
			}
		}
	}
}

func TestMaxPartitionCapsWork(t *testing.T) {
	ds := dataset.Blobs("cap", 2000, 4, 2, 40, 6, 13) // two big overlapping clusters
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	uncapped, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), Dc: dc, Seed: 3},
		Accuracy: 0.99, M: 8, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), Dc: dc, Seed: 3},
		Accuracy: 0.99, M: 8, Pi: 3,
		MaxPartition: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cap strictly reduces distance work on oversized partitions.
	if capped.Stats.DistanceComputations >= uncapped.Stats.DistanceComputations {
		t.Fatalf("cap did not reduce distances: %d vs %d",
			capped.Stats.DistanceComputations, uncapped.Stats.DistanceComputations)
	}
	// And estimates remain valid underestimates of the truth.
	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Rho {
		if capped.Rho[i] > exact.Rho[i] {
			t.Fatalf("capped rho[%d] = %v exceeds exact %v", i, capped.Rho[i], exact.Rho[i])
		}
		if capped.Rho[i] > uncapped.Rho[i] {
			t.Fatalf("capped rho[%d] = %v exceeds uncapped %v", i, capped.Rho[i], uncapped.Rho[i])
		}
	}
	// Accuracy degrades roughly with the cap/partition ratio (each chunk
	// sees cap−1 of the partition's neighbours), softened by the max over
	// M layouts — a graded trade, not a collapse.
	tau2, err := evalmetrics.Tau2(exact.Rho, capped.Rho)
	if err != nil {
		t.Fatal(err)
	}
	if tau2 < 0.55 {
		t.Fatalf("capped tau2 = %v; accuracy collapsed", tau2)
	}
}

func TestMaxPartitionDeltaStillValid(t *testing.T) {
	// With exact rho pinned (giant width gives one partition, then the cap
	// splits it), capped δ̂ must still never undershoot the exact δ.
	ds := dataset.Blobs("cap-delta", 400, 3, 2, 50, 4, 17)
	dc := dp.CutoffByPercentile(ds, 0.05, 1)
	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:       Config{Engine: testEngine(), Dc: dc, Seed: 9},
		M:            4,
		Pi:           2,
		W:            1e9,
		MaxPartition: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Rho {
		// rho is capped too, so compare deltas only where rho happens to
		// be exact (the valid-domain of the Theorem 2 argument).
		if capped.Rho[i] != exact.Rho[i] {
			continue
		}
		if capped.Delta[i] < exact.Delta[i]-1e-9 {
			t.Fatalf("capped delta[%d] = %v undershoots exact %v", i, capped.Delta[i], exact.Delta[i])
		}
	}
}
