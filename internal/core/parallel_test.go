package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/obs"
)

// parallelGroups sums the dp.parallel.groups counter across a trace's jobs.
func parallelGroups(tr *obs.Trace) int64 {
	var n int64
	for _, j := range tr.Jobs() {
		n += j.Counters["dp.parallel.groups"]
	}
	return n
}

// TestLSHDDPParallelPathMatchesSerial runs the same pinned LSH-DDP
// configuration with the intra-partition parallel path off and on. With the
// cutoff kernel every result — ρ̂, δ̂, upslope, and the distance counter —
// must be bit-identical: parallel ρ merges integer sums and the δ merge
// reproduces the serial first-wins scan.
func TestLSHDDPParallelPathMatchesSerial(t *testing.T) {
	ds := dataset.Blobs("parallel-lsh", 900, 2, 4, 150, 3, 5)
	run := func(threshold, workers int) (*Result, int64) {
		tr := &obs.Trace{}
		cfg := LSHConfig{
			Config: Config{
				Engine: testEngine(), Dc: 2.5, Seed: 11, Trace: tr,
				ParallelThreshold: threshold, ParallelWorkers: workers,
			},
			M: 4, Pi: 2, W: 10,
		}
		res, err := RunLSHDDP(context.Background(), ds, cfg)
		if err != nil {
			t.Fatalf("threshold=%d: %v", threshold, err)
		}
		return res, parallelGroups(tr)
	}

	serial, sg := run(0, 0)
	if sg != 0 {
		t.Fatalf("serial run counted %d parallel groups", sg)
	}
	parallel, pg := run(64, 4)
	if pg == 0 {
		t.Fatal("parallel run engaged no groups; threshold too high for this data set")
	}
	if serial.Stats.DistanceComputations != parallel.Stats.DistanceComputations {
		t.Fatalf("distance computations differ: %d vs %d",
			serial.Stats.DistanceComputations, parallel.Stats.DistanceComputations)
	}
	for i := range serial.Rho {
		if math.Float64bits(serial.Rho[i]) != math.Float64bits(parallel.Rho[i]) {
			t.Fatalf("rho[%d]: serial %v, parallel %v", i, serial.Rho[i], parallel.Rho[i])
		}
		if math.Float64bits(serial.Delta[i]) != math.Float64bits(parallel.Delta[i]) {
			t.Fatalf("delta[%d]: serial %v, parallel %v", i, serial.Delta[i], parallel.Delta[i])
		}
		if serial.Upslope[i] != parallel.Upslope[i] {
			t.Fatalf("upslope[%d]: serial %d, parallel %d", i, serial.Upslope[i], parallel.Upslope[i])
		}
	}
}

// TestBasicDDPParallelPathExact runs Basic-DDP with the parallel path
// engaged and checks it still matches sequential DP exactly, including with
// the Gaussian kernel (whose parallel ρ partials may differ in ulps from
// the serial sum — the aggregation totals must still match the tolerance
// the repo's equivalence tests use everywhere).
func TestBasicDDPParallelPathExact(t *testing.T) {
	ds := dataset.Blobs("parallel-basic", 600, 3, 4, 100, 4, 7)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref := exactReference(t, ds, dc)

	res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config: Config{
			Engine: testEngine(), Dc: dc,
			ParallelThreshold: 100, ParallelWorkers: 3,
		},
		BlockSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rho {
		if res.Rho[i] != ref.Rho[i] {
			t.Fatalf("rho[%d] = %v, want %v", i, res.Rho[i], ref.Rho[i])
		}
		if math.Abs(res.Delta[i]-ref.Delta[i]) > 1e-9 {
			t.Fatalf("delta[%d] = %v, want %v", i, res.Delta[i], ref.Delta[i])
		}
		if res.Upslope[i] != ref.Upslope[i] {
			t.Fatalf("upslope[%d] = %d, want %d", i, res.Upslope[i], ref.Upslope[i])
		}
	}

	gauss, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config: Config{
			Engine: testEngine(), Dc: dc, Kernel: dp.KernelGaussian,
			ParallelThreshold: 100, ParallelWorkers: 3,
		},
		BlockSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	gref, err := dp.Compute(ds, dc, dp.Options{Kernel: dp.KernelGaussian})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gref.Rho {
		if diff := math.Abs(gauss.Rho[i] - gref.Rho[i]); diff > 1e-9*(1+math.Abs(gref.Rho[i])) {
			t.Fatalf("gaussian rho[%d] = %v, want %v", i, gauss.Rho[i], gref.Rho[i])
		}
	}
}
