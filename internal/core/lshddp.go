package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

// LSHConfig configures LSH-DDP.
type LSHConfig struct {
	Config
	// Accuracy is the expected accuracy A of Section V; when W is 0 the
	// runner solves Eq. 5 for the minimal width meeting it. Default 0.99.
	Accuracy float64
	// M is the number of LSH layouts (hash groups). Default 10, the
	// paper's recommended range being [10, 20].
	M int
	// Pi is the number of hash functions per group. Default 3, the
	// paper's recommended range being [3, 10].
	Pi int
	// W pins the hash width; 0 derives it from Accuracy and d_c.
	W float64
	// AggregateMean switches ρ̂ aggregation from the paper's max to a mean
	// (ablation; Theorem 1 justifies max because ρ̂ᵐ ≤ ρ always).
	AggregateMean bool
	// MaxPartition caps the local work of one LSH partition: a reducer
	// group larger than this is processed in contiguous chunks of at most
	// MaxPartition points, and pairs across chunks are skipped. Local
	// estimates remain valid (ρ̂ still undercounts, δ̂ still overshoots),
	// so Theorem 1/2 aggregation is unaffected — this trades accuracy for
	// a hard bound on reducer cost and skew, the failure mode Figure 12
	// observes at small M with large π. 0 disables the cap.
	MaxPartition int
}

func (c *LSHConfig) accuracy() float64 {
	if c.Accuracy > 0 {
		return c.Accuracy
	}
	return 0.99
}

func (c *LSHConfig) m() int {
	if c.M > 0 {
		return c.M
	}
	return 10
}

func (c *LSHConfig) pi() int {
	if c.Pi > 0 {
		return c.Pi
	}
	return 3
}

// RunLSHDDP executes the approximate LSH-DDP pipeline of Section IV as
// one job DAG:
//
//	node 0  d_c sampling (unless cfg.Dc is set)
//	        width solving: minimal w with 1−(1−P_ρ(w,d_c)^π)^M ≥ A
//	node 1  LSH partition (M layouts) + local ρ̂ per partition
//	node 2  ρ̂ aggregation: max over layouts (Theorem 1)
//	node 3  ρ̂-annotate transform (driver side)
//	node 4  LSH partition + local δ̂/upslope using aggregated ρ̂;
//	        local absolute peaks get δ̂ = +∞ (Section IV-C)
//	node 5  δ̂ aggregation: min over layouts (Theorem 2)
//
// The returned Delta may contain +∞ for points that looked like the
// absolute peak in every layout; Result.Cluster rectifies them to the max
// finite δ before peak selection, as the paper prescribes.
func RunLSHDDP(ctx context.Context, ds *points.Dataset, cfg LSHConfig) (*Result, error) {
	start := time.Now()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.N() < 2 {
		return nil, fmt.Errorf("core: need at least 2 points, have %d", ds.N())
	}
	if err := checkScanPrecision(&cfg.Config); err != nil {
		return nil, err
	}
	sess := cfg.DagSession()
	mark := MarkRunner(sess.Runner())
	traceMark := len(sess.Traces())
	dagBefore := sess.Counters()
	input := sess.Stage("points", InputPairs(ds))

	dc, err := ChooseDc(ctx, sess, ds, &cfg.Config, input)
	if err != nil {
		return nil, err
	}
	w := cfg.W
	if w <= 0 {
		w, err = lsh.SolveWidth(cfg.accuracy(), dc, cfg.pi(), cfg.m())
		if err != nil {
			return nil, err
		}
	}

	conf := mapreduce.Conf{}
	conf.SetFloat(confDc, dc)
	conf.SetInt(confDim, ds.Dim())
	conf.SetInt(confM, cfg.m())
	conf.SetInt(confPi, cfg.pi())
	conf.SetFloat(confW, w)
	conf.SetInt64(confSeed, cfg.Seed)
	conf.SetBool(confAggMean, cfg.AggregateMean)
	conf.SetInt(confMaxPart, cfg.MaxPartition)
	setKernelConf(conf, cfg.Kernel)
	setParallelConf(conf, &cfg.Config)
	setScanConf(conf, &cfg.Config)

	g := dag.NewGraph("lsh-ddp")
	partials := g.Job(LSHRhoJob(conf).WithReduces(cfg.NumReduces), input)
	rhoOut := g.Job(LSHRhoAggJob(conf).WithReduces(cfg.NumReduces), partials)
	rhoPts := g.Transform("lsh-rho-points", func(in ...[]mapreduce.Pair) ([]mapreduce.Pair, error) {
		rho, err := DecodeRhoArray(in[0], ds.N())
		if err != nil {
			return nil, err
		}
		return RhoPointPairs(ds, rho), nil
	}, rhoOut)
	dPartials := g.Job(LSHDeltaJob(conf).WithReduces(cfg.NumReduces), rhoPts)
	dOut := g.Job(DeltaAggJob(JobLSHDelAgg, mapreduce.Conf{}).WithReduces(cfg.NumReduces), dPartials)

	outs, err := sess.Run(ctx, g, rhoOut, dOut)
	if err != nil {
		return nil, err
	}
	rho, err := DecodeRhoArray(outs[0], ds.N())
	if err != nil {
		return nil, err
	}
	delta, upslope, err := DecodeDeltaArrays(outs[1], ds.N())
	if err != nil {
		return nil, err
	}

	res := &Result{Rho: rho, Delta: delta, Upslope: upslope}
	res.Stats.Dc = dc
	res.Stats.W = w
	res.Stats.Pi = cfg.pi()
	res.Stats.M = cfg.m()
	CollectStats(&res.Stats, sess.Runner(), mark, start)
	CollectDagStats(&res.Stats, sess, traceMark, dagBefore)
	return res, nil
}

// layoutsFromConf rebuilds the LSH layouts deterministically from job
// configuration. Workers of the distributed engine call this instead of
// receiving serialized hash functions: the draws are seeded, so every
// worker regenerates identical layouts.
//
// Construction costs O(M·π·dim) once per task; a small cache keyed by the
// parameter tuple amortizes it across tasks of one process.
var layoutCache sync.Map // layoutKey -> *lsh.Layouts

type layoutKey struct {
	dim, m, pi int
	w          float64
	seed       int64
}

func layoutsFromConf(conf mapreduce.Conf) *lsh.Layouts {
	key := layoutKey{
		dim:  conf.GetInt(confDim, 0),
		m:    conf.GetInt(confM, 1),
		pi:   conf.GetInt(confPi, 1),
		w:    conf.GetFloat(confW, 1),
		seed: conf.GetInt64(confSeed, 0),
	}
	if v, ok := layoutCache.Load(key); ok {
		return v.(*lsh.Layouts)
	}
	l := lsh.NewLayouts(key.dim, key.m, key.pi, key.w, key.seed)
	layoutCache.Store(key, l)
	return l
}

// LSHRhoJob is job 1: the map side hashes every point under all M layouts
// and emits one copy per layout keyed by "m|G_m(p)"; each reducer owns one
// LSH partition S_k^m and computes the local density ρ̂ᵢᵐ of every point in
// it (Section IV-B).
func LSHRhoJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobLSHRho,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			layouts := layoutsFromConf(ctx.Conf)
			p, _, err := points.DecodePoint(value)
			if err != nil {
				return err
			}
			for _, key := range layouts.Keys(p.Pos) {
				out.Emit(key, value)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
			kern := kernelFromConf(ctx.Conf)
			par := parallelFromConf(ctx.Conf)
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			if err := points.DecodePointsInto(m, values); err != nil {
				return err
			}
			if par.Enabled(m.N()) {
				ctx.Counters.Cell(mapreduce.CtrParallelGroups).Add(1)
			}
			rho := make([]float64, m.N())
			var nd int64
			if scanF32FromConf(ctx.Conf) && !par.Enabled(m.N()) {
				c := points.GetMatrix32(m)
				defer points.PutMatrix32(c)
				var rechecks int64
				for _, ch := range chunks(m.N(), ctx.Conf.GetInt(confMaxPart, 0)) {
					p, r := kernels.RhoAccumulate32(m, c, ch.Lo, ch.Hi, kern, rho)
					nd += p
					rechecks += r
				}
				ctx.Counters.Cell(mapreduce.CtrCompactEvals).Add(nd)
				ctx.Counters.Cell(mapreduce.CtrCompactRechecks).Add(rechecks)
			} else {
				for _, ch := range chunks(m.N(), ctx.Conf.GetInt(confMaxPart, 0)) {
					nd += kernels.RhoAccumulateAuto(m, ch.Lo, ch.Hi, kern, rho, par)
				}
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for i := 0; i < m.N(); i++ {
				id := m.ID(i)
				out.Emit(idKey(id), points.EncodeRhoValue(points.RhoValue{ID: id, Rho: rho[i]}))
			}
			return nil
		},
	}
}

// LSHRhoAggJob is job 2: fold the M per-layout ρ̂ᵐ estimates into ρ̂. The
// paper takes the max (every local estimate undercounts, so the largest is
// closest to the truth — Theorem 1); conf can switch to the mean for the
// ablation study.
func LSHRhoAggJob(conf mapreduce.Conf) *mapreduce.Job {
	fold := func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
		mean := ctx.Conf.GetBool(confAggMean, false)
		var id int32
		var maxV, sum float64
		for i, v := range values {
			rv, err := points.DecodeRhoValue(v)
			if err != nil {
				return err
			}
			if i == 0 {
				id = rv.ID
			}
			if rv.Rho > maxV {
				maxV = rv.Rho
			}
			sum += rv.Rho
		}
		agg := maxV
		if mean {
			agg = sum / float64(len(values))
		}
		out.Emit(key, points.EncodeRhoValue(points.RhoValue{ID: id, Rho: agg}))
		return nil
	}
	return &mapreduce.Job{
		Name: JobLSHRhoAgg,
		Conf: conf,
		Map:  identityMap,
		// The mean fold is not associative under re-grouping (it would
		// average averages), so the combiner is only safe for max; we skip
		// it entirely to keep both modes correct and comparable.
		Reduce: fold,
	}
}

// LSHDeltaJob is job 3: LSH-partition the ρ̂-annotated points again and
// compute, per partition, δ̂ᵢᵐ = min distance to a denser point and its
// upslope identity; the locally densest point gets δ̂ = +∞ and no upslope
// (Section IV-C).
func LSHDeltaJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobLSHDel,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			layouts := layoutsFromConf(ctx.Conf)
			rp, _, err := points.DecodeRhoPoint(value)
			if err != nil {
				return err
			}
			for _, key := range layouts.Keys(rp.Pos) {
				out.Emit(key, value)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
			par := parallelFromConf(ctx.Conf)
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			if err := points.DecodeRhoPointsInto(m, values); err != nil {
				return err
			}
			if par.Enabled(m.N()) {
				ctx.Counters.Cell(mapreduce.CtrParallelGroups).Add(1)
			}
			acc := kernels.NewDeltaAcc(m.N(), false)
			var nd int64
			if scanF32FromConf(ctx.Conf) && !par.Enabled(m.N()) {
				c := points.GetMatrix32(m)
				defer points.PutMatrix32(c)
				var band kernels.DeltaBand
				band.Reset(acc, kernels.F32Bounds(m.Dim(), c.MaxAbs()))
				var rechecks int64
				for _, ch := range chunks(m.N(), ctx.Conf.GetInt(confMaxPart, 0)) {
					p, r := kernels.DeltaArgmin32(m, c, ch.Lo, ch.Hi, acc, &band)
					nd += p
					rechecks += r
				}
				ctx.Counters.Cell(mapreduce.CtrCompactEvals).Add(nd)
				ctx.Counters.Cell(mapreduce.CtrCompactRechecks).Add(rechecks)
			} else {
				for _, ch := range chunks(m.N(), ctx.Conf.GetInt(confMaxPart, 0)) {
					nd += kernels.DeltaArgminAuto(m, ch.Lo, ch.Hi, acc, par)
				}
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for i := 0; i < m.N(); i++ {
				id := m.ID(i)
				dv := points.DeltaValue{ID: id, Delta: math.Inf(1), Upslope: -1}
				if acc.Up[i] >= 0 {
					dv.Delta = math.Sqrt(acc.Best2[i])
					dv.Upslope = m.ID(int(acc.Up[i]))
				}
				out.Emit(idKey(id), points.EncodeDeltaValue(dv))
			}
			return nil
		},
	}
}

// chunkRange is a [Lo, Hi) slice of a partition's point list.
type chunkRange struct{ Lo, Hi int }

// chunks yields ranges of at most cap elements (one full range when
// cap <= 0), implementing the MaxPartition bound.
func chunks(n, cap int) []chunkRange {
	if cap <= 0 || cap >= n {
		return []chunkRange{{0, n}}
	}
	out := make([]chunkRange, 0, (n+cap-1)/cap)
	for lo := 0; lo < n; lo += cap {
		hi := lo + cap
		if hi > n {
			hi = n
		}
		out = append(out, chunkRange{lo, hi})
	}
	return out
}
