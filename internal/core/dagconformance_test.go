package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/points"
)

// Conformance: the DAG-scheduled pipelines must reproduce the
// hand-sequenced execution bit for bit — same arrays, same labels, same
// per-job counters — on the local engine and on a real rpcmr cluster.
// The hand-sequenced reference below replays exactly what RunLSHDDP did
// before the scheduler existed: the same five jobs, one drv.Run at a
// time, with identical confs.

// handSequencedLSHDDP executes the pre-DAG LSH-DDP job sequence directly
// on a Driver and returns the arrays plus the driver's job history.
func handSequencedLSHDDP(t *testing.T, eng mapreduce.Engine, ds *points.Dataset, cfg LSHConfig) (*Result, []mapreduce.JobStats) {
	t.Helper()
	ctx := context.Background()
	drv := mapreduce.NewDriver(eng)
	input := InputPairs(ds)

	// Job 0: d_c sampling (cfg.Dc is 0 in these tests).
	frac := 1.0
	if n := ds.N(); n > cfg.samplePoints() {
		frac = float64(cfg.samplePoints()) / float64(n)
	}
	dcConf := mapreduce.Conf{}
	dcConf.SetFloat(confSampleFrac, frac)
	dcConf.SetFloat(confPercentile, cfg.DcPercentileOrDefault())
	dcConf.SetInt64(confSeed, cfg.Seed)
	dcRes, err := drv.Run(ctx, DcSampleJob(dcConf), input)
	if err != nil {
		t.Fatal(err)
	}
	dc := points.DecodeFloat64(dcRes.Output[0].Value)
	w, err := lsh.SolveWidth(cfg.accuracy(), dc, cfg.pi(), cfg.m())
	if err != nil {
		t.Fatal(err)
	}

	conf := mapreduce.Conf{}
	conf.SetFloat(confDc, dc)
	conf.SetInt(confDim, ds.Dim())
	conf.SetInt(confM, cfg.m())
	conf.SetInt(confPi, cfg.pi())
	conf.SetFloat(confW, w)
	conf.SetInt64(confSeed, cfg.Seed)
	conf.SetBool(confAggMean, cfg.AggregateMean)
	conf.SetInt(confMaxPart, cfg.MaxPartition)
	setKernelConf(conf, cfg.Kernel)
	setParallelConf(conf, &cfg.Config)

	p1, err := drv.Run(ctx, LSHRhoJob(conf.Clone()).WithReduces(cfg.NumReduces), input)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := drv.Run(ctx, LSHRhoAggJob(conf.Clone()).WithReduces(cfg.NumReduces), p1.Output)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := DecodeRhoArray(p2.Output, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	p3, err := drv.Run(ctx, LSHDeltaJob(conf.Clone()).WithReduces(cfg.NumReduces), RhoPointPairs(ds, rho))
	if err != nil {
		t.Fatal(err)
	}
	p4, err := drv.Run(ctx, DeltaAggJob(JobLSHDelAgg, mapreduce.Conf{}).WithReduces(cfg.NumReduces), p3.Output)
	if err != nil {
		t.Fatal(err)
	}
	delta, upslope, err := DecodeDeltaArrays(p4.Output, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Rho: rho, Delta: delta, Upslope: upslope}
	res.Stats.Dc = dc
	return res, drv.Jobs()
}

// requireSameResult compares two pipeline results bit for bit, including
// the cluster labels both induce.
func requireSameResult(t *testing.T, ds *points.Dataset, got, want *Result, k int) {
	t.Helper()
	if got.Stats.Dc != want.Stats.Dc {
		t.Fatalf("dc: dag %v hand-sequenced %v", got.Stats.Dc, want.Stats.Dc)
	}
	for i := range want.Rho {
		if got.Rho[i] != want.Rho[i] {
			t.Fatalf("rho[%d]: dag %v hand-sequenced %v", i, got.Rho[i], want.Rho[i])
		}
		if got.Delta[i] != want.Delta[i] {
			t.Fatalf("delta[%d]: dag %v hand-sequenced %v", i, got.Delta[i], want.Delta[i])
		}
		if got.Upslope[i] != want.Upslope[i] {
			t.Fatalf("upslope[%d]: dag %v hand-sequenced %v", i, got.Upslope[i], want.Upslope[i])
		}
	}
	_, gotLabels, err := got.Cluster(ds, SelectTopK(k))
	if err != nil {
		t.Fatal(err)
	}
	_, wantLabels, err := want.Cluster(ds, SelectTopK(k))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantLabels {
		if gotLabels[i] != wantLabels[i] {
			t.Fatalf("label[%d]: dag %d hand-sequenced %d", i, gotLabels[i], wantLabels[i])
		}
	}
}

// requireSameJobCounters compares the per-job counter streams of the two
// executions: same job names in the same order, identical logical
// counters (wall time is the only thing allowed to differ).
func requireSameJobCounters(t *testing.T, got, want []mapreduce.JobStats) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("job count: dag %d hand-sequenced %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("job %d: dag %q hand-sequenced %q", i, got[i].Name, want[i].Name)
		}
		for _, ctr := range []string{
			mapreduce.CtrDistanceComputations,
			mapreduce.CtrShuffleBytes,
			mapreduce.CtrMapInputRecords,
			mapreduce.CtrReduceOutputRecords,
		} {
			if g, w := got[i].Counters[ctr], want[i].Counters[ctr]; g != w {
				t.Fatalf("job %d (%s) %s: dag %d hand-sequenced %d", i, want[i].Name, ctr, g, w)
			}
		}
	}
}

func lshConformanceConfig(eng mapreduce.Engine) LSHConfig {
	return LSHConfig{
		Config:   Config{Engine: eng, Seed: 7},
		Accuracy: 0.99, M: 8, Pi: 3,
	}
}

func TestDAGConformanceLSHDDPLocal(t *testing.T) {
	ds := dataset.Blobs("dag-conf-lsh", 900, 4, 4, 220, 2, 11)
	eng := &mapreduce.LocalEngine{Parallelism: 4}

	res, err := RunLSHDDP(context.Background(), ds, lshConformanceConfig(eng))
	if err != nil {
		t.Fatal(err)
	}
	want, wantJobs := handSequencedLSHDDP(t, eng, ds, lshConformanceConfig(eng))
	requireSameResult(t, ds, res, want, 4)
	requireSameJobCounters(t, res.Stats.Jobs, wantJobs)
	if res.Stats.Dag[dag.CtrNodes] == 0 {
		t.Fatalf("dag run reported no scheduler nodes: %v", res.Stats.Dag)
	}
}

func TestDAGConformanceLSHDDPCluster(t *testing.T) {
	rpcmr.RegisterJobs(JobFactories())
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var workers []*rpcmr.Worker
	for i := 0; i < 3; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	ds := dataset.Blobs("dag-conf-lsh-rpc", 700, 3, 4, 180, 2, 12)
	res, err := RunLSHDDP(context.Background(), ds, lshConformanceConfig(master))
	if err != nil {
		t.Fatal(err)
	}
	want, wantJobs := handSequencedLSHDDP(t, master, ds, lshConformanceConfig(master))
	requireSameResult(t, ds, res, want, 4)
	requireSameJobCounters(t, res.Stats.Jobs, wantJobs)
}
