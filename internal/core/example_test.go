package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
)

// The one-call happy path: run LSH-DDP and cluster the result.
func ExampleRunLSHDDP() {
	ds := dataset.Blobs("example", 600, 2, 3, 300, 3, 42)
	res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
		Config:   core.Config{Engine: &mapreduce.LocalEngine{Parallelism: 2}, Seed: 1},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		panic(err)
	}
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(3))
	if err != nil {
		panic(err)
	}
	sizes := map[int32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	fmt.Printf("%d peaks, %d clusters, %d points labeled\n", len(peaks), len(sizes), total)
	// Output:
	// 3 peaks, 3 clusters, 600 points labeled
}

// Exact Basic-DDP with a pinned cutoff distance.
func ExampleRunBasicDDP() {
	ds := dataset.Blobs("example-basic", 300, 2, 2, 100, 3, 7)
	res, err := core.RunBasicDDP(context.Background(), ds, core.BasicConfig{
		Config:    core.Config{Engine: &mapreduce.LocalEngine{Parallelism: 2}, Dc: 4},
		BlockSize: 64,
	})
	if err != nil {
		panic(err)
	}
	// Exactly one absolute density peak exists (the globally densest point).
	absolute := 0
	for _, u := range res.Upslope {
		if u == -1 {
			absolute++
		}
	}
	fmt.Printf("%d points, %d absolute peak, exact pairwise work = %d distances per job\n",
		ds.N(), absolute, ds.N()*(ds.N()-1)/2)
	// Output:
	// 300 points, 1 absolute peak, exact pairwise work = 44850 distances per job
}
