package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/kernels"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

// BasicConfig configures Basic-DDP.
type BasicConfig struct {
	Config
	// BlockSize is the target points-per-block for the blocking strategy
	// (the paper's experiments use 500). The number of blocks is
	// ceil(N / BlockSize).
	BlockSize int
}

func (c *BasicConfig) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return 500
}

// RunBasicDDP executes the exact Basic-DDP pipeline of Section III as one
// job DAG:
//
//	node 0  d_c sampling (unless cfg.Dc is set)
//	node 1  blocked all-pairs ρ partials
//	node 2  ρ aggregation (sum)
//	node 3  ρ̂-annotate transform (driver side)
//	node 4  blocked all-pairs δ partials (+ max-distance fallbacks)
//	node 5  δ aggregation (min; fallback max for the absolute peak)
//
// The blocking follows the paper exactly: the point set is split into n
// blocks; block k is shuffled only to reducers l ≥ k, so reducer l
// materializes every block pair (k, l), k ≤ l, exactly once — each point is
// shuffled (n−k) times, (n+1)/2 on average, and every unordered point pair
// is evaluated exactly once globally.
func RunBasicDDP(ctx context.Context, ds *points.Dataset, cfg BasicConfig) (*Result, error) {
	start := time.Now()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.N() < 2 {
		return nil, fmt.Errorf("core: need at least 2 points, have %d", ds.N())
	}
	if err := checkScanPrecision(&cfg.Config); err != nil {
		return nil, err
	}
	sess := cfg.DagSession()
	mark := MarkRunner(sess.Runner())
	traceMark := len(sess.Traces())
	dagBefore := sess.Counters()
	input := sess.Stage("points", InputPairs(ds))

	dc, err := ChooseDc(ctx, sess, ds, &cfg.Config, input)
	if err != nil {
		return nil, err
	}
	nBlocks := (ds.N() + cfg.blockSize() - 1) / cfg.blockSize()

	conf := mapreduce.Conf{}
	conf.SetFloat(confDc, dc)
	conf.SetInt(confBlocks, nBlocks)
	setKernelConf(conf, cfg.Kernel)
	setParallelConf(conf, &cfg.Config)
	setScanConf(conf, &cfg.Config)

	g := dag.NewGraph("basic-ddp")
	partials := g.Job(BasicRhoJob(conf).WithReduces(cfg.NumReduces), input)
	rhoOut := g.Job(RhoAggJob(JobBasicAgg, mapreduce.Conf{}).WithReduces(cfg.NumReduces), partials)
	// The transform closes over ds, which the fingerprint chain pins
	// transitively: rhoOut derives from the staged input, whose
	// fingerprint is the dataset content.
	rhoPts := g.Transform("basic-rho-points", func(in ...[]mapreduce.Pair) ([]mapreduce.Pair, error) {
		rho, err := DecodeRhoArray(in[0], ds.N())
		if err != nil {
			return nil, err
		}
		return RhoPointPairs(ds, rho), nil
	}, rhoOut)
	dPartials := g.Job(BasicDeltaJob(conf).WithReduces(cfg.NumReduces), rhoPts)
	dOut := g.Job(DeltaAggJob(JobBasicDAgg, mapreduce.Conf{}).WithReduces(cfg.NumReduces), dPartials)

	outs, err := sess.Run(ctx, g, rhoOut, dOut)
	if err != nil {
		return nil, err
	}
	rho, err := DecodeRhoArray(outs[0], ds.N())
	if err != nil {
		return nil, err
	}
	delta, upslope, err := DecodeDeltaArrays(outs[1], ds.N())
	if err != nil {
		return nil, err
	}

	res := &Result{Rho: rho, Delta: delta, Upslope: upslope}
	res.Stats.Dc = dc
	CollectStats(&res.Stats, sess.Runner(), mark, start)
	CollectDagStats(&res.Stats, sess, traceMark, dagBefore)
	return res, nil
}

// blockOf assigns a point to a block by ID. IDs are dense, so blocks are
// near-uniform.
func blockOf(id int32, nBlocks int) int { return int(id) % nBlocks }

// tagged value: uint32 source block | payload.
func tagBlock(k int, payload []byte) []byte {
	buf := binary.LittleEndian.AppendUint32(make([]byte, 0, 4+len(payload)), uint32(k))
	return append(buf, payload...)
}

func untagBlock(v []byte) (int, []byte, error) {
	if len(v) < 4 {
		return 0, nil, fmt.Errorf("core: short block tag")
	}
	return int(binary.LittleEndian.Uint32(v)), v[4:], nil
}

// idKey formats a point ID as a fixed-width reduce key so aggregation jobs
// group correctly and output deterministically.
func idKey(id int32) string { return fmt.Sprintf("%09d", id) }

func parseIDKey(k string) (int32, error) {
	v, err := strconv.Atoi(k)
	if err != nil {
		return 0, fmt.Errorf("core: bad id key %q: %w", k, err)
	}
	return int32(v), nil
}

// BasicRhoJob is job 1: blocked exact ρ partials. Map routes block k to
// reducers l = k..n−1; reducer l computes the diagonal pair (l,l) and every
// cross pair (k,l), k < l, and emits one partial count per point (always
// for its home block l, only when non-zero for visiting blocks, since the
// aggregation treats absence as zero — except each point's home reducer
// guarantees at least one record).
func BasicRhoJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobBasicRho,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			n := ctx.Conf.GetInt(confBlocks, 1)
			p, _, err := points.DecodePoint(value)
			if err != nil {
				return err
			}
			k := blockOf(p.ID, n)
			tagged := tagBlock(k, value)
			for l := k; l < n; l++ {
				out.Emit(strconv.Itoa(l), tagged)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			l, err := strconv.Atoi(key)
			if err != nil {
				return fmt.Errorf("core: bad block key %q", key)
			}
			kern := kernelFromConf(ctx.Conf)
			par := parallelFromConf(ctx.Conf)
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			nLocal, err := decodeBlockGroup(m, values, l, (*points.Matrix).AppendPoint)
			if err != nil {
				return err
			}
			n := m.N()
			if par.Enabled(n) {
				ctx.Counters.Cell(mapreduce.CtrParallelGroups).Add(1)
			}
			rho := make([]float64, n)
			// Diagonal pair (l, l) over local rows [0, nLocal), then cross
			// pairs visitors × local — the same evaluation order as the
			// scalar loops, so partials stay bit-identical.
			var nd int64
			if scanF32FromConf(ctx.Conf) && !par.Enabled(n) {
				c := points.GetMatrix32(m)
				defer points.PutMatrix32(c)
				p1, r1 := kernels.RhoAccumulate32(m, c, 0, nLocal, kern, rho)
				p2, r2 := kernels.RhoCross32(m, c, nLocal, n, 0, nLocal, kern, rho, true)
				nd = p1 + p2
				ctx.Counters.Cell(mapreduce.CtrCompactEvals).Add(nd)
				ctx.Counters.Cell(mapreduce.CtrCompactRechecks).Add(r1 + r2)
			} else {
				nd = kernels.RhoAccumulateAuto(m, 0, nLocal, kern, rho, par)
				nd += kernels.RhoCross(m, nLocal, n, 0, nLocal, kern, rho, true)
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for i := 0; i < n; i++ {
				if i >= nLocal && rho[i] == 0 {
					continue
				}
				id := m.ID(i)
				out.Emit(idKey(id), points.EncodeRhoValue(points.RhoValue{ID: id, Rho: rho[i]}))
			}
			return nil
		},
	}
}

// RhoAggJob sums ρ partials per point. Shared by Basic-DDP (sum of block
// partials) and reused with a different fold by LSH-DDP (see LSHRhoAggJob).
func RhoAggJob(name string, conf mapreduce.Conf) *mapreduce.Job {
	sum := func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
		var total float64
		var id int32
		for i, v := range values {
			rv, err := points.DecodeRhoValue(v)
			if err != nil {
				return err
			}
			if i == 0 {
				id = rv.ID
			}
			total += rv.Rho
		}
		out.Emit(key, points.EncodeRhoValue(points.RhoValue{ID: id, Rho: total}))
		return nil
	}
	return &mapreduce.Job{
		Name:    name,
		Conf:    conf,
		Map:     identityMap,
		Combine: sum,
		Reduce:  sum,
	}
}

// identityMap forwards records unchanged; aggregation jobs group the
// previous job's (idKey, value) output.
func identityMap(_ *mapreduce.TaskContext, key string, value []byte, out mapreduce.Emitter) error {
	out.Emit(key, value)
	return nil
}

// BasicDeltaJob is job 3: blocked exact δ partials. The map side is the ρ
// job's blocking over RhoPoint records. Reducer l evaluates, for every
// point it sees, the minimum distance to a denser point within the block
// pairs it owns; a point with no denser neighbour in scope emits a
// fallback record carrying the maximum distance seen (Upslope = −1), which
// the aggregation resolves exactly as Section III prescribes for the
// absolute density peak.
func BasicDeltaJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobBasicDel,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			n := ctx.Conf.GetInt(confBlocks, 1)
			rp, _, err := points.DecodeRhoPoint(value)
			if err != nil {
				return err
			}
			k := blockOf(rp.ID, n)
			tagged := tagBlock(k, value)
			for l := k; l < n; l++ {
				out.Emit(strconv.Itoa(l), tagged)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			l, err := strconv.Atoi(key)
			if err != nil {
				return fmt.Errorf("core: bad block key %q", key)
			}
			par := parallelFromConf(ctx.Conf)
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			nLocal, err := decodeBlockGroup(m, values, l, (*points.Matrix).AppendRhoPoint)
			if err != nil {
				return err
			}
			n := m.N()
			// The map-based state only emitted points that participated in
			// at least one pair. Visitors only ever pair against local rows,
			// so no local rows means no pairs at all, and a lone local point
			// without visitors pairs with nothing.
			if nLocal == 0 || n < 2 {
				return nil
			}
			if par.Enabled(n) {
				ctx.Counters.Cell(mapreduce.CtrParallelGroups).Add(1)
			}
			acc := kernels.NewDeltaAcc(n, true)
			// Diagonal pair over local rows, then visitors × local — the
			// same evaluation order as the scalar loops.
			var nd int64
			if scanF32FromConf(ctx.Conf) && !par.Enabled(n) {
				c := points.GetMatrix32(m)
				defer points.PutMatrix32(c)
				var band kernels.DeltaBand
				band.Reset(acc, kernels.F32Bounds(m.Dim(), c.MaxAbs()))
				p1, r1 := kernels.DeltaArgmin32(m, c, 0, nLocal, acc, &band)
				p2, r2 := kernels.DeltaCross32(m, c, nLocal, n, 0, nLocal, acc, &band)
				nd = p1 + p2
				ctx.Counters.Cell(mapreduce.CtrCompactEvals).Add(nd)
				ctx.Counters.Cell(mapreduce.CtrCompactRechecks).Add(r1 + r2)
			} else {
				nd = kernels.DeltaArgminAuto(m, 0, nLocal, acc, par)
				nd += kernels.DeltaCross(m, nLocal, n, 0, nLocal, acc)
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for i := 0; i < n; i++ {
				id := m.ID(i)
				dv := points.DeltaValue{ID: id}
				if acc.Up[i] >= 0 {
					dv.Delta = math.Sqrt(acc.Best2[i])
					dv.Upslope = m.ID(int(acc.Up[i]))
				} else {
					dv.Delta = math.Sqrt(acc.Max2[i])
					dv.Upslope = -1
				}
				out.Emit(idKey(id), points.EncodeDeltaValue(dv))
			}
			return nil
		},
	}
}

// decodeBlockGroup batch-decodes one blocked reducer group into m with the
// home block l's rows first and visitors after, so the pairwise kernels see
// the diagonal range [0, nLocal) and the visitor range [nLocal, N()).
// appendRow is the per-record Matrix decoder (AppendPoint or AppendRhoPoint).
func decodeBlockGroup(m *points.Matrix, values [][]byte, l int,
	appendRow func(*points.Matrix, []byte) ([]byte, error)) (nLocal int, err error) {
	for pass := 0; pass < 2; pass++ {
		for _, v := range values {
			k, payload, err := untagBlock(v)
			if err != nil {
				return 0, err
			}
			if (k == l) != (pass == 0) {
				continue
			}
			rest, err := appendRow(m, payload)
			if err != nil {
				return 0, err
			}
			if len(rest) != 0 {
				return 0, fmt.Errorf("core: %d trailing bytes after block record", len(rest))
			}
		}
		if pass == 0 {
			nLocal = m.N()
		}
	}
	return nLocal, nil
}

// DeltaAggJob folds δ partials per point: the minimum over real candidates
// (Upslope ≥ 0); when a point has only fallbacks — the absolute density
// peak — the maximum fallback distance, which equals max_j d_ij exactly
// because the point met every other point exactly once across reducers.
// The fold is associative and commutative, so it doubles as the combiner.
func DeltaAggJob(name string, conf mapreduce.Conf) *mapreduce.Job {
	fold := func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
		var (
			id       int32
			bestCand       = math.Inf(1)
			bestUp   int32 = -1
			maxFall  float64
			haveCand bool
		)
		for i, v := range values {
			dv, err := points.DecodeDeltaValue(v)
			if err != nil {
				return err
			}
			if i == 0 {
				id = dv.ID
			}
			if dv.Upslope >= 0 {
				haveCand = true
				if dv.Delta < bestCand {
					bestCand = dv.Delta
					bestUp = dv.Upslope
				}
			} else if dv.Delta > maxFall {
				maxFall = dv.Delta
			}
		}
		dv := points.DeltaValue{ID: id, Upslope: -1, Delta: maxFall}
		if haveCand {
			dv.Delta = bestCand
			dv.Upslope = bestUp
		}
		out.Emit(key, points.EncodeDeltaValue(dv))
		return nil
	}
	return &mapreduce.Job{
		Name:    name,
		Conf:    conf,
		Map:     identityMap,
		Combine: fold,
		Reduce:  fold,
	}
}

// DecodeRhoArray turns aggregation output into a dense ρ array.
func DecodeRhoArray(out []mapreduce.Pair, n int) ([]float64, error) {
	rho := make([]float64, n)
	seen := make([]bool, n)
	for _, p := range out {
		rv, err := points.DecodeRhoValue(p.Value)
		if err != nil {
			return nil, err
		}
		if rv.ID < 0 || int(rv.ID) >= n {
			return nil, fmt.Errorf("core: rho for out-of-range id %d", rv.ID)
		}
		if seen[rv.ID] {
			return nil, fmt.Errorf("core: duplicate rho for id %d", rv.ID)
		}
		seen[rv.ID] = true
		rho[rv.ID] = rv.Rho
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("core: no rho produced for id %d", i)
		}
	}
	return rho, nil
}

// DecodeDeltaArrays turns aggregation output into dense δ and upslope
// arrays.
func DecodeDeltaArrays(out []mapreduce.Pair, n int) ([]float64, []int32, error) {
	delta := make([]float64, n)
	upslope := make([]int32, n)
	seen := make([]bool, n)
	for _, p := range out {
		dv, err := points.DecodeDeltaValue(p.Value)
		if err != nil {
			return nil, nil, err
		}
		if dv.ID < 0 || int(dv.ID) >= n {
			return nil, nil, fmt.Errorf("core: delta for out-of-range id %d", dv.ID)
		}
		if seen[dv.ID] {
			return nil, nil, fmt.Errorf("core: duplicate delta for id %d", dv.ID)
		}
		seen[dv.ID] = true
		delta[dv.ID] = dv.Delta
		upslope[dv.ID] = dv.Upslope
	}
	for i, ok := range seen {
		if !ok {
			return nil, nil, fmt.Errorf("core: no delta produced for id %d", i)
		}
	}
	return delta, upslope, nil
}
