package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/points"
)

// ExportModel freezes a finished clustering into a serving artifact: the
// labeled dataset in SoA form, per-point densities, peaks, halo border
// densities, and the run's d_c and LSH parameters (taken from res.Stats,
// which RunLSHDDP fills; a Basic-DDP or exact result exports with M = 0 and
// serves through the exact-scan path only). border may be nil when halo
// detection was skipped — the model then flags no point as halo. seed must
// be the Config.Seed of the training run, so the server regenerates the
// exact hash layouts the ρ̂/δ̂ jobs partitioned under.
func ExportModel(ds *points.Dataset, res *Result, peaks, labels []int32, border []float64, seed int64) (*model.Model, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := ds.N()
	if len(labels) != n {
		return nil, fmt.Errorf("core: export needs %d labels, have %d", n, len(labels))
	}
	if len(res.Rho) != n {
		return nil, fmt.Errorf("core: export needs %d densities, have %d", n, len(res.Rho))
	}
	if len(peaks) == 0 {
		return nil, fmt.Errorf("core: export needs at least one peak")
	}
	if border == nil {
		border = make([]float64, len(peaks))
	}
	if len(border) != len(peaks) {
		return nil, fmt.Errorf("core: export has %d border densities for %d peaks", len(border), len(peaks))
	}
	dim := ds.Dim()
	data := make([]float64, 0, n*dim)
	for _, p := range ds.Points {
		data = append(data, p.Pos...)
	}
	m := &model.Model{
		Name: ds.Name,
		Dim:  dim,
		Dc:   res.Stats.Dc,
		LSH: model.Params{
			Seed: seed,
			M:    res.Stats.M,
			Pi:   res.Stats.Pi,
			W:    res.Stats.W,
		},
		Data:   data,
		Rho:    append([]float64(nil), res.Rho...),
		Labels: append([]int32(nil), labels...),
		Peaks:  append([]int32(nil), peaks...),
		Border: append([]float64(nil), border...),
	}
	// Ship the compact scan mirrors (f32 + q8) alongside the float64 data
	// so the serving side can pick its scan precision without re-deriving
	// them at load time. A few percent of artifact size buys the
	// bandwidth-lean scan path; old readers skip the extra sections.
	m.BuildCompact()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
