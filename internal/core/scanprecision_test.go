package core_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
)

// TestScanPrecisionBitIdentity pins the compact reducer path's contract:
// running either pipeline with ScanPrecision "f32" must produce ρ, δ, and
// upslope arrays bit-identical to the default float64 kernels (cutoff
// kernel — the paper's estimator).
func TestScanPrecisionBitIdentity(t *testing.T) {
	ds := dataset.Blobs("scanprec", 900, 3, 4, 100, 2.5, 13)
	ctx := context.Background()

	t.Run("lsh", func(t *testing.T) {
		base, err := core.RunLSHDDP(ctx, ds, core.LSHConfig{Config: core.Config{Seed: 5}})
		if err != nil {
			t.Fatal(err)
		}
		f32, err := core.RunLSHDDP(ctx, ds, core.LSHConfig{Config: core.Config{Seed: 5, ScanPrecision: "f32"}})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, base, f32)
		if f32.Stats.DistanceComputations != base.Stats.DistanceComputations {
			t.Errorf("distance computations differ: f32 %d, f64 %d",
				f32.Stats.DistanceComputations, base.Stats.DistanceComputations)
		}
	})

	t.Run("basic", func(t *testing.T) {
		base, err := core.RunBasicDDP(ctx, ds, core.BasicConfig{Config: core.Config{Seed: 5}, BlockSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		f32, err := core.RunBasicDDP(ctx, ds, core.BasicConfig{Config: core.Config{Seed: 5, ScanPrecision: "f32"}, BlockSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, base, f32)
	})

	// The compact path steps aside when intra-partition parallelism takes
	// the group; results must still be bit-identical.
	t.Run("lsh-parallel", func(t *testing.T) {
		base, err := core.RunLSHDDP(ctx, ds, core.LSHConfig{Config: core.Config{Seed: 5}})
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := core.RunLSHDDP(ctx, ds, core.LSHConfig{
			Config: core.Config{Seed: 5, ScanPrecision: "f32", ParallelThreshold: 64, ParallelWorkers: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, base, mixed)
	})

	// Gaussian ρ from the compact path carries a documented tolerance
	// instead of bit-identity.
	t.Run("lsh-gaussian", func(t *testing.T) {
		base, err := core.RunLSHDDP(ctx, ds, core.LSHConfig{Config: core.Config{Seed: 5, Kernel: dp.KernelGaussian}})
		if err != nil {
			t.Fatal(err)
		}
		f32, err := core.RunLSHDDP(ctx, ds, core.LSHConfig{Config: core.Config{Seed: 5, Kernel: dp.KernelGaussian, ScanPrecision: "f32"}})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Rho {
			diff := base.Rho[i] - f32.Rho[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-4*(1+base.Rho[i]) {
				t.Fatalf("gaussian rho %d: %v vs %v outside tolerance", i, f32.Rho[i], base.Rho[i])
			}
		}
	})

	t.Run("rejects-unknown", func(t *testing.T) {
		_, err := core.RunLSHDDP(ctx, ds, core.LSHConfig{Config: core.Config{ScanPrecision: "q8"}})
		if err == nil {
			t.Error("LSH run accepted serving-only precision q8")
		}
		_, err = core.RunBasicDDP(ctx, ds, core.BasicConfig{Config: core.Config{ScanPrecision: "fp16"}})
		if err == nil {
			t.Error("Basic run accepted unknown precision")
		}
	})
}

func compareResults(t *testing.T, want, got *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Rho, got.Rho) {
		t.Fatal("rho arrays differ between scan precisions")
	}
	if !reflect.DeepEqual(want.Delta, got.Delta) {
		t.Fatal("delta arrays differ between scan precisions")
	}
	if !reflect.DeepEqual(want.Upslope, got.Upslope) {
		t.Fatal("upslope arrays differ between scan precisions")
	}
}
