package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
)

func TestBasicDDPGaussianKernelMatchesSequential(t *testing.T) {
	ds := dataset.Blobs("gauss-basic", 300, 3, 3, 80, 3, 19)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref, err := dp.Compute(ds, dc, dp.Options{Kernel: dp.KernelGaussian})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config:    Config{Engine: testEngine(), Dc: dc, Kernel: dp.KernelGaussian},
		BlockSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rho {
		if math.Abs(res.Rho[i]-ref.Rho[i]) > 1e-6*(1+ref.Rho[i]) {
			t.Fatalf("gaussian rho[%d] = %v, want %v", i, res.Rho[i], ref.Rho[i])
		}
		if math.Abs(res.Delta[i]-ref.Delta[i]) > 1e-9 {
			t.Fatalf("gaussian delta[%d] = %v, want %v", i, res.Delta[i], ref.Delta[i])
		}
	}
}

func TestLSHDDPGaussianKernelUnderestimates(t *testing.T) {
	ds := dataset.Blobs("gauss-lsh", 400, 3, 4, 80, 3, 23)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref, err := dp.Compute(ds, dc, dp.Options{Kernel: dp.KernelGaussian})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), Dc: dc, Seed: 5, Kernel: dp.KernelGaussian},
		Accuracy: 0.95, M: 5, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gaussian contributions are positive, so every local estimate — and
	// therefore the max — underestimates the exact smooth density.
	for i := range ref.Rho {
		if res.Rho[i] > ref.Rho[i]+1e-9 {
			t.Fatalf("gaussian rho_hat[%d] = %v exceeds exact %v", i, res.Rho[i], ref.Rho[i])
		}
	}
	// And the estimates should still be close on well-clustered data.
	var errSum, norm float64
	for i := range ref.Rho {
		errSum += math.Abs(res.Rho[i] - ref.Rho[i])
		norm += ref.Rho[i]
	}
	// The Gaussian kernel has unbounded support, so cross-partition tail
	// mass is systematically missed; the bar is accordingly lower than for
	// the cutoff kernel.
	if tau2 := 1 - errSum/norm; tau2 < 0.8 {
		t.Fatalf("gaussian tau2 = %v, want >= 0.8", tau2)
	}
}

func TestGaussianKernelProducesSmoothDensities(t *testing.T) {
	// Under the cutoff kernel many points tie (integer counts); the
	// Gaussian kernel breaks almost all ties, so the absolute-peak
	// tie-break matters much less. Sanity-check both run and that
	// densities are non-integral under Gaussian.
	ds := dataset.Blobs("gauss-smooth", 200, 2, 2, 50, 2, 29)
	res, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 1, Kernel: dp.KernelGaussian},
		Accuracy: 0.95, M: 5, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fractional := 0
	for _, r := range res.Rho {
		if r != math.Trunc(r) {
			fractional++
		}
	}
	if fractional < len(res.Rho)/2 {
		t.Fatalf("only %d/%d gaussian densities are fractional", fractional, len(res.Rho))
	}
}
