package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
)

func TestLSHDDPRhoNeverOvercounts(t *testing.T) {
	ds := dataset.Blobs("lsh-rho-under", 500, 4, 5, 100, 4, 21)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref := exactReference(t, ds, dc)

	res, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), Dc: dc, Seed: 9},
		Accuracy: 0.9, M: 5, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rho {
		if res.Rho[i] > ref.Rho[i] {
			t.Fatalf("rho_hat[%d] = %v exceeds exact %v", i, res.Rho[i], ref.Rho[i])
		}
	}
}

func TestLSHDDPDeltaNeverUndershoots(t *testing.T) {
	// When ρ̂ = ρ for all points, each local δ̂ is a min over a subset of
	// the true candidate set, so δ̂ ≥ δ pointwise. Force exact ρ̂ by using
	// a huge width (one partition per layout ⇒ exact).
	ds := dataset.Blobs("lsh-delta-over", 300, 3, 3, 50, 3, 33)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref := exactReference(t, ds, dc)

	res, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config: Config{Engine: testEngine(), Dc: dc, Seed: 4},
		M:      3, Pi: 2, W: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rho {
		if res.Rho[i] != ref.Rho[i] {
			t.Fatalf("with one partition per layout rho must be exact: rho[%d]=%v want %v", i, res.Rho[i], ref.Rho[i])
		}
		if res.Delta[i]-ref.Delta[i] < -1e-9 {
			t.Fatalf("delta_hat[%d] = %v below exact %v", i, res.Delta[i], ref.Delta[i])
		}
	}
}

func TestLSHDDPExactWithGiantWidth(t *testing.T) {
	// One partition per layout makes LSH-DDP exact except for the absolute
	// peak's δ: the paper assigns the local peak δ̂ = ∞ rather than the max
	// distance, rectified later. Everything else must match sequential DP.
	ds := dataset.Blobs("lsh-exact", 250, 2, 3, 60, 2.5, 5)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref := exactReference(t, ds, dc)

	res, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config: Config{Engine: testEngine(), Dc: dc, Seed: 8},
		M:      2, Pi: 1, W: 1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rho {
		if res.Rho[i] != ref.Rho[i] {
			t.Fatalf("rho[%d] = %v, want %v", i, res.Rho[i], ref.Rho[i])
		}
		if ref.Upslope[i] == -1 {
			if !math.IsInf(res.Delta[i], 1) || res.Upslope[i] != -1 {
				t.Fatalf("absolute peak %d: delta=%v upslope=%d, want +Inf/-1", i, res.Delta[i], res.Upslope[i])
			}
			continue
		}
		if math.Abs(res.Delta[i]-ref.Delta[i]) > 1e-9 {
			t.Fatalf("delta[%d] = %v, want %v", i, res.Delta[i], ref.Delta[i])
		}
		if res.Upslope[i] != ref.Upslope[i] {
			t.Fatalf("upslope[%d] = %d, want %d", i, res.Upslope[i], ref.Upslope[i])
		}
	}
}

func TestLSHDDPHighAccuracyApproximation(t *testing.T) {
	ds := dataset.Blobs("lsh-acc", 1000, 3, 5, 100, 3, 17)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref := exactReference(t, ds, dc)

	res, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), Dc: dc, Seed: 2},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// τ₁: fraction of exactly recovered ρ. Theorem 1 targets 0.99, but its
	// Lemma 1 treats the projections of all neighbours through a single
	// Gaussian draw, so on data with many d_c-neighbours the realized τ₁
	// sits below A. Assert it stays high, and that the error metric τ₂
	// (which the paper reports stabilizing near 1) is very close to 1.
	exact := 0
	var absErr, rhoSum float64
	for i := range ref.Rho {
		if res.Rho[i] == ref.Rho[i] {
			exact++
		}
		absErr += math.Abs(res.Rho[i] - ref.Rho[i])
		rhoSum += ref.Rho[i]
	}
	tau1 := float64(exact) / float64(ds.N())
	tau2 := 1 - absErr/rhoSum
	if tau1 < 0.80 {
		t.Fatalf("tau1 = %.4f, want >= 0.80 at A=0.99", tau1)
	}
	if tau2 < 0.97 {
		t.Fatalf("tau2 = %.4f, want >= 0.97 at A=0.99", tau2)
	}
}

func TestLSHDDPDeterministicAcrossRuns(t *testing.T) {
	ds := dataset.Blobs("lsh-det", 400, 5, 4, 80, 3, 23)
	cfg := LSHConfig{
		Config:   Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 77},
		Accuracy: 0.95, M: 6, Pi: 3,
	}
	a, err := RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rho {
		if a.Rho[i] != b.Rho[i] || a.Delta[i] != b.Delta[i] || a.Upslope[i] != b.Upslope[i] {
			t.Fatalf("nondeterministic result at %d: (%v,%v,%d) vs (%v,%v,%d)",
				i, a.Rho[i], a.Delta[i], a.Upslope[i], b.Rho[i], b.Delta[i], b.Upslope[i])
		}
	}
	if a.Stats.Dc != b.Stats.Dc || a.Stats.W != b.Stats.W {
		t.Fatalf("nondeterministic parameters: dc %v vs %v, w %v vs %v", a.Stats.Dc, b.Stats.Dc, a.Stats.W, b.Stats.W)
	}
}

func TestLSHDDPShuffleCheaperThanBasic(t *testing.T) {
	ds := dataset.Blobs("lsh-vs-basic-cost", 2000, 8, 6, 120, 3, 31)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	// Block size 50 gives n=40 blocks, so Basic-DDP shuffles each point
	// ~20 times per job vs LSH-DDP's M=10; at the paper's scale (N=500k,
	// block 500 ⇒ n=1000) the gap is far larger.
	basic, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config:    Config{Engine: testEngine(), Dc: dc},
		BlockSize: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	lshRes, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), Dc: dc, Seed: 3},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lshRes.Stats.DistanceComputations >= basic.Stats.DistanceComputations {
		t.Fatalf("LSH-DDP distance count %d not below Basic-DDP %d",
			lshRes.Stats.DistanceComputations, basic.Stats.DistanceComputations)
	}
	if lshRes.Stats.ShuffleBytes >= basic.Stats.ShuffleBytes {
		t.Fatalf("LSH-DDP shuffle %d not below Basic-DDP %d",
			lshRes.Stats.ShuffleBytes, basic.Stats.ShuffleBytes)
	}
}

func TestLSHDDPClusterAgreesWithBasic(t *testing.T) {
	ds := dataset.Blobs("lsh-vs-basic-quality", 800, 2, 4, 150, 3, 41)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	basic, err := RunBasicDDP(context.Background(), ds, BasicConfig{Config: Config{Engine: testEngine(), Dc: dc}})
	if err != nil {
		t.Fatal(err)
	}
	lshRes, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), Dc: dc, Seed: 6},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, bl, err := basic.Cluster(ds, SelectTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	_, ll, err := lshRes.Cluster(ds, SelectTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	// Compare partitions up to label permutation via pair agreement.
	agree, total := 0, 0
	for i := 0; i < ds.N(); i += 3 {
		for j := i + 1; j < ds.N(); j += 3 {
			total++
			if (bl[i] == bl[j]) == (ll[i] == ll[j]) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.98 {
		t.Fatalf("pairwise cluster agreement %.4f, want >= 0.98", frac)
	}
}

func TestLSHDDPInfiniteDeltaRectified(t *testing.T) {
	// With a narrow width, density peaks of separate clusters land in
	// different partitions and become local absolute peaks with δ̂ = ∞;
	// Cluster() must rectify those before selection.
	ds := dataset.Blobs("lsh-inf", 600, 2, 6, 300, 2, 51)
	res, err := RunLSHDDP(context.Background(), ds, LSHConfig{
		Config:   Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 12},
		Accuracy: 0.9, M: 5, Pi: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	infs := 0
	for _, d := range res.Delta {
		if math.IsInf(d, 1) {
			infs++
		}
	}
	if infs == 0 {
		t.Skip("no infinite deltas produced with this seed; nothing to rectify")
	}
	_, labels, err := res.Cluster(ds, SelectTopK(6))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range labels {
		if l < 0 || l >= 6 {
			t.Fatalf("label[%d] = %d out of range", i, l)
		}
	}
	// Cluster must not mutate the result: the raw Delta keeps its ∞.
	stillInf := 0
	for _, d := range res.Delta {
		if math.IsInf(d, 1) {
			stillInf++
		}
	}
	if stillInf != infs {
		t.Fatalf("Cluster mutated Result.Delta: %d infinities left, want %d", stillInf, infs)
	}
	// A rectified graph, by contrast, has none.
	g, err := res.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g.Rectify()
	for i, d := range g.Delta {
		if math.IsInf(d, 0) {
			t.Fatalf("delta[%d] still infinite after Rectify", i)
		}
	}
}
