package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

// Distributed halo detection — an extension beyond the reproduced paper.
// The original DP paper (Rodriguez & Laio) separates each cluster into a
// core and a halo: the border density ρ_b of a cluster is the highest
// average density over cross-cluster point pairs within d_c, and points
// below their cluster's ρ_b are halo (likely noise). Computing ρ_b needs
// cross-cluster d_c-pairs — the same local structure LSH-DDP's partitions
// preserve — so it distributes with the identical two-job pattern: local
// border maxima per LSH partition, then a max aggregation per cluster.
// Like ρ̂, each local estimate can only miss pairs, so the aggregated ρ̂_b
// is an underestimate whose quality improves with M (Theorem 1's logic).

// Job names for the rpcmr registry.
const (
	JobLSHHalo    = "lsh-ddp-halo"
	JobLSHHaloAgg = "lsh-ddp-halo-agg"
)

// HaloResult carries per-point halo flags and the per-cluster border
// densities that produced them.
type HaloResult struct {
	// Halo[i] is true when point i's density is below its cluster's
	// border density.
	Halo []bool
	// Border[c] is the estimated border density ρ̂_b of cluster c.
	Border []float64
	// Stats covers the two halo jobs.
	Stats Stats
}

// labeled point record: RhoPoint | int32 label.
func encodeLabeled(rp points.RhoPoint, label int32) []byte {
	buf := points.AppendRhoPoint(nil, rp)
	return binary.LittleEndian.AppendUint32(buf, uint32(label))
}

func decodeLabeled(v []byte) (points.RhoPoint, int32, error) {
	rp, rest, err := points.DecodeRhoPoint(v)
	if err != nil {
		return points.RhoPoint{}, 0, err
	}
	if len(rest) != 4 {
		return points.RhoPoint{}, 0, fmt.Errorf("core: labeled point tail is %d bytes, want 4", len(rest))
	}
	return rp, int32(binary.LittleEndian.Uint32(rest)), nil
}

// border record keyed by cluster: float64 border density.
func clusterKey(c int32) string { return fmt.Sprintf("c%06d", c) }

// LSHHaloJob computes, per LSH partition, each cluster's local border
// density: the max of (ρ_i+ρ_j)/2 over cross-cluster pairs within d_c.
func LSHHaloJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobLSHHalo,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			layouts := layoutsFromConf(ctx.Conf)
			rp, _, err := decodeLabeled(value)
			if err != nil {
				return err
			}
			for _, key := range layouts.Keys(rp.Pos) {
				out.Emit(key, value)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
			dc := ctx.Conf.GetFloat(confDc, 0)
			dc2 := dc * dc
			// Batch-decode the partition into one SoA matrix (labels in a
			// parallel column) so the pairwise scan walks flat storage
			// instead of per-record heap Vectors.
			m := points.GetMatrix()
			defer points.PutMatrix(m)
			labels := make([]int32, 0, len(values))
			for _, v := range values {
				rest, err := m.AppendRhoPoint(v)
				if err != nil {
					return err
				}
				if len(rest) != 4 {
					return fmt.Errorf("core: labeled point tail is %d bytes, want 4", len(rest))
				}
				labels = append(labels, int32(binary.LittleEndian.Uint32(rest)))
			}
			border := map[int32]float64{}
			var nd int64
			for i := 0; i < m.N(); i++ {
				ri := m.Row(i)
				for j := i + 1; j < m.N(); j++ {
					if labels[i] == labels[j] {
						continue
					}
					nd++
					if points.SqDist(ri, m.Row(j)) >= dc2 {
						continue
					}
					avg := (m.Rho(i) + m.Rho(j)) / 2
					if avg > border[labels[i]] {
						border[labels[i]] = avg
					}
					if avg > border[labels[j]] {
						border[labels[j]] = avg
					}
				}
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for c, b := range border {
				out.Emit(clusterKey(c), points.EncodeFloat64(b))
			}
			return nil
		},
	}
}

// LSHHaloAggJob folds per-partition border maxima into the final border
// density per cluster. Max is associative, so the fold doubles as the
// combiner.
func LSHHaloAggJob(conf mapreduce.Conf) *mapreduce.Job {
	fold := func(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
		var maxB float64
		for _, v := range values {
			if b := points.DecodeFloat64(v); b > maxB {
				maxB = b
			}
		}
		out.Emit(key, points.EncodeFloat64(maxB))
		return nil
	}
	return &mapreduce.Job{
		Name:    JobLSHHaloAgg,
		Conf:    conf,
		Map:     identityMap,
		Combine: fold,
		Reduce:  fold,
	}
}

// RunLSHHalo estimates the core/halo split for an existing clustering:
// rho are the (approximate) densities, labels the cluster assignment from
// Result.Cluster, dc the cutoff used to produce them. LSH parameters
// follow cfg exactly as in RunLSHDDP (width solved from cfg.Accuracy when
// cfg.W is 0).
func RunLSHHalo(ctx context.Context, ds *points.Dataset, rho []float64, labels []int32, dc float64, cfg LSHConfig) (*HaloResult, error) {
	start := time.Now()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(rho) != ds.N() || len(labels) != ds.N() {
		return nil, fmt.Errorf("core: halo needs %d rho and labels, have %d and %d",
			ds.N(), len(rho), len(labels))
	}
	if dc <= 0 {
		return nil, fmt.Errorf("core: halo needs a positive d_c")
	}
	nClusters := int32(0)
	for i, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("core: point %d has negative label", i)
		}
		if l+1 > nClusters {
			nClusters = l + 1
		}
	}
	w := cfg.W
	if w <= 0 {
		var err error
		w, err = solveWidthForConfig(&cfg, dc)
		if err != nil {
			return nil, err
		}
	}
	conf := mapreduce.Conf{}
	conf.SetFloat(confDc, dc)
	conf.SetInt(confDim, ds.Dim())
	conf.SetInt(confM, cfg.m())
	conf.SetInt(confPi, cfg.pi())
	conf.SetFloat(confW, w)
	conf.SetInt64(confSeed, cfg.Seed)

	input := make([]mapreduce.Pair, ds.N())
	for i, p := range ds.Points {
		input[i] = mapreduce.Pair{Value: encodeLabeled(points.RhoPoint{Point: p, Rho: rho[i]}, labels[i])}
	}
	sess := cfg.DagSession()
	mark := MarkRunner(sess.Runner())
	traceMark := len(sess.Traces())
	dagBefore := sess.Counters()
	in := sess.Stage("halo-points", input)

	g := dag.NewGraph("lsh-halo")
	partials := g.Job(LSHHaloJob(conf).WithReduces(cfg.NumReduces), in)
	agg := g.Job(LSHHaloAggJob(mapreduce.Conf{}).WithReduces(cfg.NumReduces), partials)
	outs, err := sess.Run(ctx, g, agg)
	if err != nil {
		return nil, err
	}

	res := &HaloResult{
		Halo:   make([]bool, ds.N()),
		Border: make([]float64, nClusters),
	}
	for _, p := range outs[0] {
		var c int32
		if _, err := fmt.Sscanf(p.Key, "c%d", &c); err != nil {
			return nil, fmt.Errorf("core: bad cluster key %q", p.Key)
		}
		if c < 0 || c >= nClusters {
			return nil, fmt.Errorf("core: cluster key %d out of range", c)
		}
		res.Border[c] = points.DecodeFloat64(p.Value)
	}
	for i := range res.Halo {
		res.Halo[i] = rho[i] < res.Border[labels[i]]
	}
	res.Stats.Dc = dc
	res.Stats.W = w
	res.Stats.Pi = cfg.pi()
	res.Stats.M = cfg.m()
	CollectStats(&res.Stats, sess.Runner(), mark, start)
	CollectDagStats(&res.Stats, sess, traceMark, dagBefore)
	return res, nil
}

// solveWidthForConfig mirrors RunLSHDDP's width derivation.
func solveWidthForConfig(cfg *LSHConfig, dc float64) (float64, error) {
	return lsh.SolveWidth(cfg.accuracy(), dc, cfg.pi(), cfg.m())
}

// HaloJobFactories returns the registry entries for the halo jobs.
func HaloJobFactories() map[string]func(mapreduce.Conf) *mapreduce.Job {
	return map[string]func(mapreduce.Conf) *mapreduce.Job{
		JobLSHHalo:    LSHHaloJob,
		JobLSHHaloAgg: LSHHaloAggJob,
	}
}
