package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/points"
)

// haloFixture runs LSH-DDP + clustering on two OVERLAPPING Gaussian
// clusters — cross-cluster d_c-pairs exist in the valley between them, so
// border densities are non-trivial — and returns everything halo detection
// needs.
func haloFixture(t *testing.T) (ds *points.Dataset, rho []float64, labels []int32, dc float64) {
	t.Helper()
	rng := points.NewRand(31)
	var vs []points.Vector
	for i := 0; i < 400; i++ {
		vs = append(vs, points.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
	}
	for i := 0; i < 400; i++ {
		vs = append(vs, points.Vector{14 + rng.NormFloat64()*3, rng.NormFloat64() * 3})
	}
	base := points.FromVectors("halo-fix", vs)
	res, err := RunLSHDDP(context.Background(), base, LSHConfig{
		Config:   Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 3},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, lab, err := res.Cluster(base, SelectTopK(2))
	if err != nil {
		t.Fatal(err)
	}
	return base, res.Rho, lab, res.Stats.Dc
}

func TestRunLSHHaloFlagsSparseBridge(t *testing.T) {
	ds, rho, labels, dc := haloFixture(t)
	hr, err := RunLSHHalo(context.Background(), ds, rho, labels, dc, LSHConfig{
		Config:   Config{Engine: testEngine(), Seed: 3},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.Halo) != ds.N() || len(hr.Border) < 2 {
		t.Fatalf("halo shapes: %d flags, %d borders", len(hr.Halo), len(hr.Border))
	}
	// The overlap region must produce halo points, but cluster cores
	// (densest points) must survive.
	total := 0
	for _, h := range hr.Halo {
		if h {
			total++
		}
	}
	if total == 0 {
		t.Fatal("no halo points on overlapping clusters")
	}
	if total > ds.N()*3/4 {
		t.Fatalf("%d/%d points flagged halo", total, ds.N())
	}
	// Halo points are systematically less dense than core points.
	var haloRho, coreRho float64
	for i, h := range hr.Halo {
		if h {
			haloRho += rho[i]
		} else {
			coreRho += rho[i]
		}
	}
	if haloRho/float64(total) >= coreRho/float64(ds.N()-total) {
		t.Fatal("halo points are not less dense than core points")
	}
	// The LSH border estimate is an underestimate, so the estimated halo
	// set must be a subset of the exact halo set.
	exactBorder := exactBorders(ds, labels, rho, dc, len(hr.Border))
	for i, h := range hr.Halo {
		if h && rho[i] >= exactBorder[labels[i]] {
			t.Fatalf("point %d flagged halo but exceeds the exact border", i)
		}
	}
}

func TestRunLSHHaloUnderestimatesExactBorder(t *testing.T) {
	ds, rho, labels, dc := haloFixture(t)
	hr, err := RunLSHHalo(context.Background(), ds, rho, labels, dc, LSHConfig{
		Config:   Config{Engine: testEngine(), Seed: 3},
		Accuracy: 0.99, M: 10, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	exactBorder := exactBorders(ds, labels, rho, dc, len(hr.Border))
	for c := range hr.Border {
		if hr.Border[c] > exactBorder[c]+1e-9 {
			t.Fatalf("cluster %d: estimated border %v exceeds exact %v", c, hr.Border[c], exactBorder[c])
		}
	}
}

func TestRunLSHHaloValidation(t *testing.T) {
	ds := dataset.Blobs("halo-bad", 50, 2, 2, 100, 2, 1)
	rho := make([]float64, 50)
	labels := make([]int32, 50)
	cfg := LSHConfig{Config: Config{Engine: testEngine()}}
	if _, err := RunLSHHalo(context.Background(), ds, rho[:10], labels, 1, cfg); err == nil {
		t.Fatal("want error for short rho")
	}
	if _, err := RunLSHHalo(context.Background(), ds, rho, labels, 0, cfg); err == nil {
		t.Fatal("want error for dc=0")
	}
	labels[3] = -1
	if _, err := RunLSHHalo(context.Background(), ds, rho, labels, 1, cfg); err == nil {
		t.Fatal("want error for negative label")
	}
}

// exactBorders recomputes border densities by brute force.
func exactBorders(ds *points.Dataset, labels []int32, rho []float64, dc float64, k int) []float64 {
	border := make([]float64, k)
	dc2 := dc * dc
	for i := 0; i < ds.N(); i++ {
		for j := i + 1; j < ds.N(); j++ {
			if labels[i] == labels[j] {
				continue
			}
			if points.SqDist(ds.Points[i].Pos, ds.Points[j].Pos) < dc2 {
				avg := (rho[i] + rho[j]) / 2
				if avg > border[labels[i]] {
					border[labels[i]] = avg
				}
				if avg > border[labels[j]] {
					border[labels[j]] = avg
				}
			}
		}
	}
	return border
}

func TestHaloJobFactoriesComplete(t *testing.T) {
	fs := HaloJobFactories()
	if fs[JobLSHHalo] == nil || fs[JobLSHHaloAgg] == nil {
		t.Fatal("halo factories incomplete")
	}
}
