package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/points"
)

// Property suite for the paper's two structural guarantees, over random
// small data sets and random LSH configurations:
//
//	(1) ρ̂_i ≤ ρ_i always (every local estimate undercounts; max keeps that).
//	(2) where ρ̂ = ρ exactly, δ̂_i ≥ δ_i (each local δ̂ minimizes over a
//	    subset of the true candidate set; min keeps that).
//	(3) adding layouts never decreases ρ̂ (Theorem 1's monotonicity).
func TestLSHDDPStructuralProperties(t *testing.T) {
	f := func(seedRaw uint32, mRaw, piRaw uint8) bool {
		seed := int64(seedRaw%1000) + 1
		m := int(mRaw%6) + 1
		pi := int(piRaw%4) + 1

		rng := points.NewRand(seed)
		vs := make([]points.Vector, 80)
		for i := range vs {
			vs[i] = points.Vector{rng.Float64() * 20, rng.Float64() * 20, rng.Float64() * 20}
		}
		ds := points.FromVectors("prop", vs)
		dc := dp.CutoffByPercentile(ds, 0.05, seed)
		if dc <= 0 {
			return true
		}
		exact, err := dp.Compute(ds, dc, dp.Options{})
		if err != nil {
			return false
		}
		// Pin the width: letting each run re-solve w from its own M would
		// change the hash functions and break the layout-prefix property
		// that monotonicity (3) relies on.
		run := func(mm int) (*Result, error) {
			return RunLSHDDP(context.Background(), ds, LSHConfig{
				Config: Config{Engine: testEngine(), Dc: dc, Seed: seed},
				M:      mm, Pi: pi, W: dc * 6,
			})
		}
		res, err := run(m)
		if err != nil {
			return false
		}
		for i := range exact.Rho {
			if res.Rho[i] > exact.Rho[i] { // (1)
				return false
			}
			if res.Rho[i] == exact.Rho[i] && exact.Upslope[i] != -1 {
				if res.Delta[i] < exact.Delta[i]-1e-9 { // (2)
					return false
				}
			}
		}
		// (3): note the extra layouts must EXTEND the first m (same seed
		// derivation in lsh.NewLayouts), so rho-hat can only improve.
		bigger, err := run(m + 2)
		if err != nil {
			return false
		}
		for i := range res.Rho {
			if bigger.Rho[i] < res.Rho[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: the d_c sampling job returns a value inside the true pairwise
// distance range for arbitrary small data sets.
func TestDcSampleWithinRange(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := int64(seedRaw%500) + 1
		rng := points.NewRand(seed)
		vs := make([]points.Vector, 60)
		for i := range vs {
			vs[i] = points.Vector{rng.Float64() * 9, rng.NormFloat64()}
		}
		ds := points.FromVectors("dc-prop", vs)
		res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
			Config: Config{Engine: testEngine(), DcPercentile: 0.02, Seed: seed},
		})
		if err != nil {
			return false
		}
		var minD, maxD = math.Inf(1), 0.0
		for i := 0; i < ds.N(); i++ {
			for j := i + 1; j < ds.N(); j++ {
				d := points.Dist(ds.Points[i].Pos, ds.Points[j].Pos)
				if d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			}
		}
		return res.Stats.Dc >= minD && res.Stats.Dc <= maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
