package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

// testEngine keeps unit-test runs deterministic and modest.
func testEngine() mapreduce.Engine {
	return &mapreduce.LocalEngine{Parallelism: 4}
}

// exactReference computes sequential DP for comparison.
func exactReference(t *testing.T, ds *points.Dataset, dc float64) *dp.Result {
	t.Helper()
	ref, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		t.Fatalf("dp.Compute: %v", err)
	}
	return ref
}

func TestBasicDDPMatchesSequentialDP(t *testing.T) {
	ds := dataset.Blobs("basic-vs-dp", 400, 3, 4, 100, 4, 7)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)
	ref := exactReference(t, ds, dc)

	for _, blockSize := range []int{50, 97, 400, 1000} {
		res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
			Config:    Config{Engine: testEngine(), Dc: dc},
			BlockSize: blockSize,
		})
		if err != nil {
			t.Fatalf("blockSize=%d: %v", blockSize, err)
		}
		for i := range ref.Rho {
			if res.Rho[i] != ref.Rho[i] {
				t.Fatalf("blockSize=%d: rho[%d] = %v, want %v", blockSize, i, res.Rho[i], ref.Rho[i])
			}
			if math.Abs(res.Delta[i]-ref.Delta[i]) > 1e-9 {
				t.Fatalf("blockSize=%d: delta[%d] = %v, want %v", blockSize, i, res.Delta[i], ref.Delta[i])
			}
			if res.Upslope[i] != ref.Upslope[i] {
				t.Fatalf("blockSize=%d: upslope[%d] = %d, want %d (rho=%v delta=%v)",
					blockSize, i, res.Upslope[i], ref.Upslope[i], ref.Rho[i], ref.Delta[i])
			}
		}
	}
}

func TestBasicDDPDistanceCount(t *testing.T) {
	ds := dataset.Blobs("basic-cost", 300, 2, 3, 50, 2, 3)
	n := int64(ds.N())
	res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config:    Config{Engine: testEngine(), Dc: 1.5},
		BlockSize: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ρ job and δ job each evaluate every unordered pair exactly once.
	want := 2 * (n * (n - 1) / 2)
	if res.Stats.DistanceComputations != want {
		t.Fatalf("distance computations = %d, want %d", res.Stats.DistanceComputations, want)
	}
}

func TestBasicDDPAutoDc(t *testing.T) {
	ds := dataset.Blobs("basic-autodc", 500, 2, 3, 50, 2, 11)
	res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config: Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Dc <= 0 {
		t.Fatalf("auto d_c = %v, want positive", res.Stats.Dc)
	}
	// The 2% quantile of pair distances must be well below the diameter.
	lo, hi := ds.Bounds()
	diam := points.Dist(lo, hi)
	if res.Stats.Dc >= diam {
		t.Fatalf("auto d_c %v not below diameter %v", res.Stats.Dc, diam)
	}
}

func TestBasicDDPAbsolutePeak(t *testing.T) {
	ds := dataset.Blobs("basic-peak", 200, 2, 1, 10, 1, 2)
	dc := dp.CutoffByPercentile(ds, 0.05, 1)
	res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config:    Config{Engine: testEngine(), Dc: dc},
		BlockSize: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one point has no upslope, and its δ is the max distance from
	// it to any other point.
	peak := -1
	for i, u := range res.Upslope {
		if u == -1 {
			if peak != -1 {
				t.Fatalf("two absolute peaks: %d and %d", peak, i)
			}
			peak = i
		}
	}
	if peak == -1 {
		t.Fatal("no absolute peak found")
	}
	var maxD float64
	for j := range ds.Points {
		if j == peak {
			continue
		}
		if d := points.Dist(ds.Points[peak].Pos, ds.Points[j].Pos); d > maxD {
			maxD = d
		}
	}
	if math.Abs(res.Delta[peak]-maxD) > 1e-9 {
		t.Fatalf("peak delta = %v, want max distance %v", res.Delta[peak], maxD)
	}
}

func TestBasicDDPClusterRecovery(t *testing.T) {
	ds := dataset.Blobs("basic-clusters", 600, 2, 4, 200, 3, 13)
	res, err := RunBasicDDP(context.Background(), ds, BasicConfig{
		Config: Config{Engine: testEngine(), DcPercentile: 0.02, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	peaks, labels, err := res.Cluster(ds, SelectTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 4 {
		t.Fatalf("selected %d peaks, want 4", len(peaks))
	}
	// Each recovered cluster should be label-pure w.r.t. the generator:
	// count the majority ground-truth label per cluster.
	agree := 0
	for c := 0; c < 4; c++ {
		counts := map[int]int{}
		for i, l := range labels {
			if int(l) == c {
				counts[ds.Labels[i]]++
			}
		}
		best := 0
		total := 0
		for _, n := range counts {
			total += n
			if n > best {
				best = n
			}
		}
		if total == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
		agree += best
	}
	purity := float64(agree) / float64(ds.N())
	if purity < 0.95 {
		t.Fatalf("cluster purity %.3f, want >= 0.95", purity)
	}
}

func TestBasicDDPErrors(t *testing.T) {
	tiny := points.FromVectors("tiny", []points.Vector{{0, 0}})
	if _, err := RunBasicDDP(context.Background(), tiny, BasicConfig{Config: Config{Engine: testEngine()}}); err == nil {
		t.Fatal("want error for single-point data set")
	}
	// Degenerate data (all identical points) cannot produce a positive d_c.
	same := points.FromVectors("same", []points.Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}})
	if _, err := RunBasicDDP(context.Background(), same, BasicConfig{Config: Config{Engine: testEngine()}}); err == nil {
		t.Fatal("want error for degenerate data set")
	}
}
