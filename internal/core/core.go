// Package core implements the paper's distributed Density Peaks algorithms
// on top of the internal/mapreduce framework:
//
//   - Basic-DDP (Section III): the exact baseline. A sampling MapReduce job
//     chooses the cutoff d_c, a blocked all-pairs job plus an aggregation
//     job compute exact ρ, a second blocked job plus aggregation compute
//     exact δ and upslope points, and a centralized step selects peaks and
//     assigns clusters.
//
//   - LSH-DDP (Section IV): the approximate contribution. Points are
//     partitioned under M locality-sensitive hash layouts (π p-stable
//     functions of width w each); local ρ̂ are computed per partition and
//     aggregated with max (Theorem 1); local δ̂/upslope are computed per
//     partition using the aggregated ρ̂ and aggregated with min (Theorem 2);
//     local absolute peaks get δ̂ = +∞, rectified in the centralized step
//     (Section IV-C).
//
// Both runners work on any mapreduce.Engine — the in-process LocalEngine or
// the distributed rpcmr cluster — and report the paper's cost metrics
// (wall time per job, shuffled bytes, distance computations) in Stats.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/decision"
	"repro/internal/dp"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/obs"
	"repro/internal/points"
)

// Common Conf keys shared by the jobs in this package. Everything a job
// needs travels in its Conf so the distributed engine can rebuild the job
// on a remote worker from (name, conf) alone.
const (
	confDc         = "ddp.dc"
	confSampleFrac = "ddp.dc.sample.frac"
	confPercentile = "ddp.dc.percentile"
	confBlocks     = "ddp.basic.blocks"
	confDim        = "ddp.dim"
	confM          = "ddp.lsh.m"
	confPi         = "ddp.lsh.pi"
	confW          = "ddp.lsh.w"
	confSeed       = "ddp.seed"
	confAggMean    = "ddp.lsh.aggregate.mean"
	confMaxPart    = "ddp.lsh.max.partition"
)

// Job names, used by the rpcmr job registry.
const (
	JobDcSample  = "ddp-dc-sample"
	JobBasicRho  = "basic-ddp-rho"
	JobBasicAgg  = "basic-ddp-rho-agg"
	JobBasicDel  = "basic-ddp-delta"
	JobBasicDAgg = "basic-ddp-delta-agg"
	JobLSHRho    = "lsh-ddp-rho"
	JobLSHRhoAgg = "lsh-ddp-rho-agg"
	JobLSHDel    = "lsh-ddp-delta"
	JobLSHDelAgg = "lsh-ddp-delta-agg"
)

// Stats aggregates the cost metrics the paper reports.
type Stats struct {
	// Wall is total elapsed time including the centralized step.
	Wall time.Duration
	// JobWall is the summed wall time of the MapReduce jobs only.
	JobWall time.Duration
	// Jobs holds per-job statistics in execution order.
	Jobs []mapreduce.JobStats
	// ShuffleBytes is the total intermediate data volume (Figure 10(b)).
	ShuffleBytes int64
	// DistanceComputations counts pairwise distance evaluations
	// (Figure 10(c)).
	DistanceComputations int64
	// Phases aggregates the trace spans of every job by phase (map /
	// combine / sort / shuffle / reduce): task counts, wall time,
	// records, and bytes — where the run spent its time.
	Phases obs.PhaseTotals
	// Dag holds this run's dag.* scheduler counter deltas (nodes run,
	// cache hits/misses, staged and collected bytes) — see the dag
	// package's Ctr* constants.
	Dag map[string]int64
	// Dc is the cutoff distance used (chosen or configured).
	Dc float64
	// W, Pi, M record the LSH parameters actually used (LSH-DDP only).
	W  float64
	Pi int
	M  int
}

// Result is the outcome of a distributed DP run: per-point quantities
// indexed by point ID, plus run statistics. Delta may contain +Inf for
// LSH-DDP local peaks until Graph().Rectify() is applied (Cluster does this
// automatically).
type Result struct {
	Rho     []float64
	Delta   []float64
	Upslope []int32
	Stats   Stats
}

// Graph wraps the result arrays as a decision graph. Delta is copied:
// Graph.Rectify rewrites infinite δ in place, and callers reasonably
// expect Result to stay untouched across Cluster calls.
func (r *Result) Graph() (*decision.Graph, error) {
	return decision.NewGraph(r.Rho, append([]float64(nil), r.Delta...), r.Upslope)
}

// PeakSelector picks density peaks on a (rectified) decision graph.
type PeakSelector func(*decision.Graph) []int32

// SelectTopK returns a selector choosing the k largest-γ points.
func SelectTopK(k int) PeakSelector {
	return func(g *decision.Graph) []int32 { return g.SelectTopK(k) }
}

// SelectBox returns a selector choosing the (ρ>rhoMin, δ>deltaMin) box.
func SelectBox(rhoMin, deltaMin float64) PeakSelector {
	return func(g *decision.Graph) []int32 { return g.SelectBox(rhoMin, deltaMin) }
}

// SelectOutliers returns a selector choosing γ outliers above
// mean+sigmas·std.
func SelectOutliers(sigmas float64) PeakSelector {
	return func(g *decision.Graph) []int32 { return g.SelectOutliers(sigmas) }
}

// Cluster performs the centralized step (Section III, Step 3): rectify
// infinite δ, select peaks with the given selector, and assign every point
// to a peak by following upslope chains. It returns the selected peak IDs
// and per-point cluster labels (indexes into peaks).
func (r *Result) Cluster(ds *points.Dataset, sel PeakSelector) (peaks []int32, labels []int32, err error) {
	g, err := r.Graph()
	if err != nil {
		return nil, nil, err
	}
	g.Rectify()
	peaks = sel(g)
	labels, err = g.Assign(ds, peaks)
	if err != nil {
		return nil, nil, err
	}
	return peaks, labels, nil
}

// Config carries the knobs shared by both distributed algorithms.
type Config struct {
	// Engine runs the MapReduce jobs; nil means a default LocalEngine.
	Engine mapreduce.Engine
	// NumReduces is the reduce-task count per job; <=0 lets the engine
	// decide.
	NumReduces int
	// Dc fixes the cutoff distance. When 0, a preprocessing sampling job
	// chooses it as the DcPercentile quantile of sampled pair distances
	// (Section III-A's rule of thumb).
	Dc float64
	// DcPercentile is the quantile for automatic d_c (default 0.02).
	DcPercentile float64
	// DcSamplePoints bounds the number of points the d_c job samples
	// (default 450, ≈100k pair distances at the single reducer).
	DcSamplePoints int
	// Seed drives every randomized choice (sampling, LSH draws).
	Seed int64
	// Kernel selects the density estimator (cutoff by default; the
	// Gaussian variant of the original DP paper is supported as an
	// extension — see kernel.go).
	Kernel dp.Kernel
	// ParallelThreshold enables intra-partition parallelism: reducer
	// groups of at least this many points split their pairwise tile grid
	// across a bounded worker pool, so one skewed LSH partition (the
	// Figure 12 straggler effect) no longer pins its reduce task to a
	// single core. 0 (the default) keeps every group on the serial,
	// bit-identical kernels. δ results and cutoff-kernel ρ stay
	// bit-identical either way; Gaussian ρ may differ in the last ulps.
	ParallelThreshold int
	// ParallelWorkers bounds the per-group worker pool; <=0 means
	// GOMAXPROCS (capped at 16). Only meaningful with ParallelThreshold.
	ParallelWorkers int
	// ScanPrecision selects the reducer-side pairwise scan representation
	// (conf key "mr.scan.precision"): "" or "f64" keeps the float64
	// kernels; "f32" streams a float32 mirror of each reducer group and
	// re-checks only band-inconclusive pairs in float64, halving scan
	// bandwidth. δ results and cutoff-kernel ρ stay bit-identical; Gaussian
	// ρ is computed from the float32 distance within documented tolerance
	// (DESIGN.md "Compact scan path"). Groups that cross ParallelThreshold
	// use the parallel float64 kernels instead. q8 is serving-only.
	ScanPrecision string
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Trace, when non-nil, collects every job's structured trace; wire it
	// to obs.Trace.WriteJSONL / WriteTree for per-task phase timing.
	Trace *obs.Trace
	// Session, when non-nil, is a shared DAG session the pipeline
	// schedules onto: its node-result cache and staged datasets persist
	// across pipeline runs, so an unchanged sub-pipeline (the d_c job, the
	// ρ jobs when only δ parameters moved, a repeated run) is served from
	// cache. Engine is ignored when set — the session's runner is used.
	Session *dag.Session
	// DagWorkers bounds concurrent DAG nodes when the pipeline builds its
	// own session (Session nil); 0 defers to the engine's declared job
	// concurrency. Conf key "mr.dag.workers".
	DagWorkers int
	// DagCacheMB sizes the per-run node-result cache in MiB when Session
	// is nil; 0 disables caching. Conf key "mr.dag.cache.mb". Cross-run
	// reuse needs a shared Session — a private cache only serves repeated
	// sub-graphs within one pipeline run.
	DagCacheMB int
}

func (c *Config) engine() mapreduce.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return &mapreduce.LocalEngine{}
}

// DagSession resolves the session a pipeline schedules its graph onto:
// the shared c.Session when set, otherwise a fresh private session over
// c.Engine with the c.Dag* knobs applied.
func (c *Config) DagSession() *dag.Session {
	if c.Session != nil {
		return c.Session
	}
	drv := mapreduce.NewDriver(c.engine())
	drv.Log = c.Log
	drv.Trace = c.Trace
	return dag.NewSession(drv, dag.Options{
		Workers:    c.DagWorkers,
		CacheBytes: int64(c.DagCacheMB) << 20,
		Log:        c.Log,
		Trace:      c.Trace,
	})
}

// DcPercentileOrDefault returns the effective d_c quantile (default 0.02).
func (c *Config) DcPercentileOrDefault() float64 {
	if c.DcPercentile > 0 {
		return c.DcPercentile
	}
	return 0.02
}

func (c *Config) samplePoints() int {
	if c.DcSamplePoints > 0 {
		return c.DcSamplePoints
	}
	return 450
}

// InputPairs encodes a dataset as the key-value input of the first job of
// every pipeline: one record per point, empty key, binary point value.
func InputPairs(ds *points.Dataset) []mapreduce.Pair {
	in := make([]mapreduce.Pair, ds.N())
	for i, p := range ds.Points {
		in[i] = mapreduce.Pair{Value: points.EncodePoint(p)}
	}
	return in
}

// RhoPointPairs encodes points annotated with their (approximate) density
// as input to the δ jobs.
func RhoPointPairs(ds *points.Dataset, rho []float64) []mapreduce.Pair {
	in := make([]mapreduce.Pair, ds.N())
	for i, p := range ds.Points {
		in[i] = mapreduce.Pair{Value: points.EncodeRhoPoint(points.RhoPoint{Point: p, Rho: rho[i]})}
	}
	return in
}

// ---- d_c preprocessing job (shared by Basic-DDP and LSH-DDP) ----

// DcSampleJob builds the preprocessing job: the map side samples points
// deterministically (seeded hash of the point ID) and routes them to a
// single reducer, which computes all pairwise distances of the sample and
// outputs the requested percentile — the MapReduce realization of the DP
// paper's d_c rule of thumb.
func DcSampleJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name:       JobDcSample,
		Conf:       conf,
		NumReduces: 1,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			frac := ctx.Conf.GetFloat(confSampleFrac, 1)
			seed := ctx.Conf.GetInt64(confSeed, 0)
			p, _, err := points.DecodePoint(value)
			if err != nil {
				return err
			}
			if sampleHash(p.ID, seed) < frac {
				out.Emit("dc", value)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
			q := ctx.Conf.GetFloat(confPercentile, 0.02)
			pts := make([]points.Point, 0, len(values))
			for _, v := range values {
				p, _, err := points.DecodePoint(v)
				if err != nil {
					return err
				}
				pts = append(pts, p)
			}
			dists := make([]float64, 0, len(pts)*(len(pts)-1)/2)
			distCtr := ctx.Counters.Cell(mapreduce.CtrDistanceComputations)
			var nd int64
			for i := range pts {
				for j := i + 1; j < len(pts); j++ {
					dists = append(dists, points.Dist(pts[i].Pos, pts[j].Pos))
					nd++
				}
			}
			distCtr.Add(nd)
			if len(dists) == 0 {
				return fmt.Errorf("core: d_c sample produced no pairs (sample too small)")
			}
			sort.Float64s(dists)
			idx := int(q*float64(len(dists))) - 1
			if idx < 0 {
				idx = 0
			}
			out.Emit("dc", points.EncodeFloat64(dists[idx]))
			return nil
		},
	}
}

// ChooseDc runs the shared d_c preprocessing job as a one-node graph on s
// unless cfg.Dc pins a value: it samples at most cfg.DcSamplePoints
// points, computes all pairwise distances at a single reducer, and
// returns the configured quantile (Section III-A's rule of thumb). Every
// algorithm package (Basic-DDP, LSH-DDP, EDDPC) calls this with its own
// session so the job shows up in that pipeline's stats and trace — and,
// on a shared cached session, is computed once per (input, conf) across
// pipelines.
func ChooseDc(ctx context.Context, s *dag.Session, ds *points.Dataset, cfg *Config, input *dag.Dataset) (float64, error) {
	if cfg.Dc > 0 {
		return cfg.Dc, nil
	}
	frac := 1.0
	if n := ds.N(); n > cfg.samplePoints() {
		frac = float64(cfg.samplePoints()) / float64(n)
	}
	conf := mapreduce.Conf{}
	conf.SetFloat(confSampleFrac, frac)
	conf.SetFloat(confPercentile, cfg.DcPercentileOrDefault())
	conf.SetInt64(confSeed, cfg.Seed)
	g := dag.NewGraph("choose-dc")
	dcOut := g.Job(DcSampleJob(conf), input)
	outs, err := s.Run(ctx, g, dcOut)
	if err != nil {
		return 0, err
	}
	out := outs[0]
	if len(out) != 1 {
		return 0, fmt.Errorf("core: d_c job produced %d records, want 1", len(out))
	}
	dc := points.DecodeFloat64(out[0].Value)
	if dc <= 0 {
		return 0, fmt.Errorf("core: sampled d_c is %v; data set may be degenerate (all points identical)", dc)
	}
	return dc, nil
}

// sampleHash maps (id, seed) to a uniform [0,1) value for deterministic
// Bernoulli sampling in map tasks.
func sampleHash(id int32, seed int64) float64 {
	x := uint64(uint32(id))*0x9E3779B97F4A7C15 ^ uint64(seed)*0xBF58476D1CE4E5B9
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// RunnerMark is a position in a runner's job history, taken before a
// pipeline runs so its stats can be carved out of a shared runner that
// has already executed other pipelines' jobs.
type RunnerMark struct {
	Jobs   int
	Traces int
}

// MarkRunner records the runner's current job-history position.
func MarkRunner(r mapreduce.Runner) RunnerMark {
	return RunnerMark{Jobs: len(r.Jobs()), Traces: len(r.Traces())}
}

// CollectStats folds the jobs the runner executed since mark — stats,
// counters, and per-phase trace aggregates — into Stats. It works on any
// Runner: local Driver or rpcmr Master. On a runner private to one
// pipeline run, a zero mark collects everything, matching the old
// whole-runner totals.
func CollectStats(st *Stats, r mapreduce.Runner, mark RunnerMark, start time.Time) {
	jobs := r.Jobs()
	if mark.Jobs <= len(jobs) {
		jobs = jobs[mark.Jobs:]
	}
	st.Jobs = jobs
	st.JobWall = 0
	st.ShuffleBytes = 0
	st.DistanceComputations = 0
	for _, j := range jobs {
		st.JobWall += j.Wall
		st.ShuffleBytes += j.Counters[mapreduce.CtrShuffleBytes]
		st.DistanceComputations += j.Counters[mapreduce.CtrDistanceComputations]
	}
	traces := r.Traces()
	if mark.Traces <= len(traces) {
		traces = traces[mark.Traces:]
	}
	st.Phases = obs.Totals(traces)
	st.Wall = time.Since(start)
}

// dagDelta subtracts two session counter snapshots, yielding one
// pipeline run's dag.* contribution on a possibly shared session.
func dagDelta(after, before map[string]int64) map[string]int64 {
	d := make(map[string]int64, len(after))
	for k, v := range after {
		if dv := v - before[k]; dv != 0 {
			d[k] = dv
		}
	}
	return d
}

// CollectDagStats folds the session's dag-level signals since the marks
// into Stats: this run's dag.* counter deltas (before = the counter
// snapshot taken ahead of the run), plus the scheduler's per-node spans
// merged into Phases under obs.PhaseDag. Call after CollectStats (which
// resets Phases).
func CollectDagStats(st *Stats, s *dag.Session, traceMark int, before map[string]int64) {
	st.Dag = dagDelta(s.Counters(), before)
	trs := s.Traces()
	if traceMark > len(trs) {
		traceMark = len(trs)
	}
	for ph, agg := range obs.Totals(trs[traceMark:]) {
		cur := st.Phases[ph]
		cur.Tasks += agg.Tasks
		cur.Wall += agg.Wall
		cur.Records += agg.Records
		cur.Bytes += agg.Bytes
		st.Phases[ph] = cur
	}
}
