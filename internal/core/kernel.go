package core

import (
	"math"

	"repro/internal/dp"
	"repro/internal/mapreduce"
)

// Kernel plumbing: the reproduced paper uses the cutoff kernel throughout,
// but its conclusion notes LSH-DDP should extend to DP variants. The
// Gaussian kernel from the original DP paper is such a variant, and both
// distributed pipelines support it: ρ contributions remain non-negative
// and additive, so Basic-DDP's partial sums stay exact and LSH-DDP's local
// estimates remain underestimates — Theorem 1's max aggregation stays
// valid.

const confKernel = "ddp.kernel"

// densityKernel evaluates one pair's contribution to ρ from its squared
// distance.
type densityKernel struct {
	gaussian bool
	dc2      float64
}

func kernelFromConf(conf mapreduce.Conf) densityKernel {
	dc := conf.GetFloat(confDc, 0)
	return densityKernel{
		gaussian: conf.GetInt(confKernel, int(dp.KernelCutoff)) == int(dp.KernelGaussian),
		dc2:      dc * dc,
	}
}

func setKernelConf(conf mapreduce.Conf, k dp.Kernel) {
	conf.SetInt(confKernel, int(k))
}

// weight returns the ρ contribution of a pair at squared distance d2:
// 1/0 under the cutoff kernel, exp(−d²/d_c²) under the Gaussian kernel.
func (k densityKernel) weight(d2 float64) float64 {
	if k.gaussian {
		return math.Exp(-d2 / k.dc2)
	}
	if d2 < k.dc2 {
		return 1
	}
	return 0
}
