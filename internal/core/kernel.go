package core

import (
	"repro/internal/dp"
	"repro/internal/kernels"
	"repro/internal/mapreduce"
)

// Kernel plumbing: the reproduced paper uses the cutoff kernel throughout,
// but its conclusion notes LSH-DDP should extend to DP variants. The
// Gaussian kernel from the original DP paper is such a variant, and both
// distributed pipelines support it: ρ contributions remain non-negative
// and additive, so Basic-DDP's partial sums stay exact and LSH-DDP's local
// estimates remain underestimates — Theorem 1's max aggregation stays
// valid.
//
// The pairwise evaluation itself lives in internal/kernels; this file only
// moves the kernel choice and the intra-partition parallelism knobs through
// job Conf so distributed workers rebuild them from (name, conf) alone.

const (
	confKernel       = "ddp.kernel"
	confParThreshold = "ddp.parallel.threshold"
	confParWorkers   = "ddp.parallel.workers"
)

func kernelFromConf(conf mapreduce.Conf) kernels.Kernel {
	dc := conf.GetFloat(confDc, 0)
	return kernels.Kernel{
		Gaussian: conf.GetInt(confKernel, int(dp.KernelCutoff)) == int(dp.KernelGaussian),
		Dc2:      dc * dc,
	}
}

func setKernelConf(conf mapreduce.Conf, k dp.Kernel) {
	conf.SetInt(confKernel, int(k))
}

// setParallelConf publishes the intra-partition parallelism knobs of cfg.
func setParallelConf(conf mapreduce.Conf, cfg *Config) {
	conf.SetInt(confParThreshold, cfg.ParallelThreshold)
	conf.SetInt(confParWorkers, cfg.ParallelWorkers)
}

func parallelFromConf(conf mapreduce.Conf) kernels.Parallel {
	return kernels.Parallel{
		Threshold: conf.GetInt(confParThreshold, 0),
		Workers:   conf.GetInt(confParWorkers, 0),
	}
}
