package core

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/kernels"
	"repro/internal/mapreduce"
)

// Kernel plumbing: the reproduced paper uses the cutoff kernel throughout,
// but its conclusion notes LSH-DDP should extend to DP variants. The
// Gaussian kernel from the original DP paper is such a variant, and both
// distributed pipelines support it: ρ contributions remain non-negative
// and additive, so Basic-DDP's partial sums stay exact and LSH-DDP's local
// estimates remain underestimates — Theorem 1's max aggregation stays
// valid.
//
// The pairwise evaluation itself lives in internal/kernels; this file only
// moves the kernel choice and the intra-partition parallelism knobs through
// job Conf so distributed workers rebuild them from (name, conf) alone.

const (
	confKernel       = "ddp.kernel"
	confParThreshold = "ddp.parallel.threshold"
	confParWorkers   = "ddp.parallel.workers"
)

func kernelFromConf(conf mapreduce.Conf) kernels.Kernel {
	dc := conf.GetFloat(confDc, 0)
	return kernels.Kernel{
		Gaussian: conf.GetInt(confKernel, int(dp.KernelCutoff)) == int(dp.KernelGaussian),
		Dc2:      dc * dc,
	}
}

func setKernelConf(conf mapreduce.Conf, k dp.Kernel) {
	conf.SetInt(confKernel, int(k))
}

// setParallelConf publishes the intra-partition parallelism knobs of cfg.
func setParallelConf(conf mapreduce.Conf, cfg *Config) {
	conf.SetInt(confParThreshold, cfg.ParallelThreshold)
	conf.SetInt(confParWorkers, cfg.ParallelWorkers)
}

func parallelFromConf(conf mapreduce.Conf) kernels.Parallel {
	return kernels.Parallel{
		Threshold: conf.GetInt(confParThreshold, 0),
		Workers:   conf.GetInt(confParWorkers, 0),
	}
}

// setScanConf publishes the reducer scan precision (mr.scan.precision).
func setScanConf(conf mapreduce.Conf, cfg *Config) {
	if cfg.ScanPrecision != "" {
		conf[kernels.ConfScanPrecision] = cfg.ScanPrecision
	}
}

// scanF32FromConf reports whether reducers should run the compact f32 scan
// path. Validation happens at pipeline entry (checkScanPrecision); an
// unknown value reaching a worker falls back to the exact f64 kernels.
func scanF32FromConf(conf mapreduce.Conf) bool {
	return conf[kernels.ConfScanPrecision] == kernels.ScanF32
}

// checkScanPrecision rejects knob values the reducers do not support.
func checkScanPrecision(cfg *Config) error {
	if !kernels.ValidScanPrecision(cfg.ScanPrecision) {
		return fmt.Errorf("core: unknown ScanPrecision %q (reducers support \"\", %q, %q; %q is serving-only)",
			cfg.ScanPrecision, kernels.ScanF64, kernels.ScanF32, kernels.ScanQ8)
	}
	return nil
}
