// Package rpcmr is the distributed MapReduce engine: a master and a fleet
// of workers communicating over net/rpc, executing the same Job values as
// the in-process engine. The division of labour mirrors Hadoop 1.x (the
// system the reproduced paper ran on):
//
//   - the master owns job state, splits input, assigns map and reduce
//     tasks to polling workers under leases, and re-executes tasks whose
//     worker disappears;
//   - workers execute tasks with mapreduce.ExecuteMapTask /
//     ExecuteReduceTask, keep their map outputs locally, and serve them to
//     reducers over a worker-to-worker streaming shuffle transport
//     (chunked binary frames with optional compression — see transport.go;
//     a gob FetchPartition RPC remains as the compatibility fallback);
//   - functions do not serialize, so workers rebuild jobs from a local
//     registry of job factories keyed by job name; everything else a job
//     needs ships in its Conf.
//
// The master implements mapreduce.Engine, so every algorithm in this
// repository (Basic-DDP, LSH-DDP, EDDPC, K-means) runs on a real cluster
// unchanged — see examples/distributed.
package rpcmr

import (
	"fmt"
	"sync"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// TaskKind tells a polling worker what to do next.
type TaskKind int

const (
	// TaskWait means no runnable task right now; poll again shortly.
	TaskWait TaskKind = iota
	// TaskMap carries an input split to map.
	TaskMap
	// TaskReduce carries the partition index and map-output locations.
	TaskReduce
	// TaskShutdown tells the worker to exit its loop.
	TaskShutdown
)

// RegisterArgs / RegisterReply: worker sign-on.
type RegisterArgs struct {
	// Addr is the worker's RPC address (legacy shuffle fetches, cleanup).
	Addr string
	// ShuffleAddr is the worker's streaming shuffle listener. Empty when
	// the worker only speaks the legacy gob FetchPartition RPC; reducers
	// then fall back to that path.
	ShuffleAddr string
}

// RegisterReply returns the master-assigned worker id.
type RegisterReply struct {
	WorkerID int
}

// GetTaskArgs / GetTaskReply: task polling.
type GetTaskArgs struct {
	WorkerID int
}

// MapLocation names one completed map task's data.
type MapLocation struct {
	MapTaskID  int
	WorkerAddr string
	// ShuffleAddr is the holding worker's streaming shuffle listener
	// (empty = fetch over the legacy RPC path).
	ShuffleAddr string
}

// GetTaskReply describes the assigned task (or Wait/Shutdown).
type GetTaskReply struct {
	Kind    TaskKind
	JobID   int
	JobName string
	Conf    mapreduce.Conf
	TaskID  int
	// NumReduces applies to both kinds.
	NumReduces int
	// Split is the map task's inline input (when the master shipped the
	// data itself).
	Split []mapreduce.Pair
	// DFSNameNode/DFSPart describe a DFS-staged input instead: the worker
	// reads the part file directly from the distributed file system,
	// Hadoop-style, so big inputs never pass through the master.
	DFSNameNode string
	DFSPart     string
	// Maps lists where to fetch each map task's partition (reduce tasks).
	Maps []MapLocation
}

// CompleteArgs / CompleteReply: task completion report.
type CompleteArgs struct {
	WorkerID int
	JobID    int
	Kind     TaskKind
	TaskID   int
	// Output is the reduce task's result.
	Output []mapreduce.Pair
	// Counters is the task's counter snapshot.
	Counters map[string]int64
	// Spans carries the task's phase spans (worker-side wall times and
	// volumes); the master merges them into the job's trace with the
	// reporting worker attributed on each span.
	Spans []obs.Span
	// Err is a non-empty string when the task failed.
	Err string
	// FailedMaps lists map tasks whose data could not be fetched; the
	// master re-executes them and re-queues this reduce task.
	FailedMaps []int
}

// CompleteReply acknowledges a completion report.
type CompleteReply struct{}

// FetchArgs / FetchReply: the legacy worker-to-worker shuffle RPC. The
// streaming transport in transport.go has replaced it on the hot path;
// it remains as the compatibility fallback (ShuffleAddr-less workers,
// jobs with mr.shuffle.stream=false).
type FetchArgs struct {
	JobID     int
	MapTaskID int
	Partition int
}

// FetchReply carries the requested partition records.
type FetchReply struct {
	Pairs []mapreduce.Pair
}

// CleanupArgs / CleanupReply: drop a finished job's intermediate data.
type CleanupArgs struct {
	JobID int
}

// CleanupReply acknowledges a cleanup.
type CleanupReply struct{}

// JobFactory rebuilds a runnable Job from its shipped Conf. It is a type
// alias so plain factory maps (e.g. core.JobFactories()) pass through
// without conversion.
type JobFactory = func(conf mapreduce.Conf) *mapreduce.Job

var (
	registryMu sync.RWMutex
	registry   = map[string]JobFactory{}
)

// RegisterJob installs a factory under a job name. Workers must register
// every job they may be asked to run before starting; registering the same
// name twice panics to catch wiring mistakes early.
func RegisterJob(name string, f JobFactory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("rpcmr: job %q registered twice", name))
	}
	registry[name] = f
}

// RegisterJobs installs a batch of factories, skipping already-registered
// names (so tests and binaries can wire overlapping sets safely).
func RegisterJobs(m map[string]JobFactory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	for name, f := range m {
		if _, dup := registry[name]; !dup {
			registry[name] = f
		}
	}
}

func lookupJob(name string) (JobFactory, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("rpcmr: job %q not registered on this worker", name)
	}
	return f, nil
}
