package rpcmr

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/mapreduce"
)

// startChaosDFS boots a DFS cluster with aggressive fault-tolerance
// timings (death detected in ~200ms, re-replication sweep every 30ms) and
// returns the handles the chaos tests need to aim faults.
func startChaosDFS(t *testing.T, nodes int) (*dfs.NameNode, []*dfs.DataNode, *dfs.Client) {
	t.Helper()
	nn, err := dfs.NewNameNodeOpts("127.0.0.1:0", dfs.NameNodeOptions{
		Replication:       2,
		HeartbeatTimeout:  200 * time.Millisecond,
		ReplicateInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nn.Close() })
	var dns []*dfs.DataNode
	for i := 0; i < nodes; i++ {
		dn, err := dfs.StartDataNodeOpts(nn.Addr(), "127.0.0.1:0", dfs.DataNodeOptions{
			HeartbeatInterval: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		dns = append(dns, dn)
		t.Cleanup(func() { dn.Close() })
	}
	c, err := dfs.NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return nn, dns, c
}

// lshJob builds the paper's LSH-DDP density job, pinned to deterministic
// task counts.
func lshJob() *mapreduce.Job {
	conf := mapreduce.Conf{}
	conf.SetFloat("ddp.dc", 4.0)
	conf.SetInt("ddp.dim", 2)
	conf.SetInt("ddp.lsh.m", 4)
	conf.SetInt("ddp.lsh.pi", 2)
	conf.SetFloat("ddp.lsh.w", 12)
	conf.SetInt64("ddp.seed", 7)
	j := core.JobFactories()[core.JobLSHRho](conf)
	j.NumReduces = 3
	return j
}

// sortedPairs canonicalizes job output for bit-identical comparison.
func sortedPairs(ps []mapreduce.Pair) []mapreduce.Pair {
	out := append([]mapreduce.Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return bytes.Compare(out[i].Value, out[j].Value) < 0
	})
	return out
}

func assertIdenticalOutput(t *testing.T, healthy, faulty []mapreduce.Pair) {
	t.Helper()
	a, b := sortedPairs(healthy), sortedPairs(faulty)
	if len(a) != len(b) {
		t.Fatalf("output sizes differ: healthy %d, faulty %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("output diverges at %d: healthy %q=%q, faulty %q=%q",
				i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
		}
	}
}

func waitCounter(t *testing.T, d time.Duration, nn *dfs.NameNode, name string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if nn.Counters()[name] > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("counter %s never advanced: %v", name, nn.Counters())
}

// TestChaosDataNodeDeathMidJob is the headline acceptance test: an LSH-DDP
// job runs on a 3-worker rpcmr cluster reading its input from DFS while a
// datanode is killed mid-job (triggered by the first block read of the
// faulty run, via a chaos hook on a surviving node). The job must complete
// with output bit-identical to the fault-free run, and dfs.rereplications
// must confirm the storage layer actually repaired itself.
func TestChaosDataNodeDeathMidJob(t *testing.T) {
	m, _ := startCluster(t, 3)
	nn, dns, fsc := startChaosDFS(t, 3)

	fsc.BlockSize = 1024 // multi-block parts so the kill lands mid-file
	input := core.InputPairs(dataset.Blobs("chaos-kill", 600, 2, 4, 100, 3, 11))
	if err := dfsio.SavePairs(fsc, "chaos/in", input, 6); err != nil {
		t.Fatal(err)
	}

	healthy, err := m.RunDFS(context.Background(), lshJob(), nn.Addr(), "chaos/in")
	if err != nil {
		t.Fatalf("healthy run: %v", err)
	}

	// Chaos: when the faulty run's reads start flowing through dns[0],
	// kill dns[1] — mid-job, with replicas of the input parts on it.
	harness := chaos.New(42)
	victim := harness.Register("dn1", dns[1].Close, nil)
	trig := chaos.OnNth(2, func() { victim.Kill() })
	dns[0].SetHooks(dfs.BlockHooks{BeforeRead: func(id int64) error { trig(); return nil }})
	defer dns[0].SetHooks(dfs.BlockHooks{})

	faulty, err := m.RunDFS(context.Background(), lshJob(), nn.Addr(), "chaos/in")
	if err != nil {
		t.Fatalf("run with datanode killed mid-job: %v", err)
	}
	if victim.Alive() {
		t.Fatal("chaos trigger never fired — test exercised nothing")
	}
	assertIdenticalOutput(t, healthy.Output, faulty.Output)
	waitCounter(t, 10*time.Second, nn, "dfs.rereplications")
}

// TestChaosCorruptBlockMidJob is the second acceptance scenario: one block
// of the DFS-staged input has a bit flipped in its primary replica before
// the job runs. The datanode's checksum verification must quarantine the
// bad copy, the worker's read must fail over to the healthy replica, the
// job output must be bit-identical to the clean run, and re-replication
// must restore the lost copy.
func TestChaosCorruptBlockMidJob(t *testing.T) {
	m, _ := startCluster(t, 3)
	nn, dns, fsc := startChaosDFS(t, 3)

	fsc.BlockSize = 1024
	input := core.InputPairs(dataset.Blobs("chaos-rot", 600, 2, 4, 100, 3, 11))
	if err := fsioSave(fsc, "rot/in", input); err != nil {
		t.Fatal(err)
	}

	healthy, err := m.RunDFS(context.Background(), lshJob(), nn.Addr(), "rot/in")
	if err != nil {
		t.Fatalf("healthy run: %v", err)
	}

	// Flip one seeded bit in the primary replica of the first part's
	// first block.
	parts, err := fsc.List("rot/in/")
	if err != nil || len(parts) == 0 {
		t.Fatalf("list parts: %v (%d)", err, len(parts))
	}
	locs, err := fsc.BlockLocations(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	byAddr := make(map[string]*dfs.DataNode)
	for _, dn := range dns {
		byAddr[dn.Addr()] = dn
	}
	harness := chaos.New(7)
	victim := byAddr[locs[0].Replicas[0]]
	if err := victim.Corrupt(locs[0].ID, harness.Intn(1<<20)); err != nil {
		t.Fatal(err)
	}

	faulty, err := m.RunDFS(context.Background(), lshJob(), nn.Addr(), "rot/in")
	if err != nil {
		t.Fatalf("run with corrupt block: %v", err)
	}
	assertIdenticalOutput(t, healthy.Output, faulty.Output)
	waitCounter(t, 10*time.Second, nn, "dfs.blocks.corrupt")
	waitCounter(t, 10*time.Second, nn, "dfs.rereplications")
}

// fsioSave stages input pairs as 6 part files under prefix.
func fsioSave(fsc *dfs.Client, prefix string, input []mapreduce.Pair) error {
	if err := dfsio.SavePairs(fsc, prefix, input, 6); err != nil {
		return fmt.Errorf("stage input: %w", err)
	}
	return nil
}
