package rpcmr_test

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mapreduce"
	"repro/internal/mapreduce/rpcmr"
)

func init() {
	rpcmr.RegisterJobs(map[string]rpcmr.JobFactory{"example-wordcount": exampleWordcount})
}

func exampleWordcount(conf mapreduce.Conf) *mapreduce.Job {
	sum := func(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		out.Emit(key, []byte(strconv.Itoa(total)))
		return nil
	}
	return &mapreduce.Job{
		Name: "example-wordcount",
		Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				out.Emit(w, []byte("1"))
			}
			return nil
		},
		Combine: sum,
		Reduce:  sum,
	}
}

// A complete distributed session: master, two TCP workers, one job.
func Example() {
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer master.Close()
	for i := 0; i < 2; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer w.Close()
	}

	res, err := master.Run(context.Background(), exampleWordcount(nil), []mapreduce.Pair{
		{Value: []byte("go distributed go")},
	})
	if err != nil {
		panic(err)
	}
	counts := map[string]string{}
	for _, p := range res.Output {
		counts[p.Key] = string(p.Value)
	}
	fmt.Printf("go=%s distributed=%s\n", counts["go"], counts["distributed"])
	// Output:
	// go=2 distributed=1
}
