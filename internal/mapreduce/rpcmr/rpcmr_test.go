package rpcmr

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/mapreduce"
)

// wordcount is the canonical framework smoke-test job.
func wordcountJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: "wordcount",
		Conf: conf,
		Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				out.Emit(w, []byte("1"))
			}
			return nil
		},
		Combine: sumReduce,
		Reduce:  sumReduce,
	}
}

func sumReduce(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		total += n
	}
	out.Emit(key, []byte(strconv.Itoa(total)))
	return nil
}

func init() {
	RegisterJob("wordcount", wordcountJob)
	RegisterJob("fail-always", func(conf mapreduce.Conf) *mapreduce.Job {
		return &mapreduce.Job{
			Name: "fail-always",
			Map: func(_ *mapreduce.TaskContext, _ string, _ []byte, _ mapreduce.Emitter) error {
				return fmt.Errorf("injected map failure")
			},
			Reduce: sumReduce,
		}
	})
	RegisterJobs(core.JobFactories())
}

// startCluster boots a master and n workers on loopback.
func startCluster(t testing.TB, n int) (*Master, []*Worker) {
	t.Helper()
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	var ws []*Worker
	for i := 0; i < n; i++ {
		w, err := StartWorker(m.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	t.Cleanup(func() {
		for _, w := range ws {
			select {
			case <-w.quit:
			default:
				w.Close()
			}
		}
	})
	if err := m.WaitWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return m, ws
}

func TestClusterWordcount(t *testing.T) {
	m, _ := startCluster(t, 3)
	input := []mapreduce.Pair{
		{Value: []byte("the quick brown fox")},
		{Value: []byte("the lazy dog")},
		{Value: []byte("the fox")},
	}
	res, err := m.Run(context.Background(), wordcountJob(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, p := range res.Output {
		got[p.Key] = string(p.Value)
	}
	want := map[string]string{"the": "3", "fox": "2", "quick": "1", "brown": "1", "lazy": "1", "dog": "1"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %q, want %q", k, got[k], v)
		}
	}
	if res.Counters.Get(mapreduce.CtrMapInputRecords) != 3 {
		t.Fatalf("map input records = %d, want 3", res.Counters.Get(mapreduce.CtrMapInputRecords))
	}
	// Combiner collapsed duplicate words within map tasks, so shuffle
	// records is between 6 (full dedup) and 9 (none).
	sr := res.Counters.Get(mapreduce.CtrShuffleRecords)
	if sr < 6 || sr > 9 {
		t.Fatalf("shuffle records = %d, want 6..9", sr)
	}
}

func TestClusterMatchesLocalEngine(t *testing.T) {
	m, _ := startCluster(t, 2)
	input := make([]mapreduce.Pair, 0, 200)
	for i := 0; i < 200; i++ {
		input = append(input, mapreduce.Pair{Value: []byte(fmt.Sprintf("w%d w%d", i%7, i%13))})
	}
	distRes, err := m.Run(context.Background(), wordcountJob(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	local := &mapreduce.LocalEngine{Parallelism: 2}
	locRes, err := local.Run(context.Background(), wordcountJob(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	toMap := func(ps []mapreduce.Pair) map[string]string {
		out := map[string]string{}
		for _, p := range ps {
			out[p.Key] = string(p.Value)
		}
		return out
	}
	d, l := toMap(distRes.Output), toMap(locRes.Output)
	if len(d) != len(l) {
		t.Fatalf("distributed %d keys, local %d", len(d), len(l))
	}
	for k, v := range l {
		if d[k] != v {
			t.Fatalf("key %q: distributed %q, local %q", k, d[k], v)
		}
	}
}

func TestClusterTaskErrorFailsJob(t *testing.T) {
	m, _ := startCluster(t, 2)
	_, err := m.Run(context.Background(), &mapreduce.Job{Name: "fail-always", Map: func(_ *mapreduce.TaskContext, _ string, _ []byte, _ mapreduce.Emitter) error { return nil }, Reduce: sumReduce},
		[]mapreduce.Pair{{Value: []byte("x")}})
	if err == nil || !strings.Contains(err.Error(), "injected map failure") {
		t.Fatalf("want injected failure error, got %v", err)
	}
}

func TestClusterWorkerFailureRecovery(t *testing.T) {
	m, ws := startCluster(t, 3)
	m.LeaseTimeout = 500 * time.Millisecond

	// Run one job to give every worker map outputs, then kill a worker and
	// run again: reduces fetching from the dead worker must trigger map
	// re-execution rather than failing the job.
	input := make([]mapreduce.Pair, 0, 300)
	for i := 0; i < 300; i++ {
		input = append(input, mapreduce.Pair{Value: []byte(fmt.Sprintf("a%d b%d c%d", i%5, i%11, i%17))})
	}
	if _, err := m.Run(context.Background(), wordcountJob(nil), input); err != nil {
		t.Fatal(err)
	}
	ws[0].Close()

	res, err := m.Run(context.Background(), wordcountJob(nil), input)
	if err != nil {
		t.Fatalf("job after worker death: %v", err)
	}
	if len(res.Output) == 0 {
		t.Fatal("empty output after recovery")
	}
}

func TestClusterRunsLSHDDP(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed LSH-DDP in -short mode")
	}
	m, _ := startCluster(t, 3)
	ds := dataset.Blobs("rpc-lsh", 600, 3, 4, 100, 3, 15)
	dc := dp.CutoffByPercentile(ds, 0.02, 1)

	distRes, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
		Config:   core.Config{Engine: m, Dc: dc, Seed: 4},
		Accuracy: 0.95, M: 5, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{
		Config:   core.Config{Engine: &mapreduce.LocalEngine{Parallelism: 3}, Dc: dc, Seed: 4},
		Accuracy: 0.95, M: 5, Pi: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The distributed engine must produce byte-identical science: same ρ̂,
	// δ̂, upslope for every point.
	for i := range localRes.Rho {
		if distRes.Rho[i] != localRes.Rho[i] {
			t.Fatalf("rho[%d]: distributed %v, local %v", i, distRes.Rho[i], localRes.Rho[i])
		}
		if distRes.Delta[i] != localRes.Delta[i] {
			t.Fatalf("delta[%d]: distributed %v, local %v", i, distRes.Delta[i], localRes.Delta[i])
		}
		if distRes.Upslope[i] != localRes.Upslope[i] {
			t.Fatalf("upslope[%d]: distributed %d, local %d", i, distRes.Upslope[i], localRes.Upslope[i])
		}
	}
	if distRes.Stats.DistanceComputations != localRes.Stats.DistanceComputations {
		t.Fatalf("distance count: distributed %d, local %d",
			distRes.Stats.DistanceComputations, localRes.Stats.DistanceComputations)
	}
}

func TestMasterRejectsWithoutWorkers(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Run(context.Background(), wordcountJob(nil), nil); err == nil {
		t.Fatal("want error with zero workers")
	}
}

func TestUnregisteredJobFailsCleanly(t *testing.T) {
	m, _ := startCluster(t, 1)
	job := &mapreduce.Job{
		Name:   "never-registered",
		Map:    func(_ *mapreduce.TaskContext, _ string, _ []byte, _ mapreduce.Emitter) error { return nil },
		Reduce: sumReduce,
	}
	_, err := m.Run(context.Background(), job, []mapreduce.Pair{{Value: []byte("x")}})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("want not-registered error, got %v", err)
	}
}
