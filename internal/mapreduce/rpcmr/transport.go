package rpcmr

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/mapreduce"
)

// Streaming shuffle transport.
//
// The original shuffle gob-encoded whole []Pair partitions through
// net/rpc: every fetch paid reflection-based encode/decode on both sides
// and buffered the entire partition in a single RPC reply. This file
// replaces it with a purpose-built raw-TCP protocol that streams the
// partition as record frames — the same uint32-length-prefixed layout the
// spill run files use (mapreduce/frame.go) — in bounded chunks, with
// optional per-chunk DEFLATE compression negotiated by the fetcher.
//
// Wire protocol, little-endian throughout. One connection serves many
// sequential requests (reducers pool connections per peer):
//
//	request:  uint32 magic "DPS1" | uint32 jobID | uint32 mapTask |
//	          uint32 partition | uint32 chunkHint | uint8 flags
//	response: uint8 status
//	  status 1 (error):  uint32 msgLen | msg   — connection stays usable
//	  status 0 (ok):     chunk stream:
//	    chunk:  uint32 rawLen | uint32 wireLen | wireLen payload bytes
//	            (payload is DEFLATE-compressed iff wireLen < rawLen)
//	    end:    rawLen == 0 && wireLen == 0, then uint32 recordCount
//
// A chunk always holds whole frames, so the fetcher decodes each chunk
// independently and never buffers more than one chunk plus the decoded
// pairs. Compression is applied per chunk and only kept when it actually
// shrinks the payload (wireLen == rawLen signals a raw chunk), so
// incompressible data pays one cheap attempt, not a size regression.
const (
	shuffleMagic       = 0x31535044 // "DPS1"
	shuffleFlagDeflate = 1 << 0

	// defaultShuffleChunkBytes bounds how much framed data one chunk
	// carries; a reducer never holds a peer's whole partition in a single
	// reply buffer.
	defaultShuffleChunkBytes = 256 << 10
	// compressMinChunkBytes skips the DEFLATE attempt on tiny chunks,
	// where the header overhead dominates any win.
	compressMinChunkBytes = 512
	// maxIdleStreamsPerPeer caps pooled idle connections per peer.
	maxIdleStreamsPerPeer = 4
	// shuffleIOTimeout bounds one request/response exchange so a hung
	// peer surfaces as a retriable error instead of a stuck reducer.
	shuffleIOTimeout = 60 * time.Second
)

// Job Conf keys controlling the reduce-side shuffle. They ship with the
// job like every other parameter, so a pipeline can tune its transport
// per job without touching worker deployment.
const (
	// ConfShuffleStream disables the streaming transport when "false"
	// (fetches fall back to the legacy gob FetchPartition RPC).
	ConfShuffleStream = "mr.shuffle.stream"
	// ConfShuffleCompress requests per-chunk DEFLATE compression.
	ConfShuffleCompress = "mr.shuffle.compress"
	// ConfShuffleChunkBytes overrides the transport chunk size.
	ConfShuffleChunkBytes = "mr.shuffle.chunk.bytes"
	// ConfShuffleFetchers bounds the concurrent fetch worker pool.
	ConfShuffleFetchers = "mr.shuffle.fetchers"
	// ConfShuffleRetries is how many times a transient fetch failure is
	// retried (with exponential backoff) before the map output is
	// declared lost.
	ConfShuffleRetries = "mr.shuffle.retries"
)

const (
	defaultShuffleFetchers = 4
	defaultShuffleRetries  = 2
	shuffleRetryBackoff    = 25 * time.Millisecond
)

// errShuffleMissing marks a permanent fetch failure: the peer is alive
// but no longer has the map output. Retrying the same peer cannot help;
// only the master re-executing the map task can.
var errShuffleMissing = errors.New("rpcmr: map output missing on peer")

// fetchStats accounts one streamed fetch at the transport level.
type fetchStats struct {
	// rawBytes is the framed payload plus chunk headers before
	// compression — what would cross the wire with compression off.
	rawBytes int64
	// wireBytes is what actually crossed the wire (post-compression).
	wireBytes int64
	records   int64
}

// fetchOptions is the reduce side's per-job transport configuration,
// resolved from the job Conf.
type fetchOptions struct {
	stream     bool
	compress   bool
	chunkBytes int
	fetchers   int
	retries    int
}

func fetchOptionsFromConf(conf mapreduce.Conf) fetchOptions {
	o := fetchOptions{
		stream:     conf.GetBool(ConfShuffleStream, true),
		compress:   conf.GetBool(ConfShuffleCompress, false),
		chunkBytes: conf.GetInt(ConfShuffleChunkBytes, defaultShuffleChunkBytes),
		fetchers:   conf.GetInt(ConfShuffleFetchers, defaultShuffleFetchers),
		retries:    conf.GetInt(ConfShuffleRetries, defaultShuffleRetries),
	}
	if o.chunkBytes <= 0 {
		o.chunkBytes = defaultShuffleChunkBytes
	}
	if o.fetchers <= 0 {
		o.fetchers = defaultShuffleFetchers
	}
	if o.retries < 0 {
		o.retries = 0
	}
	return o
}

// ---- server side ----

// serveShuffleLoop accepts streaming shuffle connections until the
// listener closes.
func (w *Worker) serveShuffleLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go w.serveShuffleConn(conn)
	}
}

// shuffleServeState holds per-connection reusable buffers.
type shuffleServeState struct {
	chunk []byte
	comp  bytes.Buffer
	fl    *flate.Writer
}

// serveShuffleConn answers fetch requests on one connection until the
// peer hangs up or an I/O error occurs.
func (w *Worker) serveShuffleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	st := &shuffleServeState{}
	for {
		var req [21]byte
		if _, err := io.ReadFull(br, req[:]); err != nil {
			return
		}
		if binary.LittleEndian.Uint32(req[0:4]) != shuffleMagic {
			return
		}
		jobID := int(binary.LittleEndian.Uint32(req[4:8]))
		mapTask := int(binary.LittleEndian.Uint32(req[8:12]))
		partition := int(binary.LittleEndian.Uint32(req[12:16]))
		chunkBytes := int(binary.LittleEndian.Uint32(req[16:20]))
		if chunkBytes <= 0 {
			chunkBytes = defaultShuffleChunkBytes
		}
		compress := req[20]&shuffleFlagDeflate != 0

		pairs, err := w.partitionForShuffle(jobID, mapTask, partition)
		if err != nil {
			msg := err.Error()
			bw.WriteByte(1)
			var n [4]byte
			binary.LittleEndian.PutUint32(n[:], uint32(len(msg)))
			bw.Write(n[:])
			bw.WriteString(msg)
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}
		bw.WriteByte(0)
		if err := w.streamPartition(bw, st, pairs, chunkBytes, compress, jobID, mapTask, partition); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// partitionForShuffle resolves a stored map-output partition.
func (w *Worker) partitionForShuffle(jobID, mapTask, partition int) ([]mapreduce.Pair, error) {
	w.mu.Lock()
	parts, ok := w.store[storeKey{jobID: jobID, mapTask: mapTask}]
	w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpcmr: map output %d/%d not on this worker", jobID, mapTask)
	}
	if partition < 0 || partition >= len(parts) {
		return nil, fmt.Errorf("rpcmr: partition %d out of range", partition)
	}
	return parts[partition], nil
}

// streamPartition frames pairs into bounded chunks and writes them to bw.
func (w *Worker) streamPartition(bw *bufio.Writer, st *shuffleServeState, pairs []mapreduce.Pair, chunkBytes int, compress bool, jobID, mapTask, partition int) error {
	chunkIdx := 0
	emit := func(chunk []byte) error {
		if hook := w.shuffleChunkHook; hook != nil {
			if err := hook(jobID, mapTask, partition, chunkIdx); err != nil {
				return err
			}
		}
		chunkIdx++
		raw := len(chunk)
		payload := chunk
		if compress && raw >= compressMinChunkBytes {
			st.comp.Reset()
			if st.fl == nil {
				fl, err := flate.NewWriter(&st.comp, flate.BestSpeed)
				if err != nil {
					return err
				}
				st.fl = fl
			} else {
				st.fl.Reset(&st.comp)
			}
			if _, err := st.fl.Write(chunk); err != nil {
				return err
			}
			if err := st.fl.Close(); err != nil {
				return err
			}
			if st.comp.Len() < raw {
				payload = st.comp.Bytes()
			}
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(raw))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}

	st.chunk = st.chunk[:0]
	for _, p := range pairs {
		st.chunk = mapreduce.AppendFrame(st.chunk, p)
		if len(st.chunk) >= chunkBytes {
			if err := emit(st.chunk); err != nil {
				return err
			}
			st.chunk = st.chunk[:0]
		}
	}
	if len(st.chunk) > 0 {
		if err := emit(st.chunk); err != nil {
			return err
		}
		st.chunk = st.chunk[:0]
	}
	var end [12]byte // zero rawLen + zero wireLen, then the record count
	binary.LittleEndian.PutUint32(end[8:12], uint32(len(pairs)))
	_, err := bw.Write(end[:])
	return err
}

// ---- client side ----

// shuffleStream is one pooled connection to a peer's shuffle listener.
type shuffleStream struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	comp []byte        // scratch for compressed payloads
	infl io.ReadCloser // reusable DEFLATE reader
}

// getStream pops an idle pooled connection to addr or dials a new one.
func (w *Worker) getStream(addr string) (*shuffleStream, error) {
	w.streamMu.Lock()
	if pool := w.streams[addr]; len(pool) > 0 {
		s := pool[len(pool)-1]
		w.streams[addr] = pool[:len(pool)-1]
		w.streamMu.Unlock()
		return s, nil
	}
	w.streamMu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return &shuffleStream{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// putStream returns a healthy connection to the pool (or closes it when
// the pool is full or the worker is shutting down).
func (w *Worker) putStream(addr string, s *shuffleStream) {
	w.streamMu.Lock()
	if w.streams != nil && len(w.streams[addr]) < maxIdleStreamsPerPeer {
		w.streams[addr] = append(w.streams[addr], s)
		w.streamMu.Unlock()
		return
	}
	w.streamMu.Unlock()
	s.conn.Close()
}

// closeStreams drops every pooled connection.
func (w *Worker) closeStreams() {
	w.streamMu.Lock()
	for _, pool := range w.streams {
		for _, s := range pool {
			s.conn.Close()
		}
	}
	w.streams = map[string][]*shuffleStream{}
	w.streamMu.Unlock()
}

// fetchStream retrieves one map-output partition over the streaming
// transport. The returned error is errShuffleMissing (permanent) when the
// peer reports the data gone; any other error is transient and worth a
// retry.
func (w *Worker) fetchStream(addr string, jobID, mapTask, partition int, o fetchOptions) ([]mapreduce.Pair, fetchStats, error) {
	var stats fetchStats
	s, err := w.getStream(addr)
	if err != nil {
		return nil, stats, err
	}
	pairs, stats, err := w.fetchOnStream(s, jobID, mapTask, partition, o)
	if err != nil {
		// Even a missing-partition reply leaves the stream at a request
		// boundary, but a pooled conn is cheap to rebuild — closing on
		// every error keeps the pool free of half-consumed streams.
		s.conn.Close()
		return nil, stats, err
	}
	w.putStream(addr, s)
	return pairs, stats, nil
}

func (w *Worker) fetchOnStream(s *shuffleStream, jobID, mapTask, partition int, o fetchOptions) ([]mapreduce.Pair, fetchStats, error) {
	var stats fetchStats
	s.conn.SetDeadline(time.Now().Add(shuffleIOTimeout))
	defer s.conn.SetDeadline(time.Time{})

	var req [21]byte
	binary.LittleEndian.PutUint32(req[0:4], shuffleMagic)
	binary.LittleEndian.PutUint32(req[4:8], uint32(jobID))
	binary.LittleEndian.PutUint32(req[8:12], uint32(mapTask))
	binary.LittleEndian.PutUint32(req[12:16], uint32(partition))
	binary.LittleEndian.PutUint32(req[16:20], uint32(o.chunkBytes))
	if o.compress {
		req[20] = shuffleFlagDeflate
	}
	if _, err := s.bw.Write(req[:]); err != nil {
		return nil, stats, err
	}
	if err := s.bw.Flush(); err != nil {
		return nil, stats, err
	}
	status, err := s.br.ReadByte()
	if err != nil {
		return nil, stats, err
	}
	if status != 0 {
		var n [4]byte
		if _, err := io.ReadFull(s.br, n[:]); err != nil {
			return nil, stats, err
		}
		msg := make([]byte, binary.LittleEndian.Uint32(n[:]))
		if _, err := io.ReadFull(s.br, msg); err != nil {
			return nil, stats, err
		}
		return nil, stats, fmt.Errorf("%w: %s", errShuffleMissing, msg)
	}

	var pairs []mapreduce.Pair
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
			return nil, stats, err
		}
		raw := int(binary.LittleEndian.Uint32(hdr[0:4]))
		wire := int(binary.LittleEndian.Uint32(hdr[4:8]))
		if raw == 0 && wire == 0 {
			var cnt [4]byte
			if _, err := io.ReadFull(s.br, cnt[:]); err != nil {
				return nil, stats, err
			}
			if got := int64(binary.LittleEndian.Uint32(cnt[:])); got != stats.records {
				return nil, stats, fmt.Errorf("rpcmr: shuffle stream decoded %d records, peer sent %d", stats.records, got)
			}
			return pairs, stats, nil
		}
		if wire > raw {
			return nil, stats, fmt.Errorf("rpcmr: corrupt shuffle chunk header (raw=%d wire=%d)", raw, wire)
		}
		// The chunk buffer is retained: decoded values sub-slice it, so
		// one allocation serves every record of the chunk.
		chunkBuf := make([]byte, raw)
		if wire == raw {
			if _, err := io.ReadFull(s.br, chunkBuf); err != nil {
				return nil, stats, err
			}
		} else {
			if cap(s.comp) < wire {
				s.comp = make([]byte, wire+wire/4)
			}
			comp := s.comp[:wire]
			if _, err := io.ReadFull(s.br, comp); err != nil {
				return nil, stats, err
			}
			if err := inflateExact(s, comp, chunkBuf); err != nil {
				return nil, stats, err
			}
		}
		before := len(pairs)
		pairs, err = mapreduce.DecodeFrames(pairs, chunkBuf)
		if err != nil {
			return nil, stats, err
		}
		stats.records += int64(len(pairs) - before)
		stats.rawBytes += int64(raw) + 8
		stats.wireBytes += int64(wire) + 8
	}
}

// inflateExact decompresses comp into dst, requiring the stream to yield
// exactly len(dst) bytes.
func inflateExact(s *shuffleStream, comp, dst []byte) error {
	src := bytes.NewReader(comp)
	if s.infl == nil {
		s.infl = flate.NewReader(src)
	} else if err := s.infl.(flate.Resetter).Reset(src, nil); err != nil {
		return err
	}
	if _, err := io.ReadFull(s.infl, dst); err != nil {
		return fmt.Errorf("rpcmr: corrupt compressed shuffle chunk: %w", err)
	}
	var one [1]byte
	if n, err := s.infl.Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
		return fmt.Errorf("rpcmr: compressed shuffle chunk longer than advertised")
	}
	return nil
}
