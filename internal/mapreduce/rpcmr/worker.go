package rpcmr

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Worker executes tasks for one master. It serves a small RPC surface of
// its own (legacy shuffle fetches and cleanup), a streaming shuffle
// listener (transport.go), and polls the master for work.
type Worker struct {
	// PollInterval is the base polling period (default 20ms). While no
	// task is handed out the period backs off exponentially up to
	// PollMax, and resets on any real task — an idle fleet stops
	// hammering the master with GetTask chatter. Both knobs are also
	// Conf-visible: a job carrying "mr.worker.poll.ms" /
	// "mr.worker.poll.max.ms" retunes the workers it runs on.
	PollInterval time.Duration
	// PollMax caps the idle backoff (default 250ms).
	PollMax time.Duration
	// Log, when non-nil, receives task events.
	Log func(format string, args ...any)

	id     int
	addr   string
	lis    net.Listener
	master *rpc.Client

	shuffleLis  net.Listener
	shuffleAddr string

	mu    sync.Mutex
	store map[storeKey][][]mapreduce.Pair // partitioned map outputs

	peersMu sync.Mutex
	peers   map[string]*rpc.Client

	streamMu sync.Mutex
	streams  map[string][]*shuffleStream // idle shuffle conns per peer

	dfsMu      sync.Mutex
	dfsClients map[string]*dfs.Client

	// shuffleChunkHook, when set (tests), runs before each streamed chunk
	// is written; an error aborts the serving connection mid-stream.
	shuffleChunkHook func(jobID, mapTask, partition, chunk int) error

	quit chan struct{}
	done chan struct{}
}

// Conf keys that retune worker polling; see Worker.PollInterval.
const (
	ConfWorkerPollMS    = "mr.worker.poll.ms"
	ConfWorkerPollMaxMS = "mr.worker.poll.max.ms"
)

type storeKey struct {
	jobID, mapTask int
}

// StartWorker launches a worker: it listens on listenAddr (":0" for any
// port), registers with the master, and begins polling in a goroutine.
// Close stops it.
func StartWorker(masterAddr, listenAddr string) (*Worker, error) {
	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("rpcmr: worker listen: %w", err)
	}
	// The streaming shuffle gets its own listener on the same host, so
	// bulk partition bytes never contend with the net/rpc control plane.
	host, _, err := net.SplitHostPort(lis.Addr().String())
	if err != nil {
		host = ""
	}
	shuffleLis, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		lis.Close()
		return nil, fmt.Errorf("rpcmr: worker shuffle listen: %w", err)
	}
	w := &Worker{
		PollInterval: 20 * time.Millisecond,
		PollMax:      250 * time.Millisecond,
		addr:         lis.Addr().String(),
		lis:          lis,
		shuffleLis:   shuffleLis,
		shuffleAddr:  shuffleLis.Addr().String(),
		store:        make(map[storeKey][][]mapreduce.Pair),
		peers:        make(map[string]*rpc.Client),
		streams:      make(map[string][]*shuffleStream),
		dfsClients:   make(map[string]*dfs.Client),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &workerRPC{w: w}); err != nil {
		lis.Close()
		shuffleLis.Close()
		return nil, err
	}
	go acceptLoop(lis, srv)
	go w.serveShuffleLoop(shuffleLis)

	conn, err := net.DialTimeout("tcp", masterAddr, 5*time.Second)
	if err != nil {
		lis.Close()
		shuffleLis.Close()
		return nil, fmt.Errorf("rpcmr: dial master: %w", err)
	}
	w.master = rpc.NewClient(conn)
	var reply RegisterReply
	if err := w.master.Call("Master.Register", &RegisterArgs{Addr: w.addr, ShuffleAddr: w.shuffleAddr}, &reply); err != nil {
		w.master.Close()
		lis.Close()
		shuffleLis.Close()
		return nil, fmt.Errorf("rpcmr: register: %w", err)
	}
	w.id = reply.WorkerID
	go w.loop()
	return w, nil
}

// Addr returns the worker's RPC address.
func (w *Worker) Addr() string { return w.addr }

// ID returns the master-assigned worker id.
func (w *Worker) ID() int { return w.id }

// Close stops the polling loop and releases sockets. Pending shuffle data
// is discarded, which the master treats as a worker failure and recovers
// from by re-executing the affected map tasks.
func (w *Worker) Close() error {
	close(w.quit)
	<-w.done
	w.master.Close()
	err := w.lis.Close()
	w.shuffleLis.Close()
	w.closeStreams()
	w.peersMu.Lock()
	for _, c := range w.peers {
		c.Close()
	}
	w.peers = map[string]*rpc.Client{}
	w.peersMu.Unlock()
	w.dfsMu.Lock()
	for _, c := range w.dfsClients {
		c.Close()
	}
	w.dfsClients = map[string]*dfs.Client{}
	w.dfsMu.Unlock()
	return err
}

// dfsClient returns a cached DFS client for the namenode.
func (w *Worker) dfsClient(nameNode string) (*dfs.Client, error) {
	w.dfsMu.Lock()
	defer w.dfsMu.Unlock()
	if c, ok := w.dfsClients[nameNode]; ok {
		return c, nil
	}
	c, err := dfs.NewClient(nameNode)
	if err != nil {
		return nil, err
	}
	w.dfsClients[nameNode] = c
	return c, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

func (w *Worker) loop() {
	defer close(w.done)
	// Idle polling backs off exponentially from PollInterval to PollMax
	// and snaps back on any real task: a worker in the thick of a job
	// polls eagerly, an idle fleet stays quiet.
	idle := w.PollInterval
	for {
		select {
		case <-w.quit:
			return
		default:
		}
		var task GetTaskReply
		if err := w.master.Call("Master.GetTask", &GetTaskArgs{WorkerID: w.id}, &task); err != nil {
			// Master gone; retry briefly in case of transient error.
			select {
			case <-w.quit:
				return
			case <-time.After(w.PollInterval * 10):
			}
			continue
		}
		switch task.Kind {
		case TaskShutdown:
			return
		case TaskWait:
			select {
			case <-w.quit:
				return
			case <-time.After(idle):
			}
			if idle *= 2; idle > w.PollMax {
				idle = w.PollMax
			}
		case TaskMap:
			w.adoptPollConf(task.Conf)
			w.runMap(&task)
			idle = w.PollInterval
		case TaskReduce:
			w.adoptPollConf(task.Conf)
			w.runReduce(&task)
			idle = w.PollInterval
		}
	}
}

// adoptPollConf lets a job retune this worker's polling cadence through
// its Conf (the only channel that reaches remote workers).
func (w *Worker) adoptPollConf(conf mapreduce.Conf) {
	if ms := conf.GetInt(ConfWorkerPollMS, 0); ms > 0 {
		w.PollInterval = time.Duration(ms) * time.Millisecond
	}
	if ms := conf.GetInt(ConfWorkerPollMaxMS, 0); ms > 0 {
		w.PollMax = time.Duration(ms) * time.Millisecond
	}
	if w.PollMax < w.PollInterval {
		w.PollMax = w.PollInterval
	}
}

// report sends a completion (or failure) to the master, best-effort.
func (w *Worker) report(args *CompleteArgs) {
	var reply CompleteReply
	if err := w.master.Call("Master.CompleteTask", args, &reply); err != nil {
		w.logf("worker %d: report failed: %v", w.id, err)
	}
}

func (w *Worker) runMap(task *GetTaskReply) {
	args := &CompleteArgs{WorkerID: w.id, JobID: task.JobID, Kind: TaskMap, TaskID: task.TaskID}
	factory, err := lookupJob(task.JobName)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	job := factory(task.Conf)
	records := task.Split
	if task.DFSPart != "" {
		fsc, err := w.dfsClient(task.DFSNameNode)
		if err != nil {
			args.Err = err.Error()
			w.report(args)
			return
		}
		records, err = dfsio.LoadPart(fsc, task.DFSPart)
		if err != nil {
			args.Err = err.Error()
			w.report(args)
			return
		}
	}
	counters := mapreduce.NewCounters()
	parts, spans, err := mapreduce.ExecuteMapTask(job, task.TaskID, task.NumReduces, records, counters)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	w.mu.Lock()
	w.store[storeKey{jobID: task.JobID, mapTask: task.TaskID}] = parts
	w.mu.Unlock()
	args.Counters = counters.Snapshot()
	args.Spans = w.tagSpans(spans, task.JobID)
	w.logf("worker %d: map %d of job %d done", w.id, task.TaskID, task.JobID)
	w.report(args)
}

func (w *Worker) runReduce(task *GetTaskReply) {
	args := &CompleteArgs{WorkerID: w.id, JobID: task.JobID, Kind: TaskReduce, TaskID: task.TaskID}
	factory, err := lookupJob(task.JobName)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	job := factory(task.Conf)
	fetchStart := time.Now()
	sorted, fetchSpans, failed := w.fetchAll(task)
	if len(failed) > 0 {
		args.Err = fmt.Sprintf("fetch failed for %d map outputs", len(failed))
		args.FailedMaps = failed
		w.report(args)
		return
	}
	counters := mapreduce.NewCounters()
	var wireRaw, wireSent int64
	for _, s := range fetchSpans {
		wireRaw += s.rawBytes
		wireSent += s.span.Bytes
	}
	if wireRaw > 0 {
		counters.Add(mapreduce.CtrShuffleWireBytes, wireRaw)
		counters.Add(mapreduce.CtrShuffleWireBytesCompressed, wireSent)
	}
	out, spans, err := mapreduce.ExecuteReduceTask(job, task.TaskID, task.NumReduces, sorted, counters)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	// Fold the shuffle-fetch time into the reduce span, keeping the
	// reduce-span wall comparable with the local engine; the wire-level
	// detail rides in the extra per-fetch PhaseFetch spans.
	for i := range spans {
		if spans[i].Phase == obs.PhaseReduce {
			spans[i].Start = fetchStart
			spans[i].Wall = time.Since(fetchStart)
		}
	}
	for _, fs := range fetchSpans {
		spans = append(spans, fs.span)
	}
	args.Output = out
	args.Counters = counters.Snapshot()
	args.Spans = w.tagSpans(spans, task.JobID)
	w.logf("worker %d: reduce %d of job %d done (%d records)", w.id, task.TaskID, task.JobID, len(out))
	w.report(args)
}

// fetchSpan pairs a PhaseFetch span (Bytes = actual wire bytes) with the
// pre-compression volume needed for the wire counters.
type fetchSpan struct {
	span     obs.Span
	rawBytes int64
}

// fetchAll retrieves every map output for a reduce task, fetching
// concurrently with a bounded worker pool. Slot order follows task.Maps,
// so the downstream k-way merge sees sources in the same deterministic
// order as a sequential fetch. Transient failures are retried with
// exponential backoff before the map output is declared lost; the
// returned failed list names map tasks the master must re-execute.
func (w *Worker) fetchAll(task *GetTaskReply) ([][]mapreduce.Pair, []fetchSpan, []int) {
	o := fetchOptionsFromConf(task.Conf)
	slots := make([][]mapreduce.Pair, len(task.Maps))
	spans := make([]*fetchSpan, len(task.Maps))
	errs := make([]error, len(task.Maps))

	n := o.fetchers
	if n > len(task.Maps) {
		n = len(task.Maps)
	}
	sem := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i, loc := range task.Maps {
		wg.Add(1)
		go func(i int, loc MapLocation) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			slots[i], spans[i], errs[i] = w.fetchOne(loc, task, o)
		}(i, loc)
	}
	wg.Wait()

	var failed []int
	var fetchSpans []fetchSpan
	for i := range slots {
		if errs[i] != nil {
			failed = append(failed, task.Maps[i].MapTaskID)
			continue
		}
		if spans[i] != nil {
			fetchSpans = append(fetchSpans, *spans[i])
		}
	}
	if len(failed) > 0 {
		return nil, nil, failed
	}
	return slots, fetchSpans, nil
}

// fetchOne retrieves a single map output: straight from the local store
// when the data is ours, over the streaming transport when the holder
// advertises one, else over the legacy RPC. Only remote streamed fetches
// produce a fetchSpan (the wire-level observation).
func (w *Worker) fetchOne(loc MapLocation, task *GetTaskReply, o fetchOptions) ([]mapreduce.Pair, *fetchSpan, error) {
	if loc.WorkerAddr == w.addr {
		pairs, err := w.fetch(loc.WorkerAddr, task.JobID, loc.MapTaskID, task.TaskID)
		return pairs, nil, err
	}
	useStream := o.stream && loc.ShuffleAddr != ""
	var lastErr error
	for attempt := 0; attempt <= o.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-w.quit:
				return nil, nil, lastErr
			case <-time.After(shuffleRetryBackoff << (attempt - 1)):
			}
		}
		if !useStream {
			pairs, err := w.fetch(loc.WorkerAddr, task.JobID, loc.MapTaskID, task.TaskID)
			if err == nil {
				return pairs, nil, nil
			}
			lastErr = err
			continue
		}
		start := time.Now()
		pairs, stats, err := w.fetchStream(loc.ShuffleAddr, task.JobID, loc.MapTaskID, task.TaskID, o)
		if err == nil {
			return pairs, &fetchSpan{
				span: obs.Span{
					Job: task.JobName, Phase: obs.PhaseFetch, Task: task.TaskID,
					Start: start, Wall: time.Since(start),
					Records: stats.records, Bytes: stats.wireBytes,
				},
				rawBytes: stats.rawBytes,
			}, nil
		}
		lastErr = err
		if errors.Is(err, errShuffleMissing) {
			// The peer answered: the data is gone. Only the master can
			// fix that by re-executing the map task.
			break
		}
	}
	return nil, nil, lastErr
}

// tagSpans stamps this worker's identity and the job id on task spans
// before they travel back to the master.
func (w *Worker) tagSpans(spans []obs.Span, jobID int) []obs.Span {
	for i := range spans {
		spans[i].Worker = w.id
		spans[i].JobID = jobID
	}
	return spans
}

// fetch retrieves one map task's partition, from local store when the data
// is ours, otherwise over the peer RPC.
func (w *Worker) fetch(addr string, jobID, mapTask, partition int) ([]mapreduce.Pair, error) {
	if addr == w.addr {
		w.mu.Lock()
		parts, ok := w.store[storeKey{jobID: jobID, mapTask: mapTask}]
		w.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("rpcmr: local map output %d/%d missing", jobID, mapTask)
		}
		return parts[partition], nil
	}
	client, err := w.peer(addr)
	if err != nil {
		return nil, err
	}
	var reply FetchReply
	err = client.Call("Worker.FetchPartition", &FetchArgs{JobID: jobID, MapTaskID: mapTask, Partition: partition}, &reply)
	if err != nil {
		w.dropPeer(addr)
		return nil, err
	}
	return reply.Pairs, nil
}

func (w *Worker) peer(addr string) (*rpc.Client, error) {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	if c, ok := w.peers[addr]; ok {
		return c, nil
	}
	c, err := dialWorker(addr)
	if err != nil {
		return nil, err
	}
	w.peers[addr] = c
	return c, nil
}

func (w *Worker) dropPeer(addr string) {
	w.peersMu.Lock()
	if c, ok := w.peers[addr]; ok {
		c.Close()
		delete(w.peers, addr)
	}
	w.peersMu.Unlock()
}

// workerRPC is the worker's RPC surface for the master and peer workers.
type workerRPC struct {
	w *Worker
}

// FetchPartition serves one partition of a stored map output (the legacy
// gob shuffle; the streaming transport serves the same store).
func (r *workerRPC) FetchPartition(args *FetchArgs, reply *FetchReply) error {
	pairs, err := r.w.partitionForShuffle(args.JobID, args.MapTaskID, args.Partition)
	if err != nil {
		return err
	}
	reply.Pairs = pairs
	return nil
}

// Cleanup drops a job's intermediate data.
func (r *workerRPC) Cleanup(args *CleanupArgs, reply *CleanupReply) error {
	w := r.w
	w.mu.Lock()
	for k := range w.store {
		if k.jobID == args.JobID {
			delete(w.store, k)
		}
	}
	w.mu.Unlock()
	return nil
}
