package rpcmr

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Worker executes tasks for one master. It serves a small RPC surface of
// its own (shuffle fetches and cleanup) and polls the master for work.
type Worker struct {
	// PollInterval is the idle polling period (default 20ms).
	PollInterval time.Duration
	// Log, when non-nil, receives task events.
	Log func(format string, args ...any)

	id     int
	addr   string
	lis    net.Listener
	master *rpc.Client

	mu    sync.Mutex
	store map[storeKey][][]mapreduce.Pair // partitioned map outputs

	peersMu sync.Mutex
	peers   map[string]*rpc.Client

	dfsMu      sync.Mutex
	dfsClients map[string]*dfs.Client

	quit chan struct{}
	done chan struct{}
}

type storeKey struct {
	jobID, mapTask int
}

// StartWorker launches a worker: it listens on listenAddr (":0" for any
// port), registers with the master, and begins polling in a goroutine.
// Close stops it.
func StartWorker(masterAddr, listenAddr string) (*Worker, error) {
	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("rpcmr: worker listen: %w", err)
	}
	w := &Worker{
		PollInterval: 20 * time.Millisecond,
		addr:         lis.Addr().String(),
		lis:          lis,
		store:        make(map[storeKey][][]mapreduce.Pair),
		peers:        make(map[string]*rpc.Client),
		dfsClients:   make(map[string]*dfs.Client),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &workerRPC{w: w}); err != nil {
		lis.Close()
		return nil, err
	}
	go acceptLoop(lis, srv)

	conn, err := net.DialTimeout("tcp", masterAddr, 5*time.Second)
	if err != nil {
		lis.Close()
		return nil, fmt.Errorf("rpcmr: dial master: %w", err)
	}
	w.master = rpc.NewClient(conn)
	var reply RegisterReply
	if err := w.master.Call("Master.Register", &RegisterArgs{Addr: w.addr}, &reply); err != nil {
		w.master.Close()
		lis.Close()
		return nil, fmt.Errorf("rpcmr: register: %w", err)
	}
	w.id = reply.WorkerID
	go w.loop()
	return w, nil
}

// Addr returns the worker's RPC address.
func (w *Worker) Addr() string { return w.addr }

// ID returns the master-assigned worker id.
func (w *Worker) ID() int { return w.id }

// Close stops the polling loop and releases sockets. Pending shuffle data
// is discarded, which the master treats as a worker failure and recovers
// from by re-executing the affected map tasks.
func (w *Worker) Close() error {
	close(w.quit)
	<-w.done
	w.master.Close()
	err := w.lis.Close()
	w.peersMu.Lock()
	for _, c := range w.peers {
		c.Close()
	}
	w.peers = map[string]*rpc.Client{}
	w.peersMu.Unlock()
	w.dfsMu.Lock()
	for _, c := range w.dfsClients {
		c.Close()
	}
	w.dfsClients = map[string]*dfs.Client{}
	w.dfsMu.Unlock()
	return err
}

// dfsClient returns a cached DFS client for the namenode.
func (w *Worker) dfsClient(nameNode string) (*dfs.Client, error) {
	w.dfsMu.Lock()
	defer w.dfsMu.Unlock()
	if c, ok := w.dfsClients[nameNode]; ok {
		return c, nil
	}
	c, err := dfs.NewClient(nameNode)
	if err != nil {
		return nil, err
	}
	w.dfsClients[nameNode] = c
	return c, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

func (w *Worker) loop() {
	defer close(w.done)
	for {
		select {
		case <-w.quit:
			return
		default:
		}
		var task GetTaskReply
		if err := w.master.Call("Master.GetTask", &GetTaskArgs{WorkerID: w.id}, &task); err != nil {
			// Master gone; retry briefly in case of transient error.
			select {
			case <-w.quit:
				return
			case <-time.After(w.PollInterval * 10):
			}
			continue
		}
		switch task.Kind {
		case TaskShutdown:
			return
		case TaskWait:
			select {
			case <-w.quit:
				return
			case <-time.After(w.PollInterval):
			}
		case TaskMap:
			w.runMap(&task)
		case TaskReduce:
			w.runReduce(&task)
		}
	}
}

// report sends a completion (or failure) to the master, best-effort.
func (w *Worker) report(args *CompleteArgs) {
	var reply CompleteReply
	if err := w.master.Call("Master.CompleteTask", args, &reply); err != nil {
		w.logf("worker %d: report failed: %v", w.id, err)
	}
}

func (w *Worker) runMap(task *GetTaskReply) {
	args := &CompleteArgs{WorkerID: w.id, JobID: task.JobID, Kind: TaskMap, TaskID: task.TaskID}
	factory, err := lookupJob(task.JobName)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	job := factory(task.Conf)
	records := task.Split
	if task.DFSPart != "" {
		fsc, err := w.dfsClient(task.DFSNameNode)
		if err != nil {
			args.Err = err.Error()
			w.report(args)
			return
		}
		records, err = dfsio.LoadPart(fsc, task.DFSPart)
		if err != nil {
			args.Err = err.Error()
			w.report(args)
			return
		}
	}
	counters := mapreduce.NewCounters()
	parts, spans, err := mapreduce.ExecuteMapTask(job, task.TaskID, task.NumReduces, records, counters)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	w.mu.Lock()
	w.store[storeKey{jobID: task.JobID, mapTask: task.TaskID}] = parts
	w.mu.Unlock()
	args.Counters = counters.Snapshot()
	args.Spans = w.tagSpans(spans, task.JobID)
	w.logf("worker %d: map %d of job %d done", w.id, task.TaskID, task.JobID)
	w.report(args)
}

func (w *Worker) runReduce(task *GetTaskReply) {
	args := &CompleteArgs{WorkerID: w.id, JobID: task.JobID, Kind: TaskReduce, TaskID: task.TaskID}
	factory, err := lookupJob(task.JobName)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	job := factory(task.Conf)
	fetchStart := time.Now()
	sorted := make([][]mapreduce.Pair, 0, len(task.Maps))
	var failed []int
	for _, loc := range task.Maps {
		pairs, err := w.fetch(loc.WorkerAddr, task.JobID, loc.MapTaskID, task.TaskID)
		if err != nil {
			failed = append(failed, loc.MapTaskID)
			continue
		}
		sorted = append(sorted, pairs)
	}
	if len(failed) > 0 {
		args.Err = fmt.Sprintf("fetch failed for %d map outputs", len(failed))
		args.FailedMaps = failed
		w.report(args)
		return
	}
	counters := mapreduce.NewCounters()
	out, spans, err := mapreduce.ExecuteReduceTask(job, task.TaskID, task.NumReduces, sorted, counters)
	if err != nil {
		args.Err = err.Error()
		w.report(args)
		return
	}
	// Fold the shuffle-fetch time into the reduce span (there is no
	// separate fetch span, so span counts match the local engine).
	for i := range spans {
		if spans[i].Phase == obs.PhaseReduce {
			spans[i].Start = fetchStart
			spans[i].Wall = time.Since(fetchStart)
		}
	}
	args.Output = out
	args.Counters = counters.Snapshot()
	args.Spans = w.tagSpans(spans, task.JobID)
	w.logf("worker %d: reduce %d of job %d done (%d records)", w.id, task.TaskID, task.JobID, len(out))
	w.report(args)
}

// tagSpans stamps this worker's identity and the job id on task spans
// before they travel back to the master.
func (w *Worker) tagSpans(spans []obs.Span, jobID int) []obs.Span {
	for i := range spans {
		spans[i].Worker = w.id
		spans[i].JobID = jobID
	}
	return spans
}

// fetch retrieves one map task's partition, from local store when the data
// is ours, otherwise over the peer RPC.
func (w *Worker) fetch(addr string, jobID, mapTask, partition int) ([]mapreduce.Pair, error) {
	if addr == w.addr {
		w.mu.Lock()
		parts, ok := w.store[storeKey{jobID: jobID, mapTask: mapTask}]
		w.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("rpcmr: local map output %d/%d missing", jobID, mapTask)
		}
		return parts[partition], nil
	}
	client, err := w.peer(addr)
	if err != nil {
		return nil, err
	}
	var reply FetchReply
	err = client.Call("Worker.FetchPartition", &FetchArgs{JobID: jobID, MapTaskID: mapTask, Partition: partition}, &reply)
	if err != nil {
		w.dropPeer(addr)
		return nil, err
	}
	return reply.Pairs, nil
}

func (w *Worker) peer(addr string) (*rpc.Client, error) {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	if c, ok := w.peers[addr]; ok {
		return c, nil
	}
	c, err := dialWorker(addr)
	if err != nil {
		return nil, err
	}
	w.peers[addr] = c
	return c, nil
}

func (w *Worker) dropPeer(addr string) {
	w.peersMu.Lock()
	if c, ok := w.peers[addr]; ok {
		c.Close()
		delete(w.peers, addr)
	}
	w.peersMu.Unlock()
}

// workerRPC is the worker's RPC surface for the master and peer workers.
type workerRPC struct {
	w *Worker
}

// FetchPartition serves one partition of a stored map output.
func (r *workerRPC) FetchPartition(args *FetchArgs, reply *FetchReply) error {
	w := r.w
	w.mu.Lock()
	parts, ok := w.store[storeKey{jobID: args.JobID, mapTask: args.MapTaskID}]
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("rpcmr: map output %d/%d not on this worker", args.JobID, args.MapTaskID)
	}
	if args.Partition < 0 || args.Partition >= len(parts) {
		return fmt.Errorf("rpcmr: partition %d out of range", args.Partition)
	}
	reply.Pairs = parts[args.Partition]
	return nil
}

// Cleanup drops a job's intermediate data.
func (r *workerRPC) Cleanup(args *CleanupArgs, reply *CleanupReply) error {
	w := r.w
	w.mu.Lock()
	for k := range w.store {
		if k.jobID == args.JobID {
			delete(w.store, k)
		}
	}
	w.mu.Unlock()
	return nil
}
