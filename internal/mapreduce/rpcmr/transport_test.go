package rpcmr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

// seedStore plants a partitioned map output directly in a worker's store,
// letting transport tests exercise fetches without running a job.
func seedStore(w *Worker, jobID, mapTask int, parts [][]mapreduce.Pair) {
	w.mu.Lock()
	w.store[storeKey{jobID: jobID, mapTask: mapTask}] = parts
	w.mu.Unlock()
}

// textPairs builds n highly compressible records (~valSize bytes each).
func textPairs(n, valSize int) []mapreduce.Pair {
	pairs := make([]mapreduce.Pair, n)
	for i := range pairs {
		pairs[i] = mapreduce.Pair{
			Key:   fmt.Sprintf("key-%06d", i),
			Value: bytes.Repeat([]byte{'a' + byte(i%4)}, valSize),
		}
	}
	return pairs
}

// randomPairs builds n incompressible records from a seeded PRNG.
func randomPairs(n, valSize int, seed int64) []mapreduce.Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]mapreduce.Pair, n)
	for i := range pairs {
		v := make([]byte, valSize)
		rng.Read(v)
		pairs[i] = mapreduce.Pair{Key: fmt.Sprintf("key-%06d", i), Value: v}
	}
	return pairs
}

func TestShuffleStreamRoundTrip(t *testing.T) {
	_, ws := startCluster(t, 2)
	want := textPairs(500, 100) // ~54KB framed: several chunks at 8KB
	seedStore(ws[0], 7, 3, [][]mapreduce.Pair{nil, want})

	o := fetchOptions{stream: true, chunkBytes: 8 << 10}
	got, stats, err := ws[1].fetchStream(ws[0].shuffleAddr, 7, 3, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed pairs differ from stored partition")
	}
	if stats.records != int64(len(want)) {
		t.Fatalf("stats.records = %d, want %d", stats.records, len(want))
	}
	// Without compression every chunk travels raw.
	if stats.wireBytes != stats.rawBytes {
		t.Fatalf("raw transfer: wire %d != raw %d", stats.wireBytes, stats.rawBytes)
	}
	var framed int64
	for _, p := range want {
		framed += mapreduce.FrameBytes(p)
	}
	if stats.rawBytes <= framed {
		t.Fatalf("rawBytes %d should exceed framed payload %d (chunk headers)", stats.rawBytes, framed)
	}

	// The empty partition round-trips too.
	got0, stats0, err := ws[1].fetchStream(ws[0].shuffleAddr, 7, 3, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(got0) != 0 || stats0.records != 0 {
		t.Fatalf("empty partition returned %d pairs", len(got0))
	}
}

func TestShuffleStreamCompression(t *testing.T) {
	_, ws := startCluster(t, 2)
	want := textPairs(500, 100)
	seedStore(ws[0], 7, 0, [][]mapreduce.Pair{want})

	o := fetchOptions{stream: true, compress: true, chunkBytes: 8 << 10}
	got, stats, err := ws[1].fetchStream(ws[0].shuffleAddr, 7, 0, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compressed stream corrupted the partition")
	}
	// Acceptance: compressible data must actually shrink on the wire.
	if stats.wireBytes >= stats.rawBytes {
		t.Fatalf("compression did not shrink: wire %d >= raw %d", stats.wireBytes, stats.rawBytes)
	}
}

func TestShuffleStreamCompressionNeverRegresses(t *testing.T) {
	_, ws := startCluster(t, 2)
	// Random values: flate only finds scraps (frame headers, key prefixes).
	// Whatever it finds, chunks that don't shrink are sent raw, so the wire
	// volume can never exceed the raw volume.
	want := randomPairs(300, 128, 42)
	seedStore(ws[0], 7, 0, [][]mapreduce.Pair{want})

	o := fetchOptions{stream: true, compress: true, chunkBytes: 8 << 10}
	got, stats, err := ws[1].fetchStream(ws[0].shuffleAddr, 7, 0, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stream corrupted the partition")
	}
	if stats.wireBytes > stats.rawBytes {
		t.Fatalf("compression regressed the wire volume: wire %d > raw %d", stats.wireBytes, stats.rawBytes)
	}
}

func TestShuffleStreamMissingPartitionPermanent(t *testing.T) {
	_, ws := startCluster(t, 2)
	o := fetchOptions{stream: true, chunkBytes: 8 << 10}
	_, _, err := ws[1].fetchStream(ws[0].shuffleAddr, 99, 0, 0, o)
	if !errors.Is(err, errShuffleMissing) {
		t.Fatalf("missing partition: got %v, want errShuffleMissing", err)
	}

	// The status-1 reply leaves the serving connection at a request
	// boundary: the same stream must answer a valid request afterwards.
	want := textPairs(10, 32)
	seedStore(ws[0], 99, 0, [][]mapreduce.Pair{want})
	s, err := ws[1].getStream(ws[0].shuffleAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.conn.Close()
	if _, _, err := ws[1].fetchOnStream(s, 99, 5, 0, o); !errors.Is(err, errShuffleMissing) {
		t.Fatalf("first request on stream: %v", err)
	}
	got, _, err := ws[1].fetchOnStream(s, 99, 0, 0, o)
	if err != nil {
		t.Fatalf("request after error reply: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-error fetch returned wrong data")
	}
}

func TestShuffleStreamConnectionReuse(t *testing.T) {
	_, ws := startCluster(t, 2)
	seedStore(ws[0], 7, 0, [][]mapreduce.Pair{textPairs(50, 64)})
	addr := ws[0].shuffleAddr
	o := fetchOptions{stream: true, chunkBytes: 8 << 10}

	if _, _, err := ws[1].fetchStream(addr, 7, 0, 0, o); err != nil {
		t.Fatal(err)
	}
	ws[1].streamMu.Lock()
	if len(ws[1].streams[addr]) != 1 {
		ws[1].streamMu.Unlock()
		t.Fatalf("pool has %d conns after fetch, want 1", len(ws[1].streams[addr]))
	}
	pooled := ws[1].streams[addr][0]
	ws[1].streamMu.Unlock()

	if _, _, err := ws[1].fetchStream(addr, 7, 0, 0, o); err != nil {
		t.Fatal(err)
	}
	ws[1].streamMu.Lock()
	defer ws[1].streamMu.Unlock()
	if len(ws[1].streams[addr]) != 1 || ws[1].streams[addr][0] != pooled {
		t.Fatal("second fetch did not reuse the pooled connection")
	}
}

func TestShuffleStreamMidStreamAbortIsTransient(t *testing.T) {
	_, ws := startCluster(t, 2)
	seedStore(ws[0], 7, 0, [][]mapreduce.Pair{textPairs(500, 100)})
	ws[0].shuffleChunkHook = func(_, _, _, chunk int) error {
		if chunk >= 1 {
			return errors.New("injected mid-stream abort")
		}
		return nil
	}
	o := fetchOptions{stream: true, chunkBytes: 1024}
	_, _, err := ws[1].fetchStream(ws[0].shuffleAddr, 7, 0, 0, o)
	if err == nil {
		t.Fatal("mid-stream abort went unnoticed")
	}
	// A dropped connection is transient (worth a retry), unlike the
	// explicit missing-data reply.
	if errors.Is(err, errShuffleMissing) {
		t.Fatalf("mid-stream abort misclassified as permanent: %v", err)
	}
}

// chunky emits enough data per map task that every partition streams as
// several chunks at the test's chunk size. The Map function runs once per
// input record, so recovery tests feed exactly one record per map task to
// make chunkyExecs a per-task execution count.
var (
	chunkyMu    sync.Mutex
	chunkyExecs = map[int]int{}
)

func resetChunkyExecs() {
	chunkyMu.Lock()
	chunkyExecs = map[int]int{}
	chunkyMu.Unlock()
}

func init() {
	RegisterJob("chunky", func(conf mapreduce.Conf) *mapreduce.Job {
		return &mapreduce.Job{
			Name: "chunky",
			Conf: conf,
			Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
				chunkyMu.Lock()
				chunkyExecs[ctx.TaskID]++
				chunkyMu.Unlock()
				// Slow the map down so tasks spread across the cluster's
				// workers (an instant task lets one worker win every poll,
				// making all shuffle fetches local and untested).
				time.Sleep(40 * time.Millisecond)
				pad := bytes.Repeat([]byte{'p'}, 200)
				for i := 0; i < 40; i++ {
					out.Emit(fmt.Sprintf("%s-%d", value, i), pad)
				}
				return nil
			},
			Reduce: func(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
				out.Emit(key, []byte(strconv.Itoa(len(values))))
				return nil
			},
		}
	})
}

func chunkyInput(n int) []mapreduce.Pair {
	input := make([]mapreduce.Pair, n)
	for i := range input {
		input[i] = mapreduce.Pair{Value: []byte(fmt.Sprintf("m%d", i))}
	}
	return input
}

// TestShuffleCompressionCountersEndToEnd runs a job with per-chunk
// compression on and checks the acceptance invariant on the resulting
// counters: the wire actually carried fewer bytes than the framed volume,
// while the logical shuffle.bytes metric is untouched by the transport.
func TestShuffleCompressionCountersEndToEnd(t *testing.T) {
	m, _ := startCluster(t, 3)
	resetChunkyExecs()

	conf := mapreduce.Conf{}
	conf.SetBool(ConfShuffleCompress, true)
	conf.SetInt(ConfShuffleChunkBytes, 1024)
	factory, err := lookupJob("chunky")
	if err != nil {
		t.Fatal(err)
	}
	job := factory(conf)
	job.NumMaps = 4
	job.NumReduces = 3
	res, err := m.Run(context.Background(), job, chunkyInput(4))
	if err != nil {
		t.Fatal(err)
	}
	wire := res.Counters.Get(mapreduce.CtrShuffleWireBytes)
	sent := res.Counters.Get(mapreduce.CtrShuffleWireBytesCompressed)
	if wire == 0 {
		t.Fatal("no remote streamed fetches; wire counters never engaged")
	}
	if sent >= wire {
		t.Fatalf("compression on: sent %d >= framed %d", sent, wire)
	}
	logical := res.Counters.Get(mapreduce.CtrShuffleBytes)
	if logical == 0 || logical == wire {
		t.Fatalf("logical shuffle.bytes %d should be independent of wire %d", logical, wire)
	}
}

// TestShuffleRetryRecoversTransientAbort kills one streamed fetch
// mid-flight but leaves the data in place: the reducer's retry must
// succeed, with no map re-executed and no FailedMaps report.
func TestShuffleRetryRecoversTransientAbort(t *testing.T) {
	m, ws := startCluster(t, 3)
	resetChunkyExecs()

	var fired int64
	for _, w := range ws {
		w.shuffleChunkHook = func(_, _, _, chunk int) error {
			if chunk >= 1 && atomic.CompareAndSwapInt64(&fired, 0, 1) {
				return errors.New("injected transient abort")
			}
			return nil
		}
	}

	conf := mapreduce.Conf{}
	conf.SetInt(ConfShuffleChunkBytes, 1024)
	factory, err := lookupJob("chunky")
	if err != nil {
		t.Fatal(err)
	}
	job := factory(conf)
	job.NumMaps = 4
	job.NumReduces = 3
	res, err := m.Run(context.Background(), job, chunkyInput(4))
	if err != nil {
		t.Fatalf("job with transient abort: %v", err)
	}
	if atomic.LoadInt64(&fired) != 1 {
		t.Fatal("abort hook never fired; chunking did not engage")
	}
	if len(res.Output) != 4*40 {
		t.Fatalf("output has %d records, want %d", len(res.Output), 4*40)
	}
	chunkyMu.Lock()
	defer chunkyMu.Unlock()
	for task, n := range chunkyExecs {
		if n != 1 {
			t.Fatalf("map %d executed %d times; retry should not re-execute maps", task, n)
		}
	}
}

// TestMidStreamPeerFailureRecovery is the full recovery drill: a peer
// "dies" halfway through a chunked stream — the hook drops the map output
// and severs the connection. The reducer's retry then gets the permanent
// missing-data reply, reports FailedMaps, and the master re-executes only
// that map before re-running the reduce.
func TestMidStreamPeerFailureRecovery(t *testing.T) {
	m, ws := startCluster(t, 3)
	resetChunkyExecs()

	var fired int64
	victim := int64(-1)
	for _, w := range ws {
		w := w
		w.shuffleChunkHook = func(jobID, mapTask, _, chunk int) error {
			if chunk >= 1 && atomic.CompareAndSwapInt64(&fired, 0, 1) {
				atomic.StoreInt64(&victim, int64(mapTask))
				w.mu.Lock()
				delete(w.store, storeKey{jobID: jobID, mapTask: mapTask})
				w.mu.Unlock()
				return errors.New("injected peer death")
			}
			return nil
		}
	}

	conf := mapreduce.Conf{}
	conf.SetInt(ConfShuffleChunkBytes, 1024)
	factory, err := lookupJob("chunky")
	if err != nil {
		t.Fatal(err)
	}
	job := factory(conf)
	job.NumMaps = 4
	job.NumReduces = 3
	res, err := m.Run(context.Background(), job, chunkyInput(4))
	if err != nil {
		t.Fatalf("job with mid-stream peer death: %v", err)
	}
	if atomic.LoadInt64(&fired) != 1 {
		t.Fatal("failure hook never fired; chunking did not engage")
	}

	// Output must be complete and correct despite the lost map output:
	// every emitted key is unique, so each reduces to a count of 1.
	if len(res.Output) != 4*40 {
		t.Fatalf("output has %d records, want %d", len(res.Output), 4*40)
	}
	for _, p := range res.Output {
		if string(p.Value) != "1" {
			t.Fatalf("key %q reduced to %q, want \"1\"", p.Key, p.Value)
		}
	}

	// Only the victim map was re-executed. (It can run more than twice if
	// two reducers were fetching it concurrently and both reported the
	// loss; every other map must have run exactly once.)
	v := int(atomic.LoadInt64(&victim))
	chunkyMu.Lock()
	defer chunkyMu.Unlock()
	if chunkyExecs[v] < 2 {
		t.Fatalf("victim map %d executed %d times, want >= 2", v, chunkyExecs[v])
	}
	for task, n := range chunkyExecs {
		if task != v && n != 1 {
			t.Fatalf("map %d executed %d times; only victim %d should re-run", task, n, v)
		}
	}
}
