package rpcmr

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernels"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// stripWireCounters drops the shuffle.wire.* counters before cross-engine
// comparison: they measure transport bytes, which only the distributed
// engine has. The logical shuffle.bytes counter stays in the comparison —
// the transport must not change what the paper's metric reports.
func stripWireCounters(c map[string]int64) {
	for k := range c {
		if strings.HasPrefix(k, "shuffle.wire.") {
			delete(c, k)
		}
	}
}

// TestRunnerConformance drives the same LSH-DDP density job through both
// mapreduce.Runner implementations — the in-process Driver and a real
// 3-worker rpcmr cluster — and asserts they are observationally identical:
// same output, same counter totals, and the same trace span geometry. Task
// counts are pinned because the two engines default them differently (the
// local engine defaults maps to its parallelism, the master to 2× workers);
// with identical contiguous splits every per-task counter is deterministic.
func TestRunnerConformance(t *testing.T) {
	ds := dataset.Blobs("conformance", 600, 2, 4, 100, 3, 11)
	input := core.InputPairs(ds)

	conf := mapreduce.Conf{}
	conf.SetFloat("ddp.dc", 4.0)
	conf.SetInt("ddp.dim", ds.Dim())
	conf.SetInt("ddp.lsh.m", 4)
	conf.SetInt("ddp.lsh.pi", 2)
	conf.SetFloat("ddp.lsh.w", 12)
	conf.SetInt64("ddp.seed", 7)

	const nMaps, nReduces = 4, 3
	makeJob := func() *mapreduce.Job {
		j := core.JobFactories()[core.JobLSHRho](conf.Clone())
		j.NumMaps = nMaps
		j.NumReduces = nReduces
		return j
	}

	master, _ := startCluster(t, 3)
	runners := []struct {
		name   string
		runner mapreduce.Runner
	}{
		{"local", mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 3})},
		{"rpcmr", master},
	}

	type observed struct {
		output   []mapreduce.Pair
		counters map[string]int64
		spans    map[obs.Phase]int
		bytes    int64
	}
	results := make(map[string]observed)

	for _, rc := range runners {
		t.Run(rc.name, func(t *testing.T) {
			res, err := rc.runner.Run(context.Background(), makeJob(), input)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trace == nil {
				t.Fatal("Run returned no trace")
			}
			jobs := rc.runner.Jobs()
			if len(jobs) != 1 {
				t.Fatalf("Jobs() = %d entries, want 1", len(jobs))
			}
			traces := rc.runner.Traces()
			if len(traces) != 1 {
				t.Fatalf("Traces() = %d entries, want 1", len(traces))
			}

			// PhaseFetch spans are the distributed engine's wire-level
			// observation (one per remote shuffle fetch) — engine-specific
			// by design, so they sit outside the geometry invariant. Their
			// Bytes must still be real: positive, and consistent with the
			// job's wire counters.
			spans := map[obs.Phase]int{}
			var shuffleBytes, fetchWireBytes int64
			for _, s := range res.Trace.Spans {
				if s.Phase == obs.PhaseFetch {
					if s.Bytes <= 0 {
						t.Fatalf("fetch span with %d wire bytes", s.Bytes)
					}
					fetchWireBytes += s.Bytes
					continue
				}
				spans[s.Phase]++
				if s.Phase == obs.PhaseShuffle {
					shuffleBytes += s.Bytes
				}
			}
			if ctr := rc.runner.TotalCounter(mapreduce.CtrShuffleWireBytesCompressed); fetchWireBytes != ctr {
				t.Fatalf("fetch span bytes = %d, %s counter = %d",
					fetchWireBytes, mapreduce.CtrShuffleWireBytesCompressed, ctr)
			}
			// Geometry: one map, sort, and shuffle span per map task (the
			// job has no combiner), one reduce span per reduce task.
			want := map[obs.Phase]int{
				obs.PhaseMap:     nMaps,
				obs.PhaseSort:    nMaps,
				obs.PhaseShuffle: nMaps,
				obs.PhaseReduce:  nReduces,
			}
			if !reflect.DeepEqual(spans, want) {
				t.Fatalf("span counts = %v, want %v", spans, want)
			}

			// Acceptance invariant: shuffle spans account exactly the bytes
			// the shuffle counter measures.
			if ctr := rc.runner.TotalCounter(mapreduce.CtrShuffleBytes); shuffleBytes != ctr {
				t.Fatalf("shuffle span bytes = %d, %s counter = %d",
					shuffleBytes, mapreduce.CtrShuffleBytes, ctr)
			}

			out := append([]mapreduce.Pair(nil), res.Output...)
			sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
			results[rc.name] = observed{
				output:   out,
				counters: res.Counters.Snapshot(),
				spans:    spans,
				bytes:    shuffleBytes,
			}
		})
	}

	local, rpc := results["local"], results["rpcmr"]
	if local.output == nil || rpc.output == nil {
		t.Fatal("one of the runners did not record results")
	}
	stripWireCounters(local.counters)
	stripWireCounters(rpc.counters)
	if !reflect.DeepEqual(local.counters, rpc.counters) {
		t.Errorf("counter snapshots differ:\n local: %v\n rpcmr: %v", local.counters, rpc.counters)
	}
	if !reflect.DeepEqual(local.spans, rpc.spans) {
		t.Errorf("span counts differ: local %v, rpcmr %v", local.spans, rpc.spans)
	}
	if local.bytes != rpc.bytes {
		t.Errorf("shuffle span bytes differ: local %d, rpcmr %d", local.bytes, rpc.bytes)
	}
	if len(local.output) != len(rpc.output) {
		t.Fatalf("output sizes differ: local %d, rpcmr %d", len(local.output), len(rpc.output))
	}
	for i := range local.output {
		if local.output[i].Key != rpc.output[i].Key {
			t.Fatalf("output key %d differs: %q vs %q", i, local.output[i].Key, rpc.output[i].Key)
		}
	}
}

// TestConformanceParallelKernels repeats the density job with the
// intra-partition parallelism knobs set in Conf. The knobs ride the same
// (name, conf) job transport as every other parameter, so remote workers
// must rebuild them and take the parallel path: both engines must count the
// same dp.parallel.groups, and byte-identical output proves the parallel
// tile merge reproduces the serial kernel on the distributed engine too.
func TestConformanceParallelKernels(t *testing.T) {
	ds := dataset.Blobs("conformance-par", 600, 2, 4, 100, 3, 11)
	input := core.InputPairs(ds)

	conf := mapreduce.Conf{}
	conf.SetFloat("ddp.dc", 4.0)
	conf.SetInt("ddp.dim", ds.Dim())
	conf.SetInt("ddp.lsh.m", 4)
	conf.SetInt("ddp.lsh.pi", 2)
	conf.SetFloat("ddp.lsh.w", 12)
	conf.SetInt64("ddp.seed", 7)
	conf.SetInt("ddp.parallel.threshold", 32)
	conf.SetInt("ddp.parallel.workers", 3)

	makeJob := func() *mapreduce.Job {
		j := core.JobFactories()[core.JobLSHRho](conf.Clone())
		j.NumMaps = 4
		j.NumReduces = 3
		return j
	}

	master, _ := startCluster(t, 3)
	runners := []struct {
		name   string
		runner mapreduce.Runner
	}{
		{"local", mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 3})},
		{"rpcmr", master},
	}

	type observed struct {
		output   []mapreduce.Pair
		counters map[string]int64
	}
	results := make(map[string]observed)
	for _, rc := range runners {
		res, err := rc.runner.Run(context.Background(), makeJob(), input)
		if err != nil {
			t.Fatalf("%s: %v", rc.name, err)
		}
		out := append([]mapreduce.Pair(nil), res.Output...)
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		results[rc.name] = observed{output: out, counters: res.Counters.Snapshot()}
	}

	local, rpc := results["local"], results["rpcmr"]
	if local.counters[mapreduce.CtrParallelGroups] == 0 {
		t.Fatal("parallel threshold engaged no reducer groups")
	}
	stripWireCounters(local.counters)
	stripWireCounters(rpc.counters)
	if !reflect.DeepEqual(local.counters, rpc.counters) {
		t.Errorf("counter snapshots differ:\n local: %v\n rpcmr: %v", local.counters, rpc.counters)
	}
	if len(local.output) != len(rpc.output) {
		t.Fatalf("output sizes differ: local %d, rpcmr %d", len(local.output), len(rpc.output))
	}
	for i := range local.output {
		if local.output[i].Key != rpc.output[i].Key || !reflect.DeepEqual(local.output[i].Value, rpc.output[i].Value) {
			t.Fatalf("output record %d differs between engines", i)
		}
	}
}

// TestConformanceCompactScan runs the density job with the compact f32 scan
// path enabled (mr.scan.precision rides Conf like every other knob). Remote
// workers must take the compact path (kernels.compact.evals > 0 on both
// engines), the local and distributed runs must agree byte-for-byte, and —
// the actual correctness claim — the compact output values must be
// byte-identical to a plain float64 baseline run.
func TestConformanceCompactScan(t *testing.T) {
	ds := dataset.Blobs("conformance-compact", 600, 2, 4, 100, 3, 11)
	input := core.InputPairs(ds)

	baseConf := mapreduce.Conf{}
	baseConf.SetFloat("ddp.dc", 4.0)
	baseConf.SetInt("ddp.dim", ds.Dim())
	baseConf.SetInt("ddp.lsh.m", 4)
	baseConf.SetInt("ddp.lsh.pi", 2)
	baseConf.SetFloat("ddp.lsh.w", 12)
	baseConf.SetInt64("ddp.seed", 7)
	compactConf := baseConf.Clone()
	compactConf[kernels.ConfScanPrecision] = kernels.ScanF32

	makeJob := func(conf mapreduce.Conf) *mapreduce.Job {
		j := core.JobFactories()[core.JobLSHRho](conf.Clone())
		j.NumMaps = 4
		j.NumReduces = 3
		return j
	}

	master, _ := startCluster(t, 3)
	runners := []struct {
		name   string
		runner mapreduce.Runner
		conf   mapreduce.Conf
	}{
		{"local-f64", mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 3}), baseConf},
		{"local-f32", mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 3}), compactConf},
		{"rpcmr-f32", master, compactConf},
	}

	type observed struct {
		output   []mapreduce.Pair
		counters map[string]int64
	}
	results := make(map[string]observed)
	for _, rc := range runners {
		res, err := rc.runner.Run(context.Background(), makeJob(rc.conf), input)
		if err != nil {
			t.Fatalf("%s: %v", rc.name, err)
		}
		out := append([]mapreduce.Pair(nil), res.Output...)
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		results[rc.name] = observed{output: out, counters: res.Counters.Snapshot()}
	}

	local, rpc := results["local-f32"], results["rpcmr-f32"]
	if local.counters[mapreduce.CtrCompactEvals] == 0 {
		t.Fatal("compact scan path never engaged on the local engine")
	}
	if rpc.counters[mapreduce.CtrCompactEvals] == 0 {
		t.Fatal("compact scan path never engaged on the rpcmr cluster")
	}
	stripWireCounters(local.counters)
	stripWireCounters(rpc.counters)
	if !reflect.DeepEqual(local.counters, rpc.counters) {
		t.Errorf("counter snapshots differ:\n local: %v\n rpcmr: %v", local.counters, rpc.counters)
	}
	// Compact vs exact: same keys, same bytes — the re-rank contract.
	for _, name := range []string{"local-f32", "rpcmr-f32"} {
		got := results[name]
		want := results["local-f64"]
		if len(got.output) != len(want.output) {
			t.Fatalf("%s: output size %d differs from f64 baseline %d", name, len(got.output), len(want.output))
		}
		for i := range want.output {
			if got.output[i].Key != want.output[i].Key || !reflect.DeepEqual(got.output[i].Value, want.output[i].Value) {
				t.Fatalf("%s: output record %d differs from f64 baseline", name, i)
			}
		}
	}
}
