package rpcmr

import (
	"testing"

	"repro/internal/mapreduce"
)

// BenchmarkShuffleTransport compares the three reduce-side fetch paths —
// the legacy gob-over-net/rpc FetchPartition, the framed-TCP streaming
// transport, and the streaming transport with per-chunk DEFLATE — over one
// partition at several sizes. Throughput (SetBytes) is measured against
// the framed payload volume, i.e. the logical bytes a reducer needs, so
// the three paths are directly comparable. Run with:
//
//	make bench-shuffle
func BenchmarkShuffleTransport(b *testing.B) {
	sizes := []struct {
		name    string
		n       int
		valSize int
	}{
		{"1MB", 4 << 10, 240},
		{"16MB", 64 << 10, 240},
		{"64MB", 256 << 10, 240},
	}
	for _, sz := range sizes {
		pairs := textPairs(sz.n, sz.valSize)
		var framed int64
		for _, p := range pairs {
			framed += mapreduce.FrameBytes(p)
		}
		b.Run(sz.name, func(b *testing.B) {
			paths := []struct {
				name string
				opts fetchOptions
				gob  bool
			}{
				{name: "gob", gob: true},
				{name: "stream", opts: fetchOptions{stream: true, chunkBytes: defaultShuffleChunkBytes}},
				{name: "stream-flate", opts: fetchOptions{stream: true, compress: true, chunkBytes: defaultShuffleChunkBytes}},
			}
			for _, path := range paths {
				b.Run(path.name, func(b *testing.B) {
					_, ws := startCluster(b, 2)
					seedStore(ws[0], 1, 0, [][]mapreduce.Pair{pairs})
					b.SetBytes(framed)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var got []mapreduce.Pair
						var err error
						if path.gob {
							got, err = ws[1].fetch(ws[0].addr, 1, 0, 0)
						} else {
							got, _, err = ws[1].fetchStream(ws[0].shuffleAddr, 1, 0, 0, path.opts)
						}
						if err != nil {
							b.Fatal(err)
						}
						if len(got) != sz.n {
							b.Fatalf("fetched %d pairs, want %d", len(got), sz.n)
						}
					}
				})
			}
		})
	}
}
