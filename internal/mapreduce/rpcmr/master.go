package rpcmr

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Master coordinates a worker fleet and implements mapreduce.Runner: the
// same run-and-observe surface as the local Driver, so a pipeline moves
// from in-process to a cluster by swapping the Runner. One job runs at a
// time (drivers in this repository are sequential anyway); Run blocks
// until the job finishes or fails permanently.
type Master struct {
	// LeaseTimeout re-queues a task not completed within the lease
	// (default 60s; tests shrink it to exercise recovery).
	LeaseTimeout time.Duration
	// SpeculativeFactor enables straggler mitigation: when every task is
	// assigned and one has been running more than SpeculativeFactor times
	// the median completed-task duration (and at least 100ms), an idle
	// worker gets a backup attempt; the first completion wins, the loser
	// is ignored. 0 disables speculation.
	SpeculativeFactor float64
	// Log, when non-nil, receives scheduling events. Superseded by Events;
	// kept so existing wiring keeps working (it is wrapped in a LogfSink).
	Log func(format string, args ...any)
	// Events, when non-nil, receives scheduler and progress events and
	// takes precedence over Log.
	Events obs.Sink
	// MonitorInterval, when >0 and an event sink is configured, emits
	// periodic counter snapshots (records/s, shuffle MB/s) while a job
	// runs.
	MonitorInterval time.Duration

	lis  net.Listener
	addr string

	mu         sync.Mutex
	cond       *sync.Cond
	workers    map[int]*workerInfo
	nextWorker int
	jobSeq     int
	cur        *jobRun
	history    []JobRecord
	jobs       []mapreduce.JobStats
	traces     []obs.JobTrace
	total      *mapreduce.Counters
	closed     bool
}

var _ mapreduce.Runner = (*Master)(nil)

// JobRecord summarizes one completed job for Master.History.
type JobRecord struct {
	ID       int
	Name     string
	Maps     int
	Reduces  int
	Wall     time.Duration
	Failed   bool
	Counters map[string]int64
	// Workers is how many distinct workers ran this job's tasks.
	Workers int
	// MapDist / ReduceDist summarize per-phase task wall times (median,
	// max, straggler count) from the worker-reported spans.
	MapDist    obs.TaskDist
	ReduceDist obs.TaskDist
}

type workerInfo struct {
	id          int
	addr        string
	shuffleAddr string
	lastSeen    time.Time
}

type taskStatus int

const (
	taskIdle taskStatus = iota
	taskRunning
	taskDone
)

type taskSlot struct {
	status  taskStatus
	worker  int
	started time.Time
	// backup marks that a speculative duplicate attempt was launched.
	backup bool
}

type jobRun struct {
	id          int
	job         *mapreduce.Job
	splits      [][]mapreduce.Pair
	dfsNameNode string
	dfsParts    []string
	nReduce     int
	maps        []taskSlot
	mapAddr     []string // worker addr holding each completed map task's data
	mapShuffle  []string // that worker's streaming shuffle addr ("" = RPC only)
	reduces     []taskSlot
	outputs     [][]mapreduce.Pair
	counters    *mapreduce.Counters
	spans       []obs.Span
	err         error
	done        bool
	// completed task durations, for the speculative-execution median.
	mapDurations    []time.Duration
	reduceDurations []time.Duration
}

// NewMaster starts a master listening on addr ("host:port"; ":0" picks a
// free port). Close releases the listener.
func NewMaster(addr string) (*Master, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcmr: master listen: %w", err)
	}
	m := &Master{
		LeaseTimeout: 60 * time.Second,
		lis:          lis,
		addr:         lis.Addr().String(),
		workers:      make(map[int]*workerInfo),
		total:        mapreduce.NewCounters(),
	}
	m.cond = sync.NewCond(&m.mu)
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", &masterRPC{m: m}); err != nil {
		lis.Close()
		return nil, err
	}
	go acceptLoop(lis, srv)
	return m, nil
}

func acceptLoop(lis net.Listener, srv *rpc.Server) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		go srv.ServeConn(conn)
	}
}

// Addr returns the master's dialable address.
func (m *Master) Addr() string { return m.addr }

// Close shuts the master down; subsequent Runs fail.
func (m *Master) Close() error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	return m.lis.Close()
}

// WorkerCount returns the number of registered workers.
func (m *Master) WorkerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// WaitWorkers blocks until at least n workers have registered or the
// timeout elapses.
func (m *Master) WaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m.WorkerCount() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rpcmr: only %d/%d workers after %v", m.WorkerCount(), n, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sink resolves the event destination: Events when set, else the legacy
// Log wrapped as a sink, else discard.
func (m *Master) sink() obs.Sink {
	if m.Events != nil {
		return m.Events
	}
	if m.Log != nil {
		return obs.LogfSink(m.Log)
	}
	return obs.Discard
}

func (m *Master) logf(format string, args ...any) {
	m.sink().Event("scheduler", format, args...)
}

// MaxConcurrentJobs reports the master's job concurrency: one. The master
// serializes jobs (concurrent Run calls fail with "a job is already
// running"), so the DAG scheduler runs nodes one at a time against it.
func (m *Master) MaxConcurrentJobs() int { return 1 }

// Abort fails the currently running job (if any) with the given reason and
// wakes its Run call. Idle masters ignore it. Unlike Close, the master
// stays alive: workers keep polling and the next Run is accepted — the
// graceful-SIGINT path for `mrd master`.
func (m *Master) Abort(reason error) {
	if reason == nil {
		reason = fmt.Errorf("rpcmr: job aborted")
	}
	m.mu.Lock()
	if run := m.cur; run != nil && !run.done {
		run.err = fmt.Errorf("rpcmr: job %q aborted: %w", run.job.Name, reason)
		run.done = true
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// Run implements mapreduce.Engine: it schedules the job across the
// registered workers and blocks until completion. The job's name must be
// registered (with an identical factory) on every worker. Cancelling ctx
// aborts the job: outstanding task attempts finish on their workers but
// their completions are discarded as stale.
func (m *Master) Run(ctx context.Context, job *mapreduce.Job, input []mapreduce.Pair) (*mapreduce.Result, error) {
	return m.run(ctx, job, input, "", nil)
}

// RunDFS runs a job whose input is staged in the mini-DFS under
// inputPrefix (one map task per part file). Workers read their parts from
// the DFS directly — the master never touches the input bytes.
func (m *Master) RunDFS(ctx context.Context, job *mapreduce.Job, nameNodeAddr, inputPrefix string) (*mapreduce.Result, error) {
	fsc, err := dfs.NewClient(nameNodeAddr)
	if err != nil {
		return nil, err
	}
	parts, err := dfsio.ListParts(fsc, inputPrefix)
	fsc.Close()
	if err != nil {
		return nil, err
	}
	return m.run(ctx, job, nil, nameNodeAddr, parts)
}

func (m *Master) run(ctx context.Context, job *mapreduce.Job, input []mapreduce.Pair, dfsNameNode string, dfsParts []string) (*mapreduce.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpcmr: job %q: %w", job.Name, err)
	}
	start := time.Now()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("rpcmr: master closed")
	}
	if m.cur != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("rpcmr: a job is already running")
	}
	nWorkers := len(m.workers)
	if nWorkers == 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("rpcmr: no workers registered")
	}
	nMaps := job.NumMaps
	if nMaps <= 0 {
		nMaps = 2 * nWorkers
	}
	nReduce := job.NumReduces
	if nReduce <= 0 {
		nReduce = 2 * nWorkers
	}
	var splits [][]mapreduce.Pair
	if dfsParts == nil {
		splits = splitPairs(input, nMaps)
	} else {
		splits = make([][]mapreduce.Pair, len(dfsParts))
	}
	m.jobSeq++
	run := &jobRun{
		id:          m.jobSeq,
		job:         job,
		splits:      splits,
		dfsNameNode: dfsNameNode,
		dfsParts:    dfsParts,
		nReduce:     nReduce,
		maps:        make([]taskSlot, len(splits)),
		mapAddr:     make([]string, len(splits)),
		mapShuffle:  make([]string, len(splits)),
		reduces:     make([]taskSlot, nReduce),
		outputs:     make([][]mapreduce.Pair, nReduce),
		counters:    mapreduce.NewCounters(),
	}
	m.cur = run
	m.logf("job %d %q: %d maps, %d reduces, %d workers", run.id, job.Name, len(splits), nReduce, nWorkers)
	var mon *obs.Monitor
	if m.MonitorInterval > 0 && (m.Events != nil || m.Log != nil) {
		mon = obs.StartMonitor(job.Name, m.MonitorInterval, run.counters.Snapshot, m.sink())
	}
	// Cancellation watcher: ctx.Done fails this run and wakes the wait
	// loop below; workers' in-flight attempts complete but are dropped as
	// stale once m.cur moves on.
	watchDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				m.mu.Lock()
				if !run.done {
					run.err = fmt.Errorf("rpcmr: job %q: %w", run.job.Name, ctx.Err())
					run.done = true
					m.cond.Broadcast()
				}
				m.mu.Unlock()
			case <-watchDone:
			}
		}()
	}
	for !run.done && !m.closed {
		m.cond.Wait()
	}
	close(watchDone)
	err := run.err
	finished := run.done
	m.cur = nil
	closed := m.closed
	workers := make([]string, 0, len(m.workers))
	for _, w := range m.workers {
		workers = append(workers, w.addr)
	}
	m.mu.Unlock()
	if mon != nil {
		mon.Stop()
	}

	if closed && err == nil && !finished {
		return nil, fmt.Errorf("rpcmr: master closed mid-job")
	}
	// Best-effort cleanup of intermediate data on all workers.
	for _, addr := range workers {
		if c, derr := dialWorker(addr); derr == nil {
			var rep CleanupReply
			c.Call("Worker.Cleanup", &CleanupArgs{JobID: run.id}, &rep)
			c.Close()
		}
	}
	wall := time.Since(start)
	snap := run.counters.Snapshot()
	distinct := map[int]bool{}
	for _, s := range run.spans {
		distinct[s.Worker] = true
	}
	record := JobRecord{
		ID:         run.id,
		Name:       run.job.Name,
		Maps:       len(run.maps),
		Reduces:    run.nReduce,
		Wall:       wall,
		Failed:     err != nil,
		Counters:   snap,
		Workers:    len(distinct),
		MapDist:    obs.DistOf(run.spans, obs.PhaseMap),
		ReduceDist: obs.DistOf(run.spans, obs.PhaseReduce),
	}
	trace := obs.JobTrace{
		Job: run.job.Name, ID: run.id, Wall: wall,
		Spans: run.spans, Counters: snap,
	}
	var output []mapreduce.Pair
	for _, ps := range run.outputs {
		output = append(output, ps...)
	}
	m.mu.Lock()
	m.history = append(m.history, record)
	if err == nil {
		// Runner stats accumulate successful jobs only, matching the
		// local Driver (which never records a failed run).
		m.jobs = append(m.jobs, mapreduce.JobStats{
			Name: run.job.Name, Wall: wall, Counters: snap, Records: len(output),
		})
		m.traces = append(m.traces, trace)
		m.total.Merge(run.counters)
	}
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &mapreduce.Result{Output: output, Counters: run.counters, Wall: wall, Trace: &trace}, nil
}

// Jobs returns stats of every successfully completed job, in order.
func (m *Master) Jobs() []mapreduce.JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]mapreduce.JobStats(nil), m.jobs...)
}

// Traces returns the trace of every successfully completed job, in order.
func (m *Master) Traces() []obs.JobTrace {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]obs.JobTrace(nil), m.traces...)
}

// TotalCounter returns the named counter summed over all completed jobs.
func (m *Master) TotalCounter(name string) int64 { return m.total.Get(name) }

// TotalWall returns the summed wall time of all completed jobs.
func (m *Master) TotalWall() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t time.Duration
	for _, j := range m.jobs {
		t += j.Wall
	}
	return t
}

// History returns records of every job this master has completed, in
// execution order — the job-tracker view an operator reads off `mrd
// master`.
func (m *Master) History() []JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]JobRecord(nil), m.history...)
}

// splitPairs divides input into at most n contiguous splits.
func splitPairs(input []mapreduce.Pair, n int) [][]mapreduce.Pair {
	if len(input) == 0 {
		return [][]mapreduce.Pair{nil}
	}
	if n > len(input) {
		n = len(input)
	}
	out := make([][]mapreduce.Pair, 0, n)
	base, rem := len(input)/n, len(input)%n
	off := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, input[off:off+size])
		off += size
	}
	return out
}

// masterRPC is the RPC facade (separate type so Master's exported methods
// stay engine-facing).
type masterRPC struct {
	m *Master
}

// Register signs a worker on.
func (r *masterRPC) Register(args *RegisterArgs, reply *RegisterReply) error {
	m := r.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("rpcmr: master closed")
	}
	m.nextWorker++
	id := m.nextWorker
	m.workers[id] = &workerInfo{id: id, addr: args.Addr, shuffleAddr: args.ShuffleAddr, lastSeen: time.Now()}
	reply.WorkerID = id
	m.logf("worker %d registered at %s", id, args.Addr)
	return nil
}

// GetTask hands the polling worker its next task, if any.
func (r *masterRPC) GetTask(args *GetTaskArgs, reply *GetTaskReply) error {
	m := r.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		reply.Kind = TaskShutdown
		return nil
	}
	w, ok := m.workers[args.WorkerID]
	if !ok {
		return fmt.Errorf("rpcmr: unknown worker %d", args.WorkerID)
	}
	w.lastSeen = time.Now()
	run := m.cur
	if run == nil || run.done {
		reply.Kind = TaskWait
		return nil
	}
	now := time.Now()
	assignable := func(s *taskSlot) bool {
		return s.status == taskIdle ||
			(s.status == taskRunning && now.Sub(s.started) > m.LeaseTimeout)
	}
	// speculatable reports whether a running task qualifies for a backup
	// attempt on another worker.
	speculatable := func(s *taskSlot, durations []time.Duration) bool {
		if m.SpeculativeFactor <= 0 || s.status != taskRunning || s.backup ||
			s.worker == args.WorkerID || len(durations) == 0 {
			return false
		}
		age := now.Sub(s.started)
		median := medianDuration(durations)
		return age > 100*time.Millisecond && age > time.Duration(m.SpeculativeFactor*float64(median))
	}
	// Map phase first.
	allMapsDone := true
	for ti := range run.maps {
		s := &run.maps[ti]
		if s.status != taskDone {
			allMapsDone = false
			if assignable(s) {
				s.status = taskRunning
				s.worker = args.WorkerID
				s.started = now
				reply.Kind = TaskMap
				reply.JobID = run.id
				reply.JobName = run.job.Name
				reply.Conf = run.job.Conf
				reply.TaskID = ti
				reply.NumReduces = run.nReduce
				if run.dfsParts != nil {
					reply.DFSNameNode = run.dfsNameNode
					reply.DFSPart = run.dfsParts[ti]
				} else {
					reply.Split = run.splits[ti]
				}
				return nil
			}
		}
	}
	if !allMapsDone {
		// All map tasks assigned; consider a speculative backup.
		for ti := range run.maps {
			s := &run.maps[ti]
			if speculatable(s, run.mapDurations) {
				s.backup = true
				m.logf("job %d: speculative map %d on worker %d (primary %d)",
					run.id, ti, args.WorkerID, s.worker)
				reply.Kind = TaskMap
				reply.JobID = run.id
				reply.JobName = run.job.Name
				reply.Conf = run.job.Conf
				reply.TaskID = ti
				reply.NumReduces = run.nReduce
				if run.dfsParts != nil {
					reply.DFSNameNode = run.dfsNameNode
					reply.DFSPart = run.dfsParts[ti]
				} else {
					reply.Split = run.splits[ti]
				}
				return nil
			}
		}
		reply.Kind = TaskWait
		return nil
	}
	// Reduce phase.
	locations := make([]MapLocation, len(run.maps))
	for ti := range run.maps {
		locations[ti] = MapLocation{MapTaskID: ti, WorkerAddr: run.mapAddr[ti], ShuffleAddr: run.mapShuffle[ti]}
	}
	assignReduce := func(ti int) {
		reply.Kind = TaskReduce
		reply.JobID = run.id
		reply.JobName = run.job.Name
		reply.Conf = run.job.Conf
		reply.TaskID = ti
		reply.NumReduces = run.nReduce
		reply.Maps = locations
	}
	for ti := range run.reduces {
		s := &run.reduces[ti]
		if s.status != taskDone && assignable(s) {
			s.status = taskRunning
			s.worker = args.WorkerID
			s.started = now
			assignReduce(ti)
			return nil
		}
	}
	for ti := range run.reduces {
		s := &run.reduces[ti]
		if s.status != taskDone && speculatable(s, run.reduceDurations) {
			s.backup = true
			m.logf("job %d: speculative reduce %d on worker %d (primary %d)",
				run.id, ti, args.WorkerID, s.worker)
			assignReduce(ti)
			return nil
		}
	}
	reply.Kind = TaskWait
	return nil
}

// medianDuration returns the median of a non-empty slice.
func medianDuration(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// CompleteTask records a task attempt's outcome.
func (r *masterRPC) CompleteTask(args *CompleteArgs, reply *CompleteReply) error {
	m := r.m
	m.mu.Lock()
	defer m.mu.Unlock()
	run := m.cur
	if run == nil || run.id != args.JobID || run.done {
		return nil // stale completion from a previous job or attempt
	}
	if args.Err != "" {
		m.logf("job %d task %v/%d on worker %d failed: %s",
			run.id, args.Kind, args.TaskID, args.WorkerID, args.Err)
		if len(args.FailedMaps) > 0 {
			// Shuffle fetch failure: the named map outputs are lost.
			// Re-execute them and re-queue this reduce.
			for _, mt := range args.FailedMaps {
				if mt >= 0 && mt < len(run.maps) {
					run.maps[mt] = taskSlot{}
					run.mapAddr[mt] = ""
					run.mapShuffle[mt] = ""
				}
			}
			if args.Kind == TaskReduce && args.TaskID < len(run.reduces) {
				run.reduces[args.TaskID] = taskSlot{}
			}
			m.cond.Broadcast()
			return nil
		}
		// A deterministic task error fails the job: re-running the same
		// user code on the same data would fail again.
		run.err = fmt.Errorf("rpcmr: job %q task %d: %s", run.job.Name, args.TaskID, args.Err)
		run.done = true
		m.cond.Broadcast()
		return nil
	}
	switch args.Kind {
	case TaskMap:
		s := &run.maps[args.TaskID]
		if s.status == taskDone {
			return nil // duplicate attempt; first one won
		}
		run.mapDurations = append(run.mapDurations, time.Since(s.started))
		s.status = taskDone
		if w, ok := m.workers[args.WorkerID]; ok {
			run.mapAddr[args.TaskID] = w.addr
			run.mapShuffle[args.TaskID] = w.shuffleAddr
		}
		mergeCounters(run.counters, args.Counters)
		run.spans = append(run.spans, args.Spans...)
	case TaskReduce:
		s := &run.reduces[args.TaskID]
		if s.status == taskDone {
			return nil
		}
		run.reduceDurations = append(run.reduceDurations, time.Since(s.started))
		s.status = taskDone
		run.outputs[args.TaskID] = args.Output
		mergeCounters(run.counters, args.Counters)
		run.spans = append(run.spans, args.Spans...)
	default:
		return fmt.Errorf("rpcmr: bad completion kind %v", args.Kind)
	}
	if allDone(run.reduces) && allDone(run.maps) {
		run.done = true
	}
	m.cond.Broadcast()
	return nil
}

func allDone(ss []taskSlot) bool {
	for i := range ss {
		if ss[i].status != taskDone {
			return false
		}
	}
	return true
}

func mergeCounters(dst *mapreduce.Counters, snap map[string]int64) {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dst.Add(name, snap[name])
	}
}

func dialWorker(addr string) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}
