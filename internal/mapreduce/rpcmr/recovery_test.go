package rpcmr

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

// slowOnce is a job whose map stalls past the lease on its first attempt,
// forcing the master to re-assign it.
var slowOnceStalls int64

func init() {
	RegisterJob("slow-once", func(conf mapreduce.Conf) *mapreduce.Job {
		return &mapreduce.Job{
			Name: "slow-once",
			Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
				if atomic.CompareAndSwapInt64(&slowOnceStalls, 0, 1) {
					time.Sleep(600 * time.Millisecond) // beyond the test lease
				}
				out.Emit(string(value), []byte("1"))
				return nil
			},
			Reduce: sumReduce,
		}
	})
}

func TestLeaseExpiryReassignsTask(t *testing.T) {
	m, _ := startCluster(t, 2)
	m.LeaseTimeout = 150 * time.Millisecond
	atomic.StoreInt64(&slowOnceStalls, 0)

	input := []mapreduce.Pair{{Value: []byte("a")}, {Value: []byte("b")}, {Value: []byte("c")}}
	job := &mapreduce.Job{Name: "slow-once", Map: nil, Reduce: nil}
	// Build from the registry so worker-side code matches.
	factory, err := lookupJob("slow-once")
	if err != nil {
		t.Fatal(err)
	}
	job = factory(nil)
	res, err := m.Run(context.Background(), job, input)
	if err != nil {
		t.Fatalf("job with stalled attempt: %v", err)
	}
	// Despite the duplicate attempt, each key is counted exactly once:
	// the master accepts only the first completion per task.
	got := map[string]string{}
	for _, p := range res.Output {
		got[p.Key] = string(p.Value)
	}
	for _, k := range []string{"a", "b", "c"} {
		if got[k] != "1" {
			t.Fatalf("count[%q] = %q (duplicate attempt leaked?)", k, got[k])
		}
	}
}

func TestDuplicateCompletionCountersNotDoubled(t *testing.T) {
	m, _ := startCluster(t, 3)
	m.LeaseTimeout = 150 * time.Millisecond
	atomic.StoreInt64(&slowOnceStalls, 0)

	input := make([]mapreduce.Pair, 30)
	for i := range input {
		input[i] = mapreduce.Pair{Value: []byte(fmt.Sprintf("k%d", i%5))}
	}
	factory, _ := lookupJob("slow-once")
	res, err := m.Run(context.Background(), factory(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	// Map input records counter must equal the true record count even
	// though one task ran twice.
	if got := res.Counters.Get(mapreduce.CtrMapInputRecords); got != 30 {
		t.Fatalf("map input records = %d, want 30", got)
	}
}

func TestRegisterJobPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate registration")
		}
	}()
	RegisterJob("wordcount", wordcountJob) // already registered in init
}

func TestRegisterJobsSkipsDuplicates(t *testing.T) {
	// Must not panic: RegisterJobs tolerates overlap.
	RegisterJobs(map[string]JobFactory{"wordcount": wordcountJob})
	f, err := lookupJob("wordcount")
	if err != nil || f == nil {
		t.Fatalf("lookup after overlap: %v", err)
	}
}

func TestWorkerCleanupDropsIntermediateData(t *testing.T) {
	m, ws := startCluster(t, 2)
	input := []mapreduce.Pair{{Value: []byte("x y z")}, {Value: []byte("x")}}
	if _, err := m.Run(context.Background(), wordcountJob(nil), input); err != nil {
		t.Fatal(err)
	}
	// After Run returns, the master has issued Cleanup; the stores should
	// drain shortly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		total := 0
		for _, w := range ws {
			w.mu.Lock()
			total += len(w.store)
			w.mu.Unlock()
		}
		if total == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d intermediate entries left after cleanup", total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSequentialJobsReuseCluster(t *testing.T) {
	m, _ := startCluster(t, 2)
	for i := 0; i < 5; i++ {
		input := []mapreduce.Pair{{Value: []byte(fmt.Sprintf("run%d common", i))}}
		res, err := m.Run(context.Background(), wordcountJob(nil), input)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		found := false
		for _, p := range res.Output {
			if p.Key == fmt.Sprintf("run%d", i) {
				found = true
			}
			if strings.HasPrefix(p.Key, "run") && p.Key != fmt.Sprintf("run%d", i) {
				t.Fatalf("run %d leaked key %q from a previous job", i, p.Key)
			}
		}
		if !found {
			t.Fatalf("run %d missing its own key", i)
		}
	}
}

func TestConcurrentRunRejected(t *testing.T) {
	m, _ := startCluster(t, 1)
	block := make(chan struct{})
	RegisterJob("block-until", func(conf mapreduce.Conf) *mapreduce.Job {
		return &mapreduce.Job{
			Name: "block-until",
			Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
				<-block
				out.Emit("k", []byte("1"))
				return nil
			},
			Reduce: sumReduce,
		}
	})
	factory, _ := lookupJob("block-until")
	done := make(chan error, 1)
	go func() {
		_, err := m.Run(context.Background(), factory(nil), []mapreduce.Pair{{Value: []byte("x")}})
		done <- err
	}()
	// Wait until the first job is installed, then try a second.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m.mu.Lock()
		installed := m.cur != nil
		m.mu.Unlock()
		if installed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Run(context.Background(), wordcountJob(nil), nil); err == nil || !strings.Contains(err.Error(), "already running") {
		t.Fatalf("second concurrent run: %v", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("first job: %v", err)
	}
}

// stallFirst sleeps a long time on exactly one globally-first map record,
// simulating a straggler node; backup attempts run at full speed.
var stallFirstHit int64

func init() {
	RegisterJob("stall-first", func(conf mapreduce.Conf) *mapreduce.Job {
		return &mapreduce.Job{
			Name: "stall-first",
			Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
				if string(value) == "straggle" && atomic.CompareAndSwapInt64(&stallFirstHit, 0, 1) {
					time.Sleep(3 * time.Second)
				}
				out.Emit(string(value), []byte("1"))
				return nil
			},
			Reduce: sumReduce,
		}
	})
}

func TestSpeculativeExecutionBeatsStraggler(t *testing.T) {
	m, _ := startCluster(t, 3)
	m.SpeculativeFactor = 2 // backup when a task runs 2x the median
	atomic.StoreInt64(&stallFirstHit, 0)

	// Many fast map tasks establish a small median; one straggler.
	input := []mapreduce.Pair{{Value: []byte("straggle")}}
	for i := 0; i < 20; i++ {
		input = append(input, mapreduce.Pair{Value: []byte(fmt.Sprintf("fast%d", i))})
	}
	factory, err := lookupJob("stall-first")
	if err != nil {
		t.Fatal(err)
	}
	built := factory(nil)
	built.NumMaps = 21 // one record per map task

	start := time.Now()
	res, err := m.Run(context.Background(), built, input)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Without speculation the job would take >= 3s (the stalled attempt);
	// with it, a backup attempt completes the task quickly. Leave slack
	// for slow CI machines but stay clearly under the stall.
	if elapsed >= 2500*time.Millisecond {
		t.Fatalf("job took %v; speculation did not kick in", elapsed)
	}
	got := map[string]string{}
	for _, p := range res.Output {
		got[p.Key] = string(p.Value)
	}
	if got["straggle"] != "1" {
		t.Fatalf("straggler record counted %q times", got["straggle"])
	}
	for i := 0; i < 20; i++ {
		if got[fmt.Sprintf("fast%d", i)] != "1" {
			t.Fatalf("lost record fast%d", i)
		}
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	m, _ := startCluster(t, 2)
	if m.SpeculativeFactor != 0 {
		t.Fatalf("speculation enabled by default: %v", m.SpeculativeFactor)
	}
}

func TestMasterHistory(t *testing.T) {
	m, _ := startCluster(t, 2)
	if _, err := m.Run(context.Background(), wordcountJob(nil), []mapreduce.Pair{{Value: []byte("a b")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), wordcountJob(nil), []mapreduce.Pair{{Value: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	// A failed job is recorded too.
	factory, _ := lookupJob("fail-always")
	if _, err := m.Run(context.Background(), factory(nil), []mapreduce.Pair{{Value: []byte("x")}}); err == nil {
		t.Fatal("want failure")
	}
	h := m.History()
	if len(h) != 3 {
		t.Fatalf("history has %d records, want 3", len(h))
	}
	if h[0].Name != "wordcount" || h[0].Failed || h[0].Wall <= 0 {
		t.Fatalf("record 0: %+v", h[0])
	}
	if !h[2].Failed {
		t.Fatalf("record 2 not marked failed: %+v", h[2])
	}
	if h[1].Counters[mapreduce.CtrMapInputRecords] != 1 {
		t.Fatalf("record 1 counters: %v", h[1].Counters)
	}
}
