package rpcmr

import (
	"context"
	"testing"

	"repro/internal/dfs"
	"repro/internal/dfsio"
	"repro/internal/mapreduce"
)

func startDFS(t *testing.T, nodes int) (*dfs.NameNode, *dfs.Client) {
	t.Helper()
	nn, err := dfs.NewNameNode("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nn.Close() })
	for i := 0; i < nodes; i++ {
		dn, err := dfs.StartDataNode(nn.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dn.Close() })
	}
	c, err := dfs.NewClient(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return nn, c
}

func TestRunDFSMatchesInlineInput(t *testing.T) {
	m, _ := startCluster(t, 3)
	nn, fsc := startDFS(t, 2)

	input := make([]mapreduce.Pair, 0, 120)
	for i := 0; i < 120; i++ {
		input = append(input, mapreduce.Pair{Value: []byte("alpha beta gamma alpha")})
	}
	if err := dfsio.SavePairs(fsc, "jobs/in", input, 5); err != nil {
		t.Fatal(err)
	}

	inline, err := m.Run(context.Background(), wordcountJob(nil), input)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := m.RunDFS(context.Background(), wordcountJob(nil), nn.Addr(), "jobs/in")
	if err != nil {
		t.Fatal(err)
	}
	toMap := func(ps []mapreduce.Pair) map[string]string {
		out := map[string]string{}
		for _, p := range ps {
			out[p.Key] = string(p.Value)
		}
		return out
	}
	a, b := toMap(inline.Output), toMap(staged.Output)
	if len(a) != len(b) {
		t.Fatalf("inline %d keys, staged %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("key %q: inline %q, staged %q", k, v, b[k])
		}
	}
	if got := staged.Counters.Get(mapreduce.CtrMapInputRecords); got != 120 {
		t.Fatalf("staged map input records = %d", got)
	}
}

func TestRunDFSMapTaskPerPart(t *testing.T) {
	m, _ := startCluster(t, 2)
	nn, fsc := startDFS(t, 2)
	input := make([]mapreduce.Pair, 40)
	for i := range input {
		input[i] = mapreduce.Pair{Value: []byte("w")}
	}
	if err := dfsio.SavePairs(fsc, "parts/in", input, 7); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunDFS(context.Background(), wordcountJob(nil), nn.Addr(), "parts/in")
	if err != nil {
		t.Fatal(err)
	}
	// One map task per part: the map-input counter counts records, but the
	// number of splits shows up as the per-part word totals summing to 40.
	if got := res.Counters.Get(mapreduce.CtrMapInputRecords); got != 40 {
		t.Fatalf("map input = %d", got)
	}
	if len(res.Output) != 1 || string(res.Output[0].Value) != "40" {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestRunDFSMissingPrefix(t *testing.T) {
	m, _ := startCluster(t, 1)
	nn, _ := startDFS(t, 1)
	if _, err := m.RunDFS(context.Background(), wordcountJob(nil), nn.Addr(), "no/such/input"); err == nil {
		t.Fatal("want error for missing DFS input")
	}
}
