package mapreduce

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The record frame shared by the spill run files and the rpcmr streaming
// shuffle transport. One frame is
//
//	uint32 keyLen | key bytes | uint32 valueLen | value bytes
//
// in little-endian. Keeping a single codec means bytes written by a map
// task's spill path and bytes crossing the wire in a shuffle fetch are the
// same layout, so wire-level accounting and disk accounting agree.

// FrameOverhead is the fixed framing cost per record: the two uint32
// length prefixes.
const FrameOverhead = 8

// FrameBytes returns the framed size of one pair.
func FrameBytes(p Pair) int64 { return FrameOverhead + pairBytes(p) }

// AppendFrame appends the frame encoding of p to buf and returns the
// extended slice. It is the allocation-free building block chunked
// transports use to pack records into a bounded buffer.
func AppendFrame(buf []byte, p Pair) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p.Key)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, p.Key...)
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p.Value)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, p.Value...)
	return buf
}

// DecodeFrames parses every complete frame in buf, appending the decoded
// pairs to dst. Values are sub-sliced from buf without copying — the
// caller must hand over ownership of buf (the returned pairs alias it).
// Keys are materialized as strings. A truncated trailing frame is an
// error: chunk producers only emit whole frames.
func DecodeFrames(dst []Pair, buf []byte) ([]Pair, error) {
	for off := 0; off < len(buf); {
		if off+4 > len(buf) {
			return dst, fmt.Errorf("mapreduce: truncated frame header at offset %d", off)
		}
		keyLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if keyLen < 0 || off+keyLen+4 > len(buf) {
			return dst, fmt.Errorf("mapreduce: truncated frame key at offset %d", off)
		}
		key := string(buf[off : off+keyLen])
		off += keyLen
		valLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if valLen < 0 || off+valLen > len(buf) {
			return dst, fmt.Errorf("mapreduce: truncated frame value at offset %d", off)
		}
		var val []byte
		if valLen > 0 {
			val = buf[off : off+valLen : off+valLen]
		}
		off += valLen
		dst = append(dst, Pair{Key: key, Value: val})
	}
	return dst, nil
}

// FrameWriter frames pairs onto a stream through an internal buffer.
type FrameWriter struct {
	w *bufio.Writer
	n int64
}

// NewFrameWriter wraps w. Call Flush before relying on the bytes having
// reached w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriterSize(w, 1<<16)
	}
	return &FrameWriter{w: bw}
}

// WritePair frames one pair.
func (fw *FrameWriter) WritePair(p Pair) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p.Key)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.WriteString(p.Key); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p.Value)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(p.Value); err != nil {
		return err
	}
	fw.n += FrameBytes(p)
	return nil
}

// Bytes returns the framed bytes written so far.
func (fw *FrameWriter) Bytes() int64 { return fw.n }

// Flush drains the internal buffer to the underlying writer.
func (fw *FrameWriter) Flush() error { return fw.w.Flush() }

// FrameReader decodes frames from a stream. Key bytes land in a grow-only
// scratch buffer reused across records (the key becomes a string anyway);
// each value is copied into a fresh slice because callers retain values.
type FrameReader struct {
	r   *bufio.Reader
	key []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &FrameReader{r: br}
}

// Next returns the next pair; ok=false on a clean EOF at a frame
// boundary. EOF inside a frame is an error.
func (fr *FrameReader) Next() (Pair, bool, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Pair{}, false, nil
		}
		return Pair{}, false, fmt.Errorf("mapreduce: truncated frame header: %w", err)
	}
	keyLen := int(binary.LittleEndian.Uint32(hdr[:]))
	if cap(fr.key) < keyLen {
		fr.key = make([]byte, keyLen+keyLen/4)
	}
	keyBuf := fr.key[:keyLen]
	if _, err := io.ReadFull(fr.r, keyBuf); err != nil {
		return Pair{}, false, fmt.Errorf("mapreduce: truncated frame key: %w", err)
	}
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return Pair{}, false, fmt.Errorf("mapreduce: truncated frame value length: %w", err)
	}
	valLen := int(binary.LittleEndian.Uint32(hdr[:]))
	var val []byte
	if valLen > 0 {
		val = make([]byte, valLen)
		if _, err := io.ReadFull(fr.r, val); err != nil {
			return Pair{}, false, fmt.Errorf("mapreduce: truncated frame value: %w", err)
		}
	}
	return Pair{Key: string(keyBuf), Value: val}, true, nil
}
