package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func sumReduce(_ *TaskContext, key string, values [][]byte, out Emitter) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		total += n
	}
	out.Emit(key, []byte(strconv.Itoa(total)))
	return nil
}

func wordcount() *Job {
	return &Job{
		Name: "wordcount",
		Map: func(_ *TaskContext, _ string, value []byte, out Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				out.Emit(w, []byte("1"))
			}
			return nil
		},
		Combine: sumReduce,
		Reduce:  sumReduce,
	}
}

func lines(ss ...string) []Pair {
	ps := make([]Pair, len(ss))
	for i, s := range ss {
		ps[i] = Pair{Value: []byte(s)}
	}
	return ps
}

func outputMap(ps []Pair) map[string]string {
	m := make(map[string]string, len(ps))
	for _, p := range ps {
		m[p.Key] = string(p.Value)
	}
	return m
}

func TestWordcount(t *testing.T) {
	eng := &LocalEngine{Parallelism: 4}
	res, err := eng.Run(context.Background(), wordcount(), lines("a b a", "b c", "a"))
	if err != nil {
		t.Fatal(err)
	}
	got := outputMap(res.Output)
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %q, want %q (all: %v)", k, got[k], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("extra keys: %v", got)
	}
}

func TestCountersAccounting(t *testing.T) {
	eng := &LocalEngine{Parallelism: 2}
	res, err := eng.Run(context.Background(), wordcount(), lines("x x x x", "y y"))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if got := c.Get(CtrMapInputRecords); got != 2 {
		t.Fatalf("map input = %d", got)
	}
	if got := c.Get(CtrMapOutputRecords); got != 6 {
		t.Fatalf("map output = %d", got)
	}
	// Combiner collapses per task: with 2 tasks of one line each, shuffle
	// records = 2 (one "x" total, one "y" total).
	if got := c.Get(CtrShuffleRecords); got != 2 {
		t.Fatalf("shuffle records = %d", got)
	}
	if got := c.Get(CtrReduceInputGroups); got != 2 {
		t.Fatalf("reduce groups = %d", got)
	}
	if got := c.Get(CtrReduceOutputRecords); got != 2 {
		t.Fatalf("reduce output = %d", got)
	}
	// Shuffle bytes: keys "x","y" + values "4","2" = 4 bytes total.
	if got := c.Get(CtrShuffleBytes); got != 4 {
		t.Fatalf("shuffle bytes = %d", got)
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	input := lines("w w w w w w w w", "w w w w")
	with := wordcount()
	eng := &LocalEngine{Parallelism: 2}
	resWith, err := eng.Run(context.Background(), with, input)
	if err != nil {
		t.Fatal(err)
	}
	without := wordcount()
	without.Combine = nil
	resWithout, err := eng.Run(context.Background(), without, input)
	if err != nil {
		t.Fatal(err)
	}
	if outputMap(resWith.Output)["w"] != "12" || outputMap(resWithout.Output)["w"] != "12" {
		t.Fatal("combiner changed the result")
	}
	if resWith.Counters.Get(CtrShuffleRecords) >= resWithout.Counters.Get(CtrShuffleRecords) {
		t.Fatalf("combiner did not reduce shuffle records: %d vs %d",
			resWith.Counters.Get(CtrShuffleRecords), resWithout.Counters.Get(CtrShuffleRecords))
	}
}

func TestMapOnlyJob(t *testing.T) {
	job := &Job{
		Name: "map-only",
		Map: func(_ *TaskContext, _ string, value []byte, out Emitter) error {
			out.Emit(strings.ToUpper(string(value)), value)
			return nil
		},
	}
	eng := &LocalEngine{Parallelism: 3}
	res, err := eng.Run(context.Background(), job, lines("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 3 {
		t.Fatalf("map-only output = %v", res.Output)
	}
	if res.Counters.Get(CtrReduceInputGroups) != 0 {
		t.Fatal("map-only job ran reducers")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	job := &Job{
		Name: "boom",
		Map: func(_ *TaskContext, _ string, value []byte, _ Emitter) error {
			if string(value) == "bad" {
				return fmt.Errorf("poisoned record")
			}
			return nil
		},
		Reduce: sumReduce,
	}
	eng := &LocalEngine{Parallelism: 2}
	_, err := eng.Run(context.Background(), job, lines("ok", "bad", "ok"))
	if err == nil || !strings.Contains(err.Error(), "poisoned record") {
		t.Fatalf("want poisoned record error, got %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	job := wordcount()
	job.Combine = nil
	job.Reduce = func(_ *TaskContext, key string, _ [][]byte, _ Emitter) error {
		if key == "b" {
			return fmt.Errorf("reduce exploded")
		}
		return nil
	}
	eng := &LocalEngine{}
	_, err := eng.Run(context.Background(), job, lines("a b c"))
	if err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("want reduce error, got %v", err)
	}
}

func TestJobValidation(t *testing.T) {
	eng := &LocalEngine{}
	if _, err := eng.Run(context.Background(), &Job{Name: "no-map"}, nil); err == nil {
		t.Fatal("want error for missing map")
	}
	if _, err := eng.Run(context.Background(), &Job{Map: wordcount().Map}, nil); err == nil {
		t.Fatal("want error for missing name")
	}
	if _, err := eng.Run(context.Background(), &Job{
		Name:    "combine-no-reduce",
		Map:     wordcount().Map,
		Combine: sumReduce,
	}, nil); err == nil {
		t.Fatal("want error for combiner without reducer")
	}
}

func TestEmptyInput(t *testing.T) {
	eng := &LocalEngine{}
	res, err := eng.Run(context.Background(), wordcount(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Fatalf("empty input produced %v", res.Output)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	input := lines("z a m", "b z q", "a a z")
	eng := &LocalEngine{Parallelism: 4}
	first, err := eng.Run(context.Background(), wordcount(), input)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := eng.Run(context.Background(), wordcount(), input)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != len(first.Output) {
			t.Fatal("output length changed across runs")
		}
		for j := range res.Output {
			if res.Output[j].Key != first.Output[j].Key ||
				string(res.Output[j].Value) != string(first.Output[j].Value) {
				t.Fatalf("run %d output differs at %d", i, j)
			}
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	// Route everything to partition 0 and verify single-partition grouping
	// still sees all values.
	job := wordcount()
	job.Partition = func(string, int) int { return 0 }
	job.NumReduces = 4
	eng := &LocalEngine{Parallelism: 4}
	res, err := eng.Run(context.Background(), job, lines("k k k"))
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(res.Output)["k"]; got != "3" {
		t.Fatalf("count = %q", got)
	}
}

func TestHashPartitionRange(t *testing.T) {
	for _, key := range []string{"", "a", "abc", "0|12.-4.9", strings.Repeat("x", 100)} {
		for _, n := range []int{1, 2, 7, 64} {
			p := HashPartition(key, n)
			if p < 0 || p >= n {
				t.Fatalf("HashPartition(%q, %d) = %d", key, n, p)
			}
		}
	}
}

func TestSplitInput(t *testing.T) {
	input := make([]Pair, 10)
	splits := splitInput(input, 3)
	if len(splits) != 3 {
		t.Fatalf("got %d splits", len(splits))
	}
	total := 0
	for _, s := range splits {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("splits cover %d records", total)
	}
	if len(splitInput(input, 20)) != 10 {
		t.Fatal("more splits than records")
	}
	if got := splitInput(nil, 5); len(got) != 1 || got[0] != nil {
		t.Fatalf("empty split = %v", got)
	}
}

// Property: for random inputs, the engine computes the same word counts as
// a direct sequential fold, for any parallelism and reduce count.
func TestEngineMatchesSequentialFold(t *testing.T) {
	f := func(words []uint8, parallelism uint8, reduces uint8) bool {
		var input []Pair
		expect := map[string]int{}
		var line []string
		for i, w := range words {
			word := fmt.Sprintf("w%d", w%17)
			expect[word]++
			line = append(line, word)
			if i%5 == 4 {
				input = append(input, Pair{Value: []byte(strings.Join(line, " "))})
				line = nil
			}
		}
		if len(line) > 0 {
			input = append(input, Pair{Value: []byte(strings.Join(line, " "))})
		}
		job := wordcount()
		job.NumReduces = int(reduces%8) + 1
		eng := &LocalEngine{Parallelism: int(parallelism%8) + 1}
		res, err := eng.Run(context.Background(), job, input)
		if err != nil {
			return false
		}
		got := outputMap(res.Output)
		if len(got) != len(expect) {
			return false
		}
		for k, v := range expect {
			if got[k] != strconv.Itoa(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
