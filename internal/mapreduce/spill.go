package mapreduce

import (
	"container/heap"
	"fmt"
	"os"
)

// Spill-to-disk support. When a map task's buffered intermediate data
// exceeds the engine's spill threshold, each partition buffer is sorted
// (and combined, when a combiner is configured), then written as a sorted
// run file. Reduce tasks merge the run files with the remaining in-memory
// buffer using a k-way heap merge, so a job's intermediate data never has
// to fit in memory — the same external-sort discipline Hadoop uses.
//
// Run files are a plain sequence of record frames (see frame.go), sorted
// by key — the same layout the rpcmr shuffle transport streams.

// writeRun writes sorted pairs to a new run file at path.
func writeRun(path string, ps []Pair) (bytes int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	fw := NewFrameWriter(f)
	for _, p := range ps {
		if err := fw.WritePair(p); err != nil {
			return 0, err
		}
	}
	return fw.Bytes(), fw.Flush()
}

// pairIterator yields key-ordered pairs from some source.
type pairIterator interface {
	// next returns the next pair; ok=false at end of stream.
	next() (p Pair, ok bool, err error)
	// close releases resources.
	close() error
}

// sliceIterator iterates an already-sorted in-memory slice.
type sliceIterator struct {
	ps []Pair
	i  int
}

func (it *sliceIterator) next() (Pair, bool, error) {
	if it.i >= len(it.ps) {
		return Pair{}, false, nil
	}
	p := it.ps[it.i]
	it.i++
	return p, true, nil
}

func (it *sliceIterator) close() error { return nil }

// runIterator streams a run file through a FrameReader, whose grow-only
// key buffer spares the per-record key-slice allocation (keys become
// strings anyway; only the string and the retained value allocate).
type runIterator struct {
	f  *os.File
	fr *FrameReader
}

func openRun(path string) (*runIterator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &runIterator{f: f, fr: NewFrameReader(f)}, nil
}

func (it *runIterator) next() (Pair, bool, error) {
	p, ok, err := it.fr.Next()
	if err != nil {
		return Pair{}, false, fmt.Errorf("mapreduce: corrupt run file %s: %w", it.f.Name(), err)
	}
	return p, ok, nil
}

func (it *runIterator) close() error { return it.f.Close() }

// mergeHeap orders iterator heads by key. Ties break by source index so the
// merge is deterministic.
type mergeHead struct {
	pair Pair
	src  int
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].pair.Key != h[j].pair.Key {
		return h[i].pair.Key < h[j].pair.Key
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeGroups performs a k-way merge over sorted iterators and invokes fn
// once per distinct key with all its values, in key order.
func mergeGroups(its []pairIterator, fn func(key string, values [][]byte) error) error {
	defer func() {
		for _, it := range its {
			it.close()
		}
	}()
	h := make(mergeHeap, 0, len(its))
	for i, it := range its {
		p, ok, err := it.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, mergeHead{pair: p, src: i})
		}
	}
	heap.Init(&h)
	var (
		curKey  string
		curVals [][]byte
		have    bool
	)
	flush := func() error {
		if !have {
			return nil
		}
		err := fn(curKey, curVals)
		curVals = nil
		have = false
		return err
	}
	for h.Len() > 0 {
		head := h[0]
		if have && head.pair.Key != curKey {
			if err := flush(); err != nil {
				return err
			}
		}
		if !have {
			curKey = head.pair.Key
			have = true
		}
		curVals = append(curVals, head.pair.Value)
		p, ok, err := its[head.src].next()
		if err != nil {
			return err
		}
		if ok {
			h[0] = mergeHead{pair: p, src: head.src}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return flush()
}
