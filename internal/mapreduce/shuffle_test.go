package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// refStableSort is the reference the shuffle sort must reproduce exactly:
// stable order by key, emission order preserved within a key.
func refStableSort(ps []Pair) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
}

// genPairs builds n pairs whose keys are drawn from a pool of distinct
// values, so duplicate keys are common, and whose values record the
// emission index — the witness for stability checks.
func genPairs(rng *rand.Rand, n, distinct int) []Pair {
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{
			Key:   fmt.Sprintf("k%04d", rng.Intn(distinct)),
			Value: []byte(fmt.Sprintf("v%d", i)),
		}
	}
	return ps
}

// TestSortPairsMatchesSliceStable is the property test for the hand-rolled
// merge sort: across sizes that straddle the insertion cutoff, power-of-two
// merge boundaries, and heavy key duplication, the result must match
// sort.SliceStable record for record (keys and the stability witness).
func TestSortPairsMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, insertionCutoff - 1, insertionCutoff,
		insertionCutoff + 1, 2*insertionCutoff - 1, 2 * insertionCutoff,
		95, 96, 97, 255, 256, 257, 1000, 4096}
	for _, n := range sizes {
		for _, distinct := range []int{1, 3, 50, 10000} {
			ps := genPairs(rng, n, distinct)
			want := append([]Pair(nil), ps...)
			refStableSort(want)

			got := append([]Pair(nil), ps...)
			sortPairs(got)
			for i := range want {
				if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
					t.Fatalf("n=%d distinct=%d: record %d = {%q %q}, want {%q %q}",
						n, distinct, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
				}
			}
		}
	}
}

// TestSortPairsScratchReuse checks the scratch-buffer contract: the returned
// buffer is reusable across calls of different sizes and never corrupts the
// sorted output.
func TestSortPairsScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch []Pair
	for _, n := range []int{500, 10, 2000, 0, 1999} {
		ps := genPairs(rng, n, 17)
		want := append([]Pair(nil), ps...)
		refStableSort(want)
		scratch = sortPairsScratch(ps, scratch)
		for i := range want {
			if ps[i].Key != want[i].Key || string(ps[i].Value) != string(want[i].Value) {
				t.Fatalf("n=%d: record %d diverged after scratch reuse", n, i)
			}
		}
	}
}

// TestSortPairsAllocFree verifies the shuffle sort allocates nothing once a
// scratch buffer is warm — the point of replacing sort.SliceStable.
func TestSortPairsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := genPairs(rng, 2048, 31)
	work := make([]Pair, len(ps))
	scratch := make([]Pair, len(ps))
	allocs := testing.AllocsPerRun(10, func() {
		copy(work, ps)
		scratch = sortPairsScratch(work, scratch)
	})
	if allocs != 0 {
		t.Fatalf("sortPairsScratch with warm scratch: %v allocs/op, want 0", allocs)
	}
}

// TestRunParallelStopsDispatchAfterError: once a task fails, runParallel
// must stop feeding the queue. With 2 workers and a failure on the first
// task, far fewer than n tasks may run — bounded by the tasks already in
// flight when the failure lands, not by the queue length.
func TestRunParallelStopsDispatchAfterError(t *testing.T) {
	const n = 1000
	var started atomic.Int64
	err := runParallel(n, 2, func(i int) error {
		started.Add(1)
		if i == 0 {
			return fmt.Errorf("task %d boom", i)
		}
		// Give the failing task time to close the gate so the count below
		// reflects dispatch behaviour, not scheduling luck.
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil || err.Error() != "task 0 boom" {
		t.Fatalf("err = %v, want task 0 boom", err)
	}
	if got := started.Load(); got > n/2 {
		t.Fatalf("%d of %d tasks started after early failure; dispatch did not stop", got, n)
	}
}

// TestRunParallelFirstErrorWins: the error returned is the first one
// recorded, and every dispatched task still completes before return.
func TestRunParallelAllTasksRunWithoutError(t *testing.T) {
	const n = 100
	var ran atomic.Int64
	if err := runParallel(n, 4, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
}

// BenchmarkSortPairs compares the shuffle's pair sort against the
// reflect-based sort.SliceStable it replaced, on a shuffle-shaped workload
// (short string keys with duplicates, small byte values).
func BenchmarkSortPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := genPairs(rng, 8192, 997)
	work := make([]Pair, len(base))

	b.Run("merge", func(b *testing.B) {
		var scratch []Pair
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, base)
			scratch = sortPairsScratch(work, scratch)
		}
	})
	b.Run("slicestable", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, base)
			refStableSort(work)
		}
	})
}
