package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Runner is the single surface algorithm packages program against: run a
// job, then read back per-job stats, traces, and counter totals. Both the
// local Driver and the distributed rpcmr.Master implement it, so a
// pipeline written once runs unmodified in-process or on a cluster.
type Runner interface {
	Engine
	// Jobs returns stats for every executed job, in execution order.
	Jobs() []JobStats
	// Traces returns the structured trace of every executed job.
	Traces() []obs.JobTrace
	// TotalCounter returns the named counter summed over all jobs.
	TotalCounter(name string) int64
	// TotalWall returns the summed wall time of all executed jobs.
	TotalWall() time.Duration
}

// Driver chains MapReduce jobs: each stage's output pairs become the next
// stage's input, the way a Hadoop driver program strings jobs together on
// the master node. It accumulates per-job and total statistics, which the
// experiment harness reads to report the paper's runtime / shuffle-bytes /
// distance-count metrics. It is safe for concurrent Run calls: the DAG
// scheduler overlaps independent jobs on one driver.
type Driver struct {
	Engine Engine
	// Log, when non-nil, receives one line per completed job.
	Log func(format string, args ...any)
	// Trace, when non-nil, additionally receives every job's trace —
	// the hook CLI -trace flags use to stream a whole pipeline's spans
	// into one JSONL file.
	Trace *obs.Trace

	mu     sync.Mutex
	jobs   []JobStats
	traces []obs.JobTrace
	total  Counters
}

var _ Runner = (*Driver)(nil)

// JobStats records one executed job.
type JobStats struct {
	Name     string
	Wall     time.Duration
	Counters map[string]int64
	Records  int // output records
}

// NewDriver returns a driver bound to an engine.
func NewDriver(engine Engine) *Driver {
	return &Driver{Engine: engine, total: *NewCounters()}
}

// MaxConcurrentJobs reports how many jobs the underlying engine accepts at
// once: the engine's own answer when it declares one, otherwise 1 — the
// safe default for engines (like the rpcmr master) that serialize jobs.
func (d *Driver) MaxConcurrentJobs() int {
	if jc, ok := d.Engine.(JobConcurrency); ok {
		if n := jc.MaxConcurrentJobs(); n > 0 {
			return n
		}
	}
	return 1
}

// Run executes one job and records its stats and trace.
func (d *Driver) Run(ctx context.Context, job *Job, input []Pair) (*Result, error) {
	res, err := d.Engine.Run(ctx, job, input)
	return d.record(job, res, err)
}

// RunDFS runs a job whose input is staged in the mini-DFS, forwarding to
// the underlying engine's DFS capability (rpcmr.Master) and recording
// stats and trace exactly like Run. Engines without DFS support error.
func (d *Driver) RunDFS(ctx context.Context, job *Job, nameNodeAddr, inputPrefix string) (*Result, error) {
	dr, ok := d.Engine.(DFSRunner)
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: engine %T cannot read DFS input", job.Name, d.Engine)
	}
	res, err := dr.RunDFS(ctx, job, nameNodeAddr, inputPrefix)
	return d.record(job, res, err)
}

// record folds one engine result into the driver's stats and traces.
func (d *Driver) record(job *Job, res *Result, err error) (*Result, error) {
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	snap := res.Counters.Snapshot()

	d.mu.Lock()
	d.jobs = append(d.jobs, JobStats{
		Name:     job.Name,
		Wall:     res.Wall,
		Counters: snap,
		Records:  len(res.Output),
	})
	d.total.Merge(res.Counters)
	trace := res.Trace
	if trace == nil {
		// Engines without span support still yield a countable trace.
		trace = &obs.JobTrace{Job: job.Name, Wall: res.Wall, Counters: snap}
	}
	if trace.ID == 0 {
		trace.ID = len(d.jobs)
	}
	// The local engine leaves span job IDs unset; stamp them so JSONL
	// span lines attribute to the same id as their job line.
	for i := range trace.Spans {
		if trace.Spans[i].JobID == 0 {
			trace.Spans[i].JobID = trace.ID
		}
	}
	d.traces = append(d.traces, *trace)
	d.mu.Unlock()

	if d.Trace != nil {
		d.Trace.Add(*trace)
	}
	if d.Log != nil {
		d.Log("job %-24s %8.3fs  out=%d shuffleB=%d dist=%d",
			job.Name, res.Wall.Seconds(), len(res.Output),
			res.Counters.Get(CtrShuffleBytes), res.Counters.Get(CtrDistanceComputations))
	}
	return res, nil
}

// Jobs returns stats for every executed job, in execution order.
func (d *Driver) Jobs() []JobStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]JobStats(nil), d.jobs...)
}

// Traces returns the trace of every executed job, in execution order.
func (d *Driver) Traces() []obs.JobTrace {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]obs.JobTrace(nil), d.traces...)
}

// TotalCounter returns the sum of the named counter over all executed jobs.
func (d *Driver) TotalCounter(name string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total.Get(name)
}

// TotalWall returns the summed wall time of all executed jobs.
func (d *Driver) TotalWall() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	var t time.Duration
	for _, j := range d.jobs {
		t += j.Wall
	}
	return t
}
