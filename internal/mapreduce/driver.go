package mapreduce

import (
	"fmt"
	"time"
)

// Driver chains MapReduce jobs: each stage's output pairs become the next
// stage's input, the way a Hadoop driver program strings jobs together on
// the master node. It accumulates per-job and total statistics, which the
// experiment harness reads to report the paper's runtime / shuffle-bytes /
// distance-count metrics.
type Driver struct {
	Engine Engine
	// Log, when non-nil, receives one line per completed job.
	Log func(format string, args ...interface{})

	jobs  []JobStats
	total Counters
}

// JobStats records one executed job.
type JobStats struct {
	Name     string
	Wall     time.Duration
	Counters map[string]int64
	Records  int // output records
}

// NewDriver returns a driver bound to an engine.
func NewDriver(engine Engine) *Driver {
	return &Driver{Engine: engine, total: *NewCounters()}
}

// Run executes one job, records its stats, and returns its output.
func (d *Driver) Run(job *Job, input []Pair) ([]Pair, error) {
	res, err := d.Engine.Run(job, input)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	d.jobs = append(d.jobs, JobStats{
		Name:     job.Name,
		Wall:     res.Wall,
		Counters: res.Counters.Snapshot(),
		Records:  len(res.Output),
	})
	d.total.Merge(res.Counters)
	if d.Log != nil {
		d.Log("job %-24s %8.3fs  out=%d shuffleB=%d dist=%d",
			job.Name, res.Wall.Seconds(), len(res.Output),
			res.Counters.Get(CtrShuffleBytes), res.Counters.Get(CtrDistanceComputations))
	}
	return res.Output, nil
}

// Jobs returns stats for every executed job, in execution order.
func (d *Driver) Jobs() []JobStats { return d.jobs }

// TotalCounter returns the sum of the named counter over all executed jobs.
func (d *Driver) TotalCounter(name string) int64 { return d.total.Get(name) }

// TotalWall returns the summed wall time of all executed jobs.
func (d *Driver) TotalWall() time.Duration {
	var t time.Duration
	for _, j := range d.jobs {
		t += j.Wall
	}
	return t
}
