package mapreduce

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
)

func TestRunFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ps := []Pair{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: nil},
		{Key: "b", Value: []byte("payload with spaces")},
		{Key: "z", Value: make([]byte, 1000)},
	}
	path := filepath.Join(dir, "r.run")
	n, err := writeRun(path, ps)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("writeRun bytes = %d", n)
	}
	it, err := openRun(path)
	if err != nil {
		t.Fatal(err)
	}
	defer it.close()
	for i, want := range ps {
		got, ok, err := it.next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if got.Key != want.Key || string(got.Value) != string(want.Value) {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok, err := it.next(); ok || err != nil {
		t.Fatalf("want clean EOF, got ok=%v err=%v", ok, err)
	}
}

func TestCorruptRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.run")
	if _, err := writeRun(path, []Pair{{Key: "abc", Value: []byte("xyz")}}); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record.
	trunc := filepath.Join(dir, "t.run")
	data := readFile(t, path)
	writeFile(t, trunc, data[:len(data)-2])
	it, err := openRun(trunc)
	if err != nil {
		t.Fatal(err)
	}
	defer it.close()
	if _, _, err := it.next(); err == nil {
		t.Fatal("want error on truncated run")
	}
}

func TestMergeGroupsOrdersAndGroups(t *testing.T) {
	its := []pairIterator{
		&sliceIterator{ps: []Pair{{Key: "a", Value: []byte("1")}, {Key: "c", Value: []byte("2")}}},
		&sliceIterator{ps: []Pair{{Key: "a", Value: []byte("3")}, {Key: "b", Value: []byte("4")}}},
		&sliceIterator{ps: nil},
	}
	var keys []string
	var sizes []int
	err := mergeGroups(its, func(key string, values [][]byte) error {
		keys = append(keys, key)
		sizes = append(sizes, len(values))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[a b c]" || fmt.Sprint(sizes) != "[2 1 1]" {
		t.Fatalf("keys=%v sizes=%v", keys, sizes)
	}
}

// Property: a spilling engine produces the same grouped result as the
// in-memory engine for arbitrary record streams.
func TestSpillEquivalenceProperty(t *testing.T) {
	job := func() *Job {
		return &Job{
			Name: "group-count",
			Map: func(_ *TaskContext, _ string, value []byte, out Emitter) error {
				out.Emit(string(value[:1]), value[1:])
				return nil
			},
			Reduce: func(_ *TaskContext, key string, values [][]byte, out Emitter) error {
				total := 0
				for _, v := range values {
					total += len(v)
				}
				out.Emit(key, []byte(strconv.Itoa(total)))
				return nil
			},
		}
	}
	f := func(recs [][]byte) bool {
		var input []Pair
		for _, r := range recs {
			if len(r) == 0 {
				continue
			}
			input = append(input, Pair{Value: r})
		}
		mem := &LocalEngine{Parallelism: 3}
		spill := &LocalEngine{Parallelism: 3, SpillThresholdBytes: 16}
		a, err := mem.Run(context.Background(), job(), input)
		if err != nil {
			return false
		}
		b, err := spill.Run(context.Background(), job(), input)
		if err != nil {
			return false
		}
		return samePairs(a.Output, b.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpillActuallySpills(t *testing.T) {
	eng := &LocalEngine{Parallelism: 2, SpillThresholdBytes: 64}
	input := make([]Pair, 200)
	for i := range input {
		input[i] = Pair{Value: []byte(fmt.Sprintf("k%d payload-%d", i%5, i))}
	}
	job := &Job{
		Name: "spiller",
		Map: func(_ *TaskContext, _ string, value []byte, out Emitter) error {
			out.Emit(string(value[:2]), value)
			return nil
		},
		Reduce: func(_ *TaskContext, key string, values [][]byte, out Emitter) error {
			out.Emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
	res, err := eng.Run(context.Background(), job, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(CtrSpilledRuns) == 0 {
		t.Fatal("no spills happened despite tiny threshold")
	}
	total := 0
	for _, p := range res.Output {
		n, _ := strconv.Atoi(string(p.Value))
		total += n
	}
	if total != 200 {
		t.Fatalf("records after spill = %d, want 200", total)
	}
}

// BenchmarkRunIteratorNext measures the per-record decode cost of
// streaming a run file back — the hot loop of every spilling reduce and,
// since the frame layout is shared, of the rpcmr shuffle transport.
// With a fresh key slice per record this sat at 4 allocs/op and 112 B/op;
// the grow-only key buffer in FrameReader drops it to 3 allocs/op and
// 96 B/op — only the key string conversion and the retained value (plus
// amortized buffer growth) allocate.
func BenchmarkRunIteratorNext(b *testing.B) {
	dir := b.TempDir()
	ps := make([]Pair, 4096)
	for i := range ps {
		ps[i] = Pair{
			Key:   fmt.Sprintf("key-%08d", i),
			Value: []byte(fmt.Sprintf("value-payload-%08d-%032d", i, i)),
		}
	}
	path := filepath.Join(dir, "bench.run")
	if _, err := writeRun(path, ps); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	it, err := openRun(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p, ok, err := it.next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			it.close()
			if it, err = openRun(path); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if len(p.Key) == 0 {
			b.Fatal("empty key")
		}
	}
	it.close()
}

func samePairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p Pair) string { return p.Key + "\x00" + string(p.Value) }
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := osReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := osWriteFile(path, data); err != nil {
		t.Fatal(err)
	}
}
