package dag_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
)

// upperJob maps values to upper case; name parameterizes code identity.
func upperJob(name string) *mapreduce.Job {
	return &mapreduce.Job{
		Name: name,
		Map: func(_ *mapreduce.TaskContext, key string, value []byte, out mapreduce.Emitter) error {
			out.Emit(key, []byte(strings.ToUpper(string(value))))
			return nil
		},
		Reduce: func(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			for _, v := range values {
				out.Emit(key, v)
			}
			return nil
		},
	}
}

// slowJob sleeps per record so node overlap is observable.
func slowJob(name string, d time.Duration) *mapreduce.Job {
	return &mapreduce.Job{
		Name:    name,
		NumMaps: 1,
		Map: func(_ *mapreduce.TaskContext, key string, value []byte, out mapreduce.Emitter) error {
			time.Sleep(d)
			out.Emit(key, value)
			return nil
		},
	}
}

func pairsOf(kv ...string) []mapreduce.Pair {
	ps := make([]mapreduce.Pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		ps = append(ps, mapreduce.Pair{Key: kv[i], Value: []byte(kv[i+1])})
	}
	return ps
}

func newSession(t *testing.T, opt dag.Options) *dag.Session {
	t.Helper()
	drv := mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 4})
	return dag.NewSession(drv, opt)
}

func TestChainMatchesHandSequenced(t *testing.T) {
	input := pairsOf("a", "x", "b", "y", "c", "z")

	// Hand-sequenced reference.
	drv := mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 4})
	r1, err := drv.Run(context.Background(), upperJob("up1").WithReduces(3), input)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := drv.Run(context.Background(), upperJob("up2").WithReduces(3), r1.Output)
	if err != nil {
		t.Fatal(err)
	}

	// Same pipeline through the DAG.
	s := newSession(t, dag.Options{})
	g := dag.NewGraph("chain")
	src := g.Source("in", input)
	mid := g.Job(upperJob("up1").WithReduces(3), src)
	final := g.Job(upperJob("up2").WithReduces(3), mid)
	outs, err := s.Run(context.Background(), g, final)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("want 1 output, got %d", len(outs))
	}
	if fmt.Sprint(outs[0]) != fmt.Sprint(r2.Output) {
		t.Fatalf("dag output %v != hand-sequenced %v", outs[0], r2.Output)
	}
	snap := s.Counters()
	if snap[dag.CtrNodes] != 2 {
		t.Fatalf("dag.nodes = %d, want 2", snap[dag.CtrNodes])
	}
}

func TestTransformAndMultiInputConcat(t *testing.T) {
	s := newSession(t, dag.Options{})
	g := dag.NewGraph("multi")
	a := g.Source("a", pairsOf("1", "left"))
	b := g.Source("b", pairsOf("2", "right"))
	tagged := g.Transform("tag", func(inputs ...[]mapreduce.Pair) ([]mapreduce.Pair, error) {
		if len(inputs) != 2 {
			return nil, fmt.Errorf("want 2 inputs, got %d", len(inputs))
		}
		var out []mapreduce.Pair
		for _, in := range inputs {
			for _, p := range in {
				out = append(out, mapreduce.Pair{Key: p.Key, Value: append([]byte("t:"), p.Value...)})
			}
		}
		return out, nil
	}, a, b)
	// A job with two inputs sees them concatenated in declaration order.
	both := g.Job(upperJob("cat").WithReduces(1), tagged, a)
	outs, err := s.Run(context.Background(), g, both, tagged)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(outs[1][0].Value); got != "t:left" {
		t.Fatalf("transform output = %q, want %q", got, "t:left")
	}
	// cat consumed tag-output (2 records) + a (1 record), uppercased.
	if len(outs[0]) != 3 {
		t.Fatalf("concat job saw %d records, want 3", len(outs[0]))
	}
	snap := s.Counters()
	if snap[dag.CtrTransforms] != 1 {
		t.Fatalf("dag.transforms = %d, want 1", snap[dag.CtrTransforms])
	}
}

func TestIndependentNodesOverlap(t *testing.T) {
	const d = 120 * time.Millisecond
	s := newSession(t, dag.Options{Workers: 2})
	g := dag.NewGraph("par")
	src := g.Source("in", pairsOf("k", "v"))
	l := g.Job(slowJob("slow-left", d), src)
	r := g.Job(slowJob("slow-right", d), src)
	start := time.Now()
	if _, err := s.Run(context.Background(), g, l, r); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall >= 2*d {
		t.Fatalf("independent nodes did not overlap: wall %v >= %v", wall, 2*d)
	}
	traces := s.Traces()
	if len(traces) != 1 {
		t.Fatalf("want 1 dag trace, got %d", len(traces))
	}
	spans := traces[0].Spans
	if len(spans) != 2 {
		t.Fatalf("want 2 node spans, got %d", len(spans))
	}
	// The spans' [Start, Start+Wall) intervals must intersect.
	s0, s1 := spans[0], spans[1]
	if !(s0.Start.Before(s1.Start.Add(s1.Wall)) && s1.Start.Before(s0.Start.Add(s0.Wall))) {
		t.Fatalf("node spans do not overlap: %v+%v vs %v+%v", s0.Start, s0.Wall, s1.Start, s1.Wall)
	}
}

func TestSerialEngineDoesNotOverlap(t *testing.T) {
	// Workers is clamped to the engine's declared concurrency (1 here).
	drv := mapreduce.NewDriver(serialEngine{})
	s := dag.NewSession(drv, dag.Options{Workers: 8})
	g := dag.NewGraph("serial")
	src := g.Source("in", pairsOf("k", "v"))
	l := g.Job(upperJob("s1"), src)
	r := g.Job(upperJob("s2"), src)
	if _, err := s.Run(context.Background(), g, l, r); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&maxSerialInFlight); got != 1 {
		t.Fatalf("serial engine saw %d concurrent jobs, want 1", got)
	}
}

var serialInFlight, maxSerialInFlight int32

// serialEngine declares MaxConcurrentJobs()==1 and asserts it is honored.
type serialEngine struct{}

func (serialEngine) MaxConcurrentJobs() int { return 1 }

func (serialEngine) Run(ctx context.Context, job *mapreduce.Job, input []mapreduce.Pair) (*mapreduce.Result, error) {
	n := atomic.AddInt32(&serialInFlight, 1)
	if n > atomic.LoadInt32(&maxSerialInFlight) {
		atomic.StoreInt32(&maxSerialInFlight, n)
	}
	time.Sleep(20 * time.Millisecond)
	atomic.AddInt32(&serialInFlight, -1)
	return (&mapreduce.LocalEngine{Parallelism: 1}).Run(ctx, job, input)
}

func TestCacheReuseSkipsExecution(t *testing.T) {
	drv := mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 2})
	s := dag.NewSession(drv, dag.Options{CacheBytes: 1 << 20})
	input := pairsOf("a", "x", "b", "y")
	build := func() (*dag.Graph, *dag.Dataset) {
		g := dag.NewGraph("cached")
		src := g.Source("in", input)
		mid := g.Job(upperJob("up1").WithReduces(2), src)
		out := g.Job(upperJob("up2").WithReduces(2), mid)
		return g, out
	}
	g1, want1 := build()
	first, err := s.Run(context.Background(), g1, want1)
	if err != nil {
		t.Fatal(err)
	}
	jobsAfterFirst := len(drv.Jobs())
	if jobsAfterFirst != 2 {
		t.Fatalf("first run executed %d jobs, want 2", jobsAfterFirst)
	}

	g2, want2 := build()
	second, err := s.Run(context.Background(), g2, want2)
	if err != nil {
		t.Fatal(err)
	}
	if len(drv.Jobs()) != jobsAfterFirst {
		t.Fatalf("second run executed %d extra jobs, want 0 (cached)", len(drv.Jobs())-jobsAfterFirst)
	}
	snap := s.Counters()
	if snap[dag.CtrCacheHits] == 0 {
		t.Fatal("dag.cache.hits is 0 after identical rerun")
	}
	if fmt.Sprint(first[0]) != fmt.Sprint(second[0]) {
		t.Fatal("cached rerun returned different output")
	}

	// Changing the conf invalidates downstream nodes.
	g3 := dag.NewGraph("cached")
	src := g3.Source("in", input)
	j := upperJob("up1").WithReduces(2)
	j.Conf = mapreduce.Conf{"knob": "changed"}
	mid := g3.Job(j, src)
	out := g3.Job(upperJob("up2").WithReduces(2), mid)
	if _, err := s.Run(context.Background(), g3, out); err != nil {
		t.Fatal(err)
	}
	if len(drv.Jobs()) != jobsAfterFirst+2 {
		t.Fatalf("conf change re-executed %d jobs, want 2", len(drv.Jobs())-jobsAfterFirst)
	}
}

func TestCacheEvictionSpillsAndReloads(t *testing.T) {
	drv := mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 2})
	// Cache fits roughly one output; spill dir catches evictions.
	s := dag.NewSession(drv, dag.Options{CacheBytes: 64, SpillDir: t.TempDir()})
	run := func(name string) {
		g := dag.NewGraph("spill")
		src := g.Source("in-"+name, pairsOf("k", strings.Repeat(name, 10)))
		out := g.Job(upperJob("up-"+name).WithReduces(1), src)
		if _, err := s.Run(context.Background(), g, out); err != nil {
			t.Fatal(err)
		}
	}
	run("aaaa")
	run("bbbb") // evicts aaaa to disk
	snap := s.Counters()
	if snap[dag.CtrCacheEvictions] == 0 {
		t.Fatal("no evictions despite tiny cache")
	}
	jobs := len(drv.Jobs())
	run("aaaa") // must reload aaaa's result from spill, not re-run
	if len(drv.Jobs()) != jobs {
		t.Fatalf("spilled entry re-executed instead of reloading")
	}
	snap = s.Counters()
	if snap[dag.CtrCacheHits] == 0 {
		t.Fatal("dag.cache.hits is 0 after spill reload")
	}
}

func TestGCFreesDeadIntermediates(t *testing.T) {
	s := newSession(t, dag.Options{})
	g := dag.NewGraph("gc")
	src := g.Source("in", pairsOf("a", "1", "b", "2"))
	s1 := g.Job(upperJob("g1").WithReduces(1), src)
	s2 := g.Job(upperJob("g2").WithReduces(1), s1)
	s3 := g.Job(upperJob("g3").WithReduces(1), s2)
	if _, err := s.Run(context.Background(), g, s3); err != nil {
		t.Fatal(err)
	}
	snap := s.Counters()
	// s1.out and s2.out die once consumed; s3.out is wanted and pinned.
	if snap[dag.CtrGCDatasets] != 2 {
		t.Fatalf("dag.gc.datasets = %d, want 2", snap[dag.CtrGCDatasets])
	}
	if snap[dag.CtrGCBytes] == 0 {
		t.Fatal("dag.gc.bytes is 0")
	}
}

func TestCancellationStopsScheduling(t *testing.T) {
	s := newSession(t, dag.Options{Workers: 1})
	g := dag.NewGraph("cancel")
	src := g.Source("in", pairsOf("k", "v"))
	a := g.Job(slowJob("c1", 80*time.Millisecond), src)
	b := g.Job(slowJob("c2", 80*time.Millisecond), a)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := s.Run(ctx, g, b)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error %q does not mention cancellation", err)
	}
}

func TestStageDeduplicates(t *testing.T) {
	s := newSession(t, dag.Options{})
	input := pairsOf("a", "1", "b", "2")
	d1 := s.Stage("points", input)
	d2 := s.Stage("points", input)
	if d1 != d2 {
		t.Fatal("re-staging identical content returned a new dataset")
	}
	snap := s.Counters()
	if snap[dag.CtrStageDatasets] != 1 {
		t.Fatalf("dag.stage.datasets = %d, want 1", snap[dag.CtrStageDatasets])
	}
	want := mapreduce.PairsBytes(input)
	if snap[dag.CtrStageBytes] != want {
		t.Fatalf("dag.stage.bytes = %d, want %d", snap[dag.CtrStageBytes], want)
	}
	// Staged datasets feed graphs like sources.
	g := dag.NewGraph("staged")
	out := g.Job(upperJob("stg").WithReduces(1), d1)
	outs, err := s.Run(context.Background(), g, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs[0]) != 2 {
		t.Fatalf("staged job produced %d records, want 2", len(outs[0]))
	}
}

func TestConstructionErrorsSurfaceAtRun(t *testing.T) {
	s := newSession(t, dag.Options{})
	other := dag.NewGraph("other")
	osrc := other.Source("o", pairsOf("k", "v"))
	foreign := other.Job(upperJob("f1"), osrc)

	g := dag.NewGraph("bad")
	g.Job(upperJob("b1"), foreign) // foreign node output
	if _, err := s.Run(context.Background(), g); err == nil {
		t.Fatal("cross-graph input not rejected")
	}

	g2 := dag.NewGraph("bad2")
	g2.Job(upperJob("b2")) // no inputs
	if _, err := s.Run(context.Background(), g2); err == nil {
		t.Fatal("input-less job not rejected")
	}
}

func TestJobConfClonedAtRegistration(t *testing.T) {
	s := newSession(t, dag.Options{})
	conf := mapreduce.Conf{"v": "first"}
	g := dag.NewGraph("conf")
	src := g.Source("in", pairsOf("k", "v"))
	echo := func(name string) *mapreduce.Job {
		return &mapreduce.Job{
			Name: name,
			Conf: conf,
			Map: func(ctx *mapreduce.TaskContext, key string, _ []byte, out mapreduce.Emitter) error {
				out.Emit(key, []byte(ctx.Conf["v"]))
				return nil
			},
		}
	}
	first := g.Job(echo("e1"), src)
	conf["v"] = "second" // mutating the shared conf must not affect e1
	second := g.Job(echo("e2"), src)
	outs, err := s.Run(context.Background(), g, first, second)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(outs[0][0].Value); got != "first" {
		t.Fatalf("e1 saw conf %q, want %q (conf not cloned at registration)", got, "first")
	}
	if got := string(outs[1][0].Value); got != "second" {
		t.Fatalf("e2 saw conf %q, want %q", got, "second")
	}
}
