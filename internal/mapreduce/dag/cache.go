package dag

import (
	"container/list"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/mapreduce"
)

// cache is the session's byte-bounded node-result store, keyed by node
// fingerprint. Entries are LRU-evicted once the in-memory footprint
// exceeds capBytes; with a spill directory configured, evicted entries are
// written as gob files and transparently reloaded on the next hit (a
// "local spill dir"-backed dataset), otherwise they are dropped.
type cache struct {
	mu       sync.Mutex
	capBytes int64
	spillDir string

	curBytes int64
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recently used; in-memory entries only
}

type cacheEntry struct {
	fp     string
	pairs  []mapreduce.Pair // nil when spilled to disk
	bytes  int64
	elem   *list.Element // nil when spilled
	onDisk bool
}

func newCache(capBytes int64, spillDir string) *cache {
	if capBytes <= 0 {
		return nil
	}
	return &cache{
		capBytes: capBytes,
		spillDir: spillDir,
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
	}
}

// get returns the cached pairs for fp, reloading from spill if needed.
// evicted reports how many entries were pushed out making room for a
// reloaded one.
func (c *cache) get(fp string) (ps []mapreduce.Pair, ok bool, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[fp]
	if !found {
		return nil, false, 0
	}
	if e.onDisk {
		pairs, err := readSpill(c.spillPath(fp))
		if err != nil {
			// A damaged spill file degrades to a miss; the node re-runs.
			delete(c.entries, fp)
			os.Remove(c.spillPath(fp))
			return nil, false, 0
		}
		e.pairs = pairs
		e.onDisk = false
		c.curBytes += e.bytes
		e.elem = c.lru.PushFront(e)
		os.Remove(c.spillPath(fp))
		return e.pairs, true, c.evictLocked(e)
	}
	c.lru.MoveToFront(e.elem)
	return e.pairs, true, 0
}

// put stores a node result and returns how many entries were evicted to
// make room. Oversized results (bigger than the whole cache) are not
// stored at all.
func (c *cache) put(fp string, ps []mapreduce.Pair) (evicted int64) {
	bytes := mapreduce.PairsBytes(ps)
	if bytes > c.capBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[fp]; exists {
		return 0
	}
	e := &cacheEntry{fp: fp, pairs: ps, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[fp] = e
	c.curBytes += bytes
	return c.evictLocked(e)
}

// evictLocked evicts LRU entries (never keep) until the footprint fits.
func (c *cache) evictLocked(keep *cacheEntry) (evicted int64) {
	for c.curBytes > c.capBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		if e == keep {
			// Only the protected entry remains; nothing else to shed.
			break
		}
		c.lru.Remove(back)
		c.curBytes -= e.bytes
		evicted++
		if c.spillDir != "" {
			if err := writeSpill(c.spillPath(e.fp), e.pairs); err == nil {
				e.pairs = nil
				e.elem = nil
				e.onDisk = true
				continue
			}
		}
		delete(c.entries, e.fp)
	}
	return evicted
}

func (c *cache) spillPath(fp string) string {
	return filepath.Join(c.spillDir, fp+".ds")
}

func writeSpill(path string, ps []mapreduce.Pair) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(ps); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func readSpill(path string) ([]mapreduce.Pair, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ps []mapreduce.Pair
	if err := gob.NewDecoder(f).Decode(&ps); err != nil {
		return nil, fmt.Errorf("dag: corrupt spill %s: %w", path, err)
	}
	return ps, nil
}
