package dag

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// Counter names the scheduler reports (Session.Counters, per-run trace
// counters, and `dpbench -json`).
const (
	// CtrNodes counts job nodes actually executed (cache hits excluded).
	CtrNodes = "dag.nodes"
	// CtrTransforms counts transform nodes actually executed.
	CtrTransforms = "dag.transforms"
	// CtrCacheHits / CtrCacheMisses count node-result cache lookups. Both
	// stay zero when the cache is disabled.
	CtrCacheHits   = "dag.cache.hits"
	CtrCacheMisses = "dag.cache.misses"
	// CtrCacheEvictions counts entries pushed out of the in-memory cache
	// (spilled to disk when a spill dir is configured, dropped otherwise).
	CtrCacheEvictions = "dag.cache.evictions"
	// CtrStageDatasets / CtrStageBytes count distinct datasets registered
	// via Session.Stage and their byte volume. Re-staging identical
	// content adds nothing — the counter IS the staging-dedup regression
	// signal for iterative pipelines.
	CtrStageDatasets = "dag.stage.datasets"
	CtrStageBytes    = "dag.stage.bytes"
	// CtrGCDatasets / CtrGCBytes count intermediate datasets freed once
	// their last consumer finished, and the bytes released.
	CtrGCDatasets = "dag.gc.datasets"
	CtrGCBytes    = "dag.gc.bytes"
)

// Conf keys for the scheduler knobs, for CLIs that carry configuration in
// a mapreduce.Conf (see OptionsFromConf).
const (
	// ConfWorkers bounds concurrent DAG nodes ("mr.dag.workers");
	// 0 defers to the engine's declared job concurrency.
	ConfWorkers = "mr.dag.workers"
	// ConfCacheMB sizes the node-result cache in MiB ("mr.dag.cache.mb");
	// 0 disables caching.
	ConfCacheMB = "mr.dag.cache.mb"
)

// Options tunes a Session.
type Options struct {
	// Workers bounds how many ready nodes run concurrently. 0 uses the
	// engine's declared job concurrency (mapreduce.JobConcurrency, 1 when
	// undeclared); values above that capability are clamped down to it.
	Workers int
	// CacheBytes bounds the node-result cache; 0 disables caching (every
	// node re-executes on every run).
	CacheBytes int64
	// SpillDir, when set with caching on, receives evicted cache entries
	// as spill files instead of dropping them; they reload on the next
	// hit. The directory is created on demand and never cleaned up by the
	// session — point it at a temp dir.
	SpillDir string
	// Log, when non-nil, receives one line per completed node.
	Log func(format string, args ...any)
	// Trace, when non-nil, receives one obs.JobTrace per Run with a span
	// per node — the hook CLI -trace flags use.
	Trace *obs.Trace
}

// OptionsFromConf reads the mr.dag.* knobs out of a conf map.
func OptionsFromConf(conf mapreduce.Conf) Options {
	return Options{
		Workers:    conf.GetInt(ConfWorkers, 0),
		CacheBytes: int64(conf.GetInt(ConfCacheMB, 0)) << 20,
	}
}

// Session executes graphs over one mapreduce.Runner, carrying the node
// cache, staged datasets, dag counters, and per-run node traces across
// Run calls. Safe for sequential use; one Run executes at a time.
type Session struct {
	runner mapreduce.Runner
	opt    Options
	cache  *cache

	mu       sync.Mutex
	counters *mapreduce.Counters
	staged   map[string]*Dataset
	traces   []obs.JobTrace
	runSeq   int
}

// NewSession binds a session to a runner. The runner's own stats and
// traces keep accumulating exactly as under hand-sequenced pipelines; the
// session adds dag-level counters and per-node spans on top.
func NewSession(r mapreduce.Runner, opt Options) *Session {
	return &Session{
		runner:   r,
		opt:      opt,
		cache:    newCache(opt.CacheBytes, opt.SpillDir),
		counters: mapreduce.NewCounters(),
		staged:   make(map[string]*Dataset),
	}
}

// Runner returns the runner the session schedules onto.
func (s *Session) Runner() mapreduce.Runner { return s.runner }

// Stage registers a named dataset at session level, shared across graphs
// and runs. Identical content (same name, same pairs) returns the same
// handle and counts its bytes ONCE — the contract iterative pipelines rely
// on to stop re-staging their input every round. The slice must not be
// mutated afterwards.
func (s *Session) Stage(name string, pairs []mapreduce.Pair) *Dataset {
	fp := fingerprintPairs(name, pairs)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds, ok := s.staged[fp]; ok {
		return ds
	}
	ds := &Dataset{name: name, src: pairs, staged: true, fp: fp}
	s.staged[fp] = ds
	s.counters.Add(CtrStageDatasets, 1)
	s.counters.Add(CtrStageBytes, mapreduce.PairsBytes(pairs))
	return ds
}

// Counters returns a snapshot of the session's dag.* counters, summed
// over all runs.
func (s *Session) Counters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters.Snapshot()
}

// Traces returns one trace per completed Run ("dag:<graph>"), each with a
// span per node and that run's dag.* counter deltas.
func (s *Session) Traces() []obs.JobTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.JobTrace(nil), s.traces...)
}

// workers resolves the node concurrency: Options.Workers clamped to the
// engine's declared capability.
func (s *Session) workers() int {
	capability := 1
	if jc, ok := s.runner.(mapreduce.JobConcurrency); ok {
		if n := jc.MaxConcurrentJobs(); n > 0 {
			capability = n
		}
	}
	w := s.opt.Workers
	if w <= 0 || w > capability {
		w = capability
	}
	return w
}

// dsState is one dataset's materialization state during a run.
type dsState struct {
	pairs  []mapreduce.Pair
	done   bool
	refs   int  // consumer nodes not yet finished
	gcable bool // node-produced and not a wanted output
}

// Run executes the graph and returns the wanted datasets' pairs, in want
// order. Intermediates not listed in want are garbage-collected as soon as
// their last consumer finishes; wanted datasets are pinned. Cancelling ctx
// stops dispatching nodes, drains the ones in flight, and returns
// ctx.Err(). Returned slices may alias the node cache — treat them as
// read-only, like any job output.
func (s *Session) Run(ctx context.Context, g *Graph, want ...*Dataset) ([][]mapreduce.Pair, error) {
	if g == nil {
		return nil, fmt.Errorf("dag: nil graph")
	}
	if g.err != nil {
		return nil, g.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runStart := time.Now()
	rc := mapreduce.NewCounters() // this run's dag.* deltas

	// Build per-dataset state and the consumer index.
	st := make(map[*Dataset]*dsState)
	consumers := make(map[*Dataset][]*node)
	ensure := func(d *Dataset) *dsState {
		x, ok := st[d]
		if !ok {
			x = &dsState{}
			if d.producer == nil {
				x.pairs = d.src
				x.done = true
			}
			st[d] = x
		}
		return x
	}
	for _, n := range g.nodes {
		for _, in := range distinct(n.ins) {
			ensure(in).refs++
			consumers[in] = append(consumers[in], n)
		}
		ensure(n.out).gcable = true
	}
	wanted := make(map[*Dataset]bool, len(want))
	for _, w := range want {
		if w == nil {
			return nil, fmt.Errorf("dag: graph %q: nil wanted dataset", g.name)
		}
		if w.isDFS() {
			return nil, fmt.Errorf("dag: graph %q: cannot return DFS dataset %q", g.name, w.name)
		}
		if w.producer != nil && w.producer.g != g {
			return nil, fmt.Errorf("dag: graph %q: wanted dataset %q belongs to graph %q", g.name, w.name, w.producer.g.name)
		}
		wanted[w] = true
		ensure(w).gcable = false
	}

	// Fingerprint nodes in construction (= topological) order.
	for _, n := range g.nodes {
		inFPs := make([]string, len(n.ins))
		for i, in := range n.ins {
			if in.producer != nil {
				inFPs[i] = in.producer.fp
			} else {
				inFPs[i] = datasetFP(in)
			}
		}
		n.fp = fingerprintNode(n, inFPs)
		n.out.fp = n.fp
	}

	// Schedule: dispatch ready nodes up to the worker bound, collect
	// completions, release consumers, GC dead intermediates.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	doneCh := make(chan nodeResult)
	pending := make(map[*node]int)
	var ready []*node
	for _, n := range g.nodes {
		for _, in := range distinct(n.ins) {
			if !st[in].done {
				pending[n]++
			}
		}
		if pending[n] == 0 {
			ready = append(ready, n)
		}
	}
	workers := s.workers()
	spans := make([]obs.Span, 0, len(g.nodes))
	var (
		running, finished int
		firstErr          error
	)
	for finished < len(g.nodes) {
		for firstErr == nil && running < workers && len(ready) > 0 {
			n := ready[0]
			ready = ready[1:]
			inputs := make([][]mapreduce.Pair, len(n.ins))
			for i, in := range n.ins {
				inputs[i] = st[in].pairs
			}
			running++
			go func(n *node, inputs [][]mapreduce.Pair) {
				doneCh <- s.execNode(runCtx, n, inputs, rc)
			}(n, inputs)
		}
		if running == 0 {
			if firstErr != nil {
				break
			}
			// No cycle can be constructed, so an empty frontier with work
			// left means a bug; fail loudly instead of hanging.
			return nil, fmt.Errorf("dag: graph %q: scheduler stuck with %d/%d nodes done", g.name, finished, len(g.nodes))
		}
		msg := <-doneCh
		running--
		finished++
		if msg.err != nil {
			if firstErr == nil {
				firstErr = msg.err
				cancelRun()
			}
			continue
		}
		spans = append(spans, msg.span)
		outSt := st[msg.n.out]
		outSt.pairs = msg.out
		outSt.done = true
		for _, m := range consumers[msg.n.out] {
			pending[m]--
			if pending[m] == 0 {
				ready = append(ready, m)
			}
		}
		if s.opt.Log != nil {
			tag := ""
			if msg.cached {
				tag = "  [cached]"
			}
			s.opt.Log("dag %-24s %8.3fs  out=%d%s", msg.n.name, msg.span.Wall.Seconds(), msg.span.Records, tag)
		}
		// Release this node's inputs; collect intermediates nobody else
		// will read.
		for _, in := range distinct(msg.n.ins) {
			is := st[in]
			is.refs--
			if is.refs == 0 && is.gcable && is.done {
				rc.Add(CtrGCDatasets, 1)
				rc.Add(CtrGCBytes, mapreduce.PairsBytes(is.pairs))
				is.pairs = nil
			}
		}
	}

	s.mu.Lock()
	s.counters.Merge(rc)
	if firstErr == nil {
		s.runSeq++
		trace := obs.JobTrace{
			Job:      "dag:" + g.name,
			ID:       s.runSeq,
			Wall:     time.Since(runStart),
			Spans:    spans,
			Counters: rc.Snapshot(),
		}
		for i := range trace.Spans {
			trace.Spans[i].JobID = trace.ID
		}
		s.traces = append(s.traces, trace)
		if s.opt.Trace != nil {
			s.opt.Trace.Add(trace)
		}
	}
	s.mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([][]mapreduce.Pair, len(want))
	for i, w := range want {
		ws, ok := st[w]
		if !ok {
			// A wanted source no node consumed.
			out[i] = w.src
			continue
		}
		if !ws.done {
			return nil, fmt.Errorf("dag: graph %q: wanted dataset %q was never produced", g.name, w.name)
		}
		out[i] = ws.pairs
	}
	return out, nil
}

// nodeResult is one node's completion message to the scheduler loop.
type nodeResult struct {
	n      *node
	out    []mapreduce.Pair
	span   obs.Span
	err    error
	cached bool
}

// execNode runs one node: cache lookup, then the job (inline or DFS) or
// transform, then cache fill. The returned span carries the node's output
// volume; cache-served nodes are labeled "<name> (cached)".
func (s *Session) execNode(ctx context.Context, n *node, inputs [][]mapreduce.Pair, rc *mapreduce.Counters) (msg nodeResult) {
	start := time.Now()
	msg.n = n
	if s.cache != nil {
		if out, ok, evicted := s.cache.get(n.fp); ok {
			rc.Add(CtrCacheHits, 1)
			rc.Add(CtrCacheEvictions, evicted)
			msg.out = out
			msg.cached = true
			msg.span = nodeSpan(n.name+" (cached)", n.idx, start, out)
			return msg
		}
		rc.Add(CtrCacheMisses, 1)
	}
	var out []mapreduce.Pair
	var err error
	switch {
	case n.job != nil && len(n.ins) == 1 && n.ins[0].isDFS():
		dr, ok := s.runner.(mapreduce.DFSRunner)
		if !ok {
			err = fmt.Errorf("dag: node %q reads DFS source %q but runner %T has no DFS support", n.name, n.ins[0].name, s.runner)
			break
		}
		var res *mapreduce.Result
		res, err = dr.RunDFS(ctx, n.job, n.ins[0].dfsName, n.ins[0].dfsPath)
		if err == nil {
			out = res.Output
			rc.Add(CtrNodes, 1)
		}
	case n.job != nil:
		input := inputs[0]
		if len(inputs) > 1 {
			input = nil
			for _, in := range inputs {
				input = append(input, in...)
			}
		}
		var res *mapreduce.Result
		res, err = s.runner.Run(ctx, n.job, input)
		if err == nil {
			out = res.Output
			rc.Add(CtrNodes, 1)
		}
	default:
		out, err = n.fn(inputs...)
		if err != nil {
			err = fmt.Errorf("dag: transform %q: %w", n.name, err)
		} else {
			rc.Add(CtrTransforms, 1)
		}
	}
	if err != nil {
		msg.err = err
		return msg
	}
	if s.cache != nil {
		rc.Add(CtrCacheEvictions, s.cache.put(n.fp, out))
	}
	msg.out = out
	msg.span = nodeSpan(n.name, n.idx, start, out)
	return msg
}

func nodeSpan(name string, idx int, start time.Time, out []mapreduce.Pair) obs.Span {
	return obs.Span{
		Job:     name,
		Phase:   obs.PhaseDag,
		Task:    idx,
		Start:   start,
		Wall:    time.Since(start),
		Records: int64(len(out)),
		Bytes:   mapreduce.PairsBytes(out),
	}
}

// distinct returns the input list with duplicates removed, preserving
// order — refcounts and pending counts are per distinct dataset.
func distinct(ds []*Dataset) []*Dataset {
	if len(ds) <= 1 {
		return ds
	}
	out := ds[:0:0]
	seen := make(map[*Dataset]bool, len(ds))
	for _, d := range ds {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}
