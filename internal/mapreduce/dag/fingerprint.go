package dag

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"

	"repro/internal/mapreduce"
)

// Fingerprinting rules. A fingerprint is a sha256 hex digest over a
// domain-separated byte stream:
//
//	source     "src"  ‖ name ‖ length-framed pairs        (content identity)
//	DFS source "dfs"  ‖ namenode ‖ prefix                 (path identity)
//	job node   "job"  ‖ name ‖ maps ‖ reduces ‖ sorted conf ‖ input fps
//	transform  "xfm"  ‖ name ‖ input fps
//
// A node's output dataset inherits the node's fingerprint. Code identity
// is the job/transform NAME (the same contract as the rpcmr job registry);
// changing what a name computes without renaming it poisons the cache.

func writeFrame(h hash.Hash, b []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	h.Write(n[:])
	h.Write(b)
}

func writeStr(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	io.WriteString(h, s)
}

// fingerprintPairs hashes a source dataset's name and full content.
func fingerprintPairs(name string, ps []mapreduce.Pair) string {
	h := sha256.New()
	writeStr(h, "src")
	writeStr(h, name)
	for _, p := range ps {
		writeStr(h, p.Key)
		writeFrame(h, p.Value)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprintDFS hashes a DFS source by path identity.
func fingerprintDFS(nameNode, prefix string) string {
	h := sha256.New()
	writeStr(h, "dfs")
	writeStr(h, nameNode)
	writeStr(h, prefix)
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprintNode hashes a node's structure plus its input fingerprints.
func fingerprintNode(n *node, inputFPs []string) string {
	h := sha256.New()
	if n.job != nil {
		writeStr(h, "job")
		writeStr(h, n.job.Name)
		writeStr(h, fmt.Sprintf("%d/%d", n.job.NumMaps, n.job.NumReduces))
		keys := make([]string, 0, len(n.job.Conf))
		for k := range n.job.Conf {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeStr(h, k)
			writeStr(h, n.job.Conf[k])
		}
	} else {
		writeStr(h, "xfm")
		writeStr(h, n.name)
	}
	for _, fp := range inputFPs {
		writeStr(h, fp)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// datasetFP returns (memoizing) the fingerprint of a non-node dataset.
// Node outputs are stamped by the scheduler after node fingerprinting.
func datasetFP(d *Dataset) string {
	if d.fp == "" {
		d.fp = fingerprintPairs(d.name, d.src)
	}
	return d.fp
}
