// Package dag is the job-DAG scheduler the pipeline packages program
// against: instead of hand-sequencing mapreduce.Runner.Run calls, a
// pipeline declares a Graph of nodes — MapReduce jobs and driver-side
// transforms — wired through named Datasets, and a Session executes the
// graph over any existing mapreduce.Runner.
//
// The scheduler:
//
//   - orders nodes topologically (construction order is already
//     topological, since a node's inputs must exist when it is declared)
//     and runs independent ready nodes concurrently, bounded by the
//     engine's declared job concurrency (mapreduce.JobConcurrency: the
//     local engine overlaps jobs freely, the rpcmr master serializes);
//
//   - content-fingerprints every node — sha256 over the job name, conf,
//     task geometry, and input dataset fingerprints — and serves repeated
//     nodes from a byte-bounded result cache, so an unchanged sub-graph
//     re-runs for free across Session.Run calls (Hadoop users know this as
//     "don't recompute the intermediates that didn't change");
//
//   - garbage-collects intermediate datasets as soon as their last
//     consumer finishes, so a deep pipeline's peak footprint is its live
//     frontier, not its whole history;
//
//   - emits dag.* counters (nodes run, cache hits/misses, staged and
//     collected bytes) and one obs span per node, so cache behaviour and
//     node overlap are visible in traces and bench output.
//
// Datasets are backed by in-memory pair slices (sources and node outputs),
// by session-level staged slices shared across graphs (Session.Stage — the
// fix for pipelines re-staging their input every iteration), or by DFS
// part-file prefixes consumed directly by DFS-capable engines
// (Graph.DFSSource + mapreduce.DFSRunner). Evicted cache entries can spill
// to a local directory and reload on the next hit.
//
// Fingerprinting identifies job code by job NAME, exactly like the rpcmr
// job registry: two jobs with the same name, conf, geometry, and inputs
// are assumed to compute the same function. DFS sources are fingerprinted
// by path identity, not content — re-writing a prefix in place does NOT
// invalidate cached downstream nodes; use a fresh prefix per dataset
// version.
package dag

import (
	"fmt"

	"repro/internal/mapreduce"
)

// TransformFunc is a driver-side node: a pure function of its input
// datasets (in declaration order) producing one output dataset. It runs on
// the driver, not as a MapReduce job — the place for cheap re-encodings
// between jobs (decode ρ, re-annotate points). It must be deterministic:
// its node is fingerprinted by the transform NAME plus input fingerprints,
// and a cached result substitutes for a call.
type TransformFunc func(inputs ...[]mapreduce.Pair) ([]mapreduce.Pair, error)

// Dataset is a handle on one named dataset: a graph source, a session
// staged slice, a DFS prefix, or the output of a graph node. Handles are
// wired into downstream nodes and passed to Session.Run as wanted outputs.
// The pair slice behind a source or staged dataset must not be mutated
// after registration — fingerprints are computed from it once.
type Dataset struct {
	name     string
	src      []mapreduce.Pair // source / staged content (nil for DFS and node outputs)
	producer *node            // non-nil for node outputs
	dfsName  string           // DFS namenode address, "" otherwise
	dfsPath  string           // DFS part prefix, "" otherwise
	staged   bool             // registered via Session.Stage
	fp       string           // memoized fingerprint
}

// Name returns the dataset's declared name.
func (d *Dataset) Name() string { return d.name }

func (d *Dataset) isDFS() bool { return d.dfsPath != "" }

// node is one unit of work: exactly one of job / fn is set.
type node struct {
	g    *Graph
	idx  int
	name string
	job  *mapreduce.Job
	fn   TransformFunc
	ins  []*Dataset
	out  *Dataset
	fp   string // memoized fingerprint
}

// Graph is a DAG of jobs and transforms under construction. Methods record
// the first construction error instead of returning it at every call;
// Session.Run surfaces it. Construction order is topological by
// construction: a node can only consume datasets that already exist.
type Graph struct {
	name  string
	nodes []*node
	err   error
}

// NewGraph returns an empty graph. The name labels the per-run trace
// ("dag:<name>") and log lines.
func NewGraph(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's label.
func (g *Graph) Name() string { return g.name }

func (g *Graph) fail(format string, args ...any) *Dataset {
	if g.err == nil {
		g.err = fmt.Errorf("dag: graph %q: "+format, append([]any{g.name}, args...)...)
	}
	// Return a placeholder so builder chains stay nil-safe; Run reports
	// the recorded error before ever touching it.
	return &Dataset{name: "<error>"}
}

// Source registers an in-memory source dataset local to this graph. For a
// dataset reused across graphs (or across runs, without re-counting its
// bytes), stage it on the Session instead.
func (g *Graph) Source(name string, pairs []mapreduce.Pair) *Dataset {
	if name == "" {
		return g.fail("source with empty name")
	}
	return &Dataset{name: name, src: pairs}
}

// DFSSource registers a dataset backed by mini-DFS part files under
// inputPrefix. Only a job node may consume it, as its sole input, and only
// on a DFS-capable runner (mapreduce.DFSRunner — the rpcmr master, or a
// Driver wrapping one). The fingerprint is the path identity, not the part
// contents.
func (g *Graph) DFSSource(name, nameNodeAddr, inputPrefix string) *Dataset {
	if name == "" || nameNodeAddr == "" || inputPrefix == "" {
		return g.fail("DFS source needs name, namenode, and prefix")
	}
	return &Dataset{
		name:    name,
		dfsName: nameNodeAddr,
		dfsPath: inputPrefix,
		fp:      fingerprintDFS(nameNodeAddr, inputPrefix),
	}
}

// Job adds a job node consuming the given datasets (multiple inputs are
// concatenated in declaration order, the way hand-sequenced pipelines
// appended output slices) and returns its output dataset. The job's Conf
// is cloned at registration, absorbing the conf.Clone() boilerplate the
// hand-sequenced pipelines carried: callers may keep mutating a shared
// conf map for later nodes.
func (g *Graph) Job(job *mapreduce.Job, inputs ...*Dataset) *Dataset {
	if job == nil {
		return g.fail("nil job")
	}
	if job.Name == "" {
		return g.fail("job with empty name")
	}
	if len(inputs) == 0 {
		return g.fail("job %q has no inputs", job.Name)
	}
	j := *job
	j.Conf = job.Conf.Clone()
	n := &node{g: g, idx: len(g.nodes), name: j.Name, job: &j}
	return g.addNode(n, inputs)
}

// Transform adds a driver-side transform node and returns its output
// dataset. The name must uniquely identify the computation — it is the
// code identity under fingerprinting.
func (g *Graph) Transform(name string, fn TransformFunc, inputs ...*Dataset) *Dataset {
	if name == "" {
		return g.fail("transform with empty name")
	}
	if fn == nil {
		return g.fail("transform %q has nil function", name)
	}
	if len(inputs) == 0 {
		return g.fail("transform %q has no inputs", name)
	}
	n := &node{g: g, idx: len(g.nodes), name: name, fn: fn}
	return g.addNode(n, inputs)
}

func (g *Graph) addNode(n *node, inputs []*Dataset) *Dataset {
	for i, in := range inputs {
		if in == nil {
			return g.fail("node %q input %d is nil", n.name, i)
		}
		if in.producer != nil && in.producer.g != g {
			return g.fail("node %q input %q belongs to graph %q", n.name, in.name, in.producer.g.name)
		}
		if in.isDFS() {
			if n.fn != nil {
				return g.fail("transform %q cannot consume DFS source %q", n.name, in.name)
			}
			if len(inputs) != 1 {
				return g.fail("job %q: a DFS source must be the node's only input", n.name)
			}
		}
	}
	n.ins = inputs
	n.out = &Dataset{name: n.name + ".out", producer: n}
	g.nodes = append(g.nodes, n)
	return n.out
}
