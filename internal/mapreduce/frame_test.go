package mapreduce

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendDecodeFramesRoundTrip(t *testing.T) {
	ps := []Pair{
		{Key: "a", Value: []byte("1")},
		{Key: "", Value: []byte("empty key")},
		{Key: "b", Value: nil},
		{Key: "long-key-with-some-length", Value: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf []byte
	var want int64
	for _, p := range ps {
		buf = AppendFrame(buf, p)
		want += FrameBytes(p)
	}
	if int64(len(buf)) != want {
		t.Fatalf("framed %d bytes, FrameBytes sums to %d", len(buf), want)
	}
	got, err := DecodeFrames(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("decoded %d pairs, want %d", len(got), len(ps))
	}
	for i := range ps {
		if got[i].Key != ps[i].Key || !bytes.Equal(got[i].Value, ps[i].Value) {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], ps[i])
		}
	}
}

func TestDecodeFramesTruncated(t *testing.T) {
	buf := AppendFrame(nil, Pair{Key: "abc", Value: []byte("012345")})
	for _, cut := range []int{1, 3, 5, 8, len(buf) - 1} {
		if _, err := DecodeFrames(nil, buf[:cut]); err == nil {
			t.Fatalf("no error decoding %d of %d bytes", cut, len(buf))
		}
	}
}

func TestFrameWriterReaderRoundTrip(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		var ps []Pair
		for i := 0; i < n; i++ {
			ps = append(ps, Pair{Key: keys[i], Value: vals[i]})
		}
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		for _, p := range ps {
			if err := fw.WritePair(p); err != nil {
				return false
			}
		}
		if err := fw.Flush(); err != nil {
			return false
		}
		fr := NewFrameReader(&buf)
		var got []Pair
		for {
			p, ok, err := fr.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got = append(got, p)
		}
		if len(got) != len(ps) {
			return false
		}
		for i := range ps {
			if got[i].Key != ps[i].Key || !bytes.Equal(got[i].Value, ps[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The writer, the append codec, and the decoder must agree byte for byte:
// one frame layout, three entry points.
func TestFrameCodecsAgree(t *testing.T) {
	ps := []Pair{{Key: "k1", Value: []byte("v1")}, {Key: "k2", Value: bytes.Repeat([]byte("x"), 100)}}
	var appended []byte
	for _, p := range ps {
		appended = AppendFrame(appended, p)
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for _, p := range ps {
		if err := fw.WritePair(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended, buf.Bytes()) {
		t.Fatal("AppendFrame and FrameWriter produce different bytes")
	}
	if fw.Bytes() != int64(len(appended)) {
		t.Fatalf("FrameWriter.Bytes() = %d, want %d", fw.Bytes(), len(appended))
	}
	decoded, err := DecodeFrames(nil, appended)
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{Key: "k1", Value: []byte("v1")}, {Key: "k2", Value: bytes.Repeat([]byte("x"), 100)}}
	if !reflect.DeepEqual(decoded, want) {
		t.Fatalf("decoded %+v", decoded)
	}
}
