package mapreduce

import "os"

// tiny indirections so test helpers read clearly.
func osReadFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
