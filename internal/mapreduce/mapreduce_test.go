package mapreduce

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestConfTypedAccessors(t *testing.T) {
	c := Conf{}
	c.SetInt("i", 42)
	c.SetFloat("f", 2.5)
	c.SetInt64("l", 1<<40)
	c.SetBool("b", true)
	if c.GetInt("i", 0) != 42 || c.GetFloat("f", 0) != 2.5 ||
		c.GetInt64("l", 0) != 1<<40 || !c.GetBool("b", false) {
		t.Fatalf("accessors: %v", c)
	}
	// Defaults for missing keys.
	if c.GetInt("missing", 7) != 7 || c.GetFloat("missing", 1.5) != 1.5 ||
		c.GetInt64("missing", 9) != 9 || c.GetBool("missing", true) != true {
		t.Fatal("defaults not honored")
	}
	// Full float precision survives.
	c.SetFloat("pi", 3.141592653589793)
	if c.GetFloat("pi", 0) != 3.141592653589793 {
		t.Fatal("float precision lost")
	}
}

func TestConfClone(t *testing.T) {
	c := Conf{"a": "1"}
	d := c.Clone()
	d["a"] = "2"
	if c["a"] != "1" {
		t.Fatal("Clone aliased the map")
	}
	var nilConf Conf
	if got := nilConf.Clone(); got == nil || len(got) != 0 {
		t.Fatalf("nil Clone = %v", got)
	}
}

func TestConfPanicsOnMalformed(t *testing.T) {
	c := Conf{"x": "not-a-number"}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on malformed int")
		}
	}()
	c.GetInt("x", 0)
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cell := c.Cell("hot")
			for i := 0; i < 1000; i++ {
				cell.Add(1)
				c.Add("cold", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hot"); got != 8000 {
		t.Fatalf("hot = %d", got)
	}
	if got := c.Get("cold"); got != 8000 {
		t.Fatalf("cold = %d", got)
	}
	if got := c.Cell("hot").Load(); got != 8000 {
		t.Fatalf("cell load = %d", got)
	}
	var zero Cell
	zero.Add(5) // must not panic
	if zero.Load() != 0 {
		t.Fatal("zero cell should read 0")
	}
}

func TestCountersMergeAndSnapshot(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	snap := a.Snapshot()
	if snap["x"] != 3 || snap["y"] != 3 {
		t.Fatalf("merge = %v", snap)
	}
	if got := a.Get("zero"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
	s := a.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "3") {
		t.Fatalf("String = %q", s)
	}
}

func TestDriverPipelines(t *testing.T) {
	eng := &LocalEngine{Parallelism: 2}
	drv := NewDriver(eng)
	res1, err := drv.Run(context.Background(), wordcount(), lines("a a b"))
	if err != nil {
		t.Fatal(err)
	}
	// Second job consumes the first job's output.
	doubler := &Job{
		Name: "double",
		Map: func(_ *TaskContext, key string, value []byte, out Emitter) error {
			out.Emit(key, value)
			out.Emit(key, value)
			return nil
		},
		Reduce: sumReduce,
	}
	res2, err := drv.Run(context.Background(), doubler, res1.Output)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputMap(res2.Output)["a"]; got != "4" {
		t.Fatalf("pipelined count = %q", got)
	}
	if len(drv.Jobs()) != 2 {
		t.Fatalf("driver recorded %d jobs", len(drv.Jobs()))
	}
	if drv.TotalWall() <= 0 {
		t.Fatal("no wall time recorded")
	}
	if drv.TotalCounter(CtrMapInputRecords) != 3 {
		t.Fatalf("total map input = %d", drv.TotalCounter(CtrMapInputRecords))
	}
	traces := drv.Traces()
	if len(traces) != 2 {
		t.Fatalf("driver recorded %d traces", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Spans) == 0 {
			t.Fatalf("job %q trace has no spans", tr.Job)
		}
		var shuffleBytes int64
		for _, s := range tr.Spans {
			if s.Phase == obs.PhaseShuffle {
				shuffleBytes += s.Bytes
			}
		}
		if shuffleBytes != tr.Counters[CtrShuffleBytes] {
			t.Fatalf("job %q: shuffle span bytes %d != counter %d",
				tr.Job, shuffleBytes, tr.Counters[CtrShuffleBytes])
		}
	}
}

func TestDriverPropagatesError(t *testing.T) {
	drv := NewDriver(&LocalEngine{})
	_, err := drv.Run(context.Background(), &Job{Name: "bad"}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("want named job error, got %v", err)
	}
}

func TestExecuteTaskParityWithEngine(t *testing.T) {
	// The exported task-level functions (used by the distributed engine)
	// must produce the same result as the local engine.
	input := lines("p q p", "r p q", "q q")
	// Same reduce count on both paths so span counts are comparable (the
	// engine defaults NumReduces to its parallelism).
	nReduce := 2

	engineRes, err := (&LocalEngine{Parallelism: 2}).Run(context.Background(), wordcount(), input)
	if err != nil {
		t.Fatal(err)
	}

	counters := NewCounters()
	splits := splitInput(input, 2)
	perTask := make([][][]Pair, len(splits))
	var spanCount int
	for ti, split := range splits {
		parts, spans, err := ExecuteMapTask(wordcount(), ti, nReduce, split, counters)
		if err != nil {
			t.Fatal(err)
		}
		perTask[ti] = parts
		spanCount += len(spans)
	}
	var manual []Pair
	for r := 0; r < nReduce; r++ {
		var sorted [][]Pair
		for _, parts := range perTask {
			sorted = append(sorted, parts[r])
		}
		out, spans, err := ExecuteReduceTask(wordcount(), r, nReduce, sorted, counters)
		if err != nil {
			t.Fatal(err)
		}
		manual = append(manual, out...)
		spanCount += len(spans)
	}
	if engineSpans := len(engineRes.Trace.Spans); spanCount != engineSpans {
		t.Fatalf("task-level spans %d != engine spans %d", spanCount, engineSpans)
	}
	if !samePairs(engineRes.Output, manual) {
		t.Fatalf("task-level result %v differs from engine %v", manual, engineRes.Output)
	}
	if counters.Get(CtrShuffleBytes) != engineRes.Counters.Get(CtrShuffleBytes) {
		t.Fatalf("shuffle bytes differ: %d vs %d",
			counters.Get(CtrShuffleBytes), engineRes.Counters.Get(CtrShuffleBytes))
	}
}

func TestExecuteMapTaskValidation(t *testing.T) {
	if _, _, err := ExecuteMapTask(wordcount(), 0, 0, nil, NewCounters()); err == nil {
		t.Fatal("want error for zero reduce partitions")
	}
	if _, _, err := ExecuteMapTask(&Job{Name: "x"}, 0, 1, nil, NewCounters()); err == nil {
		t.Fatal("want error for invalid job")
	}
}

func TestExecuteReduceTaskMapOnly(t *testing.T) {
	job := &Job{
		Name: "identity",
		Map: func(_ *TaskContext, key string, value []byte, out Emitter) error {
			out.Emit(key, value)
			return nil
		},
	}
	out, spans, err := ExecuteReduceTask(job, 0, 1, [][]Pair{{{Key: "k", Value: []byte("v")}}}, NewCounters())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Key != "k" {
		t.Fatalf("map-only reduce = %v", out)
	}
	if spans != nil {
		t.Fatalf("map-only reduce emitted spans: %v", spans)
	}
}
