package mapreduce

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Task-level execution, shared by the local engine and the distributed
// rpcmr engine: a remote worker executes exactly these functions on its
// shard of the job. Both return the task's trace spans alongside its data
// so the rpcmr worker can ship them back to the master in CompleteArgs.

// ExecuteMapTask runs job.Map over the records of one input split,
// applies the combiner (when configured), partitions the output into
// nReduce buckets, and returns the buckets sorted by key plus the task's
// phase spans. Shuffle bytes and record counters are accumulated into
// counters. Spilling is not used at this level; the distributed engine
// ships partitions whole.
func ExecuteMapTask(job *Job, taskID, nReduce int, records []Pair, counters *Counters) ([][]Pair, []obs.Span, error) {
	if err := job.validate(); err != nil {
		return nil, nil, err
	}
	if nReduce <= 0 {
		return nil, nil, fmt.Errorf("mapreduce: map task with %d reduce partitions", nReduce)
	}
	start := time.Now()
	ctx := &TaskContext{
		JobName:    job.Name,
		TaskID:     taskID,
		NumReduces: nReduce,
		Conf:       job.Conf,
		Counters:   counters,
	}
	em := &taskEmitter{
		job:     job,
		ctx:     ctx,
		part:    job.partitioner(),
		nReduce: nReduce,
		buf:     make([][]Pair, nReduce),
		runs:    make([][]string, nReduce),
	}
	for _, rec := range records {
		if err := job.Map(ctx, rec.Key, rec.Value, em); err != nil {
			return nil, nil, fmt.Errorf("mapreduce: map task %d of %q: %w", taskID, job.Name, err)
		}
	}
	counters.Add(CtrMapInputRecords, int64(len(records)))
	counters.Add(CtrMapOutputRecords, em.outRecords)
	out, err := em.close()
	if err != nil {
		return nil, nil, err
	}
	spans := em.taskSpans(start, time.Since(start), int64(len(records)))
	return out.mem, spans, nil
}

// ExecuteReduceTask merges the already-sorted partition slices fetched
// from every map task and runs job.Reduce over each key group, returning
// the task's output pairs and its reduce span. For a map-only job it
// concatenates the inputs and emits no span, matching the local engine
// (which skips the reduce phase entirely) so span counts agree across
// engines.
func ExecuteReduceTask(job *Job, taskID, nReduce int, sorted [][]Pair, counters *Counters) ([]Pair, []obs.Span, error) {
	if err := job.validate(); err != nil {
		return nil, nil, err
	}
	if job.Reduce == nil {
		var out []Pair
		for _, ps := range sorted {
			out = append(out, ps...)
		}
		return out, nil, nil
	}
	start := time.Now()
	ctx := &TaskContext{
		JobName:    job.Name,
		TaskID:     taskID,
		NumReduces: nReduce,
		Conf:       job.Conf,
		Counters:   counters,
	}
	its := make([]pairIterator, 0, len(sorted))
	for _, ps := range sorted {
		if len(ps) > 0 {
			its = append(its, &sliceIterator{ps: ps})
		}
	}
	var out []Pair
	sink := EmitterFunc(func(key string, value []byte) {
		out = append(out, Pair{Key: key, Value: value})
	})
	var groups, records int64
	err := mergeGroups(its, func(key string, values [][]byte) error {
		groups++
		records += int64(len(values))
		return job.Reduce(ctx, key, values, sink)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: reduce task %d of %q: %w", taskID, job.Name, err)
	}
	counters.Add(CtrReduceInputGroups, groups)
	counters.Add(CtrReduceInputRecords, records)
	counters.Add(CtrReduceOutputRecords, int64(len(out)))
	span := obs.Span{
		Job: job.Name, Phase: obs.PhaseReduce, Task: taskID,
		Start: start, Wall: time.Since(start), Records: records,
	}
	return out, []obs.Span{span}, nil
}
