package mapreduce

import "fmt"

// Task-level execution, shared by the local engine and the distributed
// rpcmr engine: a remote worker executes exactly these functions on its
// shard of the job.

// ExecuteMapTask runs job.Map over the records of one input split,
// applies the combiner (when configured), partitions the output into
// nReduce buckets, and returns the buckets sorted by key. Shuffle bytes
// and record counters are accumulated into counters. Spilling is not used
// at this level; the distributed engine ships partitions whole.
func ExecuteMapTask(job *Job, taskID, nReduce int, records []Pair, counters *Counters) ([][]Pair, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if nReduce <= 0 {
		return nil, fmt.Errorf("mapreduce: map task with %d reduce partitions", nReduce)
	}
	ctx := &TaskContext{
		JobName:    job.Name,
		TaskID:     taskID,
		NumReduces: nReduce,
		Conf:       job.Conf,
		Counters:   counters,
	}
	em := &taskEmitter{
		job:     job,
		ctx:     ctx,
		part:    job.partitioner(),
		nReduce: nReduce,
		buf:     make([][]Pair, nReduce),
		runs:    make([][]string, nReduce),
	}
	for _, rec := range records {
		if err := job.Map(ctx, rec.Key, rec.Value, em); err != nil {
			return nil, fmt.Errorf("mapreduce: map task %d of %q: %w", taskID, job.Name, err)
		}
	}
	counters.Add(CtrMapInputRecords, int64(len(records)))
	counters.Add(CtrMapOutputRecords, em.outRecords)
	out, err := em.close()
	if err != nil {
		return nil, err
	}
	return out.mem, nil
}

// ExecuteReduceTask merges the already-sorted partition slices fetched
// from every map task and runs job.Reduce over each key group, returning
// the task's output pairs. For a map-only job it concatenates the inputs.
func ExecuteReduceTask(job *Job, taskID, nReduce int, sorted [][]Pair, counters *Counters) ([]Pair, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if job.Reduce == nil {
		var out []Pair
		for _, ps := range sorted {
			out = append(out, ps...)
		}
		return out, nil
	}
	ctx := &TaskContext{
		JobName:    job.Name,
		TaskID:     taskID,
		NumReduces: nReduce,
		Conf:       job.Conf,
		Counters:   counters,
	}
	its := make([]pairIterator, 0, len(sorted))
	for _, ps := range sorted {
		if len(ps) > 0 {
			its = append(its, &sliceIterator{ps: ps})
		}
	}
	var out []Pair
	sink := EmitterFunc(func(key string, value []byte) {
		out = append(out, Pair{Key: key, Value: value})
	})
	var groups, records int64
	err := mergeGroups(its, func(key string, values [][]byte) error {
		groups++
		records += int64(len(values))
		return job.Reduce(ctx, key, values, sink)
	})
	if err != nil {
		return nil, fmt.Errorf("mapreduce: reduce task %d of %q: %w", taskID, job.Name, err)
	}
	counters.Add(CtrReduceInputGroups, groups)
	counters.Add(CtrReduceInputRecords, records)
	counters.Add(CtrReduceOutputRecords, int64(len(out)))
	return out, nil
}
