package mapreduce_test

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mapreduce"
)

// The canonical first MapReduce job, on the local engine.
func ExampleLocalEngine_Run() {
	sum := func(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		out.Emit(key, []byte(strconv.Itoa(total)))
		return nil
	}
	job := &mapreduce.Job{
		Name: "wordcount",
		Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			for _, w := range strings.Fields(string(value)) {
				out.Emit(w, []byte("1"))
			}
			return nil
		},
		Combine:    sum,
		Reduce:     sum,
		NumReduces: 1, // single partition => globally sorted output
	}
	eng := &mapreduce.LocalEngine{Parallelism: 2}
	res, err := eng.Run(context.Background(), job, []mapreduce.Pair{
		{Value: []byte("to be or not")},
		{Value: []byte("to be")},
	})
	if err != nil {
		panic(err)
	}
	var parts []string
	for _, p := range res.Output {
		parts = append(parts, fmt.Sprintf("%s=%s", p.Key, p.Value))
	}
	fmt.Println(strings.Join(parts, " "))
	fmt.Println("map input records:", res.Counters.Get(mapreduce.CtrMapInputRecords))
	// Output:
	// be=2 not=1 or=1 to=2
	// map input records: 2
}

// Conf carries typed job parameters that survive the trip to distributed
// workers (everything is a string on the wire).
func ExampleConf() {
	conf := mapreduce.Conf{}
	conf.SetFloat("dc", 1.25)
	conf.SetInt("blocks", 8)
	conf.SetBool("gaussian", true)
	fmt.Println(conf.GetFloat("dc", 0), conf.GetInt("blocks", 0), conf.GetBool("gaussian", false))
	fmt.Println("missing key default:", conf.GetInt("nope", 42))
	// Output:
	// 1.25 8 true
	// missing key default: 42
}
