// Package mapreduce is a from-scratch MapReduce framework: typed jobs with
// user Map / Combine / Reduce functions, a hash-partitioned sort/group
// shuffle, byte-accurate cost counters, an optional spill-to-disk external
// merge sort, and a parallel in-process engine. A companion package
// (rpcmr) runs the same jobs on a real master/worker cluster over net/rpc.
//
// The framework deliberately mirrors Hadoop's execution model — the system
// the reproduced paper ("Efficient Distributed Density Peaks for Clustering
// Large Data Sets in MapReduce") was evaluated on — so that the paper's two
// cost metrics, shuffled bytes and distance computations, are measured at
// the same dataflow points:
//
//	input splits → map tasks → [combine] → partition → sort/group → reduce tasks → output
//
// Shuffle bytes are accounted after the combiner (when one is configured),
// exactly where Hadoop's "reduce shuffle bytes" counter sits.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// Pair is a key-value record. Keys are strings (they must sort and hash);
// values are opaque bytes encoded by the job (see internal/points codecs).
type Pair struct {
	Key   string
	Value []byte
}

// Emitter receives output records from map, combine, and reduce functions.
type Emitter interface {
	Emit(key string, value []byte)
}

// EmitterFunc adapts a function to the Emitter interface.
type EmitterFunc func(key string, value []byte)

// Emit calls f.
func (f EmitterFunc) Emit(key string, value []byte) { f(key, value) }

// MapFunc transforms one input record into any number of intermediate
// records. It must be safe for concurrent invocation across tasks: closures
// may read shared config but must write only through ctx and out.
type MapFunc func(ctx *TaskContext, key string, value []byte, out Emitter) error

// ReduceFunc folds all values grouped under one intermediate key. The same
// signature serves combiners (run map-side over partial groups) and
// reducers (run over complete groups).
type ReduceFunc func(ctx *TaskContext, key string, values [][]byte, out Emitter) error

// PartitionFunc maps an intermediate key to a reduce partition in
// [0, numReduces).
type PartitionFunc func(key string, numReduces int) int

// HashPartition is the default partitioner (FNV-1a, like Hadoop's hash
// partitioner in spirit).
func HashPartition(key string, numReduces int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(numReduces))
}

// Job is a single MapReduce job specification. Engines never mutate it, so
// one Job value can be run many times (the distributed engine registers Job
// templates by name and re-instantiates Conf per run).
type Job struct {
	// Name identifies the job in logs, counters, and the distributed
	// engine's job registry.
	Name string

	Map     MapFunc
	Combine ReduceFunc // optional; nil disables map-side combining
	Reduce  ReduceFunc // optional; nil makes the job map-only

	// Partition defaults to HashPartition when nil.
	Partition PartitionFunc

	// NumMaps is the number of map tasks (input splits). <=0 means one
	// task per engine worker.
	NumMaps int
	// NumReduces is the number of reduce partitions. <=0 means one per
	// engine worker.
	NumReduces int

	// Conf carries job-scoped configuration (the equivalent of Hadoop's
	// JobConf): algorithm parameters, broadcast values, etc.
	Conf Conf
}

// WithReduces sets the reduce-partition count and returns the job, so
// pipeline code reads `BasicRhoJob(conf).WithReduces(n)` instead of
// threading a helper through every package. It mutates and returns j —
// job factories return fresh values, so chaining is safe.
func (j *Job) WithReduces(n int) *Job {
	j.NumReduces = n
	return j
}

func (j *Job) validate() error {
	if j.Name == "" {
		return fmt.Errorf("mapreduce: job has no name")
	}
	if j.Map == nil {
		return fmt.Errorf("mapreduce: job %q has no map function", j.Name)
	}
	if j.Combine != nil && j.Reduce == nil {
		return fmt.Errorf("mapreduce: job %q has a combiner but no reducer", j.Name)
	}
	return nil
}

// partitioner returns the effective partition function.
func (j *Job) partitioner() PartitionFunc {
	if j.Partition != nil {
		return j.Partition
	}
	return HashPartition
}

// TaskContext is passed to every user function invocation. One context is
// shared by all records of a task attempt.
type TaskContext struct {
	JobName    string
	TaskID     int // map task index or reduce partition index
	NumReduces int
	Conf       Conf
	Counters   *Counters
}

// Conf is a string-typed configuration map with typed accessors, mirroring
// Hadoop's JobConf. Values must be strings so the distributed engine can
// ship them unchanged.
type Conf map[string]string

// Clone returns a copy of c (nil-safe).
func (c Conf) Clone() Conf {
	o := make(Conf, len(c))
	for k, v := range c {
		o[k] = v
	}
	return o
}

// GetInt returns the integer at key, or def when absent.
// Panics on a malformed value: configs are programmer-supplied.
func (c Conf) GetInt(key string, def int) int {
	s, ok := c[key]
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("mapreduce: conf %q=%q is not an int", key, s))
	}
	return v
}

// GetFloat returns the float64 at key, or def when absent.
func (c Conf) GetFloat(key string, def float64) float64 {
	s, ok := c[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic(fmt.Sprintf("mapreduce: conf %q=%q is not a float", key, s))
	}
	return v
}

// GetInt64 returns the int64 at key, or def when absent.
func (c Conf) GetInt64(key string, def int64) int64 {
	s, ok := c[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		panic(fmt.Sprintf("mapreduce: conf %q=%q is not an int64", key, s))
	}
	return v
}

// GetBool returns the bool at key, or def when absent.
func (c Conf) GetBool(key string, def bool) bool {
	s, ok := c[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		panic(fmt.Sprintf("mapreduce: conf %q=%q is not a bool", key, s))
	}
	return v
}

// SetInt stores an integer.
func (c Conf) SetInt(key string, v int) { c[key] = strconv.Itoa(v) }

// SetFloat stores a float64 at full precision.
func (c Conf) SetFloat(key string, v float64) {
	c[key] = strconv.FormatFloat(v, 'g', -1, 64)
}

// SetInt64 stores an int64.
func (c Conf) SetInt64(key string, v int64) { c[key] = strconv.FormatInt(v, 10) }

// SetBool stores a bool.
func (c Conf) SetBool(key string, v bool) { c[key] = strconv.FormatBool(v) }
