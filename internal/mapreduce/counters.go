package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Built-in counter names. User code may add arbitrary additional counters
// (the density-peaks jobs use "dp.distance.computations").
const (
	CtrMapInputRecords  = "map.input.records"
	CtrMapOutputRecords = "map.output.records"
	// CtrShuffleBytes is the volume of intermediate data handed to the
	// shuffle, measured AFTER the combiner when one is configured —
	// the same place Hadoop's reduce-shuffle-bytes counter measures.
	// This is the paper's Figure 10(b) metric.
	CtrShuffleBytes        = "shuffle.bytes"
	CtrShuffleRecords      = "shuffle.records"
	CtrCombineInputRecords = "combine.input.records"
	CtrReduceInputGroups   = "reduce.input.groups"
	CtrReduceInputRecords  = "reduce.input.records"
	CtrReduceOutputRecords = "reduce.output.records"
	CtrSpilledRuns         = "spill.runs"
	CtrSpilledBytes        = "spill.bytes"

	// CtrShuffleWireBytes and CtrShuffleWireBytesCompressed account the
	// rpcmr streaming shuffle at the transport level, per remote fetch:
	// wire.bytes is the framed payload plus chunk headers before
	// compression, wire.bytes.compressed what actually crossed the TCP
	// connection (equal when compression is off or did not help). They are
	// deliberately separate from CtrShuffleBytes, which stays the paper's
	// LOGICAL metric — post-combiner intermediate volume — and is identical
	// across engines and transports. Local (same-worker) fetches touch no
	// wire and count nothing here.
	CtrShuffleWireBytes           = "shuffle.wire.bytes"
	CtrShuffleWireBytesCompressed = "shuffle.wire.bytes.compressed"
)

// CtrDistanceComputations is the user counter every clustering job in this
// repository increments once per pairwise distance evaluation — the paper's
// Figure 10(c) metric. It lives here so all algorithm packages agree on the
// name.
const CtrDistanceComputations = "dp.distance.computations"

// CtrParallelGroups counts reducer groups that crossed the configured
// intra-partition parallelism threshold and split their pairwise tile grid
// across a worker pool. Read next to the per-phase straggler stats in the
// trace: skewed runs show large reduce stragglers at 0 parallel groups,
// and the counter going positive is the knob taking effect.
const CtrParallelGroups = "dp.parallel.groups"

// Compact scan path counters (the mr.scan.precision knob). CtrCompactEvals
// counts pairwise evaluations performed on the float32 representation;
// CtrCompactRechecks counts the subset whose error band was inconclusive
// and fell back to an exact float64 evaluation. rechecks/evals is the
// pruning efficiency of the compact path — near 1 means the data defeats
// the band test and f64 would be cheaper.
const (
	CtrCompactEvals    = "kernels.compact.evals"
	CtrCompactRechecks = "kernels.compact.rechecks"
)

// Counters is a concurrency-safe named counter set. Hot paths should hoist
// Cell(name) out of the loop and call Add on the cell; occasional updates
// can go through Add on the set itself.
type Counters struct {
	mu sync.Mutex
	m  map[string]*int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*int64)}
}

// Cell is a handle on one named counter, valid for the lifetime of its
// Counters set. It is a value type wrapping the underlying slot, so hot
// loops pay one map lookup up front and a single atomic add per update.
type Cell struct {
	p *int64
}

// Add atomically adds delta to the cell. The zero Cell is a no-op, so
// counter updates stay safe even when a task runs without counters.
func (c Cell) Add(delta int64) {
	if c.p != nil {
		atomic.AddInt64(c.p, delta)
	}
}

// Load returns the cell's current value.
func (c Cell) Load() int64 {
	if c.p == nil {
		return 0
	}
	return atomic.LoadInt64(c.p)
}

// Cell returns the handle for the named counter, creating it at zero.
func (c *Counters) Cell(name string) Cell {
	return Cell{p: c.slot(name)}
}

// slot returns the addressable storage for name, creating it at zero.
func (c *Counters) slot(name string) *int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[name]
	if !ok {
		p = new(int64)
		c.m[name] = p
	}
	return p
}

// Add atomically adds delta to the named counter.
func (c *Counters) Add(name string, delta int64) {
	atomic.AddInt64(c.slot(name), delta)
}

// Get returns the current value of the named counter (0 when absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	p, ok := c.m[name]
	c.mu.Unlock()
	if !ok {
		return 0
	}
	return atomic.LoadInt64(p)
}

// Merge adds every counter of o into c.
func (c *Counters) Merge(o *Counters) {
	for name, v := range o.Snapshot() {
		c.Add(name, v)
	}
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for name, p := range c.m {
		out[name] = atomic.LoadInt64(p)
	}
	return out
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-28s %d\n", name, snap[name])
	}
	return b.String()
}
