package mapreduce

import "sort"

// sortPairs orders pairs by key. The sort is stable so that values under
// one key keep their emission order — several jobs rely on deterministic
// value order for reproducible output.
func sortPairs(ps []Pair) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
}

// forEachGroup walks pairs already sorted by key and invokes fn once per
// distinct key with all values of that group. The values slice is reused
// between calls only if fn does not retain it; here a fresh slice is built
// per group because user reducers commonly retain values.
func forEachGroup(ps []Pair, fn func(key string, values [][]byte) error) error {
	for i := 0; i < len(ps); {
		j := i + 1
		for j < len(ps) && ps[j].Key == ps[i].Key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, ps[k].Value)
		}
		if err := fn(ps[i].Key, values); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// runCombiner applies a combiner to one partition buffer already sorted
// by key: group, re-emit. It returns the combined pairs and the number of
// input records consumed. Callers sort first (and time that sort
// separately from the combine, so trace phases don't blur together).
func runCombiner(ctx *TaskContext, combine ReduceFunc, ps []Pair) ([]Pair, int, error) {
	out := make([]Pair, 0, len(ps))
	sink := EmitterFunc(func(key string, value []byte) {
		out = append(out, Pair{Key: key, Value: value})
	})
	if err := forEachGroup(ps, func(key string, values [][]byte) error {
		return combine(ctx, key, values, sink)
	}); err != nil {
		return nil, 0, err
	}
	return out, len(ps), nil
}

// pairBytes is the shuffle size accounting for one record.
func pairBytes(p Pair) int64 { return int64(len(p.Key) + len(p.Value)) }
