package mapreduce

// sortPairs orders pairs by key. The sort is stable so that values under
// one key keep their emission order — several jobs rely on deterministic
// value order for reproducible output.
func sortPairs(ps []Pair) {
	sortPairsScratch(ps, nil)
}

// SortPairs is the shuffle's stable pair sort, exported for benchmarks.
func SortPairs(ps []Pair) { sortPairs(ps) }

// insertionCutoff is the run length below which the pair sort switches to
// insertion sort; merge passes start from runs of this size.
const insertionCutoff = 24

// sortPairsScratch is sortPairs with a reusable merge buffer: a bottom-up
// stable merge sort over []Pair directly. Compared to sort.SliceStable this
// drops the per-comparison interface and reflect-based swap costs, moves
// whole Pair values instead of repeated element swaps, and — given a
// scratch buffer — allocates nothing. Returns the (possibly grown) scratch
// for the caller to reuse.
func sortPairsScratch(ps, scratch []Pair) []Pair {
	n := len(ps)
	for lo := 0; lo < n; lo += insertionCutoff {
		insertionSortPairs(ps[lo:minLen(lo+insertionCutoff, n)])
	}
	if n <= insertionCutoff {
		return scratch
	}
	if cap(scratch) < n {
		scratch = make([]Pair, n)
	}
	scratch = scratch[:n]
	src, dst := ps, scratch
	for width := insertionCutoff; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := minLen(lo+width, n)
			hi := minLen(lo+2*width, n)
			mergePairs(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &ps[0] {
		copy(ps, src)
	}
	return scratch
}

// insertionSortPairs stable-sorts a short run in place.
func insertionSortPairs(ps []Pair) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && ps[j].Key > p.Key {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// mergePairs merges two adjacent sorted runs into dst. Ties take from a,
// the earlier run, preserving stability.
func mergePairs(dst, a, b []Pair) {
	for len(a) > 0 && len(b) > 0 {
		if b[0].Key < a[0].Key {
			dst[0] = b[0]
			b = b[1:]
		} else {
			dst[0] = a[0]
			a = a[1:]
		}
		dst = dst[1:]
	}
	copy(dst, a)
	copy(dst, b)
}

func minLen(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// forEachGroup walks pairs already sorted by key and invokes fn once per
// distinct key with all values of that group. The values slice is reused
// between calls only if fn does not retain it; here a fresh slice is built
// per group because user reducers commonly retain values.
func forEachGroup(ps []Pair, fn func(key string, values [][]byte) error) error {
	for i := 0; i < len(ps); {
		j := i + 1
		for j < len(ps) && ps[j].Key == ps[i].Key {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, ps[k].Value)
		}
		if err := fn(ps[i].Key, values); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// runCombiner applies a combiner to one partition buffer already sorted
// by key: group, re-emit. It returns the combined pairs and the number of
// input records consumed. Callers sort first (and time that sort
// separately from the combine, so trace phases don't blur together).
func runCombiner(ctx *TaskContext, combine ReduceFunc, ps []Pair) ([]Pair, int, error) {
	out := make([]Pair, 0, len(ps))
	sink := EmitterFunc(func(key string, value []byte) {
		out = append(out, Pair{Key: key, Value: value})
	})
	if err := forEachGroup(ps, func(key string, values [][]byte) error {
		return combine(ctx, key, values, sink)
	}); err != nil {
		return nil, 0, err
	}
	return out, len(ps), nil
}

// pairBytes is the shuffle size accounting for one record.
func pairBytes(p Pair) int64 { return int64(len(p.Key) + len(p.Value)) }

// PairsBytes is the shuffle-size accounting (key bytes + value bytes)
// summed over a record slice — the unit the staging and dag.* byte
// counters use, matching the per-record shuffle accounting.
func PairsBytes(ps []Pair) int64 {
	var n int64
	for _, p := range ps {
		n += pairBytes(p)
	}
	return n
}
