package mapreduce

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Result is the outcome of one job execution.
type Result struct {
	Output   []Pair
	Counters *Counters
	Wall     time.Duration
	// Trace holds the job's task-phase spans when the engine collected
	// them (both engines do); nil otherwise.
	Trace *obs.JobTrace
}

// Engine executes MapReduce jobs. Implementations: LocalEngine (in-process,
// multicore) and rpcmr.Master (distributed over net/rpc). Run honors ctx:
// cancellation stops dispatching new tasks and fails the job with ctx.Err(),
// so a SIGINT-wired context tears a pipeline down gracefully instead of
// killing the process mid-shuffle.
type Engine interface {
	Run(ctx context.Context, job *Job, input []Pair) (*Result, error)
}

// JobConcurrency is an optional Engine capability: how many jobs the engine
// can execute at the same time. The DAG scheduler consults it before
// overlapping independent nodes — the local engine multiplexes goroutine
// pools freely, while the rpcmr master runs one job at a time.
type JobConcurrency interface {
	MaxConcurrentJobs() int
}

// DFSRunner is an optional Engine capability: run a job whose input is
// staged in the mini-DFS under a part-file prefix, without the driver ever
// touching the input bytes. rpcmr.Master implements it; the DAG scheduler
// uses it for DFS-backed source datasets.
type DFSRunner interface {
	RunDFS(ctx context.Context, job *Job, nameNodeAddr, inputPrefix string) (*Result, error)
}

// MaxConcurrentJobs reports the local engine's job concurrency: jobs share
// one process, so overlap is bounded only by cores.
func (e *LocalEngine) MaxConcurrentJobs() int { return e.parallelism() }

// LocalEngine runs jobs in-process with worker goroutines. It is the
// default substrate for experiments: it exercises the full dataflow
// (split, map, combine, partition, sort/group, reduce) with honest byte
// accounting, just without network transport.
type LocalEngine struct {
	// Parallelism bounds concurrent map and reduce tasks.
	// <=0 means runtime.NumCPU().
	Parallelism int
	// SpillThresholdBytes triggers map-side spills to sorted run files once
	// a task buffers this many intermediate bytes. 0 disables spilling.
	SpillThresholdBytes int64
	// TempDir hosts spill files; "" means os.TempDir().
	TempDir string
	// MonitorInterval, when >0 and Events is set, emits periodic counter
	// snapshots (records/s, shuffle MB/s) while a job runs.
	MonitorInterval time.Duration
	// Events receives scheduler and progress events; nil discards them.
	Events obs.Sink
}

func (e *LocalEngine) parallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.NumCPU()
}

// mapTaskOutput holds one map task's intermediate data: per-partition
// in-memory buffers (combined and sorted once the task finishes) plus
// per-partition sorted spill-run files.
type mapTaskOutput struct {
	mem  [][]Pair   // [partition] sorted pairs
	runs [][]string // [partition] run file paths
}

// taskEmitter buffers map output per partition and spills when over
// threshold. Not safe for concurrent use; each map task owns one.
// Alongside the data it accumulates the per-phase wall times and volumes
// that become the task's trace spans.
type taskEmitter struct {
	spillThreshold int64 // 0 = never spill
	job            *Job
	ctx            *TaskContext
	part           PartitionFunc
	nReduce        int
	buf            [][]Pair
	buffered       int64
	runs           [][]string
	spillDir       string
	spillSeq       int
	sortScratch    []Pair // merge buffer reused across partition sorts
	err            error

	outRecords int64

	// Phase accounting for the task's trace spans.
	combineWall    time.Duration
	sortWall       time.Duration
	spillWall      time.Duration
	combineIn      int64
	shuffleRecords int64
	shuffleBytes   int64
}

func (t *taskEmitter) Emit(key string, value []byte) {
	if t.err != nil {
		return
	}
	p := t.part(key, t.nReduce)
	pair := Pair{Key: key, Value: value}
	t.buf[p] = append(t.buf[p], pair)
	t.buffered += pairBytes(pair)
	t.outRecords++
	if t.spillThreshold > 0 && t.buffered >= t.spillThreshold {
		t.err = t.spill()
	}
}

// spill combines (if configured), sorts, and writes every non-empty
// partition buffer as a run file, then resets the buffers.
func (t *taskEmitter) spill() error {
	for p := range t.buf {
		if len(t.buf[p]) == 0 {
			continue
		}
		ps, err := t.finishPartition(p)
		if err != nil {
			return err
		}
		path := filepath.Join(t.spillDir, fmt.Sprintf("spill-%s-m%d-p%d-%d.run", sanitize(t.job.Name), t.ctx.TaskID, p, t.spillSeq))
		t.spillSeq++
		w0 := time.Now()
		n, err := writeRun(path, ps)
		t.spillWall += time.Since(w0)
		if err != nil {
			return fmt.Errorf("mapreduce: spill: %w", err)
		}
		t.ctx.Counters.Add(CtrSpilledRuns, 1)
		t.ctx.Counters.Add(CtrSpilledBytes, n)
		t.countShuffle(ps)
		t.runs[p] = append(t.runs[p], path)
		t.buf[p] = nil
	}
	t.buffered = 0
	return nil
}

// finishPartition sorts (and combines) one partition buffer, returning the
// shuffle-ready pairs. The buffer is left untouched; callers reset it.
func (t *taskEmitter) finishPartition(p int) ([]Pair, error) {
	ps := t.buf[p]
	s0 := time.Now()
	t.sortScratch = sortPairsScratch(ps, t.sortScratch)
	t.sortWall += time.Since(s0)
	if t.job.Combine == nil {
		return ps, nil
	}
	c0 := time.Now()
	combined, in, err := runCombiner(t.ctx, t.job.Combine, ps)
	t.combineWall += time.Since(c0)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: combiner in %q: %w", t.job.Name, err)
	}
	t.combineIn += int64(in)
	t.ctx.Counters.Add(CtrCombineInputRecords, int64(in))
	// Combiners may emit under new keys, so re-establish sort order.
	s1 := time.Now()
	t.sortScratch = sortPairsScratch(combined, t.sortScratch)
	t.sortWall += time.Since(s1)
	return combined, nil
}

func (t *taskEmitter) countShuffle(ps []Pair) {
	var bytes int64
	for _, p := range ps {
		bytes += pairBytes(p)
	}
	t.ctx.Counters.Add(CtrShuffleBytes, bytes)
	t.ctx.Counters.Add(CtrShuffleRecords, int64(len(ps)))
	t.shuffleBytes += bytes
	t.shuffleRecords += int64(len(ps))
}

// close finalizes remaining buffers into sorted in-memory partitions.
func (t *taskEmitter) close() (*mapTaskOutput, error) {
	if t.err != nil {
		return nil, t.err
	}
	out := &mapTaskOutput{mem: make([][]Pair, t.nReduce), runs: t.runs}
	for p := range t.buf {
		if len(t.buf[p]) == 0 {
			continue
		}
		ps, err := t.finishPartition(p)
		if err != nil {
			return nil, err
		}
		t.countShuffle(ps)
		out.mem[p] = ps
		t.buf[p] = nil
	}
	return out, nil
}

// taskSpans converts the accumulated phase accounting into this map
// task's trace spans. The map span is charged the task wall MINUS the
// combine/sort/spill time, so a job's phase walls partition its task
// walls instead of double-counting. The shuffle span's Bytes field is the
// post-combine volume — summing it over a job's shuffle spans reproduces
// CtrShuffleBytes exactly (the trace invariant the conformance test
// asserts). Span counts are a pure function of job shape: map + sort +
// shuffle, plus combine when a combiner is configured.
func (t *taskEmitter) taskSpans(start time.Time, wall time.Duration, inRecords int64) []obs.Span {
	base := obs.Span{Job: t.job.Name, Task: t.ctx.TaskID, Start: start}
	mapWall := wall - t.combineWall - t.sortWall - t.spillWall
	if mapWall < 0 {
		mapWall = 0
	}
	spans := make([]obs.Span, 0, 4)
	m := base
	m.Phase, m.Wall, m.Records = obs.PhaseMap, mapWall, inRecords
	spans = append(spans, m)
	if t.job.Combine != nil {
		c := base
		c.Phase, c.Wall, c.Records = obs.PhaseCombine, t.combineWall, t.combineIn
		spans = append(spans, c)
	}
	s := base
	s.Phase, s.Wall = obs.PhaseSort, t.sortWall
	spans = append(spans, s)
	sh := base
	sh.Phase, sh.Wall = obs.PhaseShuffle, t.spillWall
	sh.Records, sh.Bytes = t.shuffleRecords, t.shuffleBytes
	spans = append(spans, sh)
	return spans
}

// Run executes the job on input and returns its output pairs, counters,
// and trace. Output order is deterministic: reduce partitions in index
// order, keys in sorted order within each partition. Cancelling ctx stops
// dispatching new tasks; in-flight tasks drain and Run returns ctx.Err().
func (e *LocalEngine) Run(ctx context.Context, job *Job, input []Pair) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := job.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	workers := e.parallelism()
	nMaps := job.NumMaps
	if nMaps <= 0 {
		nMaps = workers
	}
	if nMaps > len(input) {
		nMaps = max(1, len(input))
	}
	nReduce := job.NumReduces
	if nReduce <= 0 {
		nReduce = workers
	}

	counters := NewCounters()
	if e.MonitorInterval > 0 && e.Events != nil {
		mon := obs.StartMonitor(job.Name, e.MonitorInterval, counters.Snapshot, e.Events)
		defer mon.Stop()
	}
	spillDir := ""
	if e.SpillThresholdBytes > 0 {
		dir, err := os.MkdirTemp(e.TempDir, "mr-"+sanitize(job.Name)+"-")
		if err != nil {
			return nil, fmt.Errorf("mapreduce: temp dir: %w", err)
		}
		spillDir = dir
		defer os.RemoveAll(dir)
	}

	// ---- Map phase ----
	splits := splitInput(input, nMaps)
	taskOuts := make([]*mapTaskOutput, len(splits))
	mapSpans := make([][]obs.Span, len(splits))
	err := runParallelCtx(ctx, len(splits), workers, func(ti int) error {
		taskStart := time.Now()
		ctx := &TaskContext{
			JobName:    job.Name,
			TaskID:     ti,
			NumReduces: nReduce,
			Conf:       job.Conf,
			Counters:   counters,
		}
		em := &taskEmitter{
			spillThreshold: e.SpillThresholdBytes,
			job:            job,
			ctx:            ctx,
			part:           job.partitioner(),
			nReduce:        nReduce,
			buf:            make([][]Pair, nReduce),
			runs:           make([][]string, nReduce),
			spillDir:       spillDir,
		}
		for _, rec := range splits[ti] {
			if err := job.Map(ctx, rec.Key, rec.Value, em); err != nil {
				return fmt.Errorf("mapreduce: map task %d of %q: %w", ti, job.Name, err)
			}
			if em.err != nil {
				return em.err
			}
		}
		counters.Add(CtrMapInputRecords, int64(len(splits[ti])))
		counters.Add(CtrMapOutputRecords, em.outRecords)
		out, err := em.close()
		if err != nil {
			return err
		}
		taskOuts[ti] = out
		mapSpans[ti] = em.taskSpans(taskStart, time.Since(taskStart), int64(len(splits[ti])))
		return nil
	})
	if err != nil {
		return nil, err
	}

	trace := &obs.JobTrace{Job: job.Name}
	for _, ss := range mapSpans {
		trace.Spans = append(trace.Spans, ss...)
	}

	// Map-only job: concatenate map outputs in task order.
	if job.Reduce == nil {
		var output []Pair
		for _, to := range taskOuts {
			for _, ps := range to.mem {
				output = append(output, ps...)
			}
		}
		trace.Wall = time.Since(start)
		trace.Counters = counters.Snapshot()
		return &Result{Output: output, Counters: counters, Wall: trace.Wall, Trace: trace}, nil
	}

	// ---- Reduce phase ----
	reduceOuts := make([][]Pair, nReduce)
	reduceSpans := make([]obs.Span, nReduce)
	err = runParallelCtx(ctx, nReduce, workers, func(r int) error {
		taskStart := time.Now()
		ctx := &TaskContext{
			JobName:    job.Name,
			TaskID:     r,
			NumReduces: nReduce,
			Conf:       job.Conf,
			Counters:   counters,
		}
		var its []pairIterator
		for _, to := range taskOuts {
			if len(to.mem[r]) > 0 {
				its = append(its, &sliceIterator{ps: to.mem[r]})
			}
			for _, path := range to.runs[r] {
				ri, err := openRun(path)
				if err != nil {
					return err
				}
				its = append(its, ri)
			}
		}
		var out []Pair
		sink := EmitterFunc(func(key string, value []byte) {
			out = append(out, Pair{Key: key, Value: value})
		})
		var groups, records int64
		err := mergeGroups(its, func(key string, values [][]byte) error {
			groups++
			records += int64(len(values))
			return job.Reduce(ctx, key, values, sink)
		})
		if err != nil {
			return fmt.Errorf("mapreduce: reduce task %d of %q: %w", r, job.Name, err)
		}
		counters.Add(CtrReduceInputGroups, groups)
		counters.Add(CtrReduceInputRecords, records)
		counters.Add(CtrReduceOutputRecords, int64(len(out)))
		reduceOuts[r] = out
		reduceSpans[r] = obs.Span{
			Job: job.Name, Phase: obs.PhaseReduce, Task: r,
			Start: taskStart, Wall: time.Since(taskStart), Records: records,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var output []Pair
	for _, ps := range reduceOuts {
		output = append(output, ps...)
	}
	trace.Spans = append(trace.Spans, reduceSpans...)
	trace.Wall = time.Since(start)
	trace.Counters = counters.Snapshot()
	return &Result{Output: output, Counters: counters, Wall: trace.Wall, Trace: trace}, nil
}

// splitInput partitions input records into n contiguous splits of
// near-equal size. Fewer than n splits are returned when input is shorter.
func splitInput(input []Pair, n int) [][]Pair {
	if len(input) == 0 {
		return [][]Pair{nil}
	}
	if n > len(input) {
		n = len(input)
	}
	splits := make([][]Pair, 0, n)
	base, rem := len(input)/n, len(input)%n
	off := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		splits = append(splits, input[off:off+size])
		off += size
	}
	return splits
}

// runParallel runs fn(0..n-1) with at most workers concurrent invocations
// and returns the first error. Dispatch stops once any invocation fails,
// so a failing job returns after the in-flight tasks drain instead of
// grinding through the remaining queue.
func runParallel(n, workers int, fn func(i int) error) error {
	return runParallelCtx(context.Background(), n, workers, fn)
}

// runParallelCtx is runParallel with cooperative cancellation: a cancelled
// ctx stops dispatch like a task failure does, and ctx.Err() wins over task
// errors so callers see the cancellation rather than a secondary failure.
func runParallelCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	done := ctx.Done()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failOnce sync.Once
	)
	next := make(chan int)
	failed := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failOnce.Do(func() { close(failed) })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-failed:
			break dispatch
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// sanitize makes a job name safe for file names.
func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
