package knnjoin

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

// The three workloads built on the join primitive: distance-based outlier
// detection (top-n by k-distance), k-distance profiles for DBSCAN eps
// selection, and batch nearest-centroid scoring. The first two are
// self-joins — each point queries the data set it belongs to — run at
// k+1 so the query's own zero-distance entry can be discarded.

// KDistances returns the k-distance (distance to the k-th nearest OTHER
// point) of every point of ds, via a bucketed self-join at k+1. Requires
// at least k+1 points so every point has k proper neighbors.
func KDistances(ctx context.Context, sess *dag.Session, ds *points.Dataset, k int, cfg Config) ([]float64, *Result, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("knnjoin: k must be at least 1, got %d", k)
	}
	if ds.N() < k+1 {
		return nil, nil, fmt.Errorf("knnjoin: k-distance needs at least k+1 = %d points, have %d", k+1, ds.N())
	}
	res, err := Run(ctx, sess, ds, ds, k+1, cfg)
	if err != nil {
		return nil, nil, err
	}
	kd := make([]float64, ds.N())
	for qid, ns := range res.Neighbors {
		ns = dropSelf(ns, int32(qid))
		if len(ns) < k {
			return nil, nil, fmt.Errorf("knnjoin: query %d has %d neighbors, want %d", qid, len(ns), k)
		}
		res.Neighbors[qid] = ns
		kd[qid] = math.Sqrt(ns[k-1].D2)
	}
	return kd, res, nil
}

// dropSelf removes the query's own entry from a self-join result. When
// more than k+1 points tie at distance zero, the query's own entry may
// have lost the tie-break to lower IDs and be absent — then the last (and
// also zero-distance) entry is dropped instead, leaving k entries whose
// distance multiset is the true top-k over the other points either way.
func dropSelf(ns []Neighbor, qid int32) []Neighbor {
	for i, n := range ns {
		if n.ID == qid {
			return append(ns[:i], ns[i+1:]...)
		}
	}
	if len(ns) == 0 {
		return ns
	}
	return ns[:len(ns)-1]
}

// Outlier is one detected outlier: a point ID and its k-distance.
type Outlier struct {
	ID    int32
	KDist float64
}

// Outliers runs distance-based outlier detection (Knorr/Ng style, ranked
// variant): the top-n points of ds by k-distance, descending, ties broken
// toward the lower ID.
func Outliers(ctx context.Context, sess *dag.Session, ds *points.Dataset, k, n int, cfg Config) ([]Outlier, *Result, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("knnjoin: outlier count must be at least 1, got %d", n)
	}
	kd, res, err := KDistances(ctx, sess, ds, k, cfg)
	if err != nil {
		return nil, nil, err
	}
	all := make([]Outlier, len(kd))
	for i, d := range kd {
		all[i] = Outlier{ID: int32(i), KDist: d}
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].KDist > all[j].KDist ||
			(all[i].KDist == all[j].KDist && all[i].ID < all[j].ID)
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n:n], res, nil
}

// Profile is a k-distance profile: every point's k-distance sorted
// descending — the curve DBSCAN's eps is read off of.
type Profile struct {
	K      int
	Sorted []float64
}

// KDistanceProfile computes the sorted k-distance curve of ds.
func KDistanceProfile(ctx context.Context, sess *dag.Session, ds *points.Dataset, k int, cfg Config) (*Profile, *Result, error) {
	kd, res, err := KDistances(ctx, sess, ds, k, cfg)
	if err != nil {
		return nil, nil, err
	}
	sorted := append([]float64(nil), kd...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return &Profile{K: k, Sorted: sorted}, res, nil
}

// SuggestEps reads an eps off the profile: the value just below the
// largest consecutive drop of the descending curve (the "knee"), which
// separates the outlier plateau from the cluster interior. The first
// maximal drop wins on ties. A flat curve returns its constant value.
func (p *Profile) SuggestEps() float64 {
	if len(p.Sorted) == 0 {
		return 0
	}
	best, at := -1.0, len(p.Sorted)-1
	for i := 0; i+1 < len(p.Sorted); i++ {
		if gap := p.Sorted[i] - p.Sorted[i+1]; gap > best {
			best, at = gap, i+1
		}
	}
	return p.Sorted[at]
}

// ScoreNearestCentroid assigns every point of ds to its nearest centroid
// (1-NN against the centroid set, exact broadcast join — bucketing buys
// nothing against a handful of rows) and returns the assignment and the
// distances. Ties resolve to the lowest centroid ID.
func ScoreNearestCentroid(ctx context.Context, sess *dag.Session, ds, centroids *points.Dataset, cfg Config) ([]int32, []float64, *Result, error) {
	res, err := RunExact(ctx, sess, ds, centroids, 1, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	assign := make([]int32, ds.N())
	dist := make([]float64, ds.N())
	for qid, ns := range res.Neighbors {
		if len(ns) != 1 {
			return nil, nil, nil, fmt.Errorf("knnjoin: query %d scored %d centroids, want 1", qid, len(ns))
		}
		assign[qid] = ns[0].ID
		dist[qid] = math.Sqrt(ns[0].D2)
	}
	return assign, dist, res, nil
}
