package knnjoin_test

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knnjoin"
	"repro/internal/points"
)

// naiveKDist computes every point's k-distance by full scan, excluding the
// point itself.
func naiveKDist(ds *points.Dataset, k int) []float64 {
	out := make([]float64, ds.N())
	for i, p := range ds.Points {
		var d2s []float64
		for j, q := range ds.Points {
			if j == i {
				continue
			}
			var d2 float64
			for t := range p.Pos {
				d := p.Pos[t] - q.Pos[t]
				d2 += d * d
			}
			d2s = append(d2s, d2)
		}
		sort.Float64s(d2s)
		out[i] = math.Sqrt(d2s[k-1])
	}
	return out
}

func TestKDistancesMatchNaive(t *testing.T) {
	ds := dataset.Blobs("knn-kdist", 300, 2, 3, 100, 2.5, 51)
	kd, res, err := knnjoin.KDistances(context.Background(), localSession(), ds, 4, knnjoin.Config{Seed: 3, NumReduces: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveKDist(ds, 4)
	for i := range want {
		if kd[i] != want[i] {
			t.Fatalf("kdist[%d]: got %v want %v", i, kd[i], want[i])
		}
		if len(res.Neighbors[i]) != 4 {
			t.Fatalf("point %d kept %d neighbors after self-drop, want 4", i, len(res.Neighbors[i]))
		}
	}
}

// TestKDistancesMassDuplicates exercises the self-drop fallback: with many
// identical points the query's own zero-distance entry loses the ID
// tie-break and a surrogate zero entry must be dropped instead.
func TestKDistancesMassDuplicates(t *testing.T) {
	ds := &points.Dataset{Name: "dups"}
	for i := 0; i < 12; i++ {
		ds.Points = append(ds.Points, points.Point{ID: int32(i), Pos: points.Vector{1, 2}})
	}
	for i := 12; i < 20; i++ {
		ds.Points = append(ds.Points, points.Point{ID: int32(i), Pos: points.Vector{float64(i), -3}})
	}
	kd, _, err := knnjoin.KDistances(context.Background(), localSession(), ds, 3, knnjoin.Config{Seed: 1, NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveKDist(ds, 3)
	for i := range want {
		if kd[i] != want[i] {
			t.Fatalf("kdist[%d]: got %v want %v", i, kd[i], want[i])
		}
	}
}

func TestOutliersFindPlanted(t *testing.T) {
	ds := dataset.Blobs("knn-outlier", 250, 2, 3, 60, 1.5, 61)
	// Plant two far-away singletons; renumber to keep IDs dense.
	ds.Points = append(ds.Points,
		points.Point{ID: int32(ds.N()), Pos: points.Vector{900, 900}},
		points.Point{ID: int32(ds.N() + 1), Pos: points.Vector{-950, 800}})
	ds.Labels = nil
	outs, _, err := knnjoin.Outliers(context.Background(), localSession(), ds, 3, 2, knnjoin.Config{Seed: 5, NumReduces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outliers, want 2", len(outs))
	}
	got := map[int32]bool{outs[0].ID: true, outs[1].ID: true}
	if !got[int32(ds.N()-2)] || !got[int32(ds.N()-1)] {
		t.Fatalf("planted outliers not found: got %+v", outs)
	}
	if outs[0].KDist < outs[1].KDist {
		t.Fatalf("outliers not sorted descending: %+v", outs)
	}
}

func TestKDistanceProfileSuggestEps(t *testing.T) {
	ds := dataset.Blobs("knn-eps", 200, 2, 4, 80, 1.0, 71)
	ds.Points = append(ds.Points, points.Point{ID: int32(ds.N()), Pos: points.Vector{700, -700}})
	ds.Labels = nil
	prof, _, err := knnjoin.KDistanceProfile(context.Background(), localSession(), ds, 4, knnjoin.Config{Seed: 7, NumReduces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Sorted) != ds.N() {
		t.Fatalf("profile has %d entries, want %d", len(prof.Sorted), ds.N())
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(prof.Sorted))) {
		t.Fatal("profile not sorted descending")
	}
	eps := prof.SuggestEps()
	// The planted singleton's k-distance dominates the curve; the knee must
	// land strictly below it and above zero.
	if !(eps > 0) || eps >= prof.Sorted[0] {
		t.Fatalf("suggested eps %v outside (0, %v)", eps, prof.Sorted[0])
	}
}

func TestScoreNearestCentroid(t *testing.T) {
	ds := dataset.Blobs("knn-score", 300, 2, 3, 90, 2.0, 81)
	cents := &points.Dataset{Name: "centroids", Points: []points.Point{
		{ID: 0, Pos: points.Vector{0, 0}},
		{ID: 1, Pos: points.Vector{50, 50}},
		{ID: 2, Pos: points.Vector{-40, 70}},
	}}
	assign, dist, _, err := knnjoin.ScoreNearestCentroid(context.Background(), localSession(), ds, cents, knnjoin.Config{NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ds.Points {
		bestID, best2 := int32(-1), math.Inf(1)
		for _, c := range cents.Points {
			var d2 float64
			for t := range p.Pos {
				d := p.Pos[t] - c.Pos[t]
				d2 += d * d
			}
			if d2 < best2 {
				bestID, best2 = c.ID, d2
			}
		}
		if assign[i] != bestID {
			t.Fatalf("point %d assigned to %d, want %d", i, assign[i], bestID)
		}
		if dist[i] != math.Sqrt(best2) {
			t.Fatalf("point %d distance %v, want %v", i, dist[i], math.Sqrt(best2))
		}
	}
}
