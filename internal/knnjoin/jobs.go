// Package knnjoin is the distributed kNN-join subsystem: R ⋉kNN S as a
// MapReduce DAG. The LSH-bucketed candidate pass replicates both sides into
// hash buckets (queries under every layout, like the ρ job of LSH-DDP) and
// computes each bucket's verified top-k with the top-k kernels; a merge
// pass folds the per-bucket partials and uses the query's guarantee radius
// (lsh.Layouts.GuaranteeRadius) to certify the answer or flag the query for
// the exact-fallback pass, which re-joins just the uncertified queries
// against all of S. The final result is bit-identical to a naive full join.
package knnjoin

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

// Conf keys of the kNN-join jobs. Workers rebuild the LSH layouts from
// these (seeded draws, like core's LSH-DDP jobs) instead of shipping hash
// functions.
const (
	// ConfK is the neighbor count k of the join.
	ConfK = "mr.knn.k"
	// ConfDim is the point dimensionality, needed to re-draw layouts.
	ConfDim = "mr.knn.dim"
	// ConfM is the number of independent LSH layouts.
	ConfM = "mr.knn.m"
	// ConfPi is the number of hash functions per layout.
	ConfPi = "mr.knn.pi"
	// ConfW is the LSH slot width.
	ConfW = "mr.knn.w"
	// ConfSeed is the layout draw seed.
	ConfSeed = "mr.knn.seed"
)

// Counters of the kNN-join jobs.
const (
	// CtrCandidates counts candidate pairs scanned by the bucket reducers
	// (query × base-row products, before any pruning).
	CtrCandidates = "knn.candidates"
	// CtrFallbacks counts queries whose bucket result could not be
	// certified by the guarantee radius and were re-joined exactly.
	CtrFallbacks = "knn.exact.fallbacks"
)

// Job names (the distributed engine's registry keys).
const (
	JobCandidates = "knn-candidates"
	JobExact      = "knn-exact"
	JobMerge      = "knn-merge"
)

// idKey renders a point ID as a fixed-width sortable reduce key.
func idKey(id int32) string { return fmt.Sprintf("%09d", id) }

// layoutCache amortizes layout reconstruction across tasks of one process,
// keyed by the full parameter tuple (same scheme as core's LSH-DDP jobs).
var layoutCache sync.Map // layoutKey -> *lsh.Layouts

type layoutKey struct {
	dim, m, pi int
	w          float64
	seed       int64
}

func layoutsFromConf(conf mapreduce.Conf) *lsh.Layouts {
	key := layoutKey{
		dim:  conf.GetInt(ConfDim, 0),
		m:    conf.GetInt(ConfM, 1),
		pi:   conf.GetInt(ConfPi, 1),
		w:    conf.GetFloat(ConfW, 1),
		seed: conf.GetInt64(ConfSeed, 0),
	}
	if v, ok := layoutCache.Load(key); ok {
		return v.(*lsh.Layouts)
	}
	l := lsh.NewLayouts(key.dim, key.m, key.pi, key.w, key.seed)
	layoutCache.Store(key, l)
	return l
}

// CandidatesJob is pass 1 of the bucketed join. The map side hashes both
// input sides under all M layouts: base (S) records replicate to their home
// buckets unchanged, query (R) records are annotated with their guarantee
// radius and replicate to the same buckets. Each bucket reducer computes
// the exact top-k of every query over the bucket's base rows and emits one
// partial list per query, keyed by query ID for the merge pass.
func CandidatesJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobCandidates,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			if len(value) == 0 {
				return fmt.Errorf("knnjoin: empty input record")
			}
			layouts := layoutsFromConf(ctx.Conf)
			switch value[0] {
			case tagBase:
				p, rest, err := points.DecodePoint(value[1:])
				if err != nil {
					return err
				}
				if len(rest) != 0 {
					return fmt.Errorf("knnjoin: %d trailing bytes after base point", len(rest))
				}
				for _, key := range layouts.Keys(p.Pos) {
					out.Emit(key, value)
				}
			case tagQuery:
				p, rest, err := points.DecodePoint(value[1:])
				if err != nil {
					return err
				}
				if len(rest) != 0 {
					return fmt.Errorf("knnjoin: %d trailing bytes after query point", len(rest))
				}
				rec := encodeBucketQuery(layouts.GuaranteeRadius(p.Pos), p)
				for _, key := range layouts.Keys(p.Pos) {
					out.Emit(key, rec)
				}
			default:
				return fmt.Errorf("knnjoin: unknown input tag %q", value[0])
			}
			return nil
		},
		Reduce: bucketReduce,
	}
}

// ExactJob is the fallback join: base records partition by ID, queries
// broadcast to every partition with an infinite guarantee radius, and each
// partition's bucketReduce sees a disjoint slice of all of S — so the
// merged result is the exact join. The driver also uses it directly as the
// naive-broadcast oracle.
func ExactJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobExact,
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			if len(value) == 0 {
				return fmt.Errorf("knnjoin: empty input record")
			}
			n := ctx.NumReduces
			if n < 1 {
				n = 1
			}
			switch value[0] {
			case tagBase:
				part := int(uint32(baseID(value))) % n
				out.Emit("x|"+fmt.Sprintf("%03d", part), value)
			case tagQuery:
				p, rest, err := points.DecodePoint(value[1:])
				if err != nil {
					return err
				}
				if len(rest) != 0 {
					return fmt.Errorf("knnjoin: %d trailing bytes after query point", len(rest))
				}
				rec := encodeBucketQuery(math.Inf(1), p)
				for part := 0; part < n; part++ {
					out.Emit("x|"+fmt.Sprintf("%03d", part), rec)
				}
			default:
				return fmt.Errorf("knnjoin: unknown input tag %q", value[0])
			}
			return nil
		},
		// Keys name their partition directly; parsing them back keeps each
		// base slice and its broadcast queries in the intended reducer.
		Partition: func(key string, numReduces int) int {
			var part int
			if _, err := fmt.Sscanf(key, "x|%d", &part); err != nil {
				return 0
			}
			return part % numReduces
		},
		Reduce: bucketReduce,
	}
}

// bucketReduce computes the exact top-k of every query in one bucket over
// the bucket's base rows. It is shared by the candidate and exact jobs —
// the only difference between the passes is how records reached the bucket.
//
// Determinism: base records are sorted by point ID before they are decoded
// into the matrix, so matrix row order — and with it the top-k kernels'
// lowest-row-index tie rule — is the (distance, ID) order of the naive
// oracle, insensitive to the engine's shuffle value order.
func bucketReduce(ctx *mapreduce.TaskContext, _ string, values [][]byte, out mapreduce.Emitter) error {
	var baseRecs [][]byte
	type bucketQuery struct {
		g float64
		p points.Point
	}
	var queries []bucketQuery
	for _, v := range values {
		if len(v) == 0 {
			return fmt.Errorf("knnjoin: empty bucket record")
		}
		switch v[0] {
		case tagBase:
			baseRecs = append(baseRecs, v)
		case tagBucketQ:
			g, p, err := decodeBucketQuery(v)
			if err != nil {
				return err
			}
			queries = append(queries, bucketQuery{g: g, p: p})
		default:
			return fmt.Errorf("knnjoin: unknown bucket tag %q", v[0])
		}
	}
	if len(queries) == 0 {
		return nil
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i].p.ID < queries[j].p.ID })
	if len(baseRecs) == 0 {
		// A bucket with no base rows still reports each query so the merge
		// pass sees its guarantee radius (and, on the exact pass over an
		// empty S, still produces a result record).
		for _, q := range queries {
			out.Emit(idKey(q.p.ID), encodePartial(partialList{QID: q.p.ID, G: q.g}))
		}
		return nil
	}
	sort.Slice(baseRecs, func(i, j int) bool { return baseID(baseRecs[i]) < baseID(baseRecs[j]) })
	views := make([][]byte, len(baseRecs))
	for i, v := range baseRecs {
		views[i] = v[1:]
	}
	m := points.GetMatrix()
	defer points.PutMatrix(m)
	if err := points.DecodePointsInto(m, views); err != nil {
		return err
	}
	dim := m.Dim()
	nq := len(queries)
	qs := make([]float64, nq*dim)
	for i, q := range queries {
		if len(q.p.Pos) != dim {
			return fmt.Errorf("knnjoin: query dim %d, base dim %d", len(q.p.Pos), dim)
		}
		copy(qs[i*dim:(i+1)*dim], q.p.Pos)
	}

	k := ctx.Conf.GetInt(ConfK, 1)
	accs := make([]kernels.TopKAcc, nq)
	nd := int64(nq) * int64(m.N())
	if ctx.Conf[kernels.ConfScanPrecision] == kernels.ScanF32 {
		c := points.GetMatrix32(m)
		defer points.PutMatrix32(c)
		qs32, qMaxAbs := points.ToFloat32(qs)
		maxAbs := c.MaxAbs()
		if qMaxAbs > maxAbs {
			maxAbs = qMaxAbs
		}
		bnd := kernels.F32Bounds(dim, maxAbs)
		sls := make([]kernels.TopKShortlist, nq)
		for i := range sls {
			sls[i].Reset(k, bnd)
		}
		kernels.TopKBatch32(c.Data(), dim, qs32, 0, m.N(), sls)
		var rechecks int64
		for i := range sls {
			rows := sls[i].Finish()
			rechecks += int64(len(rows))
			accs[i].Reset(k)
			kernels.TopKRows(m.Data(), dim, qs[i*dim:(i+1)*dim], rows, &accs[i])
		}
		ctx.Counters.Cell(mapreduce.CtrCompactEvals).Add(nd)
		ctx.Counters.Cell(mapreduce.CtrCompactRechecks).Add(rechecks)
	} else {
		for i := range accs {
			accs[i].Reset(k)
		}
		kernels.TopKBatch(m.Data(), dim, qs, 0, m.N(), accs)
	}
	ctx.Counters.Cell(CtrCandidates).Add(nd)
	ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)

	var entries []kernels.TopKEntry
	for i, q := range queries {
		entries = accs[i].Append(entries[:0])
		ns := make([]Neighbor, len(entries))
		for j, e := range entries {
			ns[j] = Neighbor{ID: m.ID(int(e.Row)), D2: e.D2}
		}
		out.Emit(idKey(q.p.ID), encodePartial(partialList{QID: q.p.ID, G: q.g, Entries: ns}))
	}
	return nil
}

// MergeJob is pass 2: fold each query's per-bucket partial lists into one
// result. Entries sort by (distance, base ID) and duplicates (the same base
// point met in several buckets — identical exact distance, hence adjacent
// after the sort) collapse, so the merged order is exactly the naive
// oracle's. The guarantee radius certifies the answer: with c distinct
// candidates and verified k-th distance d_k, the result is exact iff
// c ≥ k and √d_k < g (every true neighbor strictly within g shares some
// bucket with the query), or g = +Inf (the exact pass — or an exact pass
// over an S smaller than k, where c < k is the correct full answer).
func MergeJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name: JobMerge,
		Conf: conf,
		Map: func(_ *mapreduce.TaskContext, key string, value []byte, out mapreduce.Emitter) error {
			out.Emit(key, value)
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			k := ctx.Conf.GetInt(ConfK, 1)
			var qid int32
			g := math.Inf(-1)
			var entries []Neighbor
			for i, v := range values {
				p, err := decodePartial(v)
				if err != nil {
					return err
				}
				if i == 0 {
					qid = p.QID
				} else if p.QID != qid {
					return fmt.Errorf("knnjoin: key %q mixes queries %d and %d", key, qid, p.QID)
				}
				if p.G > g {
					g = p.G
				}
				entries = append(entries, p.Entries...)
			}
			sort.Slice(entries, func(i, j int) bool {
				return entries[i].D2 < entries[j].D2 ||
					(entries[i].D2 == entries[j].D2 && entries[i].ID < entries[j].ID)
			})
			w := 0
			for i, e := range entries {
				if i > 0 && e.ID == entries[w-1].ID && e.D2 == entries[w-1].D2 {
					continue
				}
				entries[w] = e
				w++
			}
			entries = entries[:w]
			fallback := false
			if len(entries) < k {
				fallback = !math.IsInf(g, 1)
			} else {
				entries = entries[:k]
				fallback = !(math.Sqrt(entries[k-1].D2) < g)
			}
			if fallback {
				ctx.Counters.Cell(CtrFallbacks).Add(1)
			}
			out.Emit(key, encodeResult(resultRec{QID: qid, Fallback: fallback, Entries: entries}))
			return nil
		},
	}
}

// JobFactories returns the package's job registry for the distributed
// engine, mapping job names to Conf-parameterized constructors.
func JobFactories() map[string]func(mapreduce.Conf) *mapreduce.Job {
	return map[string]func(mapreduce.Conf) *mapreduce.Job{
		JobCandidates: CandidatesJob,
		JobExact:      ExactJob,
		JobMerge:      MergeJob,
	}
}
