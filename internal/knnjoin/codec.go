package knnjoin

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/points"
)

// Wire formats of the kNN-join jobs, following the repository's fixed
// little-endian layout convention (see internal/points/codec.go). Three
// record kinds flow through the pipeline:
//
//	input/bucket base record:  [1]{'b'} point
//	input query record:        [1]{'q'} point
//	bucket query record:       [1]{'Q'} [8]{g} point
//	partial top-k list:        [4]{qid} [8]{g} [4]{n} n×([4]{sid} [8]{d2})
//	merged result:             [4]{qid} [1]{status} [4]{n} n×([4]{sid} [8]{d2})
//
// The one-byte tag keeps the two join sides distinguishable inside a
// shared reducer group; the candidate map attaches each query's bucket
// guarantee radius g (lsh.Layouts.GuaranteeRadius) so the merge reducer
// can decide the exact-fallback question without re-hashing.

// Record tags.
const (
	tagQuery   = 'q' // driver input: query (R-side) point
	tagBase    = 'b' // driver input and bucket record: base (S-side) point
	tagBucketQ = 'Q' // bucket record: query annotated with its guarantee radius
)

// Result status bytes.
const (
	statusOK       = 'o' // bucket guarantee certifies the candidate top-k
	statusFallback = 'f' // query needs (or came from) the exact pass
)

// Neighbor is one join result entry: a base-side point ID and the exact
// squared distance to the query.
type Neighbor struct {
	ID int32
	D2 float64
}

// encodeTagged prefixes a point record with a side tag.
func encodeTagged(tag byte, p points.Point) []byte {
	return points.AppendPoint([]byte{tag}, p)
}

// encodeBucketQuery builds a 'Q' bucket record.
func encodeBucketQuery(g float64, p points.Point) []byte {
	buf := make([]byte, 9, 9+8+8*len(p.Pos))
	buf[0] = tagBucketQ
	binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(g))
	return points.AppendPoint(buf, p)
}

// decodeBucketQuery parses a 'Q' record.
func decodeBucketQuery(buf []byte) (g float64, p points.Point, err error) {
	if len(buf) < 9 || buf[0] != tagBucketQ {
		return 0, points.Point{}, fmt.Errorf("knnjoin: malformed bucket query record (%d bytes)", len(buf))
	}
	g = math.Float64frombits(binary.LittleEndian.Uint64(buf[1:]))
	p, rest, err := points.DecodePoint(buf[9:])
	if err != nil {
		return 0, points.Point{}, err
	}
	if len(rest) != 0 {
		return 0, points.Point{}, fmt.Errorf("knnjoin: %d trailing bytes after bucket query", len(rest))
	}
	return g, p, nil
}

// baseID reads the point ID of a tagged base record without decoding it.
func baseID(rec []byte) int32 {
	return int32(binary.LittleEndian.Uint32(rec[1:]))
}

// appendNeighbors appends a length-prefixed neighbor list.
func appendNeighbors(buf []byte, ns []Neighbor) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ns)))
	for _, n := range ns {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.D2))
	}
	return buf
}

// decodeNeighbors parses a length-prefixed neighbor list from the front of
// buf and returns the rest.
func decodeNeighbors(buf []byte) ([]Neighbor, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("knnjoin: short neighbor list header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < 12*n {
		return nil, nil, fmt.Errorf("knnjoin: short neighbor list: want %d entries, have %d bytes", n, len(buf))
	}
	ns := make([]Neighbor, n)
	for i := range ns {
		ns[i].ID = int32(binary.LittleEndian.Uint32(buf))
		ns[i].D2 = math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		buf = buf[12:]
	}
	return ns, buf, nil
}

// partialList is one bucket's verified top-k of one query.
type partialList struct {
	QID     int32
	G       float64 // bucket guarantee radius (+Inf on the exact pass)
	Entries []Neighbor
}

func encodePartial(p partialList) []byte {
	buf := make([]byte, 0, 16+12*len(p.Entries))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.QID))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.G))
	return appendNeighbors(buf, p.Entries)
}

func decodePartial(buf []byte) (partialList, error) {
	if len(buf) < 12 {
		return partialList{}, fmt.Errorf("knnjoin: short partial list (%d bytes)", len(buf))
	}
	p := partialList{
		QID: int32(binary.LittleEndian.Uint32(buf)),
		G:   math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
	}
	ns, rest, err := decodeNeighbors(buf[12:])
	if err != nil {
		return partialList{}, err
	}
	if len(rest) != 0 {
		return partialList{}, fmt.Errorf("knnjoin: %d trailing bytes after partial list", len(rest))
	}
	p.Entries = ns
	return p, nil
}

// resultRec is the merge job's per-query output.
type resultRec struct {
	QID      int32
	Fallback bool
	Entries  []Neighbor
}

func encodeResult(r resultRec) []byte {
	buf := make([]byte, 0, 9+12*len(r.Entries))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.QID))
	status := byte(statusOK)
	if r.Fallback {
		status = statusFallback
	}
	buf = append(buf, status)
	return appendNeighbors(buf, r.Entries)
}

func decodeResult(buf []byte) (resultRec, error) {
	if len(buf) < 5 {
		return resultRec{}, fmt.Errorf("knnjoin: short result record (%d bytes)", len(buf))
	}
	r := resultRec{QID: int32(binary.LittleEndian.Uint32(buf))}
	switch buf[4] {
	case statusOK:
	case statusFallback:
		r.Fallback = true
	default:
		return resultRec{}, fmt.Errorf("knnjoin: unknown result status %q", buf[4])
	}
	ns, rest, err := decodeNeighbors(buf[5:])
	if err != nil {
		return resultRec{}, err
	}
	if len(rest) != 0 {
		return resultRec{}, fmt.Errorf("knnjoin: %d trailing bytes after result", len(rest))
	}
	r.Entries = ns
	return r, nil
}
