package knnjoin

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

// Config tunes a kNN-join run. The zero value asks for sensible defaults:
// 8 layouts of 4 functions, width solved for 90% expected bucket accuracy
// from a sampled k-th-neighbor distance, full float64 scans.
type Config struct {
	// M is the number of independent LSH layouts. Default 8.
	M int
	// Pi is the number of hash functions per layout. Default 4.
	Pi int
	// W pins the LSH slot width; 0 derives it from Accuracy and a sampled
	// mean k-th-neighbor distance.
	W float64
	// Accuracy is the target certification rate the width estimate aims
	// for when W is 0 (see estimateWidth). Default 0.9. Correctness never
	// depends on it — uncertified queries re-join exactly — it only moves
	// the certified/fallback split.
	Accuracy float64
	// Seed seeds the layout draws and the width-estimation sample.
	Seed int64
	// NumReduces is the reduce-partition count of every job; <=0 lets the
	// engine pick one partition per worker.
	NumReduces int
	// ScanPrecision selects the bucket scan arithmetic: "" or
	// kernels.ScanF64 for exact float64, kernels.ScanF32 for the compact
	// mirror with exact re-rank (results are identical either way).
	ScanPrecision string
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (c *Config) m() int {
	if c.M > 0 {
		return c.M
	}
	return 8
}

func (c *Config) pi() int {
	if c.Pi > 0 {
		return c.Pi
	}
	return 4
}

func (c *Config) accuracy() float64 {
	if c.Accuracy > 0 {
		return c.Accuracy
	}
	return 0.9
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Result is the output of a kNN-join: for every query (indexed by query
// ID) its k nearest base points sorted ascending by (distance, base ID) —
// fewer than k entries only when S itself holds fewer than k points.
type Result struct {
	Neighbors [][]Neighbor
	// Fallbacks is the number of queries the bucketed pass could not
	// certify, re-joined by the exact pass (0 for RunExact).
	Fallbacks int
	// K and W record the parameters actually used.
	K int
	W float64
	// Stats aggregates the MapReduce cost counters of all passes.
	Stats core.Stats
}

// Run executes the LSH-bucketed kNN join R ⋉kNN S on the session's engine:
// a candidates+merge DAG over the hash buckets, then — for the queries
// whose bucket answer the guarantee radius could not certify — an
// exact-join DAG over just those queries. The result is bit-identical to
// RunExact (and to a single-machine full scan), including the
// lowest-ID-wins tie rule.
func Run(ctx context.Context, sess *dag.Session, R, S *points.Dataset, k int, cfg Config) (*Result, error) {
	start := time.Now()
	if err := validate(R, S, k); err != nil {
		return nil, err
	}
	mark := core.MarkRunner(sess.Runner())
	traceMark := len(sess.Traces())
	dagBefore := sess.Counters()

	w := cfg.W
	if w <= 0 {
		w = estimateWidth(R, S, k, &cfg)
	}
	conf := buildConf(R.Dim(), k, w, &cfg)
	qIn := sess.Stage("knn-R:"+R.Name, taggedPairs(tagQuery, R))
	sIn := sess.Stage("knn-S:"+S.Name, taggedPairs(tagBase, S))

	g := dag.NewGraph("knn-join")
	cand := g.Job(CandidatesJob(conf).WithReduces(cfg.NumReduces), qIn, sIn)
	merged := g.Job(MergeJob(conf).WithReduces(cfg.NumReduces), cand)
	outs, err := sess.Run(ctx, g, merged)
	if err != nil {
		return nil, err
	}
	res := &Result{Neighbors: make([][]Neighbor, R.N()), K: k, W: w}
	fallback, err := decodeResults(res.Neighbors, outs[0])
	if err != nil {
		return nil, err
	}
	cfg.logf("knnjoin: bucketed pass certified %d/%d queries", R.N()-len(fallback), R.N())

	if len(fallback) > 0 {
		fbPairs := make([]mapreduce.Pair, len(fallback))
		for i, qid := range fallback {
			fbPairs[i] = mapreduce.Pair{Value: encodeTagged(tagQuery, R.Points[qid])}
		}
		fbIn := sess.Stage("knn-Rfb:"+R.Name, fbPairs)
		g2 := dag.NewGraph("knn-join-exact")
		ex := g2.Job(ExactJob(conf).WithReduces(cfg.NumReduces), fbIn, sIn)
		merged2 := g2.Job(MergeJob(conf).WithReduces(cfg.NumReduces), ex)
		outs2, err := sess.Run(ctx, g2, merged2)
		if err != nil {
			return nil, err
		}
		if _, err := decodeResults(res.Neighbors, outs2[0]); err != nil {
			return nil, err
		}
	}
	res.Fallbacks = len(fallback)
	res.Stats.W = w
	res.Stats.M = cfg.m()
	res.Stats.Pi = cfg.pi()
	core.CollectStats(&res.Stats, sess.Runner(), mark, start)
	core.CollectDagStats(&res.Stats, sess, traceMark, dagBefore)
	return res, nil
}

// RunExact executes the broadcast-naive exact join: base records partition
// by ID, every query visits every partition. It is the oracle Run is
// conformance-tested against and the engine of centroid scoring, where S
// is small enough that bucketing buys nothing.
func RunExact(ctx context.Context, sess *dag.Session, R, S *points.Dataset, k int, cfg Config) (*Result, error) {
	start := time.Now()
	if err := validate(R, S, k); err != nil {
		return nil, err
	}
	mark := core.MarkRunner(sess.Runner())
	traceMark := len(sess.Traces())
	dagBefore := sess.Counters()

	conf := buildConf(R.Dim(), k, 1, &cfg)
	qIn := sess.Stage("knn-R:"+R.Name, taggedPairs(tagQuery, R))
	sIn := sess.Stage("knn-S:"+S.Name, taggedPairs(tagBase, S))
	g := dag.NewGraph("knn-join-exact")
	ex := g.Job(ExactJob(conf).WithReduces(cfg.NumReduces), qIn, sIn)
	merged := g.Job(MergeJob(conf).WithReduces(cfg.NumReduces), ex)
	outs, err := sess.Run(ctx, g, merged)
	if err != nil {
		return nil, err
	}
	res := &Result{Neighbors: make([][]Neighbor, R.N()), K: k}
	if _, err := decodeResults(res.Neighbors, outs[0]); err != nil {
		return nil, err
	}
	core.CollectStats(&res.Stats, sess.Runner(), mark, start)
	core.CollectDagStats(&res.Stats, sess, traceMark, dagBefore)
	return res, nil
}

func validate(R, S *points.Dataset, k int) error {
	if k < 1 {
		return fmt.Errorf("knnjoin: k must be at least 1, got %d", k)
	}
	if err := R.Validate(); err != nil {
		return err
	}
	if err := S.Validate(); err != nil {
		return err
	}
	if R.N() == 0 {
		return fmt.Errorf("knnjoin: empty query set")
	}
	if S.N() == 0 {
		return fmt.Errorf("knnjoin: empty base set")
	}
	if R.Dim() != S.Dim() {
		return fmt.Errorf("knnjoin: query dim %d, base dim %d", R.Dim(), S.Dim())
	}
	return nil
}

func buildConf(dim, k int, w float64, cfg *Config) mapreduce.Conf {
	conf := mapreduce.Conf{}
	conf.SetInt(ConfK, k)
	conf.SetInt(ConfDim, dim)
	conf.SetInt(ConfM, cfg.m())
	conf.SetInt(ConfPi, cfg.pi())
	conf.SetFloat(ConfW, w)
	conf.SetInt64(ConfSeed, cfg.Seed)
	if cfg.ScanPrecision != "" {
		conf[kernels.ConfScanPrecision] = cfg.ScanPrecision
	}
	return conf
}

// taggedPairs encodes a dataset as side-tagged input records.
func taggedPairs(tag byte, ds *points.Dataset) []mapreduce.Pair {
	in := make([]mapreduce.Pair, ds.N())
	for i, p := range ds.Points {
		in[i] = mapreduce.Pair{Value: encodeTagged(tag, p)}
	}
	return in
}

// decodeResults fills dst (indexed by query ID) from merge-job output and
// returns the IDs flagged for the exact pass, ascending.
func decodeResults(dst [][]Neighbor, pairs []mapreduce.Pair) ([]int32, error) {
	var fallback []int32
	seen := make(map[int32]bool, len(pairs))
	for _, pr := range pairs {
		r, err := decodeResult(pr.Value)
		if err != nil {
			return nil, err
		}
		if int(r.QID) < 0 || int(r.QID) >= len(dst) {
			return nil, fmt.Errorf("knnjoin: result for unknown query %d", r.QID)
		}
		if seen[r.QID] {
			return nil, fmt.Errorf("knnjoin: duplicate result for query %d", r.QID)
		}
		seen[r.QID] = true
		if r.Fallback {
			fallback = append(fallback, r.QID)
			continue
		}
		dst[r.QID] = r.Entries
	}
	sortInt32s(fallback)
	return fallback, nil
}

func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// estimateWidth derives the LSH slot width from a seeded sample: the mean
// k-th-neighbor distance of up to 64 sampled queries against up to
// max(16384, 64k) sampled base points stands in for d_k. Subsampling S only
// inflates the estimate — the k-th neighbor in a subsample is farther than
// in all of S — which widens slots and trades replication for fewer
// fallbacks, never correctness.
//
// Unlike the density pass, which only needs the paper's probabilistic
// collision accuracy (lsh.SolveWidth, w ≈ 6 d_c), the join certifies each
// query deterministically: the guarantee radius min_j edge_j·w/‖a_j‖ must
// exceed d_k. The per-function edge fraction is U(0, ½) and ‖a_j‖ ≈ √dim,
// so a function certifies with probability ≈ 1 − 2 d_k √dim / w and the
// width that reaches the target accuracy across M layouts of π functions is
//
//	w = 2 d_k √dim / (1 − q),  q = RequiredPerFuncProb(accuracy, π, M)
//
// — roughly 1.25·√dim times the paper's width, the price of an exactness
// certificate instead of a probabilistic one.
func estimateWidth(R, S *points.Dataset, k int, cfg *Config) float64 {
	rng := points.NewRand(cfg.Seed + 0x5d7e)
	dim := S.Dim()
	nb := 64 * k
	if nb < 16384 {
		nb = 16384
	}
	base := samplePositions(S, nb, rng)
	nBase := len(base) / dim
	kk := k
	if kk > nBase {
		kk = nBase
	}
	queries := samplePositions(R, 64, rng)
	acc := kernels.NewTopKAcc(kk)
	var entries []kernels.TopKEntry
	var sum float64
	nq := len(queries) / dim
	for i := 0; i < nq; i++ {
		acc.Reset(kk)
		kernels.TopKRange(base, dim, queries[i*dim:(i+1)*dim], 0, nBase, acc)
		entries = acc.Append(entries[:0])
		if len(entries) > 0 {
			sum += math.Sqrt(entries[len(entries)-1].D2)
		}
	}
	dc := sum / float64(nq)
	if !(dc > 0) || math.IsInf(dc, 1) {
		cfg.logf("knnjoin: degenerate sampled k-distance %v, width 1", dc)
		return 1
	}
	q := lsh.RequiredPerFuncProb(cfg.accuracy(), cfg.pi(), cfg.m())
	if !(q < 1) {
		cfg.logf("knnjoin: accuracy %v unreachable; falling back to 4·d_k", cfg.accuracy())
		return 4 * dc
	}
	w := 2 * dc * math.Sqrt(float64(dim)) / (1 - q)
	cfg.logf("knnjoin: sampled k-distance %.4g, width %.4g", dc, w)
	return w
}

// samplePositions returns a flat block of up to n point positions drawn
// without replacement (all of them, in order, when the set is small).
func samplePositions(ds *points.Dataset, n int, rng *points.Rand) []float64 {
	dim := ds.Dim()
	if ds.N() <= n {
		out := make([]float64, 0, ds.N()*dim)
		for _, p := range ds.Points {
			out = append(out, p.Pos...)
		}
		return out
	}
	perm := rng.Perm(ds.N())[:n]
	out := make([]float64, 0, n*dim)
	for _, i := range perm {
		out = append(out, ds.Points[i].Pos...)
	}
	return out
}
