package knnjoin_test

import (
	"context"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernels"
	"repro/internal/knnjoin"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/mapreduce/rpcmr"
	"repro/internal/points"
)

// naiveKNN is the single-machine oracle: for every query the full scan of
// S sorted by (squared distance, base ID), truncated to k. The distance
// accumulates term by term, which is bit-identical to sqDistFlat's
// unrolled shapes, so comparisons against the MapReduce result can demand
// exact equality.
func naiveKNN(R, S *points.Dataset, k int) [][]knnjoin.Neighbor {
	out := make([][]knnjoin.Neighbor, R.N())
	for qi, q := range R.Points {
		all := make([]knnjoin.Neighbor, 0, S.N())
		for _, s := range S.Points {
			var d2 float64
			for j := range q.Pos {
				d := q.Pos[j] - s.Pos[j]
				d2 += d * d
			}
			all = append(all, knnjoin.Neighbor{ID: s.ID, D2: d2})
		}
		sort.Slice(all, func(i, j int) bool {
			return all[i].D2 < all[j].D2 ||
				(all[i].D2 == all[j].D2 && all[i].ID < all[j].ID)
		})
		if len(all) > k {
			all = all[:k]
		}
		out[qi] = all
	}
	return out
}

func localSession() *dag.Session {
	return dag.NewSession(mapreduce.NewDriver(&mapreduce.LocalEngine{Parallelism: 4}), dag.Options{})
}

func requireSameNeighbors(t *testing.T, got, want [][]knnjoin.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("query count: got %d want %d", len(got), len(want))
	}
	for qid := range want {
		if len(got[qid]) != len(want[qid]) {
			t.Fatalf("query %d: got %d neighbors want %d", qid, len(got[qid]), len(want[qid]))
		}
		for i := range want[qid] {
			if got[qid][i] != want[qid][i] {
				t.Fatalf("query %d entry %d: got %+v want %+v", qid, i, got[qid][i], want[qid][i])
			}
		}
	}
}

func splitBlobs(t *testing.T, name string, n, dim, nR int, seed int64) (*points.Dataset, *points.Dataset) {
	t.Helper()
	ds := dataset.Blobs(name, n, dim, 4, 120, 3, seed)
	R, S, err := dataset.Split(ds, nR, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return R, S
}

func TestJoinMatchesOracleLocal(t *testing.T) {
	R, S := splitBlobs(t, "knn-oracle", 700, 2, 150, 21)
	want := naiveKNN(R, S, 5)
	for _, tc := range []struct {
		name string
		cfg  knnjoin.Config
	}{
		{"f64", knnjoin.Config{Seed: 3, NumReduces: 4}},
		{"f32", knnjoin.Config{Seed: 3, NumReduces: 4, ScanPrecision: kernels.ScanF32}},
		{"narrow-m", knnjoin.Config{Seed: 5, M: 2, Pi: 6, NumReduces: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := knnjoin.Run(context.Background(), localSession(), R, S, 5, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSameNeighbors(t, res.Neighbors, want)
		})
	}
}

func TestExactMatchesOracle(t *testing.T) {
	R, S := splitBlobs(t, "knn-exact", 500, 3, 120, 7)
	for _, k := range []int{1, 4, 11} {
		res, err := knnjoin.RunExact(context.Background(), localSession(), R, S, k, knnjoin.Config{NumReduces: 3})
		if err != nil {
			t.Fatal(err)
		}
		requireSameNeighbors(t, res.Neighbors, naiveKNN(R, S, k))
		if res.Fallbacks != 0 {
			t.Fatalf("k=%d: exact join reported %d fallbacks", k, res.Fallbacks)
		}
	}
}

// TestKLargerThanBase pins the |S| < k contract: every query gets all of S
// and the exact pass resolves the short lists without flagging fallbacks
// forever.
func TestKLargerThanBase(t *testing.T) {
	R, S := splitBlobs(t, "knn-small", 40, 2, 30, 9)
	res, err := knnjoin.Run(context.Background(), localSession(), R, S, S.N()+5, knnjoin.Config{Seed: 2, NumReduces: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireSameNeighbors(t, res.Neighbors, naiveKNN(R, S, S.N()+5))
	for qid, ns := range res.Neighbors {
		if len(ns) != S.N() {
			t.Fatalf("query %d: %d neighbors, want all %d of S", qid, len(ns), S.N())
		}
	}
}

// TestNarrowWidthForcesFallbacks pins the exact-fallback path: a slot
// width far below the k-th-neighbor distance makes the guarantee radius
// reject (almost) every bucketed answer, the knn.exact.fallbacks counter
// fires, and the final result is still bit-identical to the oracle.
func TestNarrowWidthForcesFallbacks(t *testing.T) {
	R, S := splitBlobs(t, "knn-fallback", 400, 2, 80, 13)
	sess := localSession()
	res, err := knnjoin.Run(context.Background(), sess, R, S, 3, knnjoin.Config{Seed: 4, W: 1e-3, NumReduces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks == 0 {
		t.Fatal("narrow width produced no fallbacks; the exact pass went untested")
	}
	var ctr int64
	for _, j := range res.Stats.Jobs {
		ctr += j.Counters[knnjoin.CtrFallbacks]
	}
	if ctr != int64(res.Fallbacks) {
		t.Fatalf("knn.exact.fallbacks counter %d, driver saw %d", ctr, res.Fallbacks)
	}
	requireSameNeighbors(t, res.Neighbors, naiveKNN(R, S, 3))
}

// TestWideWidthCertifies is the other side: a generous width must certify
// at least some queries (otherwise the bucketed pass is dead weight), and
// the candidates counter must show the bucketed pass scanned fewer pairs
// than the naive |R|·|S| product... per layout replica.
func TestWideWidthCertifies(t *testing.T) {
	R, S := splitBlobs(t, "knn-wide", 600, 2, 120, 31)
	res, err := knnjoin.Run(context.Background(), localSession(), R, S, 3, knnjoin.Config{Seed: 6, Accuracy: 0.95, NumReduces: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks == len(res.Neighbors) {
		t.Fatal("every query fell back; the guarantee radius never certified anything")
	}
	requireSameNeighbors(t, res.Neighbors, naiveKNN(R, S, 3))
	var cand int64
	for _, j := range res.Stats.Jobs {
		cand += j.Counters[knnjoin.CtrCandidates]
	}
	if cand == 0 {
		t.Fatal("knn.candidates counter never fired")
	}
}

func sumCounter(stats []mapreduce.JobStats, name string) int64 {
	var s int64
	for _, j := range stats {
		s += j.Counters[name]
	}
	return s
}

// TestClusterConformance pins the join bit-identical across the local
// engine, a 3-worker rpcmr cluster, and the naive oracle — outputs and
// the deterministic cost counters both.
func TestClusterConformance(t *testing.T) {
	rpcmr.RegisterJobs(knnjoin.JobFactories())
	master, err := rpcmr.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var workers []*rpcmr.Worker
	for i := 0; i < 3; i++ {
		w, err := rpcmr.StartWorker(master.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	R, S := splitBlobs(t, "knn-cluster", 500, 2, 100, 41)
	for _, tc := range []struct {
		name string
		cfg  knnjoin.Config
	}{
		{"f64", knnjoin.Config{Seed: 8, NumReduces: 4}},
		{"f32", knnjoin.Config{Seed: 8, NumReduces: 4, ScanPrecision: kernels.ScanF32}},
		{"fallback-heavy", knnjoin.Config{Seed: 8, W: 1e-3, NumReduces: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			local, err := knnjoin.Run(context.Background(), localSession(), R, S, 4, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			clus, err := knnjoin.Run(context.Background(),
				dag.NewSession(mapreduce.NewDriver(master), dag.Options{}), R, S, 4, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSameNeighbors(t, clus.Neighbors, local.Neighbors)
			requireSameNeighbors(t, local.Neighbors, naiveKNN(R, S, 4))
			if clus.Fallbacks != local.Fallbacks {
				t.Fatalf("fallbacks: cluster %d local %d", clus.Fallbacks, local.Fallbacks)
			}
			for _, ctr := range []string{knnjoin.CtrCandidates, knnjoin.CtrFallbacks, mapreduce.CtrDistanceComputations} {
				if c, l := sumCounter(clus.Stats.Jobs, ctr), sumCounter(local.Stats.Jobs, ctr); c != l {
					t.Fatalf("%s: cluster %d local %d", ctr, c, l)
				}
			}
		})
	}
}
