// Package kmeansmr implements distributed K-means on the internal
// MapReduce framework — the paper's Figure 11 comparator. Each Lloyd
// iteration is one MapReduce job with the classic dataflow: the map side
// assigns every point to its nearest centroid and emits a partial sum, a
// combiner collapses partial sums per centroid within each map task, and
// the reduce side recomputes centroids. Centroids travel to tasks through
// the job Conf (as Hadoop ships them via the distributed cache), so the
// jobs run unchanged on the distributed engine.
package kmeansmr

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

// JobIterate is the registry name of the per-iteration job.
const JobIterate = "kmeans-iterate"

const (
	confCentroids = "kmeans.centroids"
	confK         = "kmeans.k"
)

// Config tunes a run.
type Config struct {
	// Engine runs the jobs; nil means a default LocalEngine.
	Engine mapreduce.Engine
	// K is the number of clusters (required).
	K int
	// MaxIter bounds the iterations (default 100, the paper's setting).
	MaxIter int
	// Tol stops early when no centroid moves more than Tol (0 disables
	// early stopping, matching the paper's fixed 100 iterations).
	Tol float64
	// Seed drives the k-means++ style initialization.
	Seed int64
	// NumReduces is the reduce-task count; <=0 lets the engine decide.
	NumReduces int
	// Log, when non-nil, receives one line per iteration.
	Log func(format string, args ...interface{})
}

// IterStats records one executed iteration.
type IterStats struct {
	Iteration    int
	Wall         time.Duration
	ShuffleBytes int64
	Distances    int64
	MaxMove      float64
}

// Result is the outcome of a distributed K-means run.
type Result struct {
	Labels     []int
	Centers    []points.Vector
	Iterations []IterStats
	// Wall is the summed job wall time (the Figure 11 y-axis).
	Wall time.Duration
	// ShuffleBytes and Distances are totals across iterations.
	ShuffleBytes int64
	Distances    int64
	// Dag holds the run's dag.* scheduler counters. In particular
	// dag.stage.bytes records the input volume staged ONCE for the whole
	// run — the regression signal that iterations no longer re-stage the
	// dataset each round.
	Dag map[string]int64
}

// Run executes distributed K-means. The input is staged on the DAG
// session once and every Lloyd iteration is scheduled as a one-node graph
// over the same staged dataset — 100 iterations stage the points one
// time, not 100 times. Labels are computed from the final centroids in a
// last pass (counted in Distances but not as an iteration).
func Run(ctx context.Context, ds *points.Dataset, cfg Config) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K > ds.N() {
		return nil, fmt.Errorf("kmeansmr: k=%d out of range for %d points", cfg.K, ds.N())
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	eng := cfg.Engine
	if eng == nil {
		eng = &mapreduce.LocalEngine{}
	}
	drv := mapreduce.NewDriver(eng)
	sess := dag.NewSession(drv, dag.Options{Log: cfg.Log})
	input := sess.Stage("kmeans-points", core.InputPairs(ds))
	centers := initialCenters(ds, cfg.K, cfg.Seed)
	res := &Result{}

	for it := 0; it < maxIter; it++ {
		conf := mapreduce.Conf{}
		conf.SetInt(confK, cfg.K)
		conf[confCentroids] = encodeCentroids(centers)
		g := dag.NewGraph(fmt.Sprintf("kmeans-iter-%03d", it+1))
		node := g.Job(IterateJob(conf).WithReduces(cfg.NumReduces), input)
		outs, err := sess.Run(ctx, g, node)
		if err != nil {
			return nil, fmt.Errorf("kmeansmr: iteration %d: %w", it, err)
		}
		next, err := decodeNewCentroids(outs[0], centers)
		if err != nil {
			return nil, err
		}
		var maxMove float64
		for c := range centers {
			if d := points.Dist(centers[c], next[c]); d > maxMove {
				maxMove = d
			}
		}
		centers = next
		jobs := drv.Jobs()
		jst := jobs[len(jobs)-1]
		st := IterStats{
			Iteration:    it + 1,
			Wall:         jst.Wall,
			ShuffleBytes: jst.Counters[mapreduce.CtrShuffleBytes],
			Distances:    jst.Counters[mapreduce.CtrDistanceComputations],
			MaxMove:      maxMove,
		}
		res.Iterations = append(res.Iterations, st)
		res.Wall += st.Wall
		res.ShuffleBytes += st.ShuffleBytes
		res.Distances += st.Distances
		if cfg.Log != nil {
			cfg.Log("kmeans iter %3d  %8.3fs  maxMove=%.6g", st.Iteration, st.Wall.Seconds(), maxMove)
		}
		if cfg.Tol > 0 && maxMove <= cfg.Tol {
			break
		}
	}
	res.Dag = sess.Counters()

	res.Centers = centers
	res.Labels = make([]int, ds.N())
	for i, p := range ds.Points {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if d := points.SqDist(p.Pos, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		res.Labels[i] = best
		res.Distances += int64(cfg.K)
	}
	return res, nil
}

// initialCenters picks k distinct points deterministically (seeded
// permutation — the cheap initialization a distributed run would sample).
func initialCenters(ds *points.Dataset, k int, seed int64) []points.Vector {
	rng := points.NewRand(seed + 77)
	perm := rng.Perm(ds.N())
	centers := make([]points.Vector, k)
	for i := 0; i < k; i++ {
		centers[i] = ds.Points[perm[i]].Pos.Clone()
	}
	return centers
}

// IterateJob builds the per-iteration job from a conf carrying centroids.
func IterateJob(conf mapreduce.Conf) *mapreduce.Job {
	return &mapreduce.Job{
		Name:    JobIterate,
		Conf:    conf,
		Map:     assignMap,
		Combine: sumPartials,
		Reduce:  recenterReduce,
	}
}

// assignMap assigns a point to its nearest centroid and emits a partial
// sum record (count=1, sum=point).
func assignMap(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
	centers, err := centroidsFromConf(ctx.Conf)
	if err != nil {
		return err
	}
	p, _, err := points.DecodePoint(value)
	if err != nil {
		return err
	}
	best, bestD := 0, math.Inf(1)
	for c, ctr := range centers {
		if d := points.SqDist(p.Pos, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(int64(len(centers)))
	out.Emit(strconv.Itoa(best), encodePartial(1, p.Pos))
	return nil
}

// sumPartials folds partial sums; used as combiner and inside the reducer.
func sumPartials(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
	count, sum, err := foldPartials(values)
	if err != nil {
		return err
	}
	out.Emit(key, encodePartial(count, sum))
	return nil
}

// recenterReduce emits the new centroid for one cluster.
func recenterReduce(_ *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
	count, sum, err := foldPartials(values)
	if err != nil {
		return err
	}
	if count > 0 {
		sum.Scale(1 / float64(count))
	}
	out.Emit(key, encodePartial(count, sum))
	return nil
}

func foldPartials(values [][]byte) (int64, points.Vector, error) {
	var count int64
	var sum points.Vector
	for _, v := range values {
		c, s, err := decodePartial(v)
		if err != nil {
			return 0, nil, err
		}
		count += c
		if sum == nil {
			sum = s.Clone()
		} else {
			sum.Add(s)
		}
	}
	return count, sum, nil
}

// partial record: int64 count | uint32 dim | dim float64 sums.
func encodePartial(count int64, sum points.Vector) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, uint64(count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sum)))
	for _, x := range sum {
		buf = points.AppendFloat64(buf, x)
	}
	return buf
}

func decodePartial(v []byte) (int64, points.Vector, error) {
	if len(v) < 12 {
		return 0, nil, fmt.Errorf("kmeansmr: short partial (%d bytes)", len(v))
	}
	count := int64(binary.LittleEndian.Uint64(v))
	dim := int(binary.LittleEndian.Uint32(v[8:]))
	if len(v) != 12+8*dim {
		return 0, nil, fmt.Errorf("kmeansmr: partial is %d bytes, want %d", len(v), 12+8*dim)
	}
	sum := make(points.Vector, dim)
	for j := 0; j < dim; j++ {
		sum[j] = points.DecodeFloat64(v[12+8*j:])
	}
	return count, sum, nil
}

// encodeCentroids ships centroids through the Conf.
func encodeCentroids(cs []points.Vector) string {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cs)))
	for i, c := range cs {
		buf = points.AppendPoint(buf, points.Point{ID: int32(i), Pos: c})
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func centroidsFromConf(conf mapreduce.Conf) ([]points.Vector, error) {
	raw, err := base64.StdEncoding.DecodeString(conf[confCentroids])
	if err != nil {
		return nil, fmt.Errorf("kmeansmr: bad centroid encoding: %w", err)
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("kmeansmr: short centroid blob")
	}
	k := int(binary.LittleEndian.Uint32(raw))
	raw = raw[4:]
	cs := make([]points.Vector, k)
	for i := 0; i < k; i++ {
		p, rest, err := points.DecodePoint(raw)
		if err != nil {
			return nil, err
		}
		cs[i] = p.Pos
		raw = rest
	}
	return cs, nil
}

// decodeNewCentroids reads the reduce output; clusters that received no
// points keep their previous centroid.
func decodeNewCentroids(out []mapreduce.Pair, prev []points.Vector) ([]points.Vector, error) {
	next := make([]points.Vector, len(prev))
	for i := range next {
		next[i] = prev[i]
	}
	for _, pr := range out {
		c, err := strconv.Atoi(pr.Key)
		if err != nil {
			return nil, fmt.Errorf("kmeansmr: bad cluster key %q", pr.Key)
		}
		if c < 0 || c >= len(prev) {
			return nil, fmt.Errorf("kmeansmr: cluster key %d out of range", c)
		}
		count, sum, err := decodePartial(pr.Value)
		if err != nil {
			return nil, err
		}
		if count > 0 {
			next[c] = sum
		}
	}
	return next, nil
}
