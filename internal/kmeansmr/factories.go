package kmeansmr

import "repro/internal/mapreduce"

// JobFactories returns registry entries for the K-means jobs, for use with
// rpcmr.RegisterJobs on distributed workers.
func JobFactories() map[string]func(mapreduce.Conf) *mapreduce.Job {
	return map[string]func(mapreduce.Conf) *mapreduce.Job{
		JobIterate: IterateJob,
	}
}
