package kmeansmr

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/evalmetrics"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/dag"
	"repro/internal/points"
)

func testEngine() mapreduce.Engine { return &mapreduce.LocalEngine{Parallelism: 4} }

func TestRecoversSeparatedClusters(t *testing.T) {
	ds := dataset.Blobs("kmr", 600, 2, 4, 500, 2, 3)
	res, err := Run(context.Background(), ds, Config{Engine: testEngine(), K: 4, MaxIter: 30, Tol: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := evalmetrics.ARI(ds.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.99 {
		t.Fatalf("ARI = %v, want ~1 on separated blobs", ari)
	}
	if len(res.Iterations) == 0 || len(res.Iterations) > 30 {
		t.Fatalf("%d iterations recorded", len(res.Iterations))
	}
	if res.Wall <= 0 || res.Distances <= 0 || res.ShuffleBytes <= 0 {
		t.Fatalf("stats not recorded: %+v", res)
	}
}

func TestEarlyStopOnTolerance(t *testing.T) {
	ds := dataset.Blobs("kmr-tol", 300, 2, 3, 500, 1, 5)
	res, err := Run(context.Background(), ds, Config{Engine: testEngine(), K: 3, MaxIter: 100, Tol: 1e-6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) >= 100 {
		t.Fatal("never converged on trivially separated data")
	}
	last := res.Iterations[len(res.Iterations)-1]
	if last.MaxMove > 1e-6 {
		t.Fatalf("stopped with maxMove %v", last.MaxMove)
	}
}

func TestFixedIterationsWithoutTol(t *testing.T) {
	ds := dataset.Blobs("kmr-fixed", 200, 2, 2, 100, 2, 7)
	res, err := Run(context.Background(), ds, Config{Engine: testEngine(), K: 2, MaxIter: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 7 {
		t.Fatalf("ran %d iterations, want exactly 7 (paper style)", len(res.Iterations))
	}
}

func TestMatchesSequentialLloydFromSameInit(t *testing.T) {
	// Given identical initial centers, the distributed per-iteration job
	// must reproduce sequential Lloyd exactly.
	ds := dataset.Blobs("kmr-lloyd", 400, 3, 3, 200, 5, 11)
	k := 3
	centers := initialCenters(ds, k, 42)

	// Sequential Lloyd from the same centers.
	seq := make([]points.Vector, k)
	for i := range centers {
		seq[i] = centers[i].Clone()
	}
	for it := 0; it < 5; it++ {
		sums := make([]points.Vector, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make(points.Vector, ds.Dim())
		}
		for _, p := range ds.Points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range seq {
				if d := points.SqDist(p.Pos, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			sums[best].Add(p.Pos)
			counts[best]++
		}
		for c := range seq {
			if counts[c] > 0 {
				sums[c].Scale(1 / float64(counts[c]))
				seq[c] = sums[c]
			}
		}
	}

	// Distributed: 5 iterations with the same seed (hence same init).
	res, err := Run(context.Background(), ds, Config{Engine: testEngine(), K: k, MaxIter: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for c := range seq {
		for j := range seq[c] {
			if math.Abs(res.Centers[c][j]-seq[c][j]) > 1e-9 {
				t.Fatalf("center %d dim %d: distributed %v, sequential %v",
					c, j, res.Centers[c][j], seq[c][j])
			}
		}
	}
}

func TestCombinerBoundsShuffle(t *testing.T) {
	// With a combiner, per-iteration shuffle is O(maps × k × dim) records,
	// independent of N.
	small := dataset.Blobs("kmr-small", 200, 4, 3, 100, 2, 13)
	big := dataset.Blobs("kmr-big", 2000, 4, 3, 100, 2, 13)
	resSmall, err := Run(context.Background(), small, Config{Engine: testEngine(), K: 3, MaxIter: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := Run(context.Background(), big, Config{Engine: testEngine(), K: 3, MaxIter: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resBig.Iterations[0].ShuffleBytes > resSmall.Iterations[0].ShuffleBytes*3 {
		t.Fatalf("shuffle grew with N despite combiner: %d vs %d",
			resBig.Iterations[0].ShuffleBytes, resSmall.Iterations[0].ShuffleBytes)
	}
}

func TestValidation(t *testing.T) {
	ds := dataset.Blobs("kmr-bad", 50, 2, 2, 100, 2, 1)
	if _, err := Run(context.Background(), ds, Config{Engine: testEngine(), K: 0}); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := Run(context.Background(), ds, Config{Engine: testEngine(), K: 51}); err == nil {
		t.Fatal("want error for k>N")
	}
}

func TestCentroidCodecRoundTrip(t *testing.T) {
	cs := []points.Vector{{1, 2, 3}, {-4, 0, 9.5}}
	conf := mapreduce.Conf{confCentroids: encodeCentroids(cs)}
	got, err := centroidsFromConf(conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][2] != 9.5 {
		t.Fatalf("round trip = %v", got)
	}
	if _, err := centroidsFromConf(mapreduce.Conf{confCentroids: "!!!"}); err == nil {
		t.Fatal("want decode error")
	}
}

func TestPartialCodec(t *testing.T) {
	count, sum, err := decodePartial(encodePartial(7, points.Vector{1.5, -2}))
	if err != nil || count != 7 || sum[0] != 1.5 || sum[1] != -2 {
		t.Fatalf("partial round trip: %d %v %v", count, sum, err)
	}
	if _, _, err := decodePartial([]byte{1, 2}); err == nil {
		t.Fatal("want short-partial error")
	}
}

// TestStagesInputOnceAcrossIterations is the regression guard for the
// old behavior of re-encoding and re-staging the full dataset on every
// Lloyd iteration: the run's dag counters must show exactly one staged
// dataset whose byte volume equals one encoding of the input, however
// many iterations execute.
func TestStagesInputOnceAcrossIterations(t *testing.T) {
	ds := dataset.Blobs("kmr-stage", 400, 3, 3, 200, 2, 9)
	res, err := Run(context.Background(), ds, Config{Engine: testEngine(), K: 3, MaxIter: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 6 {
		t.Fatalf("ran %d iterations, want 6", len(res.Iterations))
	}
	if n := res.Dag[dag.CtrStageDatasets]; n != 1 {
		t.Fatalf("staged %d datasets across 6 iterations, want 1", n)
	}
	once := mapreduce.PairsBytes(core.InputPairs(ds))
	if b := res.Dag[dag.CtrStageBytes]; b != once {
		t.Fatalf("staged %d bytes, want exactly one input encoding (%d)", b, once)
	}
	if n := res.Dag[dag.CtrNodes]; n != 6 {
		t.Fatalf("scheduler executed %d job nodes, want 6", n)
	}
}
