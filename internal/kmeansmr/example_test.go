package kmeansmr_test

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/kmeansmr"
	"repro/internal/mapreduce"
)

// One distributed K-means run with early stopping.
func ExampleRun() {
	ds := dataset.Blobs("km", 300, 2, 3, 400, 2, 5)
	res, err := kmeansmr.Run(context.Background(), ds, kmeansmr.Config{
		Engine:  &mapreduce.LocalEngine{Parallelism: 2},
		K:       3,
		MaxIter: 50,
		Tol:     1e-9,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	sizes := map[int]int{}
	for _, l := range res.Labels {
		sizes[l]++
	}
	fmt.Printf("%d clusters over %d points, converged in %d iterations\n",
		len(res.Centers), ds.N(), len(res.Iterations))
	// Output:
	// 3 clusters over 300 points, converged in 3 iterations
}
