package serve_test

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/model"
	"repro/internal/points"
	"repro/internal/serve"
)

func asVecs(qs [][]float64) []points.Vector {
	vs := make([]points.Vector, len(qs))
	for i, q := range qs {
		vs[i] = q
	}
	return vs
}

// precisionQueries builds a mixed query workload against mdl: nudged
// training rows (LSH buckets hit), fresh random points near the data, and
// far-out points that force the exact full-scan fallback.
func precisionQueries(mdl *model.Model) [][]float64 {
	rng := rand.New(rand.NewSource(99))
	var qs [][]float64
	for i := 0; i < mdl.N(); i += 7 {
		q := append([]float64(nil), mdl.Row(i)...)
		q[rng.Intn(mdl.Dim)] += mdl.Dc * (rng.Float64() - 0.5)
		qs = append(qs, q)
	}
	for i := 0; i < 50; i++ {
		q := make([]float64, mdl.Dim)
		for d := range q {
			q[d] = rng.NormFloat64() * 50
		}
		qs = append(qs, q)
	}
	for i := 0; i < 10; i++ { // far from every bucket: exact fallback
		q := make([]float64, mdl.Dim)
		for d := range q {
			q[d] = 1e6 + float64(i)
		}
		qs = append(qs, q)
	}
	return qs
}

// TestPrecisionConformance pins the compact scan path's core promise: f32
// and q8 serving produces assignments bit-identical to the f64 baseline —
// same cluster, halo flag, nearest row (including the lowest-index tie
// rule), and the same float64 distances — on both the LSH-pruned and the
// exact-scan path.
func TestPrecisionConformance(t *testing.T) {
	mdl, _, _ := trainModel(t, 1500, 4)
	base, err := serve.NewEngine(mdl, serve.PrecF64)
	if err != nil {
		t.Fatal(err)
	}
	qs := precisionQueries(mdl)
	for _, prec := range []serve.Precision{serve.PrecF32, serve.PrecQ8} {
		eng, err := serve.NewEngine(mdl, prec)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.Precision(); got != prec {
			t.Fatalf("engine downgraded %s to %s on a well-behaved model", prec, got)
		}
		for _, exactOnly := range []bool{false, true} {
			for qi, q := range qs {
				want, _, err := base.Assign(q, exactOnly)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := eng.Assign(q, exactOnly)
				if err != nil {
					t.Fatalf("%s query %d: %v", prec, qi, err)
				}
				if got != want {
					t.Fatalf("%s exactOnly=%v query %d: %+v, f64 says %+v", prec, exactOnly, qi, got, want)
				}
			}
		}
	}
}

// TestAssignBatchMatchesSequential checks that the batched entry point is
// answer-for-answer identical to one Assign call per query, at every
// precision, and that a query without a finite distance fails alone
// without poisoning the rest of its batch.
func TestAssignBatchMatchesSequential(t *testing.T) {
	mdl, _, _ := trainModel(t, 800, 3)
	qs := precisionQueries(mdl)
	for _, prec := range []serve.Precision{serve.PrecF64, serve.PrecF32, serve.PrecQ8} {
		eng, err := serve.NewEngine(mdl, prec)
		if err != nil {
			t.Fatal(err)
		}
		for _, exactOnly := range []bool{false, true} {
			out, errs, st := eng.AssignBatch(asVecs(qs), exactOnly)
			var wantScanned int64
			for i, q := range qs {
				if errs[i] != nil {
					t.Fatalf("%s batch query %d: %v", prec, i, errs[i])
				}
				want, sc, err := eng.Assign(q, exactOnly)
				if err != nil {
					t.Fatal(err)
				}
				if out[i] != want {
					t.Fatalf("%s exactOnly=%v query %d: batch %+v, sequential %+v", prec, exactOnly, i, out[i], want)
				}
				wantScanned += int64(sc)
			}
			if st.Scanned != wantScanned {
				t.Errorf("%s exactOnly=%v: batch scanned %d rows, sequential %d", prec, exactOnly, st.Scanned, wantScanned)
			}
			if prec != serve.PrecF64 && st.RerankQueries == 0 {
				t.Errorf("%s: no re-ranked queries reported", prec)
			}
			if prec == serve.PrecF64 && (st.Rerank != 0 || st.RerankQueries != 0) {
				t.Errorf("f64 reported rerank work (%d rows, %d queries)", st.Rerank, st.RerankQueries)
			}
		}
	}

	// Per-query failure isolation: the overflowing query errors, its batch
	// neighbors still get answers.
	small := smallModel("batch-iso")
	for _, prec := range []serve.Precision{serve.PrecF64, serve.PrecF32, serve.PrecQ8} {
		eng, err := serve.NewEngine(small, prec)
		if err != nil {
			t.Fatal(err)
		}
		batch := [][]float64{{1, 1}, {1e200, 1e200}, {9, 9}}
		out, errs, _ := eng.AssignBatch(asVecs(batch), false)
		if errs[1] == nil {
			t.Errorf("%s: overflowing query in a batch returned no error", prec)
		}
		if errs[0] != nil || errs[2] != nil {
			t.Errorf("%s: overflow poisoned batch neighbors: %v / %v", prec, errs[0], errs[2])
		}
		if out[0].Nearest != 0 || out[2].Nearest != 1 {
			t.Errorf("%s: batch neighbors misassigned: %+v, %+v", prec, out[0], out[2])
		}
	}
}

// TestPrecisionDowngrade: a model whose coordinate spread overflows the q8
// scale must silently serve at f64 (results stay correct), not fail.
func TestPrecisionDowngrade(t *testing.T) {
	m := smallModel("downgrade")
	// Dim-0 spread overflows the q8 scale; point 2 stays finitely reachable.
	m.Data = []float64{-math.MaxFloat64, 0, math.MaxFloat64, 0, 9, 9}
	m.Rho = []float64{1, 1, 1}
	m.Labels = []int32{0, 1, 1}
	eng, err := serve.NewEngine(m, serve.PrecQ8)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Precision(); got != serve.PrecF64 {
		t.Fatalf("unquantizable model served at %s, want f64", got)
	}
	if a, _, err := eng.Assign([]float64{1, 1}, false); err != nil || a.Nearest != 2 {
		t.Fatalf("downgraded engine misassigned: %+v, %v", a, err)
	}
}

func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]serve.Precision{
		"": serve.PrecF64, "f64": serve.PrecF64, "f32": serve.PrecF32, "q8": serve.PrecQ8,
	} {
		got, err := serve.ParsePrecision(s)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v", s, got, err)
		}
		if want.String() != s && s != "" {
			t.Errorf("%v.String() = %q, want %q", want, want.String(), s)
		}
	}
	if _, err := serve.ParsePrecision("fp16"); err == nil {
		t.Error("unknown precision accepted")
	}
}

// TestServerPrecisionConformance drives the full HTTP path at q8 and
// compares every answer against an f64 server over the same model, then
// checks the rerank counters and the advertised precision.
func TestServerPrecisionConformance(t *testing.T) {
	mdl, _, _ := trainModel(t, 1000, 3)
	start := func(precision string) *serve.Server {
		srv := serve.New(serve.Config{Precision: precision, BatchMax: 16})
		if err := srv.SetModel(mdl); err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	ref := start("f64")
	defer ref.Shutdown(context.Background()) //nolint:errcheck
	q8 := start("q8")
	defer q8.Shutdown(context.Background()) //nolint:errcheck

	qs := precisionQueries(mdl)
	for lo := 0; lo < len(qs); lo += 32 {
		hi := lo + 32
		if hi > len(qs) {
			hi = len(qs)
		}
		_, want := postAssign(t, ref.Addr(), qs[lo:hi])
		_, got := postAssign(t, q8.Addr(), qs[lo:hi])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: q8 served %+v, f64 served %+v", lo+i, got[i], want[i])
			}
		}
	}
	st := q8.Stats()
	if st.Model.Precision != "q8" {
		t.Errorf("statsz precision %q, want q8", st.Model.Precision)
	}
	if st.Counters[serve.CtrRerankQueries] == 0 {
		t.Error("q8 server reported no re-ranked queries")
	}
	if ref.Stats().Counters[serve.CtrRerankRows] != 0 {
		t.Error("f64 server reported rerank rows")
	}
	// The knob round-trips through /statsz JSON.
	var doc serve.Statsz
	resp, err := http.Get("http://" + q8.Addr() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Model.Precision != "q8" {
		t.Errorf("/statsz precision %q, want q8", doc.Model.Precision)
	}

	if _, err := serve.ParsePrecision("bogus"); err == nil {
		t.Error("bogus precision accepted")
	}
	bad := serve.New(serve.Config{Precision: "bogus"})
	if err := bad.SetModel(mdl); err == nil {
		t.Error("SetModel accepted an unknown precision")
	}
}
