package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
)

// trainModel runs the full offline pipeline on a seeded blob dataset and
// exports the artifact plus the offline labels/halo flags to check against.
func trainModel(t *testing.T, n, k int) (*model.Model, []int32, []bool) {
	t.Helper()
	ds := dataset.Blobs("serve-test", n, 2, k, 100, 2.5, 7)
	res, err := core.RunLSHDDP(context.Background(), ds, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	peaks, labels, err := res.Cluster(ds, core.SelectTopK(k))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, core.LSHConfig{Config: core.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := core.ExportModel(ds, res, peaks, labels, hr.Border, 7)
	if err != nil {
		t.Fatal(err)
	}
	return mdl, labels, hr.Halo
}

func postAssign(t *testing.T, addr string, pts [][]float64) (*http.Response, []serve.Assignment) {
	t.Helper()
	body, err := json.Marshal(map[string][][]float64{"points": pts})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/assign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return resp, nil
	}
	var out struct {
		Results []serve.Assignment `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out.Results
}

// TestServingConformance replays every training point through the HTTP path
// with concurrent clients and requires the served cluster and halo flag to
// match the offline labeling exactly: a training point's nearest stored
// point is itself at distance zero, so this holds by construction — any
// mismatch is a serving bug.
func TestServingConformance(t *testing.T) {
	mdl, labels, halo := trainModel(t, 1500, 4)
	srv := serve.New(serve.Config{})
	if err := srv.SetModel(mdl); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	const clients = 8
	const chunk = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for lo := c * chunk; lo < mdl.N(); lo += clients * chunk {
				hi := lo + chunk
				if hi > mdl.N() {
					hi = mdl.N()
				}
				pts := make([][]float64, 0, hi-lo)
				for i := lo; i < hi; i++ {
					pts = append(pts, mdl.Row(i))
				}
				resp, got := postAssign(t, srv.Addr(), pts)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("rows [%d,%d): HTTP %d", lo, hi, resp.StatusCode)
					return
				}
				for j, a := range got {
					i := lo + j
					if a.Cluster != labels[i] {
						errs <- fmt.Errorf("point %d: served cluster %d, offline label %d", i, a.Cluster, labels[i])
						return
					}
					if a.Halo != halo[i] {
						errs <- fmt.Errorf("point %d: served halo %v, offline halo %v", i, a.Halo, halo[i])
						return
					}
					if a.Dist != 0 {
						errs <- fmt.Errorf("point %d: nonzero self-distance %v", i, a.Dist)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.Counters().Get(serve.CtrShed); got != 0 {
		t.Errorf("conformance load shed %d requests with default queue", got)
	}
}

// TestEnginePrunedVsExact checks the two serving paths against each other on
// jittered queries: pruning must scan fewer rows and may never return a
// closer-looking answer than the exact scan (it scans a subset).
func TestEnginePrunedVsExact(t *testing.T) {
	mdl, _, _ := trainModel(t, 1500, 4)
	eng, err := serve.NewEngine(mdl, serve.PrecF64)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Pruned() {
		t.Fatal("LSH model produced an unpruned engine")
	}
	var prunedRows, exactRows, agree, total int
	for i := 0; i < mdl.N(); i += 3 {
		q := append([]float64(nil), mdl.Row(i)...)
		q[0] += mdl.Dc / 3 // nudge off the stored point
		ap, sp, err := eng.Assign(q, false)
		if err != nil {
			t.Fatalf("query %d: pruned assign: %v", i, err)
		}
		ae, se, err := eng.Assign(q, true)
		if err != nil {
			t.Fatalf("query %d: exact assign: %v", i, err)
		}
		if ap.Dist < ae.Dist {
			t.Fatalf("query %d: pruned dist %v beats exact dist %v", i, ap.Dist, ae.Dist)
		}
		prunedRows += sp
		exactRows += se
		total++
		// The Exact flag necessarily differs between the two paths.
		if ap.Cluster == ae.Cluster && ap.Halo == ae.Halo && ap.Nearest == ae.Nearest && ap.Dist == ae.Dist {
			agree++
		}
	}
	if prunedRows*2 >= exactRows {
		t.Fatalf("pruning scanned %d rows vs %d exact — no real pruning", prunedRows, exactRows)
	}
	if agree*100 < total*95 {
		t.Fatalf("pruned path agreed with exact on only %d/%d queries", agree, total)
	}
	t.Logf("pruned scanned %d rows vs %d exact (%.1f%%), %d/%d agree",
		prunedRows, exactRows, 100*float64(prunedRows)/float64(exactRows), agree, total)
}

// smallModel is a hand-built model for the control-plane tests.
func smallModel(name string) *model.Model {
	return &model.Model{
		Name:   name,
		Dim:    2,
		Dc:     1,
		Data:   []float64{0, 0, 10, 10},
		Rho:    []float64{1, 1},
		Labels: []int32{0, 1},
		Peaks:  []int32{0, 1},
		Border: []float64{0, 0},
	}
}

// TestOverflowQuery: a query so far out that every squared distance
// overflows to +Inf must produce an error (HTTP 400 at admission, an
// engine error if it slips past) — never a panic that kills the daemon.
func TestOverflowQuery(t *testing.T) {
	for _, prec := range []serve.Precision{serve.PrecF64, serve.PrecF32, serve.PrecQ8} {
		eng, err := serve.NewEngine(smallModel("overflow"), prec)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.Assign([]float64{1e200, 1e200}, false); err == nil {
			t.Errorf("engine(%s): overflowing query returned no error", prec)
		}
	}

	srv := serve.New(serve.Config{})
	if err := srv.SetModel(smallModel("overflow-http")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background()) //nolint:errcheck
	resp, _ := postAssign(t, srv.Addr(), [][]float64{{1e200, 1e200}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("overflowing query: HTTP %d, want 400", resp.StatusCode)
	}
	// The daemon must still be serving after the bad query.
	resp, _ = postAssign(t, srv.Addr(), [][]float64{{1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("query after overflow rejection: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestLoadShedding saturates a depth-1 queue while the batcher is held in
// the process hook: the third request must be rejected with 429 and counted
// in serve.shed, and held requests must complete once the batcher resumes.
func TestLoadShedding(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv := serve.New(serve.Config{
		QueueDepth: 1,
		BatchMax:   1,
		ProcessHook: func() {
			entered <- struct{}{}
			<-release
		},
	})
	if err := srv.SetModel(smallModel("shed")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	codes := make(chan int, 2)
	post := func() {
		resp, _ := postAssign(t, srv.Addr(), [][]float64{{1, 1}})
		codes <- resp.StatusCode
	}
	go post()
	<-entered // batcher holds request 1; queue is empty again
	go post()
	// Wait for request 2 to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Queue.Depth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request 2 never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := postAssign(t, srv.Addr(), [][]float64{{2, 2}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := srv.Counters().Get(serve.CtrShed); got != 1 {
		t.Errorf("serve.shed = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("held request got HTTP %d after release", code)
		}
	}
}

// TestGracefulDrain shuts down while a request is in flight: Shutdown must
// wait for it, the request must succeed, and later requests must be refused.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	srv := serve.New(serve.Config{
		ProcessHook: func() {
			once.Do(func() {
				entered <- struct{}{}
				<-release
			})
		},
	})
	if err := srv.SetModel(smallModel("drain")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	code := make(chan int, 1)
	go func() {
		resp, _ := postAssign(t, addr, [][]float64{{1, 1}})
		code <- resp.StatusCode
	}()
	<-entered

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	select {
	case <-done:
		t.Fatal("Shutdown returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := <-code; got != http.StatusOK {
		t.Fatalf("in-flight request got HTTP %d across drain", got)
	}
	if _, err := http.Post("http://"+addr+"/assign", "application/json",
		bytes.NewReader([]byte(`{"points":[[1,1]]}`))); err == nil {
		t.Error("post-drain request was accepted")
	}
}

// TestHotReload swaps models through the Loader path and verifies a failed
// reload keeps the old model serving.
func TestHotReload(t *testing.T) {
	models := []*model.Model{smallModel("v1"), smallModel("v2")}
	var loads int
	var fail bool
	srv := serve.New(serve.Config{
		Loader: func() (*model.Model, error) {
			if fail {
				return nil, fmt.Errorf("artifact store down")
			}
			m := models[loads%len(models)]
			loads++
			return m, nil
		},
	})
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Engine().Model().Name; got != "v1" {
		t.Fatalf("loaded %q, want v1", got)
	}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Engine().Model().Name; got != "v2" {
		t.Fatalf("reloaded to %q, want v2", got)
	}
	fail = true
	if err := srv.Reload(); err == nil {
		t.Fatal("failed load reported success")
	}
	if got := srv.Engine().Model().Name; got != "v2" {
		t.Fatalf("failed reload replaced the model with %q", got)
	}
	if got := srv.Counters().Get(serve.CtrReloads); got != 2 {
		t.Fatalf("serve.reloads = %d, want 2", got)
	}
}

// TestRequestValidation exercises the /assign error paths.
func TestRequestValidation(t *testing.T) {
	srv := serve.New(serve.Config{MaxRequestPoints: 2})
	if err := srv.SetModel(smallModel("val")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"garbage", "{", http.StatusBadRequest},
		{"empty", `{"points":[]}`, http.StatusBadRequest},
		{"wrong dim", `{"points":[[1,2,3]]}`, http.StatusBadRequest},
		{"too many", `{"points":[[1,1],[2,2],[3,3]]}`, http.StatusBadRequest},
		{"ok", `{"points":[[1,1]]}`, http.StatusOK},
	} {
		resp, err := http.Post("http://"+srv.Addr()+"/assign", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestHealthz covers the probe's three states.
func TestHealthz(t *testing.T) {
	srv := serve.New(serve.Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	get := func() int {
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusServiceUnavailable {
		t.Errorf("modelless healthz: HTTP %d, want 503", got)
	}
	if err := srv.SetModel(smallModel("health")); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != http.StatusOK {
		t.Errorf("healthy healthz: HTTP %d, want 200", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
