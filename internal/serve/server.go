package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/points"
)

// Counter names of the serving layer, reported by /statsz (and clusterd's
// shutdown dump) next to the familiar mr.* / dfs.* families.
const (
	// CtrRequests counts admitted /assign requests.
	CtrRequests = "serve.requests"
	// CtrPoints counts query points across admitted requests.
	CtrPoints = "serve.points"
	// CtrShed counts requests rejected with 429 because the admission
	// queue was full — the load-shedding signal.
	CtrShed = "serve.shed"
	// CtrBatches counts kernel batches (one per batcher flush).
	CtrBatches = "serve.batches"
	// CtrExactScans counts queries answered by the exact full-scan path.
	CtrExactScans = "serve.exact.scans"
	// CtrCandidates counts stored rows scanned across all queries; divide
	// by CtrPoints for the average pruned candidate-set size.
	CtrCandidates = "serve.candidates"
	// CtrRerankRows counts shortlist rows re-ranked in exact float64 after
	// a compact (f32/q8) scan; divide by CtrRerankQueries for the average
	// shortlist size. Zero when serving at f64.
	CtrRerankRows = "serve.rerank.rows"
	// CtrRerankQueries counts queries whose nearest neighbor came out of a
	// compact scan + exact re-rank.
	CtrRerankQueries = "serve.rerank.queries"
	// CtrReloads counts successful hot model reloads.
	CtrReloads = "serve.reloads"
	// CtrBusyUS accumulates microseconds the batcher spent processing
	// batches — the server's service demand. Fleet benchmarks divide
	// per-shard deltas of this by requests to get each shard's true
	// per-query cost independent of co-location (see serveload -fleet).
	CtrBusyUS = "serve.busy.us"
	// CtrFleetRequests counts admitted shard-internal /fleet/assign
	// requests (masked scans and broadcast fallbacks from a router).
	CtrFleetRequests = "serve.fleet.requests"
)

// Config carries the serving knobs (see README "Configuration reference",
// serve.* rows).
type Config struct {
	// BatchMax flushes a batch once it holds this many query points
	// (default 64). Concurrent requests arriving while a batch runs
	// coalesce into the next one.
	BatchMax int
	// BatchLinger, when positive, lets the batcher wait this long for more
	// requests after the first before flushing. The default 0 flushes as
	// soon as the queue is momentarily empty: batches grow under load and
	// stay at one request when idle, with no added idle latency.
	BatchLinger time.Duration
	// QueueDepth bounds the admission queue (default 128). A request
	// arriving at a full queue is shed with 429, never blocked.
	QueueDepth int
	// Workers processes the requests of one batch concurrently when > 1
	// (default 1).
	Workers int
	// MaxRequestPoints bounds the points of one request (default 1024).
	MaxRequestPoints int
	// ReadHeaderTimeout bounds how long the listener waits for a client's
	// request headers (default 5s; a slow-loris client can no longer pin a
	// connection forever). Negative disables.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long (default
	// 2m). Negative disables.
	IdleTimeout time.Duration
	// ReadTimeout / WriteTimeout bound a whole request read / response
	// write when positive (default 0: unbounded, so large batch uploads
	// and saturated-queue waits are not cut off arbitrarily).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// ShardID, when non-nil, names this server's slot in a serving fleet.
	// It is reported in /statsz so a router can verify at startup that the
	// replica it is about to route to really serves the shard it expects.
	ShardID *int
	// ExactOnly disables LSH pruning and answers every query by full scan
	// (the benchmark baseline).
	ExactOnly bool
	// Precision selects the scan representation ("", "f64", "f32", "q8" —
	// the serve.scan.precision knob). Compact precisions scan a smaller
	// mirror of the stored points and re-rank exactly in float64, so
	// results are identical at every setting. SetModel rejects unknown
	// values; a model that cannot support the requested representation
	// serves at f64.
	Precision string
	// Loader, when set, supplies a fresh model for Reload (SIGHUP or
	// POST /reload).
	Loader func() (*model.Model, error)
	// Trace, when non-nil, receives one obs span per request (Phase
	// "serve"), grouped into a JobTrace per batch. Meant for debugging
	// sessions, not sustained traffic: the trace grows without bound.
	Trace *obs.Trace
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// ProcessHook is a test hook invoked before each batch is processed.
	ProcessHook func()
	// BatchLock, when non-nil, is held for the whole of each batch's
	// processing. Benchmarks that co-locate several shard servers on one
	// machine hand every server the same lock so that serve.busy.us
	// measures each batch's service demand: without it the batchers
	// time-slice the CPU and each batch's wall time silently includes the
	// other servers' compute. Production servers leave it nil.
	BatchLock sync.Locker
}

func (c *Config) batchMax() int {
	if c.BatchMax > 0 {
		return c.BatchMax
	}
	return 64
}

func (c *Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 128
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 1
}

func (c *Config) maxRequestPoints() int {
	if c.MaxRequestPoints > 0 {
		return c.MaxRequestPoints
	}
	return 1024
}

func (c *Config) readHeaderTimeout() time.Duration {
	return timeoutOr(c.ReadHeaderTimeout, 5*time.Second)
}
func (c *Config) idleTimeout() time.Duration { return timeoutOr(c.IdleTimeout, 2*time.Minute) }

// timeoutOr resolves a timeout knob: 0 means the default, negative means
// disabled (0 on the http.Server).
func timeoutOr(v, def time.Duration) time.Duration {
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	}
	return def
}

// request is one admitted /assign or /fleet/assign call waiting for its
// batch to run.
type request struct {
	qs      []points.Vector
	masks   []uint64 // non-nil: fleet masked scan (aligned with qs)
	exact   bool     // fleet broadcast fallback: force the exact scan
	out     []Assignment
	errs    []error // per-query results (fleet path reports them per point)
	err     error   // first per-query error (the /assign 500 contract)
	scanned int64
	start   time.Time
	done    chan struct{}
}

// mode buckets compatible requests of one batch into a single engine call.
func (r *request) mode() int {
	switch {
	case r.exact:
		return modeExact
	case r.masks != nil:
		return modeMasked
	}
	return modeNormal
}

const (
	modeNormal = iota
	modeMasked
	modeExact
	modeCount
)

// Server fronts an Engine with HTTP/JSON, micro-batching, and admission
// control. Create with New, load a model with SetModel (or Reload), then
// Start; Shutdown drains cleanly.
type Server struct {
	cfg      Config
	engine   atomic.Pointer[Engine]
	queue    chan *request
	quit     chan struct{}
	draining atomic.Bool
	counters *mapreduce.Counters
	hist     Hist
	batchID  atomic.Int64
	// ingest, when non-nil, is the streaming-ingest backend (SetIngest):
	// scans route through it and /ingest + /compact are live. Set before
	// Start, never mutated after.
	ingest     IngestBackend
	ingestHist Hist

	mux      *http.ServeMux
	httpSrv  *http.Server
	ln       net.Listener
	batchWG  sync.WaitGroup
	shutOnce sync.Once
	shutErr  error
}

// New builds a server from cfg. No model is loaded and no socket is open
// yet.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *request, cfg.queueDepth()),
		quit:     make(chan struct{}),
		counters: mapreduce.NewCounters(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /assign", s.handleAssign)
	s.mux.HandleFunc("POST /fleet/assign", s.handleFleetAssign)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("POST /reload", s.handleReload)
	return s
}

// SetModel indexes m and swaps it in atomically; in-flight batches finish
// against the engine they loaded.
func (s *Server) SetModel(m *model.Model) error {
	prec, err := ParsePrecision(s.cfg.Precision)
	if err != nil {
		return err
	}
	eng, err := NewEngine(m, prec)
	if err != nil {
		return err
	}
	s.UseEngine(eng)
	return nil
}

// UseEngine swaps in an already-indexed engine; in-flight batches finish
// against the engine they loaded. Lets several servers (or a benchmark
// harness sweeping configurations) share one index instead of re-bucketing
// the model per server.
func (s *Server) UseEngine(eng *Engine) {
	s.engine.Store(eng)
	m := eng.Model()
	s.logf("serve: model %q loaded: %d points dim %d, %d clusters, %d LSH buckets (M=%d pi=%d w=%.4g), scan=%s",
		m.Name, m.N(), m.Dim, m.NumClusters(), eng.Buckets(), m.LSH.M, m.LSH.Pi, m.LSH.W, eng.Precision())
}

// Reload fetches a fresh model through cfg.Loader and swaps it in — the
// SIGHUP / POST /reload path. The old model keeps serving until the new
// one has loaded and indexed successfully; a failed reload changes nothing.
func (s *Server) Reload() error {
	if s.cfg.Loader == nil {
		return fmt.Errorf("serve: no model loader configured")
	}
	m, err := s.cfg.Loader()
	if err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	if err := s.SetModel(m); err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	s.counters.Add(CtrReloads, 1)
	return nil
}

// Engine returns the currently serving engine (nil before the first
// successful SetModel/Reload).
func (s *Server) Engine() *Engine { return s.engine.Load() }

// Counters exposes the serve.* counter set.
func (s *Server) Counters() *mapreduce.Counters { return s.counters }

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves until Shutdown. The batcher and the
// HTTP loop run in background goroutines.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	// Bounded header reads and idle keep-alives: one slow or silent client
	// must never pin a connection (and its goroutine) forever.
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.cfg.readHeaderTimeout(),
		IdleTimeout:       s.cfg.idleTimeout(),
		ReadTimeout:       timeoutOr(s.cfg.ReadTimeout, 0),
		WriteTimeout:      timeoutOr(s.cfg.WriteTimeout, 0),
	}
	s.batchWG.Add(1)
	go s.batcher()
	go s.httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown
	s.logf("serve: listening on %s (batch<=%d linger=%s queue=%d workers=%d)",
		ln.Addr(), s.cfg.batchMax(), s.cfg.BatchLinger, s.cfg.queueDepth(), s.cfg.workers())
	return nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: new requests are refused (503), in-flight
// requests finish through the batcher, then the batcher exits. Safe to
// call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		if s.httpSrv != nil {
			// Waits for active handlers, each of which is blocked on its
			// request's done channel — i.e. for the queue to drain.
			s.shutErr = s.httpSrv.Shutdown(ctx)
		}
		close(s.quit)
		s.batchWG.Wait()
		s.logf("serve: drained: %d requests served, %d shed", s.counters.Get(CtrRequests), s.counters.Get(CtrShed))
	})
	return s.shutErr
}

// batcher is the single goroutine that turns the admission queue into
// kernel batches: it blocks for the first request, then greedily coalesces
// whatever else is already queued (up to BatchMax points, optionally
// lingering BatchLinger for more) into one processing pass.
func (s *Server) batcher() {
	defer s.batchWG.Done()
	var batch []*request
	for {
		select {
		case req := <-s.queue:
			batch = append(batch[:0], req)
			n := len(req.qs)
			var lingerC <-chan time.Time
			var lingerT *time.Timer
			if s.cfg.BatchLinger > 0 {
				lingerT = time.NewTimer(s.cfg.BatchLinger)
				lingerC = lingerT.C
			}
		collect:
			for n < s.cfg.batchMax() {
				if lingerC == nil {
					select {
					case r := <-s.queue:
						batch = append(batch, r)
						n += len(r.qs)
					default:
						break collect
					}
				} else {
					select {
					case r := <-s.queue:
						batch = append(batch, r)
						n += len(r.qs)
					case <-lingerC:
						break collect
					case <-s.quit:
						break collect
					}
				}
			}
			if lingerT != nil {
				lingerT.Stop()
			}
			s.process(batch)
		case <-s.quit:
			// Drain: after Shutdown no handler can enqueue, so the
			// residue in the buffer is all that is left.
			for {
				select {
				case r := <-s.queue:
					s.process([]*request{r})
				default:
					return
				}
			}
		}
	}
}

// process runs one batch through the engine and wakes every caller.
func (s *Server) process(batch []*request) {
	if s.cfg.ProcessHook != nil {
		s.cfg.ProcessHook()
	}
	if l := s.cfg.BatchLock; l != nil {
		// Acquired before the busy-time stamp: waiting for a co-located
		// server's batch is queueing, not service demand.
		l.Lock()
		defer l.Unlock()
	}
	eng := s.engine.Load()
	batchStart := time.Now()
	id := int(s.batchID.Add(1))

	// runGroup answers requests of one scan mode through one AssignBatchOpts
	// call, so every exact full scan in the group shares each row-tile pass.
	runGroup := func(group []*request) {
		var qs []points.Vector
		var masks []uint64
		mode := group[0].mode()
		live := make([]*request, 0, len(group))
		for _, r := range group {
			if eng == nil {
				r.err = fmt.Errorf("serve: no model loaded")
				continue
			}
			if mode == modeMasked && !eng.FleetIndexed() {
				// Admission checked against a different engine (hot reload
				// swapped in a model without a fleet index mid-flight).
				r.err = fmt.Errorf("serve: model carries no fleet index")
				continue
			}
			bad := false
			for _, q := range r.qs {
				if len(q) != eng.m.Dim {
					// The admission-time check ran against a different engine
					// (hot reload changed the dimensionality mid-flight).
					r.err = fmt.Errorf("serve: query dim %d, model dim %d", len(q), eng.m.Dim)
					bad = true
					break
				}
			}
			if bad {
				continue
			}
			live = append(live, r)
			qs = append(qs, r.qs...)
			if mode == modeMasked {
				masks = append(masks, r.masks...)
			}
		}
		if len(qs) == 0 {
			return
		}
		opts := BatchOpts{ExactOnly: s.cfg.ExactOnly}
		switch mode {
		case modeMasked:
			opts = BatchOpts{Masks: masks}
		case modeExact:
			opts = BatchOpts{ExactOnly: true}
		}
		assign := eng.AssignBatchOpts
		if s.ingest != nil {
			// Ingest mode: answer against base + delta so points become
			// visible the moment they are acked, not after compaction.
			assign = s.ingest.AssignBatch
		}
		out, errs, st := assign(qs, opts)
		off := 0
		for _, r := range live {
			n := len(r.qs)
			r.out = out[off : off+n]
			r.errs = errs[off : off+n]
			for _, err := range r.errs {
				if err != nil {
					r.err = err
					break
				}
			}
			// Amortized share of the group's scan work: batched exact scans
			// share tile passes, so per-request row counts are pro-rated.
			r.scanned = st.Scanned * int64(n) / int64(len(qs))
			off += n
		}
		s.counters.Add(CtrCandidates, st.Scanned)
		s.counters.Add(CtrExactScans, st.ExactQueries)
		s.counters.Add(CtrRerankRows, st.Rerank)
		s.counters.Add(CtrRerankQueries, st.RerankQueries)
	}

	// runShard splits a contiguous slice of requests by scan mode (normal,
	// fleet-masked, fleet-exact) and runs each non-empty group.
	runShard := func(shard []*request) {
		var groups [modeCount][]*request
		for _, r := range shard {
			groups[r.mode()] = append(groups[r.mode()], r)
		}
		for _, g := range groups {
			if len(g) > 0 {
				runGroup(g)
			}
		}
	}

	if w := s.cfg.workers(); w > 1 && len(batch) > 1 {
		// Split the batch into up to Workers contiguous request shards
		// processed concurrently; each shard still batches its own scans.
		shards := w
		if shards > len(batch) {
			shards = len(batch)
		}
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			lo := i * len(batch) / shards
			hi := (i + 1) * len(batch) / shards
			wg.Add(1)
			go func(sh []*request) {
				defer wg.Done()
				runShard(sh)
			}(batch[lo:hi])
		}
		wg.Wait()
	} else {
		runShard(batch)
	}

	var spans []obs.Span
	var pts int64
	for i, r := range batch {
		pts += int64(len(r.qs))
		s.hist.Record(time.Since(r.start))
		if s.cfg.Trace != nil {
			spans = append(spans, obs.Span{
				Job: "serve", JobID: id, Phase: obs.PhaseServe, Task: i,
				Start: r.start, Wall: time.Since(r.start),
				Records: int64(len(r.qs)), Bytes: r.scanned,
			})
		}
		close(r.done)
	}
	s.counters.Add(CtrRequests, int64(len(batch)))
	s.counters.Add(CtrPoints, pts)
	s.counters.Add(CtrBatches, 1)
	// Service demand, not latency: the time this batch actually occupied the
	// batcher. Per-shard deltas stay meaningful even when several shards
	// share one machine and wall-clock QPS measures only contention.
	s.counters.Add(CtrBusyUS, time.Since(batchStart).Microseconds())
	if s.cfg.Trace != nil {
		s.cfg.Trace.Add(obs.JobTrace{Job: "serve", ID: id, Wall: time.Since(batchStart), Spans: spans})
	}
}

// ValidatePoints checks a batch of query points against a model of the given
// dimensionality, enforcing the serving layer's size and coordinate bounds.
// It returns the HTTP status and message a server would reject the batch
// with, or (0, "") when the batch is admissible. Exported so the fleet
// router can reject bad requests with byte-identical errors and never burn a
// shard round-trip on them.
func ValidatePoints(pts [][]float64, dim, maxPoints int) (int, string) {
	if len(pts) == 0 {
		return http.StatusBadRequest, "no points"
	}
	if len(pts) > maxPoints {
		return http.StatusBadRequest, fmt.Sprintf("too many points: %d > %d", len(pts), maxPoints)
	}
	maxCoord := MaxCoord(dim)
	for i, p := range pts {
		if len(p) != dim {
			return http.StatusBadRequest, fmt.Sprintf("point %d has dim %d, model has dim %d", i, len(p), dim)
		}
		for _, x := range p {
			// Reject coordinates whose squared distances could overflow to
			// +Inf — past that bound no nearest point is computable.
			if math.IsNaN(x) || math.Abs(x) > maxCoord {
				return http.StatusBadRequest, fmt.Sprintf("point %d has non-finite or out-of-range coordinate %v (|x| must be <= %.4g)", i, x, maxCoord)
			}
		}
	}
	return 0, ""
}

// assignRequest is the /assign JSON body.
type assignRequest struct {
	Points [][]float64 `json:"points"`
}

// assignResponse is the /assign JSON reply.
type assignResponse struct {
	Results []Assignment `json:"results"`
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	eng := s.engine.Load()
	if eng == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	var body assignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if status, msg := ValidatePoints(body.Points, eng.m.Dim, s.cfg.maxRequestPoints()); status != 0 {
		http.Error(w, msg, status)
		return
	}
	qs := make([]points.Vector, len(body.Points))
	for i, p := range body.Points {
		qs[i] = p
	}
	req := &request{qs: qs, start: time.Now(), done: make(chan struct{})}
	select {
	case s.queue <- req:
	default:
		s.counters.Add(CtrShed, 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: admission queue full", http.StatusTooManyRequests)
		return
	}
	select {
	case <-req.done:
	case <-s.quit:
		// Shutdown's context expired before this request was processed; the
		// batcher may already have drained and exited, so waiting on done
		// could block forever. Re-check done to avoid dropping an answer
		// that raced with the quit close, then fail the request.
		select {
		case <-req.done:
		default:
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
	}
	if req.err != nil {
		http.Error(w, req.err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(assignResponse{Results: req.out}) //nolint:errcheck
}

// FleetAssignRequest is the shard-internal /fleet/assign JSON body. Masks
// select, per query, which LSH layouts this shard owns and must scan (bit j
// = layout j); Exact instead runs the router's broadcast fallback, an exact
// full scan over this shard's rows. Exactly one of the two shapes is valid.
type FleetAssignRequest struct {
	Points [][]float64 `json:"points"`
	Masks  []uint64    `json:"masks,omitempty"`
	Exact  bool        `json:"exact,omitempty"`
}

// FleetResult is one per-query entry of a /fleet/assign reply. Nearest is a
// global point ID (the shard translates through its RowIDs section), and D2
// — the exact squared distance — is the router's merge key. NoCand marks a
// masked query that found no candidate in the scanned layouts; NoFinite an
// exact scan that found no finite distance. Either flag voids the other
// fields for that query.
type FleetResult struct {
	Assignment
	D2       float64 `json:"d2"`
	NoCand   bool    `json:"nocand,omitempty"`
	NoFinite bool    `json:"nofinite,omitempty"`
}

// FleetAssignResponse is the /fleet/assign JSON reply.
type FleetAssignResponse struct {
	Results []FleetResult `json:"results"`
}

// handleFleetAssign is the shard-side half of the fleet protocol: a masked
// scan over the layouts this shard owns for each query, or the broadcast
// exact fallback. Per-query misses travel as flags, not errors — the router
// alone decides when a fleet-wide miss becomes a fallback or an error.
func (s *Server) handleFleetAssign(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	eng := s.engine.Load()
	if eng == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	var body FleetAssignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if status, msg := ValidatePoints(body.Points, eng.m.Dim, s.cfg.maxRequestPoints()); status != 0 {
		http.Error(w, msg, status)
		return
	}
	if !body.Exact {
		if len(body.Masks) != len(body.Points) {
			http.Error(w, fmt.Sprintf("masks/points mismatch: %d masks, %d points", len(body.Masks), len(body.Points)), http.StatusBadRequest)
			return
		}
		if !eng.FleetIndexed() {
			http.Error(w, "model carries no fleet index (not a partitioned sub-model?)", http.StatusServiceUnavailable)
			return
		}
	}
	qs := make([]points.Vector, len(body.Points))
	for i, p := range body.Points {
		qs[i] = p
	}
	req := &request{qs: qs, exact: body.Exact, start: time.Now(), done: make(chan struct{})}
	if !body.Exact {
		req.masks = body.Masks
	}
	select {
	case s.queue <- req:
	default:
		s.counters.Add(CtrShed, 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: admission queue full", http.StatusTooManyRequests)
		return
	}
	select {
	case <-req.done:
	case <-s.quit:
		select {
		case <-req.done:
		default:
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
	}
	s.counters.Add(CtrFleetRequests, 1)
	results := make([]FleetResult, len(req.qs))
	for i := range req.qs {
		var err error
		if req.errs != nil {
			err = req.errs[i]
		} else if req.err != nil {
			err = req.err // request-level failure (stale engine, no model)
		}
		switch {
		case err == nil:
			results[i] = FleetResult{Assignment: req.out[i], D2: req.out[i].Dist2}
		case err == ErrNoCandidates:
			results[i] = FleetResult{NoCand: true}
		case err == ErrNoFinite:
			results[i] = FleetResult{NoFinite: true}
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(FleetAssignResponse{Results: results}) //nolint:errcheck
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.engine.Load() == nil:
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ok")
	}
}

// Statsz is the /statsz JSON document.
type Statsz struct {
	// Shard is this server's fleet slot (serve.shard.id), nil outside a
	// fleet. Routers check it at startup against their shard map.
	Shard    *int             `json:"shard,omitempty"`
	Model    *ModelInfo       `json:"model,omitempty"`
	Counters map[string]int64 `json:"counters"`
	Latency  LatencyInfo      `json:"latency"`
	// Ingest and IngestLatency appear only on ingest nodes: the backend
	// state snapshot and the /ingest request-latency quantiles (the
	// ingest.* / compact.* counters are merged into Counters).
	Ingest        *IngestInfo  `json:"ingest,omitempty"`
	IngestLatency *LatencyInfo `json:"ingest_latency,omitempty"`
	Queue         QueueInfo    `json:"queue"`
	Draining      bool         `json:"draining"`
}

// ModelInfo summarizes the loaded model for /statsz.
type ModelInfo struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	Dim      int     `json:"dim"`
	Clusters int     `json:"clusters"`
	Buckets  int     `json:"lsh_buckets"`
	M        int     `json:"lsh_m"`
	Pi       int     `json:"lsh_pi"`
	W        float64 `json:"lsh_w"`
	// Precision is the effective scan precision (may be "f64" even when
	// serve.scan.precision asked for a compact one the model cannot carry).
	Precision string `json:"precision"`
}

// LatencyInfo carries the request-latency histogram quantiles (µs).
type LatencyInfo struct {
	Count int64 `json:"count"`
	P50us int64 `json:"p50_us"`
	P90us int64 `json:"p90_us"`
	P99us int64 `json:"p99_us"`
}

// QueueInfo reports admission-queue occupancy.
type QueueInfo struct {
	Depth int `json:"depth"`
	Cap   int `json:"cap"`
}

// Stats snapshots the server's observable state (what /statsz serves).
func (s *Server) Stats() Statsz {
	st := Statsz{
		Shard:    s.cfg.ShardID,
		Counters: s.counters.Snapshot(),
		Latency: LatencyInfo{
			Count: s.hist.Count(),
			P50us: s.hist.Quantile(0.50).Microseconds(),
			P90us: s.hist.Quantile(0.90).Microseconds(),
			P99us: s.hist.Quantile(0.99).Microseconds(),
		},
		Queue:    QueueInfo{Depth: len(s.queue), Cap: cap(s.queue)},
		Draining: s.draining.Load(),
	}
	if eng := s.engine.Load(); eng != nil {
		m := eng.Model()
		st.Model = &ModelInfo{
			Name: m.Name, N: m.N(), Dim: m.Dim, Clusters: m.NumClusters(),
			Buckets: eng.Buckets(), M: m.LSH.M, Pi: m.LSH.Pi, W: m.LSH.W,
			Precision: eng.Precision().String(),
		}
	}
	if b := s.ingest; b != nil {
		info := b.Info()
		st.Ingest = &info
		st.IngestLatency = &LatencyInfo{
			Count: s.ingestHist.Count(),
			P50us: s.ingestHist.Quantile(0.50).Microseconds(),
			P90us: s.ingestHist.Quantile(0.90).Microseconds(),
			P99us: s.ingestHist.Quantile(0.99).Microseconds(),
		}
		for k, v := range b.Counters() {
			st.Counters[k] = v
		}
	}
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats()) //nolint:errcheck
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	if s.ingest != nil {
		// The compactor owns the model lineage on an ingest node; an
		// external reload would silently drop the delta segment.
		http.Error(w, "ingest mode: the compactor manages the model (use POST /compact)", http.StatusConflict)
		return
	}
	if err := s.Reload(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "reloaded")
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}
