// Package serve is the online cluster-serving subsystem: it answers "which
// cluster does this point belong to?" against a frozen model artifact
// (internal/model) without rerunning any MapReduce job.
//
// The engine reuses the training run's LSH machinery as an approximate
// nearest-neighbor index: it regenerates the M hash layouts from the
// model's parameters, buckets every stored point under each layout, and
// answers a query by probing the query's M bucket keys and scanning only
// the candidate union with the dense NN kernels — the same
// locality-preserving partitions that made ρ̂/δ̂ accurate make the nearest
// labeled point overwhelmingly likely to share a bucket with the query.
// When every probe comes up empty (a query far from all training data) the
// engine falls back to an exact full scan, so an answer is always returned
// and is always the label of some stored point.
//
// Scans run at a configurable precision (serve.scan.precision): f64 streams
// the float64 block directly; f32 and q8 stream a compact mirror (half or
// an eighth of the bytes), collect a provably sufficient shortlist, and
// re-rank it exactly in float64 (internal/kernels compact scan path), so
// labels, NN indices, distances, and the tie rule are bit-identical across
// precisions. Micro-batches additionally run their exact scans through the
// multi-query NNBatch kernels: one pass over each row tile serves the whole
// batch.
//
// The HTTP server in server.go fronts the engine with micro-batching of
// concurrent requests, a bounded admission queue with load shedding,
// latency histograms, health/stats endpoints, hot model reload, and
// graceful drain — see DESIGN.md "Online serving".
package serve

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/model"
	"repro/internal/points"
)

// Assignment is the answer for one query point.
type Assignment struct {
	// Cluster is the assigned cluster (index into the model's peaks).
	Cluster int32 `json:"cluster"`
	// Halo reports whether the query lands in the cluster's halo (its
	// nearest stored point sits below the cluster's border density).
	Halo bool `json:"halo"`
	// Nearest is the stored point ID whose label the query inherited.
	Nearest int32 `json:"nearest"`
	// Dist is the Euclidean distance to that nearest stored point.
	Dist float64 `json:"dist"`
	// PeakDist is the Euclidean distance to the assigned cluster's peak.
	PeakDist float64 `json:"peak_dist"`
	// Exact reports that the exact-scan fallback answered (no LSH bucket
	// held a candidate, or the engine runs without an index).
	Exact bool `json:"exact"`
}

// Precision selects the scan representation of the serving engine.
type Precision uint8

const (
	// PrecF64 scans the float64 block directly (the exact baseline).
	PrecF64 Precision = iota
	// PrecF32 scans a float32 mirror and re-ranks the shortlist exactly.
	PrecF32
	// PrecQ8 scans 8-bit quantized codes via a per-query lookup table and
	// re-ranks the shortlist exactly.
	PrecQ8
)

// ParsePrecision parses a serve.scan.precision value ("" means f64).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", kernels.ScanF64:
		return PrecF64, nil
	case kernels.ScanF32:
		return PrecF32, nil
	case kernels.ScanQ8:
		return PrecQ8, nil
	}
	return PrecF64, fmt.Errorf("serve: unknown scan precision %q (want f64, f32, or q8)", s)
}

// String returns the knob spelling of p.
func (p Precision) String() string {
	switch p {
	case PrecF32:
		return kernels.ScanF32
	case PrecQ8:
		return kernels.ScanQ8
	}
	return kernels.ScanF64
}

// ScanStats aggregates the scan work of one AssignBatch call.
type ScanStats struct {
	// Scanned counts stored rows whose (compact or exact) distance to a
	// query was evaluated.
	Scanned int64
	// Rerank counts shortlist rows re-ranked in exact float64 after a
	// compact scan (0 at PrecF64).
	Rerank int64
	// RerankQueries counts queries whose nearest neighbor came out of a
	// compact scan + exact re-rank (0 at PrecF64).
	RerankQueries int64
	// ExactQueries counts queries answered by the exact full-scan path.
	ExactQueries int64
}

// Engine answers queries against one immutable model. It is safe for
// concurrent use; the server swaps the whole engine on hot reload.
type Engine struct {
	m       *model.Model
	layouts *lsh.Layouts
	// buckets maps a layout-prefixed LSH key ("m|k1.k2...") to the rows
	// stored under it, in ascending row order.
	buckets map[string][]int32

	// prec is the effective scan precision: the requested one, or PrecF64
	// when the model data cannot support the compact representation (e.g.
	// unquantizable coordinates).
	prec   Precision
	data32 []float32         // float32 mirror (PrecF32)
	maxAbs float64           // largest |coordinate| of the model data
	q8     []uint8           // quantized codes (PrecQ8)
	q8par  points.Q8Params   // their per-dimension affine parameters
	q8bnd  kernels.Bounds    // query-independent q8 scan bounds

	// scratch pools per-query candidate state sized to this model;
	// batches pools per-batch scan state.
	scratch sync.Pool
	batches sync.Pool
}

// scratch is the reusable per-query candidate-dedup and compact-scan state.
type scratch struct {
	stamp []int32 // per-row epoch marks
	epoch int32
	cand  []int32
	q32   []float32
	sl    kernels.Shortlist
	lut   kernels.Q8LUT
}

// batchScratch is the reusable per-batch exact-scan state.
type batchScratch struct {
	pending []int32 // query indices still needing the exact scan
	flat    []float64
	flat32  []float32
	best    []int32
	best2   []float64
	sls     []kernels.Shortlist
	luts    []kernels.Q8LUT
}

// NewEngine indexes a model for serving at the requested scan precision.
// With LSH parameters present the index holds M buckets per stored point; a
// model exported without LSH (M == 0) serves through exact scans only.
// When the model cannot support the requested compact representation the
// engine silently serves at f64 — check Precision() for the effective
// setting. Results are identical either way.
func NewEngine(m *model.Model, prec Precision) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{m: m, layouts: m.Layouts()}
	e.maxAbs = maxAbsOf(m.Data)
	e.prec = e.setupCompact(prec)
	n := m.N()
	e.scratch.New = func() any { return &scratch{stamp: make([]int32, n)} }
	e.batches.New = func() any { return new(batchScratch) }
	if e.layouts == nil {
		return e, nil
	}
	e.buckets = make(map[string][]int32, n)
	for i := 0; i < n; i++ {
		for _, key := range e.layouts.Keys(m.Row(i)) {
			e.buckets[key] = append(e.buckets[key], int32(i))
		}
	}
	return e, nil
}

// setupCompact derives (or adopts from the model artifact) the compact
// representation for the requested precision, returning the effective one.
func (e *Engine) setupCompact(prec Precision) Precision {
	m := e.m
	switch prec {
	case PrecF32:
		if !kernels.F32Bounds(m.Dim, e.maxAbs).Valid() {
			return PrecF64
		}
		if len(m.Data32) == len(m.Data) {
			e.data32 = m.Data32
		} else {
			e.data32, _ = points.ToFloat32(m.Data)
		}
		return PrecF32
	case PrecQ8:
		if len(m.Q8Codes) == len(m.Data) && m.Q8Params().Valid(m.Dim) {
			e.q8, e.q8par = m.Q8Codes, m.Q8Params()
		} else {
			codes, par, ok := points.QuantizeQ8(m.Data, m.Dim)
			if !ok {
				return PrecF64
			}
			e.q8, e.q8par = codes, par
		}
		e.q8bnd = kernels.Q8Bounds(m.Dim, e.q8par.ErrBound())
		if !e.q8bnd.Valid() {
			e.q8, e.q8par = nil, points.Q8Params{}
			return PrecF64
		}
		return PrecQ8
	}
	return PrecF64
}

func maxAbsOf(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Model returns the engine's model.
func (e *Engine) Model() *model.Model { return e.m }

// Buckets returns the number of distinct LSH buckets in the index.
func (e *Engine) Buckets() int { return len(e.buckets) }

// Pruned reports whether the engine carries an LSH index.
func (e *Engine) Pruned() bool { return e.layouts != nil }

// Precision returns the effective scan precision.
func (e *Engine) Precision() Precision { return e.prec }

// MaxCoord returns the largest coordinate magnitude a dim-dimensional
// query may carry: with every coordinate of the query and the stored
// points bounded by it, no squared distance can overflow to +Inf. The
// server rejects larger (or non-finite) coordinates at admission.
func MaxCoord(dim int) float64 {
	return math.Sqrt(math.MaxFloat64/float64(dim)) / 2
}

// errNoFinite is returned when no stored point has a finite distance to a
// query (overflowing or non-finite coordinates); no assignment exists then.
func errNoFinite() error {
	return fmt.Errorf("serve: no finite distance from query to any stored point (coordinates non-finite or too large)")
}

// Assign answers one query. exactOnly forces the full-scan path (the
// pruned-vs-exact benchmark switch). scanned is the number of stored rows
// whose distance to the query was evaluated. An error means no stored
// point had a finite distance to the query; no assignment exists in that
// case.
func (e *Engine) Assign(q points.Vector, exactOnly bool) (Assignment, int, error) {
	out, errs, st := e.AssignBatch([]points.Vector{q}, exactOnly)
	return out[0], int(st.Scanned), errs[0]
}

// AssignBatch answers a micro-batch of queries, running every exact full
// scan in the batch through the multi-query NN kernels (one pass over each
// row tile serves all of them). Results and errors are per query: one
// query without a finite distance fails alone, not the batch. Every query
// must already match the model's dimensionality (the server validates at
// admission; a mismatch is a programming error and panics, as Assign
// always has).
func (e *Engine) AssignBatch(qs []points.Vector, exactOnly bool) ([]Assignment, []error, ScanStats) {
	nq := len(qs)
	out := make([]Assignment, nq)
	errs := make([]error, nq)
	var st ScanStats
	for _, q := range qs {
		if len(q) != e.m.Dim {
			panic(fmt.Sprintf("serve: query dim %d, model dim %d", len(q), e.m.Dim))
		}
	}
	bs := e.batches.Get().(*batchScratch)
	bs.pending = bs.pending[:0]
	if exactOnly || e.layouts == nil {
		for i := range qs {
			bs.pending = append(bs.pending, int32(i))
		}
	} else {
		s := e.scratch.Get().(*scratch)
		for i, q := range qs {
			cand := e.candidates(q, s)
			if len(cand) == 0 {
				bs.pending = append(bs.pending, int32(i))
				continue
			}
			best, best2, rerank := e.nnRows(q, cand, s)
			st.Scanned += int64(len(cand))
			st.Rerank += int64(rerank)
			if e.prec != PrecF64 {
				st.RerankQueries++
			}
			if best < 0 {
				// Every candidate distance overflowed to +Inf; the full
				// scan may still find a finite one.
				bs.pending = append(bs.pending, int32(i))
				continue
			}
			out[i] = e.finalize(q, best, best2, false)
		}
		e.scratch.Put(s)
	}
	if len(bs.pending) > 0 {
		st.ExactQueries += int64(len(bs.pending))
		e.exactBatch(qs, bs, out, errs, &st)
	}
	e.batches.Put(bs)
	return out, errs, st
}

// candidates gathers the deduplicated LSH bucket union of q into s.cand.
func (e *Engine) candidates(q points.Vector, s *scratch) []int32 {
	s.epoch++
	if s.epoch <= 0 { // epoch wrapped: invalidate all stamps
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.cand = s.cand[:0]
	for _, key := range e.layouts.Keys(q) {
		for _, r := range e.buckets[key] {
			if s.stamp[r] != s.epoch {
				s.stamp[r] = s.epoch
				s.cand = append(s.cand, r)
			}
		}
	}
	return s.cand
}

// nnRows scans the candidate rows at the engine's precision: directly at
// f64, or compact-scan + exact float64 re-rank of the shortlist otherwise.
// rerank is the shortlist size (0 at f64). Results are bit-identical
// across precisions.
func (e *Engine) nnRows(q points.Vector, cand []int32, s *scratch) (best int, best2 float64, rerank int) {
	dim := e.m.Dim
	switch e.prec {
	case PrecF32:
		s.q32 = f32Append(s.q32[:0], q)
		s.sl.Reset(e.f32Bounds(q))
		kernels.NNRows32(e.data32, dim, s.q32, cand, &s.sl)
	case PrecQ8:
		kernels.BuildQ8LUT(e.q8par, q, &s.lut)
		s.sl.Reset(e.q8bnd)
		kernels.NNRowsQ8(e.q8, dim, &s.lut, cand, &s.sl)
	default:
		b, b2 := kernels.NNRows(e.m.Data, dim, q, cand)
		return b, b2, 0
	}
	short := s.sl.Finish()
	b, b2 := kernels.NNRows(e.m.Data, dim, q, short)
	return b, b2, len(short)
}

// exactBatch answers bs.pending through the batched exact-scan kernels.
func (e *Engine) exactBatch(qs []points.Vector, bs *batchScratch, out []Assignment, errs []error, st *ScanStats) {
	dim, n := e.m.Dim, e.m.N()
	np := len(bs.pending)
	bs.flat = bs.flat[:0]
	for _, qi := range bs.pending {
		bs.flat = append(bs.flat, qs[qi]...)
	}
	bs.best = intsN(bs.best, np)
	bs.best2 = floatsN(bs.best2, np)
	st.Scanned += int64(n) * int64(np)
	switch e.prec {
	case PrecF32:
		bs.flat32 = f32Append(bs.flat32[:0], bs.flat)
		bnd := e.f32Bounds(bs.flat)
		bs.sls = slsN(bs.sls, np)
		for i := range bs.sls {
			bs.sls[i].Reset(bnd)
		}
		kernels.NNBatch32(e.data32, dim, bs.flat32, 0, n, bs.sls)
		e.rerankBatch(qs, bs, st)
	case PrecQ8:
		bs.sls = slsN(bs.sls, np)
		bs.luts = lutsN(bs.luts, np)
		for i, qi := range bs.pending {
			kernels.BuildQ8LUT(e.q8par, qs[qi], &bs.luts[i])
			bs.sls[i].Reset(e.q8bnd)
		}
		kernels.NNBatchQ8(e.q8, dim, bs.luts, 0, n, bs.sls)
		e.rerankBatch(qs, bs, st)
	default:
		kernels.NNBatch(e.m.Data, dim, bs.flat, 0, n, bs.best, bs.best2)
	}
	for i, qi := range bs.pending {
		if bs.best[i] < 0 {
			errs[qi] = errNoFinite()
			continue
		}
		out[qi] = e.finalize(qs[qi], int(bs.best[i]), bs.best2[i], true)
	}
}

// rerankBatch resolves each pending query's shortlist exactly in float64.
func (e *Engine) rerankBatch(qs []points.Vector, bs *batchScratch, st *ScanStats) {
	for i, qi := range bs.pending {
		short := bs.sls[i].Finish()
		st.Rerank += int64(len(short))
		st.RerankQueries++
		b, b2 := kernels.NNRows(e.m.Data, e.m.Dim, qs[qi], short)
		bs.best[i], bs.best2[i] = int32(b), b2
	}
}

// f32Bounds builds the f32 scan bounds for query coordinates quals (any
// flat slice of them), folding their magnitude into the model-wide one.
func (e *Engine) f32Bounds(quals []float64) kernels.Bounds {
	return kernels.F32Bounds(e.m.Dim, math.Max(e.maxAbs, maxAbsOf(quals)))
}

// finalize builds the Assignment once the nearest stored row is known.
func (e *Engine) finalize(q points.Vector, best int, best2 float64, exact bool) Assignment {
	cluster := e.m.Labels[best]
	peak := e.m.Peaks[cluster]
	return Assignment{
		Cluster:  cluster,
		Halo:     e.m.Rho[best] < e.m.Border[cluster],
		Nearest:  int32(best),
		Dist:     math.Sqrt(best2),
		PeakDist: points.Dist(q, e.m.Row(int(peak))),
		Exact:    exact,
	}
}

func f32Append(dst []float32, src []float64) []float32 {
	for _, v := range src {
		dst = append(dst, float32(v))
	}
	return dst
}

func intsN(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func floatsN(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func slsN(s []kernels.Shortlist, n int) []kernels.Shortlist {
	if cap(s) < n {
		ns := make([]kernels.Shortlist, n)
		copy(ns, s[:cap(s)])
		return ns
	}
	return s[:n]
}

func lutsN(s []kernels.Q8LUT, n int) []kernels.Q8LUT {
	if cap(s) < n {
		ns := make([]kernels.Q8LUT, n)
		copy(ns, s[:cap(s)])
		return ns
	}
	return s[:n]
}
