// Package serve is the online cluster-serving subsystem: it answers "which
// cluster does this point belong to?" against a frozen model artifact
// (internal/model) without rerunning any MapReduce job.
//
// The engine reuses the training run's LSH machinery as an approximate
// nearest-neighbor index: it regenerates the M hash layouts from the
// model's parameters, buckets every stored point under each layout, and
// answers a query by probing the query's M bucket keys and scanning only
// the candidate union with the dense NN kernels — the same
// locality-preserving partitions that made ρ̂/δ̂ accurate make the nearest
// labeled point overwhelmingly likely to share a bucket with the query.
// When every probe comes up empty (a query far from all training data) the
// engine falls back to an exact full scan, so an answer is always returned
// and is always the label of some stored point.
//
// Scans run at a configurable precision (serve.scan.precision): f64 streams
// the float64 block directly; f32 and q8 stream a compact mirror (half or
// an eighth of the bytes), collect a provably sufficient shortlist, and
// re-rank it exactly in float64 (internal/kernels compact scan path), so
// labels, NN indices, distances, and the tie rule are bit-identical across
// precisions. Micro-batches additionally run their exact scans through the
// multi-query NNBatch kernels: one pass over each row tile serves the whole
// batch.
//
// The HTTP server in server.go fronts the engine with micro-batching of
// concurrent requests, a bounded admission queue with load shedding,
// latency histograms, health/stats endpoints, hot model reload, and
// graceful drain — see DESIGN.md "Online serving".
package serve

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/model"
	"repro/internal/points"
)

// Assignment is the answer for one query point.
type Assignment struct {
	// Cluster is the assigned cluster (index into the model's peaks).
	Cluster int32 `json:"cluster"`
	// Halo reports whether the query lands in the cluster's halo (its
	// nearest stored point sits below the cluster's border density).
	Halo bool `json:"halo"`
	// Nearest is the stored point ID whose label the query inherited.
	Nearest int32 `json:"nearest"`
	// Dist is the Euclidean distance to that nearest stored point.
	Dist float64 `json:"dist"`
	// PeakDist is the Euclidean distance to the assigned cluster's peak.
	PeakDist float64 `json:"peak_dist"`
	// Exact reports that the exact-scan fallback answered (no LSH bucket
	// held a candidate, or the engine runs without an index).
	Exact bool `json:"exact"`
	// Dist2 is the squared distance to the nearest stored point — the
	// fleet router's merge key (comparing on Dist would let two distinct
	// squared distances collide after rounding). Never serialized on the
	// public /assign response; the shard-internal /fleet/assign wire
	// carries it explicitly.
	Dist2 float64 `json:"-"`
}

// Precision selects the scan representation of the serving engine.
type Precision uint8

const (
	// PrecF64 scans the float64 block directly (the exact baseline).
	PrecF64 Precision = iota
	// PrecF32 scans a float32 mirror and re-ranks the shortlist exactly.
	PrecF32
	// PrecQ8 scans 8-bit quantized codes via a per-query lookup table and
	// re-ranks the shortlist exactly.
	PrecQ8
)

// ParsePrecision parses a serve.scan.precision value ("" means f64).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", kernels.ScanF64:
		return PrecF64, nil
	case kernels.ScanF32:
		return PrecF32, nil
	case kernels.ScanQ8:
		return PrecQ8, nil
	}
	return PrecF64, fmt.Errorf("serve: unknown scan precision %q (want f64, f32, or q8)", s)
}

// String returns the knob spelling of p.
func (p Precision) String() string {
	switch p {
	case PrecF32:
		return kernels.ScanF32
	case PrecQ8:
		return kernels.ScanQ8
	}
	return kernels.ScanF64
}

// ScanStats aggregates the scan work of one AssignBatch call.
type ScanStats struct {
	// Scanned counts stored rows whose (compact or exact) distance to a
	// query was evaluated.
	Scanned int64
	// Rerank counts shortlist rows re-ranked in exact float64 after a
	// compact scan (0 at PrecF64).
	Rerank int64
	// RerankQueries counts queries whose nearest neighbor came out of a
	// compact scan + exact re-rank (0 at PrecF64).
	RerankQueries int64
	// ExactQueries counts queries answered by the exact full-scan path.
	ExactQueries int64
}

// Engine answers queries against one immutable model. It is safe for
// concurrent use; the server swaps the whole engine on hot reload.
type Engine struct {
	m       *model.Model
	layouts *lsh.Layouts
	// keyIDs interns every distinct layout-prefixed LSH key ("m|k1.k2...")
	// of the stored points; buckets[id] holds the rows stored under that
	// key, in ascending row order.
	keyIDs  map[string]int32
	buckets [][]int32
	// rowKeys, in fleet mode (a sub-model with RowIDs), holds each row's
	// interned key ID under every layout (row-major n×M). It is what makes
	// cross-shard candidate dedup exact: when a masked query asks this
	// shard to scan layout j, a row already matching the query under a
	// cyclically-earlier layout is skipped here, because the shard owning
	// that layout scans it — every global candidate is scanned exactly
	// once fleet-wide.
	rowKeys []int32
	// rowSigs packs, per row, a 6-bit hash of each layout's key ID into one
	// word (built when M <= 10 fields fit 64 bits). One XOR + SWAR zero-
	// field test against the query's signature proves "no earlier layout
	// matches" for the common non-overlapping row without touching rowKeys;
	// only flagged rows (true overlaps plus ~2% hash aliases) run the exact
	// compare loop. The signature is shard-local — it guards a local
	// short-cut, never the cross-shard decision itself. Populated only
	// while NewEngine builds bucketSigs, then released.
	rowSigs []uint64
	// bucketSigs mirrors buckets posting-for-posting with each row's
	// signature word, so the masked scan's SWAR probes stream through one
	// contiguous array per bucket walk instead of striding through rowSigs
	// by row index. Bucket rows are sparse in the row space, so the strided
	// form touches one useful word per cache line; several engines
	// co-resident on one machine (a benched fleet) turn that into a miss
	// per probe. Costs one extra word per posting (n × M × 8 bytes).
	bucketSigs [][]uint64
	sigLows    uint64 // 0b000001 in every 6-bit field
	sigHighs   uint64 // 0b100000 in every 6-bit field

	// prec is the effective scan precision: the requested one, or PrecF64
	// when the model data cannot support the compact representation (e.g.
	// unquantizable coordinates).
	prec   Precision
	data32 []float32       // float32 mirror (PrecF32)
	maxAbs float64         // largest |coordinate| of the model data
	q8     []uint8         // quantized codes (PrecQ8)
	q8par  points.Q8Params // their per-dimension affine parameters
	q8bnd  kernels.Bounds  // query-independent q8 scan bounds

	// scratch pools per-query candidate state sized to this model;
	// batches pools per-batch scan state.
	scratch sync.Pool
	batches sync.Pool
}

// scratch is the reusable per-query candidate-dedup and compact-scan state.
type scratch struct {
	stamp []int32 // per-row epoch marks
	epoch int32
	cand  []int32
	qids  []int32 // per-layout interned key IDs of the query (fleet mode)
	q32   []float32
	sl    kernels.Shortlist
	lut   kernels.Q8LUT
}

// batchScratch is the reusable per-batch exact-scan state.
type batchScratch struct {
	pending []int32 // query indices still needing the exact scan
	flat    []float64
	flat32  []float32
	best    []int32
	best2   []float64
	sls     []kernels.Shortlist
	luts    []kernels.Q8LUT
}

// NewEngine indexes a model for serving at the requested scan precision.
// With LSH parameters present the index holds M buckets per stored point; a
// model exported without LSH (M == 0) serves through exact scans only.
// When the model cannot support the requested compact representation the
// engine silently serves at f64 — check Precision() for the effective
// setting. Results are identical either way.
func NewEngine(m *model.Model, prec Precision) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{m: m, layouts: m.Layouts()}
	e.maxAbs = maxAbsOf(m.Data)
	e.prec = e.setupCompact(prec)
	n := m.N()
	e.scratch.New = func() any { return &scratch{stamp: make([]int32, n)} }
	e.batches.New = func() any { return new(batchScratch) }
	if e.layouts == nil {
		return e, nil
	}
	// Fleet sub-models (RowIDs present) additionally record each row's key
	// under every layout, the input to masked cross-shard dedup.
	fleet := len(m.RowIDs) != 0
	nl := e.layouts.M()
	e.keyIDs = make(map[string]int32, n)
	if fleet {
		e.rowKeys = make([]int32, n*nl)
		if nl <= 10 {
			e.rowSigs = make([]uint64, n)
			for f := 0; f < nl; f++ {
				e.sigLows |= 1 << uint(6*f)
			}
			e.sigHighs = e.sigLows << 5
		}
	}
	for i := 0; i < n; i++ {
		for j, key := range e.layouts.Keys(m.Row(i)) {
			id, ok := e.keyIDs[key]
			if !ok {
				id = int32(len(e.buckets))
				e.keyIDs[key] = id
				e.buckets = append(e.buckets, nil)
			}
			e.buckets[id] = append(e.buckets[id], int32(i))
			if fleet {
				e.rowKeys[i*nl+j] = id
				if e.rowSigs != nil {
					e.rowSigs[i] |= sigField(id) << uint(6*j)
				}
			}
		}
	}
	if e.rowSigs != nil {
		// Second pass: signatures are complete only after every layout of a
		// row has been interned, so the posting-aligned mirror builds here.
		e.bucketSigs = make([][]uint64, len(e.buckets))
		for id, rows := range e.buckets {
			sigs := make([]uint64, len(rows))
			for p, r := range rows {
				sigs[p] = e.rowSigs[r]
			}
			e.bucketSigs[id] = sigs
		}
		e.rowSigs = nil // scans read the posting-aligned mirror only
	}
	return e, nil
}

// sigField hashes an interned key ID to a nonzero 6-bit signature field;
// zero is reserved for "query has no such key here", which must never
// compare equal to a stored row's field.
func sigField(id int32) uint64 {
	return 1 + mix64(uint64(id))%63
}

// setupCompact derives (or adopts from the model artifact) the compact
// representation for the requested precision, returning the effective one.
func (e *Engine) setupCompact(prec Precision) Precision {
	m := e.m
	switch prec {
	case PrecF32:
		if !kernels.F32Bounds(m.Dim, e.maxAbs).Valid() {
			return PrecF64
		}
		if len(m.Data32) == len(m.Data) {
			e.data32 = m.Data32
		} else {
			e.data32, _ = points.ToFloat32(m.Data)
		}
		return PrecF32
	case PrecQ8:
		if len(m.Q8Codes) == len(m.Data) && m.Q8Params().Valid(m.Dim) {
			e.q8, e.q8par = m.Q8Codes, m.Q8Params()
		} else {
			codes, par, ok := points.QuantizeQ8(m.Data, m.Dim)
			if !ok {
				return PrecF64
			}
			e.q8, e.q8par = codes, par
		}
		e.q8bnd = kernels.Q8Bounds(m.Dim, e.q8par.ErrBound())
		if !e.q8bnd.Valid() {
			e.q8, e.q8par = nil, points.Q8Params{}
			return PrecF64
		}
		return PrecQ8
	}
	return PrecF64
}

func maxAbsOf(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Model returns the engine's model.
func (e *Engine) Model() *model.Model { return e.m }

// Buckets returns the number of distinct LSH buckets in the index.
func (e *Engine) Buckets() int { return len(e.buckets) }

// Pruned reports whether the engine carries an LSH index.
func (e *Engine) Pruned() bool { return e.layouts != nil }

// FleetIndexed reports whether the engine can answer masked fleet scans
// (an LSH index over a sub-model with row IDs, so per-row layout keys are
// recorded for cross-shard dedup).
func (e *Engine) FleetIndexed() bool { return e.rowKeys != nil }

// Layouts returns the number of LSH layouts (0 without an index).
func (e *Engine) Layouts() int {
	if e.layouts == nil {
		return 0
	}
	return e.layouts.M()
}

// Precision returns the effective scan precision.
func (e *Engine) Precision() Precision { return e.prec }

// MaxCoord returns the largest coordinate magnitude a dim-dimensional
// query may carry: with every coordinate of the query and the stored
// points bounded by it, no squared distance can overflow to +Inf. The
// server rejects larger (or non-finite) coordinates at admission.
func MaxCoord(dim int) float64 {
	return math.Sqrt(math.MaxFloat64/float64(dim)) / 2
}

// ErrNoFinite is returned when no stored point has a finite distance to a
// query (overflowing or non-finite coordinates); no assignment exists
// then. The fleet router returns the same error verbatim so a routed
// request fails byte-identically to a single-node one.
var ErrNoFinite = fmt.Errorf("serve: no finite distance from query to any stored point (coordinates non-finite or too large)")

// ErrNoCandidates is the per-query result of a masked fleet scan that
// found no (finite-distance) candidate in any of the layouts this shard
// was asked to probe. It is a routing signal, not a failure: when every
// owning shard answers this, the router broadcasts the exact-scan
// fallback, reproducing the single-node fallback rule.
var ErrNoCandidates = fmt.Errorf("serve: no LSH candidates in the probed layouts")

// BatchOpts selects the scan mode of one AssignBatchOpts call.
type BatchOpts struct {
	// ExactOnly forces the full-scan path for every query (the benchmark
	// switch and the fleet's broadcast fallback). Takes precedence over
	// Masks.
	ExactOnly bool
	// Masks, when non-nil, runs the fleet's masked pruned scan: entry i
	// has bit j set iff this engine should probe layout j for query i.
	// Requires FleetIndexed. Queries without candidates get
	// ErrNoCandidates instead of the exact fallback — the router decides
	// fleet-wide whether to fall back.
	Masks []uint64
}

// Assign answers one query. exactOnly forces the full-scan path (the
// pruned-vs-exact benchmark switch). scanned is the number of stored rows
// whose distance to the query was evaluated. An error means no stored
// point had a finite distance to the query; no assignment exists in that
// case.
func (e *Engine) Assign(q points.Vector, exactOnly bool) (Assignment, int, error) {
	out, errs, st := e.AssignBatch([]points.Vector{q}, exactOnly)
	return out[0], int(st.Scanned), errs[0]
}

// AssignBatch answers a micro-batch of queries, running every exact full
// scan in the batch through the multi-query NN kernels (one pass over each
// row tile serves all of them). Results and errors are per query: one
// query without a finite distance fails alone, not the batch. Every query
// must already match the model's dimensionality (the server validates at
// admission; a mismatch is a programming error and panics, as Assign
// always has).
func (e *Engine) AssignBatch(qs []points.Vector, exactOnly bool) ([]Assignment, []error, ScanStats) {
	return e.AssignBatchOpts(qs, BatchOpts{ExactOnly: exactOnly})
}

// AssignBatchOpts is AssignBatch with an explicit scan mode — the fleet
// entry point (see BatchOpts).
func (e *Engine) AssignBatchOpts(qs []points.Vector, opts BatchOpts) ([]Assignment, []error, ScanStats) {
	nq := len(qs)
	out := make([]Assignment, nq)
	errs := make([]error, nq)
	var st ScanStats
	for _, q := range qs {
		if len(q) != e.m.Dim {
			panic(fmt.Sprintf("serve: query dim %d, model dim %d", len(q), e.m.Dim))
		}
	}
	masked := !opts.ExactOnly && opts.Masks != nil
	if masked {
		if !e.FleetIndexed() {
			panic("serve: masked scan on an engine without a fleet index")
		}
		if len(opts.Masks) != nq {
			panic(fmt.Sprintf("serve: %d masks for %d queries", len(opts.Masks), nq))
		}
	}
	bs := e.batches.Get().(*batchScratch)
	bs.pending = bs.pending[:0]
	if opts.ExactOnly || e.layouts == nil {
		for i := range qs {
			bs.pending = append(bs.pending, int32(i))
		}
	} else {
		s := e.scratch.Get().(*scratch)
		for i, q := range qs {
			var cand []int32
			if masked {
				cand = e.candidatesMasked(q, opts.Masks[i], s)
			} else {
				cand = e.candidates(q, s)
			}
			if len(cand) == 0 {
				if masked {
					errs[i] = ErrNoCandidates
				} else {
					bs.pending = append(bs.pending, int32(i))
				}
				continue
			}
			best, best2, rerank := e.nnRows(q, cand, s)
			st.Scanned += int64(len(cand))
			st.Rerank += int64(rerank)
			if e.prec != PrecF64 {
				st.RerankQueries++
			}
			if best < 0 {
				// Every candidate distance overflowed to +Inf; the full
				// scan may still find a finite one. In masked mode that
				// decision belongs to the router.
				if masked {
					errs[i] = ErrNoCandidates
				} else {
					bs.pending = append(bs.pending, int32(i))
				}
				continue
			}
			out[i] = e.finalize(q, best, best2, false)
		}
		e.scratch.Put(s)
	}
	if len(bs.pending) > 0 {
		st.ExactQueries += int64(len(bs.pending))
		e.exactBatch(qs, bs, out, errs, &st)
	}
	e.batches.Put(bs)
	return out, errs, st
}

// candidates gathers the deduplicated LSH bucket union of q into s.cand.
func (e *Engine) candidates(q points.Vector, s *scratch) []int32 {
	s.epoch++
	if s.epoch <= 0 { // epoch wrapped: invalidate all stamps
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.cand = s.cand[:0]
	for _, key := range e.layouts.Keys(q) {
		id, ok := e.keyIDs[key]
		if !ok {
			continue
		}
		for _, r := range e.buckets[id] {
			if s.stamp[r] != s.epoch {
				s.stamp[r] = s.epoch
				s.cand = append(s.cand, r)
			}
		}
	}
	return s.cand
}

// CandidateRows appends the deduplicated LSH candidate-bucket union of q
// to dst and reports whether the engine has a pruned index at all (an
// engine built without LSH parameters returns dst unchanged and false —
// the caller owns the full-scan fallback). The ingest layer uses this to
// find the stored rows a new point adds density mass to; query answering
// stays on AssignBatchOpts.
func (e *Engine) CandidateRows(q points.Vector, dst []int32) ([]int32, bool) {
	if e.layouts == nil {
		return dst, false
	}
	s := e.scratch.Get().(*scratch)
	dst = append(dst, e.candidates(q, s)...)
	e.scratch.Put(s)
	return dst, true
}

// candidatesMasked gathers q's candidates from the layouts selected by
// mask. A row sitting in several of q's buckets must be scanned by exactly
// one shard fleet-wide, so each row goes to its FIRST matching layout in a
// per-query cyclic order starting at j0 = hash(q's bucket keys) mod M: the
// shard owning layout j scans bucket k_j(q) and skips any row that also
// matches q under a cyclically-earlier layout — whether that layout is in
// the mask or not (its owner takes the row). The skip check early-exits on
// the first cyclically-earlier match, so a row in a dense region costs one
// int32 compare, not an O(M) election; rotating the start by the query's
// key hash spreads a hot bucket's scan work across every layout's owner in
// aggregate instead of piling it onto layout 0's. j0 and the skip compares
// depend only on the query's key strings and the row's own keys (a stored
// row interns all M of its keys), so every shard decides identically and
// the fleet-wide scan union equals the single-node dedup union exactly.
func (e *Engine) candidatesMasked(q points.Vector, mask uint64, s *scratch) []int32 {
	nl := e.layouts.M()
	s.qids = s.qids[:0]
	keys := e.layouts.Keys(q)
	for _, key := range keys {
		id, ok := e.keyIDs[key]
		if !ok {
			id = -1 // key holds no stored row here; matches nothing
		}
		s.qids = append(s.qids, id)
	}
	j0 := ScanRotation(keys)
	var sigQ uint64
	if e.bucketSigs != nil {
		for j, id := range s.qids {
			if id >= 0 {
				sigQ |= sigField(id) << uint(6*j)
			}
		}
	}
	s.cand = s.cand[:0]
	for j := 0; j < nl; j++ {
		if mask&(1<<uint(j)) == 0 {
			continue
		}
		id := s.qids[j]
		if id < 0 {
			continue
		}
		// Cyclic distance from j0 to j: the number of layouts to check.
		ahead := j - j0
		if ahead < 0 {
			ahead += nl
		}
		if e.bucketSigs != nil {
			// Fast path: one SWAR probe per row, streamed from the bucket's
			// posting-aligned signature array. notWin forces every field
			// outside the cyclic check window [j0, j) to a nonzero value, so
			// the zero-field test can only fire inside the window; firing is
			// conservative (hash aliases), the exact loop confirms. A missed
			// overlap is impossible — equal key IDs hash to equal fields —
			// so no row is ever dropped, and a (never-occurring) duplicate
			// scan would not change the merged argmin anyway.
			var win uint64
			for dj := 0; dj < ahead; dj++ {
				j2 := j0 + dj
				if j2 >= nl {
					j2 -= nl
				}
				win |= 0x3F << uint(6*j2)
			}
			notWin := ^win
			sigs := e.bucketSigs[id]
		fastRows:
			for p, r := range e.buckets[id] {
				y := (sigs[p] ^ sigQ) | notWin
				if (y-e.sigLows)&^y&e.sigHighs == 0 {
					s.cand = append(s.cand, r) // definitely no earlier match
					continue
				}
				base := int(r) * nl
				for dj := 0; dj < ahead; dj++ {
					j2 := j0 + dj
					if j2 >= nl {
						j2 -= nl
					}
					if e.rowKeys[base+j2] == s.qids[j2] {
						continue fastRows // earlier layout takes this row
					}
				}
				s.cand = append(s.cand, r)
			}
			continue
		}
	rows:
		for _, r := range e.buckets[id] {
			base := int(r) * nl
			for dj := 0; dj < ahead; dj++ {
				j2 := j0 + dj
				if j2 >= nl {
					j2 -= nl
				}
				if e.rowKeys[base+j2] == s.qids[j2] {
					continue rows // cyclically-earlier layout takes this row
				}
			}
			s.cand = append(s.cand, r)
		}
	}
	// Candidates arrive grouped by layout rather than in ascending row
	// order; that is fine — NNRows ties on the row index itself, and the
	// compact shortlist contract is order-independent (PR7's chunking
	// property tests), so the merged fleet answer is unaffected.
	return s.cand
}

// ScanRotation returns the start layout j₀ of the masked scan's cyclic
// first-match order for a query with the given bucket keys (one per
// layout, in layout order). It is part of the fleet scan-partition
// contract: every shard — and the fleet partitioner, which replays
// sample queries through the same rule to estimate each bucket's true
// scoring load — must derive the identical rotation from the identical
// key strings.
func ScanRotation(keys []string) int {
	var kh uint64
	for _, key := range keys {
		kh ^= fnv64a(key)
	}
	return int(mix64(kh) % uint64(len(keys)))
}

// fnv64a hashes s with 64-bit FNV-1a; ScanRotation folds the query's
// bucket-key strings through it to derive the per-query scan rotation.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective scramble used to
// turn the query's folded key hash into a scan-rotation start layout in
// candidatesMasked. It must stay identical on every shard of a fleet — it
// is part of the scan-partition contract.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nnRows scans the candidate rows at the engine's precision: directly at
// f64, or compact-scan + exact float64 re-rank of the shortlist otherwise.
// rerank is the shortlist size (0 at f64). Results are bit-identical
// across precisions.
func (e *Engine) nnRows(q points.Vector, cand []int32, s *scratch) (best int, best2 float64, rerank int) {
	dim := e.m.Dim
	switch e.prec {
	case PrecF32:
		s.q32 = f32Append(s.q32[:0], q)
		s.sl.Reset(e.f32Bounds(q))
		kernels.NNRows32(e.data32, dim, s.q32, cand, &s.sl)
	case PrecQ8:
		kernels.BuildQ8LUT(e.q8par, q, &s.lut)
		s.sl.Reset(e.q8bnd)
		kernels.NNRowsQ8(e.q8, dim, &s.lut, cand, &s.sl)
	default:
		b, b2 := kernels.NNRows(e.m.Data, dim, q, cand)
		return b, b2, 0
	}
	short := s.sl.Finish()
	b, b2 := kernels.NNRows(e.m.Data, dim, q, short)
	return b, b2, len(short)
}

// exactBatch answers bs.pending through the batched exact-scan kernels.
func (e *Engine) exactBatch(qs []points.Vector, bs *batchScratch, out []Assignment, errs []error, st *ScanStats) {
	dim, n := e.m.Dim, e.m.N()
	np := len(bs.pending)
	bs.flat = bs.flat[:0]
	for _, qi := range bs.pending {
		bs.flat = append(bs.flat, qs[qi]...)
	}
	bs.best = intsN(bs.best, np)
	bs.best2 = floatsN(bs.best2, np)
	st.Scanned += int64(n) * int64(np)
	switch e.prec {
	case PrecF32:
		bs.flat32 = f32Append(bs.flat32[:0], bs.flat)
		bnd := e.f32Bounds(bs.flat)
		bs.sls = slsN(bs.sls, np)
		for i := range bs.sls {
			bs.sls[i].Reset(bnd)
		}
		kernels.NNBatch32(e.data32, dim, bs.flat32, 0, n, bs.sls)
		e.rerankBatch(qs, bs, st)
	case PrecQ8:
		bs.sls = slsN(bs.sls, np)
		bs.luts = lutsN(bs.luts, np)
		for i, qi := range bs.pending {
			kernels.BuildQ8LUT(e.q8par, qs[qi], &bs.luts[i])
			bs.sls[i].Reset(e.q8bnd)
		}
		kernels.NNBatchQ8(e.q8, dim, bs.luts, 0, n, bs.sls)
		e.rerankBatch(qs, bs, st)
	default:
		kernels.NNBatch(e.m.Data, dim, bs.flat, 0, n, bs.best, bs.best2)
	}
	for i, qi := range bs.pending {
		if bs.best[i] < 0 {
			errs[qi] = ErrNoFinite
			continue
		}
		out[qi] = e.finalize(qs[qi], int(bs.best[i]), bs.best2[i], true)
	}
}

// rerankBatch resolves each pending query's shortlist exactly in float64.
func (e *Engine) rerankBatch(qs []points.Vector, bs *batchScratch, st *ScanStats) {
	for i, qi := range bs.pending {
		short := bs.sls[i].Finish()
		st.Rerank += int64(len(short))
		st.RerankQueries++
		b, b2 := kernels.NNRows(e.m.Data, e.m.Dim, qs[qi], short)
		bs.best[i], bs.best2[i] = int32(b), b2
	}
}

// f32Bounds builds the f32 scan bounds for query coordinates quals (any
// flat slice of them), folding their magnitude into the model-wide one.
func (e *Engine) f32Bounds(quals []float64) kernels.Bounds {
	return kernels.F32Bounds(e.m.Dim, math.Max(e.maxAbs, maxAbsOf(quals)))
}

// finalize builds the Assignment once the nearest stored row is known.
// Nearest is reported as the GLOBAL point ID (identical to the local row
// on a full model), so fleet answers merge and compare across shards.
func (e *Engine) finalize(q points.Vector, best int, best2 float64, exact bool) Assignment {
	cluster := e.m.Labels[best]
	peak := e.m.Peaks[cluster]
	return Assignment{
		Cluster:  cluster,
		Halo:     e.m.Rho[best] < e.m.Border[cluster],
		Nearest:  e.m.GlobalID(best),
		Dist:     math.Sqrt(best2),
		Dist2:    best2,
		PeakDist: points.Dist(q, e.m.Row(int(peak))),
		Exact:    exact,
	}
}

func f32Append(dst []float32, src []float64) []float32 {
	for _, v := range src {
		dst = append(dst, float32(v))
	}
	return dst
}

func intsN(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func floatsN(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func slsN(s []kernels.Shortlist, n int) []kernels.Shortlist {
	if cap(s) < n {
		ns := make([]kernels.Shortlist, n)
		copy(ns, s[:cap(s)])
		return ns
	}
	return s[:n]
}

func lutsN(s []kernels.Q8LUT, n int) []kernels.Q8LUT {
	if cap(s) < n {
		ns := make([]kernels.Q8LUT, n)
		copy(ns, s[:cap(s)])
		return ns
	}
	return s[:n]
}
