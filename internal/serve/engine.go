// Package serve is the online cluster-serving subsystem: it answers "which
// cluster does this point belong to?" against a frozen model artifact
// (internal/model) without rerunning any MapReduce job.
//
// The engine reuses the training run's LSH machinery as an approximate
// nearest-neighbor index: it regenerates the M hash layouts from the
// model's parameters, buckets every stored point under each layout, and
// answers a query by probing the query's M bucket keys and scanning only
// the candidate union with the dense NN kernels — the same
// locality-preserving partitions that made ρ̂/δ̂ accurate make the nearest
// labeled point overwhelmingly likely to share a bucket with the query.
// When every probe comes up empty (a query far from all training data) the
// engine falls back to an exact full scan, so an answer is always returned
// and is always the label of some stored point.
//
// The HTTP server in server.go fronts the engine with micro-batching of
// concurrent requests, a bounded admission queue with load shedding,
// latency histograms, health/stats endpoints, hot model reload, and
// graceful drain — see DESIGN.md "Online serving".
package serve

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/model"
	"repro/internal/points"
)

// Assignment is the answer for one query point.
type Assignment struct {
	// Cluster is the assigned cluster (index into the model's peaks).
	Cluster int32 `json:"cluster"`
	// Halo reports whether the query lands in the cluster's halo (its
	// nearest stored point sits below the cluster's border density).
	Halo bool `json:"halo"`
	// Nearest is the stored point ID whose label the query inherited.
	Nearest int32 `json:"nearest"`
	// Dist is the Euclidean distance to that nearest stored point.
	Dist float64 `json:"dist"`
	// PeakDist is the Euclidean distance to the assigned cluster's peak.
	PeakDist float64 `json:"peak_dist"`
	// Exact reports that the exact-scan fallback answered (no LSH bucket
	// held a candidate, or the engine runs without an index).
	Exact bool `json:"exact"`
}

// Engine answers queries against one immutable model. It is safe for
// concurrent use; the server swaps the whole engine on hot reload.
type Engine struct {
	m       *model.Model
	layouts *lsh.Layouts
	// buckets maps a layout-prefixed LSH key ("m|k1.k2...") to the rows
	// stored under it, in ascending row order.
	buckets map[string][]int32
	// scratch pools per-query candidate state sized to this model.
	scratch sync.Pool
}

// scratch is the reusable per-query candidate-dedup state.
type scratch struct {
	stamp []int32 // per-row epoch marks
	epoch int32
	cand  []int32
}

// NewEngine indexes a model for serving. With LSH parameters present the
// index holds M buckets per stored point; a model exported without LSH
// (M == 0) serves through exact scans only.
func NewEngine(m *model.Model) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{m: m, layouts: m.Layouts()}
	n := m.N()
	e.scratch.New = func() any { return &scratch{stamp: make([]int32, n)} }
	if e.layouts == nil {
		return e, nil
	}
	e.buckets = make(map[string][]int32, n)
	for i := 0; i < n; i++ {
		for _, key := range e.layouts.Keys(m.Row(i)) {
			e.buckets[key] = append(e.buckets[key], int32(i))
		}
	}
	return e, nil
}

// Model returns the engine's model.
func (e *Engine) Model() *model.Model { return e.m }

// Buckets returns the number of distinct LSH buckets in the index.
func (e *Engine) Buckets() int { return len(e.buckets) }

// Pruned reports whether the engine carries an LSH index.
func (e *Engine) Pruned() bool { return e.layouts != nil }

// MaxCoord returns the largest coordinate magnitude a dim-dimensional
// query may carry: with every coordinate of the query and the stored
// points bounded by it, no squared distance can overflow to +Inf. The
// server rejects larger (or non-finite) coordinates at admission.
func MaxCoord(dim int) float64 {
	return math.Sqrt(math.MaxFloat64/float64(dim)) / 2
}

// Assign answers one query. exactOnly forces the full-scan path (the
// pruned-vs-exact benchmark switch). scanned is the number of stored rows
// whose distance to the query was evaluated. An error means no stored
// point had a finite distance to the query (overflowing or non-finite
// coordinates); no assignment exists in that case.
func (e *Engine) Assign(q points.Vector, exactOnly bool) (Assignment, int, error) {
	if len(q) != e.m.Dim {
		// Callers validate dimensionality at the API boundary; this is a
		// programming error, not a data error.
		panic(fmt.Sprintf("serve: query dim %d, model dim %d", len(q), e.m.Dim))
	}
	best := -1
	var best2 float64
	exact := exactOnly || e.layouts == nil
	scanned := 0
	if !exact {
		s := e.scratch.Get().(*scratch)
		s.epoch++
		if s.epoch <= 0 { // epoch wrapped: invalidate all stamps
			for i := range s.stamp {
				s.stamp[i] = 0
			}
			s.epoch = 1
		}
		s.cand = s.cand[:0]
		for _, key := range e.layouts.Keys(q) {
			for _, r := range e.buckets[key] {
				if s.stamp[r] != s.epoch {
					s.stamp[r] = s.epoch
					s.cand = append(s.cand, r)
				}
			}
		}
		if len(s.cand) == 0 {
			exact = true
		} else {
			best, best2 = kernels.NNRows(e.m.Data, e.m.Dim, q, s.cand)
			scanned = len(s.cand)
			if best < 0 {
				// Every candidate distance overflowed to +Inf; the full
				// scan may still find a finite one.
				exact = true
			}
		}
		e.scratch.Put(s)
	}
	if exact {
		best, best2 = kernels.NNRange(e.m.Data, e.m.Dim, q, 0, e.m.N())
		scanned = e.m.N()
	}
	if best < 0 {
		// All squared distances overflowed to +Inf (the NN kernels start
		// at +Inf with a strict < comparison), so no nearest point exists.
		// Return an error rather than indexing Labels[-1].
		return Assignment{}, scanned, fmt.Errorf("serve: no finite distance from query to any stored point (coordinates non-finite or too large)")
	}
	cluster := e.m.Labels[best]
	peak := e.m.Peaks[cluster]
	return Assignment{
		Cluster:  cluster,
		Halo:     e.m.Rho[best] < e.m.Border[cluster],
		Nearest:  int32(best),
		Dist:     math.Sqrt(best2),
		PeakDist: points.Dist(q, e.m.Row(int(peak))),
		Exact:    exact,
	}, scanned, nil
}
