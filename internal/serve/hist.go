package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the latency histogram: power-of-two
// microsecond buckets, bucket i covering [2^i, 2^(i+1)) µs, so the range
// spans 1µs to ~1.2 hours — more than any plausible request latency.
const histBuckets = 32

// Hist is a lock-free log-bucketed latency histogram. Record and quantile
// reads may race benignly (a snapshot is taken bucket by bucket); the
// histogram is for operator visibility, not accounting.
type Hist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.total.Load() }

// Quantile returns an upper bound on the q-quantile (q in (0,1]): the
// upper edge of the bucket holding the q-th observation. Zero when empty.
func (h *Hist) Quantile(q float64) time.Duration {
	var snap [histBuckets]int64
	var total int64
	for i := range snap {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	// Nearest-rank convention: the q-quantile is observation ceil(q*n).
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range snap {
		seen += c
		if seen >= rank {
			return time.Duration(int64(1)<<uint(i+1)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<histBuckets) * time.Microsecond
}
