package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/points"
)

// The server's half of the streaming-ingest path. The actual delta
// segment, WAL, and compactor live in internal/ingest; the server only
// knows the IngestBackend interface so the two packages stay decoupled
// (ingest imports serve for the engine, never the reverse). Wire a
// backend with SetIngest before Start; the /ingest and /compact endpoints
// answer 501 without one.

// IngestResult acknowledges one ingested point: the global point ID it
// was stored under plus its immediate assignment (the same fields /assign
// reports, computed against base + delta at ingest time).
type IngestResult struct {
	ID int32 `json:"id"`
	Assignment
}

// IngestInfo summarizes an ingest backend's state for /statsz and the
// /compact reply.
type IngestInfo struct {
	// Version counts compactions applied to the serving base: 0 is the
	// artifact the store started from, each compaction increments it.
	Version int64 `json:"version"`
	// BaseN is the row count of the current base segment (the compacted,
	// LSH-indexed model the engine scans).
	BaseN int `json:"base_n"`
	// DeltaPoints is the current in-memory delta segment size; it drops
	// to (near) zero after each compaction.
	DeltaPoints int `json:"delta_points"`
	// NextID is the global point ID the next ingested point will get.
	NextID int64 `json:"next_id"`
	// WALBytes is the byte size of the live WAL segments.
	WALBytes int64 `json:"wal_bytes"`
	// Compactions counts compactions run by this process (Version counts
	// them across restarts).
	Compactions int64 `json:"compactions"`
}

// IngestBackend is the store behind a streaming-ingest server (implemented
// by internal/ingest.Store). All methods are safe for concurrent use.
type IngestBackend interface {
	// IngestPoints appends validated points to the delta segment (WAL
	// first), assigns each immediately, and returns one ack per point in
	// order. ErrDeltaFull means the delta hit its bound and the caller
	// should retry after a compaction.
	IngestPoints(pts [][]float64) ([]IngestResult, error)
	// AssignBatch answers queries against base + delta: the engine's
	// AssignBatchOpts plus an exact scan of the delta segment and
	// delta-density-adjusted halo flags. The server routes every scan
	// through this when a backend is configured.
	AssignBatch(qs []points.Vector, opts BatchOpts) ([]Assignment, []error, ScanStats)
	// Compact merges base + delta into a new versioned artifact and swaps
	// it in, returning the post-compaction state.
	Compact() (IngestInfo, error)
	// Info snapshots the backend state without changing it.
	Info() IngestInfo
	// Counters snapshots the backend's ingest.* / compact.* counters for
	// the server's /statsz rollup.
	Counters() map[string]int64
}

// ErrDeltaFull is returned by IngestBackend.IngestPoints when the delta
// segment reached ingest.delta.max; the server maps it to 429 so clients
// back off until the compactor catches up.
var ErrDeltaFull = fmt.Errorf("ingest: delta segment full, compaction pending")

// SetIngest wires a streaming-ingest backend into the server: /ingest and
// /compact become live, /reload is rejected (the compactor owns the model),
// and every query batch is answered through backend.AssignBatch so delta
// points are visible before compaction. Call before Start, together with
// UseEngine(backend's engine); the backend's OnSwap hook should call
// UseEngine to keep admission checks and /statsz in step after compactions.
func (s *Server) SetIngest(b IngestBackend) { s.ingest = b }

// ingestRequest is the /ingest JSON body (same shape as /assign).
type ingestRequest struct {
	Points [][]float64 `json:"points"`
}

// IngestResponse is the /ingest JSON reply. Exported so the fleet router
// decodes shard acks without re-declaring the wire shape.
type IngestResponse struct {
	Results []IngestResult `json:"results"`
}

// handleIngest appends points to the delta segment. Unlike /assign the
// call does not ride the micro-batcher: the backend serializes writers
// internally and the WAL append dominates, so batching adds latency
// without saving work. Admission validation is identical to /assign.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	b := s.ingest
	if b == nil {
		http.Error(w, "not an ingest node (start with -ingest-dir)", http.StatusNotImplemented)
		return
	}
	eng := s.engine.Load()
	if eng == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	var body ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if status, msg := ValidatePoints(body.Points, eng.m.Dim, s.cfg.maxRequestPoints()); status != 0 {
		http.Error(w, msg, status)
		return
	}
	start := time.Now()
	results, err := b.IngestPoints(body.Points)
	if err != nil {
		if err == ErrDeltaFull {
			s.counters.Add(CtrShed, 1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.ingestHist.Record(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(IngestResponse{Results: results}) //nolint:errcheck
}

// handleCompact forces a compaction and replies with the post-compaction
// IngestInfo. fleetctl rollover drives fleets forward with this,
// shard-by-shard.
func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	b := s.ingest
	if b == nil {
		http.Error(w, "not an ingest node (start with -ingest-dir)", http.StatusNotImplemented)
		return
	}
	info, err := b.Compact()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info) //nolint:errcheck
}
