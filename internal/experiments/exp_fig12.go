package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
)

// ExpFig12 regenerates Figure 12: the effect of the LSH parameters M and π
// on runtime (a) and the accuracy metric τ₂ (b), on BigCross500K with
// A = 0.99 and w solved per configuration.
//
// The paper's shape: with small π runtime grows with M; with large π the
// trend can reverse (small M + large π skews partition sizes); τ₂ is
// unstable below M≈5 and ≈0.99 above it. Recommended region: M ∈ [10,20],
// π ∈ [3,10].
func ExpFig12(opt Options) (*Report, error) {
	ds, err := opt.load("BigCross500K")
	if err != nil {
		return nil, err
	}
	eng := opt.engine()
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)
	opt.logf("fig12: N=%d dc=%.4g, computing exact rho...", ds.N(), dc)
	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		return nil, err
	}

	r := &Report{
		Title:   fmt.Sprintf("Figure 12: effect of M and pi on runtime and tau2 (BigCross500K, N=%d, A=0.99)", ds.N()),
		Columns: []string{"M", "pi", "w", "runtime", "dist", "tau2"},
	}
	ms := []int{2, 5, 10, 20, 30}
	pis := []int{3, 10, 20}
	if opt.scale() > 2 {
		ms = []int{2, 5, 10, 20}
		pis = []int{3, 10}
	}
	for _, pi := range pis {
		for _, m := range ms {
			cfg := opt.lshConfig(eng)
			cfg.Dc = dc
			cfg.M = m
			cfg.Pi = pi
			res, err := core.RunLSHDDP(context.Background(), ds, cfg)
			if err != nil {
				return nil, err
			}
			tau2, err := evalmetrics.Tau2(exact.Rho, res.Rho)
			if err != nil {
				return nil, err
			}
			opt.logf("fig12: M=%d pi=%d tau2=%.4f wall=%s", m, pi, tau2, fsec(res.Stats.Wall))
			r.AddRow(
				fmt.Sprintf("%d", m),
				fmt.Sprintf("%d", pi),
				fmt.Sprintf("%.4g", res.Stats.W),
				fsec(res.Stats.Wall),
				fcount(res.Stats.DistanceComputations),
				fmt.Sprintf("%.4f", tau2),
			)
		}
	}
	r.Notes = append(r.Notes,
		"expected shape: runtime grows with M at small pi; tau2 unstable for M < 5, ~0.99 for M >= 5",
		"recommended operating region (paper): M in [10,20], pi in [3,10]")
	return r, nil
}
