package experiments

import (
	"strings"
	"testing"
)

func TestHTMLReport(t *testing.T) {
	r1 := &Report{
		Title:   "Speedups <script>",
		Columns: []string{"dataset", "speedup"},
		Rows:    [][]string{{"A", "1.7x"}, {"B", "3.9x"}},
		Notes:   []string{"a note & more"},
	}
	r2 := &Report{
		Title:   "No chart",
		Columns: []string{"k", "v"},
		Rows:    [][]string{{"x", "not-a-number"}},
	}
	var buf strings.Builder
	if err := HTMLReport(&buf, "Eval <run>", []*Report{r1, r2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "Eval &lt;run&gt;", "Speedups &lt;script&gt;",
		"a note &amp; more", "<svg", "3.9x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	if strings.Contains(out, "<script>") {
		t.Fatal("title not escaped")
	}
	// The non-numeric report must not get a chart.
	if strings.Count(out, "<svg") != 1 {
		t.Fatalf("unexpected chart count: %d", strings.Count(out, "<svg"))
	}
}

func TestParseMetric(t *testing.T) {
	cases := map[string]float64{
		"1.7x": 1.7, "12.34s": 12.34, "3.9MB": 3.9e6, "171.17M": 171.17e6,
		"12.5k": 12500, "0.9743": 0.9743, "2.00G": 2e9, "-1.5": -1.5,
	}
	for in, want := range cases {
		got, err := parseMetric(in)
		if err != nil || got != want {
			t.Fatalf("parseMetric(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "1.5q", "12:34"} {
		if _, err := parseMetric(bad); err == nil {
			t.Fatalf("parseMetric(%q) should fail", bad)
		}
	}
}
