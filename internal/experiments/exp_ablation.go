package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
	"repro/internal/kmeansmr"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

// ExpAblation runs the design-choice ablations DESIGN.md calls out:
//
//  1. ρ̂ aggregation: the paper's max vs mean vs a single layout —
//     validates Theorem 1's choice of max.
//  2. δ̂ ∞ handling: rectifying to max finite δ (Section IV-C) vs zeroing —
//     shows the local-peak ∞ actually helps peak selection.
//  3. Combiner: shuffle bytes of the ρ aggregation job with and without a
//     map-side combiner.
//  4. Blocking: shuffle volume of Basic-DDP's blocked ρ job vs the naive
//     every-point-to-every-reducer strategy of Section III-A.
//  5. Spill: the LSH ρ job with in-memory shuffle vs forced spill-to-disk
//     external sort (identical output, bounded memory).
//  6. Distance reuse: Section III's store-the-matrix alternative vs the
//     paper's recomputation (see exp_reuse.go).
func ExpAblation(opt Options) (*Report, error) {
	r := &Report{
		Title:   "Ablations of DESIGN.md design choices",
		Columns: []string{"ablation", "variant", "metric", "value"},
	}
	if err := ablateAggregation(&opt, r); err != nil {
		return nil, err
	}
	if err := ablateRectify(&opt, r); err != nil {
		return nil, err
	}
	if err := ablateCombiner(&opt, r); err != nil {
		return nil, err
	}
	if err := ablateBlocking(&opt, r); err != nil {
		return nil, err
	}
	if err := ablateSpill(&opt, r); err != nil {
		return nil, err
	}
	if err := ablateDistanceReuse(&opt, r); err != nil {
		return nil, err
	}
	return r, nil
}

func ablateAggregation(opt *Options, r *Report) error {
	ds, err := opt.load("BigCross500K")
	if err != nil {
		return err
	}
	ds.Points = ds.Points[:min(ds.N(), 6000)]
	ds.Labels = nil
	eng := opt.engine()
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)
	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		return err
	}
	// Fix the hash width across variants (the width the paper's solver
	// picks for A=0.99, π=3, M=10) so the comparison isolates the
	// aggregation rule. (Letting each variant re-solve w would make M=1
	// trivially exact: it would blow w up until one partition holds
	// everything.)
	w, err := lsh.SolveWidth(0.99, dc, 3, 10)
	if err != nil {
		return err
	}
	run := func(m int, mean bool) (float64, error) {
		cfg := opt.lshConfig(eng)
		cfg.Dc = dc
		cfg.M = m
		cfg.W = w
		cfg.AggregateMean = mean
		res, err := core.RunLSHDDP(context.Background(), ds, cfg)
		if err != nil {
			return 0, err
		}
		return evalmetrics.Tau2(exact.Rho, res.Rho)
	}
	tauMax, err := run(10, false)
	if err != nil {
		return err
	}
	tauMean, err := run(10, true)
	if err != nil {
		return err
	}
	tauSingle, err := run(1, false)
	if err != nil {
		return err
	}
	r.AddRow("rho-aggregation", "max over M=10 (paper)", "tau2", fmt.Sprintf("%.4f", tauMax))
	r.AddRow("rho-aggregation", "mean over M=10", "tau2", fmt.Sprintf("%.4f", tauMean))
	r.AddRow("rho-aggregation", "single layout (M=1)", "tau2", fmt.Sprintf("%.4f", tauSingle))
	if tauMax < tauMean || tauMax < tauSingle {
		r.Notes = append(r.Notes, "UNEXPECTED: max aggregation did not dominate")
	}
	return nil
}

func ablateRectify(opt *Options, r *Report) error {
	// Six well-separated clusters; run LSH-DDP with narrow-ish width so
	// cluster peaks become local absolute peaks (δ̂=∞), then select top-6
	// peaks with (a) rectification and (b) ∞ zeroed out.
	ds, err := opt.load("S2")
	if err != nil {
		return err
	}
	eng := opt.engine()
	cfg := opt.lshConfig(eng)
	cfg.Accuracy = 0.9
	cfg.M = 5
	cfg.Pi = 4
	res, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		return err
	}
	exactDc := res.Stats.Dc
	exact, err := dp.Compute(ds, exactDc, dp.Options{})
	if err != nil {
		return err
	}
	gExact, err := decisionGraph(exact.Rho, exact.Delta, exact.Upslope)
	if err != nil {
		return err
	}
	gExact.Rectify()
	truePeaks := toSet(gExact.SelectTopK(15))

	infs := 0
	for _, d := range res.Delta {
		if math.IsInf(d, 1) {
			infs++
		}
	}

	gRect, err := decisionGraph(res.Rho, append([]float64(nil), res.Delta...), res.Upslope)
	if err != nil {
		return err
	}
	gRect.Rectify()
	rectHits := overlap(toSet(gRect.SelectTopK(15)), truePeaks)

	zeroDelta := append([]float64(nil), res.Delta...)
	for i, d := range zeroDelta {
		if math.IsInf(d, 1) {
			zeroDelta[i] = 0
		}
	}
	gZero, err := decisionGraph(res.Rho, zeroDelta, res.Upslope)
	if err != nil {
		return err
	}
	zeroHits := overlap(toSet(gZero.SelectTopK(15)), truePeaks)

	r.AddRow("inf-delta", "rectify to max finite (paper)", "true peaks in top-15",
		fmt.Sprintf("%d/15 (inf-deltas=%d)", rectHits, infs))
	r.AddRow("inf-delta", "zero out infinities", "true peaks in top-15",
		fmt.Sprintf("%d/15", zeroHits))
	return nil
}

func ablateCombiner(opt *Options, r *Report) error {
	// The combiner pays off when a map task emits many records under few
	// keys; K-means' assignment step (one partial-sum per point, keyed by
	// one of k clusters) is the canonical case. Run one iteration with and
	// without the combiner.
	ds, err := opt.load("KDD")
	if err != nil {
		return err
	}
	ds.Points = ds.Points[:min(ds.N(), 4000)]
	ds.Labels = nil
	eng := opt.engine()

	run := func(withCombiner bool) (int64, error) {
		res, err := kmeansmr.Run(context.Background(), ds, kmeansmr.Config{
			Engine: &combinerStripper{Engine: eng, strip: !withCombiner},
			K:      8, MaxIter: 1, Seed: opt.Seed,
		})
		if err != nil {
			return 0, err
		}
		return res.ShuffleBytes, nil
	}
	with, err := run(true)
	if err != nil {
		return err
	}
	without, err := run(false)
	if err != nil {
		return err
	}
	r.AddRow("combiner", "k-means assign with combiner", "iteration shuffle", fmb(with))
	r.AddRow("combiner", "k-means assign without combiner", "iteration shuffle", fmb(without))
	if with >= without {
		r.Notes = append(r.Notes, "UNEXPECTED: combiner did not reduce shuffle")
	}
	return nil
}

// combinerStripper wraps an engine and optionally removes job combiners —
// ablation plumbing only.
type combinerStripper struct {
	Engine mapreduce.Engine
	strip  bool
}

func (c *combinerStripper) Run(ctx context.Context, job *mapreduce.Job, input []mapreduce.Pair) (*mapreduce.Result, error) {
	if c.strip {
		stripped := *job
		stripped.Combine = nil
		return c.Engine.Run(ctx, &stripped, input)
	}
	return c.Engine.Run(ctx, job, input)
}

// naiveRhoJob is Section III-A's straw man: every point is shuffled to
// every point's reducer.
func naiveRhoJob(dc float64, n int) *mapreduce.Job {
	conf := mapreduce.Conf{}
	conf.SetFloat("dc", dc)
	conf.SetInt("n", n)
	return &mapreduce.Job{
		Name: "naive-rho",
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			total := ctx.Conf.GetInt("n", 0)
			for j := 0; j < total; j++ {
				out.Emit(strconv.Itoa(j), value)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			id, err := strconv.Atoi(key)
			if err != nil {
				return err
			}
			dc := ctx.Conf.GetFloat("dc", 0)
			dc2 := dc * dc
			var self points.Point
			pts := make([]points.Point, 0, len(values))
			for _, v := range values {
				p, _, err := points.DecodePoint(v)
				if err != nil {
					return err
				}
				if int(p.ID) == id {
					self = p
				}
				pts = append(pts, p)
			}
			distCtr := ctx.Counters.Cell(mapreduce.CtrDistanceComputations)
			var rho float64
			var nd int64
			for _, p := range pts {
				if p.ID == self.ID {
					continue
				}
				nd++
				if points.SqDist(p.Pos, self.Pos) < dc2 {
					rho++
				}
			}
			distCtr.Add(nd)
			out.Emit(key, points.EncodeRhoValue(points.RhoValue{ID: self.ID, Rho: rho}))
			return nil
		},
	}
}

func ablateBlocking(opt *Options, r *Report) error {
	ds, err := opt.load("3Dspatial")
	if err != nil {
		return err
	}
	ds.Points = ds.Points[:min(ds.N(), 1000)]
	ds.Labels = nil
	eng := opt.engine()
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)

	naive, err := eng.Run(context.Background(), naiveRhoJob(dc, ds.N()), core.InputPairs(ds))
	if err != nil {
		return err
	}
	conf := mapreduce.Conf{}
	conf.SetFloat("ddp.dc", dc)
	conf.SetInt("ddp.basic.blocks", (ds.N()+99)/100)
	blocked, err := eng.Run(context.Background(), core.BasicRhoJob(conf), core.InputPairs(ds))
	if err != nil {
		return err
	}
	r.AddRow("blocking", "naive all-to-all (Section III-A straw man)", "rho-job shuffle",
		fmb(naive.Counters.Get(mapreduce.CtrShuffleBytes)))
	r.AddRow("blocking", "blocked (Basic-DDP, block=100)", "rho-job shuffle",
		fmb(blocked.Counters.Get(mapreduce.CtrShuffleBytes)))
	return nil
}

func ablateSpill(opt *Options, r *Report) error {
	ds, err := opt.load("KDD")
	if err != nil {
		return err
	}
	ds.Points = ds.Points[:min(ds.N(), 4000)]
	ds.Labels = nil
	memEng := &mapreduce.LocalEngine{Parallelism: opt.Parallelism}
	spillEng := &mapreduce.LocalEngine{Parallelism: opt.Parallelism, SpillThresholdBytes: 64 << 10}
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)

	conf := mapreduce.Conf{}
	conf.SetFloat("ddp.dc", dc)
	conf.SetInt("ddp.dim", ds.Dim())
	conf.SetInt("ddp.lsh.m", 5)
	conf.SetInt("ddp.lsh.pi", 3)
	conf.SetFloat("ddp.lsh.w", dc*8)
	conf.SetInt64("ddp.seed", opt.Seed)

	memRes, err := memEng.Run(context.Background(), core.LSHRhoJob(conf.Clone()), core.InputPairs(ds))
	if err != nil {
		return err
	}
	spillRes, err := spillEng.Run(context.Background(), core.LSHRhoJob(conf.Clone()), core.InputPairs(ds))
	if err != nil {
		return err
	}
	// Record order within a key group may differ between the in-memory and
	// the merged-run paths (both are valid shuffle orders); compare as
	// multisets.
	same := "identical"
	if !samePairMultiset(memRes.Output, spillRes.Output) {
		same = "OUTPUT MISMATCH"
	}
	r.AddRow("spill", "in-memory shuffle", "wall / spilled-runs",
		fmt.Sprintf("%s / %d", fsec(memRes.Wall), memRes.Counters.Get(mapreduce.CtrSpilledRuns)))
	r.AddRow("spill", "64KiB spill threshold", "wall / spilled-runs",
		fmt.Sprintf("%s / %d (%s)", fsec(spillRes.Wall), spillRes.Counters.Get(mapreduce.CtrSpilledRuns), same))
	return nil
}

func toSet(ids []int32) map[int32]bool {
	s := make(map[int32]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func overlap(a, b map[int32]bool) int {
	n := 0
	for id := range a {
		if b[id] {
			n++
		}
	}
	return n
}

// samePairMultiset reports whether two pair sets contain the same records
// regardless of order.
func samePairMultiset(a, b []mapreduce.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, p := range a {
		counts[p.Key+"\x00"+string(p.Value)]++
	}
	for _, p := range b {
		k := p.Key + "\x00" + string(p.Value)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}
