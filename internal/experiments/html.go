package experiments

import (
	"fmt"
	"html"
	"io"
	"strconv"
	"strings"
)

// HTMLReport renders a set of experiment reports as one self-contained
// HTML page: every report as a table, plus a simple inline-SVG bar chart
// for reports whose last metric-like columns parse as numbers. dpbench
// writes this with -html so a full evaluation run produces a browsable
// artifact alongside the text output.
func HTMLReport(w io.Writer, title string, reports []*Report) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2.5rem; }
table { border-collapse: collapse; margin: 0.75rem 0; font-size: 0.85rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
.note { color: #666; font-size: 0.8rem; margin: 0.15rem 0; }
svg { margin-top: 0.5rem; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	for _, r := range reports {
		fmt.Fprintf(&b, "<h2>%s</h2>\n<table>\n<tr>", html.EscapeString(r.Title))
		for _, c := range r.Columns {
			fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(c))
		}
		b.WriteString("</tr>\n")
		for _, row := range r.Rows {
			b.WriteString("<tr>")
			for _, cell := range row {
				fmt.Fprintf(&b, "<td>%s</td>", html.EscapeString(cell))
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "<p class=\"note\">note: %s</p>\n", html.EscapeString(n))
		}
		if chart := barChartSVG(r); chart != "" {
			b.WriteString(chart)
		}
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// barChartSVG draws a horizontal bar chart of the first numeric column
// (labels from the first column), or returns "" when the report has no
// chartable numeric column or too many rows to be readable.
func barChartSVG(r *Report) string {
	if len(r.Columns) < 2 || len(r.Rows) == 0 || len(r.Rows) > 24 {
		return ""
	}
	col := -1
	vals := make([]float64, len(r.Rows))
	for c := 1; c < len(r.Columns); c++ {
		ok := true
		for i, row := range r.Rows {
			if c >= len(row) {
				ok = false
				break
			}
			v, err := parseMetric(row[c])
			if err != nil {
				ok = false
				break
			}
			vals[i] = v
		}
		if ok {
			col = c
			break
		}
	}
	if col == -1 {
		return ""
	}
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		return ""
	}
	const barH, gap, labelW, chartW = 16, 6, 220, 420
	height := len(r.Rows)*(barH+gap) + 24
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" font-size="10">`+"\n", labelW+chartW+70, height)
	fmt.Fprintf(&b, `<text x="0" y="12" font-weight="bold">%s by %s</text>`+"\n",
		html.EscapeString(r.Columns[col]), html.EscapeString(r.Columns[0]))
	for i, row := range r.Rows {
		y := 20 + i*(barH+gap)
		label := row[0]
		if len(r.Columns) > 2 && len(row) > 2 && col > 2 {
			label = row[0] + " " + row[1] // compound key, e.g. dataset+algo
		}
		w := vals[i] / maxV * chartW
		fmt.Fprintf(&b, `<text x="0" y="%d">%s</text>`+"\n", y+barH-4, html.EscapeString(label))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="#4878a8"/>`+"\n",
			labelW, y, w, barH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#333">%s</text>`+"\n",
			float64(labelW)+w+4, y+barH-4, html.EscapeString(row[col]))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// parseMetric parses the numeric prefix of a formatted metric cell
// ("1.7x", "12.34s", "3.9MB", "171.17M", "12.5k", "0.9743").
func parseMetric(s string) (float64, error) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) && (s[end] == '.' || s[end] == '-' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	if end == 0 {
		return 0, fmt.Errorf("no numeric prefix in %q", s)
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, err
	}
	switch strings.TrimSpace(s[end:]) {
	case "k":
		v *= 1e3
	case "M", "MB":
		v *= 1e6
	case "G", "GB":
		v *= 1e9
	case "", "x", "s":
	default:
		return 0, fmt.Errorf("unknown suffix in %q", s)
	}
	return v, nil
}
