package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// ExpFig10 regenerates Figure 10(a,b,c): runtime, shuffled data volume,
// and number of distance measurements of Basic-DDP vs LSH-DDP on the four
// large real-world sets (Facial, KDD, 3Dspatial, BigCross500K), with the
// paper's parameters (A=0.99, M=10, π=3; Basic block size 500).
//
// The paper's shape: LSH-DDP wins on all three metrics, and the gap grows
// with data set size because Basic-DDP's costs are quadratic (1.7–24×
// runtime, 5–87× shuffle, 1.7–6.1× distances at the paper's scales).
func ExpFig10(opt Options) (*Report, error) {
	r := &Report{
		Title: "Figure 10: Basic-DDP vs LSH-DDP (A=0.99, M=10, pi=3, block=500)",
		Columns: []string{"dataset", "N", "algo", "runtime", "shuffle", "dist",
			"speedup", "shuffle-save", "dist-save"},
	}
	for _, name := range []string{"Facial", "KDD", "3Dspatial", "BigCross500K"} {
		ds, err := opt.load(name)
		if err != nil {
			return nil, err
		}
		eng := opt.engine()
		opt.logf("fig10: %s N=%d running Basic-DDP...", name, ds.N())
		basic, err := core.RunBasicDDP(context.Background(), ds, opt.basicConfig(eng))
		if err != nil {
			return nil, err
		}
		opt.logf("fig10: %s running LSH-DDP...", name)
		lshRes, err := core.RunLSHDDP(context.Background(), ds, opt.lshConfig(eng))
		if err != nil {
			return nil, err
		}
		n := fmt.Sprintf("%d", ds.N())
		r.AddRow(name, n, "Basic-DDP",
			fsec(basic.Stats.Wall), fmb(basic.Stats.ShuffleBytes), fcount(basic.Stats.DistanceComputations),
			"1.0x", "1.0x", "1.0x")
		r.AddRow(name, n, "LSH-DDP",
			fsec(lshRes.Stats.Wall), fmb(lshRes.Stats.ShuffleBytes), fcount(lshRes.Stats.DistanceComputations),
			fratio(basic.Stats.Wall.Seconds(), lshRes.Stats.Wall.Seconds()),
			fratio(float64(basic.Stats.ShuffleBytes), float64(lshRes.Stats.ShuffleBytes)),
			fratio(float64(basic.Stats.DistanceComputations), float64(lshRes.Stats.DistanceComputations)),
		)
	}
	r.Notes = append(r.Notes,
		"expected shape: LSH-DDP wins on all metrics, with larger savings on larger sets (Basic-DDP is quadratic)")
	return r, nil
}
