package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
)

// ExpFig9 regenerates Figure 9: approximation accuracy τ₁ and τ₂ of
// LSH-DDP on BigCross500K as the expected accuracy A sweeps upward
// (M=10, π=3, w solved per A). Exact ρ comes from one sequential DP run.
//
// The paper's shape: both metrics rise with A and approach 1; τ₁ tracks
// the diagonal (the accuracy target is realized) and τ₂ sits above τ₁.
func ExpFig9(opt Options) (*Report, error) {
	ds, err := opt.load("BigCross500K")
	if err != nil {
		return nil, err
	}
	eng := opt.engine()
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)
	opt.logf("fig9: N=%d dc=%.4g, computing exact rho...", ds.N(), dc)
	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		return nil, err
	}

	r := &Report{
		Title:   fmt.Sprintf("Figure 9: LSH-DDP accuracy vs expected accuracy A on BigCross500K (N=%d, M=10, pi=3)", ds.N()),
		Columns: []string{"A", "w", "tau1", "tau2", "runtime", "dist"},
	}
	for _, accuracy := range []float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99} {
		cfg := opt.lshConfig(eng)
		cfg.Accuracy = accuracy
		cfg.Dc = dc
		res, err := core.RunLSHDDP(context.Background(), ds, cfg)
		if err != nil {
			return nil, err
		}
		tau1, err := evalmetrics.Tau1(exact.Rho, res.Rho)
		if err != nil {
			return nil, err
		}
		tau2, err := evalmetrics.Tau2(exact.Rho, res.Rho)
		if err != nil {
			return nil, err
		}
		opt.logf("fig9: A=%.2f tau1=%.4f tau2=%.4f", accuracy, tau1, tau2)
		r.AddRow(
			fmt.Sprintf("%.2f", accuracy),
			fmt.Sprintf("%.4g", res.Stats.W),
			fmt.Sprintf("%.4f", tau1),
			fmt.Sprintf("%.4f", tau2),
			fsec(res.Stats.Wall),
			fcount(res.Stats.DistanceComputations),
		)
	}
	r.Notes = append(r.Notes, "expected shape: tau1 and tau2 rise with A and approach 1; tau2 >= tau1")
	return r, nil
}
