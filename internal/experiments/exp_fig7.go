package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/evalmetrics"
)

// ExpFig7 regenerates Figure 7: decision graphs of Basic-DDP vs LSH-DDP on
// the S2 data set (A=0.99, M=10, π=3), compared through the same selection
// box. The paper's observation: both select the same number of peaks
// (15 for S2); some LSH-DDP peaks sit at the very top of the chart because
// their δ̂ was ∞ (local absolute peaks), which only makes them easier to
// pick. The report also shows the pairwise cluster agreement between the
// two resulting clusterings.
func ExpFig7(opt Options) (*Report, error) {
	ds, err := opt.load("S2")
	if err != nil {
		return nil, err
	}
	eng := opt.engine()

	basic, err := core.RunBasicDDP(context.Background(), ds, opt.basicConfig(eng))
	if err != nil {
		return nil, err
	}
	lshRes, err := core.RunLSHDDP(context.Background(), ds, opt.lshConfig(eng))
	if err != nil {
		return nil, err
	}

	// Count LSH-DDP's infinite deltas before rectification — the points
	// that appear "at the top of the chart".
	infs := 0
	for _, d := range lshRes.Delta {
		if math.IsInf(d, 1) {
			infs++
		}
	}

	// Selection box: calibrated from the exact graph so that it selects
	// exactly the 15 generated clusters — all points with γ far above the
	// crowd. We use the same absolute box on both graphs, as the paper does
	// (ρ > 14, δ > 40 in their axes).
	bg, err := basic.Graph()
	if err != nil {
		return nil, err
	}
	bg.Rectify()
	rhoMin, deltaMin := calibrateBox(bg, 15)
	basicPeaks := bg.SelectBox(rhoMin, deltaMin)

	lg, err := lshRes.Graph()
	if err != nil {
		return nil, err
	}
	lg.Rectify()
	lshPeaks := lg.SelectBox(rhoMin, deltaMin)

	basicLabels, err := bg.Assign(ds, basicPeaks)
	if err != nil {
		return nil, err
	}
	lshLabels, err := lg.Assign(ds, lshPeaks)
	if err != nil {
		return nil, err
	}
	ari, err := evalmetrics.ARI(evalmetrics.IntLabels(basicLabels), evalmetrics.IntLabels(lshLabels))
	if err != nil {
		return nil, err
	}
	nmi, err := evalmetrics.NMI(evalmetrics.IntLabels(basicLabels), evalmetrics.IntLabels(lshLabels))
	if err != nil {
		return nil, err
	}

	r := &Report{
		Title:   "Figure 7: decision graphs Basic-DDP vs LSH-DDP on S2 (A=0.99, M=10, pi=3)",
		Columns: []string{"algorithm", "peaks-in-box", "inf-delta-points", "runtime", "dist"},
	}
	r.AddRow("Basic-DDP", fmt.Sprintf("%d", len(basicPeaks)), "0",
		fsec(basic.Stats.Wall), fcount(basic.Stats.DistanceComputations))
	r.AddRow("LSH-DDP", fmt.Sprintf("%d", len(lshPeaks)), fmt.Sprintf("%d", infs),
		fsec(lshRes.Stats.Wall), fcount(lshRes.Stats.DistanceComputations))
	r.Notes = append(r.Notes,
		fmt.Sprintf("selection box: rho > %.3g, delta > %.3g (same box on both graphs)", rhoMin, deltaMin),
		fmt.Sprintf("cluster agreement between the two results: ARI=%.4f NMI=%.4f", ari, nmi),
	)
	return r, nil
}

// calibrateBox picks a (ρ_min, δ_min) box that captures the k top-γ points
// of a rectified graph with margin — the programmatic stand-in for the
// rectangle a user draws on the decision graph.
func calibrateBox(g *decision.Graph, k int) (float64, float64) {
	peaks := g.SelectTopK(k)
	rhoMin, deltaMin := math.Inf(1), math.Inf(1)
	for _, p := range peaks {
		if g.Rho[p] < rhoMin {
			rhoMin = g.Rho[p]
		}
		if g.Delta[p] < deltaMin {
			deltaMin = g.Delta[p]
		}
	}
	// 60% of the weakest peak's coordinates keeps the box comfortably
	// below the outliers but above the crowd.
	return rhoMin * 0.6, deltaMin * 0.6
}
