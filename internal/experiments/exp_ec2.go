package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/points"
)

// ExpEC2 regenerates the Section VI-D large-scale claim (the paper's EC2
// run): on the full BigCross set, Basic-DDP took 91.2 hours and LSH-DDP
// 1.3 hours — a 70× speedup. Running Basic-DDP at even our scaled
// BigCross size is deliberately out of budget (that is the point of the
// experiment), so Basic-DDP is measured on a subsample and extrapolated
// quadratically — its distance count and shuffle volume grow as N² and
// N·n respectively, which the measured scaling constants pin down.
func ExpEC2(opt Options) (*Report, error) {
	ds, err := opt.load("BigCross")
	if err != nil {
		return nil, err
	}
	eng := opt.engine()

	opt.logf("ec2: N=%d running LSH-DDP at full scale...", ds.N())
	lshRes, err := core.RunLSHDDP(context.Background(), ds, opt.lshConfig(eng))
	if err != nil {
		return nil, err
	}

	// Basic-DDP on a 1/8 subsample of the same data.
	sub := subsample(ds, 8)
	opt.logf("ec2: running Basic-DDP on subsample N=%d...", sub.N())
	basic, err := core.RunBasicDDP(context.Background(), sub, opt.basicConfig(eng))
	if err != nil {
		return nil, err
	}
	ratio := float64(ds.N()) / float64(sub.N())
	extraWall := time.Duration(float64(basic.Stats.Wall) * ratio * ratio)
	extraDist := int64(float64(basic.Stats.DistanceComputations) * ratio * ratio)
	// Shuffle grows ~quadratically too: copies per point ∝ n = N/block.
	extraShuffle := int64(float64(basic.Stats.ShuffleBytes) * ratio * ratio)

	r := &Report{
		Title:   fmt.Sprintf("Section VI-D (EC2): LSH-DDP vs Basic-DDP on BigCross (N=%d)", ds.N()),
		Columns: []string{"algorithm", "N", "runtime", "shuffle", "dist", "measured"},
	}
	r.AddRow("LSH-DDP", fmt.Sprintf("%d", ds.N()),
		fsec(lshRes.Stats.Wall), fmb(lshRes.Stats.ShuffleBytes), fcount(lshRes.Stats.DistanceComputations), "yes")
	r.AddRow("Basic-DDP", fmt.Sprintf("%d", sub.N()),
		fsec(basic.Stats.Wall), fmb(basic.Stats.ShuffleBytes), fcount(basic.Stats.DistanceComputations), "yes (subsample)")
	r.AddRow("Basic-DDP", fmt.Sprintf("%d", ds.N()),
		fsec(extraWall), fmb(extraShuffle), fcount(extraDist), "extrapolated (xN^2)")
	r.Notes = append(r.Notes,
		fmt.Sprintf("extrapolated speedup of LSH-DDP over Basic-DDP at N=%d: %s (paper: 70x at N=11.6M)",
			ds.N(), fratio(extraWall.Seconds(), lshRes.Stats.Wall.Seconds())),
	)
	return r, nil
}

// subsample keeps every k-th point, re-IDing densely.
func subsample(ds *points.Dataset, k int) *points.Dataset {
	out := &points.Dataset{Name: ds.Name + "-sub"}
	for i := 0; i < ds.N(); i += k {
		out.Points = append(out.Points, points.Point{
			ID:  int32(len(out.Points)),
			Pos: ds.Points[i].Pos,
		})
		if ds.Labels != nil {
			out.Labels = append(out.Labels, ds.Labels[i])
		}
	}
	return out
}
