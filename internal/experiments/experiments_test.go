package experiments

import (
	"strings"
	"testing"
)

// smallOpt shrinks every experiment enough for CI.
func smallOpt() Options { return Options{Scale: 16, Seed: 1, Parallelism: 4} }

func checkReport(t *testing.T, r *Report, err error, wantRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < wantRows {
		t.Fatalf("report has %d rows, want >= %d:\n%s", len(r.Rows), wantRows, r)
	}
	s := r.String()
	if !strings.Contains(s, r.Title) {
		t.Fatalf("rendered report missing title:\n%s", s)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Columns) {
			t.Fatalf("row %v has %d cells for %d columns", row, len(row), len(r.Columns))
		}
	}
}

func TestExpTable2(t *testing.T) {
	r, err := ExpTable2(Options{Seed: 1})
	checkReport(t, r, err, 7)
}

func TestExpFig7(t *testing.T) {
	r, err := ExpFig7(smallOpt())
	checkReport(t, r, err, 2)
}

func TestExpFig8(t *testing.T) {
	r, err := ExpFig8(Options{Scale: 1, Seed: 1, Parallelism: 4})
	checkReport(t, r, err, 5)
}

func TestExpFig9(t *testing.T) {
	r, err := ExpFig9(smallOpt())
	checkReport(t, r, err, 7)
}

func TestExpFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 in -short mode")
	}
	r, err := ExpFig10(smallOpt())
	checkReport(t, r, err, 8)
}

func TestExpTable4(t *testing.T) {
	r, err := ExpTable4(smallOpt())
	checkReport(t, r, err, 3)
}

func TestExpFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 in -short mode")
	}
	r, err := ExpFig11(smallOpt())
	checkReport(t, r, err, 2)
}

func TestExpFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 in -short mode")
	}
	r, err := ExpFig12(Options{Scale: 24, Seed: 1, Parallelism: 4})
	checkReport(t, r, err, 4)
}

func TestExpEC2(t *testing.T) {
	if testing.Short() {
		t.Skip("ec2 in -short mode")
	}
	r, err := ExpEC2(Options{Scale: 24, Seed: 1, Parallelism: 4})
	checkReport(t, r, err, 3)
}

func TestExpAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	r, err := ExpAblation(smallOpt())
	checkReport(t, r, err, 10)
	if strings.Contains(r.String(), "UNEXPECTED") {
		t.Fatalf("ablation surprises:\n%s", r)
	}
	if strings.Contains(r.String(), "OUTPUT MISMATCH") {
		t.Fatalf("spill ablation mismatch:\n%s", r)
	}
}

func TestExpExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions in -short mode")
	}
	r, err := ExpExtensions(smallOpt())
	checkReport(t, r, err, 6)
	t.Log("\n" + r.String())
}

func TestReportCSV(t *testing.T) {
	r := &Report{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}, {"2", "z"}},
	}
	var buf strings.Builder
	if err := r.WriteCSVTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
