package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/eddpc"
)

// ExpTable4 regenerates Table IV: LSH-DDP vs EDDPC (and Basic-DDP for
// reference) on BigCross500K — runtime, shuffled data, and distance
// measurements.
//
// The paper's shape: LSH-DDP needs less runtime and much less shuffled
// data than EDDPC, while computing MORE distances (EDDPC's Voronoi
// filtering prunes distance work aggressively but pays in replication
// shuffle and exactness bookkeeping); both beat Basic-DDP.
func ExpTable4(opt Options) (*Report, error) {
	ds, err := opt.load("BigCross500K")
	if err != nil {
		return nil, err
	}
	eng := opt.engine()

	opt.logf("table4: N=%d running Basic-DDP...", ds.N())
	basic, err := core.RunBasicDDP(context.Background(), ds, opt.basicConfig(eng))
	if err != nil {
		return nil, err
	}
	opt.logf("table4: running EDDPC...")
	ed, err := eddpc.Run(context.Background(), ds, eddpc.Config{
		Config: core.Config{Engine: eng, Seed: opt.Seed, DcPercentile: 0.02},
	})
	if err != nil {
		return nil, err
	}
	opt.logf("table4: running LSH-DDP...")
	lshRes, err := core.RunLSHDDP(context.Background(), ds, opt.lshConfig(eng))
	if err != nil {
		return nil, err
	}

	r := &Report{
		Title:   fmt.Sprintf("Table IV: comparison with EDDPC on BigCross500K (N=%d)", ds.N()),
		Columns: []string{"algorithm", "exact", "runtime", "shuffle", "dist"},
	}
	r.AddRow("Basic-DDP", "yes", fsec(basic.Stats.Wall), fmb(basic.Stats.ShuffleBytes), fcount(basic.Stats.DistanceComputations))
	r.AddRow("EDDPC", "yes", fsec(ed.Stats.Wall), fmb(ed.Stats.ShuffleBytes), fcount(ed.Stats.DistanceComputations))
	r.AddRow("LSH-DDP", "approx", fsec(lshRes.Stats.Wall), fmb(lshRes.Stats.ShuffleBytes), fcount(lshRes.Stats.DistanceComputations))
	r.Notes = append(r.Notes,
		"expected shape: LSH-DDP fastest with least shuffle but more distance computations than EDDPC; both beat Basic-DDP")
	return r, nil
}
