package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
)

// ExpExtensions exercises the repository's beyond-paper features end to
// end — the extensions the paper's conclusion anticipates ("we believe it
// is feasible to modify our solution to support variants of DP"):
//
//  1. Gaussian-kernel LSH-DDP: the smooth density variant of the original
//     DP paper, distributed with the same pipeline. τ₂ against the exact
//     Gaussian reference is reported.
//  2. Distributed halo detection: the original DP paper's cluster-core /
//     halo split, computed with two extra LSH-partitioned jobs; the
//     estimated border densities are validated as underestimates of the
//     exact ones.
//  3. Automatic k suggestion: the γ-gap knee heuristic on decision graphs
//     with known ground-truth k.
func ExpExtensions(opt Options) (*Report, error) {
	r := &Report{
		Title:   "Extensions: kernel variants, distributed halo, auto-k",
		Columns: []string{"extension", "dataset", "metric", "value"},
	}
	if err := extGaussianKernel(&opt, r); err != nil {
		return nil, err
	}
	if err := extHalo(&opt, r); err != nil {
		return nil, err
	}
	if err := extSuggestK(&opt, r); err != nil {
		return nil, err
	}
	return r, nil
}

func extGaussianKernel(opt *Options, r *Report) error {
	ds, err := opt.load("KDD")
	if err != nil {
		return err
	}
	if ds.N() > 6000 {
		ds.Points = ds.Points[:6000]
		ds.Labels = nil
	}
	eng := opt.engine()
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)
	exact, err := dp.Compute(ds, dc, dp.Options{Kernel: dp.KernelGaussian})
	if err != nil {
		return err
	}
	cfg := opt.lshConfig(eng)
	cfg.Dc = dc
	cfg.Kernel = dp.KernelGaussian
	res, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		return err
	}
	tau2, err := evalmetrics.Tau2(exact.Rho, res.Rho)
	if err != nil {
		return err
	}
	r.AddRow("gaussian-kernel", ds.Name, "tau2 vs exact gaussian DP", fmt.Sprintf("%.4f", tau2))
	r.AddRow("gaussian-kernel", ds.Name, "runtime", fsec(res.Stats.Wall))
	return nil
}

func extHalo(opt *Options, r *Report) error {
	ds, err := opt.load("S2")
	if err != nil {
		return err
	}
	eng := opt.engine()
	cfg := opt.lshConfig(eng)
	res, err := core.RunLSHDDP(context.Background(), ds, cfg)
	if err != nil {
		return err
	}
	_, labels, err := res.Cluster(ds, core.SelectTopK(15))
	if err != nil {
		return err
	}
	haloCfg := opt.lshConfig(eng)
	hr, err := core.RunLSHHalo(context.Background(), ds, res.Rho, labels, res.Stats.Dc, haloCfg)
	if err != nil {
		return err
	}
	haloN := 0
	for _, h := range hr.Halo {
		if h {
			haloN++
		}
	}
	borders := 0
	for _, b := range hr.Border {
		if b > 0 {
			borders++
		}
	}
	r.AddRow("halo", "S2", "halo points", fmt.Sprintf("%d/%d", haloN, ds.N()))
	r.AddRow("halo", "S2", "clusters with nonzero border", fmt.Sprintf("%d/%d", borders, len(hr.Border)))
	r.AddRow("halo", "S2", "extra runtime", fsec(hr.Stats.Wall))
	return nil
}

func extSuggestK(opt *Options, r *Report) error {
	for _, tc := range []struct {
		name string
		want int
	}{
		{"Aggregation", 7},
		{"S2", 15},
	} {
		ds, err := opt.load(tc.name)
		if err != nil {
			return err
		}
		eng := opt.engine()
		res, err := core.RunLSHDDP(context.Background(), ds, opt.lshConfig(eng))
		if err != nil {
			return err
		}
		g, err := res.Graph()
		if err != nil {
			return err
		}
		g.Rectify()
		got := g.SuggestK(40)
		r.AddRow("auto-k", tc.name, "suggested k (truth)", fmt.Sprintf("%d (%d)", got, tc.want))
	}
	return nil
}
