package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/mapreduce"
	"repro/internal/points"
)

// Section III's design discussion: after the ρ job, should Basic-DDP store
// the pairwise distance matrix and reuse it for δ, or recompute distances?
// The paper chooses recomputation ("the matrix can be very large and it can
// incur significant I/O cost"). ablateDistanceReuse builds the road not
// taken — a ρ job that also materializes distance records, and a δ job
// that consumes them instead of recomputing — and measures the trade:
// distance computations halve, shuffled/stored bytes explode quadratically.
//
// The reuse δ job needs every point's ρ next to every distance record; the
// driver joins ρ in (the role HDFS-side joins play in a real pipeline).
func ablateDistanceReuse(opt *Options, r *Report) error {
	ds, err := opt.load("3Dspatial")
	if err != nil {
		return err
	}
	if ds.N() > 3000 {
		ds.Points = ds.Points[:3000]
	}
	ds.Labels = nil
	eng := opt.engine()
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)

	// Paper's choice: recompute. Run standard Basic-DDP.
	recompute, err := core.RunBasicDDP(context.Background(), ds, core.BasicConfig{
		Config:    core.Config{Engine: eng, Dc: dc},
		BlockSize: 300,
	})
	if err != nil {
		return err
	}

	// Road not taken: ρ job that ALSO emits each evaluated pair's distance,
	// then a δ job over the stored records.
	drv := mapreduce.NewDriver(eng)
	nBlocks := (ds.N() + 299) / 300
	matJob := rhoAndMatrixJob(dc, nBlocks)
	matOut, err := drv.Run(context.Background(), matJob, core.InputPairs(ds))
	if err != nil {
		return err
	}
	// Separate ρ partials (key "r...") from distance records (key "d...").
	var rhoPartials, distRecords []mapreduce.Pair
	for _, p := range matOut.Output {
		if p.Key[0] == 'r' {
			rhoPartials = append(rhoPartials, mapreduce.Pair{Key: p.Key[1:], Value: p.Value})
		} else {
			distRecords = append(distRecords, p)
		}
	}
	rhoOut, err := drv.Run(context.Background(), core.RhoAggJob("reuse-rho-agg", mapreduce.Conf{}), rhoPartials)
	if err != nil {
		return err
	}
	rho, err := core.DecodeRhoArray(rhoOut.Output, ds.N())
	if err != nil {
		return err
	}
	// δ from stored distances: driver joins ρ into each record.
	dIn := make([]mapreduce.Pair, len(distRecords))
	for i, p := range distRecords {
		rec, err := decodeDistRecord(p.Value)
		if err != nil {
			return err
		}
		dIn[i] = mapreduce.Pair{Value: encodeDistRecordRho(rec, rho[rec.i], rho[rec.j])}
	}
	dPartials, err := drv.Run(context.Background(), deltaFromMatrixJob(), dIn)
	if err != nil {
		return err
	}
	dOut, err := drv.Run(context.Background(), core.DeltaAggJob("reuse-delta-agg", mapreduce.Conf{}), dPartials.Output)
	if err != nil {
		return err
	}
	delta, _, err := core.DecodeDeltaArrays(dOut.Output, ds.N())
	if err != nil {
		return err
	}

	// Verify the reuse path computes identical science.
	exact, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		return err
	}
	for i := range exact.Rho {
		if rho[i] != exact.Rho[i] || math.Abs(delta[i]-exact.Delta[i]) > 1e-9 {
			return fmt.Errorf("reuse ablation diverged at point %d", i)
		}
	}

	// The reuse path's real price is the materialized matrix: N(N+1)/2
	// records that must live on the distributed file system between jobs
	// (the "significant I/O cost" Section III cites for rejecting reuse).
	var storedBytes int64
	for _, p := range distRecords {
		storedBytes += int64(len(p.Key) + len(p.Value))
	}
	reuseDist := drv.TotalCounter(mapreduce.CtrDistanceComputations)
	r.AddRow("distance-reuse", "recompute (paper, Section III)", "stored matrix / dist",
		fmt.Sprintf("0MB / %s", fcount(recompute.Stats.DistanceComputations)))
	r.AddRow("distance-reuse", "store+reuse matrix", "stored matrix / dist",
		fmt.Sprintf("%s / %s", fmb(storedBytes), fcount(reuseDist)))
	if reuseDist >= recompute.Stats.DistanceComputations {
		r.Notes = append(r.Notes, "UNEXPECTED: reuse did not halve distance work")
	}
	return nil
}

// distance record: int32 i | int32 j | float64 d (+ two ρ for the δ job).
type distRecord struct {
	i, j int32
	d    float64
}

func encodeDistRecord(rec distRecord) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(rec.i))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.j))
	return points.AppendFloat64(buf, rec.d)
}

func decodeDistRecord(v []byte) (distRecord, error) {
	if len(v) < 16 {
		return distRecord{}, fmt.Errorf("short distance record")
	}
	return distRecord{
		i: int32(binary.LittleEndian.Uint32(v)),
		j: int32(binary.LittleEndian.Uint32(v[4:])),
		d: points.DecodeFloat64(v[8:]),
	}, nil
}

func encodeDistRecordRho(rec distRecord, rhoI, rhoJ float64) []byte {
	buf := encodeDistRecord(rec)
	buf = points.AppendFloat64(buf, rhoI)
	return points.AppendFloat64(buf, rhoJ)
}

func decodeDistRecordRho(v []byte) (distRecord, float64, float64, error) {
	rec, err := decodeDistRecord(v)
	if err != nil || len(v) != 32 {
		return distRecord{}, 0, 0, fmt.Errorf("short joined distance record")
	}
	return rec,
		points.DecodeFloat64(v[16:]),
		points.DecodeFloat64(v[24:]),
		nil
}

// rhoAndMatrixJob is Basic-DDP's blocked ρ job, additionally emitting one
// distance record per evaluated pair ("the distance matrix").
func rhoAndMatrixJob(dc float64, nBlocks int) *mapreduce.Job {
	conf := mapreduce.Conf{}
	conf.SetFloat("dc", dc)
	conf.SetInt("blocks", nBlocks)
	return &mapreduce.Job{
		Name: "reuse-rho-matrix",
		Conf: conf,
		Map: func(ctx *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			n := ctx.Conf.GetInt("blocks", 1)
			p, _, err := points.DecodePoint(value)
			if err != nil {
				return err
			}
			k := int(p.ID) % n
			for l := k; l < n; l++ {
				out.Emit("b"+strconv.Itoa(l), append(binary.LittleEndian.AppendUint32(nil, uint32(k)), value...))
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
			l, err := strconv.Atoi(key[1:])
			if err != nil {
				return err
			}
			dc := ctx.Conf.GetFloat("dc", 0)
			dc2 := dc * dc
			var local, visitors []points.Point
			for _, v := range values {
				k := int(binary.LittleEndian.Uint32(v))
				p, _, err := points.DecodePoint(v[4:])
				if err != nil {
					return err
				}
				if k == l {
					local = append(local, p)
				} else {
					visitors = append(visitors, p)
				}
			}
			rho := map[int32]float64{}
			var nd int64
			emitPair := func(a, b points.Point) {
				d2 := points.SqDist(a.Pos, b.Pos)
				nd++
				if d2 < dc2 {
					rho[a.ID]++
					rho[b.ID]++
				}
				out.Emit("d", encodeDistRecord(distRecord{i: a.ID, j: b.ID, d: math.Sqrt(d2)}))
			}
			for i := range local {
				for j := i + 1; j < len(local); j++ {
					emitPair(local[i], local[j])
				}
				for v := range visitors {
					emitPair(local[i], visitors[v])
				}
			}
			ctx.Counters.Cell(mapreduce.CtrDistanceComputations).Add(nd)
			for _, p := range local {
				out.Emit("r"+fmt.Sprintf("%09d", p.ID),
					points.EncodeRhoValue(points.RhoValue{ID: p.ID, Rho: rho[p.ID]}))
			}
			for _, p := range visitors {
				if rho[p.ID] > 0 {
					out.Emit("r"+fmt.Sprintf("%09d", p.ID),
						points.EncodeRhoValue(points.RhoValue{ID: p.ID, Rho: rho[p.ID]}))
				}
			}
			return nil
		},
	}
}

// deltaFromMatrixJob computes δ candidates from ρ-joined distance records:
// each record contributes a candidate to whichever endpoint is less dense,
// and a fallback max-distance record to both (for the absolute peak).
func deltaFromMatrixJob() *mapreduce.Job {
	return &mapreduce.Job{
		Name: "reuse-delta",
		Map: func(_ *mapreduce.TaskContext, _ string, value []byte, out mapreduce.Emitter) error {
			rec, rhoI, rhoJ, err := decodeDistRecordRho(value)
			if err != nil {
				return err
			}
			// Candidate for the sparser endpoint; fallback for both.
			if dp.DenserVals(rhoJ, rhoI, rec.j, rec.i) {
				out.Emit(fmt.Sprintf("%09d", rec.i),
					points.EncodeDeltaValue(points.DeltaValue{ID: rec.i, Delta: rec.d, Upslope: rec.j}))
				out.Emit(fmt.Sprintf("%09d", rec.j),
					points.EncodeDeltaValue(points.DeltaValue{ID: rec.j, Delta: rec.d, Upslope: -1}))
			} else {
				out.Emit(fmt.Sprintf("%09d", rec.j),
					points.EncodeDeltaValue(points.DeltaValue{ID: rec.j, Delta: rec.d, Upslope: rec.i}))
				out.Emit(fmt.Sprintf("%09d", rec.i),
					points.EncodeDeltaValue(points.DeltaValue{ID: rec.i, Delta: rec.d, Upslope: -1}))
			}
			return nil
		},
		Combine: combineDeltaFold,
		Reduce:  combineDeltaFold,
	}
}

// combineDeltaFold is DeltaAggJob's fold inlined for the reuse job.
func combineDeltaFold(ctx *mapreduce.TaskContext, key string, values [][]byte, out mapreduce.Emitter) error {
	job := core.DeltaAggJob("fold", mapreduce.Conf{})
	return job.Reduce(ctx, key, values, out)
}
