package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/decision"
	"repro/internal/dp"
	"repro/internal/evalmetrics"
)

// ExpFig8 regenerates the Figure 8 / Table III comparison: clustering
// quality of DP against agglomerative hierarchical, K-means, EM, and
// DBSCAN on the shaped Aggregation data set (788 points, 7 ground-truth
// clusters). Parameters follow the paper: d_c is the 2% distance
// percentile; algorithms that need k get the ground-truth k; DBSCAN's ε is
// set to d_c with minPts 1 (the paper's configuration).
//
// The paper's qualitative finding to reproduce: DP recovers all seven
// clusters; hierarchical and DBSCAN merge close clusters; K-means and EM
// break non-oval shapes. Quantitatively that ordering shows up in
// ARI/NMI/purity.
func ExpFig8(opt Options) (*Report, error) {
	ds, err := opt.load("Aggregation")
	if err != nil {
		return nil, err
	}
	truth := ds.Labels
	k := 0
	{
		seen := map[int]bool{}
		for _, l := range truth {
			seen[l] = true
		}
		k = len(seen)
	}
	dc := dp.CutoffByPercentile(ds, 0.02, opt.Seed)

	r := &Report{
		Title:   fmt.Sprintf("Figure 8: clustering quality on Aggregation (N=%d, k=%d, dc=%.3g)", ds.N(), k, dc),
		Columns: []string{"algorithm", "clusters", "ARI", "NMI", "purity", "runtime"},
	}
	add := func(name string, labels []int, clusters int, wall time.Duration) error {
		ari, err := evalmetrics.ARI(truth, labels)
		if err != nil {
			return err
		}
		nmi, err := evalmetrics.NMI(truth, labels)
		if err != nil {
			return err
		}
		pur, err := evalmetrics.Purity(truth, labels)
		if err != nil {
			return err
		}
		r.AddRow(name, fmt.Sprintf("%d", clusters),
			fmt.Sprintf("%.4f", ari), fmt.Sprintf("%.4f", nmi), fmt.Sprintf("%.4f", pur), fsec(wall))
		return nil
	}

	// DP (exact sequential; this experiment is about the algorithm, not
	// the distribution strategy).
	start := time.Now()
	res, err := dp.Compute(ds, dc, dp.Options{})
	if err != nil {
		return nil, err
	}
	g, err := decision.NewGraph(res.Rho, res.Delta, res.Upslope)
	if err != nil {
		return nil, err
	}
	g.Rectify()
	peaks := g.SelectTopK(k)
	dpLabels32, err := g.Assign(ds, peaks)
	if err != nil {
		return nil, err
	}
	if err := add("DP", evalmetrics.IntLabels(dpLabels32), len(peaks), time.Since(start)); err != nil {
		return nil, err
	}

	// Agglomerative hierarchical (single link, the classic connectivity
	// baseline).
	start = time.Now()
	hier, err := baselines.Hierarchical(ds, k, baselines.SingleLink)
	if err != nil {
		return nil, err
	}
	if err := add("hierarchical", hier, k, time.Since(start)); err != nil {
		return nil, err
	}

	// K-means.
	start = time.Now()
	km, err := baselines.KMeans(ds, k, 100, opt.Seed)
	if err != nil {
		return nil, err
	}
	if err := add("k-means", km.Labels, k, time.Since(start)); err != nil {
		return nil, err
	}

	// EM (Gaussian mixture).
	start = time.Now()
	em, err := baselines.EM(ds, k, 100, 1e-6, opt.Seed)
	if err != nil {
		return nil, err
	}
	if err := add("EM", em.Labels, k, time.Since(start)); err != nil {
		return nil, err
	}

	// DBSCAN with ε = d_c, minPts = 1 (paper's setting).
	start = time.Now()
	db, err := baselines.DBSCAN(ds, dc, 1)
	if err != nil {
		return nil, err
	}
	if err := add("DBSCAN", db.Labels, db.Clusters, time.Since(start)); err != nil {
		return nil, err
	}

	r.Notes = append(r.Notes, "expected shape: DP best; hierarchical/DBSCAN merge touching clusters; K-means/EM split non-oval shapes")
	return r, nil
}
