package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kmeansmr"
)

// ExpFig11 regenerates Figure 11: cumulative runtime of distributed
// K-means per iteration vs the total runtime of LSH-DDP, on the BigCross
// set. The paper runs K-means for 100 iterations and finds LSH-DDP's total
// corresponds to roughly the 24th iteration.
func ExpFig11(opt Options) (*Report, error) {
	ds, err := opt.load("BigCross")
	if err != nil {
		return nil, err
	}
	eng := opt.engine()

	opt.logf("fig11: N=%d running LSH-DDP...", ds.N())
	lshRes, err := core.RunLSHDDP(context.Background(), ds, opt.lshConfig(eng))
	if err != nil {
		return nil, err
	}

	iters := 100
	if opt.scale() > 1 {
		iters = 30 // benchmarks truncate the iteration sweep
	}
	opt.logf("fig11: running distributed K-means for %d iterations...", iters)
	km, err := kmeansmr.Run(context.Background(), ds, kmeansmr.Config{
		Engine:  eng,
		K:       16,
		MaxIter: iters,
		Seed:    opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Find the iteration whose cumulative time first exceeds LSH-DDP's.
	var cum time.Duration
	crossover := -1
	cumAt := make([]time.Duration, len(km.Iterations))
	for i, it := range km.Iterations {
		cum += it.Wall
		cumAt[i] = cum
		if crossover == -1 && cum >= lshRes.Stats.Wall {
			crossover = it.Iteration
		}
	}

	r := &Report{
		Title:   fmt.Sprintf("Figure 11: K-means cumulative runtime vs LSH-DDP on BigCross (N=%d, k=16)", ds.N()),
		Columns: []string{"iteration", "iter-time", "cumulative", "vs-LSH-DDP"},
	}
	for i, it := range km.Iterations {
		if (i+1)%5 != 0 && i != 0 && i != len(km.Iterations)-1 {
			continue // print every 5th row
		}
		marker := ""
		if cumAt[i] >= lshRes.Stats.Wall {
			marker = ">= LSH-DDP total"
		}
		r.AddRow(fmt.Sprintf("%d", it.Iteration), fsec(it.Wall), fsec(cumAt[i]), marker)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("LSH-DDP total runtime: %s", fsec(lshRes.Stats.Wall)),
		fmt.Sprintf("K-means cumulative time passes LSH-DDP at iteration %d of %d (paper: ~24 of 100)", crossover, iters),
	)
	if crossover == -1 {
		r.Notes = append(r.Notes, "K-means never reached LSH-DDP's total within the sweep")
	}
	// The in-process engine pays essentially zero per-job startup cost,
	// which flatters K-means: on the paper's Hadoop cluster every one of
	// the 100 iterations is a full job submission costing tens of seconds
	// of scheduling — most of what LSH-DDP's fixed 5-job pipeline avoids.
	// Report the crossover under a modeled Hadoop-like 30s/job overhead,
	// clearly labeled as a model.
	const jobOverhead = 30 * time.Second
	lshAdj := lshRes.Stats.Wall + 5*jobOverhead
	cum = 0
	modelCross := -1
	for i, it := range km.Iterations {
		cum += it.Wall + jobOverhead
		if cum >= lshAdj {
			modelCross = i + 1
			break
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"with a modeled 30s Hadoop job-startup overhead per job, the crossover is iteration %d (paper: ~24)", modelCross))
	return r, nil
}
