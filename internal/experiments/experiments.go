// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI). Each Exp* function runs one experiment and
// returns a Report whose rows mirror what the paper plots; cmd/dpbench
// prints them and bench_test.go wraps them as benchmarks.
//
// Dataset sizes are the scaled Table II sizes from DESIGN.md; Options.Scale
// divides them further (benchmarks use Scale 4–8 to keep `go test -bench`
// runs short). EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/decision"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/points"
)

// Options configures an experiment run.
type Options struct {
	// Scale additionally divides every data set size (1 = the DESIGN.md
	// experiment scale).
	Scale int
	// Seed drives dataset generation and all algorithm randomness.
	Seed int64
	// Parallelism bounds engine workers; <=0 uses all cores.
	Parallelism int
	// Log receives progress lines when non-nil.
	Log func(format string, args ...any)
	// Trace, when non-nil, collects the structured trace of every
	// MapReduce job the experiments run (wire it to a -trace flag).
	Trace *obs.Trace
}

func (o *Options) scale() int {
	if o.Scale > 0 {
		return o.Scale
	}
	return 1
}

func (o *Options) engine() mapreduce.Engine {
	return &mapreduce.LocalEngine{Parallelism: o.Parallelism}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// load generates a registry data set at the option scale.
func (o *Options) load(name string) (*points.Dataset, error) {
	spec, err := dataset.Get(name)
	if err != nil {
		return nil, err
	}
	ds := spec.Gen(o.Seed)
	if s := o.scale(); s > 1 {
		n := ds.N() / s
		if n < 64 {
			n = 64
		}
		ds.Points = ds.Points[:n]
		if ds.Labels != nil {
			ds.Labels = ds.Labels[:n]
		}
	}
	return ds, nil
}

// Report is a printable experiment result: a header, column names, and
// rows of formatted cells.
type Report struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// WriteTo renders the report as an aligned text table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// formatting helpers shared by the experiments.

func fsec(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

func fmb(bytes int64) string { return fmt.Sprintf("%.2fMB", float64(bytes)/(1<<20)) }

func fcount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func fratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

// lshConfig is the paper's standard LSH-DDP setting (Section VI-D):
// A = 0.99, M = 10, π = 3.
func (o *Options) lshConfig(eng mapreduce.Engine) core.LSHConfig {
	return core.LSHConfig{
		Config:   core.Config{Engine: eng, Seed: o.Seed, DcPercentile: 0.02, Trace: o.Trace},
		Accuracy: 0.99,
		M:        10,
		Pi:       3,
	}
}

// basicConfig is the paper's Basic-DDP setting (block size 500).
func (o *Options) basicConfig(eng mapreduce.Engine) core.BasicConfig {
	return core.BasicConfig{
		Config:    core.Config{Engine: eng, Seed: o.Seed, DcPercentile: 0.02, Trace: o.Trace},
		BlockSize: 500,
	}
}

// decisionGraph is a thin wrapper to keep experiment code terse.
func decisionGraph(rho, delta []float64, upslope []int32) (*decision.Graph, error) {
	return decision.NewGraph(rho, delta, upslope)
}

// WriteCSVTo renders the report as CSV (header row, then data rows) for
// machine consumption — plotting scripts regenerate the paper's figures
// from these files.
func (r *Report) WriteCSVTo(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
