package experiments

import (
	"fmt"

	"repro/internal/dataset"
)

// ExpTable2 regenerates Table II: the data-set inventory, with the paper's
// original sizes next to the scaled sizes this reproduction generates.
func ExpTable2(opt Options) (*Report, error) {
	r := &Report{
		Title:   "Table II: data sets (paper size -> generated size)",
		Columns: []string{"dataset", "paperN", "paperDim", "genN", "genDim", "scale", "clusters"},
	}
	for _, spec := range dataset.Registry() {
		ds := spec.Gen(opt.Seed)
		if err := ds.Validate(); err != nil {
			return nil, err
		}
		nClusters := "-"
		if ds.Labels != nil {
			seen := map[int]bool{}
			for _, l := range ds.Labels {
				seen[l] = true
			}
			nClusters = fmt.Sprintf("%d", len(seen))
		}
		r.AddRow(
			spec.Name,
			fmt.Sprintf("%d", spec.PaperN),
			fmt.Sprintf("%d", spec.PaperDim),
			fmt.Sprintf("%d", ds.N()),
			fmt.Sprintf("%d", ds.Dim()),
			fmt.Sprintf("1/%d", spec.Scale),
			nClusters,
		)
	}
	r.Notes = append(r.Notes,
		"original sets are not redistributable; generators reproduce cardinality (scaled), dimensionality, and cluster structure")
	return r, nil
}
