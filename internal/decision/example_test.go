package decision_test

import (
	"fmt"
	"math"

	"repro/internal/decision"
	"repro/internal/points"
)

// The full centralized step: rectify ∞ δ̂, pick peaks, assign clusters.
func ExampleGraph_Assign() {
	// A hand-built graph: two density mountains (peaks at 0 and 3).
	ds := points.FromVectors("demo", []points.Vector{{0}, {1}, {2}, {10}, {11}})
	g, err := decision.NewGraph(
		[]float64{5, 4, 3, 5, 4},            // rho (0 and 3 tie; ID order breaks it)
		[]float64{11, 1, 1, math.Inf(1), 1}, // delta; 3 looked like a local peak
		[]int32{-1, 0, 1, -1, 3},            // upslope chain
	)
	if err != nil {
		panic(err)
	}
	g.Rectify() // resolve the Inf before using the graph
	peaks := g.SelectTopK(2)
	labels, err := g.Assign(ds, peaks)
	if err != nil {
		panic(err)
	}
	fmt.Println("peaks: ", peaks)
	fmt.Println("labels:", labels)
	// Output:
	// peaks:  [0 3]
	// labels: [0 0 0 1 1]
}

// Automatic cluster-count suggestion from the γ spectrum.
func ExampleGraph_SuggestK() {
	rho := make([]float64, 50)
	delta := make([]float64, 50)
	up := make([]int32, 50)
	for i := range rho {
		rho[i], delta[i], up[i] = 1, 0.5, int32((i+49)%50)
	}
	for _, p := range []int{3, 17, 41} { // three outliers
		rho[p], delta[p], up[p] = 20, 15, -1
	}
	g, _ := decision.NewGraph(rho, delta, up)
	fmt.Println("suggested k:", g.SuggestK(10))
	// Output:
	// suggested k: 3
}
