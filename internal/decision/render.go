package decision

import (
	"fmt"
	"math"
	"strings"
)

// Render draws the decision graph as ASCII art: ρ on the x-axis, δ on the
// y-axis, '·' for ordinary points, '*' for multiple points in one cell, and
// 'P' for cells containing a selected peak. It is what examples/decisiongraph
// prints so a terminal user can eyeball the peak outliers the way Figure 7
// intends.
func (g *Graph) Render(width, height int, peaks []int32) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	var maxRho, maxDelta float64
	for i := range g.Rho {
		if g.Rho[i] > maxRho {
			maxRho = g.Rho[i]
		}
		if !math.IsInf(g.Delta[i], 0) && g.Delta[i] > maxDelta {
			maxDelta = g.Delta[i]
		}
	}
	if maxRho == 0 {
		maxRho = 1
	}
	if maxDelta == 0 {
		maxDelta = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	cell := func(i int) (int, int) {
		x := int(g.Rho[i] / maxRho * float64(width-1))
		d := g.Delta[i]
		if math.IsInf(d, 1) {
			d = maxDelta
		}
		y := int(d / maxDelta * float64(height-1))
		return x, height - 1 - y
	}
	for i := range g.Rho {
		x, y := cell(i)
		switch grid[y][x] {
		case ' ':
			grid[y][x] = '.'
		case '.':
			grid[y][x] = '*'
		}
	}
	for _, p := range peaks {
		x, y := cell(int(p))
		grid[y][x] = 'P'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "delta (max %.4g)\n", maxDelta)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	fmt.Fprintf(&b, "> rho (max %.4g)\n", maxRho)
	return b.String()
}
