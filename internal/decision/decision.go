// Package decision implements the centralized final step shared by every
// distributed DP algorithm in this repository (Section III, Step 3 of the
// paper): building the (ρ, δ) decision graph, selecting density peaks on
// it, and assigning every remaining point to a cluster by following its
// chain of upslope points.
//
// The paper argues for keeping this step interactive — the decision graph
// is DP's distinguishing user affordance — so the package provides both
// explicit selection (a (ρ_min, δ_min) box, exactly what a user draws on
// the graph) and automatic strategies (top-k by γ = ρ·δ, and a γ-outlier
// rule) for non-interactive pipelines, plus an ASCII rendering of the graph
// for terminal exploration.
package decision

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dp"
	"repro/internal/points"
)

// Graph is a decision graph: per-point density and delta-distance, plus the
// upslope pointers that drive assignment. Delta may contain +Inf for points
// a distributed algorithm flagged as local absolute peaks; Rectify resolves
// those before the graph is used.
type Graph struct {
	Rho     []float64
	Delta   []float64
	Upslope []int32
}

// NewGraph bundles result arrays into a Graph after validating lengths.
func NewGraph(rho, delta []float64, upslope []int32) (*Graph, error) {
	if len(rho) != len(delta) || len(rho) != len(upslope) {
		return nil, fmt.Errorf("decision: mismatched lengths rho=%d delta=%d upslope=%d",
			len(rho), len(delta), len(upslope))
	}
	return &Graph{Rho: rho, Delta: delta, Upslope: upslope}, nil
}

// N returns the number of points.
func (g *Graph) N() int { return len(g.Rho) }

// Rectify replaces every non-finite δ with the maximum finite δ (Section
// IV-C: "the infinite δ will be rectified as the finite max δ value before
// drawing them on the decision graph") and returns that maximum. A graph
// whose δ are all non-finite rectifies to 1.
func (g *Graph) Rectify() float64 {
	maxFinite := math.Inf(-1)
	for _, d := range g.Delta {
		if !math.IsInf(d, 0) && !math.IsNaN(d) && d > maxFinite {
			maxFinite = d
		}
	}
	if math.IsInf(maxFinite, -1) {
		maxFinite = 1
	}
	for i, d := range g.Delta {
		if math.IsInf(d, 0) || math.IsNaN(d) {
			g.Delta[i] = maxFinite
		}
	}
	return maxFinite
}

// Gamma returns γ_i = ρ_i · δ_i, the peak-ness score.
func (g *Graph) Gamma() []float64 {
	gamma := make([]float64, g.N())
	for i := range gamma {
		gamma[i] = g.Rho[i] * g.Delta[i]
	}
	return gamma
}

// SelectBox returns the IDs of all points with ρ > rhoMin and δ > deltaMin —
// the rectangular selection a user draws on the decision graph (as in the
// paper's Figure 7, "all points that satisfy ρ > 14 and δ > 40").
func (g *Graph) SelectBox(rhoMin, deltaMin float64) []int32 {
	var peaks []int32
	for i := range g.Rho {
		if g.Rho[i] > rhoMin && g.Delta[i] > deltaMin {
			peaks = append(peaks, int32(i))
		}
	}
	return peaks
}

// SelectTopK returns the k points with the largest γ = ρ·δ, ties broken by
// smaller ID.
func (g *Graph) SelectTopK(k int) []int32 {
	if k <= 0 {
		return nil
	}
	gamma := g.Gamma()
	ids := make([]int32, g.N())
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ga, gb := gamma[ids[a]], gamma[ids[b]]
		if ga != gb {
			return ga > gb
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	peaks := append([]int32(nil), ids[:k]...)
	sort.Slice(peaks, func(a, b int) bool { return peaks[a] < peaks[b] })
	return peaks
}

// SelectOutliers picks peaks automatically as γ outliers: points whose γ
// exceeds mean + sigmas·stddev of the γ distribution. It is a pragmatic
// default for non-interactive runs; the paper deliberately leaves selection
// to the user.
func (g *Graph) SelectOutliers(sigmas float64) []int32 {
	gamma := g.Gamma()
	n := float64(len(gamma))
	if n == 0 {
		return nil
	}
	var mean float64
	for _, x := range gamma {
		mean += x
	}
	mean /= n
	var varsum float64
	for _, x := range gamma {
		varsum += (x - mean) * (x - mean)
	}
	std := math.Sqrt(varsum / n)
	thresh := mean + sigmas*std
	var peaks []int32
	for i, x := range gamma {
		if x > thresh {
			peaks = append(peaks, int32(i))
		}
	}
	return peaks
}

// Assign labels every point with the index (into peaks) of its cluster by
// walking points in decreasing density order and inheriting the upslope
// point's label (Figure 1d's assignment chain). Points whose chain dead-
// ends without reaching a selected peak — the absolute density peak when it
// was not selected, or unselected local peaks produced by approximate
// algorithms — fall back to the nearest selected peak by distance, which
// requires ds. Returns nil and an error when peaks is empty.
func (g *Graph) Assign(ds *points.Dataset, peaks []int32) ([]int32, error) {
	if len(peaks) == 0 {
		return nil, fmt.Errorf("decision: no peaks selected")
	}
	n := g.N()
	if ds.N() != n {
		return nil, fmt.Errorf("decision: dataset has %d points, graph has %d", ds.N(), n)
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	for c, p := range peaks {
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("decision: peak id %d out of range", p)
		}
		labels[p] = int32(c)
	}
	// Process points in decreasing density order so that every point's
	// upslope point is labeled before the point itself.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return dp.Denser(g.Rho, order[a], order[b])
	})
	nearestPeak := func(i int32) int32 {
		best := math.Inf(1)
		var bestC int32
		for c, p := range peaks {
			d := points.SqDist(ds.Points[i].Pos, ds.Points[p].Pos)
			if d < best {
				best = d
				bestC = int32(c)
			}
		}
		return bestC
	}
	for _, i := range order {
		if labels[i] >= 0 {
			continue
		}
		u := g.Upslope[i]
		if u < 0 || int(u) >= n || labels[u] < 0 {
			labels[i] = nearestPeak(i)
			continue
		}
		labels[i] = labels[u]
	}
	return labels, nil
}

// Halo computes the cluster-core/halo split from the original DP paper (an
// extension beyond the reproduced paper): for each cluster, the border
// density ρ_b is the highest average density of point pairs from different
// clusters within d_c of each other; points below their cluster's border
// density are halo (noise) and get halo[i]=true.
func Halo(ds *points.Dataset, labels []int32, rho []float64, dc float64) []bool {
	n := ds.N()
	halo := make([]bool, n)
	if n == 0 {
		return halo
	}
	nClusters := int32(0)
	for _, l := range labels {
		if l+1 > nClusters {
			nClusters = l + 1
		}
	}
	border := make([]float64, nClusters)
	dc2 := dc * dc
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if labels[i] == labels[j] {
				continue
			}
			if points.SqDist(ds.Points[i].Pos, ds.Points[j].Pos) < dc2 {
				avg := (rho[i] + rho[j]) / 2
				if avg > border[labels[i]] {
					border[labels[i]] = avg
				}
				if avg > border[labels[j]] {
					border[labels[j]] = avg
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if labels[i] >= 0 && rho[i] < border[labels[i]] {
			halo[i] = true
		}
	}
	return halo
}

// SuggestK proposes a cluster count from the γ spectrum: sort γ
// descending and find the largest relative gap γ_i/γ_{i+1} within the
// first maxK candidates (peaks stand clear of the crowd on the decision
// graph, so the spectrum has a knee at the true k). Returns 1 for a
// gapless spectrum. This automates what a user does visually; the paper
// deliberately keeps selection interactive, so treat this as a default,
// not an oracle.
func (g *Graph) SuggestK(maxK int) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if maxK <= 0 || maxK > n-1 {
		maxK = n - 1
	}
	gamma := g.Gamma()
	sort.Sort(sort.Reverse(sort.Float64Slice(gamma)))
	bestK, bestRatio := 1, 0.0
	for k := 1; k <= maxK && k < n; k++ {
		hi, lo := gamma[k-1], gamma[k]
		if lo <= 0 {
			if hi > 0 {
				return k // everything after k is zero: unambiguous knee
			}
			continue
		}
		if ratio := hi / lo; ratio > bestRatio {
			bestRatio = ratio
			bestK = k
		}
	}
	return bestK
}
