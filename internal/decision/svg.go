package decision

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// RenderSVG writes the decision graph as a standalone SVG document — the
// shareable counterpart to the terminal Render. Ordinary points are small
// grey dots; selected peaks are highlighted with their index. Axes carry
// tick labels so the ρ>x, δ>y selection box can be read off the plot the
// way the paper's Figure 7 is read.
func (g *Graph) RenderSVG(w io.Writer, width, height int, peaks []int32) error {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	const margin = 42
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)

	var maxRho, maxDelta float64
	for i := range g.Rho {
		if g.Rho[i] > maxRho {
			maxRho = g.Rho[i]
		}
		if !math.IsInf(g.Delta[i], 0) && !math.IsNaN(g.Delta[i]) && g.Delta[i] > maxDelta {
			maxDelta = g.Delta[i]
		}
	}
	if maxRho == 0 {
		maxRho = 1
	}
	if maxDelta == 0 {
		maxDelta = 1
	}
	xy := func(i int) (float64, float64) {
		d := g.Delta[i]
		if math.IsInf(d, 1) || math.IsNaN(d) {
			d = maxDelta
		}
		x := float64(margin) + g.Rho[i]/maxRho*plotW
		y := float64(margin) + (1-d/maxDelta)*plotH
		return x, y
	}

	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	p(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	// Axes.
	p(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	p(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	p(`<text x="%d" y="%d" font-size="11" text-anchor="middle">rho</text>`+"\n",
		width/2, height-8)
	p(`<text x="12" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 12 %d)">delta</text>`+"\n",
		height/2, height/2)
	// Ticks: 0, half, max on both axes.
	for _, frac := range []float64{0, 0.5, 1} {
		x := float64(margin) + frac*plotW
		p(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-margin, x, height-margin+4)
		p(`<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%.3g</text>`+"\n",
			x, height-margin+15, frac*maxRho)
		y := float64(margin) + (1-frac)*plotH
		p(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			margin-4, y, margin, y)
		p(`<text x="%d" y="%.1f" font-size="9" text-anchor="end">%.3g</text>`+"\n",
			margin-6, y+3, frac*maxDelta)
	}
	// Points.
	peakSet := make(map[int32]bool, len(peaks))
	for _, pk := range peaks {
		peakSet[pk] = true
	}
	for i := range g.Rho {
		if peakSet[int32(i)] {
			continue
		}
		x, y := xy(i)
		p(`<circle cx="%.1f" cy="%.1f" r="1.5" fill="#888"/>`+"\n", x, y)
	}
	// Peaks on top, labeled by cluster index.
	sorted := append([]int32(nil), peaks...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	for c, pk := range sorted {
		if int(pk) >= g.N() || pk < 0 {
			return fmt.Errorf("decision: peak id %d out of range", pk)
		}
		x, y := xy(int(pk))
		p(`<circle cx="%.1f" cy="%.1f" r="4" fill="#c0392b"/>`+"\n", x, y)
		p(`<text x="%.1f" y="%.1f" font-size="9" fill="#c0392b">%d</text>`+"\n", x+5, y-3, c)
	}
	p("</svg>\n")
	return err
}
