package decision

import (
	"math"
	"strings"
	"testing"

	"repro/internal/points"
)

func mustGraph(t *testing.T, rho, delta []float64, upslope []int32) *Graph {
	t.Helper()
	g, err := NewGraph(rho, delta, upslope)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphValidates(t *testing.T) {
	if _, err := NewGraph([]float64{1}, []float64{1, 2}, []int32{0}); err == nil {
		t.Fatal("want error on mismatched lengths")
	}
}

func TestRectify(t *testing.T) {
	g := mustGraph(t,
		[]float64{1, 2, 3, 4},
		[]float64{5, math.Inf(1), 2, math.NaN()},
		[]int32{-1, -1, 0, 1})
	maxFinite := g.Rectify()
	if maxFinite != 5 {
		t.Fatalf("max finite = %v", maxFinite)
	}
	for i, d := range g.Delta {
		if math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("delta[%d] not rectified: %v", i, d)
		}
	}
	if g.Delta[1] != 5 || g.Delta[3] != 5 {
		t.Fatalf("rectified values = %v", g.Delta)
	}
	// All-infinite graph rectifies to 1.
	g2 := mustGraph(t, []float64{1}, []float64{math.Inf(1)}, []int32{-1})
	if got := g2.Rectify(); got != 1 || g2.Delta[0] != 1 {
		t.Fatalf("all-inf rectify = %v, delta %v", got, g2.Delta[0])
	}
}

func TestSelectBox(t *testing.T) {
	g := mustGraph(t,
		[]float64{10, 5, 20, 1},
		[]float64{8, 9, 2, 10},
		[]int32{-1, 0, 0, 0})
	got := g.SelectBox(4, 7)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("SelectBox = %v", got)
	}
	if got := g.SelectBox(100, 100); got != nil {
		t.Fatalf("empty box = %v", got)
	}
}

func TestSelectTopK(t *testing.T) {
	g := mustGraph(t,
		[]float64{10, 5, 20, 1}, // gamma: 80, 45, 40, 10
		[]float64{8, 9, 2, 10},
		[]int32{-1, 0, 0, 0})
	got := g.SelectTopK(2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("top-2 = %v", got)
	}
	if got := g.SelectTopK(100); len(got) != 4 {
		t.Fatalf("top-100 on 4 points = %v", got)
	}
	if got := g.SelectTopK(0); got != nil {
		t.Fatalf("top-0 = %v", got)
	}
	// Gamma tie: smaller ID wins.
	tie := mustGraph(t, []float64{2, 2, 2}, []float64{3, 3, 1}, []int32{-1, 0, 0})
	if got := tie.SelectTopK(1); got[0] != 0 {
		t.Fatalf("tie winner = %v", got)
	}
}

func TestSelectOutliers(t *testing.T) {
	rho := make([]float64, 100)
	delta := make([]float64, 100)
	up := make([]int32, 100)
	for i := range rho {
		rho[i], delta[i], up[i] = 1, 1, int32(i-1)
	}
	rho[7], delta[7] = 50, 50 // one screaming outlier
	up[7] = -1
	g := mustGraph(t, rho, delta, up)
	got := g.SelectOutliers(3)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("outliers = %v", got)
	}
}

// chainedDataset builds a 1-D set with known structure: two clusters with
// peaks at x=0 and x=10.
func chainedDataset() (*points.Dataset, *Graph) {
	// Points: 0:(0) 1:(1) 2:(2) 3:(10) 4:(11)
	ds := points.FromVectors("chain", []points.Vector{{0}, {1}, {2}, {10}, {11}})
	rho := []float64{5, 4, 3, 5, 4} // point 0 and 3 tie; ID order makes 0 the global peak
	delta := []float64{11, 1, 1, 8, 1}
	up := []int32{-1, 0, 1, 0, 3}
	g, _ := NewGraph(rho, delta, up)
	return ds, g
}

func TestAssignChains(t *testing.T) {
	ds, g := chainedDataset()
	labels, err := g.Assign(ds, []int32{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 0, 1, 1}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestAssignFallbackToNearestPeak(t *testing.T) {
	// The absolute peak is NOT selected: it must fall back to the nearest
	// selected peak by distance.
	ds, g := chainedDataset()
	labels, err := g.Assign(ds, []int32{1, 3}) // select points 1 and 3
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 0 { // point 0 at x=0 is nearest to peak 1 at x=1
		t.Fatalf("peak fallback label = %d", labels[0])
	}
	if labels[4] != 1 {
		t.Fatalf("labels = %v", labels)
	}
}

func TestAssignErrors(t *testing.T) {
	ds, g := chainedDataset()
	if _, err := g.Assign(ds, nil); err == nil {
		t.Fatal("want error for no peaks")
	}
	if _, err := g.Assign(ds, []int32{99}); err == nil {
		t.Fatal("want error for out-of-range peak")
	}
	short := points.FromVectors("short", []points.Vector{{0}})
	if _, err := g.Assign(short, []int32{0}); err == nil {
		t.Fatal("want error for dataset length mismatch")
	}
}

func TestAssignAllPointsLabeled(t *testing.T) {
	// Larger randomized chain: every point must get a label in range.
	rng := points.NewRand(3)
	n := 200
	vs := make([]points.Vector, n)
	for i := range vs {
		vs[i] = points.Vector{rng.Float64() * 100, rng.Float64() * 100}
	}
	ds := points.FromVectors("rand", vs)
	rho := make([]float64, n)
	delta := make([]float64, n)
	up := make([]int32, n)
	for i := range rho {
		rho[i] = rng.Float64() * 50
		delta[i] = rng.Float64() * 5
		up[i] = -1
	}
	// Build a valid upslope structure: point with next-higher rho.
	type byRho struct {
		id  int32
		rho float64
	}
	order := make([]byRho, n)
	for i := range order {
		order[i] = byRho{int32(i), rho[i]}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if order[j].rho > order[i].rho {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for oi := 1; oi < n; oi++ {
		up[order[oi].id] = order[oi-1].id
	}
	g := mustGraph(t, rho, delta, up)
	labels, err := g.Assign(ds, []int32{order[0].id, order[1].id, order[2].id})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range labels {
		if l < 0 || l > 2 {
			t.Fatalf("label[%d] = %d", i, l)
		}
	}
}

func TestGamma(t *testing.T) {
	g := mustGraph(t, []float64{2, 3}, []float64{4, 5}, []int32{-1, 0})
	gamma := g.Gamma()
	if gamma[0] != 8 || gamma[1] != 15 {
		t.Fatalf("gamma = %v", gamma)
	}
}

func TestHalo(t *testing.T) {
	// Two tight clusters with a sparse bridge point between them.
	ds := points.FromVectors("halo", []points.Vector{
		{0}, {0.1}, {0.2}, // cluster 0
		{5}, {5.1}, {5.2}, // cluster 1
		{2.5}, // bridge
	})
	labels := []int32{0, 0, 0, 1, 1, 1, 0}
	rho := []float64{3, 3, 3, 3, 3, 3, 0.5}
	halo := Halo(ds, labels, rho, 3.0)
	if !halo[6] {
		t.Fatal("bridge point not in halo")
	}
	if halo[0] || halo[4] {
		t.Fatal("core points flagged as halo")
	}
	// Without cross-cluster contact (tiny dc) nothing is halo.
	none := Halo(ds, labels, rho, 0.01)
	for i, h := range none {
		if h {
			t.Fatalf("point %d halo with tiny dc", i)
		}
	}
}

func TestRender(t *testing.T) {
	g := mustGraph(t,
		[]float64{1, 10, 5},
		[]float64{1, 9, 2},
		[]int32{1, -1, 1})
	s := g.Render(40, 10, []int32{1})
	if !strings.Contains(s, "P") {
		t.Fatalf("no peak marker:\n%s", s)
	}
	if !strings.Contains(s, "rho (max 10)") {
		t.Fatalf("missing axis label:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 12 { // title + 10 rows + axis
		t.Fatalf("render has %d lines:\n%s", len(lines), s)
	}
	// Tiny dimensions are clamped, not crashed.
	_ = g.Render(1, 1, nil)
}

func TestSuggestK(t *testing.T) {
	// 3 screaming peaks over a flat crowd.
	n := 100
	rho := make([]float64, n)
	delta := make([]float64, n)
	up := make([]int32, n)
	for i := range rho {
		rho[i], delta[i], up[i] = 1, 0.5, int32((i+1)%n)
	}
	for _, p := range []int{5, 40, 77} {
		rho[p], delta[p], up[p] = 30, 20, -1
	}
	g := mustGraph(t, rho, delta, up)
	if k := g.SuggestK(20); k != 3 {
		t.Fatalf("SuggestK = %d, want 3", k)
	}
	// Degenerate graphs do not panic.
	empty := mustGraph(t, nil, nil, nil)
	if k := empty.SuggestK(5); k != 0 {
		t.Fatalf("empty SuggestK = %d", k)
	}
	one := mustGraph(t, []float64{1}, []float64{1}, []int32{-1})
	if k := one.SuggestK(5); k < 1 {
		t.Fatalf("single-point SuggestK = %d", k)
	}
}

func TestSuggestKOnRealisticGraph(t *testing.T) {
	// Build a graph resembling a 4-cluster DP output: densities fall off
	// within clusters, peaks have both high rho and high delta.
	rng := points.NewRand(9)
	var rho, delta []float64
	var up []int32
	for c := 0; c < 4; c++ {
		base := int32(len(rho))
		rho = append(rho, 50+float64(c))
		delta = append(delta, 100)
		up = append(up, -1)
		for i := 0; i < 60; i++ {
			rho = append(rho, 5+rng.Float64()*20)
			delta = append(delta, 0.2+rng.Float64())
			up = append(up, base)
		}
	}
	g := mustGraph(t, rho, delta, up)
	if k := g.SuggestK(15); k != 4 {
		t.Fatalf("SuggestK = %d, want 4", k)
	}
}

func TestRenderSVG(t *testing.T) {
	g := mustGraph(t,
		[]float64{1, 10, 5, 3},
		[]float64{1, 9, 2, math.Inf(1)},
		[]int32{1, -1, 1, -1})
	var buf strings.Builder
	if err := g.RenderSVG(&buf, 400, 300, []int32{1}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "circle", "rho", "delta", `fill="#c0392b"`} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg[:200])
		}
	}
	// One red peak + label, three grey dots.
	if got := strings.Count(svg, `fill="#888"`); got != 3 {
		t.Fatalf("grey dots = %d, want 3", got)
	}
	// Out-of-range peak errors.
	if err := g.RenderSVG(&buf, 400, 300, []int32{99}); err == nil {
		t.Fatal("want error for out-of-range peak")
	}
	// Tiny canvas is clamped, not broken.
	if err := g.RenderSVG(&buf, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
}
