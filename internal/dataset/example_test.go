package dataset_test

import (
	"bytes"
	"fmt"

	"repro/internal/dataset"
)

// Generating a Table II data set at its registry scale.
func ExampleGet() {
	spec, err := dataset.Get("S2")
	if err != nil {
		panic(err)
	}
	ds := spec.Gen(42)
	clusters := map[int]bool{}
	for _, l := range ds.Labels {
		clusters[l] = true
	}
	fmt.Printf("%s: %d points, dim %d, %d clusters (paper size %d)\n",
		ds.Name, ds.N(), ds.Dim(), len(clusters), spec.PaperN)
	// Output:
	// S2: 5000 points, dim 2, 15 clusters (paper size 5000)
}

// CSV round trip preserves coordinates exactly.
func ExampleWriteCSV() {
	ds := dataset.Blobs("demo", 3, 2, 1, 10, 1, 7)
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		panic(err)
	}
	back, err := dataset.ReadCSV(&buf, "demo", true)
	if err != nil {
		panic(err)
	}
	fmt.Println("points:", back.N(), "— exact round trip:",
		back.Points[0].Pos[0] == ds.Points[0].Pos[0])
	// Output:
	// points: 3 — exact round trip: true
}
