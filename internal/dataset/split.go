package dataset

import (
	"fmt"

	"repro/internal/points"
)

// Split partitions ds into two disjoint data sets of nFirst and
// n−nFirst points by a seeded shuffle — the generator of the kNN-join
// benchmarks' query/base pairs. Both halves are renumbered to dense IDs
// (the repository-wide dataset invariant) and carry ds's labels when
// present; the same (ds, nFirst, seed) always yields the same split.
func Split(ds *points.Dataset, nFirst int, seed int64) (*points.Dataset, *points.Dataset, error) {
	if nFirst < 1 || nFirst >= ds.N() {
		return nil, nil, fmt.Errorf("dataset: split size %d outside (0, %d)", nFirst, ds.N())
	}
	perm := points.NewRand(seed).Perm(ds.N())
	take := func(name string, idx []int) *points.Dataset {
		out := &points.Dataset{Name: name, Points: make([]points.Point, len(idx))}
		if ds.Labels != nil {
			out.Labels = make([]int, len(idx))
		}
		for i, j := range idx {
			out.Points[i] = points.Point{ID: int32(i), Pos: ds.Points[j].Pos}
			if ds.Labels != nil {
				out.Labels[i] = ds.Labels[j]
			}
		}
		return out
	}
	return take(ds.Name+"-R", perm[:nFirst]), take(ds.Name+"-S", perm[nFirst:]), nil
}
