package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/points"
)

// dsAlias keeps the Spec type readable without an import cycle in docs.
type dsAlias = points.Dataset

// WriteCSV writes the data set as CSV: one row per point, coordinates in
// order; when labels exist a final "label" column is appended.
func WriteCSV(w io.Writer, ds *points.Dataset) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	for i, p := range ds.Points {
		row := make([]string, 0, len(p.Pos)+1)
		for _, x := range p.Pos {
			row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if ds.Labels != nil {
			row = append(row, strconv.Itoa(ds.Labels[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCSVFile writes the data set to path.
func WriteCSVFile(path string, ds *points.Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteCSV(f, ds)
}

// ReadCSV parses a data set from CSV. When hasLabel is true the last
// column is read as an integer ground-truth label; all other columns must
// be floats. IDs are assigned densely in row order.
func ReadCSV(r io.Reader, name string, hasLabel bool) (*points.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	ds := &points.Dataset{Name: name}
	if hasLabel {
		ds.Labels = []int{}
	}
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", row, err)
		}
		nCoord := len(rec)
		if hasLabel {
			nCoord--
		}
		if nCoord < 1 {
			return nil, fmt.Errorf("dataset: row %d has no coordinates", row)
		}
		pos := make(points.Vector, nCoord)
		for j := 0; j < nCoord; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", row, j, err)
			}
			pos[j] = v
		}
		if hasLabel {
			l, err := strconv.Atoi(rec[len(rec)-1])
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d label: %w", row, err)
			}
			ds.Labels = append(ds.Labels, l)
		}
		ds.Points = append(ds.Points, points.Point{ID: int32(row), Pos: pos})
		row++
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ReadCSVFile reads a data set from path.
func ReadCSVFile(path, name string, hasLabel bool) (*points.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, hasLabel)
}
