package dataset

import (
	"fmt"
	"sort"
)

// Spec describes one named data set the experiment harness can request.
// PaperN and PaperDim record the original Table II size; N is the scaled
// size actually generated (scale factors are documented in DESIGN.md).
type Spec struct {
	Name     string
	N        int
	Dim      int
	PaperN   int
	PaperDim int
	Scale    int // PaperN / N (approximately)
	Gen      func(seed int64) *DS
}

// DS aliases points.Dataset to keep Spec readable.
type DS = dsAlias

// Registry returns the Table II data sets at their experiment scales,
// ordered as in the paper.
func Registry() []Spec {
	return []Spec{
		{
			Name: "Aggregation", N: 788, Dim: 2, PaperN: 788, PaperDim: 2, Scale: 1,
			Gen: func(seed int64) *DS { return Aggregation(seed) },
		},
		{
			Name: "S2", N: 5000, Dim: 2, PaperN: 5000, PaperDim: 2, Scale: 1,
			Gen: func(seed int64) *DS { return S2(seed) },
		},
		{
			Name: "Facial", N: 5587, Dim: 300, PaperN: 27936, PaperDim: 300, Scale: 5,
			Gen: func(seed int64) *DS { return Facial(5587, seed) },
		},
		{
			Name: "KDD", N: 14575, Dim: 74, PaperN: 145751, PaperDim: 74, Scale: 10,
			Gen: func(seed int64) *DS { return KDD(14575, seed) },
		},
		{
			Name: "3Dspatial", N: 21744, Dim: 4, PaperN: 434874, PaperDim: 4, Scale: 20,
			Gen: func(seed int64) *DS { return Spatial3D(21744, seed) },
		},
		{
			Name: "BigCross500K", N: 25000, Dim: 57, PaperN: 500000, PaperDim: 57, Scale: 20,
			Gen: func(seed int64) *DS { return BigCross(25000, seed) },
		},
		{
			Name: "BigCross", N: 116203, Dim: 57, PaperN: 11620300, PaperDim: 57, Scale: 100,
			Gen: func(seed int64) *DS { return BigCross(116203, seed) },
		},
	}
}

// Get returns the spec with the given name.
func Get(name string) (Spec, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range Registry() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("dataset: unknown data set %q (have %v)", name, names)
}
