package dataset

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/points"
)

func TestRegistrySpecsGenerateAsDeclared(t *testing.T) {
	for _, spec := range Registry() {
		ds := spec.Gen(1)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if ds.N() != spec.N {
			t.Fatalf("%s: generated %d points, spec says %d", spec.Name, ds.N(), spec.N)
		}
		if ds.Dim() != spec.Dim {
			t.Fatalf("%s: dim %d, spec says %d", spec.Name, ds.Dim(), spec.Dim)
		}
		if ds.Dim() != spec.PaperDim {
			t.Fatalf("%s: dim %d differs from paper's %d", spec.Name, ds.Dim(), spec.PaperDim)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("want error for unknown data set")
	}
	spec, err := Get("S2")
	if err != nil || spec.Name != "S2" {
		t.Fatalf("Get(S2) = %+v, %v", spec, err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, spec := range Registry() {
		a, b := spec.Gen(7), spec.Gen(7)
		for i := range a.Points {
			for j := range a.Points[i].Pos {
				if a.Points[i].Pos[j] != b.Points[i].Pos[j] {
					t.Fatalf("%s: seed 7 not reproducible at %d/%d", spec.Name, i, j)
				}
			}
		}
		c := spec.Gen(8)
		same := true
		for i := range a.Points {
			for j := range a.Points[i].Pos {
				if a.Points[i].Pos[j] != c.Points[i].Pos[j] {
					same = false
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical data", spec.Name)
		}
	}
}

func TestAggregationStructure(t *testing.T) {
	ds := Aggregation(1)
	if ds.N() != 788 {
		t.Fatalf("N = %d", ds.N())
	}
	seen := map[int]int{}
	for _, l := range ds.Labels {
		seen[l]++
	}
	if len(seen) != 7 {
		t.Fatalf("%d clusters, want 7", len(seen))
	}
	// The original's hallmark: very different cluster sizes.
	minSz, maxSz := ds.N(), 0
	for _, n := range seen {
		if n < minSz {
			minSz = n
		}
		if n > maxSz {
			maxSz = n
		}
	}
	if maxSz < 3*minSz {
		t.Fatalf("cluster sizes too uniform: min %d max %d", minSz, maxSz)
	}
}

func TestS2Structure(t *testing.T) {
	ds := S2(1)
	if ds.N() != 5000 || ds.Dim() != 2 {
		t.Fatalf("S2 shape %dx%d", ds.N(), ds.Dim())
	}
	seen := map[int]bool{}
	for _, l := range ds.Labels {
		seen[l] = true
	}
	if len(seen) != 15 {
		t.Fatalf("%d clusters, want 15", len(seen))
	}
}

func TestBlobsLabelsMatchNearestCenter(t *testing.T) {
	ds := Blobs("b", 500, 3, 4, 1000, 1, 3)
	// With spread << box, points should sit near their own component; at
	// least verify labels are in range and all components non-empty.
	counts := map[int]int{}
	for _, l := range ds.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	if len(counts) != 4 {
		t.Fatalf("components used: %v", counts)
	}
}

func TestTwoMoonsAndRings(t *testing.T) {
	moons := TwoMoons(400, 0.05, 1)
	if moons.N() != 400 {
		t.Fatal("moons size")
	}
	for _, l := range moons.Labels {
		if l != 0 && l != 1 {
			t.Fatalf("moons label %d", l)
		}
	}
	rings := Rings(300, 3, 0.05, 1)
	// Ring radii: points of ring r should be near radius 2(r+1).
	for i, p := range rings.Points {
		r := p.Pos.Norm()
		want := float64(rings.Labels[i]+1) * 2
		if math.Abs(r-want) > 0.5 {
			t.Fatalf("ring point %d at radius %v, want ~%v", i, r, want)
		}
	}
}

func TestEmbeddedHighDimStructure(t *testing.T) {
	ds := Facial(1000, 1)
	if ds.Dim() != 300 {
		t.Fatalf("Facial dim = %d", ds.Dim())
	}
	// Variance in the active subspace should dwarf the tail.
	varOf := func(j int) float64 {
		var mean, m2 float64
		for _, p := range ds.Points {
			mean += p.Pos[j]
		}
		mean /= float64(ds.N())
		for _, p := range ds.Points {
			d := p.Pos[j] - mean
			m2 += d * d
		}
		return m2 / float64(ds.N())
	}
	if varOf(0) < 10*varOf(250) {
		t.Fatalf("active dim variance %v not >> tail %v", varOf(0), varOf(250))
	}
}

func TestSpatial3DShape(t *testing.T) {
	ds := Spatial3D(2000, 2)
	if ds.Dim() != 4 || ds.N() != 2000 {
		t.Fatalf("3Dspatial shape %dx%d", ds.N(), ds.Dim())
	}
	if ds.Labels != nil {
		t.Fatal("road data has no ground-truth labels")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Blobs("csv", 100, 3, 2, 50, 2, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "csv", true)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != ds.N() || got.Dim() != ds.Dim() {
		t.Fatalf("round trip shape %dx%d", got.N(), got.Dim())
	}
	for i := range ds.Points {
		for j := range ds.Points[i].Pos {
			if got.Points[i].Pos[j] != ds.Points[i].Pos[j] {
				t.Fatalf("coordinate %d/%d changed", i, j)
			}
		}
		if got.Labels[i] != ds.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

// Property: arbitrary float grids survive the CSV round trip exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(rows []float64) bool {
		if len(rows) == 0 {
			return true
		}
		vs := make([]points.Vector, 0, len(rows))
		for _, x := range rows {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0 // CSV floats only
			}
			vs = append(vs, points.Vector{x, -x})
		}
		ds := points.FromVectors("prop", vs)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, "prop", false)
		if err != nil || got.N() != ds.N() {
			return false
		}
		for i := range vs {
			if got.Points[i].Pos[0] != vs[i][0] || got.Points[i].Pos[1] != vs[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewReader([]byte("1,notafloat\n")), "bad", false); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ReadCSV(bytes.NewReader([]byte("1.5,badlabel\n")), "bad", true); err == nil {
		t.Fatal("want label error")
	}
	empty, err := ReadCSV(bytes.NewReader(nil), "empty", false)
	if err != nil || empty.N() != 0 {
		t.Fatalf("empty CSV: %v %v", empty.N(), err)
	}
}

func TestSplitDisjointDeterministic(t *testing.T) {
	ds := Blobs("split-src", 200, 3, 4, 50, 2, 5)
	R, S, err := Split(ds, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if R.N() != 60 || S.N() != 140 {
		t.Fatalf("sizes %d/%d, want 60/140", R.N(), S.N())
	}
	if err := R.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := S.Validate(); err != nil {
		t.Fatal(err)
	}
	key := func(p points.Point) string { return fmt.Sprintf("%v", p.Pos) }
	seen := map[string]int{}
	for _, p := range ds.Points {
		seen[key(p)]++
	}
	for _, half := range []*points.Dataset{R, S} {
		for _, p := range half.Points {
			if seen[key(p)] == 0 {
				t.Fatalf("%s holds a point not in (or over-drawn from) the source: %v", half.Name, p.Pos)
			}
			seen[key(p)]--
		}
	}
	R2, S2, err := Split(ds, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range R.Points {
		if key(R.Points[i]) != key(R2.Points[i]) {
			t.Fatal("split is not deterministic for the same seed")
		}
	}
	if len(S2.Points) != len(S.Points) {
		t.Fatal("split is not deterministic for the same seed")
	}
	if _, _, err := Split(ds, 0, 1); err == nil {
		t.Fatal("size 0 split should fail")
	}
	if _, _, err := Split(ds, ds.N(), 1); err == nil {
		t.Fatal("full-size split should fail")
	}
}
