// Package dataset generates the evaluation data sets. The paper's Table II
// uses seven real-world sets; those files are not redistributable, so this
// package provides deterministic synthetic generators that reproduce each
// set's cardinality (scaled where noted in DESIGN.md), dimensionality, and
// — what actually matters to DP and LSH behaviour — its cluster structure:
// shaped 2-D sets for Aggregation and S2, Gaussian mixtures embedded in
// high dimension for Facial/KDD/BigCross, and a road-network-like manifold
// for 3Dspatial.
//
// Every generator takes an explicit seed and is bit-reproducible.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/points"
)

// Blobs generates n points from k isotropic Gaussian clusters with the
// given per-dimension spread, centers drawn uniformly in [0, box]^dim.
// Labels record the generating cluster.
func Blobs(name string, n, dim, k int, box, spread float64, seed int64) *points.Dataset {
	if k <= 0 || n <= 0 || dim <= 0 {
		panic(fmt.Sprintf("dataset: bad blob spec n=%d dim=%d k=%d", n, dim, k))
	}
	rng := points.NewRand(seed)
	centers := make([]points.Vector, k)
	for c := range centers {
		v := make(points.Vector, dim)
		for j := range v {
			v[j] = rng.Float64() * box
		}
		centers[c] = v
	}
	return mixture(name, n, centers, uniformWeights(k), spread, rng)
}

// mixture draws n points from weighted Gaussian components.
func mixture(name string, n int, centers []points.Vector, weights []float64, spread float64, rng *points.Rand) *points.Dataset {
	dim := len(centers[0])
	cum := cumulative(weights)
	ds := &points.Dataset{
		Name:   name,
		Points: make([]points.Point, n),
		Labels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		c := pickComponent(cum, rng.Float64())
		v := make(points.Vector, dim)
		for j := range v {
			v[j] = centers[c][j] + rng.NormFloat64()*spread
		}
		ds.Points[i] = points.Point{ID: int32(i), Pos: v}
		ds.Labels[i] = c
	}
	return ds
}

func uniformWeights(k int) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = 1
	}
	return w
}

func cumulative(w []float64) []float64 {
	cum := make([]float64, len(w))
	var s float64
	for i, x := range w {
		s += x
		cum[i] = s
	}
	for i := range cum {
		cum[i] /= s
	}
	return cum
}

func pickComponent(cum []float64, u float64) int {
	i := sort.SearchFloat64s(cum, u)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

// Aggregation reproduces the structure of the Aggregation benchmark set
// (Gionis et al.): 788 2-D points in 7 clusters of very different sizes,
// two pairs of which nearly touch — the shape that defeats hierarchical
// clustering and DBSCAN in the paper's Figure 8.
func Aggregation(seed int64) *points.Dataset {
	// Component layout modeled on the original set's geometry
	// (coordinates roughly in [0,36]×[0,30]).
	type comp struct {
		cx, cy, sx, sy float64
		n              int
	}
	comps := []comp{
		{9, 23, 2.2, 1.8, 170},  // big top-left
		{21, 23, 1.6, 1.5, 102}, // top-middle, nearly touching next
		{25.5, 21, 1.3, 1.3, 68},
		{30, 8, 2.4, 2.0, 180}, // big bottom-right
		{19, 8, 1.5, 1.5, 104},
		{14.5, 5.5, 1.1, 1.1, 45}, // small, close to previous
		{7, 9, 1.7, 1.7, 119},
	}
	rng := points.NewRand(seed)
	var total int
	for _, c := range comps {
		total += c.n
	}
	ds := &points.Dataset{
		Name:   "Aggregation",
		Points: make([]points.Point, 0, total),
		Labels: make([]int, 0, total),
	}
	for ci, c := range comps {
		for i := 0; i < c.n; i++ {
			x := c.cx + rng.NormFloat64()*c.sx
			y := c.cy + rng.NormFloat64()*c.sy
			ds.Points = append(ds.Points, points.Point{
				ID:  int32(len(ds.Points)),
				Pos: points.Vector{x, y},
			})
			ds.Labels = append(ds.Labels, ci)
		}
	}
	return ds
}

// S2 reproduces the structure of the S-sets' S2 (Fränti & Virmajoki):
// 5000 2-D points in 15 Gaussian clusters with moderate overlap.
func S2(seed int64) *points.Dataset {
	rng := points.NewRand(seed)
	centers := make([]points.Vector, 15)
	// Spread centers over a jittered grid so clusters are distinct but not
	// uniformly spaced, like the original S2.
	i := 0
	for gy := 0; gy < 4 && i < 15; gy++ {
		for gx := 0; gx < 4 && i < 15; gx++ {
			centers[i] = points.Vector{
				float64(gx)*230_000 + 120_000 + rng.Float64()*90_000,
				float64(gy)*230_000 + 120_000 + rng.Float64()*90_000,
			}
			i++
		}
	}
	return mixture("S2", 5000, centers, uniformWeights(15), 32_000, rng)
}

// TwoMoons generates the classic interleaved half-circles — an arbitrarily
// shaped set on which centroid methods fail and DP succeeds.
func TwoMoons(n int, noise float64, seed int64) *points.Dataset {
	rng := points.NewRand(seed)
	ds := &points.Dataset{
		Name:   "TwoMoons",
		Points: make([]points.Point, n),
		Labels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t := rng.Float64() * math.Pi
		var x, y float64
		label := i % 2
		if label == 0 {
			x, y = math.Cos(t), math.Sin(t)
		} else {
			x, y = 1-math.Cos(t), 0.5-math.Sin(t)
		}
		x += rng.NormFloat64() * noise
		y += rng.NormFloat64() * noise
		ds.Points[i] = points.Point{ID: int32(i), Pos: points.Vector{x, y}}
		ds.Labels[i] = label
	}
	return ds
}

// Rings generates concentric rings (k rings, n points) — another shaped
// set for the Figure 8 comparison.
func Rings(n, k int, noise float64, seed int64) *points.Dataset {
	rng := points.NewRand(seed)
	ds := &points.Dataset{
		Name:   "Rings",
		Points: make([]points.Point, n),
		Labels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		ring := i % k
		r := float64(ring+1) * 2
		t := rng.Float64() * 2 * math.Pi
		x := r*math.Cos(t) + rng.NormFloat64()*noise
		y := r*math.Sin(t) + rng.NormFloat64()*noise
		ds.Points[i] = points.Point{ID: int32(i), Pos: points.Vector{x, y}}
		ds.Labels[i] = ring
	}
	return ds
}

// clustersFor scales the number of mixture components with N so that the
// typical cluster (and hence the typical LSH partition) stays a few
// hundred points regardless of data set size. Real feature data sets have
// this property — local density structure refines as N grows — and it is
// what makes LSH-DDP's distance work grow linearly in N (Figure 10(c))
// rather than quadratically.
func clustersFor(n int) int {
	k := n / 400
	if k < 16 {
		k = 16
	}
	return k
}

// Facial reproduces the shape of the Facial (skeletal face features) set:
// high-dimensional (300-d) points in clusters that live near a lower-
// dimensional subspace, as real descriptor data does: cluster centers vary
// strongly in the first 12 dimensions and weakly elsewhere.
func Facial(n int, seed int64) *points.Dataset {
	return embedded("Facial", n, 300, 12, clustersFor(n), seed)
}

// KDD reproduces the shape of the KDD Cup (protein homology) set: 74-d
// feature vectors with fine-grained density structure.
func KDD(n int, seed int64) *points.Dataset {
	return embedded("KDD", n, 74, 10, clustersFor(n), seed)
}

// BigCross reproduces the shape of the BigCross set (the cross product of
// the Tower and Covertype sets used by StreamKM++): 57-d with many
// grid-like clusters from the cross-product construction.
func BigCross(n int, seed int64) *points.Dataset {
	return embedded("BigCross", n, 57, 8, clustersFor(n), seed)
}

// embedded generates k Gaussian clusters whose centers differ strongly in
// an "active" leading subspace and only slightly in the remaining
// dimensions — the covariance profile of real high-dimensional feature
// data, and the regime in which p-stable LSH partitions meaningfully.
//
// Cluster sizes follow a Zipf-like law (weight ∝ 1/(rank+2)), which real
// feature data exhibits and which matters for reproducing the paper's cost
// shapes: the few large clusters dominate the pairwise-distance mass, so
// the 2% d_c rule lands at an INTRA-cluster distance (with equal-size
// clusters and k > 50, within-cluster pairs fall below 2% of all pairs and
// d_c jumps to the cross-cluster scale, which destroys every locality
// method — LSH-DDP and EDDPC alike). Cluster separation is wide relative
// to d_c so LSH layouts resolve clusters and slice the large ones.
func embedded(name string, n, dim, active, k int, seed int64) *points.Dataset {
	rng := points.NewRand(seed)
	centers := make([]points.Vector, k)
	for c := range centers {
		v := make(points.Vector, dim)
		for j := range v {
			if j < active {
				v[j] = rng.Float64() * 400
			} else {
				v[j] = rng.Float64() * 4
			}
		}
		centers[c] = v
	}
	// Zipf-like cluster weights, as in real data (see above).
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1.0 / float64(i+2)
	}
	cum := cumulative(weights)
	ds := &points.Dataset{
		Name:   name,
		Points: make([]points.Point, n),
		Labels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		c := pickComponent(cum, rng.Float64())
		v := make(points.Vector, dim)
		for j := range v {
			spread := 3.0
			if j >= active {
				spread = 1.0
			}
			v[j] = centers[c][j] + rng.NormFloat64()*spread
		}
		ds.Points[i] = points.Point{ID: int32(i), Pos: v}
		ds.Labels[i] = c
	}
	return ds
}

// Spatial3D reproduces the shape of the 3D Road Network set: 4-d records
// (id-like attribute folded into coordinates in the original; here four
// spatial features) sampled along a network of random polylines — data
// concentrated on a 1-D manifold, the regime where density varies smoothly
// and DP's assignment chains get long.
func Spatial3D(n int, seed int64) *points.Dataset {
	rng := points.NewRand(seed)
	// Road count scales with n so the network's local density structure
	// refines as the data grows, as real road networks do.
	roads := n / 400
	if roads < 40 {
		roads = 40
	}
	type segment struct{ a, b points.Vector }
	var segs []segment
	for r := 0; r < roads; r++ {
		// Random-walk polyline with 5 segments.
		// Road origins spread over a metropolitan-scale extent so the
		// network has wide-area structure; each road stays local.
		cur := points.Vector{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 2, rng.Float64()}
		for s := 0; s < 5; s++ {
			nxt := cur.Clone()
			nxt[0] += rng.NormFloat64() * 12
			nxt[1] += rng.NormFloat64() * 12
			nxt[2] += rng.NormFloat64() * 0.3
			nxt[3] += rng.NormFloat64() * 0.1
			segs = append(segs, segment{a: cur, b: nxt})
			cur = nxt
		}
	}
	ds := &points.Dataset{
		Name:   "3Dspatial",
		Points: make([]points.Point, n),
	}
	for i := 0; i < n; i++ {
		sg := segs[rng.Intn(len(segs))]
		t := rng.Float64()
		v := make(points.Vector, 4)
		for j := range v {
			v[j] = sg.a[j] + t*(sg.b[j]-sg.a[j]) + rng.NormFloat64()*0.2
		}
		ds.Points[i] = points.Point{ID: int32(i), Pos: v}
	}
	return ds
}
