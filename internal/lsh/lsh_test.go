package lsh

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/points"
)

func TestHashFloorSemantics(t *testing.T) {
	f := Func{A: points.Vector{1}, B: 0, W: 1}
	cases := []struct {
		x    float64
		want int64
	}{
		{0, 0}, {0.5, 0}, {0.999, 0}, {1, 1}, {-0.1, -1}, {-1, -1}, {-1.5, -2}, {7.2, 7},
	}
	for _, c := range cases {
		if got := f.Hash(points.Vector{c.x}); got != c.want {
			t.Fatalf("Hash(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestHashShiftByWChangesSlotByOne(t *testing.T) {
	rng := points.NewRand(1)
	f := NewFunc(3, 4.0, rng)
	p := points.Vector{1, 2, 3}
	// Moving along A by exactly W/|A|^2 * A shifts the projection by W.
	norm2 := f.A.Dot(f.A)
	q := p.Clone()
	for i := range q {
		q[i] += f.W / norm2 * f.A[i]
	}
	if got, want := f.Hash(q), f.Hash(p)+1; got != want {
		t.Fatalf("shifted hash = %d, want %d", got, want)
	}
}

func TestGroupKeyFormat(t *testing.T) {
	rng := points.NewRand(2)
	g := NewGroup(2, 3, 5.0, rng)
	key := g.Key(points.Vector{1, 2})
	if parts := strings.Split(key, "."); len(parts) != 3 {
		t.Fatalf("key %q should have 3 segments", key)
	}
	// Same point, same key; moved point usually different.
	if g.Key(points.Vector{1, 2}) != key {
		t.Fatal("key not deterministic")
	}
}

func TestLayoutsDeterministicBySeed(t *testing.T) {
	a := NewLayouts(4, 5, 3, 2.0, 99)
	b := NewLayouts(4, 5, 3, 2.0, 99)
	p := points.Vector{0.5, -1, 2, 7}
	ka, kb := a.Keys(p), b.Keys(p)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("layout %d key differs: %q vs %q", i, ka[i], kb[i])
		}
	}
	c := NewLayouts(4, 5, 3, 2.0, 100)
	diff := 0
	for i, k := range c.Keys(p) {
		if k != ka[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seed produced identical layouts")
	}
}

func TestLayoutKeysAreNamespaced(t *testing.T) {
	l := NewLayouts(2, 3, 1, 1e9, 7)
	keys := l.Keys(points.Vector{1, 2})
	seen := map[string]bool{}
	for m, k := range keys {
		if !strings.HasPrefix(k, strings.Split(k, "|")[0]+"|") {
			t.Fatalf("key %q not namespaced", k)
		}
		if seen[k] {
			t.Fatalf("layouts %d collide on key %q", m, k)
		}
		seen[k] = true
	}
}

// Property: closer points never have a lower single-function collision
// rate than farther ones, measured over many function draws.
func TestCollisionMonotoneEmpirical(t *testing.T) {
	const draws = 4000
	w := 4.0
	collide := func(d float64) float64 {
		rng := points.NewRand(11)
		p := points.Vector{0, 0}
		q := points.Vector{d, 0}
		hits := 0
		for i := 0; i < draws; i++ {
			f := NewFunc(2, w, rng)
			if f.Hash(p) == f.Hash(q) {
				hits++
			}
		}
		return float64(hits) / draws
	}
	near, mid, far := collide(0.5), collide(2), collide(8)
	if !(near > mid && mid > far) {
		t.Fatalf("collision rates not monotone: %v %v %v", near, mid, far)
	}
}

// Monte Carlo check of Lemma 3's closed form: empirical collision
// probability of two points at distance d matches CollisionProb(d, w).
func TestCollisionProbMatchesMonteCarlo(t *testing.T) {
	const draws = 60_000
	rng := points.NewRand(5)
	for _, tc := range []struct{ d, w float64 }{
		{1, 4}, {2, 4}, {4, 4}, {8, 4}, {1, 1},
	} {
		p := points.Vector{0, 0, 0}
		q := points.Vector{tc.d, 0, 0}
		hits := 0
		for i := 0; i < draws; i++ {
			f := NewFunc(3, tc.w, rng)
			if f.Hash(p) == f.Hash(q) {
				hits++
			}
		}
		got := float64(hits) / draws
		want := CollisionProb(tc.d, tc.w)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("d=%v w=%v: empirical %v vs formula %v", tc.d, tc.w, got, want)
		}
	}
}

func TestNewFuncValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive width")
		}
	}()
	NewFunc(2, 0, points.NewRand(1))
}

// Property: group keys respect the AND construction — two points share a
// group key iff every individual function agrees.
func TestGroupKeyANDSemantics(t *testing.T) {
	rng := points.NewRand(9)
	g := NewGroup(3, 4, 3.0, rng)
	f := func(ax, ay, az, bx, by, bz float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 100)
		}
		p := points.Vector{clamp(ax), clamp(ay), clamp(az)}
		q := points.Vector{clamp(bx), clamp(by), clamp(bz)}
		allAgree := true
		for _, h := range g.Funcs {
			if h.Hash(p) != h.Hash(q) {
				allAgree = false
				break
			}
		}
		return (g.Key(p) == g.Key(q)) == allAgree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: any point strictly within GuaranteeRadius of p shares p's key
// in at least one layout — the certificate the kNN-join fallback test
// relies on. Probed with random directions at fractions of the radius.
func TestGuaranteeRadius(t *testing.T) {
	rng := points.NewRand(31)
	l := NewLayouts(3, 4, 3, 2.5, 7)
	for trial := 0; trial < 200; trial++ {
		p := points.Vector{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		g := l.GuaranteeRadius(p)
		if g < 0 || math.IsNaN(g) {
			t.Fatalf("GuaranteeRadius(%v) = %v", p, g)
		}
		if g == 0 || math.IsInf(g, 1) {
			continue
		}
		pk := l.Keys(p)
		for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
			dir := points.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			n := math.Sqrt(dir.Dot(dir))
			if n == 0 {
				continue
			}
			q := make(points.Vector, 3)
			for j := range q {
				q[j] = p[j] + dir[j]/n*g*frac
			}
			qk := l.Keys(q)
			shared := false
			for m := range pk {
				if pk[m] == qk[m] {
					shared = true
					break
				}
			}
			if !shared {
				t.Fatalf("point at %.3f·g of %v shares no layout key", frac, p)
			}
		}
	}
}
