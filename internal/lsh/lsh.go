// Package lsh implements p-stable locality-sensitive hashing for Euclidean
// distance (Datar et al., SoCG 2004), in the form LSH-DDP uses it: groups
// of π hash functions whose concatenated values form a partition key, and
// M independent groups ("layouts") that partition the data set M different
// ways.
//
// The package also carries the paper's probability machinery: the collision
// probability of a single function (Lemma 3), the probability that ALL
// d_c-neighbours of a point share its slot (Lemma 1, both the exact integral
// and the paper's closed-form lower bound), the layout-level accuracy of
// Theorems 1 and 2, and a solver that inverts the accuracy formula (Eq. 5)
// to find the minimal width w for a requested expected accuracy A.
package lsh

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/points"
)

// Func is one p-stable hash function h(p) = ⌊(a·p + b)/w⌋ with a drawn
// from a standard Gaussian (2-stable) distribution and b uniform in [0, w).
type Func struct {
	A points.Vector
	B float64
	W float64
}

// NewFunc draws a hash function for dim-dimensional points from rng.
func NewFunc(dim int, w float64, rng *points.Rand) Func {
	if w <= 0 {
		panic(fmt.Sprintf("lsh: non-positive width %v", w))
	}
	a := make(points.Vector, dim)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return Func{A: a, B: rng.Float64() * w, W: w}
}

// Hash returns the slot index of p.
func (f Func) Hash(p points.Vector) int64 {
	v := (f.A.Dot(p) + f.B) / f.W
	// Floor, correct for negatives.
	i := int64(v)
	if v < 0 && float64(i) != v {
		i--
	}
	return i
}

// Group is a group G of π hash functions; two points fall in the same
// partition of this group's layout iff all π hash values agree.
type Group struct {
	Funcs []Func
}

// NewGroup draws a group of pi functions.
func NewGroup(dim, pi int, w float64, rng *points.Rand) Group {
	if pi <= 0 {
		panic(fmt.Sprintf("lsh: non-positive group size %d", pi))
	}
	fs := make([]Func, pi)
	for i := range fs {
		fs[i] = NewFunc(dim, w, rng)
	}
	return Group{Funcs: fs}
}

// Key returns the partition key G(p) = [h_1(p), …, h_π(p)] in a compact
// textual form usable as a MapReduce key.
func (g Group) Key(p points.Vector) string {
	var b strings.Builder
	b.Grow(8 * len(g.Funcs))
	for i, f := range g.Funcs {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatInt(f.Hash(p), 36))
	}
	return b.String()
}

// Layouts is the full LSH configuration of an LSH-DDP run: M groups of π
// functions of width w. The zero value is unusable; construct with
// NewLayouts.
type Layouts struct {
	Groups []Group
	W      float64
	Pi     int
}

// NewLayouts draws M independent groups. Each group gets a sub-generator
// seeded from seed so layouts are independent yet reproducible.
func NewLayouts(dim, m, pi int, w float64, seed int64) *Layouts {
	if m <= 0 {
		panic(fmt.Sprintf("lsh: non-positive layout count %d", m))
	}
	groups := make([]Group, m)
	for i := range groups {
		rng := points.NewRand(seed + int64(i)*7919)
		groups[i] = NewGroup(dim, pi, w, rng)
	}
	return &Layouts{Groups: groups, W: w, Pi: pi}
}

// M returns the number of layouts.
func (l *Layouts) M() int { return len(l.Groups) }

// Keys returns p's partition key under every layout, prefixed with the
// layout index ("m|key") so that different layouts never collide in the
// grouped shuffle.
func (l *Layouts) Keys(p points.Vector) []string {
	keys := make([]string, len(l.Groups))
	for m, g := range l.Groups {
		keys[m] = strconv.Itoa(m) + "|" + g.Key(p)
	}
	return keys
}

// GuaranteeRadius returns a radius g such that every point strictly within
// distance g of p shares p's partition key in at least one layout — the
// soundness certificate of the kNN-join's bucketed candidate pass.
//
// For one hash function, moving a point by Euclidean distance d shifts its
// projection (a·x + b)/w by at most ‖a‖·d/w slot widths, so p keeps any
// neighbor within w·min(frac, 1−frac)/‖a‖, where frac ∈ [0, 1) is the
// fractional position of p's projection inside its slot. A layout keeps the
// neighbor when every one of its π functions does (the min over functions),
// and one layout suffices (the max over layouts). A zero direction vector
// never splits and contributes an infinite margin.
//
// The returned radius is deflated by one part in 2²⁰ to absorb the
// floating-point slop of the projection arithmetic, so callers comparing a
// verified k-th distance against it fail toward "re-verify exactly", never
// toward a wrong accept.
func (l *Layouts) GuaranteeRadius(p points.Vector) float64 {
	best := 0.0
	for _, g := range l.Groups {
		margin := math.Inf(1)
		for _, f := range g.Funcs {
			v := (f.A.Dot(p) + f.B) / f.W
			frac := v - math.Floor(v)
			edge := frac
			if 1-frac < edge {
				edge = 1 - frac
			}
			n2 := 0.0
			for _, a := range f.A {
				n2 += a * a
			}
			if n2 == 0 {
				continue // constant projection: this function never splits
			}
			if m := edge * f.W / math.Sqrt(n2); m < margin {
				margin = m
			}
		}
		if margin > best {
			best = margin
		}
	}
	return best * (1 - 0x1p-20)
}
