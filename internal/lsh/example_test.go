package lsh_test

import (
	"fmt"

	"repro/internal/lsh"
	"repro/internal/points"
)

// Solving Eq. 5: the minimal hash width for a target expected accuracy.
func ExampleSolveWidth() {
	dc := 1.5
	w, err := lsh.SolveWidth(0.99, dc, 3, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("w/dc = %.2f\n", w/dc)
	fmt.Printf("accuracy at w: %.4f\n", lsh.ExpectedAccuracy(w, dc, 3, 10))
	// Output:
	// w/dc = 5.64
	// accuracy at w: 0.9900
}

// Partitioning a point under M independent LSH layouts.
func ExampleLayouts_Keys() {
	layouts := lsh.NewLayouts(2, 3, 2, 4.0, 42)
	keys := layouts.Keys(points.Vector{1.0, 2.0})
	fmt.Println(len(keys), "partition keys, one per layout")
	// Nearby points usually share keys; distant ones don't.
	same := 0
	near := layouts.Keys(points.Vector{1.05, 2.05})
	for m := range keys {
		if keys[m] == near[m] {
			same++
		}
	}
	fmt.Printf("nearby point shares %d/3 keys\n", same)
	// Output:
	// 3 partition keys, one per layout
	// nearby point shares 3/3 keys
}

// Lemma 3's collision probability is monotone in distance.
func ExampleCollisionProb() {
	for _, d := range []float64{1, 4, 16} {
		fmt.Printf("p(d=%2.0f, w=4) = %.3f\n", d, lsh.CollisionProb(d, 4))
	}
	// Output:
	// p(d= 1, w=4) = 0.801
	// p(d= 4, w=4) = 0.369
	// p(d=16, w=4) = 0.099
}
