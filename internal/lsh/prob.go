package lsh

import (
	"fmt"
	"math"
)

// Probability formulas from the paper. Notation:
//
//	w    — hash width
//	d_c  — cutoff distance (ρ's neighbourhood radius)
//	π    — functions per group
//	M    — number of layouts
//
// All functions treat degenerate inputs (zero distance) as certain
// collision.

// stdNormCDF is Φ, the N(0,1) cumulative distribution function.
func stdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// CollisionProb is p(d, w) = Pr[h(p_i)=h(p_j)] for two points at distance d
// under one p-stable hash of width w (Datar et al.; the paper's Lemma 3):
//
//	p(d,w) = 2Φ(w/d) − 1 − (2d/(√(2π) w))·(1 − e^{−w²/(2d²)})
//
// It is monotonically decreasing in d and increasing in w.
func CollisionProb(d, w float64) float64 {
	if d <= 0 {
		return 1
	}
	r := w / d
	return 2*stdNormCDF(r) - 1 - 2/(math.Sqrt(2*math.Pi)*r)*(1-math.Exp(-r*r/2))
}

// AllNeighborsProbLB is the paper's Lemma 1 lower bound on
// Pr[all d_c-neighbours of a point share its slot]:
//
//	P_ρ(w, d_c) ≥ 1 − 4 d_c / (√(2π) w)
//
// clamped to [0, 1]. It underestimates the exact probability (the integrand
// 1 − 2 d_c x / w goes negative for large x instead of clamping at zero).
func AllNeighborsProbLB(dc, w float64) float64 {
	if dc <= 0 {
		return 1
	}
	p := 1 - 4*dc/(math.Sqrt(2*math.Pi)*w)
	if p < 0 {
		return 0
	}
	return p
}

// AllNeighborsProbExact evaluates the same probability with the integrand
// clamped at zero, which yields a closed form identical in shape to
// CollisionProb with d → 2 d_c:
//
//	∫₀^{w/(2d_c)} (1 − 2 d_c x/w) f(x) dx  =  p(2 d_c, w)
//
// where f is the half-normal density. The identity is property-tested
// against numeric integration.
func AllNeighborsProbExact(dc, w float64) float64 {
	return CollisionProb(2*dc, w)
}

// LayoutAccuracy is Theorem 1: with M layouts of π functions each,
//
//	Pr[ρ̂_i = ρ_i] ≥ 1 − (1 − P^π)^M
//
// where P is the per-function all-neighbours probability.
func LayoutAccuracy(perFunc float64, pi, m int) float64 {
	if perFunc < 0 || perFunc > 1 {
		panic(fmt.Sprintf("lsh: probability %v out of [0,1]", perFunc))
	}
	return 1 - math.Pow(1-math.Pow(perFunc, float64(pi)), float64(m))
}

// DeltaAccuracy is Theorem 2: the probability that δ̂_i = δ_i for a point
// whose true upslope point sits at distance dUp, with M layouts of π
// functions of width w (assuming ρ̂ = ρ):
//
//	1 − (1 − p(d_u, w)^π)^M
func DeltaAccuracy(dUp, w float64, pi, m int) float64 {
	return LayoutAccuracy(CollisionProb(dUp, w), pi, m)
}

// ExpectedAccuracy is Eq. 5, the accuracy objective the solver inverts:
// A(w, π, M) = 1 − (1 − P_ρ(w,d_c)^π)^M using the paper's lower bound.
func ExpectedAccuracy(w, dc float64, pi, m int) float64 {
	return LayoutAccuracy(AllNeighborsProbLB(dc, w), pi, m)
}

// SolveWidth finds the minimal width w such that ExpectedAccuracy(w, dc,
// pi, m) ≥ accuracy, by bisection (the accuracy is monotone increasing in
// w). accuracy must be in (0, 1); dc must be positive.
func SolveWidth(accuracy, dc float64, pi, m int) (float64, error) {
	if accuracy <= 0 || accuracy >= 1 {
		return 0, fmt.Errorf("lsh: accuracy %v out of (0,1)", accuracy)
	}
	if dc <= 0 {
		return 0, fmt.Errorf("lsh: non-positive d_c %v", dc)
	}
	if pi <= 0 || m <= 0 {
		return 0, fmt.Errorf("lsh: non-positive pi=%d or m=%d", pi, m)
	}
	lo, hi := dc, dc*2
	for ExpectedAccuracy(hi, dc, pi, m) < accuracy {
		hi *= 2
		if hi > dc*1e12 {
			return 0, fmt.Errorf("lsh: no width satisfies accuracy %v with pi=%d m=%d", accuracy, pi, m)
		}
	}
	for i := 0; i < 200 && (hi-lo)/hi > 1e-12; i++ {
		mid := (lo + hi) / 2
		if ExpectedAccuracy(mid, dc, pi, m) >= accuracy {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// RequiredPerFuncProb inverts Theorem 1 for P: the per-function
// all-neighbours probability needed so that M layouts of π functions reach
// the target accuracy.
func RequiredPerFuncProb(accuracy float64, pi, m int) float64 {
	if accuracy <= 0 {
		return 0
	}
	if accuracy >= 1 {
		return 1
	}
	perLayout := 1 - math.Pow(1-accuracy, 1/float64(m))
	return math.Pow(perLayout, 1/float64(pi))
}
