package lsh

import (
	"math"
	"testing"

	"repro/internal/points"
)

func TestCollisionProbShape(t *testing.T) {
	if got := CollisionProb(0, 5); got != 1 {
		t.Fatalf("p(0) = %v", got)
	}
	// Monotone decreasing in d, increasing in w.
	prev := 1.0
	for _, d := range []float64{0.1, 0.5, 1, 2, 5, 10, 50} {
		p := CollisionProb(d, 4)
		if p <= 0 || p >= 1 {
			t.Fatalf("p(%v, 4) = %v out of (0,1)", d, p)
		}
		if p >= prev {
			t.Fatalf("p not decreasing at d=%v: %v >= %v", d, p, prev)
		}
		prev = p
	}
	if CollisionProb(2, 8) <= CollisionProb(2, 2) {
		t.Fatal("p not increasing in w")
	}
}

func TestAllNeighborsProbLB(t *testing.T) {
	if got := AllNeighborsProbLB(0, 3); got != 1 {
		t.Fatalf("P_rho(0) = %v", got)
	}
	// Paper's closed form: 1 - 4 dc / (sqrt(2*pi) w).
	dc, w := 1.0, 10.0
	want := 1 - 4*dc/(math.Sqrt(2*math.Pi)*w)
	if got := AllNeighborsProbLB(dc, w); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P_rho = %v, want %v", got, want)
	}
	// Clamped to zero when the bound goes negative.
	if got := AllNeighborsProbLB(100, 1); got != 0 {
		t.Fatalf("clamped P_rho = %v", got)
	}
}

// The exact all-neighbours formula must equal the clamped integral
// ∫₀^{w/2dc} (1 − 2 dc x / w) f(x) dx, checked by numeric quadrature, and
// must dominate the paper's lower bound.
func TestAllNeighborsProbExactVsQuadrature(t *testing.T) {
	halfNormal := func(x float64) float64 {
		return math.Sqrt(2/math.Pi) * math.Exp(-x*x/2)
	}
	for _, tc := range []struct{ dc, w float64 }{
		{1, 10}, {1, 4}, {1, 2}, {2, 5}, {0.3, 1},
	} {
		upper := tc.w / (2 * tc.dc)
		const steps = 200_000
		h := upper / steps
		var integral float64
		for i := 0; i < steps; i++ {
			x := (float64(i) + 0.5) * h
			integral += (1 - 2*tc.dc*x/tc.w) * halfNormal(x) * h
		}
		got := AllNeighborsProbExact(tc.dc, tc.w)
		if math.Abs(got-integral) > 1e-4 {
			t.Fatalf("dc=%v w=%v: exact %v vs quadrature %v", tc.dc, tc.w, got, integral)
		}
		if lb := AllNeighborsProbLB(tc.dc, tc.w); got < lb-1e-12 {
			t.Fatalf("dc=%v w=%v: exact %v below lower bound %v", tc.dc, tc.w, got, lb)
		}
	}
}

func TestLayoutAccuracy(t *testing.T) {
	// Theorem 1 algebra on known values: P=0.9, pi=2, M=3:
	// 1 - (1 - 0.81)^3 = 1 - 0.19^3.
	want := 1 - math.Pow(1-0.81, 3)
	if got := LayoutAccuracy(0.9, 2, 3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("accuracy = %v, want %v", got, want)
	}
	// More layouts help; more functions per group hurt.
	if LayoutAccuracy(0.9, 3, 10) <= LayoutAccuracy(0.9, 3, 2) {
		t.Fatal("accuracy not increasing in M")
	}
	if LayoutAccuracy(0.9, 10, 5) >= LayoutAccuracy(0.9, 2, 5) {
		t.Fatal("accuracy not decreasing in pi")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for probability out of range")
		}
	}()
	LayoutAccuracy(1.5, 1, 1)
}

func TestSolveWidth(t *testing.T) {
	dc := 1.5
	for _, tc := range []struct {
		acc   float64
		pi, m int
	}{
		{0.9, 3, 10}, {0.99, 3, 10}, {0.99, 10, 20}, {0.5, 1, 1}, {0.999, 5, 30},
	} {
		w, err := SolveWidth(tc.acc, dc, tc.pi, tc.m)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got := ExpectedAccuracy(w, dc, tc.pi, tc.m); got < tc.acc-1e-9 {
			t.Fatalf("%+v: w=%v gives accuracy %v < %v", tc, w, got, tc.acc)
		}
		// Minimality: 1% narrower must violate the target.
		if got := ExpectedAccuracy(w*0.99, dc, tc.pi, tc.m); got >= tc.acc {
			t.Fatalf("%+v: w=%v not minimal (0.99w gives %v)", tc, w, got)
		}
	}
}

func TestSolveWidthScalesWithDc(t *testing.T) {
	// The solved width is proportional to d_c (the formula depends only on
	// dc/w).
	w1, err := SolveWidth(0.95, 1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := SolveWidth(0.95, 7, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2/w1-7) > 1e-6 {
		t.Fatalf("w(7dc)/w(dc) = %v, want 7", w2/w1)
	}
}

func TestSolveWidthErrors(t *testing.T) {
	if _, err := SolveWidth(0, 1, 3, 10); err == nil {
		t.Fatal("want error for accuracy 0")
	}
	if _, err := SolveWidth(1, 1, 3, 10); err == nil {
		t.Fatal("want error for accuracy 1")
	}
	if _, err := SolveWidth(0.9, 0, 3, 10); err == nil {
		t.Fatal("want error for dc 0")
	}
	if _, err := SolveWidth(0.9, 1, 0, 10); err == nil {
		t.Fatal("want error for pi 0")
	}
}

func TestRequiredPerFuncProb(t *testing.T) {
	// Inverse of Theorem 1: plugging the result back reproduces the target.
	for _, tc := range []struct {
		acc   float64
		pi, m int
	}{
		{0.99, 3, 10}, {0.9, 5, 5}, {0.5, 1, 1},
	} {
		p := RequiredPerFuncProb(tc.acc, tc.pi, tc.m)
		if got := LayoutAccuracy(p, tc.pi, tc.m); math.Abs(got-tc.acc) > 1e-9 {
			t.Fatalf("%+v: inverse broken, got %v", tc, got)
		}
	}
	if RequiredPerFuncProb(0, 3, 10) != 0 || RequiredPerFuncProb(1, 3, 10) != 1 {
		t.Fatal("edge values wrong")
	}
}

func TestDeltaAccuracy(t *testing.T) {
	// Theorem 2 shape: nearer upslope points are recovered with higher
	// probability; more layouts help.
	if DeltaAccuracy(1, 10, 3, 10) <= DeltaAccuracy(5, 10, 3, 10) {
		t.Fatal("delta accuracy not decreasing in upslope distance")
	}
	if DeltaAccuracy(2, 10, 3, 20) <= DeltaAccuracy(2, 10, 3, 2) {
		t.Fatal("delta accuracy not increasing in M")
	}
}

// Empirical check of Theorem 1's direction on real data: the realized
// fraction of points whose d_c-neighbourhood stays intact under one layout
// should be at least P_ρ(w,dc)^π within sampling noise... the paper's
// Lemma 1 uses a single-Gaussian simplification, so we only require the
// qualitative ordering across widths.
func TestLayoutNeighborhoodIntegrityOrdering(t *testing.T) {
	rng := points.NewRand(31)
	n := 400
	pts := make([]points.Vector, n)
	for i := range pts {
		pts[i] = points.Vector{rng.Float64() * 20, rng.Float64() * 20}
	}
	dc := 1.0
	intact := func(w float64) float64 {
		g := NewGroup(2, 3, w, points.NewRand(77))
		keys := make([]string, n)
		for i := range pts {
			keys[i] = g.Key(pts[i])
		}
		ok := 0
		for i := range pts {
			all := true
			for j := range pts {
				if i == j {
					continue
				}
				if points.Dist(pts[i], pts[j]) < dc && keys[i] != keys[j] {
					all = false
					break
				}
			}
			if all {
				ok++
			}
		}
		return float64(ok) / float64(n)
	}
	small, large := intact(2), intact(20)
	if large <= small {
		t.Fatalf("wider hash did not preserve more neighbourhoods: w=2 %v vs w=20 %v", small, large)
	}
}
