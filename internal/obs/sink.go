package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink receives structured observability events from the engines: task
// scheduling decisions, progress snapshots, recovery actions. The kind
// string classifies the event ("scheduler", "progress", "worker", ...) so
// sinks can filter or route without parsing the message.
type Sink interface {
	Event(kind, format string, args ...any)
}

// LogfSink adapts a printf-style logger to the Sink interface, prefixing
// each message with its kind. This is how the engines' legacy Log fields
// keep working: they become sinks.
type LogfSink func(format string, args ...any)

// Event formats the message and forwards it to the wrapped logger.
func (f LogfSink) Event(kind, format string, args ...any) {
	if f != nil {
		f("["+kind+"] "+format, args...)
	}
}

// Discard drops every event.
var Discard Sink = discard{}

type discard struct{}

func (discard) Event(string, string, ...any) {}

// writerSink writes one timestamped line per event, serialized by a
// mutex so concurrent engines interleave whole lines.
type writerSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink returns a Sink writing timestamped event lines to w.
func NewWriterSink(w io.Writer) Sink { return &writerSink{w: w} }

func (s *writerSink) Event(kind, format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "%s [%s] %s\n",
		time.Now().Format("15:04:05.000"), kind, fmt.Sprintf(format, args...))
}
