package obs

import (
	"fmt"
	"time"
)

// Monitor periodically samples a counter snapshot and emits throughput
// deltas as "progress" events, so a long-running job shows live
// records/s and shuffle MB/s instead of only end-of-run totals. The
// snapshot function must be safe to call from another goroutine (the
// engines' Counters.Snapshot is).
type Monitor struct {
	stop chan struct{}
	done chan struct{}
}

// Counter names the monitor reports rates for (kept here so obs does not
// import the mapreduce package).
const (
	ctrMapOutputRecords = "map.output.records"
	ctrShuffleBytes     = "shuffle.bytes"
	ctrReduceOutRecords = "reduce.output.records"
	// Wire-level shuffle counters (rpcmr streaming transport): reported
	// when present so an operator can watch logical vs on-the-wire volume
	// diverge as compression does its work.
	ctrShuffleWireBytes     = "shuffle.wire.bytes"
	ctrShuffleWireBytesComp = "shuffle.wire.bytes.compressed"
)

// StartMonitor begins sampling snapshot every interval and emitting one
// progress event per tick until Stop is called. A final event is emitted
// on Stop so short jobs still produce one snapshot.
func StartMonitor(job string, interval time.Duration, snapshot func() map[string]int64, sink Sink) *Monitor {
	m := &Monitor{stop: make(chan struct{}), done: make(chan struct{})}
	go m.loop(job, interval, snapshot, sink)
	return m
}

func (m *Monitor) loop(job string, interval time.Duration, snapshot func() map[string]int64, sink Sink) {
	defer close(m.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	prev := snapshot()
	prevAt := time.Now()
	emit := func() {
		cur := snapshot()
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		if dt <= 0 {
			return
		}
		dRec := cur[ctrMapOutputRecords] - prev[ctrMapOutputRecords]
		dBytes := cur[ctrShuffleBytes] - prev[ctrShuffleBytes]
		wire := ""
		if w := cur[ctrShuffleWireBytes]; w > 0 {
			wire = fmt.Sprintf(", %.2f MB wire (%.2f MB sent)",
				float64(w)/(1<<20), float64(cur[ctrShuffleWireBytesComp])/(1<<20))
		}
		sink.Event("progress", "job %s: %d map records (+%.0f rec/s), %.2f MB shuffled (+%.2f MB/s)%s, %d reduce records",
			job, cur[ctrMapOutputRecords], float64(dRec)/dt,
			float64(cur[ctrShuffleBytes])/(1<<20), float64(dBytes)/dt/(1<<20),
			wire, cur[ctrReduceOutRecords])
		prev, prevAt = cur, now
	}
	for {
		select {
		case <-m.stop:
			emit()
			return
		case <-ticker.C:
			emit()
		}
	}
}

// Stop ends the sampling loop after a final snapshot event.
func (m *Monitor) Stop() {
	close(m.stop)
	<-m.done
}
