// Package obs is the job observability layer shared by both MapReduce
// engines (the in-process LocalEngine and the distributed rpcmr cluster).
// It models one job execution as a structured trace:
//
//	job → phase (map / combine / sort / shuffle / reduce) → task spans
//
// where every span carries wall time, record count, and byte volume. The
// engines produce spans at the same dataflow points, so a pipeline traced
// on the local engine and on a real cluster yields directly comparable
// trees — the per-stage instrumentation the paper's cost analysis (shuffle
// bytes vs. distance computations) needs to attribute time and bytes.
//
// Two invariants hold by construction and are asserted by the engine
// conformance tests:
//
//   - the sum of Bytes over all shuffle-phase spans of a job equals the
//     job's "shuffle.bytes" counter (the paper's Figure 10(b) metric);
//   - the span count of a job over the five dataflow phases is a pure
//     function of its task geometry (maps × phases + reduces), identical
//     across engines.
//
// The distributed engine additionally emits transport-level "fetch" spans
// (one per remote shuffle fetch, carrying actual wire bytes); these are
// engine-specific observations and excluded from the geometry invariant.
//
// Traces serialize as JSONL (one span per line, machine-readable) and as a
// human-readable tree. The package also provides the event sink the
// engines log through, a periodic counter monitor for live throughput on
// long jobs, and an opt-in pprof HTTP server for the daemons.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase names one stage of the MapReduce dataflow.
type Phase string

// The five phases, at the same dataflow points Hadoop instruments. Sort
// and shuffle are map-side: sorting happens in the map task's buffers, and
// the shuffle span accounts the data handed to the shuffle AFTER the
// combiner — the place the "shuffle.bytes" counter measures. Reduce-side
// fetch time (rpcmr) is folded into the reduce span.
const (
	PhaseMap     Phase = "map"
	PhaseCombine Phase = "combine"
	PhaseSort    Phase = "sort"
	PhaseShuffle Phase = "shuffle"
	PhaseReduce  Phase = "reduce"
)

// PhaseFetch is the distributed engine's reduce-side shuffle fetch: one
// span per remote map-output fetch, whose Bytes are the bytes that
// actually crossed the wire (post-compression) — distinct from the
// logical PhaseShuffle bytes, which are transport-independent. The local
// engine never emits it.
const PhaseFetch Phase = "fetch"

// PhaseRereplicate is the storage layer's background block repair: one
// span per completed re-replication (dfs namenode), whose Wall runs from
// the order being scheduled to the target datanode's confirming block
// report and whose Bytes are the block size copied. MapReduce engines
// never emit it.
const PhaseRereplicate Phase = "rereplicate"

// PhaseServe is the online serving layer's per-request span: one span per
// query handled by the clusterd assignment engine, whose Wall runs from
// admission to reply, Records is the number of points in the request, and
// Bytes the candidate rows scanned. Only emitted when the server is started
// with tracing on; MapReduce engines never emit it.
const PhaseServe Phase = "serve"

// PhaseDag is the job-DAG scheduler's per-node span: one span per graph
// node (job or driver-side transform), whose Wall runs from the node
// becoming ready to its output materializing, Records is the node's output
// record count, and Bytes the output volume. Cache-served nodes emit the
// span with a " (cached)" job-name suffix and near-zero wall. Overlapping
// dag spans in one trace are independent nodes the scheduler ran
// concurrently. MapReduce engines never emit it.
const PhaseDag Phase = "dag"

// PhaseOrder lists the phases in dataflow order, for stable rendering.
var PhaseOrder = []Phase{PhaseDag, PhaseMap, PhaseCombine, PhaseSort, PhaseShuffle, PhaseFetch, PhaseReduce, PhaseRereplicate, PhaseServe}

// Span records one task-phase execution. Worker is the rpcmr worker id
// that ran the task (0 on the local engine).
type Span struct {
	Job     string
	JobID   int
	Phase   Phase
	Task    int
	Worker  int
	Start   time.Time
	Wall    time.Duration
	Records int64
	Bytes   int64
}

// JobTrace groups one executed job's spans with its final counters.
type JobTrace struct {
	Job      string
	ID       int
	Wall     time.Duration
	Spans    []Span
	Counters map[string]int64
}

// PhaseStat aggregates the spans of one phase.
type PhaseStat struct {
	Tasks   int
	Wall    time.Duration
	Records int64
	Bytes   int64
}

// PhaseTotals maps each phase to its aggregate over one or more jobs.
type PhaseTotals map[Phase]PhaseStat

func (pt PhaseTotals) add(s Span) {
	st := pt[s.Phase]
	st.Tasks++
	st.Wall += s.Wall
	st.Records += s.Records
	st.Bytes += s.Bytes
	pt[s.Phase] = st
}

// PhaseTotals aggregates this job's spans by phase.
func (t *JobTrace) PhaseTotals() PhaseTotals {
	pt := PhaseTotals{}
	for _, s := range t.Spans {
		pt.add(s)
	}
	return pt
}

// Totals aggregates spans by phase across a whole pipeline of jobs.
func Totals(traces []JobTrace) PhaseTotals {
	pt := PhaseTotals{}
	for i := range traces {
		for _, s := range traces[i].Spans {
			pt.add(s)
		}
	}
	return pt
}

// TaskDist summarizes the wall-time distribution of one phase's tasks —
// the numbers an operator reads to spot stragglers.
type TaskDist struct {
	Tasks  int
	Median time.Duration
	Max    time.Duration
	// Stragglers counts tasks that took more than twice the median.
	Stragglers int
}

// DistOf computes the task wall-time distribution of one phase.
func DistOf(spans []Span, phase Phase) TaskDist {
	var walls []time.Duration
	for _, s := range spans {
		if s.Phase == phase {
			walls = append(walls, s.Wall)
		}
	}
	if len(walls) == 0 {
		return TaskDist{}
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	d := TaskDist{
		Tasks:  len(walls),
		Median: walls[len(walls)/2],
		Max:    walls[len(walls)-1],
	}
	if d.Median > 0 {
		for _, w := range walls {
			if w > 2*d.Median {
				d.Stragglers++
			}
		}
	}
	return d
}

// Trace accumulates job traces across a pipeline run. It is safe for
// concurrent use: the driver appends from whichever goroutine runs jobs.
type Trace struct {
	mu   sync.Mutex
	jobs []JobTrace
}

// Add appends one job's trace.
func (t *Trace) Add(j JobTrace) {
	t.mu.Lock()
	t.jobs = append(t.jobs, j)
	t.mu.Unlock()
}

// Jobs returns the accumulated job traces in execution order.
func (t *Trace) Jobs() []JobTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]JobTrace(nil), t.jobs...)
}

// jsonLine is the JSONL wire form: one "job" line per job followed by one
// "span" line per task-phase span.
type jsonLine struct {
	Type     string           `json:"type"`
	Job      string           `json:"job"`
	JobID    int              `json:"job_id"`
	Phase    Phase            `json:"phase,omitempty"`
	Task     int              `json:"task,omitempty"`
	Worker   int              `json:"worker,omitempty"`
	Start    string           `json:"start,omitempty"`
	WallUS   int64            `json:"wall_us"`
	Records  int64            `json:"records,omitempty"`
	Bytes    int64            `json:"bytes,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// WriteJSONL serializes the trace as JSON Lines: a "job" record per job
// (wall time and final counters) followed by a "span" record per task
// span. The format is append-friendly and greppable; each line is a
// self-contained JSON object.
func (t *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, j := range t.Jobs() {
		line := jsonLine{
			Type: "job", Job: j.Job, JobID: j.ID,
			WallUS: j.Wall.Microseconds(), Counters: j.Counters,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		for _, s := range j.Spans {
			if err := enc.Encode(jsonLine{
				Type: "span", Job: s.Job, JobID: s.JobID,
				Phase: s.Phase, Task: s.Task, Worker: s.Worker,
				Start: s.Start.UTC().Format(time.RFC3339Nano), WallUS: s.Wall.Microseconds(),
				Records: s.Records, Bytes: s.Bytes,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTree renders the trace as a human-readable job → phase tree with
// per-phase task counts, wall time, records, bytes, and straggler stats.
func (t *Trace) WriteTree(w io.Writer) error {
	var b strings.Builder
	for _, j := range t.Jobs() {
		fmt.Fprintf(&b, "job %s (#%d)  wall=%s  spans=%d\n", j.Job, j.ID, j.Wall.Round(time.Microsecond), len(j.Spans))
		pt := j.PhaseTotals()
		for _, ph := range PhaseOrder {
			st, ok := pt[ph]
			if !ok {
				continue
			}
			dist := DistOf(j.Spans, ph)
			fmt.Fprintf(&b, "  %-8s tasks=%-3d wall=%-12s records=%-10d bytes=%-10d median=%s max=%s",
				ph, st.Tasks, st.Wall.Round(time.Microsecond), st.Records, st.Bytes,
				dist.Median.Round(time.Microsecond), dist.Max.Round(time.Microsecond))
			if dist.Stragglers > 0 {
				fmt.Fprintf(&b, " stragglers=%d", dist.Stragglers)
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
