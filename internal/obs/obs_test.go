package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	t := &Trace{}
	t.Add(JobTrace{
		Job: "wc", ID: 1, Wall: 5 * time.Millisecond,
		Counters: map[string]int64{"shuffle.bytes": 30},
		Spans: []Span{
			{Job: "wc", JobID: 1, Phase: PhaseMap, Task: 0, Wall: 2 * time.Millisecond, Records: 10},
			{Job: "wc", JobID: 1, Phase: PhaseMap, Task: 1, Wall: 10 * time.Millisecond, Records: 12},
			{Job: "wc", JobID: 1, Phase: PhaseShuffle, Task: 0, Wall: time.Millisecond, Records: 4, Bytes: 12},
			{Job: "wc", JobID: 1, Phase: PhaseShuffle, Task: 1, Wall: time.Millisecond, Records: 6, Bytes: 18},
			{Job: "wc", JobID: 1, Phase: PhaseReduce, Task: 0, Wall: 3 * time.Millisecond, Records: 8},
		},
	})
	return t
}

func TestPhaseTotals(t *testing.T) {
	tr := sampleTrace()
	jobs := tr.Jobs()
	pt := Totals(jobs)
	if got := pt[PhaseMap]; got.Tasks != 2 || got.Records != 22 || got.Wall != 12*time.Millisecond {
		t.Fatalf("map totals = %+v", got)
	}
	if got := pt[PhaseShuffle]; got.Bytes != 30 {
		t.Fatalf("shuffle bytes = %d, want 30", got.Bytes)
	}
	if pt[PhaseShuffle].Bytes != jobs[0].Counters["shuffle.bytes"] {
		t.Fatalf("shuffle span bytes %d != counter %d", pt[PhaseShuffle].Bytes, jobs[0].Counters["shuffle.bytes"])
	}
}

func TestDistOf(t *testing.T) {
	spans := sampleTrace().Jobs()[0].Spans
	d := DistOf(spans, PhaseMap)
	if d.Tasks != 2 {
		t.Fatalf("tasks = %d", d.Tasks)
	}
	if d.Max != 10*time.Millisecond {
		t.Fatalf("max = %s", d.Max)
	}
	// Median of [2ms, 10ms] picks index 1 (upper median); 10 > 2*10 is
	// false, so no stragglers here.
	if d.Stragglers != 0 {
		t.Fatalf("stragglers = %d", d.Stragglers)
	}
	// A clear straggler: 3 tasks, one 5x the median.
	d = DistOf([]Span{
		{Phase: PhaseReduce, Wall: time.Millisecond},
		{Phase: PhaseReduce, Wall: time.Millisecond},
		{Phase: PhaseReduce, Wall: 5 * time.Millisecond},
	}, PhaseReduce)
	if d.Stragglers != 1 {
		t.Fatalf("stragglers = %d, want 1", d.Stragglers)
	}
	if got := DistOf(spans, PhaseCombine); got.Tasks != 0 {
		t.Fatalf("empty phase dist = %+v", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // 1 job line + 5 span lines
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["type"] != "job" || first["job"] != "wc" {
		t.Fatalf("first line = %v", first)
	}
	var shuffleBytes int64
	for _, l := range lines[1:] {
		var span struct {
			Type  string `json:"type"`
			Phase string `json:"phase"`
			Bytes int64  `json:"bytes"`
		}
		if err := json.Unmarshal([]byte(l), &span); err != nil {
			t.Fatal(err)
		}
		if span.Type != "span" {
			t.Fatalf("line type = %q", span.Type)
		}
		if span.Phase == string(PhaseShuffle) {
			shuffleBytes += span.Bytes
		}
	}
	if shuffleBytes != 30 {
		t.Fatalf("shuffle bytes from JSONL = %d, want 30", shuffleBytes)
	}
}

func TestWriteTree(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"job wc (#1)", "map", "shuffle", "reduce", "spans=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "combine") {
		t.Fatalf("tree shows empty combine phase:\n%s", out)
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr.Add(JobTrace{Job: "j", ID: id})
		}(i)
	}
	wg.Wait()
	if got := len(tr.Jobs()); got != 8 {
		t.Fatalf("jobs = %d, want 8", got)
	}
}

func TestMonitorEmits(t *testing.T) {
	var mu sync.Mutex
	var events []string
	sink := LogfSink(func(format string, args ...any) {
		mu.Lock()
		events = append(events, format)
		mu.Unlock()
	})
	var n int64
	snapshot := func() map[string]int64 {
		mu.Lock()
		n += 100
		v := n
		mu.Unlock()
		return map[string]int64{"map.output.records": v, "shuffle.bytes": v * 10}
	}
	m := StartMonitor("test", 5*time.Millisecond, snapshot, sink)
	time.Sleep(20 * time.Millisecond)
	m.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("monitor emitted no events")
	}
	if !strings.HasPrefix(events[0], "[progress]") {
		t.Fatalf("event = %q", events[0])
	}
}

func TestPprofServer(t *testing.T) {
	p, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Addr() == "" {
		t.Fatal("empty addr")
	}
}
