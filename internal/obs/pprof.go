package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// PprofServer is an opt-in HTTP server exposing the standard
// /debug/pprof endpoints, for profiling the long-running daemons
// (mrd master/worker) without linking profiling into every binary's
// default path.
type PprofServer struct {
	lis net.Listener
	srv *http.Server
}

// StartPprof serves net/http/pprof on addr (":0" picks a free port).
// A dedicated mux is used so the process's default mux stays untouched.
func StartPprof(addr string) (*PprofServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	p := &PprofServer{lis: lis, srv: &http.Server{Handler: mux}}
	go p.srv.Serve(lis)
	return p, nil
}

// Addr returns the server's listen address.
func (p *PprofServer) Addr() string { return p.lis.Addr().String() }

// Close shuts the server down.
func (p *PprofServer) Close() error { return p.srv.Close() }
