package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/serve"
)

// startIngestFleet brings up a single-replica ingest-enabled fleet: each
// shard server gets its own ingest.Store over the shard sub-model, with the
// disjoint ID layout OPERATIONS.md prescribes (base N+shard, stride =
// shard count).
func startIngestFleet(t *testing.T, mdl *model.Model, shards int) (*fleet.Router, [][]*serve.Server) {
	t.Helper()
	subs, mf, err := fleet.Partition(mdl, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	srvs := make([][]*serve.Server, shards)
	addrs := make([][]string, shards)
	for s := range subs {
		id := s
		srv := serve.New(serve.Config{ShardID: &id})
		sub := subs[s]
		st, err := ingest.Open(ingest.Config{
			Dir:       t.TempDir(),
			Precision: "f64",
			IDBase:    int64(mdl.N() + s),
			IDStride:  int64(shards),
			OnSwap:    srv.UseEngine,
		}, func() (*model.Model, error) { return sub, nil })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() }) //nolint:errcheck
		srv.SetIngest(st)
		srv.UseEngine(st.Engine())
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
		srvs[s] = []*serve.Server{srv}
		addrs[s] = []string{srv.Addr()}
	}
	router, err := fleet.NewRouter(fleet.RouterConfig{Manifest: mf, Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.CheckShards(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := router.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Shutdown(context.Background()) }) //nolint:errcheck
	return router, srvs
}

func postPoints(t *testing.T, url string, pts [][]float64) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string][][]float64{"points": pts})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestFleetIngest routes writes through the router to the LSH-owning
// shards and requires them to be readable through the routed /assign path
// immediately (pre-compaction) and after a fleet-wide compaction.
func TestFleetIngest(t *testing.T) {
	mdl := trainModel(t, 1500, 4)
	const shards = 3
	router, srvs := startIngestFleet(t, mdl, shards)

	pts := make([][]float64, 40)
	for i := range pts {
		row := mdl.Row(i * 31 % mdl.N())
		pts[i] = []float64{row[0] + 0.001 + float64(i)*1e-5, row[1] - 0.002}
	}
	resp := postPoints(t, "http://"+router.Addr()+"/ingest", pts)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /ingest: HTTP %d", resp.StatusCode)
	}
	var acked struct {
		Results []serve.IngestResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acked); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(acked.Results) != len(pts) {
		t.Fatalf("router acked %d points, sent %d", len(acked.Results), len(pts))
	}

	// The per-shard ID layout keeps global IDs disjoint across shards.
	seen := make(map[int32]bool)
	for i, a := range acked.Results {
		if int(a.ID) < mdl.N() {
			t.Fatalf("ack %d: ID %d collides with the base ID range [0,%d)", i, a.ID, mdl.N())
		}
		if seen[a.ID] {
			t.Fatalf("ack %d: duplicate global ID %d", i, a.ID)
		}
		seen[a.ID] = true
	}

	checkRouted := func(when string) {
		t.Helper()
		resp := postPoints(t, "http://"+router.Addr()+"/assign", pts)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("router /assign %s: HTTP %d", when, resp.StatusCode)
		}
		var got struct {
			Results []serve.Assignment `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for i := range pts {
			if got.Results[i].Nearest != acked.Results[i].ID || got.Results[i].Dist2 != 0 {
				t.Fatalf("routed query %s at ingested point %d: %+v, acked ID %d",
					when, i, got.Results[i], acked.Results[i].ID)
			}
		}
	}
	checkRouted("pre-compaction")

	// Roll the fleet forward shard by shard (what fleetctl rollover does)
	// and require the same answers from the compacted bases.
	total := 0
	for s := range srvs {
		resp, err := http.Post("http://"+srvs[s][0].Addr()+"/compact", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var info serve.IngestInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Version != 1 || info.DeltaPoints != 0 {
			t.Fatalf("shard %d compaction: %+v", s, info)
		}
		checkRouted("mid-rollover")
		total += info.BaseN
	}
	if want := mdl.N() + len(pts); total < want {
		t.Fatalf("fleet holds %d rows after rollover, want >= %d", total, want)
	}
	checkRouted("post-rollover")
}
