// Package fleet shards the serving layer: a partitioner that splits a
// cluster model into per-shard sub-models by LSH bucket key — consistent
// hashing for the long tail, explicit size-aware placements for the heavy
// buckets — and a router that scatter-gathers queries to only the shards
// owning their buckets, merging answers bit-identically to a single server.
//
// The layout follows the layered-LSH observation (Bahmani, Goel & Shinde;
// see PAPERS.md): a query needs exactly the M buckets its own keys name, so
// routing by bucket key bounds fan-out at M shards — and in practice far
// fewer, because nearby layouts collide — instead of a broadcast. Each
// stored row is scanned by exactly one shard per query: the owner of the
// row's first matching layout in a per-query cyclic rotation of the layout
// order (see serve.Engine's masked scan), so fleet-wide scan work matches
// the single-node dedup union row for row while hot buckets spread across
// every layout's owner instead of piling onto layout 0's.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard when a Manifest leaves
// it zero. Arc-length imbalance shrinks as 1/sqrt(vnodes); 1024 keeps each
// shard's share of the key space within a few percent of even, and the ring
// stays small enough (shards x 1024 points) that construction and binary-
// search lookups are negligible.
const DefaultVNodes = 1024

// fnv64a hashes s with 64-bit FNV-1a and finalizes with the splitmix64
// scramble. Raw FNV-1a disperses short, similar strings (bucket keys,
// "shard-s#v" vnode labels) almost entirely in its LOW bits, but ring
// placement orders by the full 64-bit value, where the high bits dominate —
// without the finalizer a 2-shard ring splits the key space ~91/9. Inlined
// (rather than hash/fnv) to keep ring lookups allocation-free on the
// router's hot path.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Ring is a consistent-hash ring assigning LSH bucket-key strings to shards
// through VNodes virtual points per shard. Construction is deterministic in
// (shards, vnodes), so the partitioner and every router independently build
// the same assignment from the manifest alone.
type Ring struct {
	hashes []uint64 // sorted ring positions
	owner  []int32  // owner[i] = shard of hashes[i]
	shards int
}

// NewRing builds the ring for a shard count with vnodes virtual points per
// shard (0 means DefaultVNodes).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fleet: ring needs at least 1 shard, got %d", shards)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("fleet: ring needs at least 1 vnode per shard, got %d", vnodes)
	}
	r := &Ring{
		hashes: make([]uint64, 0, shards*vnodes),
		owner:  make([]int32, 0, shards*vnodes),
		shards: shards,
	}
	type pt struct {
		h     uint64
		shard int32
	}
	pts := make([]pt, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := fnv64a("shard-" + strconv.Itoa(s) + "#" + strconv.Itoa(v))
			pts = append(pts, pt{h, int32(s)})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		// Identical positions (vanishingly rare with 64-bit hashes) tie
		// toward the lower shard so the order stays deterministic.
		return pts[i].shard < pts[j].shard
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.shard)
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning a bucket key: the first virtual point at
// or clockwise of the key's hash.
func (r *Ring) Owner(key string) int {
	h := fnv64a(key)
	// First ring position >= h, wrapping to 0.
	lo, hi := 0, len(r.hashes)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.hashes) {
		lo = 0
	}
	return int(r.owner[lo])
}
